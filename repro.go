// Package repro is a from-scratch reproduction of "A Deferred Cleansing
// Method for RFID Data Analytics" (Rao, Doraiswamy, Thakkar, Colby —
// VLDB 2006): query-time cleansing of RFID read anomalies.
//
// Applications declare anomalies with sequence-based rules in an extended
// SQL-TS (DEFINE … AS (A, *B) WHERE … ACTION DELETE|KEEP|MODIFY …). Rules
// compile to SQL/OLAP window-function templates kept in a rules catalog.
// When a query arrives, the rewrite engine combines it with the relevant
// rules and produces either an expanded rewrite (predicate relaxation via
// transitivity analysis over the rules' correlation conditions) or a
// join-back rewrite (cleansing restricted to the query's EPC sequences),
// choosing by cost estimate — so only the data the query needs, plus the
// context required to cleanse it, is ever cleaned.
//
// The package bundles the whole system the paper runs on: an embedded
// in-memory relational engine with SQL/OLAP window functions (standing in
// for the DBMS), the rule language and compiler, the rewrite engine, and
// the RFIDGen workload generator used by the paper's evaluation.
//
//	db := repro.Open()
//	db.LoadRFIDWorkload(repro.WorkloadConfig{Scale: 10, AnomalyPct: 10})
//	db.DefineRule(`DEFINE dup ON caseR AS (A, B)
//	    WHERE A.biz_loc = B.biz_loc AND B.rtime - A.rtime < 5 mins
//	    ACTION DELETE B`)
//	rows, _ := db.Query(`SELECT count(*) FROM caseR WHERE rtime <= ...`)
package repro

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/persist"
	"repro/internal/plan"
	"repro/internal/rfidgen"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/types"
)

// Strategy selects how a query is rewritten for cleansing.
type Strategy = core.Strategy

// Rewrite strategies. Auto (the default) costs every candidate and runs
// the cheapest, like the paper's prototype.
const (
	Auto     = core.StrategyAuto
	Naive    = core.StrategyNaive
	Expanded = core.StrategyExpanded
	JoinBack = core.StrategyJoinBack
	Dirty    = core.StrategyDirty
)

// Kind re-exports the engine's value kinds.
type Kind = types.Kind

// Value kinds for ColumnDef.
const (
	KindBool     = types.KindBool
	KindInt      = types.KindInt
	KindFloat    = types.KindFloat
	KindString   = types.KindString
	KindTime     = types.KindTime
	KindInterval = types.KindInterval
)

// Value is a scalar query result value.
type Value = types.Value

// Value constructors for Insert and parameter building.

// NewBool builds a BOOL value.
func NewBool(b bool) Value { return types.NewBool(b) }

// NewInt builds an INT value.
func NewInt(i int64) Value { return types.NewInt(i) }

// NewFloat builds a FLOAT value.
func NewFloat(f float64) Value { return types.NewFloat(f) }

// NewString builds a STRING value.
func NewString(s string) Value { return types.NewString(s) }

// NewTime builds a TIME value (microsecond resolution).
func NewTime(t time.Time) Value { return types.NewTimeFrom(t) }

// NewInterval builds an INTERVAL value.
func NewInterval(d time.Duration) Value { return types.NewIntervalFrom(d) }

// Null is the SQL NULL value.
var Null = types.Null

// DB is a deferred-cleansing database: storage, planner, rules catalog,
// and rewrite engine.
type DB struct {
	Catalog  *catalog.Database
	Registry *core.Registry
	Rewriter *core.Rewriter
	Planner  *plan.Planner

	// Workload carries the last RFIDGen dataset loaded, if any, exposing
	// the generator's ground truth and rule constants.
	Workload *rfidgen.Dataset
}

// Open creates an empty database.
func Open() *DB {
	cat := catalog.NewDatabase()
	reg := core.NewRegistry(cat)
	return &DB{
		Catalog:  cat,
		Registry: reg,
		Rewriter: core.NewRewriter(cat, reg),
		Planner:  plan.New(cat),
	}
}

// OpenDir restores a database previously written with Save: tables,
// views, and the rules catalog (indexes rebuilt, statistics refreshed).
func OpenDir(dir string) (*DB, error) {
	cat, reg, err := persist.Load(dir)
	if err != nil {
		return nil, err
	}
	return &DB{
		Catalog:  cat,
		Registry: reg,
		Rewriter: core.NewRewriter(cat, reg),
		Planner:  plan.New(cat),
	}, nil
}

// Save persists the database — tables, views, rules — to a directory that
// OpenDir can restore.
func (db *DB) Save(dir string) error {
	return persist.Save(db.Catalog, db.Registry, dir)
}

// ColumnDef declares one column of a table.
type ColumnDef struct {
	Name string
	Kind Kind
}

// CreateTable adds an empty base table.
func (db *DB) CreateTable(name string, cols ...ColumnDef) error {
	s := &schema.Schema{}
	for _, c := range cols {
		s.Columns = append(s.Columns, schema.Col(name, c.Name, c.Kind))
	}
	return db.Catalog.AddTable(storage.NewTable(name, s))
}

// Insert appends rows of values to a table. Row arity must match the
// table schema.
func (db *DB) Insert(table string, rows ...[]Value) error {
	t, ok := db.Catalog.Table(table)
	if !ok {
		return fmt.Errorf("repro: no table %q", table)
	}
	for _, r := range rows {
		if err := t.Append(schema.Row(r)); err != nil {
			return err
		}
	}
	return nil
}

// BuildIndex creates (or rebuilds) a sorted index on a column.
func (db *DB) BuildIndex(table, column string) error {
	t, ok := db.Catalog.Table(table)
	if !ok {
		return fmt.Errorf("repro: no table %q", table)
	}
	return t.BuildIndex(column)
}

// Analyze refreshes optimizer statistics for a table.
func (db *DB) Analyze(table string) error {
	t, ok := db.Catalog.Table(table)
	if !ok {
		return fmt.Errorf("repro: no table %q", table)
	}
	t.Analyze()
	return nil
}

// CreateView registers a named view.
func (db *DB) CreateView(name, query string) error {
	stmt, err := sqlparser.Parse(query)
	if err != nil {
		return err
	}
	return db.Catalog.AddView(name, stmt)
}

// WorkloadConfig mirrors the RFIDGen parameters (§6.1 of the paper).
type WorkloadConfig struct {
	// Scale is the paper's scale factor s (number of pallet EPCs); caseR
	// gets about s*1500 rows.
	Scale int
	// AnomalyPct is the dirty percentage (the paper uses 10–40).
	AnomalyPct int
	// Seed fixes the data; 0 is a valid fixed seed.
	Seed int64
	// Start anchors the 5-year read window (defaults to 2021-01-01).
	Start time.Time
}

// LoadRFIDWorkload generates and loads the paper's 7-table supply-chain
// schema with injected anomalies, and registers the missing rule's
// case∪pallet input view.
func (db *DB) LoadRFIDWorkload(cfg WorkloadConfig) error {
	d := rfidgen.Generate(rfidgen.Config{
		Scale: cfg.Scale, AnomalyPct: cfg.AnomalyPct, Seed: cfg.Seed, Start: cfg.Start,
	})
	if err := d.Load(db.Catalog); err != nil {
		return err
	}
	db.Workload = d
	return nil
}

// DefinePaperRules registers the five cleansing rules of §4.3 against the
// loaded workload, in Table 1 order. It requires LoadRFIDWorkload first.
// It returns the registered rule names.
func (db *DB) DefinePaperRules() ([]string, error) {
	if db.Workload == nil {
		return nil, fmt.Errorf("repro: DefinePaperRules requires LoadRFIDWorkload")
	}
	var names []string
	for _, src := range db.Workload.PaperRules() {
		r, err := db.Registry.Define(src)
		if err != nil {
			return nil, err
		}
		names = append(names, r.Rule.Name)
	}
	return names, nil
}

// RuleInfo describes a registered rule.
type RuleInfo struct {
	Name string
	// SQLTS is the rule re-rendered in extended SQL-TS.
	SQLTS string
	// Template is the persisted SQL/OLAP template over $input.
	Template string
}

// DefineRule parses, compiles, and registers a cleansing rule written in
// extended SQL-TS.
func (db *DB) DefineRule(src string) (RuleInfo, error) {
	r, err := db.Registry.Define(src)
	if err != nil {
		return RuleInfo{}, err
	}
	return RuleInfo{Name: r.Rule.Name, SQLTS: r.Rule.String(), Template: r.TemplateSQL}, nil
}

// QueryOption customizes Query/Rewrite/Explain.
type QueryOption func(*queryOpts)

type queryOpts struct {
	strategy Strategy
	rules    []string
}

// WithStrategy forces a rewrite strategy (default Auto).
func WithStrategy(s Strategy) QueryOption {
	return func(o *queryOpts) { o.strategy = s }
}

// WithRules restricts cleansing to the named rules (default: every
// registered rule on the tables the query touches, in creation order).
func WithRules(names ...string) QueryOption {
	return func(o *queryOpts) { o.rules = names }
}

// Rows is a materialized query result.
type Rows struct {
	// Columns are output column names.
	Columns []string
	// Data holds the rows.
	Data [][]Value
	// Rewrite describes how the query was executed.
	Rewrite RewriteInfo
}

// RewriteInfo reports the chosen rewrite.
type RewriteInfo struct {
	Strategy Strategy
	SQL      string
	EstCost  float64
	// Candidates lists every evaluated (strategy, pushes, cost) triple.
	Candidates []core.CandidateInfo
}

// Query rewrites the SQL under the active cleansing rules and executes it.
func (db *DB) Query(sql string, opts ...QueryOption) (*Rows, error) {
	res, err := db.rewrite(sql, opts...)
	if err != nil {
		return nil, err
	}
	out, err := exec.Run(exec.NewCtx(), res.Plan)
	if err != nil {
		return nil, err
	}
	rows := &Rows{Rewrite: info(res)}
	for _, c := range out.Schema.Columns {
		rows.Columns = append(rows.Columns, c.Name)
	}
	for _, r := range out.Rows {
		rows.Data = append(rows.Data, append([]Value{}, r...))
	}
	return rows, nil
}

// Rewrite returns the rewritten SQL without executing it.
func (db *DB) Rewrite(sql string, opts ...QueryOption) (RewriteInfo, error) {
	res, err := db.rewrite(sql, opts...)
	if err != nil {
		return RewriteInfo{}, err
	}
	return info(res), nil
}

// Explain returns the physical plan of the rewritten query, with
// cardinality and cost estimates.
func (db *DB) Explain(sql string, opts ...QueryOption) (string, error) {
	res, err := db.rewrite(sql, opts...)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "-- strategy: %s (est cost %.0f)\n-- %s\n", res.Strategy, res.EstCost, res.SQL)
	b.WriteString(exec.Explain(res.Plan))
	return b.String(), nil
}

// Prepared is a query that has been rewritten and planned once and can be
// executed repeatedly. Plans hold no per-execution state, so a Prepared is
// safe for concurrent Run calls; it does not observe rules defined or data
// loaded after Prepare.
type Prepared struct {
	db   *DB
	plan exec.Node
	info RewriteInfo
}

// Prepare rewrites and plans a query once.
func (db *DB) Prepare(sql string, opts ...QueryOption) (*Prepared, error) {
	res, err := db.rewrite(sql, opts...)
	if err != nil {
		return nil, err
	}
	return &Prepared{db: db, plan: res.Plan, info: info(res)}, nil
}

// Rewrite reports how the prepared query will execute.
func (p *Prepared) Rewrite() RewriteInfo { return p.info }

// Run executes the prepared plan.
func (p *Prepared) Run() (*Rows, error) {
	out, err := exec.Run(exec.NewCtx(), p.plan)
	if err != nil {
		return nil, err
	}
	rows := &Rows{Rewrite: p.info}
	for _, c := range out.Schema.Columns {
		rows.Columns = append(rows.Columns, c.Name)
	}
	for _, r := range out.Rows {
		rows.Data = append(rows.Data, append([]Value{}, r...))
	}
	return rows, nil
}

// ExplainAnalyze rewrites and executes the query, returning the plan
// annotated with both the planner's estimates and the actual row counts
// and operator times.
func (db *DB) ExplainAnalyze(sql string, opts ...QueryOption) (string, error) {
	res, err := db.rewrite(sql, opts...)
	if err != nil {
		return "", err
	}
	ctx := exec.NewAnalyzeCtx()
	if _, err := exec.Run(ctx, res.Plan); err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "-- strategy: %s (est cost %.0f)\n", res.Strategy, res.EstCost)
	b.WriteString(exec.ExplainAnalyze(res.Plan, ctx))
	return b.String(), nil
}

// MaterializeCleansed eagerly applies the named rules (all rules on the
// table when names is empty) and stores the cleansed result as a new base
// table — the paper's hybrid model, where anomalies common to every
// consumer are cleansed once up front while application-specific ones stay
// deferred. The new table copies the source's indexes and refreshes
// statistics. Rules that create columns via MODIFY are rejected (the
// destination keeps the source schema).
func (db *DB) MaterializeCleansed(source, dest string, ruleNames ...string) (int, error) {
	src, ok := db.Catalog.Table(source)
	if !ok {
		return 0, fmt.Errorf("repro: no table %q", source)
	}
	cols := make([]string, src.Schema.Len())
	for i, c := range src.Schema.Columns {
		cols[i] = c.Name
	}
	res, err := db.rewrite(
		"SELECT "+strings.Join(cols, ", ")+" FROM "+source,
		WithStrategy(Naive), WithRules(ruleNames...),
	)
	if err != nil {
		return 0, err
	}
	out, err := exec.Run(exec.NewCtx(), res.Plan)
	if err != nil {
		return 0, err
	}
	dst := storage.NewTable(dest, src.Schema.WithQualifier(dest))
	for _, r := range out.Rows {
		if err := dst.Append(r); err != nil {
			return 0, err
		}
	}
	if err := db.Catalog.AddTable(dst); err != nil {
		return 0, err
	}
	for ord := range src.Schema.Columns {
		if src.HasIndex(ord) {
			if err := dst.BuildIndex(dst.Schema.Columns[ord].Name); err != nil {
				return 0, err
			}
		}
	}
	dst.Analyze()
	return dst.RowCount(), nil
}

// RuleEffect summarizes what one rule would do to its table right now —
// a dry run for rule authors; nothing is modified.
type RuleEffect struct {
	// Input and Output are the row counts before and after the rule.
	Input, Output int
	// Deleted is Input − Output (DELETE/KEEP rules).
	Deleted int
	// Modified counts rows whose content changed (MODIFY rules; compares
	// the columns common to input and output).
	Modified int
	// SampleDeleted holds up to limit removed rows, rendered.
	SampleDeleted []string
	// SampleModified holds up to limit "before → after" pairs.
	SampleModified []string
}

// DryRunRule applies a single registered rule to its full input and
// reports the effect without touching stored data. The sample slices are
// capped at limit entries each.
func (db *DB) DryRunRule(ruleName string, limit int) (*RuleEffect, error) {
	reg, ok := db.Registry.Rule(ruleName)
	if !ok {
		return nil, fmt.Errorf("repro: unknown rule %q", ruleName)
	}
	inCols, err := db.Registry.InputColumns(reg.Rule)
	if err != nil {
		return nil, err
	}
	colList := strings.Join(inCols, ", ")
	rawRows, err := db.Query("SELECT "+colList+" FROM "+reg.Rule.From, WithStrategy(Dirty))
	if err != nil {
		return nil, err
	}
	cleanRows, err := db.Query("SELECT "+colList+" FROM "+reg.Rule.On, WithStrategy(Naive), WithRules(ruleName))
	if err != nil {
		return nil, err
	}
	eff := &RuleEffect{Input: len(rawRows.Data), Output: len(cleanRows.Data)}
	render := func(r []Value) string {
		parts := make([]string, len(r))
		for i, v := range r {
			parts[i] = v.String()
		}
		return strings.Join(parts, " | ")
	}
	// Multiset difference keyed on the rendered row. Keyed by the rule's
	// cluster+sequence key for the modified pairing.
	ckIdx, skIdx := -1, -1
	for i, c := range inCols {
		if strings.EqualFold(c, reg.Rule.ClusterBy) {
			ckIdx = i
		}
		if strings.EqualFold(c, reg.Rule.SequenceBy) {
			skIdx = i
		}
	}
	outByKey := map[string][]string{}
	outAll := map[string]int{}
	for _, r := range cleanRows.Data {
		line := render(r)
		outAll[line]++
		if ckIdx >= 0 && skIdx >= 0 {
			k := r[ckIdx].String() + "|" + r[skIdx].String()
			outByKey[k] = append(outByKey[k], line)
		}
	}
	for _, r := range rawRows.Data {
		line := render(r)
		if outAll[line] > 0 {
			outAll[line]--
			continue
		}
		// The row is gone or changed. If a row with the same (ckey, skey)
		// survived, call it modified; otherwise deleted.
		if ckIdx >= 0 && skIdx >= 0 {
			k := r[ckIdx].String() + "|" + r[skIdx].String()
			if alts := outByKey[k]; len(alts) > 0 {
				eff.Modified++
				if len(eff.SampleModified) < limit {
					eff.SampleModified = append(eff.SampleModified, line+"  →  "+alts[0])
				}
				continue
			}
		}
		eff.Deleted++
		if len(eff.SampleDeleted) < limit {
			eff.SampleDeleted = append(eff.SampleDeleted, line)
		}
	}
	return eff, nil
}

// ExpandedConditions reports the per-rule expanded conditions the
// transitivity analysis derives for a query (Table 1 of the paper);
// infeasible rules map to "{}".
func (db *DB) ExpandedConditions(sql string, opts ...QueryOption) (map[string]string, error) {
	o := applyOpts(opts)
	return db.Rewriter.ExpandedConditions(sql, o.rules)
}

func applyOpts(opts []QueryOption) *queryOpts {
	o := &queryOpts{strategy: Auto}
	for _, f := range opts {
		f(o)
	}
	return o
}

func (db *DB) rewrite(sql string, opts ...QueryOption) (*core.Result, error) {
	o := applyOpts(opts)
	return db.Rewriter.RewriteSQL(sql, o.rules, o.strategy)
}

func info(res *core.Result) RewriteInfo {
	return RewriteInfo{Strategy: res.Strategy, SQL: res.SQL, EstCost: res.EstCost, Candidates: res.Candidates}
}
