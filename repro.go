// Package repro is a from-scratch reproduction of "A Deferred Cleansing
// Method for RFID Data Analytics" (Rao, Doraiswamy, Thakkar, Colby —
// VLDB 2006): query-time cleansing of RFID read anomalies.
//
// Applications declare anomalies with sequence-based rules in an extended
// SQL-TS (DEFINE … AS (A, *B) WHERE … ACTION DELETE|KEEP|MODIFY …). Rules
// compile to SQL/OLAP window-function templates kept in a rules catalog.
// When a query arrives, the rewrite engine combines it with the relevant
// rules and produces either an expanded rewrite (predicate relaxation via
// transitivity analysis over the rules' correlation conditions) or a
// join-back rewrite (cleansing restricted to the query's EPC sequences),
// choosing by cost estimate — so only the data the query needs, plus the
// context required to cleanse it, is ever cleaned.
//
// The package bundles the whole system the paper runs on: an embedded
// in-memory relational engine with SQL/OLAP window functions (standing in
// for the DBMS), the rule language and compiler, the rewrite engine, and
// the RFIDGen workload generator used by the paper's evaluation.
//
//	db := repro.Open()
//	db.LoadRFIDWorkload(repro.WorkloadConfig{Scale: 10, AnomalyPct: 10})
//	db.DefineRule(`DEFINE dup ON caseR AS (A, B)
//	    WHERE A.biz_loc = B.biz_loc AND B.rtime - A.rtime < 5 mins
//	    ACTION DELETE B`)
//	rows, _ := db.Query(`SELECT count(*) FROM caseR WHERE rtime <= ...`)
//
// The DB serves many callers at once: queries run concurrently while rule
// definitions and data loads serialize behind them, every entry point has
// a Context variant (QueryContext, PrepareContext, ExplainContext,
// Prepared.RunContext) that cancels cooperatively mid-operator, and a
// rewrite+plan cache keyed by (SQL, strategy, rules, catalog epoch) lets
// repeated queries skip parse, rewrite, and costing entirely — the
// amortization a long-lived cleansing service needs, since the paper's
// rewrites are recomputed per query otherwise.
package repro

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/enginerr"
	"repro/internal/exec"
	"repro/internal/govern"
	"repro/internal/persist"
	"repro/internal/plan"
	"repro/internal/rfidgen"
	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/types"
)

// Strategy selects how a query is rewritten for cleansing.
type Strategy = core.Strategy

// Rewrite strategies. Auto (the default) costs every candidate and runs
// the cheapest, like the paper's prototype.
const (
	Auto     = core.StrategyAuto
	Naive    = core.StrategyNaive
	Expanded = core.StrategyExpanded
	JoinBack = core.StrategyJoinBack
	Dirty    = core.StrategyDirty
)

// Kind re-exports the engine's value kinds.
type Kind = types.Kind

// Value kinds for ColumnDef.
const (
	KindBool     = types.KindBool
	KindInt      = types.KindInt
	KindFloat    = types.KindFloat
	KindString   = types.KindString
	KindTime     = types.KindTime
	KindInterval = types.KindInterval
)

// Value is a scalar query result value.
type Value = types.Value

// Value constructors for Insert and parameter building.

// NewBool builds a BOOL value.
func NewBool(b bool) Value { return types.NewBool(b) }

// NewInt builds an INT value.
func NewInt(i int64) Value { return types.NewInt(i) }

// NewFloat builds a FLOAT value.
func NewFloat(f float64) Value { return types.NewFloat(f) }

// NewString builds a STRING value.
func NewString(s string) Value { return types.NewString(s) }

// NewTime builds a TIME value (microsecond resolution).
func NewTime(t time.Time) Value { return types.NewTimeFrom(t) }

// NewInterval builds an INTERVAL value.
func NewInterval(d time.Duration) Value { return types.NewIntervalFrom(d) }

// Null is the SQL NULL value.
var Null = types.Null

// Sentinel errors, matchable with errors.Is. Methods wrap them with the
// offending name, e.g. `repro: no such table: "caser"`. ErrNoTable and
// ErrUnknownRule live in internal/enginerr so the planner and rewriter
// wrap the same values when name resolution fails mid-query.
var (
	// ErrNoTable reports a reference to a table the catalog doesn't hold.
	ErrNoTable = enginerr.ErrNoTable
	// ErrUnknownRule reports a reference to an unregistered cleansing rule.
	ErrUnknownRule = enginerr.ErrUnknownRule
	// ErrCanceled reports a query aborted by its context — canceled or past
	// its deadline. The context's own error is wrapped too, so both
	// errors.Is(err, ErrCanceled) and errors.Is(err, context.Canceled) (or
	// context.DeadlineExceeded) hold.
	ErrCanceled = errors.New("repro: query canceled")
)

// Resource-governance sentinels, re-exported from internal/govern so
// callers can match them with errors.Is without importing internals.
var (
	// ErrResourceExhausted reports a query that crossed its memory budget
	// with spilling disabled (or an operator with no spill path).
	ErrResourceExhausted = govern.ErrResourceExhausted
	// ErrOverloaded reports a query rejected by admission control: the
	// concurrency limit was reached and the wait queue was full.
	ErrOverloaded = govern.ErrOverloaded
	// ErrInternal reports an execution worker that panicked; the error
	// carries the recovered value and stack. Only the panicking query
	// fails — concurrent queries and later queries are unaffected.
	ErrInternal = govern.ErrInternal
)

// MemStats summarizes one query's memory accounting: budget, peak charged
// bytes, and spill activity.
type MemStats = govern.MemStats

// AdmissionStats snapshots the admission controller's counters.
type AdmissionStats = govern.AdmissionStats

// FaultInjection describes deterministic faults to force during one
// query's execution (see WithFaults). The zero value injects nothing.
type FaultInjection = govern.Inject

// wrapCanceled tags context-abort errors with ErrCanceled; other errors
// pass through untouched.
func wrapCanceled(err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	return err
}

// DB is a deferred-cleansing database: storage, planner, rules catalog,
// and rewrite engine.
//
// A DB is safe for concurrent use. Queries (Query, Prepare, Explain,
// Rewrite, Prepared.Run and their Context variants) run concurrently with
// each other; catalog mutations (CreateTable, Insert, DefineRule,
// BuildIndex, Analyze, LoadRFIDWorkload, MaterializeCleansed) serialize
// behind them and block new queries until done. Mutating Catalog,
// Registry, or table contents directly bypasses that guarantee.
type DB struct {
	Catalog  *catalog.Database
	Registry *core.Registry
	Rewriter *core.Rewriter
	Planner  *plan.Planner

	// Workload carries the last RFIDGen dataset loaded, if any, exposing
	// the generator's ground truth and rule constants.
	Workload *rfidgen.Dataset

	// mu is the serving lock: queries hold the read side for their whole
	// rewrite+execute span (plans read table row slices in place), writers
	// take the write side.
	mu sync.RWMutex
	// cache memoizes rewrites+plans per (SQL, strategy, rules, epoch).
	cache *planCache

	// admit bounds concurrent query execution; nil admits everything.
	admit *govern.Admission
	// defMemLimit and spillDir are the engine-wide governance defaults a
	// query can override with WithMemoryLimit / inherit for spill files.
	defMemLimit int64
	spillDir    string
	// totals accumulates per-query governance outcomes for ResourceStats.
	totals resourceTotals

	// tel is the DB's observability state — metric registry, slow-query
	// log, metrics listener (see telemetry.go); nil with WithoutTelemetry.
	tel *dbTelemetry

	// wal and durable are the durability layer (see durability.go); both
	// nil on a DB opened without WithWAL.
	wal     *persist.WAL
	durable *durableState
}

// resourceTotals aggregates governance outcomes across queries. One mutex
// guards the whole struct so ResourceStats reads a consistent snapshot:
// a reader never sees a query's spill runs without its byte volume, or a
// bumped query count with a stale peak. note is two compare-free integer
// adds under an uncontended lock — not a per-row path.
type resourceTotals struct {
	mu         sync.Mutex
	queries    int64
	spilled    int64
	spillRuns  int64
	spillBytes int64
	exhausted  int64
	maxPeak    int64
}

func (t *resourceTotals) note(m MemStats, wasExhausted bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.queries++
	if m.Spilled() {
		t.spilled++
	}
	t.spillRuns += m.SpillRuns
	t.spillBytes += m.SpillBytes
	if wasExhausted {
		t.exhausted++
	}
	if m.Peak > t.maxPeak {
		t.maxPeak = m.Peak
	}
}

// snapshot returns the totals as one consistent ResourceStats (without
// the admission section, which the caller fills in).
func (t *resourceTotals) snapshot() ResourceStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return ResourceStats{
		Queries:        t.queries,
		SpilledQueries: t.spilled,
		SpillRuns:      t.spillRuns,
		SpillBytes:     t.spillBytes,
		Exhausted:      t.exhausted,
		MaxPeak:        t.maxPeak,
	}
}

// Option configures a DB at Open/OpenDir time.
type Option func(*dbConfig)

// dbConfig collects Open options before the DB is assembled; queueDepth
// is -1 until WithAdmissionQueue sets it, so the default can depend on
// the concurrency limit.
type dbConfig struct {
	maxConcurrent int
	queueDepth    int
	defMemLimit   int64
	spillDir      string

	// Observability options (see telemetry.go).
	noTelemetry    bool
	metricsAddr    string
	slowThreshold  time.Duration
	slowLogger     *slog.Logger
	latencyBuckets []float64
	traceSample    float64
	traceSampleSet bool
	traceExport    io.Writer

	// Durability options (see durability.go).
	walDir             string
	fsyncPolicy        FsyncPolicy
	fsyncInterval      time.Duration
	checkpointBytes    int64
	checkpointInterval time.Duration
	walFaults          *persist.CrashFaults
}

// WithMaxConcurrent bounds how many queries execute at once; further
// queries wait in a bounded queue (see WithAdmissionQueue) and are
// rejected with ErrOverloaded past that. n <= 0 (the default) means
// unlimited.
func WithMaxConcurrent(n int) Option {
	return func(c *dbConfig) { c.maxConcurrent = n }
}

// WithAdmissionQueue sets the admission wait-queue depth (default 2× the
// concurrency limit; 0 rejects as soon as the limit is reached). It only
// takes effect together with WithMaxConcurrent; order the two options
// either way.
func WithAdmissionQueue(depth int) Option {
	return func(c *dbConfig) { c.queueDepth = depth }
}

// WithDefaultMemoryLimit sets the engine-wide per-query memory budget in
// bytes, inherited by every query that doesn't set WithMemoryLimit.
// 0 (the default) means unlimited.
func WithDefaultMemoryLimit(bytes int64) Option {
	return func(c *dbConfig) { c.defMemLimit = bytes }
}

// WithSpillDir places query spill files under dir instead of the system
// temp directory. Each query gets its own subdirectory, removed when the
// query finishes (even on cancellation).
func WithSpillDir(dir string) Option {
	return func(c *dbConfig) { c.spillDir = dir }
}

// newDB assembles a DB around an existing catalog and rules registry.
func newDB(cat *catalog.Database, reg *core.Registry) *DB {
	return &DB{
		Catalog:  cat,
		Registry: reg,
		Rewriter: core.NewRewriter(cat, reg),
		Planner:  plan.New(cat),
		cache:    newPlanCache(),
	}
}

// collectDBOpts folds Open options into one config.
func collectDBOpts(opts []Option) *dbConfig {
	c := &dbConfig{queueDepth: -1}
	for _, f := range opts {
		f(c)
	}
	return c
}

// Open creates an empty database. Options configure resource governance
// (admission control, default memory budget, spill location). Durability
// (WithWAL) requires OpenDir — recovery can fail, and Open has no error
// return — so Open panics on it.
func Open(opts ...Option) *DB {
	if c := collectDBOpts(opts); c.walDir != "" {
		panic("repro: WithWAL requires OpenDir (recovery can fail); use OpenDir(\"\", WithWAL(dir))")
	}
	cat := catalog.NewDatabase()
	db := newDB(cat, core.NewRegistry(cat))
	applyDBOpts(db, opts)
	return db
}

// OpenDir restores a database previously written with Save: tables,
// views, and the rules catalog (indexes rebuilt, statistics refreshed).
// Options are applied as in Open.
//
// With WithWAL the directory semantics change: the WAL root is the
// source of truth, recovered checkpoint-plus-log on every open, and dir
// is only a seed snapshot for a fresh root (pass "" for none). See
// durability.go.
func OpenDir(dir string, opts ...Option) (*DB, error) {
	if c := collectDBOpts(opts); c.walDir != "" {
		return openDurable(dir, c, opts)
	}
	cat, reg, err := persist.Load(dir)
	if err != nil {
		return nil, err
	}
	db := newDB(cat, reg)
	applyDBOpts(db, opts)
	return db, nil
}

func applyDBOpts(db *DB, opts []Option) {
	c := collectDBOpts(opts)
	queue := c.queueDepth
	if queue < 0 {
		queue = 2 * c.maxConcurrent
	}
	db.admit = govern.NewAdmission(c.maxConcurrent, queue)
	db.defMemLimit = c.defMemLimit
	db.spillDir = c.spillDir
	applyTelemetry(db, c)
}

// Save persists the database — tables, views, rules — to a directory that
// OpenDir can restore.
func (db *DB) Save(dir string) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return persist.Save(db.Catalog, db.Registry, dir)
}

// ColumnDef declares one column of a table.
type ColumnDef struct {
	Name string
	Kind Kind
}

// ParseKind reads a kind name as rendered by Kind.String() — BOOL, INT,
// FLOAT, STRING, TIME, INTERVAL. The wire layer and shell use it to turn
// user-supplied schemas into ColumnDefs.
func ParseKind(name string) (Kind, error) {
	for _, k := range []Kind{KindBool, KindInt, KindFloat, KindString, KindTime, KindInterval} {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("repro: unknown kind %q", name)
}

// TableColumns reports a table's schema in declaration order.
func (db *DB) TableColumns(table string) ([]ColumnDef, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.Catalog.Table(table)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, table)
	}
	cols := make([]ColumnDef, t.Schema.Len())
	for i, c := range t.Schema.Columns {
		cols[i] = ColumnDef{Name: c.Name, Kind: c.Kind}
	}
	return cols, nil
}

// CreateTable adds an empty base table. On a durable DB the DDL is
// WAL-logged and synced before it is acknowledged.
func (db *DB) CreateTable(name string, cols ...ColumnDef) error {
	s := &schema.Schema{}
	for _, c := range cols {
		s.Columns = append(s.Columns, schema.Col(name, c.Name, c.Kind))
	}
	t := storage.NewTable(name, s)
	db.mu.Lock()
	defer db.mu.Unlock()
	// Validate before logging: a record enters the WAL only if its apply
	// must succeed, so replay cannot fail where the live path succeeded.
	if _, exists := db.Catalog.Table(name); exists {
		return fmt.Errorf("catalog: table %q already exists", strings.ToLower(name))
	}
	if _, exists := db.Catalog.View(name); exists {
		return fmt.Errorf("catalog: %q already names a view", strings.ToLower(name))
	}
	if err := db.walDDL(persist.NewTableDDL(name, s)); err != nil {
		return err
	}
	return db.Catalog.AddTable(t)
}

// Insert appends rows of values to a table. Row arity must match the
// table schema. On a durable DB the batch is WAL-logged and synced per
// the fsync policy before returning — Insert and Ingest are equivalent
// there; Ingest exists to make the durable contract explicit at call
// sites.
func (db *DB) Insert(table string, rows ...[]Value) error {
	return db.Ingest(table, rows...)
}

// BuildIndex creates (or rebuilds) a sorted index on a column.
func (db *DB) BuildIndex(table, column string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.Catalog.Table(table)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoTable, table)
	}
	if t.Schema.IndexOf(column) < 0 {
		return fmt.Errorf("storage: no column %q in table %s", column, t.Name)
	}
	if err := db.walDDL(persist.DDLRecord{Op: persist.DDLBuildIndex, Table: table, Column: column}); err != nil {
		return err
	}
	if err := t.BuildIndex(column); err != nil {
		return err
	}
	db.Catalog.BumpEpoch()
	return nil
}

// Analyze refreshes optimizer statistics for a table.
func (db *DB) Analyze(table string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.Catalog.Table(table)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoTable, table)
	}
	t.Analyze()
	db.Catalog.BumpEpoch()
	return nil
}

// CreateView registers a named view. On a durable DB the DDL is
// WAL-logged and synced before it is acknowledged.
func (db *DB) CreateView(name, query string) error {
	stmt, err := sqlparser.Parse(query)
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.Catalog.View(name); exists {
		return fmt.Errorf("catalog: view %q already exists", strings.ToLower(name))
	}
	if _, exists := db.Catalog.Table(name); exists {
		return fmt.Errorf("catalog: %q already names a table", strings.ToLower(name))
	}
	if err := db.walDDL(persist.DDLRecord{Op: persist.DDLCreateView, Name: name, SQL: sqlast.SQL(stmt)}); err != nil {
		return err
	}
	return db.Catalog.AddView(name, stmt)
}

// WorkloadConfig mirrors the RFIDGen parameters (§6.1 of the paper).
type WorkloadConfig struct {
	// Scale is the paper's scale factor s (number of pallet EPCs); caseR
	// gets about s*1500 rows.
	Scale int
	// AnomalyPct is the dirty percentage (the paper uses 10–40).
	AnomalyPct int
	// Seed fixes the data; 0 is a valid fixed seed.
	Seed int64
	// Start anchors the 5-year read window (defaults to 2021-01-01).
	Start time.Time
}

// LoadRFIDWorkload generates and loads the paper's 7-table supply-chain
// schema with injected anomalies, and registers the missing rule's
// case∪pallet input view.
func (db *DB) LoadRFIDWorkload(cfg WorkloadConfig) error {
	d := rfidgen.Generate(rfidgen.Config{
		Scale: cfg.Scale, AnomalyPct: cfg.AnomalyPct, Seed: cfg.Seed, Start: cfg.Start,
	})
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := d.Load(db.Catalog); err != nil {
		return err
	}
	db.Workload = d
	db.Catalog.BumpEpoch()
	// Durable DBs make bulk loads durable with one checkpoint instead of
	// WAL-logging every generated row; a crash mid-load loses the whole
	// load atomically, never a partial workload.
	return db.walCheckpointLocked()
}

// DefinePaperRules registers the five cleansing rules of §4.3 against the
// loaded workload, in Table 1 order. It requires LoadRFIDWorkload first.
// It returns the registered rule names.
func (db *DB) DefinePaperRules() ([]string, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.Workload == nil {
		return nil, fmt.Errorf("repro: DefinePaperRules requires LoadRFIDWorkload")
	}
	var names []string
	for _, src := range db.Workload.PaperRules() {
		r, err := db.Registry.Define(src)
		if err != nil {
			return nil, err
		}
		if err := db.walRule(r.Rule.String()); err != nil {
			return nil, err
		}
		names = append(names, r.Rule.Name)
	}
	return names, nil
}

// RuleInfo describes a registered rule.
type RuleInfo struct {
	Name string
	// SQLTS is the rule re-rendered in extended SQL-TS.
	SQLTS string
	// Template is the persisted SQL/OLAP template over $input.
	Template string
}

// DefineRule parses, compiles, and registers a cleansing rule written in
// extended SQL-TS. Registration invalidates cached rewrites of queries
// over the rule's table.
func (db *DB) DefineRule(src string) (RuleInfo, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	r, err := db.Registry.Define(src)
	if err != nil {
		return RuleInfo{}, err
	}
	// Log the registry's canonical rendering, the same form the snapshot
	// manifest stores, so replay re-defines the identical rule.
	if err := db.walRule(r.Rule.String()); err != nil {
		return RuleInfo{}, err
	}
	return RuleInfo{Name: r.Rule.Name, SQLTS: r.Rule.String(), Template: r.TemplateSQL}, nil
}

// QueryOption customizes Query/Rewrite/Explain.
type QueryOption func(*queryOpts)

type queryOpts struct {
	strategy    Strategy
	rules       []string
	timeout     time.Duration
	parallelism int
	rowEval     bool

	memLimit int64 // per-query budget; meaningful only when memSet
	memSet   bool
	noSpill  bool
	faults   FaultInjection

	// traceSet asks for a span tree (WithTrace); traceHook, when non-nil,
	// receives the finished trace even on query failure.
	traceSet  bool
	traceHook func(*Trace)
}

// WithStrategy forces a rewrite strategy (default Auto).
func WithStrategy(s Strategy) QueryOption {
	return func(o *queryOpts) { o.strategy = s }
}

// WithRules restricts cleansing to the named rules (default: every
// registered rule on the tables the query touches, in creation order).
func WithRules(names ...string) QueryOption {
	return func(o *queryOpts) { o.rules = names }
}

// WithTimeout bounds the query's total rewrite+execution time. Zero (the
// default) means no limit. It composes with any deadline already on the
// caller's context: whichever expires first cancels the query, which then
// fails with an error matching both ErrCanceled and
// context.DeadlineExceeded.
func WithTimeout(d time.Duration) QueryOption {
	return func(o *queryOpts) { o.timeout = d }
}

// WithParallelism sets this query's intra-query worker-pool width: scans,
// filters, joins, sorts, aggregations, and window partitions split large
// inputs into morsels executed by up to n goroutines, and independent
// plan subtrees run concurrently. 1 forces serial execution; values < 1
// (including the zero default) use the process-wide exec.Parallelism,
// which defaults to the CPU count. Results are bit-identical at every
// setting — parallel operators preserve serial output order exactly — so
// the knob trades only latency for CPU, never answers.
func WithParallelism(n int) QueryOption {
	return func(o *queryOpts) { o.parallelism = n }
}

// WithRowEval forces row-at-a-time expression evaluation for this query,
// disabling the vectorized (batch) kernels the executor uses by default.
// Results are bit-identical either way — the batch path falls back to the
// row path on any kernel error, so even failures match — which makes this
// a debugging and benchmarking knob: it isolates whether a discrepancy or
// a speedup comes from batch evaluation, and it is the row baseline the
// vectorization benchmarks measure against.
func WithRowEval() QueryOption {
	return func(o *queryOpts) { o.rowEval = true }
}

// WithMemoryLimit bounds this query's working memory to n bytes,
// overriding the engine default set by WithDefaultMemoryLimit. Operators
// that would cross the budget spill to temp files (sort, aggregation,
// join build) — answers stay bit-identical to the in-memory paths — and
// operators with no spill path fail with ErrResourceExhausted. 0 means
// unlimited.
func WithMemoryLimit(n int64) QueryOption {
	return func(o *queryOpts) { o.memLimit, o.memSet = n, true }
}

// WithoutSpill disables the disk fallback for this query: crossing the
// memory budget fails fast with ErrResourceExhausted instead of
// degrading to temp files. Useful when predictable latency matters more
// than completing oversized queries.
func WithoutSpill() QueryOption {
	return func(o *queryOpts) { o.noSpill = true }
}

// WithFaults injects deterministic failures into this query's execution —
// allocation failures, a one-shot worker panic, per-operator delays, or
// spill-file I/O errors. It exists for tests and the soak suite; the zero
// FaultInjection injects nothing.
func WithFaults(f FaultInjection) QueryOption {
	return func(o *queryOpts) { o.faults = f }
}

// execCtx builds the execution context for one query run, applying the
// WithParallelism and WithRowEval options.
func (o *queryOpts) execCtx(ctx context.Context) *exec.Ctx {
	return exec.NewCtxWith(ctx).SetParallelism(o.parallelism).SetVectorize(!o.rowEval)
}

// resources builds the per-query governance handle from the query options
// layered over the engine defaults.
func (db *DB) resources(o *queryOpts) *govern.Resources {
	limit := db.defMemLimit
	if o.memSet {
		limit = o.memLimit
	}
	return govern.NewResources(limit, !o.noSpill, db.spillDir, o.faults)
}

// admitQuery passes one query through admission control, tagging
// queue-wait cancellations with ErrCanceled.
func (db *DB) admitQuery(ctx context.Context) (func(), error) {
	release, err := db.admit.Acquire(ctx)
	if err != nil {
		return nil, wrapCanceled(err)
	}
	return release, nil
}

// deadline applies the WithTimeout option, if any, to ctx.
func (o *queryOpts) deadline(ctx context.Context) (context.Context, context.CancelFunc) {
	if o.timeout > 0 {
		return context.WithTimeout(ctx, o.timeout)
	}
	return ctx, func() {}
}

// Rows is a query result. Query/QueryContext return it eager — Data
// fully materialized — while QueryStream/StreamContext return it live,
// with Data nil and rows pulled from the engine by Next. The cursor API
// (Next, Row, Scan, Err, Close) works over both forms.
type Rows struct {
	// Columns are output column names.
	Columns []string
	// Data holds the rows of an eager result; nil on a streaming one.
	Data [][]Value
	// Rewrite describes how the query was executed.
	Rewrite RewriteInfo
	// Mem reports the query's memory accounting: configured budget, peak
	// charged bytes, and spill runs/bytes if any operator went to disk.
	// On a streaming Rows it is populated when the stream finishes.
	Mem MemStats

	// trace is the query's span tree when one was collected; Trace reads it.
	trace *Trace

	// pos/cur are the cursor over Data (eager) or the current streamed
	// row; src is the live executor stream, nil on eager results.
	pos int
	cur []Value
	src *rowsStream
}

// RewriteInfo reports the chosen rewrite.
type RewriteInfo struct {
	Strategy Strategy
	SQL      string
	EstCost  float64
	// Candidates lists every evaluated (strategy, pushes, cost) triple.
	Candidates []core.CandidateInfo
	// CacheHit reports whether this rewrite was served from the DB's
	// rewrite+plan cache (parse, rewrite, and costing were all skipped).
	CacheHit bool
	// CacheHits and CacheMisses are the cache's cumulative counters as of
	// this query; PlanCacheStats reads them on demand.
	CacheHits, CacheMisses uint64
}

// Query rewrites the SQL under the active cleansing rules and executes it.
func (db *DB) Query(sql string, opts ...QueryOption) (*Rows, error) {
	return db.QueryContext(context.Background(), sql, opts...)
}

// QueryContext is Query governed by a context: cancellation or deadline
// expiry stops execution cooperatively mid-operator, and the query fails
// with an error matching ErrCanceled and the context's own error.
func (db *DB) QueryContext(ctx context.Context, sql string, opts ...QueryOption) (*Rows, error) {
	o := applyOpts(opts)
	ctx, cancel := o.deadline(ctx)
	defer cancel()
	tel := db.startQuery(sql, o)
	if tel != nil {
		// A private cancellation layer under the caller's context so
		// DB.Kill can stop exactly this query; the registry entry holds
		// the cancel func.
		var kill context.CancelFunc
		ctx, kill = context.WithCancel(ctx)
		defer kill()
		tel.activate("query", kill)
		tel.setPhase("queued")
	}
	admitStart := time.Now()
	release, err := db.admitQuery(ctx)
	if err != nil {
		tel.finish(nil, err)
		return nil, err
	}
	tel.noteAdmit(admitStart, time.Since(admitStart))
	defer release()
	db.mu.RLock()
	defer db.mu.RUnlock()
	rows, err := db.queryLocked(ctx, sql, o, tel)
	tel.finish(rows, err)
	return rows, err
}

// queryLocked runs one governed query under an already-held read lock.
// tel, when non-nil, observes the run (phase spans, per-operator stats,
// memory accounting); the caller finishes it.
func (db *DB) queryLocked(ctx context.Context, sql string, o *queryOpts, tel *qtel) (*Rows, error) {
	key := newCacheKey(sql, o, db.Catalog.Epoch())
	var compileStart time.Time
	if tel != nil {
		tel.setPhase("compile")
		compileStart = time.Now()
	}
	res, inf, err := db.rewriteCached(sql, o)
	if err != nil {
		return nil, err
	}
	tel.notePhases(res.Phases, inf.CacheHit, compileStart)
	grs := db.resources(o)
	defer grs.Close()
	ectx := o.execCtx(ctx).SetResources(grs)
	var execStart time.Time
	if tel != nil {
		ectx.EnableStats()
		tel.attachExec(ectx, grs)
		tel.setPhase("execute")
		execStart = time.Now()
	}
	out, err := exec.Run(ectx, res.Plan)
	db.totals.note(grs.Stats(), err != nil && grs.Exhausted())
	if tel != nil {
		tel.noteMem(grs.Stats())
		tel.noteExec(res.Plan, ectx, execStart, time.Since(execStart))
	}
	if err != nil {
		if grs.Exhausted() {
			// Drop the cached plan so a retry under a raised limit (or with
			// spilling re-enabled) replans instead of being pinned to the
			// entry that just failed.
			db.cache.evict(key)
		}
		return nil, wrapCanceled(err)
	}
	rows := newRows(out, res.Plan, inf)
	rows.Mem = grs.Stats()
	return rows, nil
}

// Rewrite returns the rewritten SQL without executing it.
func (db *DB) Rewrite(sql string, opts ...QueryOption) (RewriteInfo, error) {
	return db.RewriteContext(context.Background(), sql, opts...)
}

// RewriteContext is Rewrite governed by a context. Rewriting is not
// interruptible, but the context is checked before work starts, so a
// server can skip compiling for a client that already hung up.
func (db *DB) RewriteContext(ctx context.Context, sql string, opts ...QueryOption) (RewriteInfo, error) {
	if err := ctx.Err(); err != nil {
		return RewriteInfo{}, wrapCanceled(err)
	}
	o := applyOpts(opts)
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, inf, err := db.rewriteCached(sql, o)
	return inf, err
}

// Explain returns the physical plan of the rewritten query, with
// cardinality and cost estimates.
func (db *DB) Explain(sql string, opts ...QueryOption) (string, error) {
	return db.ExplainContext(context.Background(), sql, opts...)
}

// ExplainContext is Explain governed by a context. Planning is not
// interruptible, but the context is checked before work starts.
func (db *DB) ExplainContext(ctx context.Context, sql string, opts ...QueryOption) (string, error) {
	o := applyOpts(opts)
	ctx, cancel := o.deadline(ctx)
	defer cancel()
	if err := ctx.Err(); err != nil {
		return "", wrapCanceled(err)
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	res, _, err := db.rewriteCached(sql, o)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "-- strategy: %s (est cost %.0f)\n-- %s\n", res.Strategy, res.EstCost, res.SQL)
	b.WriteString(exec.Explain(res.Plan))
	return b.String(), nil
}

// Prepared is a query that has been rewritten and planned once and can be
// executed repeatedly. Plans hold no per-execution state, so a Prepared is
// safe for concurrent Run calls; it does not observe rules defined or data
// loaded after Prepare.
type Prepared struct {
	db   *DB
	sql  string
	plan exec.Node
	info RewriteInfo
	// opts are the Prepare-time query options (parallelism, row-eval,
	// memory limit, spill, faults), applied to every Run.
	opts *queryOpts
	// key is the plan-cache entry this Prepared was resolved through;
	// RunContext evicts it when a run exhausts its memory budget.
	key cacheKey
}

// Prepare rewrites and plans a query once.
func (db *DB) Prepare(sql string, opts ...QueryOption) (*Prepared, error) {
	return db.PrepareContext(context.Background(), sql, opts...)
}

// PrepareContext is Prepare governed by a context; a WithTimeout option
// is ignored here (apply it per-run via RunContext deadlines instead).
func (db *DB) PrepareContext(ctx context.Context, sql string, opts ...QueryOption) (*Prepared, error) {
	if err := ctx.Err(); err != nil {
		return nil, wrapCanceled(err)
	}
	o := applyOpts(opts)
	db.mu.RLock()
	defer db.mu.RUnlock()
	key := newCacheKey(sql, o, db.Catalog.Epoch())
	res, inf, err := db.rewriteCached(sql, o)
	if err != nil {
		return nil, err
	}
	return &Prepared{db: db, sql: sql, plan: res.Plan, info: inf, opts: o, key: key}, nil
}

// Rewrite reports how the prepared query will execute.
func (p *Prepared) Rewrite() RewriteInfo { return p.info }

// Run executes the prepared plan.
func (p *Prepared) Run() (*Rows, error) {
	return p.RunContext(context.Background())
}

// RunContext executes the prepared plan under a context; cancellation
// stops execution cooperatively, as in QueryContext. Runs pass through
// admission control and are governed by the Prepare-time memory options;
// a run that exhausts its budget also evicts the plan's cache entry, so
// a later Query or Prepare under a raised limit replans fresh.
func (p *Prepared) RunContext(ctx context.Context) (*Rows, error) {
	tel := p.db.startQuery(p.sql, p.opts)
	if tel != nil {
		var kill context.CancelFunc
		ctx, kill = context.WithCancel(ctx)
		defer kill()
		tel.activate("query", kill)
		tel.setPhase("queued")
	}
	admitStart := time.Now()
	release, err := p.db.admitQuery(ctx)
	if err != nil {
		tel.finish(nil, err)
		return nil, err
	}
	tel.noteAdmit(admitStart, time.Since(admitStart))
	defer release()
	p.db.mu.RLock()
	defer p.db.mu.RUnlock()
	tel.notePrepared(p.info.CacheHit)
	grs := p.db.resources(p.opts)
	defer grs.Close()
	ectx := p.opts.execCtx(ctx).SetResources(grs).EnableBuildReuse(p.db.Catalog.Epoch())
	var execStart time.Time
	if tel != nil {
		ectx.EnableStats()
		tel.attachExec(ectx, grs)
		tel.setPhase("execute")
		execStart = time.Now()
	}
	out, err := exec.Run(ectx, p.plan)
	p.db.totals.note(grs.Stats(), err != nil && grs.Exhausted())
	if tel != nil {
		tel.noteMem(grs.Stats())
		tel.noteExec(p.plan, ectx, execStart, time.Since(execStart))
	}
	if err != nil {
		if grs.Exhausted() {
			p.db.cache.evict(p.key)
		}
		err = wrapCanceled(err)
		tel.finish(nil, err)
		return nil, err
	}
	rows := newRows(out, p.plan, p.info)
	rows.Mem = grs.Stats()
	tel.finish(rows, nil)
	return rows, nil
}

// ExplainAnalyze rewrites and executes the query, returning the plan
// annotated with both the planner's estimates and the actual row counts
// and operator times.
func (db *DB) ExplainAnalyze(sql string, opts ...QueryOption) (string, error) {
	return db.ExplainAnalyzeContext(context.Background(), sql, opts...)
}

// ExplainAnalyzeContext is ExplainAnalyze governed by a context. The
// run passes through admission control and the query's memory budget;
// operators that spilled are annotated with their run counts, and a
// trailer line reports the query's peak memory and spill volume.
func (db *DB) ExplainAnalyzeContext(ctx context.Context, sql string, opts ...QueryOption) (string, error) {
	o := applyOpts(opts)
	ctx, cancel := o.deadline(ctx)
	defer cancel()
	tel := db.startQuery(sql, o)
	if tel != nil {
		var kill context.CancelFunc
		ctx, kill = context.WithCancel(ctx)
		defer kill()
		tel.activate("query", kill)
		tel.setPhase("queued")
	}
	admitStart := time.Now()
	release, err := db.admitQuery(ctx)
	if err != nil {
		tel.finish(nil, err)
		return "", err
	}
	tel.noteAdmit(admitStart, time.Since(admitStart))
	defer release()
	db.mu.RLock()
	defer db.mu.RUnlock()
	key := newCacheKey(sql, o, db.Catalog.Epoch())
	var compileStart time.Time
	if tel != nil {
		tel.setPhase("compile")
		compileStart = time.Now()
	}
	res, inf, err := db.rewriteCached(sql, o)
	if err != nil {
		tel.finish(nil, err)
		return "", err
	}
	tel.notePhases(res.Phases, inf.CacheHit, compileStart)
	grs := db.resources(o)
	defer grs.Close()
	ectx := exec.NewAnalyzeCtxWith(ctx).SetParallelism(o.parallelism).SetVectorize(!o.rowEval).SetResources(grs)
	if tel != nil {
		tel.attachExec(ectx, grs)
		tel.setPhase("execute")
	}
	execStart := time.Now()
	_, runErr := exec.Run(ectx, res.Plan)
	db.totals.note(grs.Stats(), runErr != nil && grs.Exhausted())
	if tel != nil {
		tel.noteMem(grs.Stats())
		tel.noteExec(res.Plan, ectx, execStart, time.Since(execStart))
	}
	if runErr != nil {
		if grs.Exhausted() {
			db.cache.evict(key)
		}
		runErr = wrapCanceled(runErr)
		tel.finish(nil, runErr)
		return "", runErr
	}
	tel.finish(nil, nil)
	var b strings.Builder
	fmt.Fprintf(&b, "-- strategy: %s (est cost %.0f)\n", res.Strategy, res.EstCost)
	b.WriteString(exec.ExplainAnalyze(res.Plan, ectx))
	m := grs.Stats()
	fmt.Fprintf(&b, "-- mem: peak=%s", FormatBytes(m.Peak))
	if m.Limit > 0 {
		fmt.Fprintf(&b, " limit=%s", FormatBytes(m.Limit))
	}
	if m.Spilled() {
		fmt.Fprintf(&b, " spilled=%d runs (%s)", m.SpillRuns, FormatBytes(m.SpillBytes))
	}
	b.WriteString("\n")
	return b.String(), nil
}

// newRows materializes an executed result into the public Rows shape —
// the single point where result rows leave the engine, shared by
// DB.Query and Prepared.Run. When the plan's root exclusively owns its
// output (projections, joins, aggregates — anything that built fresh
// rows rather than slicing stored segments), the rows are adopted
// as-is; only roots that alias engine-owned storage are copied.
func newRows(out *exec.Result, plan exec.Node, inf RewriteInfo) *Rows {
	rows := &Rows{Rewrite: inf}
	rows.Columns = make([]string, len(out.Schema.Columns))
	for i, c := range out.Schema.Columns {
		rows.Columns[i] = c.Name
	}
	rows.Data = make([][]Value, len(out.Rows))
	if exec.OwnsRows(plan) {
		for i, r := range out.Rows {
			rows.Data[i] = r
		}
	} else {
		for i, r := range out.Rows {
			rows.Data[i] = append([]Value{}, r...)
		}
	}
	return rows
}

// MaterializeCleansed eagerly applies the named rules (all rules on the
// table when names is empty) and stores the cleansed result as a new base
// table — the paper's hybrid model, where anomalies common to every
// consumer are cleansed once up front while application-specific ones stay
// deferred. The new table copies the source's indexes and refreshes
// statistics. Rules that create columns via MODIFY are rejected (the
// destination keeps the source schema).
func (db *DB) MaterializeCleansed(source, dest string, ruleNames ...string) (int, error) {
	return db.MaterializeCleansedContext(context.Background(), source, dest, ruleNames...)
}

// MaterializeCleansedContext is MaterializeCleansed governed by a
// context: the cleansing run cancels cooperatively mid-operator, and
// nothing is stored on cancellation. The failure matches ErrCanceled and
// the context's own error.
func (db *DB) MaterializeCleansedContext(ctx context.Context, source, dest string, ruleNames ...string) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return 0, wrapCanceled(err)
	}
	src, ok := db.Catalog.Table(source)
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoTable, source)
	}
	cols := make([]string, src.Schema.Len())
	for i, c := range src.Schema.Columns {
		cols[i] = c.Name
	}
	res, err := db.Rewriter.RewriteSQL(
		"SELECT "+strings.Join(cols, ", ")+" FROM "+source,
		ruleNames, Naive,
	)
	if err != nil {
		return 0, err
	}
	out, err := exec.Run(exec.NewCtxWith(ctx), res.Plan)
	if err != nil {
		return 0, wrapCanceled(err)
	}
	dst := storage.NewTable(dest, src.Schema.WithQualifier(dest))
	for _, r := range out.Rows {
		if err := dst.Append(r); err != nil {
			return 0, err
		}
	}
	if err := db.Catalog.AddTable(dst); err != nil {
		return 0, err
	}
	for ord := range src.Schema.Columns {
		if src.HasIndex(ord) {
			if err := dst.BuildIndex(dst.Schema.Columns[ord].Name); err != nil {
				return 0, err
			}
		}
	}
	dst.Analyze()
	// Like LoadRFIDWorkload, the materialized table is made durable with
	// one checkpoint rather than row-by-row WAL records.
	if err := db.walCheckpointLocked(); err != nil {
		return 0, err
	}
	return dst.RowCount(), nil
}

// RuleEffect summarizes what one rule would do to its table right now —
// a dry run for rule authors; nothing is modified.
type RuleEffect struct {
	// Input and Output are the row counts before and after the rule.
	Input, Output int
	// Deleted is Input − Output (DELETE/KEEP rules).
	Deleted int
	// Modified counts rows whose content changed (MODIFY rules; compares
	// the columns common to input and output).
	Modified int
	// SampleDeleted holds up to limit removed rows, rendered.
	SampleDeleted []string
	// SampleModified holds up to limit "before → after" pairs.
	SampleModified []string
}

// DryRunRule applies a single registered rule to its full input and
// reports the effect without touching stored data. The sample slices are
// capped at limit entries each.
func (db *DB) DryRunRule(ruleName string, limit int) (*RuleEffect, error) {
	return db.DryRunRuleContext(context.Background(), ruleName, limit)
}

// DryRunRuleContext is DryRunRule governed by a context: both internal
// cleansing executions cancel cooperatively mid-operator.
func (db *DB) DryRunRuleContext(ctx context.Context, ruleName string, limit int) (*RuleEffect, error) {
	if err := ctx.Err(); err != nil {
		return nil, wrapCanceled(err)
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	reg, ok := db.Registry.Rule(ruleName)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownRule, ruleName)
	}
	inCols, err := db.Registry.InputColumns(reg.Rule)
	if err != nil {
		return nil, err
	}
	colList := strings.Join(inCols, ", ")
	rawRows, err := db.queryLocked(ctx, "SELECT "+colList+" FROM "+reg.Rule.From, applyOpts([]QueryOption{WithStrategy(Dirty)}), nil)
	if err != nil {
		return nil, err
	}
	cleanRows, err := db.queryLocked(ctx, "SELECT "+colList+" FROM "+reg.Rule.On, applyOpts([]QueryOption{WithStrategy(Naive), WithRules(ruleName)}), nil)
	if err != nil {
		return nil, err
	}
	eff := &RuleEffect{Input: len(rawRows.Data), Output: len(cleanRows.Data)}
	render := func(r []Value) string {
		parts := make([]string, len(r))
		for i, v := range r {
			parts[i] = v.String()
		}
		return strings.Join(parts, " | ")
	}
	// Multiset difference keyed on the rendered row. Keyed by the rule's
	// cluster+sequence key for the modified pairing.
	ckIdx, skIdx := -1, -1
	for i, c := range inCols {
		if strings.EqualFold(c, reg.Rule.ClusterBy) {
			ckIdx = i
		}
		if strings.EqualFold(c, reg.Rule.SequenceBy) {
			skIdx = i
		}
	}
	outByKey := map[string][]string{}
	outAll := map[string]int{}
	for _, r := range cleanRows.Data {
		line := render(r)
		outAll[line]++
		if ckIdx >= 0 && skIdx >= 0 {
			k := r[ckIdx].String() + "|" + r[skIdx].String()
			outByKey[k] = append(outByKey[k], line)
		}
	}
	for _, r := range rawRows.Data {
		line := render(r)
		if outAll[line] > 0 {
			outAll[line]--
			continue
		}
		// The row is gone or changed. If a row with the same (ckey, skey)
		// survived, call it modified; otherwise deleted.
		if ckIdx >= 0 && skIdx >= 0 {
			k := r[ckIdx].String() + "|" + r[skIdx].String()
			if alts := outByKey[k]; len(alts) > 0 {
				eff.Modified++
				if len(eff.SampleModified) < limit {
					eff.SampleModified = append(eff.SampleModified, line+"  →  "+alts[0])
				}
				continue
			}
		}
		eff.Deleted++
		if len(eff.SampleDeleted) < limit {
			eff.SampleDeleted = append(eff.SampleDeleted, line)
		}
	}
	return eff, nil
}

// ExpandedConditions reports the per-rule expanded conditions the
// transitivity analysis derives for a query (Table 1 of the paper);
// infeasible rules map to "{}".
func (db *DB) ExpandedConditions(sql string, opts ...QueryOption) (map[string]string, error) {
	o := applyOpts(opts)
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.Rewriter.ExpandedConditions(sql, o.rules)
}

// ResourceStats aggregates the engine's governance activity since Open.
type ResourceStats struct {
	// Admission is the admission controller's snapshot (zeros when no
	// concurrency limit is configured).
	Admission AdmissionStats
	// Queries counts governed executions (Query, ExplainAnalyze,
	// Prepared.Run and their Context variants).
	Queries int64
	// SpilledQueries counts executions in which at least one operator went
	// to disk; SpillRuns and SpillBytes accumulate their volume.
	SpilledQueries, SpillRuns, SpillBytes int64
	// Exhausted counts executions that failed with ErrResourceExhausted.
	Exhausted int64
	// MaxPeak is the largest single-query peak memory observed, in bytes.
	MaxPeak int64
	// Recovery reports what crash recovery did at OpenDir (zero without a
	// WAL; Recovery.Durable distinguishes "no WAL" from "clean recovery").
	Recovery RecoveryStats
	// WAL is the live write-ahead log's position (zero without one).
	WAL WALStats
}

// ResourceStats snapshots the DB's cumulative resource-governance
// counters: admission decisions, spill volume, budget failures, the
// per-query memory high-water mark, and the durability layer's state.
func (db *DB) ResourceStats() ResourceStats {
	s := db.totals.snapshot()
	s.Admission = db.admit.Stats()
	if db.durable != nil {
		s.Recovery = db.durable.recovery
		s.WAL = db.WALStats()
	}
	return s
}

// FormatBytes renders a byte count human-readably (B, KiB, MiB, GiB).
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

func applyOpts(opts []QueryOption) *queryOpts {
	o := &queryOpts{strategy: Auto}
	for _, f := range opts {
		f(o)
	}
	return o
}

// rewriteCached resolves a query to its rewritten plan through the plan
// cache: a hit skips parse, rewrite, and costing entirely; a miss runs
// the rewriter and stores the result under the current catalog epoch.
// Callers must hold db.mu (either side).
func (db *DB) rewriteCached(sql string, o *queryOpts) (*core.Result, RewriteInfo, error) {
	key := newCacheKey(sql, o, db.Catalog.Epoch())
	if res, ok := db.cache.get(key); ok {
		inf := info(res)
		inf.CacheHit = true
		inf.CacheHits, inf.CacheMisses = db.cache.counters()
		return res, inf, nil
	}
	res, err := db.Rewriter.RewriteSQL(sql, o.rules, o.strategy)
	if err != nil {
		return nil, RewriteInfo{}, err
	}
	db.cache.put(key, res)
	inf := info(res)
	inf.CacheHits, inf.CacheMisses = db.cache.counters()
	return res, inf, nil
}

func info(res *core.Result) RewriteInfo {
	return RewriteInfo{Strategy: res.Strategy, SQL: res.SQL, EstCost: res.EstCost, Candidates: res.Candidates}
}
