package repro

import (
	"context"
	"errors"
)

// Stable error codes returned by Code. They are part of the wire protocol
// (docs/WIRE.md): the HTTP front end maps them onto status codes and puts
// them in every JSON error body, so clients branch on the code and never
// parse error strings.
const (
	// CodeNoTable: the query references a table the catalog doesn't hold.
	CodeNoTable = "no_table"
	// CodeUnknownRule: a WithRules name (or DryRunRule argument) is not a
	// registered cleansing rule.
	CodeUnknownRule = "unknown_rule"
	// CodeCanceled: the query was stopped by its context — canceled by the
	// caller (a dropped client connection, in the server) or past its
	// deadline (WithTimeout or a context deadline).
	CodeCanceled = "canceled"
	// CodeOverloaded: admission control rejected the query — the
	// concurrency limit was reached and the wait queue was full. The
	// condition is transient; retrying after a backoff is correct.
	CodeOverloaded = "overloaded"
	// CodeResourceExhausted: the query crossed its memory budget with
	// spilling disabled (or in an operator with no spill path).
	CodeResourceExhausted = "resource_exhausted"
	// CodeInternal: an execution worker panicked. Only this query failed;
	// the engine remains healthy.
	CodeInternal = "internal"
	// CodeInvalid: every other failure — parse errors, semantic errors
	// (unknown columns, malformed rules), infeasible rewrites. The request
	// itself is wrong; retrying unchanged cannot succeed.
	CodeInvalid = "invalid"
)

// Code classifies err into a stable, machine-readable code string derived
// from the package's sentinel errors. It returns "" for nil.
//
// Classification order mirrors outcomeOf in telemetry.go: governance
// sentinels win over cancellation, so a query that exhausted its budget
// while its deadline expired still reports resource_exhausted.
func Code(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrNoTable):
		return CodeNoTable
	case errors.Is(err, ErrUnknownRule):
		return CodeUnknownRule
	case errors.Is(err, ErrResourceExhausted):
		return CodeResourceExhausted
	case errors.Is(err, ErrOverloaded):
		return CodeOverloaded
	case errors.Is(err, ErrInternal):
		return CodeInternal
	case errors.Is(err, ErrCanceled), errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return CodeCanceled
	default:
		return CodeInvalid
	}
}
