// Tests for the serving layer: context cancellation, the WithTimeout
// option, concurrent queries racing catalog mutations, the rewrite/plan
// cache and its epoch-based invalidation, and the sentinel errors.
package repro_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro"
)

// newServingDB builds a small reads table (epc, rtime, biz_loc) with n
// rows in one partition, spaced a minute apart.
func newServingDB(t testing.TB, n int) *repro.DB {
	t.Helper()
	db := repro.Open()
	if err := db.CreateTable("reads",
		repro.ColumnDef{Name: "epc", Kind: repro.KindString},
		repro.ColumnDef{Name: "rtime", Kind: repro.KindTime},
		repro.ColumnDef{Name: "biz_loc", Kind: repro.KindString},
	); err != nil {
		t.Fatal(err)
	}
	rows := make([][]repro.Value, n)
	for i := range rows {
		rows[i] = []repro.Value{stringValue("e1"), timeValue(int64(i)), stringValue("dock")}
	}
	if err := db.Insert("reads", rows...); err != nil {
		t.Fatal(err)
	}
	return db
}

// longWindowQuery folds a wide constant-offset frame per row over a
// single partition — O(rows × frame) work with no shortcut, so it runs
// long enough to be canceled mid-flight.
const longWindowQuery = `SELECT epc, MAX(rtime) OVER (PARTITION BY epc ORDER BY rtime ROWS BETWEEN 3000 PRECEDING AND 1 PRECEDING) AS prev FROM reads`

func TestQueryContextCancelsMidWindow(t *testing.T) {
	db := newServingDB(t, 30000)
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(25*time.Millisecond, cancel)

	start := time.Now()
	_, err := db.QueryContext(ctx, longWindowQuery)
	elapsed := time.Since(start)

	if err == nil {
		t.Fatal("canceled query returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false; err = %v", err)
	}
	if !errors.Is(err, repro.ErrCanceled) {
		t.Errorf("errors.Is(err, repro.ErrCanceled) = false; err = %v", err)
	}
	// The operator polls its context cooperatively; a canceled query must
	// return promptly, not after finishing the remaining 90M-fold work.
	if elapsed > 5*time.Second {
		t.Errorf("canceled query took %v to return", elapsed)
	}
}

func TestWithTimeoutDeadline(t *testing.T) {
	db := newServingDB(t, 30000)
	_, err := db.Query(longWindowQuery, repro.WithTimeout(20*time.Millisecond))
	if err == nil {
		t.Fatal("query past its timeout returned no error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("errors.Is(err, context.DeadlineExceeded) = false; err = %v", err)
	}
	if !errors.Is(err, repro.ErrCanceled) {
		t.Errorf("errors.Is(err, repro.ErrCanceled) = false; err = %v", err)
	}
}

func TestQueryContextPreCanceled(t *testing.T) {
	db := newServingDB(t, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryContext(ctx, "SELECT count(*) FROM reads"); !errors.Is(err, repro.ErrCanceled) {
		t.Errorf("pre-canceled context: err = %v", err)
	}
}

// TestConcurrentServing races queries against rule definitions and
// inserts; run under -race it proves the serving lock covers the whole
// rewrite+execute span.
func TestConcurrentServing(t *testing.T) {
	const initial, inserted = 100, 30
	db := newServingDB(t, initial)
	errCh := make(chan error, 16)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				if _, err := db.Query("SELECT count(*) FROM reads"); err != nil {
					errCh <- fmt.Errorf("query: %w", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < inserted; i++ {
			row := []repro.Value{stringValue("e2"), timeValue(int64(1000 + i)), stringValue("shelf")}
			if err := db.Insert("reads", row); err != nil {
				errCh <- fmt.Errorf("insert: %w", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= 4; i++ {
			src := fmt.Sprintf(`DEFINE conc%d ON reads
				AS (A, B) WHERE A.biz_loc = B.biz_loc AND B.rtime - A.rtime < %d mins
				ACTION DELETE B`, i, i)
			if _, err := db.DefineRule(src); err != nil {
				errCh <- fmt.Errorf("define: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	got, err := db.Query("SELECT count(*) FROM reads", repro.WithStrategy(repro.Dirty))
	if err != nil {
		t.Fatal(err)
	}
	if n := got.Data[0][0].Int(); n != initial+inserted {
		t.Errorf("dirty count after the dust settles = %d, want %d", n, initial+inserted)
	}
}

func TestPlanCacheHitsAndInvalidation(t *testing.T) {
	db := newServingDB(t, 5)
	if _, err := db.DefineRule(`DEFINE dedup ON reads
		AS (A, B) WHERE A.biz_loc = B.biz_loc AND B.rtime - A.rtime < 5 mins
		ACTION DELETE B`); err != nil {
		t.Fatal(err)
	}
	const q = "SELECT count(*) FROM reads"

	first, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if first.Rewrite.CacheHit {
		t.Error("first query reported a cache hit")
	}
	second, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Rewrite.CacheHit {
		t.Error("repeated query missed the cache")
	}
	if second.Rewrite.CacheHits == 0 {
		t.Errorf("CacheHits = 0 after a hit (misses = %d)", second.Rewrite.CacheMisses)
	}
	if st := db.PlanCacheStats(); st.Hits == 0 || st.Entries == 0 {
		t.Errorf("PlanCacheStats = %+v after a hit", st)
	}

	// A different strategy is a different cache key.
	forced, err := db.Query(q, repro.WithStrategy(repro.Dirty))
	if err != nil {
		t.Fatal(err)
	}
	if forced.Rewrite.CacheHit {
		t.Error("strategy change still hit the cache")
	}

	// Loading data bumps the catalog epoch: the old entry can't be hit,
	// and the re-planned query sees the new row.
	if err := db.Insert("reads", []repro.Value{stringValue("e9"), timeValue(500), stringValue("gate")}); err != nil {
		t.Fatal(err)
	}
	after, err := db.Query(q, repro.WithStrategy(repro.Dirty))
	if err != nil {
		t.Fatal(err)
	}
	if after.Rewrite.CacheHit {
		t.Error("query after Insert hit a stale plan")
	}
	if n := after.Data[0][0].Int(); n != 6 {
		t.Errorf("dirty count after insert = %d, want 6", n)
	}

	// Defining a rule invalidates too.
	if _, err := db.Query(q); err != nil { // warm the Auto entry again
		t.Fatal(err)
	}
	if _, err := db.DefineRule(`DEFINE wide ON reads
		AS (A, B) WHERE A.biz_loc = B.biz_loc AND B.rtime - A.rtime < 20 mins
		ACTION DELETE B`); err != nil {
		t.Fatal(err)
	}
	fresh, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Rewrite.CacheHit {
		t.Error("query after DefineRule hit a stale plan")
	}

	db.ResetPlanCache()
	if st := db.PlanCacheStats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Errorf("PlanCacheStats after reset = %+v", st)
	}
}

// TestPreparedSharesCache: Prepare populates the same cache Query reads,
// and repeated runs of the prepared plan agree with direct queries.
func TestPreparedSharesCache(t *testing.T) {
	db := newServingDB(t, 5)
	const q = "SELECT count(*) FROM reads"
	p, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	viaQuery, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !viaQuery.Rewrite.CacheHit {
		t.Error("query after Prepare missed the cache")
	}
	for i := 0; i < 3; i++ {
		got, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		if n := got.Data[0][0].Int(); n != 5 {
			t.Errorf("prepared run %d = %d rows, want 5", i, n)
		}
	}
	// A prepared plan honors its run context like a direct query.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.RunContext(ctx); !errors.Is(err, repro.ErrCanceled) {
		t.Errorf("pre-canceled RunContext: err = %v", err)
	}
}

func TestSentinelErrors(t *testing.T) {
	db := newServingDB(t, 3)
	if err := db.Insert("nosuch"); !errors.Is(err, repro.ErrNoTable) {
		t.Errorf("Insert into missing table: err = %v", err)
	}
	if err := db.BuildIndex("nosuch", "rtime"); !errors.Is(err, repro.ErrNoTable) {
		t.Errorf("BuildIndex on missing table: err = %v", err)
	}
	if err := db.Analyze("nosuch"); !errors.Is(err, repro.ErrNoTable) {
		t.Errorf("Analyze on missing table: err = %v", err)
	}
	if _, err := db.MaterializeCleansed("nosuch", "dest"); !errors.Is(err, repro.ErrNoTable) {
		t.Errorf("MaterializeCleansed from missing table: err = %v", err)
	}
	if _, err := db.DryRunRule("nosuch", 3); !errors.Is(err, repro.ErrUnknownRule) {
		t.Errorf("DryRunRule on missing rule: err = %v", err)
	}
}
