// Tests for the observability layer as the public API exposes it: the
// Prometheus/JSON metrics endpoint, trace-span parity with EXPLAIN's plan
// shape (serially and under parallelism, with and without spilling), the
// slow-query log, pinned per-operator row counts on the fixed corpus, and
// race-freedom of the stats surfaces under concurrent query load.
package repro_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/bench"
)

// traceOperatorShape flattens a trace's operator spans (the subtree under
// "execute") into "depth:name" lines, the same shape Explain prints.
func traceOperatorShape(t *testing.T, tr *repro.Trace) []string {
	t.Helper()
	ex := tr.Find("execute")
	if ex == nil {
		t.Fatalf("trace has no execute span:\n%s", tr.String())
	}
	if len(ex.Children) != 1 {
		t.Fatalf("execute span has %d children, want 1 (the plan root)", len(ex.Children))
	}
	var out []string
	ex.Children[0].Walk(func(depth int, sp *repro.Span) {
		out = append(out, fmt.Sprintf("%d:%s", depth, sp.Name))
	})
	return out
}

// explainShape parses Explain/ExplainAnalyze output into "depth:label"
// lines (two spaces of indentation per level, label up to the double
// space before the bracketed annotations).
func explainShape(t *testing.T, plan string) []string {
	t.Helper()
	var out []string
	for _, line := range strings.Split(plan, "\n") {
		if line == "" || strings.HasPrefix(line, "--") {
			continue
		}
		indent := len(line) - len(strings.TrimLeft(line, " "))
		label, _, ok := strings.Cut(strings.TrimLeft(line, " "), "  [")
		if !ok {
			continue
		}
		out = append(out, fmt.Sprintf("%d:%s", indent/2, label))
	}
	return out
}

func TestTraceSpansMatchExplainPlanShape(t *testing.T) {
	db := newGovernDB(t)
	queries := []string{
		spillGroupQuery,
		`SELECT epc, biz_loc FROM caser WHERE rtime >= TIMESTAMP '2021-01-01' ORDER BY rtime, epc, biz_loc LIMIT 10`,
	}
	for _, par := range []int{1, 4} {
		for _, q := range queries {
			opts := []repro.QueryOption{repro.WithParallelism(par), repro.WithTrace(nil)}
			plan, err := db.Explain(q, opts...)
			if err != nil {
				t.Fatal(err)
			}
			rows, err := db.Query(q, opts...)
			if err != nil {
				t.Fatal(err)
			}
			tr := rows.Trace()
			if tr == nil {
				t.Fatal("WithTrace query returned no trace")
			}
			got := traceOperatorShape(t, tr)
			want := explainShape(t, plan)
			if strings.Join(got, "\n") != strings.Join(want, "\n") {
				t.Errorf("par=%d: trace shape differs from EXPLAIN\ntrace:\n%s\nexplain:\n%s", par, got, want)
			}
			// The compile/admission stages precede execution in the tree.
			for _, span := range []string{"admission-wait", "execute"} {
				if tr.Find(span) == nil {
					t.Errorf("trace missing %q span:\n%s", span, tr.String())
				}
			}
			if tr.Find("rewrite") == nil && tr.Find("plan-cache") == nil {
				t.Errorf("trace has neither rewrite phases nor a plan-cache span:\n%s", tr.String())
			}
		}
	}
}

// annotationPairs extracts "label key=value" facts from ExplainAnalyze
// output for one key (workers, spilled).
func analyzeAnnotations(plan, key string) map[string]string {
	out := map[string]string{}
	for _, line := range strings.Split(plan, "\n") {
		label, rest, ok := strings.Cut(strings.TrimLeft(line, " "), "  [")
		if !ok {
			continue
		}
		if i := strings.Index(rest, key+"="); i >= 0 {
			val := rest[i+len(key)+1:]
			if j := strings.IndexAny(val, " ]"); j >= 0 {
				val = val[:j]
			}
			out[label] = val
		}
	}
	return out
}

// traceAttrPairs extracts the same facts from a trace's operator spans.
func traceAttrPairs(t *testing.T, tr *repro.Trace, key string) map[string]string {
	t.Helper()
	out := map[string]string{}
	ex := tr.Find("execute")
	if ex == nil {
		t.Fatalf("no execute span")
	}
	ex.Walk(func(depth int, sp *repro.Span) {
		if depth == 0 {
			return
		}
		if v, ok := sp.Attr(key); ok {
			out[sp.Name] = v
		}
	})
	return out
}

func TestTraceWorkerAndSpillAttrsMatchExplainAnalyze(t *testing.T) {
	// Worker fan-out only kicks in once an operator's input reaches the
	// parallel threshold (2 morsels = 8192 rows), so the workers subtest
	// needs the scale-8 corpus; the spill subtest keeps the small one.
	big, err := bench.Load(8, 10)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		key  string
		db   *repro.DB
		opts []repro.QueryOption
	}{
		{"workers at par=4", "workers", big.DB, []repro.QueryOption{repro.WithParallelism(4)}},
		{"spill runs under 32KiB", "spilled", newGovernDB(t), []repro.QueryOption{repro.WithMemoryLimit(32 << 10)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db := tc.db
			plan, err := db.ExplainAnalyze(spillSortQuery, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			want := analyzeAnnotations(plan, tc.key)
			if len(want) == 0 {
				t.Fatalf("ExplainAnalyze shows no %s= annotations; test is vacuous:\n%s", tc.key, plan)
			}
			rows, err := db.Query(spillSortQuery, append([]repro.QueryOption{repro.WithTrace(nil)}, tc.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			got := traceAttrPairs(t, rows.Trace(), tc.key)
			for label, v := range want {
				if got[label] != v {
					t.Errorf("%s: span %q has %s=%q, ExplainAnalyze says %q", tc.name, label, tc.key, got[label], v)
				}
			}
		})
	}
}

// TestOperatorRowCountsPinned pins the per-operator row counts of one
// fixed corpus query (scale 1, 10%% anomalies, seed 7 — the same corpus
// every governance test uses). The counts are exact properties of the
// generator and the planner; a change here means either the corpus or an
// operator's output cardinality changed.
func TestOperatorRowCountsPinned(t *testing.T) {
	db := newGovernDB(t)
	rows, err := db.Query(spillGroupQuery, repro.WithTrace(nil))
	if err != nil {
		t.Fatal(err)
	}
	got := traceAttrPairs(t, rows.Trace(), "rows")
	want := map[string]string{
		"Sort(2 keys)":              "25",
		"Project(3 cols)":           "25",
		"HashGroup(1 keys, 2 aggs)": "25",
		"Scan(caser)":               "2451",
	}
	for label, rows := range want {
		if got[label] != rows {
			t.Errorf("operator %q rows = %q, want %q (full: %v)", label, got[label], rows, got)
		}
	}
	if len(got) != len(want) {
		t.Errorf("plan has %d operators, pinned %d: %v", len(got), len(want), got)
	}
}

func TestMetricsEndpointSmoke(t *testing.T) {
	db := newGovernDB(t, repro.WithMetricsAddr("127.0.0.1:0"), repro.WithMaxConcurrent(4))
	defer db.Close()
	addr, err := db.MetricsAddr()
	if err != nil || addr == "" {
		t.Fatalf("MetricsAddr = %q, %v", addr, err)
	}

	// Exercise the outcome space: ok (twice, for a cache hit), a spilling
	// query, and a budget failure.
	for i := 0; i < 2; i++ {
		if _, err := db.Query(spillGroupQuery); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Query(spillSortQuery, repro.WithMemoryLimit(32<<10)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(spillSortQuery, repro.WithMemoryLimit(16<<10), repro.WithoutSpill()); !errors.Is(err, repro.ErrResourceExhausted) {
		t.Fatalf("expected ErrResourceExhausted, got %v", err)
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE repro_queries_total counter",
		`repro_queries_total{outcome="ok"} 3`,
		`repro_queries_total{outcome="exhausted"} 1`,
		"# TYPE repro_query_seconds histogram",
		`repro_query_seconds_bucket{outcome="ok",le="+Inf"} 3`,
		"repro_query_seconds_sum",
		"repro_rewrite_seconds_count",
		// Two hits: the repeated group query, and the exhausted sort (its
		// cache key ignores memory options, so it reuses the spill run's
		// entry before failing in execution).
		"repro_plan_cache_hits_total 2",
		"repro_plan_cache_misses_total",
		"repro_admission_admitted_total 4",
		"repro_spill_runs_total",
		"repro_spilled_queries_total 1",
		`repro_operator_rows_total{op="Scan"}`,
		`repro_operator_rows_total{op="Sort"}`,
		"repro_query_peak_bytes_bucket",
		"repro_query_max_peak_bytes",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// JSON exposition parses and carries the same families.
	resp, err = http.Get("http://" + addr + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("json content type = %q", ct)
	}
	var doc struct {
		Families []struct {
			Name string `json:"name"`
		} `json:"families"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("invalid JSON exposition: %v", err)
	}
	names := map[string]bool{}
	for _, f := range doc.Families {
		names[f.Name] = true
	}
	for _, want := range []string{"repro_queries_total", "repro_query_seconds", "repro_operator_rows_total"} {
		if !names[want] {
			t.Errorf("JSON families missing %q (have %v)", want, names)
		}
	}

	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("metrics listener still serving after Close")
	}
}

func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	db := repro.Open(repro.WithSlowQueryLog(0, logger)) // threshold 0: log everything
	if err := db.LoadRFIDWorkload(repro.WorkloadConfig{Scale: 1, AnomalyPct: 10, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(spillSortQuery, repro.WithMemoryLimit(32<<10)); err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	var entry map[string]any
	if err := json.Unmarshal([]byte(strings.SplitN(line, "\n", 2)[0]), &entry); err != nil {
		t.Fatalf("slow-query log is not JSON: %v\n%s", err, line)
	}
	if entry["msg"] != "slow query" {
		t.Errorf("msg = %v", entry["msg"])
	}
	if id, _ := entry["query_id"].(string); !strings.HasPrefix(id, "q-") {
		t.Errorf("query_id = %v", entry["query_id"])
	}
	if sql, _ := entry["sql"].(string); !strings.Contains(sql, "FROM caser") {
		t.Errorf("sql = %v", entry["sql"])
	}
	if entry["outcome"] != "ok" {
		t.Errorf("outcome = %v", entry["outcome"])
	}
	if hit, ok := entry["plan_cache_hit"].(bool); !ok || hit {
		t.Errorf("plan_cache_hit = %v, want false on first run", entry["plan_cache_hit"])
	}
	if peak, _ := entry["peak_bytes"].(float64); peak <= 0 {
		t.Errorf("peak_bytes = %v", entry["peak_bytes"])
	}
	if runs, _ := entry["spill_runs"].(float64); runs <= 0 {
		t.Errorf("spill_runs = %v (query ran under a 32KiB budget)", entry["spill_runs"])
	}
	if span, _ := entry["span_1"].(string); !strings.Contains(span, "=") {
		t.Errorf("span_1 = %v, want a name=duration pair", entry["span_1"])
	}
}

func TestTraceHookFiresOnFailure(t *testing.T) {
	db := newGovernDB(t)
	var hooked *repro.Trace
	_, err := db.Query(spillSortQuery,
		repro.WithMemoryLimit(16<<10), repro.WithoutSpill(),
		repro.WithTrace(func(tr *repro.Trace) { hooked = tr }))
	if !errors.Is(err, repro.ErrResourceExhausted) {
		t.Fatalf("expected ErrResourceExhausted, got %v", err)
	}
	if hooked == nil {
		t.Fatal("trace hook not called on failed query")
	}
	if oc, _ := hooked.Root.Attr("outcome"); oc != "exhausted" {
		t.Errorf("trace outcome = %q, want exhausted", oc)
	}
	if v, ok := db.Metrics().CounterValue("repro_queries_total", "exhausted"); !ok || v < 1 {
		t.Errorf("repro_queries_total{exhausted} = %v,%v", v, ok)
	}
}

func TestWithoutTelemetry(t *testing.T) {
	db := repro.Open(repro.WithoutTelemetry())
	if err := db.LoadRFIDWorkload(repro.WorkloadConfig{Scale: 1, AnomalyPct: 10, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Query(spillGroupQuery, repro.WithTrace(nil))
	if err != nil {
		t.Fatal(err)
	}
	if rows.Trace() != nil {
		t.Error("trace collected with telemetry disabled")
	}
	if db.Metrics() != nil {
		t.Error("Metrics() non-nil with telemetry disabled")
	}
	rec := httptest.NewRecorder()
	db.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("MetricsHandler status = %d, want 404", rec.Code)
	}
	if addr, err := db.MetricsAddr(); addr != "" || err != nil {
		t.Errorf("MetricsAddr = %q, %v", addr, err)
	}
	if err := db.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// TestStatsSurfacesRaceFree hammers every stats reader — ResourceStats,
// PlanCacheStats, the metrics scrape, Rows.Trace — against a concurrent
// query load. Run under -race this is the consistency audit for the
// serving layer's counters.
func TestStatsSurfacesRaceFree(t *testing.T) {
	db := newGovernDB(t, repro.WithMaxConcurrent(4))
	handler := db.MetricsHandler()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for ctx.Err() == nil {
				opts := []repro.QueryOption{repro.WithTrace(nil)}
				if i%2 == 0 {
					opts = append(opts, repro.WithMemoryLimit(32<<10))
				}
				rows, err := db.QueryContext(ctx, spillGroupQuery, opts...)
				if err != nil && !errors.Is(err, repro.ErrCanceled) && !errors.Is(err, repro.ErrOverloaded) {
					t.Errorf("query: %v", err)
					return
				}
				if rows != nil {
					if tr := rows.Trace(); tr != nil {
						_ = tr.String()
					}
				}
			}
		}(i)
	}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				rs := db.ResourceStats()
				if rs.SpillRuns > 0 && rs.SpillBytes == 0 {
					t.Error("inconsistent snapshot: spill runs without bytes")
					return
				}
				_ = db.PlanCacheStats()
				rec := httptest.NewRecorder()
				handler.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
			}
		}()
	}
	wg.Wait()

	rs := db.ResourceStats()
	if rs.Queries == 0 {
		t.Fatal("no queries ran")
	}
	if v, ok := db.Metrics().CounterValue("repro_queries_total", "ok"); !ok || v == 0 {
		t.Errorf("ok-query counter = %v,%v after load", v, ok)
	}
}
