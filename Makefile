GO ?= go

.PHONY: all build vet test race verify bench bench-serving clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# verify is the CI gate: static checks, a clean build, and the full test
# suite under the race detector (the serving layer is exercised by
# concurrent tests, so -race is not optional).
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

# Paper figures (see bench_test.go); REPRO_BENCH_SCALE enlarges the DB.
bench:
	$(GO) test -bench=. -benchmem ./...

# Just the serving-layer benchmarks: cache amortization + parallel clients.
bench-serving:
	$(GO) test -run XXX -bench 'BenchmarkPlanCache|BenchmarkConcurrentClients' -benchmem .

clean:
	$(GO) clean ./...
