GO ?= go

.PHONY: all build vet test race verify soak crash-soak bench bench-all bench-serving serve-smoke clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# verify is the CI gate: static checks, a clean build, and the full test
# suite under the race detector (the serving layer is exercised by
# concurrent tests, so -race is not optional).
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

# Fault-injection soak: the REPRO_SOAK-gated matrix (worker panics,
# allocation failures, spill-I/O errors, concurrent chaos) under the race
# detector, every query running against a deliberately low memory budget
# so the spill machinery is on the hot path throughout. CI runs this
# after verify; locally it's the fastest way to shake the degradation
# paths.
soak:
	REPRO_SOAK=1 $(GO) test -race -count=1 -run 'TestSoak' -v .
	$(GO) test -race -count=1 ./internal/govern/

# Crash-recovery soak: boots rfidserve with a WAL, ingests numbered rows
# over /v1/ingest under load, SIGKILLs the server at a random moment,
# restarts it, and asserts the recovered table is exactly a durable
# prefix of what was acknowledged (count >= acked, whole batches only,
# checksum sum(n) == count*(count-1)/2). Several kill/recover cycles.
crash-soak:
	./scripts/crash_soak.sh

# Core benchmarks with allocation stats, recorded to BENCH_PR2.json in
# the standard `go test -bench` text format that benchstat consumes
# directly (`benchstat BENCH_PR2.json`). REPRO_BENCH_SCALE enlarges the
# DB; the parallel-pipeline benchmark raises it to ≥70 (~105k reads) on
# its own.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkParallelPipeline|BenchmarkAblationWindowParallelism|BenchmarkPlanCache|BenchmarkConcurrentClients' -benchmem . | tee BENCH_PR2.json
	$(GO) test -run '^$$' -bench 'BenchmarkRowKeying' -benchmem ./internal/exec/ | tee -a BENCH_PR2.json
	$(GO) test -run '^$$' -bench 'BenchmarkVectorized' -benchmem ./internal/exec/ | tee BENCH_PR3.json
	$(GO) test -run '^$$' -bench 'BenchmarkSpillOverhead' -benchmem . | tee BENCH_PR4.json
	$(GO) test -run '^$$' -bench 'BenchmarkTelemetryOverhead' -benchtime 20x -benchmem . | tee BENCH_PR5.json
	$(GO) test -run '^$$' -bench 'BenchmarkColumnarScan' -benchmem ./internal/exec/ | tee BENCH_PR7.json
	$(GO) test -run '^$$' -bench 'BenchmarkFirstRowLatency' -benchmem . | tee BENCH_PR8.json

# Every benchmark, including the full paper-figure grid (slow).
bench-all:
	$(GO) test -bench=. -benchmem ./...

# Serving smoke: boots rfidserve on a random port, drives it with the
# rfidbench load generator (open-loop arrivals), asserts zero 5xx and a
# live /metrics scrape, then SIGTERM-drains it cleanly. The service-level
# result (served QPS, p50/p95/p99 latency) lands in BENCH_PR6.json.
serve-smoke:
	./scripts/serve_smoke.sh

# Just the serving-layer benchmarks: cache amortization + parallel clients.
bench-serving:
	$(GO) test -run XXX -bench 'BenchmarkPlanCache|BenchmarkConcurrentClients' -benchmem .

clean:
	$(GO) clean ./...
