// Tests for the live operations console and the OTLP trace exporter as
// the public API exposes them: active-query visibility and cooperative
// kill from the embedded API, OTLP/JSON export for queries and for the
// durability pipeline (WAL append + fsync spans), and the exporter's
// composition with WithTraceSampling and WithoutTelemetry.
package repro_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
)

// mkIntTable builds table t(a INT) with n rows.
func mkIntTable(t *testing.T, db *repro.DB, n int) {
	t.Helper()
	if err := db.CreateTable("t", repro.ColumnDef{Name: "a", Kind: repro.KindInt}); err != nil {
		t.Fatal(err)
	}
	rows := make([][]repro.Value, n)
	for i := range rows {
		rows[i] = []repro.Value{repro.NewInt(int64(i))}
	}
	if err := db.Insert("t", rows...); err != nil {
		t.Fatal(err)
	}
}

// TestKillEagerQuery kills a materializing query through the embedded
// API: it must be visible in ActiveQueries while running, die with a
// canceled error, record outcome "killed", and leave the registry empty.
func TestKillEagerQuery(t *testing.T) {
	db := repro.Open()
	mkIntTable(t, db, 512)

	errc := make(chan error, 1)
	go func() {
		_, err := db.Query("SELECT a FROM t ORDER BY a",
			repro.WithFaults(repro.FaultInjection{SlowOp: 100 * time.Millisecond}))
		errc <- err
	}()

	// The query must appear in the registry with its SQL and a phase.
	var id repro.QueryID
	deadline := time.Now().Add(10 * time.Second)
	for id == 0 {
		if time.Now().After(deadline) {
			t.Fatal("query never appeared in ActiveQueries")
		}
		for _, q := range db.ActiveQueries() {
			if q.Kind != "query" || !strings.Contains(q.SQL, "ORDER BY") {
				continue
			}
			if q.Phase == "" {
				t.Fatalf("active query has no phase: %+v", q)
			}
			id = q.ID
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := db.Kill(id); err != nil {
		t.Fatalf("Kill(%s) = %v", id, err)
	}
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("killed query returned no error")
		}
		if repro.Code(err) != repro.CodeCanceled {
			t.Fatalf("killed query code = %q (%v), want %q", repro.Code(err), err, repro.CodeCanceled)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("killed query did not unwind")
	}

	deadline = time.Now().Add(5 * time.Second)
	for len(db.ActiveQueries()) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("registry not empty after kill: %+v", db.ActiveQueries())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := metricValue(t, db, "repro_queries_total", "killed"); got < 1 {
		t.Fatalf(`repro_queries_total{outcome="killed"} = %v, want >= 1`, got)
	}
	// A second kill of the same (gone) ID reports ErrNoQuery.
	if err := db.Kill(id); !errors.Is(err, repro.ErrNoQuery) {
		t.Fatalf("Kill of finished query = %v, want ErrNoQuery", err)
	}
}

// metricValue reads one labeled sample from the metrics snapshot.
func metricValue(t *testing.T, db *repro.DB, family, labelVal string) float64 {
	t.Helper()
	for _, fam := range db.Metrics().Snapshot() {
		if fam.Name != family {
			continue
		}
		for _, m := range fam.Metrics {
			for _, v := range m.Labels {
				if v == labelVal && m.Value != nil {
					return *m.Value
				}
			}
		}
	}
	return 0
}

// syncSink is a concurrency-safe trace sink.
type syncSink struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (s *syncSink) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buf.Write(p)
}

func (s *syncSink) Lines() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	text := strings.TrimSpace(s.buf.String())
	if text == "" {
		return nil
	}
	return strings.Split(text, "\n")
}

// otlpSpanNames decodes one OTLP/JSON export line and returns its span
// names plus the root span's name.
func otlpSpanNames(t *testing.T, line string) (root string, names map[string]bool) {
	t.Helper()
	var doc struct {
		ResourceSpans []struct {
			Resource struct {
				Attributes []struct {
					Key   string `json:"key"`
					Value struct {
						StringValue string `json:"stringValue"`
					} `json:"value"`
				} `json:"attributes"`
			} `json:"resource"`
			ScopeSpans []struct {
				Spans []struct {
					TraceID      string `json:"traceId"`
					SpanID       string `json:"spanId"`
					ParentSpanID string `json:"parentSpanId"`
					Name         string `json:"name"`
					Start        string `json:"startTimeUnixNano"`
					End          string `json:"endTimeUnixNano"`
				} `json:"spans"`
			} `json:"scopeSpans"`
		} `json:"resourceSpans"`
	}
	if err := json.Unmarshal([]byte(line), &doc); err != nil {
		t.Fatalf("export line is not valid JSON: %v\n%s", err, line)
	}
	if len(doc.ResourceSpans) != 1 || len(doc.ResourceSpans[0].ScopeSpans) != 1 {
		t.Fatalf("export line shape: %s", line)
	}
	names = map[string]bool{}
	for _, sp := range doc.ResourceSpans[0].ScopeSpans[0].Spans {
		names[sp.Name] = true
		if len(sp.TraceID) != 32 || len(sp.SpanID) != 16 {
			t.Fatalf("span %q has bad ids trace=%q span=%q", sp.Name, sp.TraceID, sp.SpanID)
		}
		if sp.ParentSpanID == "" {
			root = sp.Name
		}
	}
	return root, names
}

// TestTraceExporterEndToEnd opens a durable DB with an OTLP exporter and
// proves both trace families come out: a query trace with its execute
// subtree, and an ingest trace carrying the durability pipeline's
// wal_append and fsync spans.
func TestTraceExporterEndToEnd(t *testing.T) {
	sink := &syncSink{}
	db, err := repro.OpenDir("",
		repro.WithWAL(t.TempDir()),
		repro.WithTraceExporter(sink))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mkIntTable(t, db, 64)

	rows := make([][]repro.Value, 32)
	for i := range rows {
		rows[i] = []repro.Value{repro.NewInt(int64(1000 + i))}
	}
	if err := db.Ingest("t", rows...); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("SELECT count(*) FROM t WHERE a >= 0"); err != nil {
		t.Fatal(err)
	}

	var queryLine, ingestLine bool
	for _, line := range sink.Lines() {
		root, names := otlpSpanNames(t, line)
		switch root {
		case "query":
			queryLine = true
			if !names["execute"] {
				t.Fatalf("query trace has no execute span: %v", names)
			}
		case "ingest":
			ingestLine = true
			for _, want := range []string{"validate", "wal_append", "apply", "fsync"} {
				if !names[want] {
					t.Fatalf("ingest trace missing %q span: %v", want, names)
				}
			}
		}
	}
	if !queryLine || !ingestLine {
		t.Fatalf("exports missing a family: query=%v ingest=%v\n%s",
			queryLine, ingestLine, strings.Join(sink.Lines(), "\n"))
	}
	if got := metricValue1(t, db, "repro_trace_exports_total"); got < 2 {
		t.Fatalf("repro_trace_exports_total = %v, want >= 2", got)
	}
}

// metricValue1 reads an unlabeled sample from the metrics snapshot.
func metricValue1(t *testing.T, db *repro.DB, family string) float64 {
	t.Helper()
	for _, fam := range db.Metrics().Snapshot() {
		if fam.Name != family {
			continue
		}
		for _, m := range fam.Metrics {
			if m.Value != nil {
				return *m.Value
			}
		}
	}
	return 0
}

// TestTraceExporterHonorsSampling pins the composition rules: sampling 0
// suppresses every export, and a failing sink counts errors without
// failing statements.
func TestTraceExporterHonorsSampling(t *testing.T) {
	sink := &syncSink{}
	db := repro.Open(
		repro.WithTraceExporter(sink),
		repro.WithTraceSampling(0))
	mkIntTable(t, db, 16)
	if _, err := db.Query("SELECT count(*) FROM t"); err != nil {
		t.Fatal(err)
	}
	if err := db.Ingest("t", []repro.Value{repro.NewInt(99)}); err != nil {
		t.Fatal(err)
	}
	if lines := sink.Lines(); lines != nil {
		t.Fatalf("sampling 0 still exported %d traces", len(lines))
	}

	// A sink that always fails must not fail the query.
	db2 := repro.Open(repro.WithTraceExporter(failingSink{}))
	mkIntTable(t, db2, 16)
	if _, err := db2.Query("SELECT count(*) FROM t"); err != nil {
		t.Fatalf("query failed because the trace sink failed: %v", err)
	}
	if got := metricValue1(t, db2, "repro_trace_export_errors_total"); got < 1 {
		t.Fatalf("repro_trace_export_errors_total = %v, want >= 1", got)
	}
}

type failingSink struct{}

func (failingSink) Write(p []byte) (int, error) { return 0, fmt.Errorf("sink down") }

// TestConsoleWithoutTelemetry pins the off switch: no registry, no kill.
func TestConsoleWithoutTelemetry(t *testing.T) {
	sink := &syncSink{}
	db := repro.Open(repro.WithoutTelemetry(), repro.WithTraceExporter(sink))
	mkIntTable(t, db, 16)
	if got := db.ActiveQueries(); got != nil {
		t.Fatalf("ActiveQueries without telemetry = %v, want nil", got)
	}
	if err := db.Kill(repro.QueryID(1)); !errors.Is(err, repro.ErrNoQuery) {
		t.Fatalf("Kill without telemetry = %v, want ErrNoQuery", err)
	}
	// Queries still run, and the exporter stays silent.
	if _, err := db.Query("SELECT count(*) FROM t"); err != nil {
		t.Fatal(err)
	}
	if lines := sink.Lines(); lines != nil {
		t.Fatalf("WithoutTelemetry still exported %d traces", len(lines))
	}
}

// TestParseQueryID pins the printed-form round trip and its rejects.
func TestParseQueryID(t *testing.T) {
	id, err := repro.ParseQueryID("q-00000042")
	if err != nil || id != repro.QueryID(42) {
		t.Fatalf("ParseQueryID = %v, %v", id, err)
	}
	if id.String() != "q-00000042" {
		t.Fatalf("round trip = %q", id.String())
	}
	for _, bad := range []string{"", "42x", "q-", "q-0", "p-00000042"} {
		if _, err := repro.ParseQueryID(bad); err == nil {
			t.Fatalf("ParseQueryID(%q) accepted", bad)
		}
	}
}
