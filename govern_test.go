// Tests for the resource-governance layer as the public API exposes it:
// memory budgets that degrade to spilling with bit-identical answers,
// clean ErrResourceExhausted failures when spilling is off, plan-cache
// eviction after budget failures, panic isolation between concurrent
// queries, spill-file cleanup under cancellation, and admission control.
package repro_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
)

// newGovernDB loads the paper's RFID workload at scale 1 (~1500 caseR
// rows) — the corpus the acceptance criteria run against.
func newGovernDB(t testing.TB, opts ...repro.Option) *repro.DB {
	t.Helper()
	db := repro.Open(opts...)
	if err := db.LoadRFIDWorkload(repro.WorkloadConfig{Scale: 1, AnomalyPct: 10, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	return db
}

// Corpus queries whose working sets dwarf a tens-of-KiB budget: a full
// per-row sort and a grouped aggregation over caseR.
const (
	spillSortQuery  = `SELECT epc, rtime, biz_loc FROM caser ORDER BY rtime, epc, biz_loc`
	spillGroupQuery = `SELECT biz_loc, COUNT(*) AS c, MIN(rtime) AS first_seen FROM caser GROUP BY biz_loc ORDER BY c DESC, biz_loc`
)

func TestCorpusQueriesSpillBitIdentically(t *testing.T) {
	db := newGovernDB(t)
	for _, q := range []string{spillSortQuery, spillGroupQuery} {
		want, err := db.Query(q)
		if err != nil {
			t.Fatalf("baseline: %v", err)
		}
		got, err := db.Query(q, repro.WithMemoryLimit(32<<10))
		if err != nil {
			t.Fatalf("budgeted run failed instead of spilling: %v", err)
		}
		if !got.Mem.Spilled() {
			t.Fatalf("query under 32KiB budget did not spill (peak %d)", got.Mem.Peak)
		}
		if got.Mem.Limit != 32<<10 {
			t.Errorf("Mem.Limit = %d, want %d", got.Mem.Limit, 32<<10)
		}
		if got.Mem.Peak <= 0 || got.Mem.SpillBytes <= 0 {
			t.Errorf("empty accounting: %+v", got.Mem)
		}
		if !reflect.DeepEqual(got.Data, want.Data) {
			t.Fatalf("spilled result differs from in-memory result for %q", q)
		}
	}
}

func TestExplainAnalyzeAnnotatesSpill(t *testing.T) {
	db := newGovernDB(t)
	out, err := db.ExplainAnalyze(spillSortQuery, repro.WithMemoryLimit(32<<10))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "spilled=") {
		t.Errorf("EXPLAIN ANALYZE missing per-operator spilled= annotation:\n%s", out)
	}
	if !strings.Contains(out, "-- mem: peak=") || !strings.Contains(out, "limit=32.0 KiB") {
		t.Errorf("EXPLAIN ANALYZE missing mem trailer:\n%s", out)
	}
}

func TestSpillDisabledFailsWithResourceExhausted(t *testing.T) {
	db := newGovernDB(t)
	_, err := db.Query(spillSortQuery, repro.WithMemoryLimit(32<<10), repro.WithoutSpill())
	if !errors.Is(err, repro.ErrResourceExhausted) {
		t.Fatalf("err = %v, want ErrResourceExhausted", err)
	}
	// The engine must keep serving: the same query, unbudgeted, succeeds.
	if _, err := db.Query(spillSortQuery); err != nil {
		t.Fatalf("engine broken after budget failure: %v", err)
	}
}

func TestExhaustedQueryEvictsCacheEntry(t *testing.T) {
	db := newGovernDB(t)
	db.ResetPlanCache()
	_, err := db.Query(spillGroupQuery, repro.WithMemoryLimit(16<<10), repro.WithoutSpill())
	if !errors.Is(err, repro.ErrResourceExhausted) {
		t.Fatalf("err = %v, want ErrResourceExhausted", err)
	}
	if st := db.PlanCacheStats(); st.Entries != 0 {
		t.Fatalf("failed query's plan still cached (%d entries); raising the limit would be pinned to it", st.Entries)
	}
	// A retry under a raised limit replans (cache miss) and succeeds.
	rows, err := db.Query(spillGroupQuery, repro.WithMemoryLimit(64<<20))
	if err != nil {
		t.Fatal(err)
	}
	if rows.Rewrite.CacheHit {
		t.Error("retry after eviction reported a cache hit")
	}
}

func TestExhaustedPreparedRunEvictsCacheEntry(t *testing.T) {
	db := newGovernDB(t)
	db.ResetPlanCache()
	p, err := db.Prepare(spillGroupQuery, repro.WithMemoryLimit(16<<10), repro.WithoutSpill())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(); !errors.Is(err, repro.ErrResourceExhausted) {
		t.Fatalf("err = %v, want ErrResourceExhausted", err)
	}
	if st := db.PlanCacheStats(); st.Entries != 0 {
		t.Fatalf("exhausted prepared run left its plan cached (%d entries)", st.Entries)
	}
	// Re-preparing under a workable budget succeeds.
	p2, err := db.Prepare(spillGroupQuery, repro.WithMemoryLimit(64<<20))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestInjectedPanicFailsOnlyItsQuery(t *testing.T) {
	db := newServingDB(t, 20000)
	const q = `SELECT epc, biz_loc, COUNT(*) AS c FROM reads GROUP BY epc, biz_loc ORDER BY c`
	var wg sync.WaitGroup
	errs := make([]error, 6)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opts := []repro.QueryOption{repro.WithParallelism(4)}
			if i == 0 {
				opts = append(opts, repro.WithFaults(repro.FaultInjection{WorkerPanic: true}))
			}
			_, errs[i] = db.Query(q, opts...)
		}(i)
	}
	wg.Wait()
	if !errors.Is(errs[0], repro.ErrInternal) {
		t.Fatalf("faulted query: err = %v, want ErrInternal", errs[0])
	}
	for i, err := range errs[1:] {
		if err != nil {
			t.Errorf("concurrent query %d failed alongside the panicking one: %v", i+1, err)
		}
	}
	// And the engine answers the next query normally.
	if _, err := db.Query(q); err != nil {
		t.Fatalf("engine broken after injected panic: %v", err)
	}
}

func TestCancelDuringSpillRemovesTempFiles(t *testing.T) {
	spillDir := t.TempDir()
	db := repro.Open(repro.WithSpillDir(spillDir))
	if err := db.CreateTable("reads",
		repro.ColumnDef{Name: "epc", Kind: repro.KindString},
		repro.ColumnDef{Name: "rtime", Kind: repro.KindTime},
		repro.ColumnDef{Name: "biz_loc", Kind: repro.KindString},
	); err != nil {
		t.Fatal(err)
	}
	rows := make([][]repro.Value, 50000)
	for i := range rows {
		rows[i] = []repro.Value{
			stringValue(fmt.Sprintf("e%05d", i%997)),
			timeValue(int64(i)),
			stringValue(fmt.Sprintf("loc%03d", i%53)),
		}
	}
	if err := db.Insert("reads", rows...); err != nil {
		t.Fatal(err)
	}
	const q = `SELECT epc, rtime, biz_loc FROM reads ORDER BY rtime, epc, biz_loc`

	canceled := 0
	for _, delay := range []time.Duration{
		500 * time.Microsecond, 2 * time.Millisecond, 5 * time.Millisecond,
		10 * time.Millisecond, 25 * time.Millisecond,
	} {
		ctx, cancel := context.WithCancel(context.Background())
		time.AfterFunc(delay, cancel)
		_, err := db.QueryContext(ctx, q, repro.WithMemoryLimit(32<<10))
		cancel()
		if err != nil {
			if !errors.Is(err, repro.ErrCanceled) || !errors.Is(err, context.Canceled) {
				t.Fatalf("delay %v: err = %v, want ErrCanceled wrapping context.Canceled", delay, err)
			}
			canceled++
		}
		// Whether the query finished or died mid-merge, no spill files may
		// survive it.
		entries, rdErr := os.ReadDir(spillDir)
		if rdErr != nil {
			t.Fatal(rdErr)
		}
		if len(entries) != 0 {
			names := make([]string, len(entries))
			for i, e := range entries {
				names[i] = e.Name()
			}
			t.Fatalf("delay %v: spill files leaked: %v", delay, names)
		}
	}
	if canceled == 0 {
		t.Error("no run was actually canceled; delays too generous for this machine")
	}
}

func TestAdmissionControlRejectsAndQueues(t *testing.T) {
	db := repro.Open(repro.WithMaxConcurrent(1), repro.WithAdmissionQueue(0))
	if err := db.CreateTable("kv", repro.ColumnDef{Name: "k", Kind: repro.KindInt}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("kv", []repro.Value{repro.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	const q = `SELECT COUNT(*) FROM kv`

	hold := repro.WithFaults(repro.FaultInjection{SlowOp: 400 * time.Millisecond})
	done := make(chan error, 1)
	go func() {
		_, err := db.Query(q, hold)
		done <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the slow query take the only slot
	if _, err := db.Query(q); !errors.Is(err, repro.ErrOverloaded) {
		t.Fatalf("second query: err = %v, want ErrOverloaded", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("admitted query failed: %v", err)
	}
	st := db.ResourceStats()
	if st.Admission.Rejected == 0 {
		t.Errorf("ResourceStats.Admission.Rejected = 0 after a rejection")
	}

	// With a queue, a waiter honors its deadline while blocked.
	db2 := repro.Open(repro.WithMaxConcurrent(1), repro.WithAdmissionQueue(4))
	if err := db2.CreateTable("kv", repro.ColumnDef{Name: "k", Kind: repro.KindInt}); err != nil {
		t.Fatal(err)
	}
	if err := db2.Insert("kv", []repro.Value{repro.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	done2 := make(chan error, 1)
	go func() {
		_, err := db2.Query(q, hold)
		done2 <- err
	}()
	time.Sleep(100 * time.Millisecond)
	if _, err := db2.Query(q, repro.WithTimeout(50*time.Millisecond)); !errors.Is(err, repro.ErrCanceled) {
		t.Fatalf("queued query past deadline: err = %v, want ErrCanceled", err)
	}
	if err := <-done2; err != nil {
		t.Fatalf("admitted query failed: %v", err)
	}
}

func TestResourceStatsAccumulate(t *testing.T) {
	db := newGovernDB(t)
	if _, err := db.Query(spillSortQuery, repro.WithMemoryLimit(32<<10)); err != nil {
		t.Fatal(err)
	}
	_, _ = db.Query(spillSortQuery, repro.WithMemoryLimit(32<<10), repro.WithoutSpill())
	st := db.ResourceStats()
	if st.Queries < 2 || st.SpilledQueries < 1 || st.SpillRuns < 1 || st.SpillBytes <= 0 {
		t.Errorf("spill totals not accumulated: %+v", st)
	}
	if st.Exhausted < 1 {
		t.Errorf("Exhausted = %d, want >= 1", st.Exhausted)
	}
	if st.MaxPeak <= 0 {
		t.Errorf("MaxPeak = %d, want > 0", st.MaxPeak)
	}
}
