// Soak suite: the fault-injection matrix behind `make soak`. Every cell
// runs a real query under a deliberately low memory budget with one
// fault class injected — worker panics, allocation failures, spill-file
// I/O errors — across serial and parallel execution, and asserts the
// engine's degradation contract: spill-capable plans finish with
// bit-identical answers, injected failures surface as the right sentinel
// on that query alone, and the engine keeps serving afterwards.
//
// The matrix multiplies quickly and is meant for the race detector, so
// it is gated behind REPRO_SOAK=1; `go test ./...` skips it.
package repro_test

import (
	"errors"
	"fmt"
	"os"
	"reflect"
	"testing"
	"time"

	"repro"
)

const soakRows = 30000

// newSoakDB builds a DB with a deliberately low default memory budget —
// every materializing operator over the soak table must spill — and a
// reads table large enough to cross the executor's parallel thresholds.
func newSoakDB(t testing.TB) *repro.DB {
	t.Helper()
	db := repro.Open(
		repro.WithDefaultMemoryLimit(48<<10),
		repro.WithSpillDir(t.TempDir()),
	)
	if err := db.CreateTable("reads",
		repro.ColumnDef{Name: "epc", Kind: repro.KindString},
		repro.ColumnDef{Name: "rtime", Kind: repro.KindTime},
		repro.ColumnDef{Name: "biz_loc", Kind: repro.KindString},
	); err != nil {
		t.Fatal(err)
	}
	rows := make([][]repro.Value, soakRows)
	for i := range rows {
		rows[i] = []repro.Value{
			stringValue(fmt.Sprintf("e%04d", i%701)),
			timeValue(int64(i)),
			stringValue(fmt.Sprintf("loc%03d", i%97)),
		}
	}
	if err := db.Insert("reads", rows...); err != nil {
		t.Fatal(err)
	}
	return db
}

var soakQueries = []struct{ name, sql string }{
	{"sort", `SELECT epc, rtime, biz_loc FROM reads ORDER BY rtime, epc, biz_loc`},
	{"group", `SELECT epc, biz_loc, COUNT(*) AS c, MIN(rtime) AS first_seen FROM reads GROUP BY epc, biz_loc ORDER BY c DESC, epc, biz_loc`},
	{"join", `SELECT a.epc, a.rtime, b.biz_loc FROM reads a JOIN reads b ON a.epc = b.epc AND a.rtime = b.rtime ORDER BY a.rtime, a.epc`},
}

func soakEnabled(t *testing.T) {
	t.Helper()
	if os.Getenv("REPRO_SOAK") == "" {
		t.Skip("soak suite disabled; set REPRO_SOAK=1 (or run `make soak`)")
	}
}

// TestSoakSpillParity: under the low default budget every query spills
// and must still match the unbudgeted answer exactly.
func TestSoakSpillParity(t *testing.T) {
	soakEnabled(t)
	db := newSoakDB(t)
	for _, q := range soakQueries {
		for _, par := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/par%d", q.name, par), func(t *testing.T) {
				want, err := db.Query(q.sql, repro.WithMemoryLimit(0), repro.WithParallelism(par))
				if err != nil {
					t.Fatalf("baseline: %v", err)
				}
				got, err := db.Query(q.sql, repro.WithParallelism(par))
				if err != nil {
					t.Fatalf("budgeted: %v", err)
				}
				if !got.Mem.Spilled() {
					t.Fatalf("no spill under %s budget (peak %s)",
						repro.FormatBytes(got.Mem.Limit), repro.FormatBytes(got.Mem.Peak))
				}
				if !reflect.DeepEqual(got.Data, want.Data) {
					t.Fatal("spilled result differs from in-memory result")
				}
			})
		}
	}
}

// TestSoakAllocFail: with every reservation refused, spill-capable plans
// must still complete — correctly — by degrading to disk.
func TestSoakAllocFail(t *testing.T) {
	soakEnabled(t)
	db := newSoakDB(t)
	faults := repro.WithFaults(repro.FaultInjection{AllocFail: true})
	for _, q := range soakQueries {
		for _, par := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/par%d", q.name, par), func(t *testing.T) {
				want, err := db.Query(q.sql, repro.WithMemoryLimit(0), repro.WithParallelism(par))
				if err != nil {
					t.Fatalf("baseline: %v", err)
				}
				got, err := db.Query(q.sql, repro.WithParallelism(par), faults)
				if err != nil {
					t.Fatalf("alloc-fail run did not degrade to spill: %v", err)
				}
				if !reflect.DeepEqual(got.Data, want.Data) {
					t.Fatal("alloc-fail result differs")
				}
				// With spilling off the same faults must fail cleanly instead.
				_, err = db.Query(q.sql, repro.WithParallelism(par), faults, repro.WithoutSpill())
				if !errors.Is(err, repro.ErrResourceExhausted) {
					t.Fatalf("without spill: err = %v, want ErrResourceExhausted", err)
				}
			})
		}
	}
}

// TestSoakWorkerPanic: an injected panic fails its own query with
// ErrInternal and nothing else.
func TestSoakWorkerPanic(t *testing.T) {
	soakEnabled(t)
	db := newSoakDB(t)
	faults := repro.WithFaults(repro.FaultInjection{WorkerPanic: true})
	for _, q := range soakQueries {
		for _, par := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/par%d", q.name, par), func(t *testing.T) {
				if _, err := db.Query(q.sql, repro.WithParallelism(par), faults); !errors.Is(err, repro.ErrInternal) {
					t.Fatalf("err = %v, want ErrInternal", err)
				}
				if _, err := db.Query(q.sql, repro.WithParallelism(par)); err != nil {
					t.Fatalf("engine broken after injected panic: %v", err)
				}
			})
		}
	}
}

// TestSoakSpillIOError: when spill-file creation itself fails, the query
// fails with the I/O error — not a panic, not a hang — and later queries
// are unaffected.
func TestSoakSpillIOError(t *testing.T) {
	soakEnabled(t)
	db := newSoakDB(t)
	faults := repro.WithFaults(repro.FaultInjection{SpillErr: true})
	for _, q := range soakQueries {
		for _, par := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/par%d", q.name, par), func(t *testing.T) {
				_, err := db.Query(q.sql, repro.WithParallelism(par), faults)
				if err == nil {
					t.Fatal("spill-I/O fault injected but query succeeded")
				}
				if errors.Is(err, repro.ErrInternal) {
					t.Fatalf("spill I/O error escalated to a panic: %v", err)
				}
				if _, err := db.Query(q.sql, repro.WithParallelism(par)); err != nil {
					t.Fatalf("engine broken after spill I/O failure: %v", err)
				}
			})
		}
	}
}

// TestSoakConcurrentChaos: a mixed fleet — spilling queries, panicking
// queries, budget failures, slow operators under admission control — all
// at once; exactly the injected faults fail, everything else answers.
func TestSoakConcurrentChaos(t *testing.T) {
	soakEnabled(t)
	db := newSoakDB(t)
	const lanes = 12
	errs := make([]error, lanes)
	done := make(chan int, lanes)
	for i := 0; i < lanes; i++ {
		go func(i int) {
			defer func() { done <- i }()
			q := soakQueries[i%len(soakQueries)]
			opts := []repro.QueryOption{repro.WithParallelism(1 + i%4)}
			switch i % 4 {
			case 1:
				opts = append(opts, repro.WithFaults(repro.FaultInjection{WorkerPanic: true}))
			case 2:
				opts = append(opts, repro.WithoutSpill())
			case 3:
				opts = append(opts, repro.WithFaults(repro.FaultInjection{SlowOp: time.Millisecond}))
			}
			_, errs[i] = db.Query(q.sql, opts...)
		}(i)
	}
	for i := 0; i < lanes; i++ {
		<-done
	}
	for i, err := range errs {
		switch i % 4 {
		case 1:
			if !errors.Is(err, repro.ErrInternal) {
				t.Errorf("lane %d (panic): err = %v, want ErrInternal", i, err)
			}
		case 2:
			if !errors.Is(err, repro.ErrResourceExhausted) {
				t.Errorf("lane %d (no spill): err = %v, want ErrResourceExhausted", i, err)
			}
		default:
			if err != nil {
				t.Errorf("lane %d failed: %v", i, err)
			}
		}
	}
	if st := db.ResourceStats(); st.SpilledQueries == 0 || st.Exhausted == 0 {
		t.Errorf("chaos run recorded no spills/exhaustions: %+v", st)
	}
}
