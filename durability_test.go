package repro_test

// Durability at the facade: WAL-backed OpenDir recovery, crash-fault
// injection, checkpoint triggers, and the stats surfaces. Run with -race:
// ingest, checkpoint timers, and queries share the WAL.

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
)

// openDurableDB opens a durable DB over walDir, failing the test on error.
func openDurableDB(t *testing.T, walDir string, opts ...repro.Option) *repro.DB {
	t.Helper()
	db, err := repro.OpenDir("", append([]repro.Option{repro.WithWAL(walDir)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// mkReads creates the standard test table on a DB.
func mkReads(t *testing.T, db *repro.DB) {
	t.Helper()
	if err := db.CreateTable("reads",
		repro.ColumnDef{Name: "epc", Kind: repro.KindString},
		repro.ColumnDef{Name: "rtime", Kind: repro.KindTime},
		repro.ColumnDef{Name: "n", Kind: repro.KindInt},
	); err != nil {
		t.Fatal(err)
	}
}

func ingestN(t *testing.T, db *repro.DB, from, n int) {
	t.Helper()
	rows := make([][]repro.Value, n)
	for i := 0; i < n; i++ {
		rows[i] = []repro.Value{
			repro.NewString(fmt.Sprintf("e%d", from+i)),
			repro.NewTime(time.UnixMicro(int64(from+i) * 1e6).UTC()),
			repro.NewInt(int64(from + i)),
		}
	}
	if err := db.Ingest("reads", rows...); err != nil {
		t.Fatal(err)
	}
}

func countReads(t *testing.T, db *repro.DB) int64 {
	t.Helper()
	res, err := db.Query("SELECT count(*) FROM reads", repro.WithStrategy(repro.Dirty))
	if err != nil {
		t.Fatal(err)
	}
	return res.Data[0][0].Int()
}

// Every kind of mutation survives a restart: schema, rows, index, view,
// rule — and the recovery stats say what happened.
func TestDurableRestartRecoversEverything(t *testing.T) {
	wal := t.TempDir()
	db := openDurableDB(t, wal)
	mkReads(t, db)
	ingestN(t, db, 0, 10)
	if err := db.BuildIndex("reads", "rtime"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateView("recent", "select epc, rtime from reads where n >= 5"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineRule(`DEFINE dedup ON reads
		AS (A, B) WHERE A.epc = B.epc AND B.rtime - A.rtime < 5 mins
		ACTION DELETE B`); err != nil {
		t.Fatal(err)
	}
	ws := db.WALStats()
	if !ws.Durable || ws.Dir != wal || ws.Bytes == 0 || ws.Policy != "always" {
		t.Fatalf("WALStats = %+v", ws)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openDurableDB(t, wal)
	defer db2.Close()
	if got := countReads(t, db2); got != 10 {
		t.Fatalf("recovered %d rows, want 10", got)
	}
	res, err := db2.Query("SELECT count(*) FROM recent", repro.WithStrategy(repro.Dirty))
	if err != nil {
		t.Fatalf("view lost: %v", err)
	}
	if res.Data[0][0].Int() != 5 {
		t.Fatalf("view count = %v", res.Data[0][0])
	}
	if rules := db2.Registry.All(); len(rules) != 1 || rules[0].Rule.Name != "dedup" {
		t.Fatalf("rules lost: %+v", rules)
	}
	rs := db2.ResourceStats().Recovery
	if !rs.Durable || rs.ReplayedRecords == 0 || rs.ReplayedRows != 10 || rs.Seeded {
		t.Fatalf("recovery stats = %+v", rs)
	}
}

// Open (no error return) cannot do recovery: WithWAL must panic there and
// point at OpenDir.
func TestOpenPanicsOnWithWAL(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Open(WithWAL) did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "OpenDir") {
			t.Fatalf("panic %v does not point at OpenDir", r)
		}
	}()
	repro.Open(repro.WithWAL(t.TempDir()))
}

// A torn WAL write loses exactly the batch it tore: acked rows survive,
// the torn batch does not, and the WAL refuses further writes until the
// (simulated) process restarts.
func TestTornWriteFault(t *testing.T) {
	wal := t.TempDir()
	db := openDurableDB(t, wal)
	mkReads(t, db)
	ingestN(t, db, 0, 3)
	db.Close()

	db2 := openDurableDB(t, wal, repro.WithDurabilityFaults(repro.FaultInjection{WALTornWrite: true}))
	err := db2.Ingest("reads", []repro.Value{repro.NewString("torn"), repro.NewTime(time.UnixMicro(0)), repro.NewInt(99)})
	if err == nil {
		t.Fatal("torn write must fail the ingest")
	}
	if err := db2.Ingest("reads", []repro.Value{repro.NewString("after"), repro.NewTime(time.UnixMicro(0)), repro.NewInt(100)}); err == nil {
		t.Fatal("WAL must refuse appends after a torn write")
	}
	if err := db2.Checkpoint(); err == nil {
		t.Fatal("checkpoint must refuse after a torn write")
	}
	db2.Close()

	db3 := openDurableDB(t, wal)
	defer db3.Close()
	if got := countReads(t, db3); got != 3 {
		t.Fatalf("recovered %d rows, want the 3 acked ones", got)
	}
	if rs := db3.ResourceStats().Recovery; rs.TruncatedBytes == 0 {
		t.Errorf("torn tail not reported: %+v", rs)
	}
}

// A failing fsync under FsyncAlways means the batch is never acked.
func TestFsyncErrFault(t *testing.T) {
	wal := t.TempDir()
	db := openDurableDB(t, wal)
	mkReads(t, db)
	db.Close()

	db2 := openDurableDB(t, wal, repro.WithDurabilityFaults(repro.FaultInjection{WALSyncErr: true}))
	defer db2.Close()
	err := db2.Ingest("reads", []repro.Value{repro.NewString("e"), repro.NewTime(time.UnixMicro(0)), repro.NewInt(1)})
	if err == nil {
		t.Fatal("ingest must fail when the fsync fails")
	}
}

// A crash during checkpoint (complete temp dir, no publication) loses
// nothing: the WAL still holds every record.
func TestCheckpointCrashFault(t *testing.T) {
	wal := t.TempDir()
	db := openDurableDB(t, wal, repro.WithDurabilityFaults(repro.FaultInjection{CheckpointCrash: true}))
	mkReads(t, db)
	ingestN(t, db, 0, 7)
	if err := db.Checkpoint(); err == nil {
		t.Fatal("crashed checkpoint must error")
	}
	db.Close()

	db2 := openDurableDB(t, wal)
	defer db2.Close()
	if got := countReads(t, db2); got != 7 {
		t.Fatalf("recovered %d rows, want 7", got)
	}
	if ws := db2.WALStats(); ws.Seq != 1 {
		t.Errorf("unpublished checkpoint rotated the wal: %+v", ws)
	}
}

// The size trigger checkpoints automatically and bounds the WAL.
func TestCheckpointSizeTrigger(t *testing.T) {
	wal := t.TempDir()
	db := openDurableDB(t, wal, repro.WithCheckpointEvery(4096, 0))
	defer db.Close()
	mkReads(t, db)
	for i := 0; i < 40; i++ {
		ingestN(t, db, i*10, 10)
	}
	ws := db.WALStats()
	if ws.Checkpoints == 0 || ws.Seq < 2 {
		t.Fatalf("size trigger never checkpointed: %+v", ws)
	}
	if ws.Bytes > 64<<10 {
		t.Errorf("wal unbounded despite checkpoints: %d bytes", ws.Bytes)
	}

	db.Close()
	db2 := openDurableDB(t, wal)
	defer db2.Close()
	if got := countReads(t, db2); got != 400 {
		t.Fatalf("recovered %d rows, want 400", got)
	}
}

// The interval trigger checkpoints on the timer without any ingest push.
func TestCheckpointIntervalTrigger(t *testing.T) {
	wal := t.TempDir()
	db := openDurableDB(t, wal, repro.WithCheckpointEvery(0, 20*time.Millisecond))
	defer db.Close()
	mkReads(t, db)
	ingestN(t, db, 0, 5)
	deadline := time.Now().Add(5 * time.Second)
	for db.WALStats().Checkpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("interval trigger never checkpointed: %+v", db.WALStats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// A snapshot directory seeds a fresh WAL root once; afterwards the WAL is
// the source of truth.
func TestSnapshotSeedsFreshRoot(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "snap")
	src := repro.Open()
	mkReads(t, src)
	if err := src.Insert("reads", []repro.Value{repro.NewString("seeded"), repro.NewTime(time.UnixMicro(1)), repro.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	if err := src.Save(snap); err != nil {
		t.Fatal(err)
	}

	wal := t.TempDir()
	db, err := repro.OpenDir(snap, repro.WithWAL(wal))
	if err != nil {
		t.Fatal(err)
	}
	if rs := db.ResourceStats().Recovery; !rs.Seeded {
		t.Fatalf("not seeded: %+v", rs)
	}
	if ws := db.WALStats(); ws.Checkpoints != 1 {
		t.Fatalf("seed not checkpointed: %+v", ws)
	}
	ingestN(t, db, 10, 2)
	db.Close()

	// Reopen with the same snapshot arg: the WAL wins, the seed does not
	// re-run, and post-seed ingests are still there.
	db2, err := repro.OpenDir(snap, repro.WithWAL(wal))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if rs := db2.ResourceStats().Recovery; rs.Seeded {
		t.Fatalf("seed ran twice: %+v", rs)
	}
	if got := countReads(t, db2); got != 3 {
		t.Fatalf("recovered %d rows, want 3", got)
	}
}

// Concurrent ingests group-commit safely and all land durably.
func TestConcurrentIngest(t *testing.T) {
	wal := t.TempDir()
	db := openDurableDB(t, wal)
	mkReads(t, db)
	const workers, per = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := w*per + i
				if err := db.Ingest("reads", []repro.Value{
					repro.NewString(fmt.Sprintf("e%d", id)),
					repro.NewTime(time.UnixMicro(int64(id)).UTC()),
					repro.NewInt(int64(id)),
				}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := countReads(t, db); got != workers*per {
		t.Fatalf("live count = %d, want %d", got, workers*per)
	}
	db.Close()

	db2 := openDurableDB(t, wal)
	defer db2.Close()
	if got := countReads(t, db2); got != workers*per {
		t.Fatalf("recovered %d rows, want %d", got, workers*per)
	}
}

// A kind-mismatched value must be rejected before it is WAL-logged:
// replay decodes by column kind, so a logged mismatch would be a
// checksum-valid record that recovery can never apply — the root would
// refuse to reopen forever. Nulls stay insertable into any column.
func TestIngestRejectsKindMismatch(t *testing.T) {
	wal := t.TempDir()
	db := openDurableDB(t, wal)
	mkReads(t, db)
	ingestN(t, db, 0, 3)
	// STRING into the INT column: the exact shape that bricks replay.
	err := db.Ingest("reads", []repro.Value{
		repro.NewString("e9"), repro.NewTime(time.UnixMicro(9).UTC()), repro.NewString("not-an-int"),
	})
	if err == nil || !strings.Contains(err.Error(), "INT") {
		t.Fatalf("kind-mismatched ingest = %v, want kind error", err)
	}
	// Insert delegates to Ingest and must be guarded the same way.
	if err := db.Insert("reads", []repro.Value{
		repro.NewInt(1), repro.NewTime(time.UnixMicro(9).UTC()), repro.NewInt(9),
	}); err == nil {
		t.Fatal("kind-mismatched insert must fail")
	}
	// NULLs are valid in every column and must still be accepted.
	if err := db.Ingest("reads", []repro.Value{repro.Null, repro.Null, repro.Null}); err != nil {
		t.Fatalf("null ingest: %v", err)
	}
	if got := countReads(t, db); got != 4 {
		t.Fatalf("live count = %d, want 4", got)
	}
	db.Close()

	// The root must reopen — the rejected batches never reached the WAL.
	db2 := openDurableDB(t, wal)
	defer db2.Close()
	if got := countReads(t, db2); got != 4 {
		t.Fatalf("recovered %d rows, want 4", got)
	}
}

// Checkpoints racing committers: a rotation must never fail an ingest
// whose rows the just-published checkpoint already contains (the
// "file already closed" double-insert trap), and every acked row must
// survive a restart.
func TestConcurrentIngestWithCheckpoints(t *testing.T) {
	wal := t.TempDir()
	db := openDurableDB(t, wal)
	mkReads(t, db)
	const workers, per = 4, 40
	var ingesters, checkpointer sync.WaitGroup
	errs := make(chan error, workers+1)
	stop := make(chan struct{})
	checkpointer.Add(1)
	go func() {
		defer checkpointer.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := db.Checkpoint(); err != nil {
					errs <- fmt.Errorf("checkpoint: %w", err)
					return
				}
			}
		}
	}()
	for w := 0; w < workers; w++ {
		ingesters.Add(1)
		go func(w int) {
			defer ingesters.Done()
			for i := 0; i < per; i++ {
				id := w*per + i
				if err := db.Ingest("reads", []repro.Value{
					repro.NewString(fmt.Sprintf("e%d", id)),
					repro.NewTime(time.UnixMicro(int64(id)).UTC()),
					repro.NewInt(int64(id)),
				}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	ingesters.Wait()
	close(stop)
	checkpointer.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := countReads(t, db); got != workers*per {
		t.Fatalf("live count = %d, want %d", got, workers*per)
	}
	db.Close()

	db2 := openDurableDB(t, wal)
	defer db2.Close()
	if got := countReads(t, db2); got != workers*per {
		t.Fatalf("recovered %d rows, want %d", got, workers*per)
	}
}

// Ingest without a WAL degrades to Insert; Checkpoint reports
// ErrNotDurable; WALStats is zero.
func TestNonDurableSurfaces(t *testing.T) {
	db := repro.Open()
	mkReads(t, db)
	if err := db.Ingest("reads", []repro.Value{repro.NewString("e"), repro.NewTime(time.UnixMicro(0)), repro.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); !errors.Is(err, repro.ErrNotDurable) {
		t.Fatalf("Checkpoint = %v, want ErrNotDurable", err)
	}
	if ws := db.WALStats(); ws.Durable {
		t.Fatalf("WALStats on non-durable DB = %+v", ws)
	}
	if rs := db.ResourceStats().Recovery; rs.Durable {
		t.Fatalf("Recovery on non-durable DB = %+v", rs)
	}
}

// The WAL metric families register and move.
func TestWALMetrics(t *testing.T) {
	wal := t.TempDir()
	db := openDurableDB(t, wal)
	defer db.Close()
	reg := db.Metrics()
	if reg == nil {
		t.Skip("telemetry disabled by default")
	}
	mkReads(t, db)
	ingestN(t, db, 0, 5)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	found := map[string]float64{}
	for _, fam := range reg.Snapshot() {
		for _, m := range fam.Metrics {
			if m.Value != nil {
				found[fam.Name] = *m.Value
			}
		}
	}
	if _, ok := found["repro_wal_bytes"]; !ok {
		t.Error("repro_wal_bytes not registered")
	}
	if found["repro_checkpoint_total"] != 1 {
		t.Errorf("repro_checkpoint_total = %v, want 1", found["repro_checkpoint_total"])
	}
}

// MaterializeCleansed and LoadRFIDWorkload make their bulk results
// durable via checkpoint rather than row-by-row logging.
func TestBulkLoadsCheckpoint(t *testing.T) {
	wal := t.TempDir()
	db := openDurableDB(t, wal)
	if err := db.LoadRFIDWorkload(repro.WorkloadConfig{Scale: 1, AnomalyPct: 10, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	if ws := db.WALStats(); ws.Checkpoints == 0 {
		t.Fatalf("workload load did not checkpoint: %+v", ws)
	}
	if _, err := db.DefinePaperRules(); err != nil {
		t.Fatal(err)
	}
	want, err := db.Query("SELECT count(*) FROM caser", repro.WithStrategy(repro.Dirty))
	if err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2 := openDurableDB(t, wal)
	defer db2.Close()
	got, err := db2.Query("SELECT count(*) FROM caser", repro.WithStrategy(repro.Dirty))
	if err != nil {
		t.Fatal(err)
	}
	if got.Data[0][0].Int() != want.Data[0][0].Int() {
		t.Fatalf("caser rows = %v, want %v", got.Data[0][0], want.Data[0][0])
	}
	if rules := db2.Registry.All(); len(rules) == 0 {
		t.Fatal("paper rules not recovered")
	}
}
