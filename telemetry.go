package repro

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/govern"
	"repro/internal/obs"
)

// Telemetry types, re-exported from internal/obs so callers can consume
// traces and the metrics registry without importing internals.
type (
	// Trace is one query's telemetry: its QueryID, the query text, and a
	// span tree covering parse → rewrite → plan → admission wait →
	// per-operator execution. Obtain one with WithTrace or Rows.Trace.
	Trace = obs.Trace
	// Span is one timed stage of a query inside a Trace.
	Span = obs.Span
	// SpanAttr is one key/value annotation on a Span.
	SpanAttr = obs.Attr
	// QueryID identifies one query execution, unique within the process.
	QueryID = obs.QueryID
	// MetricsRegistry is the DB's metric registry; see DB.Metrics.
	MetricsRegistry = obs.Registry
	// ActiveQuery is one running query or ingest as reported by
	// DB.ActiveQueries: ID, SQL, phase, elapsed time, live per-operator
	// row counts, and current memory reservation.
	ActiveQuery = obs.ActiveInfo
	// ActiveOperator is one operator's live counters inside an ActiveQuery.
	ActiveOperator = obs.ActiveOp
)

// ErrNoQuery is returned by DB.Kill when no running query has the given
// ID — it already finished, or never existed.
var ErrNoQuery = errors.New("repro: no such query")

// dbMetrics is the DB's metric families, registered once at Open. Hot-path
// families are pre-resolved into fields (publishing is atomic ops only);
// components that already keep their own counters — the plan cache, the
// admission controller, the governance totals — are exposed through
// func-backed collectors that read those counters at scrape time, so every
// number has exactly one home and nothing is double counted.
type dbMetrics struct {
	reg *obs.Registry

	queries    *obs.CounterVec   // repro_queries_total{outcome}
	queryDur   *obs.HistogramVec // repro_query_seconds{outcome}
	parseDur   *obs.Histogram    // repro_parse_seconds
	rewriteDur *obs.Histogram    // repro_rewrite_seconds
	planDur    *obs.Histogram    // repro_plan_seconds
	admitWait  *obs.Histogram    // repro_admission_wait_seconds
	peakBytes  *obs.Histogram    // repro_query_peak_bytes
	firstRow   *obs.Histogram    // repro_first_row_seconds

	opRows    *obs.CounterVec // repro_operator_rows_total{op}
	opBatches *obs.CounterVec // repro_operator_batches_total{op}
	evalOps   *obs.CounterVec // repro_eval_operators_total{mode}

	spillRuns  *obs.Counter // repro_spill_runs_total
	spillBytes *obs.Counter // repro_spill_bytes_total
	spilledQ   *obs.Counter // repro_spilled_queries_total
	slowQ      *obs.Counter // repro_slow_queries_total

	ingestDur       *obs.Histogram // repro_ingest_seconds
	traceExports    *obs.Counter   // repro_trace_exports_total
	traceExportErrs *obs.Counter   // repro_trace_export_errors_total
}

// newDBMetrics builds the registry for one DB and wires the func-backed
// collectors to the DB's existing counters. latency overrides the bucket
// bounds of every latency histogram; nil means obs.DefLatencyBuckets.
func newDBMetrics(db *DB, latency []float64) *dbMetrics {
	if latency == nil {
		latency = obs.DefLatencyBuckets
	}
	r := obs.NewRegistry()
	m := &dbMetrics{
		reg:     r,
		queries: r.CounterVec("repro_queries_total", "Governed query executions by outcome (ok, canceled, killed, exhausted, overloaded, error).", "outcome"),
		queryDur: r.HistogramVec("repro_query_seconds", "End-to-end query latency by outcome, admission wait included.",
			"outcome", latency),
		parseDur:   r.Histogram("repro_parse_seconds", "SQL parse time per plan-cache miss.", latency),
		rewriteDur: r.Histogram("repro_rewrite_seconds", "Cleansing-rewrite time (candidate generation and costing) per plan-cache miss.", latency),
		planDur:    r.Histogram("repro_plan_seconds", "Physical planning time per plan-cache miss.", latency),
		admitWait:  r.Histogram("repro_admission_wait_seconds", "Time spent queued in admission control before execution.", latency),
		peakBytes:  r.Histogram("repro_query_peak_bytes", "Per-query peak charged memory in bytes.", obs.DefBytesBuckets),
		firstRow:   r.Histogram("repro_first_row_seconds", "Streamed-query time to first row: query start to the first batch leaving the engine.", latency),
		opRows:     r.CounterVec("repro_operator_rows_total", "Rows produced per operator kind.", "op"),
		opBatches:  r.CounterVec("repro_operator_batches_total", "Vector-kernel batches processed per operator kind.", "op"),
		evalOps:    r.CounterVec("repro_eval_operators_total", "Expression-evaluating operator executions by eval mode (vector, row).", "mode"),
		spillRuns:  r.Counter("repro_spill_runs_total", "External runs / grace partitions written to spill files."),
		spillBytes: r.Counter("repro_spill_bytes_total", "Bytes written through spill files."),
		spilledQ:   r.Counter("repro_spilled_queries_total", "Queries in which at least one operator spilled to disk."),
		slowQ:      r.Counter("repro_slow_queries_total", "Queries at or over the slow-query threshold."),
		ingestDur:  r.Histogram("repro_ingest_seconds", "End-to-end DB.Ingest batch latency: validation, WAL append, apply, and the durability fsync.", latency),

		traceExports:    r.Counter("repro_trace_exports_total", "Traces serialized to the OTLP exporter."),
		traceExportErrs: r.Counter("repro_trace_export_errors_total", "Trace exports that failed at the sink."),
	}
	// Pre-create the outcome children so scrapes show the full label set
	// from the first query, and the hot path never takes the family mutex.
	for _, oc := range []string{"ok", "canceled", "killed", "exhausted", "overloaded", "error"} {
		m.queries.With(oc)
		m.queryDur.With(oc)
	}
	r.CounterFunc("repro_plan_cache_hits_total", "Rewrite+plan cache hits.", func() float64 {
		h, _ := db.cache.counters()
		return float64(h)
	})
	r.CounterFunc("repro_plan_cache_misses_total", "Rewrite+plan cache misses.", func() float64 {
		_, miss := db.cache.counters()
		return float64(miss)
	})
	r.GaugeFunc("repro_plan_cache_entries", "Plans currently cached.", func() float64 {
		return float64(db.cache.stats().Entries)
	})
	r.GaugeFunc("repro_admission_running", "Queries currently admitted.", func() float64 {
		return float64(db.admit.Stats().Running)
	})
	r.GaugeFunc("repro_admission_waiting", "Queries queued in admission control right now.", func() float64 {
		return float64(db.admit.Stats().Waiting)
	})
	r.CounterFunc("repro_admission_admitted_total", "Admission decisions that admitted a query.", func() float64 {
		return float64(db.admit.Stats().Admitted)
	})
	r.CounterFunc("repro_admission_rejected_total", "Queries rejected with ErrOverloaded.", func() float64 {
		return float64(db.admit.Stats().Rejected)
	})
	r.GaugeFunc("repro_query_max_peak_bytes", "Largest single-query peak memory observed.", func() float64 {
		return float64(db.totals.snapshot().MaxPeak)
	})
	r.GaugeFunc("repro_storage_bytes", "Resident bytes across all tables: columnar segment vectors, zone maps, row tails, and indexes.", func() float64 {
		var b int64
		for _, name := range db.Catalog.TableNames() {
			if t, ok := db.Catalog.Table(name); ok {
				b += t.MemBytes()
			}
		}
		return float64(b)
	})
	r.GaugeFunc("repro_storage_segments", "Sealed columnar segments across all tables (mutable tails excluded).", func() float64 {
		var n int
		for _, name := range db.Catalog.TableNames() {
			if t, ok := db.Catalog.Table(name); ok {
				n += t.SegmentCount()
			}
		}
		return float64(n)
	})
	// Process-level runtime gauges for the metrics listener. ReadMemStats
	// stops the world, so one sampler feeds all memstats-backed collectors
	// and refreshes at most once a second — a scrape hitting four families
	// pays for one read, and scrape storms pay for none.
	sampler := &memStatsSampler{}
	r.GaugeFunc("repro_runtime_goroutines", "Live goroutines in the process.", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.GaugeFunc("repro_runtime_heap_bytes", "Heap bytes in use (runtime.MemStats.HeapAlloc), sampled at most once a second.", func() float64 {
		return float64(sampler.get().HeapAlloc)
	})
	r.CounterFunc("repro_runtime_gc_total", "Completed GC cycles since process start.", func() float64 {
		return float64(sampler.get().NumGC)
	})
	r.CounterFunc("repro_runtime_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.", func() float64 {
		return float64(sampler.get().PauseTotalNs) / 1e9
	})
	return m
}

// memStatsSampler caches runtime.ReadMemStats for a second so multiple
// func-backed collectors in one scrape share a single stop-the-world read.
type memStatsSampler struct {
	mu sync.Mutex
	at time.Time
	ms runtime.MemStats
}

func (s *memStatsSampler) get() runtime.MemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if now := time.Now(); now.Sub(s.at) > time.Second {
		runtime.ReadMemStats(&s.ms)
		s.at = now
	}
	return s.ms
}

// outcomeOf classifies a finished query for the outcome-labeled metrics.
// Classification order matters: an exhausted query under a deadline should
// still count as exhausted, so governance sentinels are checked first.
func outcomeOf(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrResourceExhausted):
		return "exhausted"
	case errors.Is(err, ErrOverloaded):
		return "overloaded"
	case errors.Is(err, ErrCanceled), errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return "canceled"
	default:
		return "error"
	}
}

// qtel carries one query's telemetry through the serving path: the metric
// families to publish into, and the trace under construction when the
// caller asked for one (WithTrace) or the slow-query log needs spans.
//
// A nil *qtel disables telemetry for the query — every method is nil-safe
// — which is how WithoutTelemetry and internal executions (DryRunRule's
// sub-queries) opt out without branching at every call site.
type qtel struct {
	db    *dbTelemetry
	m     *dbMetrics
	id    obs.QueryID
	sql   string
	start time.Time
	trace *obs.Trace
	hook  func(*Trace)
	entry *obs.ActiveEntry

	cacheHit bool
	firstRow time.Duration
	mem      MemStats
}

// dbTelemetry is the DB's observability state: the registry-backed metric
// families, the optional slow-query log, and the optional metrics
// listener. It is nil on a DB opened with WithoutTelemetry.
type dbTelemetry struct {
	metrics *dbMetrics

	slowThreshold time.Duration
	slowLogger    *slog.Logger

	// traceEvery is the head-sampling period from WithTraceSampling: a
	// trace is built for one query in every traceEvery (1 = all, the
	// default; 0 = none). traceSeq is the sampled-query counter.
	traceEvery uint64
	traceSeq   atomic.Uint64

	// active is the live-operations registry: every running query and
	// ingest, for DB.ActiveQueries / GET /v1/queries / \queries, and the
	// kill paths.
	active *obs.ActiveSet

	// exporter, when non-nil (WithTraceExporter), receives every sampled
	// trace as one OTLP/JSON line at query finish.
	exporter *obs.OTLPExporter

	srv      *http.Server
	lis      net.Listener
	addrErr  error
	wantAddr string
}

// sampleTrace decides whether the next trace-requesting query gets one,
// per the WithTraceSampling period. The first such query is always
// sampled, so a single traced query under heavy sampling still works.
func (t *dbTelemetry) sampleTrace() bool {
	switch t.traceEvery {
	case 1:
		return true
	case 0:
		return false
	}
	return (t.traceSeq.Add(1)-1)%t.traceEvery == 0
}

// startQuery opens one query's telemetry. It returns nil when telemetry
// is off. Every observed query gets an ID (one atomic increment) so the
// active-query registry and slow-query log can always identify it; a
// trace (span tree) is built only when the query asked for one, the
// slow-query log will want spans, or a trace exporter is configured —
// metrics publish either way.
func (db *DB) startQuery(sql string, o *queryOpts) *qtel {
	t := db.tel
	if t == nil {
		return nil
	}
	q := &qtel{db: t, m: t.metrics, id: obs.NextQueryID(), sql: sql, start: time.Now(), hook: o.traceHook}
	if (o.traceSet || t.slowLogger != nil || t.exporter != nil) && t.sampleTrace() {
		q.trace = obs.NewTrace(q.id, sql)
		q.trace.Root.Start = q.start
	}
	return q
}

// activate registers the query in the live-operations registry, making
// it visible to ActiveQueries and killable through Kill. cancel is the
// query's private cancellation (nil renders it visible but not
// killable). Exactly one registry mutation; finish removes the entry.
func (q *qtel) activate(kind string, cancel func()) {
	if q == nil {
		return
	}
	q.entry = q.db.active.Register(q.id, kind, q.sql, q.start, cancel)
}

// setPhase publishes the query's current stage to the registry.
func (q *qtel) setPhase(phase string) {
	if q == nil || q.entry == nil {
		return
	}
	q.entry.SetPhase(phase)
}

// attachExec wires the registry entry to the running execution: live
// per-operator row/batch counts from the exec stats map (aggregated by
// operator kind, the same grouping the operator metrics use) and the
// query's current memory reservation. The closures run only when a
// snapshot is taken — the execution hot path is untouched.
func (q *qtel) attachExec(ectx *exec.Ctx, grs *govern.Resources) {
	if q == nil || q.entry == nil {
		return
	}
	stats := func() []obs.ActiveOp {
		snap := ectx.StatsSnapshot()
		agg := make(map[string]*obs.ActiveOp, len(snap))
		for n, st := range snap {
			kind := exec.Kind(n)
			a := agg[kind]
			if a == nil {
				a = &obs.ActiveOp{Op: kind}
				agg[kind] = a
			}
			a.Rows += st.Rows
			a.Batches += st.Batches
		}
		out := make([]obs.ActiveOp, 0, len(agg))
		for _, a := range agg {
			out = append(out, *a)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Op < out[j].Op })
		return out
	}
	var mem func() int64
	if grs != nil {
		mem = grs.Used
	}
	q.entry.Attach(stats, mem)
}

// noteAdmit records the admission wait, as a histogram sample and (in a
// trace) an "admission-wait" span.
func (q *qtel) noteAdmit(start time.Time, d time.Duration) {
	if q == nil {
		return
	}
	q.m.admitWait.Observe(d.Seconds())
	if q.trace != nil {
		q.trace.Root.AddChild(&obs.Span{Name: "admission-wait", Start: start, Dur: d})
	}
}

// notePhases records compilation-stage timings. On a plan-cache miss the
// rewriter's measured parse/rewrite/plan phases become histogram samples
// and trace spans; on a hit compilation was skipped entirely, so the trace
// gets a single "plan-cache" span instead and no phase histograms move.
func (q *qtel) notePhases(ph core.Phases, cacheHit bool, at time.Time) {
	if q == nil {
		return
	}
	q.cacheHit = cacheHit
	if cacheHit {
		if q.trace != nil {
			sp := &obs.Span{Name: "plan-cache", Start: at}
			sp.SetAttr("hit", "true")
			q.trace.Root.AddChild(sp)
		}
		return
	}
	q.m.parseDur.Observe(ph.Parse.Seconds())
	q.m.rewriteDur.Observe(ph.Rewrite.Seconds())
	q.m.planDur.Observe(ph.Plan.Seconds())
	if q.trace != nil {
		// The three phases ran back to back inside the rewriter; their
		// spans are laid out sequentially from the rewrite start.
		start := at
		for _, p := range []struct {
			name string
			d    time.Duration
		}{{"parse", ph.Parse}, {"rewrite", ph.Rewrite}, {"plan", ph.Plan}} {
			q.trace.Root.AddChild(&obs.Span{Name: p.name, Start: start, Dur: p.d})
			start = start.Add(p.d)
		}
	}
}

// notePrepared marks a Prepared.Run execution: compilation happened at
// Prepare time, so the trace gets a zero-duration "prepared" span in the
// compile position and no phase histograms move. hit is the plan-cache
// status the statement was prepared with.
func (q *qtel) notePrepared(hit bool) {
	if q == nil {
		return
	}
	q.cacheHit = hit
	if q.trace != nil {
		q.trace.Root.AddChild(&obs.Span{Name: "prepared", Start: time.Now()})
	}
}

// noteExec publishes per-operator metrics from an execution's recorded
// NodeStats and, in a trace, builds the operator span subtree under an
// "execute" span mirroring the plan tree.
//
// Metrics iterate the stats snapshot — one entry per distinct plan node —
// so a shared subtree (a CTE referenced from several tree positions)
// counts its rows once. The span tree instead mirrors the plan shape, so
// a shared node appears at every position it is referenced from, with a
// cached=N attribute past the first execution.
func (q *qtel) noteExec(plan exec.Node, ectx *exec.Ctx, start time.Time, d time.Duration) {
	if q == nil {
		return
	}
	snap := ectx.StatsSnapshot()
	for n, st := range snap {
		kind := exec.Kind(n)
		q.m.opRows.With(kind).Add(int64(st.Rows))
		if st.Batches > 0 {
			q.m.opBatches.With(kind).Add(int64(st.Batches))
		}
		if st.EvalMode != "" {
			q.m.evalOps.With(st.EvalMode).Inc()
		}
	}
	if q.trace != nil {
		ex := &obs.Span{Name: "execute", Start: start, Dur: d}
		ex.AddChild(operatorSpan(plan, snap))
		q.trace.Root.AddChild(ex)
	}
}

// operatorSpan converts one plan subtree plus its recorded stats into a
// span subtree. Span names are the operators' EXPLAIN labels, so a trace
// lines up 1:1 with the EXPLAIN / EXPLAIN ANALYZE printout of the same
// plan.
func operatorSpan(n exec.Node, stats map[exec.Node]*exec.NodeStats) *obs.Span {
	sp := &obs.Span{Name: n.Label()}
	if st := stats[n]; st != nil {
		sp.Start, sp.Dur = st.Start, st.Elapsed
		sp.SetAttr("op", exec.Kind(n))
		sp.SetAttr("rows", strconv.Itoa(st.Rows))
		if st.Workers > 1 {
			sp.SetAttr("workers", strconv.Itoa(st.Workers))
		}
		if st.EvalMode != "" {
			sp.SetAttr("eval", st.EvalMode)
			if st.EvalMode == "vector" {
				sp.SetAttr("batches", strconv.Itoa(st.Batches))
			}
		}
		if st.SpillRuns > 0 {
			sp.SetAttr("spilled", strconv.Itoa(st.SpillRuns))
			sp.SetAttr("spill_bytes", strconv.FormatInt(st.SpillBytes, 10))
		}
		if st.Hits > 0 {
			sp.SetAttr("cached", strconv.Itoa(st.Hits))
		}
	}
	for _, c := range n.Children() {
		sp.AddChild(operatorSpan(c, stats))
	}
	return sp
}

// noteFirstRow records a streamed query's time to first row, as a
// histogram sample and (in a trace) a first_row attribute on the root
// span. Only the streaming entry points call it; eager queries deliver
// all rows at once and would observe their full latency here.
func (q *qtel) noteFirstRow(d time.Duration) {
	if q == nil {
		return
	}
	q.m.firstRow.Observe(d.Seconds())
	q.firstRow = d
	if q.trace != nil {
		q.trace.Root.SetAttr("first_row", d.Round(time.Microsecond).String())
	}
}

// noteMem records the query's final memory accounting for finish.
func (q *qtel) noteMem(m MemStats) {
	if q == nil {
		return
	}
	q.mem = m
}

// finish closes the query's telemetry: outcome and latency metrics, spill
// and memory accounting, the slow-query log, and trace delivery (to the
// WithTrace hook and, on success, the Rows). It is called exactly once
// per observed query, on every exit path.
func (q *qtel) finish(rows *Rows, err error) {
	if q == nil {
		return
	}
	dur := time.Since(q.start)
	oc := outcomeOf(err)
	// A killed query unwinds through the cancellation machinery and
	// arrives here as "canceled"; the registry entry knows Kill was the
	// cause. Only a query that actually failed is reclassified — a kill
	// racing a successful finish stays "ok".
	if q.entry != nil {
		if err != nil && q.entry.Killed() {
			oc = "killed"
		}
		q.db.active.Remove(q.id)
	}
	q.m.queries.With(oc).Inc()
	q.m.queryDur.With(oc).Observe(dur.Seconds())
	if q.mem.Peak > 0 || oc == "ok" {
		q.m.peakBytes.Observe(float64(q.mem.Peak))
	}
	if q.mem.Spilled() {
		q.m.spilledQ.Inc()
		q.m.spillRuns.Add(q.mem.SpillRuns)
		q.m.spillBytes.Add(q.mem.SpillBytes)
	}
	if q.trace != nil {
		q.trace.Root.Dur = dur
		q.trace.Root.SetAttr("outcome", oc)
		q.trace.Root.SetAttr("plan_cache_hit", strconv.FormatBool(q.cacheHit))
		if rows != nil {
			rows.trace = q.trace
		}
	}
	if lg := q.db.slowLogger; lg != nil && dur >= q.db.slowThreshold {
		q.m.slowQ.Inc()
		attrs := []slog.Attr{
			slog.String("query_id", q.id.String()),
			slog.String("sql", q.sql),
			slog.Duration("duration", dur),
			slog.String("outcome", oc),
			slog.Bool("plan_cache_hit", q.cacheHit),
			slog.Int64("peak_bytes", q.mem.Peak),
			slog.Int64("spill_runs", q.mem.SpillRuns),
		}
		// A streamed query's time to first row: how long the client waited
		// before any data arrived, often the number that matters when the
		// total duration is dominated by a slow consumer.
		if q.firstRow > 0 {
			attrs = append(attrs, slog.Duration("first_row", q.firstRow))
		}
		// Under WithTraceSampling the trace may have been sampled away; the
		// entry then carries the summary fields but no spans.
		for i, sp := range q.trace.SlowestSpans(3) {
			attrs = append(attrs, slog.String(
				fmt.Sprintf("span_%d", i+1),
				fmt.Sprintf("%s=%s", sp.Name, sp.Exclusive().Round(time.Microsecond)),
			))
		}
		lg.LogAttrs(context.Background(), slog.LevelWarn, "slow query", attrs...)
	}
	q.db.export(q.trace)
	if q.hook != nil {
		q.hook(q.trace)
	}
}

// export serializes one finished trace to the OTLP exporter, counting
// successes and sink failures. Nil traces (sampled away) and a nil
// exporter are no-ops.
func (t *dbTelemetry) export(tr *obs.Trace) {
	if t == nil || t.exporter == nil || tr == nil {
		return
	}
	if err := t.exporter.Export(tr); err != nil {
		t.metrics.traceExportErrs.Inc()
	} else {
		t.metrics.traceExports.Inc()
	}
}

// exportSpan emits a standalone single-span trace for an engine-internal
// operation with no query attached: a checkpoint, or startup recovery.
func (t *dbTelemetry) exportSpan(name string, start time.Time, d time.Duration, attrs ...obs.Attr) {
	if t == nil || t.exporter == nil {
		return
	}
	tr := obs.NewTrace(obs.NextQueryID(), "")
	tr.Root.Name = name
	tr.Root.Start = start
	tr.Root.Dur = d
	tr.Root.Attrs = attrs
	t.export(tr)
}

// itel carries one ingest batch's telemetry: the end-to-end latency
// histogram, the registry entry (ingests are visible in ActiveQueries
// and killable like queries), and — when a trace is sampled — the
// durability-pipeline span tree (validate → wal_append → apply → fsync).
// A nil *itel disables ingest telemetry; every method is nil-safe.
type itel struct {
	db    *dbTelemetry
	m     *dbMetrics
	id    obs.QueryID
	start time.Time
	trace *obs.Trace
	entry *obs.ActiveEntry
}

// startIngest opens one ingest batch's telemetry and registers it in the
// live-operations registry. The registry SQL field carries a synthetic
// statement so \queries output reads uniformly.
func (db *DB) startIngest(table string, nrows int, cancel func()) *itel {
	t := db.tel
	if t == nil {
		return nil
	}
	sql := fmt.Sprintf("INGEST INTO %s (%d rows)", table, nrows)
	q := &itel{db: t, m: t.metrics, id: obs.NextQueryID(), start: time.Now()}
	if (t.slowLogger != nil || t.exporter != nil) && t.sampleTrace() {
		q.trace = obs.NewTrace(q.id, sql)
		q.trace.Root.Name = "ingest"
		q.trace.Root.Start = q.start
		q.trace.Root.SetAttr("table", table)
		q.trace.Root.SetAttr("rows", strconv.Itoa(nrows))
	}
	q.entry = t.active.Register(q.id, "ingest", sql, q.start, cancel)
	return q
}

// setPhase publishes the ingest's current pipeline stage.
func (q *itel) setPhase(phase string) {
	if q == nil {
		return
	}
	q.entry.SetPhase(phase)
}

// span records one completed pipeline stage as a child span, when a
// trace is being built. Stages are recorded after the fact (start +
// duration), so the durability path takes no extra branches when no
// trace is sampled.
func (q *itel) span(name string, start time.Time, d time.Duration, attrs ...obs.Attr) {
	if q == nil || q.trace == nil {
		return
	}
	sp := &obs.Span{Name: name, Start: start, Dur: d, Attrs: attrs}
	q.trace.Root.AddChild(sp)
}

// finish closes the ingest's telemetry: the latency histogram, registry
// removal, trace finalization and export, and the slow log (an ingest at
// or over the slow-query threshold logs like a slow query).
func (q *itel) finish(err error) {
	if q == nil {
		return
	}
	dur := time.Since(q.start)
	oc := outcomeOf(err)
	if err != nil && q.entry.Killed() {
		oc = "killed"
	}
	q.db.active.Remove(q.id)
	q.m.ingestDur.Observe(dur.Seconds())
	if q.trace != nil {
		q.trace.Root.Dur = dur
		q.trace.Root.SetAttr("outcome", oc)
	}
	if lg := q.db.slowLogger; lg != nil && dur >= q.db.slowThreshold {
		attrs := []slog.Attr{
			slog.String("query_id", q.id.String()),
			slog.Duration("duration", dur),
			slog.String("outcome", oc),
		}
		if q.trace != nil {
			attrs = append(attrs, slog.String("sql", q.trace.SQL))
		}
		for i, sp := range q.trace.SlowestSpans(3) {
			attrs = append(attrs, slog.String(
				fmt.Sprintf("span_%d", i+1),
				fmt.Sprintf("%s=%s", sp.Name, sp.Exclusive().Round(time.Microsecond)),
			))
		}
		lg.LogAttrs(context.Background(), slog.LevelWarn, "slow ingest", attrs...)
	}
	q.db.export(q.trace)
}

// ActiveQueries reports every query and ingest running right now, sorted
// by query ID: SQL, phase, elapsed time, live per-operator row/batch
// counts (a snapshot of the execution's stats map), and current memory
// reservation. On a DB opened with WithoutTelemetry it returns nil.
func (db *DB) ActiveQueries() []ActiveQuery {
	if db.tel == nil {
		return nil
	}
	return db.tel.active.Snapshot()
}

// Kill cooperatively cancels the running query or ingest with the given
// ID. The statement unwinds through the engine's per-operator
// cancellation points — slots, memory, and spill files are released
// through the normal finish path — and reports outcome "killed" in
// metrics, the slow-query log, and its trace. Kill returns ErrNoQuery
// when no running statement has that ID (it may have just finished), and
// on a DB opened with WithoutTelemetry.
func (db *DB) Kill(id QueryID) error {
	if db.tel == nil || !db.tel.active.Kill(id) {
		return fmt.Errorf("%w: %s", ErrNoQuery, id)
	}
	return nil
}

// ParseQueryID parses a query ID as printed by the registry — "q-00000012"
// — or as a bare integer.
func ParseQueryID(s string) (QueryID, error) {
	n, err := strconv.ParseUint(strings.TrimPrefix(s, "q-"), 10, 64)
	if err != nil || n == 0 {
		return 0, fmt.Errorf("repro: invalid query ID %q", s)
	}
	return QueryID(n), nil
}

// WithTrace collects a structured trace for this query: a span tree
// covering parse, rewrite, plan (or the plan-cache hit), the admission
// wait, and every operator of the executed plan with its rows, workers,
// eval mode, and spill activity. If hook is non-nil it receives the trace
// when the query finishes — on failure too, which a Rows-based reader
// never sees. A nil hook just collects; read the trace from Rows.Trace.
// The option is ignored on a DB opened with WithoutTelemetry.
func WithTrace(hook func(*Trace)) QueryOption {
	return func(o *queryOpts) { o.traceHook, o.traceSet = hook, true }
}

// Trace returns the query's structured trace, or nil when none was
// collected (no WithTrace option and no slow-query log configured).
func (r *Rows) Trace() *Trace { return r.trace }

// WithoutTelemetry opens the DB with observability disabled: no metric
// families are registered, queries collect no per-operator statistics,
// and WithTrace is ignored. The telemetry-overhead benchmark uses it as
// its baseline; servers should leave telemetry on.
func WithoutTelemetry() Option {
	return func(c *dbConfig) { c.noTelemetry = true }
}

// WithMetricsAddr serves the DB's metrics on addr (e.g. ":9090" or
// "127.0.0.1:0") from a background listener, Prometheus text format at
// every path, JSON with ?format=json. The listener starts at Open and
// stops at Close; MetricsAddr reports the bound address. A listen failure
// does not fail Open — it is reported by MetricsAddr instead, so a DB is
// usable even when its metrics port is taken.
func WithMetricsAddr(addr string) Option {
	return func(c *dbConfig) { c.metricsAddr = addr }
}

// WithHistogramBuckets replaces the bucket bounds of every latency
// histogram (repro_query_seconds, the parse/rewrite/plan phase
// histograms, and repro_admission_wait_seconds) with the given strictly
// ascending upper bounds, in seconds. The default, obs.DefLatencyBuckets,
// spans 100µs–10s; a server whose SLO lives in a narrower band sets
// bounds that resolve it (e.g. 1–250ms in fine steps). Open panics on
// non-ascending or empty bounds — bucket layouts are program constants,
// so a bad one is a bug, not an input error.
func WithHistogramBuckets(boundsSeconds []float64) Option {
	if len(boundsSeconds) == 0 {
		panic("repro: WithHistogramBuckets requires at least one bound")
	}
	bounds := append([]float64(nil), boundsSeconds...)
	return func(c *dbConfig) { c.latencyBuckets = bounds }
}

// WithTraceSampling head-samples trace collection: only the given
// fraction of trace-eligible queries (WithTrace callers, or every query
// when a slow-query log is configured) actually build a span tree; the
// rest skip trace construction entirely and pay nothing. fraction >= 1
// traces every eligible query (the default), fraction <= 0 none, and
// anything between traces one query in every round(1/fraction),
// starting with the first. A sampled-out query's WithTrace hook is
// invoked with a nil *Trace and its Rows.Trace returns nil; slow-query
// log entries for such queries carry the summary fields but no query
// text or spans. Metrics are unaffected.
func WithTraceSampling(fraction float64) Option {
	return func(c *dbConfig) { c.traceSample, c.traceSampleSet = fraction, true }
}

// WithTraceExporter streams every sampled trace to w as OTLP/JSON, one
// ExportTraceServiceRequest document per line: query span trees, ingest
// durability pipelines (validate → WAL append → apply → fsync),
// checkpoints, and startup recovery. With an exporter configured every
// query becomes trace-eligible; WithTraceSampling still head-samples
// which ones build (and therefore export) a span tree, and
// WithoutTelemetry disables export entirely. Writes happen on the
// query's finish path under one mutex — point w at a buffered file or a
// background sink for high-throughput serving; rfidserve's -trace-export
// flag does this. Export failures are counted in
// repro_trace_export_errors_total and never fail the query.
func WithTraceExporter(w io.Writer) Option {
	return func(c *dbConfig) { c.traceExport = w }
}

// WithSlowQueryLog logs every query at or over threshold to logger: the
// query text and ID, outcome, plan-cache status, peak memory, spill runs,
// and the three slowest spans by self time. A zero threshold logs every
// query. The log rides on tracing, so slow queries carry full span trees
// even without WithTrace.
func WithSlowQueryLog(threshold time.Duration, logger *slog.Logger) Option {
	return func(c *dbConfig) { c.slowThreshold, c.slowLogger = threshold, logger }
}

// applyTelemetry assembles the DB's observability state from its Open
// options: the metric registry (unless disabled) and, when requested, the
// slow-query log and the background metrics listener.
func applyTelemetry(db *DB, c *dbConfig) {
	if c.noTelemetry {
		return
	}
	t := &dbTelemetry{
		metrics:       newDBMetrics(db, c.latencyBuckets),
		slowThreshold: c.slowThreshold,
		slowLogger:    c.slowLogger,
		wantAddr:      c.metricsAddr,
		traceEvery:    1,
		active:        obs.NewActiveSet(),
	}
	if c.traceExport != nil {
		t.exporter = obs.NewOTLPExporter(c.traceExport, "repro")
	}
	t.metrics.reg.GaugeFunc("repro_active_queries", "Queries and ingests running right now.", func() float64 {
		return float64(t.active.Len())
	})
	if c.traceSampleSet {
		switch f := c.traceSample; {
		case f >= 1:
			t.traceEvery = 1
		case f <= 0:
			t.traceEvery = 0
		default:
			t.traceEvery = uint64(math.Round(1 / f))
		}
	}
	db.tel = t
	if c.metricsAddr == "" {
		return
	}
	lis, err := net.Listen("tcp", c.metricsAddr)
	if err != nil {
		t.addrErr = err
		return
	}
	t.lis = lis
	// The metrics listener doubles as the diagnostics port: the registry
	// at every path except /debug/pprof/, which serves the standard Go
	// profiles (heap, goroutine, CPU, execution trace).
	mux := http.NewServeMux()
	mux.Handle("/", t.metrics.reg.Handler())
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	t.srv = &http.Server{Handler: mux}
	go func() { _ = t.srv.Serve(lis) }()
}

// Metrics returns the DB's metric registry, or nil when the DB was opened
// with WithoutTelemetry. Callers may register their own families on it;
// they appear in every exposition alongside the engine's.
func (db *DB) Metrics() *MetricsRegistry {
	if db.tel == nil {
		return nil
	}
	return db.tel.metrics.reg
}

// MetricsHandler returns an http.Handler exposing the DB's metrics —
// Prometheus text format by default, JSON with ?format=json — for mounting
// on a caller-owned mux. It works with or without WithMetricsAddr. On a
// DB opened WithoutTelemetry the handler serves 404.
func (db *DB) MetricsHandler() http.Handler {
	if db.tel == nil {
		return http.NotFoundHandler()
	}
	return db.tel.metrics.reg.Handler()
}

// MetricsAddr reports the address the background metrics listener bound
// (useful with "127.0.0.1:0"), or the error that kept it from starting.
// Without WithMetricsAddr both returns are zero.
func (db *DB) MetricsAddr() (string, error) {
	t := db.tel
	if t == nil || (t.lis == nil && t.addrErr == nil) {
		return "", nil
	}
	if t.addrErr != nil {
		return "", fmt.Errorf("repro: metrics listener on %q: %w", t.wantAddr, t.addrErr)
	}
	return t.lis.Addr().String(), nil
}

// Close releases the DB's background resources: the durability layer
// (checkpoint timer stopped, WAL synced per policy and closed) and the
// metrics listener started by WithMetricsAddr. A DB without either
// closes as a no-op; Close is safe to call on every DB.
func (db *DB) Close() error {
	walErr := db.closeDurability()
	t := db.tel
	if t == nil || t.srv == nil {
		return walErr
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := t.srv.Shutdown(ctx); err != nil {
		return err
	}
	return walErr
}
