package repro_test

import (
	"fmt"
	"strings"
	"time"

	"repro"
)

// Example shows the core deferred-cleansing loop: a rule is defined once,
// and every query is rewritten to answer over cleansed data without the
// stored table changing.
func Example() {
	db := repro.Open()
	db.CreateTable("reads",
		repro.ColumnDef{Name: "epc", Kind: repro.KindString},
		repro.ColumnDef{Name: "rtime", Kind: repro.KindTime},
		repro.ColumnDef{Name: "biz_loc", Kind: repro.KindString},
	)
	t0 := time.Date(2026, 7, 4, 9, 0, 0, 0, time.UTC)
	db.Insert("reads",
		[]repro.Value{repro.NewString("e1"), repro.NewTime(t0), repro.NewString("dock")},
		[]repro.Value{repro.NewString("e1"), repro.NewTime(t0.Add(2 * time.Minute)), repro.NewString("dock")},
		[]repro.Value{repro.NewString("e1"), repro.NewTime(t0.Add(90 * time.Minute)), repro.NewString("shelf")},
	)
	db.Analyze("reads")
	db.DefineRule(`DEFINE dedup ON reads
		AS (A, B) WHERE A.biz_loc = B.biz_loc AND B.rtime - A.rtime < 5 mins
		ACTION DELETE B`)

	dirty, _ := db.Query("SELECT count(*) FROM reads", repro.WithStrategy(repro.Dirty))
	clean, _ := db.Query("SELECT count(*) FROM reads")
	fmt.Println("dirty:", dirty.Data[0][0])
	fmt.Println("clean:", clean.Data[0][0])
	// Output:
	// dirty: 3
	// clean: 2
}

// ExampleDB_Rewrite inspects the SQL a rewrite produces instead of running
// it — useful for understanding what the engine will submit.
func ExampleDB_Rewrite() {
	db := repro.Open()
	db.CreateTable("reads",
		repro.ColumnDef{Name: "epc", Kind: repro.KindString},
		repro.ColumnDef{Name: "rtime", Kind: repro.KindTime},
		repro.ColumnDef{Name: "reader", Kind: repro.KindString},
	)
	db.Analyze("reads")
	db.DefineRule(`DEFINE reader ON reads
		AS (A, *B) WHERE B.reader = 'readerX' AND B.rtime - A.rtime < 10 mins
		ACTION DELETE A`)

	info, _ := db.Rewrite(
		"SELECT count(*) FROM reads WHERE rtime <= TIMESTAMP '2026-01-01'",
		repro.WithStrategy(repro.Expanded))
	fmt.Println("strategy:", info.Strategy)
	// The pushed predicate is the query bound relaxed by the rule's
	// 10-minute correlation window.
	fmt.Println("widened:", strings.Contains(info.SQL, "2026-01-01 00:09:59.999999"))
	// Output:
	// strategy: expanded
	// widened: true
}

// ExampleDB_ExpandedConditions reproduces the paper's Table-1 analysis for
// one rule and one query.
func ExampleDB_ExpandedConditions() {
	db := repro.Open()
	db.CreateTable("reads",
		repro.ColumnDef{Name: "epc", Kind: repro.KindString},
		repro.ColumnDef{Name: "rtime", Kind: repro.KindTime},
		repro.ColumnDef{Name: "biz_loc", Kind: repro.KindString},
	)
	db.Analyze("reads")
	db.DefineRule(`DEFINE cycle ON reads
		AS (A, B, C) WHERE A.biz_loc = C.biz_loc AND A.biz_loc <> B.biz_loc
		ACTION DELETE B`)
	cc, _ := db.ExpandedConditions("SELECT * FROM reads WHERE rtime <= TIMESTAMP '2026-01-01'")
	fmt.Println("cycle:", cc["cycle"])
	// Output:
	// cycle: {}
}
