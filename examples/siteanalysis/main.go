// Site analysis: the paper's benchmark query q2 — reader utilization and
// business-step variety per manufacturer at one distribution site — as a
// star join over the reads fact table. This is the query family where the
// join-back rewrite shines: the site predicate correlates with EPC
// sequences, so restricting cleansing to the relevant sequences is cheap.
//
//	go run ./examples/siteanalysis
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	db := repro.Open()
	fmt.Println("generating RFID workload (scale 4, 10% anomalies)...")
	if err := db.LoadRFIDWorkload(repro.WorkloadConfig{Scale: 4, AnomalyPct: 10, Seed: 3}); err != nil {
		log.Fatal(err)
	}
	if _, err := db.DefinePaperRules(); err != nil {
		log.Fatal(err)
	}

	// Find a site that actually has traffic at this scale.
	sites, err := db.Query(`
		SELECT l.site, COUNT(*) c FROM caseR r, locs l
		WHERE r.biz_loc = l.gln GROUP BY l.site ORDER BY c DESC LIMIT 1`,
		repro.WithStrategy(repro.Dirty))
	if err != nil {
		log.Fatal(err)
	}
	site := sites.Data[0][0].Str()
	fmt.Println("analyzing site:", site)

	q2 := fmt.Sprintf(`
		SELECT p.manufacturer, COUNT(DISTINCT s.type) AS step_types, COUNT(DISTINCT c.reader) AS readers
		FROM caseR c, steps s, locs l, epc_info i, product p
		WHERE c.biz_step = s.biz_step AND c.biz_loc = l.gln
		  AND c.epc = i.epc AND i.product = p.product
		  AND l.site = '%s'
		GROUP BY p.manufacturer
		ORDER BY readers DESC
		LIMIT 10`, site)
	rules := []string{"reader", "duplicate", "replacing"}

	// Compare the engine's strategies explicitly. Note: this q2 variant
	// has no rtime predicate, so the expanded rewrite is infeasible (no
	// bound to relax — exactly the situations §5.3 introduces join-back
	// for); the engine reports that rather than guessing.
	for _, strat := range []repro.Strategy{repro.Dirty, repro.Expanded, repro.JoinBack, repro.Auto} {
		opts := []repro.QueryOption{repro.WithStrategy(strat)}
		if strat != repro.Dirty {
			opts = append(opts, repro.WithRules(rules...))
		}
		rows, err := db.Query(q2, opts...)
		if err != nil {
			fmt.Printf("\n-- %v --\n  not applicable: %v\n", strat, err)
			continue
		}
		fmt.Printf("\n-- %v --\n", strat)
		fmt.Printf("%-14s %-12s %s\n", "manufacturer", "step types", "distinct readers")
		for i, r := range rows.Data {
			if i >= 5 {
				break
			}
			fmt.Printf("%-14s %-12s %s\n", r[0], r[1], r[2])
		}
	}

	// Show the join-back plan: caseR is visited twice — once to find the
	// relevant sequences, once to fetch them in full for cleansing.
	plan, err := db.Explain(q2, repro.WithStrategy(repro.JoinBack), repro.WithRules(rules...))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\njoin-back plan (note the sequence semi-join on epc):")
	for _, line := range strings.Split(plan, "\n") {
		if strings.Contains(line, "caser") || strings.Contains(line, "IN (") ||
			strings.Contains(line, "Window") || strings.Contains(line, "strategy") {
			fmt.Println(line)
		}
	}
}
