// Dwell analysis: the paper's benchmark query q1 end to end — how long do
// shipments spend between consecutive locations? — over a generated
// supply-chain workload with injected anomalies, comparing the dirty
// answer with the deferred-cleansing answer and showing the rewrite the
// engine chose.
//
//	go run ./examples/dwellanalysis
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	db := repro.Open()
	fmt.Println("generating RFID workload (scale 4, 20% anomalies)...")
	if err := db.LoadRFIDWorkload(repro.WorkloadConfig{Scale: 4, AnomalyPct: 20, Seed: 7}); err != nil {
		log.Fatal(err)
	}
	if _, err := db.DefinePaperRules(); err != nil {
		log.Fatal(err)
	}

	// q1 from Figure 6: bring each read together with its predecessor via
	// SQL/OLAP, then average the gaps per location pair. The three
	// time-bounded rules (reader, duplicate, replacing) are applied at
	// query time.
	const q1 = `
		WITH v1 AS (
		  SELECT biz_loc AS current_loc, rtime,
		         MAX(rtime) OVER (PARTITION BY epc ORDER BY rtime
		                          ROWS BETWEEN 1 PRECEDING AND 1 PRECEDING) AS prev_time,
		         MAX(biz_loc) OVER (PARTITION BY epc ORDER BY rtime
		                            ROWS BETWEEN 1 PRECEDING AND 1 PRECEDING) AS prev_loc
		  FROM caseR)
		SELECT l1.site, l2.site, AVG(rtime - prev_time) AS avg_dwell, COUNT(*) AS hops
		FROM v1, locs l1, locs l2
		WHERE v1.prev_loc = l1.gln AND v1.current_loc = l2.gln
		GROUP BY l1.site, l2.site
		ORDER BY hops DESC
		LIMIT 8`
	rules := []string{"reader", "duplicate", "replacing"}

	dirty, err := db.Query(q1, repro.WithStrategy(repro.Dirty))
	if err != nil {
		log.Fatal(err)
	}
	clean, err := db.Query(q1, repro.WithRules(rules...))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nchosen rewrite: %s (est cost %.0f); candidates:\n", clean.Rewrite.Strategy, clean.Rewrite.EstCost)
	for _, c := range clean.Rewrite.Candidates {
		fmt.Printf("  %-9s pushes=%d cost=%.0f\n", c.Strategy, c.Pushes, c.EstCost)
	}

	fmt.Println("\ntop site-to-site dwell times (dirty vs cleansed):")
	fmt.Printf("%-28s %-28s %-18s %-18s\n", "from", "to", "dirty avg", "cleansed avg")
	cleanByPair := map[string]string{}
	for _, r := range clean.Data {
		cleanByPair[r[0].Str()+"→"+r[1].Str()] = r[2].String()
	}
	for _, r := range dirty.Data {
		key := r[0].Str() + "→" + r[1].Str()
		fmt.Printf("%-28s %-28s %-18s %-18s\n", r[0].Str(), r[1].Str(), r[2], cleanByPair[key])
	}
	fmt.Println("\nanomalies shift dwell averages (duplicates shrink them, stray")
	fmt.Println("transport reads fragment hops); the cleansed column is computed")
	fmt.Println("at query time without touching the stored data.")
}
