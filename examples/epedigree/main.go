// E-pedigree tracking: the motivating scenario the paper's introduction
// gives for why cleansing must be deferred — pharmaceutical pedigree laws
// require raw read history to be preserved, so anomalies can only be
// compensated at query time. This example builds a pedigree trail with a
// back-and-forth cycle and a missed case read, keeps the stored data
// untouched, and lets two different "applications" query the same table
// under different rule sets (the paper's core argument against eager
// cleansing).
//
//	go run ./examples/epedigree
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	db := repro.Open()
	mustCreate(db)

	// Application A (shelf-space planning) wants to SEE the back-room
	// cycles; application B (pedigree reporting) wants them collapsed and
	// missed reads compensated. Same stored table, different rules.
	if _, err := db.DefineRule(`
		DEFINE collapse_cycles ON reads
		AS (A, B, C)
		WHERE A.biz_loc = C.biz_loc AND A.biz_loc <> B.biz_loc
		ACTION DELETE B`); err != nil {
		log.Fatal(err)
	}
	if _, err := db.DefineRule(`
		DEFINE compensate_r1 ON reads FROM reads_with_pallet
		AS (X, A, Y)
		WHERE A.is_pallet = 1 AND ((X.is_pallet = 0 AND A.biz_loc = X.biz_loc AND A.rtime - X.rtime < 5 mins)
			OR (Y.is_pallet = 0 AND A.biz_loc = Y.biz_loc AND Y.rtime - A.rtime < 5 mins))
		ACTION MODIFY A.has_case_nearby = 1`); err != nil {
		log.Fatal(err)
	}
	if _, err := db.DefineRule(`
		DEFINE compensate_r2 ON reads FROM reads_with_pallet
		AS (A, *B)
		WHERE A.is_pallet = 0 OR (A.has_case_nearby = 0 AND B.has_case_nearby = 1)
		ACTION KEEP A`); err != nil {
		log.Fatal(err)
	}

	const trail = `SELECT rtime, biz_loc FROM reads WHERE epc = 'case-7' ORDER BY rtime`

	show(db, "raw pedigree trail (stored data, preserved by law)", trail, repro.WithStrategy(repro.Dirty))
	show(db, "application A: cycles visible (no rules)", trail, repro.WithStrategy(repro.Dirty))
	show(db, "application B: cycles collapsed + missed read compensated",
		trail, repro.WithRules("collapse_cycles", "compensate_r1", "compensate_r2"))

	fmt.Println("\nThe stored table never changed; each application evolved its own")
	fmt.Println("anomaly definitions and got answers over its own cleansed view.")
}

func mustCreate(db *repro.DB) {
	for _, ddl := range []struct {
		name string
		cols []repro.ColumnDef
	}{
		{"reads", []repro.ColumnDef{
			{Name: "epc", Kind: repro.KindString}, {Name: "rtime", Kind: repro.KindTime},
			{Name: "biz_loc", Kind: repro.KindString},
		}},
		{"pallet_reads", []repro.ColumnDef{
			{Name: "epc", Kind: repro.KindString}, {Name: "rtime", Kind: repro.KindTime},
			{Name: "biz_loc", Kind: repro.KindString},
		}},
		{"pallet_of", []repro.ColumnDef{
			{Name: "child_epc", Kind: repro.KindString}, {Name: "parent_epc", Kind: repro.KindString},
		}},
	} {
		if err := db.CreateTable(ddl.name, ddl.cols...); err != nil {
			log.Fatal(err)
		}
	}
	t0 := time.Date(2026, 1, 5, 8, 0, 0, 0, time.UTC)
	at := func(h int) repro.Value { return repro.NewTime(t0.Add(time.Duration(h) * time.Hour)) }
	r := func(epc string, h int, loc string) []repro.Value {
		return []repro.Value{repro.NewString(epc), at(h), repro.NewString(loc)}
	}
	// case-7: manufacturer → wholesaler floor ↔ back room cycle → floor →
	// pharmacy. Its wholesaler *receiving* read was missed (only the
	// pallet saw it).
	if err := db.Insert("reads",
		r("case-7", 0, "manufacturer"),
		// receiving read missing here (hour 24)
		r("case-7", 48, "wholesaler floor"),
		r("case-7", 50, "back room"), // shelf overflow cycle
		r("case-7", 55, "wholesaler floor"),
		r("case-7", 58, "back room"),
		r("case-7", 62, "wholesaler floor"),
		r("case-7", 96, "pharmacy"),
	); err != nil {
		log.Fatal(err)
	}
	if err := db.Insert("pallet_reads",
		r("pallet-1", 0, "manufacturer"),
		r("pallet-1", 24, "wholesaler receiving"), // the compensating read
		r("pallet-1", 48, "wholesaler floor"),
	); err != nil {
		log.Fatal(err)
	}
	if err := db.Insert("pallet_of",
		[]repro.Value{repro.NewString("case-7"), repro.NewString("pallet-1")},
	); err != nil {
		log.Fatal(err)
	}
	for _, t := range []string{"reads", "pallet_reads"} {
		if err := db.BuildIndex(t, "rtime"); err != nil {
			log.Fatal(err)
		}
		if err := db.Analyze(t); err != nil {
			log.Fatal(err)
		}
	}
	// The compensation input: case reads ∪ pallet reads propagated to
	// each case EPC (Example 5 of the paper).
	if err := db.CreateView("reads_with_pallet", `
		SELECT epc, rtime, biz_loc, 0 AS is_pallet FROM reads
		UNION ALL
		SELECT pallet_of.child_epc AS epc, pallet_reads.rtime, pallet_reads.biz_loc, 1 AS is_pallet
		FROM pallet_reads, pallet_of WHERE pallet_reads.epc = pallet_of.parent_epc`); err != nil {
		log.Fatal(err)
	}
}

func show(db *repro.DB, label, q string, opts ...repro.QueryOption) {
	rows, err := db.Query(q, opts...)
	if err != nil {
		log.Fatalf("%s: %v", label, err)
	}
	fmt.Printf("\n%s:\n", label)
	for _, r := range rows.Data {
		fmt.Printf("  %s  %s\n", r[0], r[1].Str())
	}
}
