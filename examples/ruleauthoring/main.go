// Rule authoring workflow: how an application developer iterates on a
// cleansing rule — dry-run its effect before trusting it, inspect the
// derived expanded conditions for the queries that matter, compare the
// rewrite strategies the engine considers, and read the executed plan
// with actual row counts.
//
//	go run ./examples/ruleauthoring
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	db := repro.Open()
	fmt.Println("generating workload (scale 4, 20% anomalies)...")
	if err := db.LoadRFIDWorkload(repro.WorkloadConfig{Scale: 4, AnomalyPct: 20, Seed: 21}); err != nil {
		log.Fatal(err)
	}

	// Draft a rule: delete reads trailed within 10 minutes by the
	// forklift reader. The workload generator tells us its reader id.
	ruleSrc := fmt.Sprintf(`
		DEFINE forklift ON caseR
		AS (A, *B)
		WHERE B.reader = '%s' AND B.rtime - A.rtime < 10 mins
		ACTION DELETE A`, db.Workload.ReaderX)
	info, err := db.DefineRule(ruleSrc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n1. The rule compiles to this SQL/OLAP template:")
	fmt.Println("  ", info.Template)

	// Dry-run: what would it do to today's data?
	eff, err := db.DryRunRule("forklift", 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n2. Dry run: %d of %d reads would be deleted, %d modified.\n",
		eff.Deleted, eff.Input, eff.Modified)
	for _, s := range eff.SampleDeleted {
		fmt.Println("   would delete:", s)
	}

	// How does it combine with the application's main query?
	q := "SELECT count(*) FROM caseR WHERE rtime <= TIMESTAMP '2024-01-01'"
	cc, err := db.ExpandedConditions(q, repro.WithRules("forklift"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n3. Expanded condition the rewrite derives for the query:")
	fmt.Println("   forklift:", cc["forklift"])

	ri, err := db.Rewrite(q, repro.WithRules("forklift"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n4. Candidate rewrites (chosen: %s):\n", ri.Strategy)
	for _, c := range ri.Candidates {
		mark := "  "
		if c.Chosen {
			mark = "→ "
		}
		fmt.Printf("   %s%-9s pushes=%d est cost %.0f\n", mark, c.Strategy, c.Pushes, c.EstCost)
	}

	plan, err := db.ExplainAnalyze(q, repro.WithRules("forklift"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n5. Executed plan with actual row counts:")
	fmt.Println(plan)
}
