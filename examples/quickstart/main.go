// Quickstart: define a cleansing rule on a hand-built reads table and see
// deferred cleansing change a query's answer.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	db := repro.Open()

	// A tiny reads table: tag e1 is read twice at the dock within two
	// minutes (a duplicate read — the reader at the dock chattered), then
	// at the shelf an hour and a half later.
	if err := db.CreateTable("reads",
		repro.ColumnDef{Name: "epc", Kind: repro.KindString},
		repro.ColumnDef{Name: "rtime", Kind: repro.KindTime},
		repro.ColumnDef{Name: "biz_loc", Kind: repro.KindString},
	); err != nil {
		log.Fatal(err)
	}
	t0 := time.Date(2026, 7, 4, 9, 0, 0, 0, time.UTC)
	read := func(epc string, offset time.Duration, loc string) []repro.Value {
		return []repro.Value{repro.NewString(epc), repro.NewTime(t0.Add(offset)), repro.NewString(loc)}
	}
	if err := db.Insert("reads",
		read("e1", 0, "dock"),
		read("e1", 2*time.Minute, "dock"), // duplicate
		read("e1", 90*time.Minute, "shelf"),
		read("e2", 10*time.Minute, "dock"),
	); err != nil {
		log.Fatal(err)
	}
	if err := db.BuildIndex("reads", "rtime"); err != nil {
		log.Fatal(err)
	}
	if err := db.Analyze("reads"); err != nil {
		log.Fatal(err)
	}

	// The duplicate rule from §4.3 of the paper, in extended SQL-TS: two
	// adjacent reads of the same tag at the same location within five
	// minutes — drop the second.
	rule, err := db.DefineRule(`
		DEFINE dedup ON reads
		AS (A, B)
		WHERE A.biz_loc = B.biz_loc AND B.rtime - A.rtime < 5 mins
		ACTION DELETE B`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rule compiled to SQL/OLAP template:")
	fmt.Println(" ", rule.Template)

	// The same query, dirty vs cleansed.
	const q = "SELECT epc, count(*) FROM reads GROUP BY epc"
	dirty, err := db.Query(q, repro.WithStrategy(repro.Dirty))
	if err != nil {
		log.Fatal(err)
	}
	clean, err := db.Query(q) // default: Auto strategy, all rules
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncounts over dirty data:   ", render(dirty))
	fmt.Println("counts after cleansing:   ", render(clean))
	fmt.Println("\nchosen strategy:", clean.Rewrite.Strategy)
	fmt.Println("rewritten SQL:  ", clean.Rewrite.SQL)
}

func render(r *repro.Rows) string {
	out := ""
	for _, row := range r.Data {
		out += fmt.Sprintf("%s=%s ", row[0].Str(), row[1])
	}
	return out
}
