// Tests for the streaming query API: corpus parity between eager and
// incremental consumption at several parallelism levels, sentinel parity
// on the failure paths (budget, panic, cancellation), lifecycle release
// on early Close, Scan conversions, and trace head-sampling.
package repro_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro"
	"repro/internal/bench"
)

// BenchmarkFirstRowLatency prices the point of the streaming executor:
// how long until the first rows leave the engine, against how long the
// whole query takes. A 1M-row fused filter+scan is streamed twice per
// mode — "first" stops after one batch and abandons the stream, "drain"
// consumes to the footer. On any healthy run first-row latency is an
// order of magnitude under completion, because the scan is still
// claiming morsels when the first batch is handed to the caller.
func BenchmarkFirstRowLatency(b *testing.B) {
	db := repro.Open()
	if err := db.CreateTable("big", repro.ColumnDef{Name: "a", Kind: repro.KindInt}); err != nil {
		b.Fatal(err)
	}
	const n = 1 << 20
	const batch = 1 << 14
	rows := make([][]repro.Value, 0, batch)
	for lo := 0; lo < n; lo += batch {
		rows = rows[:0]
		for i := lo; i < lo+batch && i < n; i++ {
			rows = append(rows, []repro.Value{repro.NewInt(int64(i % 100003))})
		}
		if err := db.Insert("big", rows...); err != nil {
			b.Fatal(err)
		}
	}
	const q = `SELECT a FROM big WHERE a > 100`
	for _, par := range []int{1, 4} {
		opts := []repro.QueryOption{repro.WithParallelism(par)}
		b.Run(benchParName("first", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				stream, err := db.QueryStream(q, opts...)
				if err != nil {
					b.Fatal(err)
				}
				if !stream.Next() {
					b.Fatalf("no rows: %v", stream.Err())
				}
				stream.Close()
			}
		})
		b.Run(benchParName("drain", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				stream, err := db.QueryStream(q, opts...)
				if err != nil {
					b.Fatal(err)
				}
				if got, serr := drainStream(stream); serr != nil || len(got) == 0 {
					b.Fatalf("rows=%d err=%v", len(got), serr)
				}
			}
		})
	}
}

func benchParName(mode string, par int) string {
	return fmt.Sprintf("%s/par=%d", mode, par)
}

// drainStream consumes a streaming Rows through the cursor, returning
// the collected rows and the terminal error.
func drainStream(rows *repro.Rows) ([][]repro.Value, error) {
	defer rows.Close()
	var out [][]repro.Value
	for rows.Next() {
		out = append(out, rows.Row())
	}
	return out, rows.Err()
}

// TestQueryStreamCorpusMatchesEager runs the paper's benchmark queries
// under every rewrite strategy, comparing the eager Query result with
// the same query consumed incrementally through Rows.Next at
// parallelism 1 and NumCPU — the streaming form of the engine's
// determinism guarantee. CI runs it again with REPRO_SEGMENT_ROWS=64 so
// the batch boundaries land everywhere.
func TestQueryStreamCorpusMatchesEager(t *testing.T) {
	e, err := bench.Load(8, 10)
	if err != nil {
		t.Fatal(err)
	}
	rules := e.RulePrefix(5)
	queries := map[string]string{
		"q1":  e.Q1(0.4),
		"q2":  e.Q2(0.3),
		"q2p": e.Q2Prime(0.3),
	}
	for qname, q := range queries {
		for _, v := range bench.Variants() {
			t.Run(qname+"/"+v.Name, func(t *testing.T) {
				for _, par := range []int{1, runtime.NumCPU()} {
					opts := []repro.QueryOption{
						repro.WithStrategy(v.Strat), repro.WithRules(rules...),
						repro.WithParallelism(par),
					}
					want, err := e.DB.Query(q, opts...)
					if err != nil {
						if v.Strat == repro.Expanded {
							t.Skipf("infeasible: %v", err)
						}
						t.Fatal(err)
					}
					stream, err := e.DB.QueryStream(q, opts...)
					if err != nil {
						t.Fatalf("par=%d: QueryStream: %v", par, err)
					}
					if stream.Data != nil {
						t.Fatalf("par=%d: streaming Rows has eager Data", par)
					}
					got, serr := drainStream(stream)
					if serr != nil {
						t.Fatalf("par=%d: stream error: %v", par, serr)
					}
					if len(got) != len(want.Data) {
						t.Fatalf("par=%d: stream rows = %d, eager rows = %d", par, len(got), len(want.Data))
					}
					for i := range got {
						for j := range got[i] {
							va, vb := want.Data[i][j], got[i][j]
							if !va.Equal(vb) || va.IsNull() != vb.IsNull() {
								t.Fatalf("par=%d: row %d col %d: eager %s vs stream %s", par, i, j, va.SQL(), vb.SQL())
							}
						}
					}
					if stream.Mem.Peak <= 0 {
						t.Fatalf("par=%d: streaming Rows has no memory accounting", par)
					}
				}
			})
		}
	}
}

func TestPreparedStreamMatchesRun(t *testing.T) {
	db := newGovernDB(t)
	p, err := db.Prepare(spillGroupQuery)
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	stream, err := p.Stream()
	if err != nil {
		t.Fatal(err)
	}
	got, serr := drainStream(stream)
	if serr != nil {
		t.Fatal(serr)
	}
	if len(got) != len(want.Data) {
		t.Fatalf("stream rows = %d, run rows = %d", len(got), len(want.Data))
	}
	for i := range got {
		for j := range got[i] {
			if !got[i][j].Equal(want.Data[i][j]) {
				t.Fatalf("row %d col %d differs", i, j)
			}
		}
	}
}

// TestQueryStreamSentinelParity asserts the streaming path terminates
// with the same error sentinels as the materializing path.
func TestQueryStreamSentinelParity(t *testing.T) {
	db := newGovernDB(t)

	t.Run("budget", func(t *testing.T) {
		rows, err := db.QueryStream(spillSortQuery,
			repro.WithMemoryLimit(32<<10), repro.WithoutSpill())
		if err != nil {
			t.Fatalf("pre-execution error: %v", err)
		}
		got, serr := drainStream(rows)
		if len(got) != 0 {
			t.Fatalf("budget-failed stream delivered %d rows", len(got))
		}
		if !errors.Is(serr, repro.ErrResourceExhausted) {
			t.Fatalf("err = %v, want ErrResourceExhausted", serr)
		}
	})

	t.Run("panic", func(t *testing.T) {
		for _, par := range []int{1, 4} {
			rows, err := db.QueryStream(spillSortQuery,
				repro.WithParallelism(par),
				repro.WithFaults(repro.FaultInjection{WorkerPanic: true}))
			if err != nil {
				t.Fatalf("par=%d: pre-execution error: %v", par, err)
			}
			if _, serr := drainStream(rows); !errors.Is(serr, repro.ErrInternal) {
				t.Fatalf("par=%d: err = %v, want ErrInternal", par, serr)
			}
			// The fault is per-query: the next stream is clean.
			rows, err = db.QueryStream(spillSortQuery, repro.WithParallelism(par))
			if err != nil {
				t.Fatalf("par=%d: %v", par, err)
			}
			if got, serr := drainStream(rows); serr != nil || len(got) == 0 {
				t.Fatalf("par=%d: recovery stream: rows=%d err=%v", par, len(got), serr)
			}
		}
	})

	t.Run("cancel", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		rows, err := db.QueryStreamContext(ctx, spillSortQuery)
		if err != nil {
			t.Fatal(err)
		}
		defer rows.Close()
		if !rows.Next() {
			t.Fatalf("no first row before cancel: %v", rows.Err())
		}
		cancel()
		for rows.Next() {
		}
		serr := rows.Err()
		if !errors.Is(serr, repro.ErrCanceled) || !errors.Is(serr, context.Canceled) {
			t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", serr)
		}
	})

	t.Run("timeout", func(t *testing.T) {
		rows, err := db.QueryStream(spillSortQuery,
			repro.WithTimeout(50*time.Millisecond),
			repro.WithFaults(repro.FaultInjection{SlowOp: 400 * time.Millisecond}))
		if err != nil {
			if !errors.Is(err, repro.ErrCanceled) {
				t.Fatalf("err = %v, want ErrCanceled", err)
			}
			return
		}
		if _, serr := drainStream(rows); !errors.Is(serr, repro.ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", serr)
		}
	})
}

// TestQueryStreamCloseReleasesLifecycle opens a stream, abandons it
// after one row, and asserts Close released everything the query held:
// the admission slot, the catalog read lock, and the stream itself
// (idempotent Close).
func TestQueryStreamCloseReleasesLifecycle(t *testing.T) {
	db := newGovernDB(t, repro.WithMaxConcurrent(1))
	rows, err := db.QueryStream(spillSortQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	// The stream holds the only admission slot: a second query cannot get
	// in before its deadline.
	if _, err := db.Query(spillGroupQuery, repro.WithTimeout(100*time.Millisecond)); !errors.Is(err, repro.ErrCanceled) {
		t.Fatalf("concurrent query: err = %v, want ErrCanceled (queued behind the stream)", err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	// Slot and catalog lock are free again: queries and DDL both proceed.
	if _, err := db.Query(spillGroupQuery); err != nil {
		t.Fatalf("query after Close: %v", err)
	}
	if err := db.CreateTable("post_stream", repro.ColumnDef{Name: "a", Kind: repro.KindInt}); err != nil {
		t.Fatalf("DDL after Close: %v", err)
	}
}

func TestRowsScanConversions(t *testing.T) {
	db := newGovernDB(t)
	rows, err := db.QueryStream(`SELECT epc, rtime, biz_loc FROM caser ORDER BY rtime, epc, biz_loc`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("no rows: %v", rows.Err())
	}
	var epc, loc string
	var rtime time.Time
	if err := rows.Scan(&epc, &rtime, &loc); err != nil {
		t.Fatal(err)
	}
	if epc == "" || loc == "" || rtime.IsZero() {
		t.Fatalf("scan produced zero values: %q %v %q", epc, rtime, loc)
	}
	// *any and *Value accept every column.
	var anyEpc any
	var v repro.Value
	var anyLoc any
	if err := rows.Scan(&anyEpc, &v, &anyLoc); err != nil {
		t.Fatal(err)
	}
	if s, ok := anyEpc.(string); !ok || s != epc {
		t.Fatalf("*any epc = %#v, want %q", anyEpc, epc)
	}
	// Kind mismatches and arity mismatches are errors, not corruption.
	var wrong int64
	if err := rows.Scan(&wrong, &rtime, &loc); err == nil {
		t.Fatal("scanning STRING into *int64 succeeded")
	}
	if err := rows.Scan(&epc); err == nil {
		t.Fatal("arity mismatch not reported")
	}
}

// TestEagerRowsCursor checks the cursor API over a materialized result.
func TestEagerRowsCursor(t *testing.T) {
	db := newGovernDB(t)
	rows, err := db.Query(spillGroupQuery)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for rows.Next() {
		if rows.Row() == nil {
			t.Fatal("nil current row")
		}
		n++
	}
	if n != len(rows.Data) {
		t.Fatalf("cursor saw %d rows, Data holds %d", n, len(rows.Data))
	}
	if rows.Err() != nil {
		t.Fatalf("eager Err = %v", rows.Err())
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestQueryStreamFirstRowMetric(t *testing.T) {
	db := newGovernDB(t)
	rows, err := db.QueryStream(spillGroupQuery)
	if err != nil {
		t.Fatal(err)
	}
	if _, serr := drainStream(rows); serr != nil {
		t.Fatal(serr)
	}
	count, _, ok := db.Metrics().HistogramStats("repro_first_row_seconds", "")
	if !ok || count < 1 {
		t.Fatalf("repro_first_row_seconds count = %d,%v, want >= 1", count, ok)
	}
	// Eager queries never touch the first-row histogram.
	if _, err := db.Query(spillGroupQuery); err != nil {
		t.Fatal(err)
	}
	after, _, _ := db.Metrics().HistogramStats("repro_first_row_seconds", "")
	if after != count {
		t.Fatalf("eager query moved repro_first_row_seconds: %d -> %d", count, after)
	}
}

func TestWithTraceSampling(t *testing.T) {
	run := func(t *testing.T, fraction float64, queries int) (traced, hookCalls int) {
		t.Helper()
		db := newGovernDB(t, repro.WithTraceSampling(fraction))
		for i := 0; i < queries; i++ {
			rows, err := db.Query(spillGroupQuery,
				repro.WithTrace(func(tr *repro.Trace) { hookCalls++ }))
			if err != nil {
				t.Fatal(err)
			}
			if rows.Trace() != nil {
				traced++
			}
		}
		return traced, hookCalls
	}

	t.Run("half", func(t *testing.T) {
		traced, hookCalls := run(t, 0.5, 10)
		// Deterministic head sampling: the first eligible query and every
		// second one after it — 5 of 10.
		if traced != 5 {
			t.Fatalf("traced = %d of 10 at fraction 0.5, want 5", traced)
		}
		// The hook fires for every query, with a nil trace when sampled out.
		if hookCalls != 10 {
			t.Fatalf("hook calls = %d, want 10", hookCalls)
		}
	})
	t.Run("none", func(t *testing.T) {
		if traced, _ := run(t, 0, 6); traced != 0 {
			t.Fatalf("traced = %d at fraction 0, want 0", traced)
		}
	})
	t.Run("all", func(t *testing.T) {
		if traced, _ := run(t, 1, 6); traced != 6 {
			t.Fatalf("traced = %d at fraction 1, want 6", traced)
		}
	})
}
