package repro_test

import (
	"runtime"
	"testing"

	"repro"
	"repro/internal/bench"
)

// TestQueryCorpusParallelInvariance runs the paper's benchmark queries
// under every rewrite strategy at Parallelism=1 and Parallelism=NumCPU
// and asserts the results are identical — the end-to-end form of the
// determinism guarantee the morsel framework makes. The -race runs of
// CI double this test as the engine's concurrency check.
func TestQueryCorpusParallelInvariance(t *testing.T) {
	e, err := bench.Load(8, 10)
	if err != nil {
		t.Fatal(err)
	}
	rules := e.RulePrefix(5)
	queries := map[string]string{
		"q1":  e.Q1(0.4),
		"q2":  e.Q2(0.3),
		"q2p": e.Q2Prime(0.3),
	}
	for qname, q := range queries {
		for _, v := range bench.Variants() {
			t.Run(qname+"/"+v.Name, func(t *testing.T) {
				serial, err := e.DB.Query(q,
					repro.WithStrategy(v.Strat), repro.WithRules(rules...),
					repro.WithParallelism(1))
				if err != nil {
					// Expanded rewrites are legitimately infeasible for
					// some rule sets (Table 1's {} entries).
					if v.Strat == repro.Expanded {
						t.Skipf("infeasible: %v", err)
					}
					t.Fatal(err)
				}
				parallel, err := e.DB.Query(q,
					repro.WithStrategy(v.Strat), repro.WithRules(rules...),
					repro.WithParallelism(runtime.NumCPU()))
				if err != nil {
					t.Fatal(err)
				}
				assertSameRows(t, serial, parallel)
			})
		}
	}
}

func assertSameRows(t *testing.T, a, b *repro.Rows) {
	t.Helper()
	if len(a.Columns) != len(b.Columns) {
		t.Fatalf("column count: %d vs %d", len(a.Columns), len(b.Columns))
	}
	for i := range a.Columns {
		if a.Columns[i] != b.Columns[i] {
			t.Fatalf("column %d name: %q vs %q", i, a.Columns[i], b.Columns[i])
		}
	}
	if len(a.Data) != len(b.Data) {
		t.Fatalf("row count: serial %d vs parallel %d", len(a.Data), len(b.Data))
	}
	for i := range a.Data {
		for j := range a.Data[i] {
			va, vb := a.Data[i][j], b.Data[i][j]
			if !va.Equal(vb) || va.IsNull() != vb.IsNull() {
				t.Fatalf("row %d col %d: serial %s vs parallel %s", i, j, va.SQL(), vb.SQL())
			}
		}
	}
}
