package repro_test

import (
	"runtime"
	"strings"
	"testing"

	"repro"
	"repro/internal/bench"
)

// TestQueryCorpusVectorInvariance runs the paper's benchmark queries under
// every rewrite strategy with batch evaluation (the default) and with
// WithRowEval, at serial and full parallelism, and asserts identical
// results — the end-to-end form of the vectorization contract: the batch
// path is an execution detail, never an answer change.
func TestQueryCorpusVectorInvariance(t *testing.T) {
	e, err := bench.Load(8, 10)
	if err != nil {
		t.Fatal(err)
	}
	rules := e.RulePrefix(5)
	queries := map[string]string{
		"q1":  e.Q1(0.4),
		"q2":  e.Q2(0.3),
		"q2p": e.Q2Prime(0.3),
	}
	for qname, q := range queries {
		for _, v := range bench.Variants() {
			for _, par := range []int{1, runtime.NumCPU()} {
				name := qname + "/" + v.Name + "/par1"
				if par != 1 {
					name = qname + "/" + v.Name + "/parN"
				}
				t.Run(name, func(t *testing.T) {
					row, err := e.DB.Query(q,
						repro.WithStrategy(v.Strat), repro.WithRules(rules...),
						repro.WithParallelism(par), repro.WithRowEval())
					if err != nil {
						if v.Strat == repro.Expanded {
							t.Skipf("infeasible: %v", err)
						}
						t.Fatal(err)
					}
					vec, err := e.DB.Query(q,
						repro.WithStrategy(v.Strat), repro.WithRules(rules...),
						repro.WithParallelism(par))
					if err != nil {
						t.Fatal(err)
					}
					assertSameRows(t, row, vec)
				})
			}
		}
	}
}

// TestExplainAnalyzeReportsEvalMode asserts EXPLAIN ANALYZE annotates
// operators with their evaluation mode: eval=vector plus the batch count
// under the default, eval=row under WithRowEval.
func TestExplainAnalyzeReportsEvalMode(t *testing.T) {
	e, err := bench.Load(8, 10)
	if err != nil {
		t.Fatal(err)
	}
	rules := e.RulePrefix(3)
	q := e.Q1(0.4)

	out, err := e.DB.ExplainAnalyze(q, repro.WithRules(rules...), repro.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "eval=vector") {
		t.Fatalf("ExplainAnalyze missing eval=vector:\n%s", out)
	}
	if !strings.Contains(out, "batches=") {
		t.Fatalf("ExplainAnalyze missing batches= next to eval=vector:\n%s", out)
	}
	// The annotation rides on the same line as the worker fan-out.
	found := false
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "workers=") && strings.Contains(line, "eval=vector") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no line carries both workers= and eval=vector:\n%s", out)
	}

	out, err = e.DB.ExplainAnalyze(q, repro.WithRules(rules...), repro.WithRowEval())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "eval=row") {
		t.Fatalf("ExplainAnalyze with WithRowEval missing eval=row:\n%s", out)
	}
	if strings.Contains(out, "eval=vector") {
		t.Fatalf("ExplainAnalyze with WithRowEval still reports eval=vector:\n%s", out)
	}
}
