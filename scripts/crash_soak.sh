#!/usr/bin/env bash
# Crash-recovery soak: boots rfidserve with a WAL, ingests numbered rows
# over /v1/ingest under load, SIGKILLs the server at a random moment,
# restarts it over the same durability root, and asserts the recovered
# table is exactly a durable prefix of what was acknowledged:
#
#   - count >= the last batch the client saw a 200 for (fsync=always:
#     an acked batch survives the kill)
#   - count % BATCH == 0 (batches are atomic: no torn batch ever
#     surfaces, even if the kill landed mid-append)
#   - sum(n) == count*(count-1)/2 (rows are exactly 0..count-1 — the
#     prefix property: nothing reordered, duplicated, or skipped)
#
# Repeats for ROUNDS kill/recover cycles, accumulating rows in the same
# root so later rounds also recover checkpoint + WAL tail, not just WAL.
# CI runs this via `make crash-soak`.
set -euo pipefail
cd "$(dirname "$0")/.."

ROUNDS="${ROUNDS:-4}"
BATCH="${BATCH:-7}"
CKPT_BYTES="${CKPT_BYTES:-65536}"

tmp=$(mktemp -d)
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/rfidserve" ./cmd/rfidserve
WAL="$tmp/wal"

start_server() {
  rm -f "$tmp/addr"
  "$tmp/rfidserve" -addr 127.0.0.1:0 -addr-file "$tmp/addr" \
    -wal "$WAL" -fsync always -checkpoint-bytes "$CKPT_BYTES" \
    -scale 0 -paper-rules=false 2>"$tmp/server.log" &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    [ -s "$tmp/addr" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || {
      echo "crash_soak: server died during startup" >&2
      cat "$tmp/server.log" >&2
      exit 1
    }
    sleep 0.1
  done
  [ -s "$tmp/addr" ] || { echo "crash_soak: server never bound" >&2; exit 1; }
  ADDR=$(cat "$tmp/addr")
  # Readiness: recovery is synchronous in OpenDir, but wait for /readyz
  # anyway so the script also exercises the gate.
  for _ in $(seq 1 100); do
    curl -sf "http://$ADDR/readyz" >/dev/null && return 0
    sleep 0.1
  done
  echo "crash_soak: server never became ready" >&2
  exit 1
}

# query_int <sql> -> one integer from /v1/query (dirty strategy: the
# soak table has no rules, this skips rewrite work).
query_int() {
  curl -sf "http://$ADDR/v1/query" -d "{\"sql\":\"$1\",\"strategy\":\"dirty\"}" \
    | grep -o '"rows":\[\[[-0-9]*' | head -1 | grep -o '[-0-9]*$'
}

acked=0 # rows known durable (end of the last 200-acked batch)
echo 0 >"$tmp/acked"

ingest_until_killed() {
  # Fire batches as fast as curl allows; stop when the server dies.
  # Runs backgrounded (a subshell), so the ack high-water mark is
  # persisted through a file for the parent to read after the kill.
  local n=$1
  while :; do
    vals=""
    for ((j = 0; j < BATCH; j++)); do
      vals="$vals[$((n + j))],"
    done
    body="{\"table\":\"soak\",\"create_if_missing\":[{\"name\":\"n\",\"kind\":\"INT\"}],\"rows\":[${vals%,}]}"
    if curl -sf -m 10 "http://$ADDR/v1/ingest" -d "$body" >/dev/null 2>&1; then
      n=$((n + BATCH))
      echo "$n" >"$tmp/acked"
    else
      return 0 # server gone (or the kill raced the request)
    fi
  done
}

# verify_prefix <ctx>: the soak table must be a durable prefix — at
# least every acked row, whole batches only, values exactly 0..count-1.
verify_prefix() {
  local ctx=$1 count got_sum want_sum
  count=$(query_int "SELECT count(*) FROM soak")
  [ -n "$count" ] || { echo "crash_soak: $ctx: count query failed" >&2; exit 1; }
  if [ "$count" -lt "$acked" ]; then
    echo "crash_soak: $ctx: recovered $count rows < $acked acked" >&2
    exit 1
  fi
  if [ $((count % BATCH)) -ne 0 ]; then
    echo "crash_soak: $ctx: count $count not a whole number of batches (torn batch surfaced)" >&2
    exit 1
  fi
  want_sum=$((count * (count - 1) / 2))
  got_sum=$(query_int "SELECT sum(n) FROM soak")
  if [ "$got_sum" != "$want_sum" ]; then
    echo "crash_soak: $ctx: checksum sum(n)=$got_sum, want $want_sum for 0..$((count - 1))" >&2
    exit 1
  fi
  # Resume numbering from the recovered prefix: unacked rows past it may
  # be gone (that is allowed), so the next round restarts at count.
  acked=$count
  echo "crash_soak: $ctx: $count rows durable, checksum ok"
}

for round in $(seq 1 "$ROUNDS"); do
  start_server
  if [ "$round" -gt 1 ]; then
    verify_prefix "round $round"
  fi

  # Ingest under load and kill the server at a random point (0.1–2s in).
  ingest_until_killed "$acked" &
  LOAD_PID=$!
  sleep "$((RANDOM % 2)).$((1 + RANDOM % 9))"
  kill -9 "$SERVER_PID" 2>/dev/null || true
  wait "$LOAD_PID" 2>/dev/null || true
  wait "$SERVER_PID" 2>/dev/null || true
  SERVER_PID=""
  acked=$(cat "$tmp/acked")
done

# Final verification pass after the last kill, then a graceful exit.
start_server
verify_prefix "final"
kill -TERM "$SERVER_PID" 2>/dev/null || true
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
echo "crash_soak: ok ($ROUNDS kill/recover cycles, $acked rows durable)"
