#!/usr/bin/env bash
# Serving smoke test: boots rfidserve on a random port, drives it with
# the rfidbench load generator (open-loop arrivals at a target QPS),
# asserts zero 5xx / transport / stream errors and a live /metrics
# exposition, then SIGTERM-drains the server and requires a clean exit.
# The service-level result (served QPS, p50/p95/p99 latency) is written
# to BENCH_PR6.json. CI runs this via `make serve-smoke`.
set -euo pipefail
cd "$(dirname "$0")/.."

QPS="${QPS:-20}"
DUR="${DUR:-3s}"
SCALE="${SCALE:-1}"
OUT="${OUT:-BENCH_PR6.json}"

tmp=$(mktemp -d)
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/rfidserve" ./cmd/rfidserve
go build -o "$tmp/rfidbench" ./cmd/rfidbench

"$tmp/rfidserve" -addr 127.0.0.1:0 -addr-file "$tmp/addr" \
  -scale "$SCALE" -max-concurrent 8 -query-parallelism 1 -drain-timeout 20s &
SERVER_PID=$!

for _ in $(seq 1 100); do
  [ -s "$tmp/addr" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { echo "serve_smoke: server died during startup" >&2; exit 1; }
  sleep 0.1
done
[ -s "$tmp/addr" ] || { echo "serve_smoke: server never bound" >&2; exit 1; }
ADDR=$(cat "$tmp/addr")
echo "serve_smoke: server at $ADDR"

"$tmp/rfidbench" -exp loadgen -url "http://$ADDR" \
  -qps "$QPS" -dur "$DUR" -out "$OUT" -fail-on-5xx

# Graceful drain: SIGTERM must flip readiness, finish in-flight queries,
# and exit 0 within the drain window.
kill -TERM "$SERVER_PID"
for _ in $(seq 1 100); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
  echo "serve_smoke: server did not drain within 10s" >&2
  exit 1
fi
wait "$SERVER_PID"
SERVER_PID=""
echo "serve_smoke: ok; result in $OUT"
