#!/usr/bin/env bash
# metrics_lint.sh — assert that every repro_* metric registered in code
# is documented in docs/OBSERVABILITY.md, so the metric inventory can't
# silently drift from the implementation.
#
# A metric "registered in code" is any "repro_..." string literal in
# non-test Go source; registration helpers (Counter, GaugeFunc,
# HistogramVec, ...) all take the name as a quoted literal, so a plain
# grep finds them all.
set -euo pipefail
cd "$(dirname "$0")/.."

DOC=docs/OBSERVABILITY.md
[ -f "$DOC" ] || { echo "metrics_lint: $DOC missing" >&2; exit 1; }

missing=0
while IFS= read -r name; do
  if ! grep -q "\`$name\`" "$DOC"; then
    echo "metrics_lint: $name is registered in code but not documented in $DOC" >&2
    missing=1
  fi
done < <(grep -rhoE '"repro_[a-z0-9_]+"' --include='*.go' --exclude='*_test.go' . | tr -d '"' | sort -u)

if [ "$missing" -ne 0 ]; then
  echo "metrics_lint: add the missing metrics to $DOC (name, type, labels, meaning)" >&2
  exit 1
fi
echo "metrics_lint: all registered repro_* metrics are documented"
