package repro

import (
	"context"
	"fmt"
	"time"

	"repro/internal/exec"
	"repro/internal/govern"
	"repro/internal/schema"
	"repro/internal/types"
)

// This file is the incremental-consumption side of the Rows API. A Rows
// returned by Query/QueryContext is eager — Data fully materialized —
// and Next/Scan simply cursor over it. A Rows returned by QueryStream /
// QueryStreamContext / Prepared.Stream is live: Next pulls morsel-sized
// batches from the streaming executor (internal/exec.Open), so the
// first rows are available while the scan is still claiming morsels.
// Results, errors, and their order are byte-identical between the two
// modes at any parallelism.

// QueryStream rewrites the SQL under the active cleansing rules and
// begins executing it, returning before the result is complete: iterate
// with Next/Row/Scan and check Err, then Close. See QueryStreamContext.
func (db *DB) QueryStream(sql string, opts ...QueryOption) (*Rows, error) {
	return db.QueryStreamContext(context.Background(), sql, opts...)
}

// QueryStreamContext is QueryStream governed by a context. Execution is
// incremental: compile and admission happen before it returns, but rows
// are produced on demand as Next is called, under the same cancellation,
// memory-budget, and panic-containment semantics as QueryContext —
// checked at batch granularity. Rows.Data stays nil in this mode.
//
// The stream holds the query's admission slot, catalog read lock, and
// memory reservations until it finishes: Close must be called (it is
// idempotent; exhausting the stream or hitting an error also releases
// everything, making a later Close a no-op). Canceling ctx aborts the
// stream cooperatively with an error matching ErrCanceled.
func (db *DB) QueryStreamContext(ctx context.Context, sql string, opts ...QueryOption) (*Rows, error) {
	o := applyOpts(opts)
	queryStart := time.Now()
	dctx, cancelDeadline := o.deadline(ctx)
	// Every stream gets a private cancel so Close can stop in-flight
	// engine work promptly, whether or not a deadline was set.
	qctx, cancelQuery := context.WithCancel(dctx)
	cancel := func() { cancelQuery(); cancelDeadline() }
	tel := db.startQuery(sql, o)
	// The stream's private cancel is exactly what Kill needs: it stops
	// in-flight engine work and the consumer sees ErrCanceled from Next.
	tel.activate("query", cancelQuery)
	tel.setPhase("queued")
	admitStart := time.Now()
	release, err := db.admitQuery(qctx)
	if err != nil {
		cancel()
		tel.finish(nil, err)
		return nil, err
	}
	tel.noteAdmit(admitStart, time.Since(admitStart))
	db.mu.RLock()
	key := newCacheKey(sql, o, db.Catalog.Epoch())
	var compileStart time.Time
	if tel != nil {
		tel.setPhase("compile")
		compileStart = time.Now()
	}
	res, inf, err := db.rewriteCached(sql, o)
	if err != nil {
		db.mu.RUnlock()
		release()
		cancel()
		tel.finish(nil, err)
		return nil, err
	}
	tel.notePhases(res.Phases, inf.CacheHit, compileStart)
	grs := db.resources(o)
	ectx := o.execCtx(qctx).SetResources(grs)
	if tel != nil {
		ectx.EnableStats()
		tel.attachExec(ectx, grs)
		tel.setPhase("stream")
	}
	return newStreamingRows(db, res.OpenStream(ectx), res.Plan, ectx, grs, tel, key, inf, streamHandles{
		qctx:       qctx,
		cancel:     cancel,
		unlock:     db.mu.RUnlock,
		release:    release,
		queryStart: queryStart,
	}), nil
}

// Stream begins executing the prepared plan incrementally; see
// StreamContext.
func (p *Prepared) Stream() (*Rows, error) {
	return p.StreamContext(context.Background())
}

// StreamContext executes the prepared plan as an incremental stream,
// with the same lifecycle as QueryStreamContext (Close required) and
// the same per-run governance as RunContext, including build-side reuse
// for CacheBuild joins.
func (p *Prepared) StreamContext(ctx context.Context) (*Rows, error) {
	queryStart := time.Now()
	qctx, cancel := context.WithCancel(ctx)
	tel := p.db.startQuery(p.sql, p.opts)
	tel.activate("query", cancel)
	tel.setPhase("queued")
	admitStart := time.Now()
	release, err := p.db.admitQuery(qctx)
	if err != nil {
		cancel()
		tel.finish(nil, err)
		return nil, err
	}
	tel.noteAdmit(admitStart, time.Since(admitStart))
	p.db.mu.RLock()
	tel.notePrepared(p.info.CacheHit)
	grs := p.db.resources(p.opts)
	ectx := p.opts.execCtx(qctx).SetResources(grs).EnableBuildReuse(p.db.Catalog.Epoch())
	if tel != nil {
		ectx.EnableStats()
		tel.attachExec(ectx, grs)
		tel.setPhase("stream")
	}
	return newStreamingRows(p.db, exec.Open(ectx, p.plan), p.plan, ectx, grs, tel, p.key, p.info, streamHandles{
		qctx:       qctx,
		cancel:     cancel,
		unlock:     p.db.mu.RUnlock,
		release:    release,
		queryStart: queryStart,
	}), nil
}

// streamHandles bundles the per-query lifecycle obligations a streaming
// Rows must discharge exactly once when it finishes.
type streamHandles struct {
	qctx       context.Context
	cancel     context.CancelFunc
	unlock     func()
	release    func()
	queryStart time.Time
}

// rowsStream is the live half of a streaming Rows: the executor
// iterator plus everything finish must settle — telemetry, resource
// accounting, the catalog read lock, and the admission slot.
type rowsStream struct {
	db     *DB
	stream exec.Stream
	plan   exec.Node
	ectx   *exec.Ctx
	grs    *govern.Resources
	tel    *qtel
	key    cacheKey
	owned  bool
	streamHandles
	execStart time.Time
	gotFirst  bool
	finished  bool
	err       error
	batch     []schema.Row
	bi        int
}

func newStreamingRows(db *DB, stream exec.Stream, plan exec.Node, ectx *exec.Ctx, grs *govern.Resources, tel *qtel, key cacheKey, inf RewriteInfo, h streamHandles) *Rows {
	rows := &Rows{Rewrite: inf}
	sch := stream.Schema()
	rows.Columns = make([]string, len(sch.Columns))
	for i, c := range sch.Columns {
		rows.Columns[i] = c.Name
	}
	rows.src = &rowsStream{
		db: db, stream: stream, plan: plan, ectx: ectx, grs: grs, tel: tel,
		key: key, owned: exec.OwnsRows(plan), streamHandles: h, execStart: time.Now(),
	}
	return rows
}

// next advances the cursor by one row, pulling the next executor batch
// when the current one is drained.
func (s *rowsStream) next(r *Rows) bool {
	if s.finished {
		return false
	}
	for s.bi >= len(s.batch) {
		b, err := s.stream.Next()
		if err != nil {
			s.finish(r, err, false)
			return false
		}
		if b == nil {
			s.finish(r, nil, false)
			return false
		}
		if !s.gotFirst {
			s.gotFirst = true
			s.tel.noteFirstRow(time.Since(s.queryStart))
		}
		s.batch, s.bi = b, 0
	}
	row := s.batch[s.bi]
	s.bi++
	if s.owned {
		// The executor's rows are exclusively owned by this query, so the
		// cursor hands them out directly.
		r.cur = []Value(row)
	} else {
		r.cur = append(make([]Value, 0, len(row)), row...)
	}
	return true
}

// finish settles the stream exactly once: it stops engine work, joins
// worker goroutines, records telemetry and resource totals, and gives
// back the catalog lock and admission slot. closing marks an explicit
// Close, where a canceled query context (the client hung up mid-stream)
// is surfaced as the query's outcome instead of a silent "ok".
func (s *rowsStream) finish(r *Rows, err error, closing bool) {
	if s.finished {
		return
	}
	s.finished = true
	if closing && err == nil {
		if cerr := s.qctx.Err(); cerr != nil {
			err = cerr
		}
	}
	s.cancel()
	_ = s.stream.Close()
	mem := s.grs.Stats()
	r.Mem = mem
	s.db.totals.note(mem, err != nil && s.grs.Exhausted())
	if s.tel != nil {
		s.tel.noteMem(mem)
		s.tel.noteExec(s.plan, s.ectx, s.execStart, time.Since(s.execStart))
	}
	if err != nil {
		if s.grs.Exhausted() {
			// Same policy as the materializing path: drop the cached plan
			// so a retry under a raised limit replans fresh.
			s.db.cache.evict(s.key)
		}
		s.err = wrapCanceled(err)
	}
	s.grs.Close()
	if s.err != nil {
		s.tel.finish(nil, s.err)
	} else {
		s.tel.finish(r, nil)
	}
	s.unlock()
	s.release()
}

// Next advances to the next row, returning false at the end of the
// result (or on error — check Err). On an eager Rows it cursors over
// Data; on a streaming Rows it pulls batches from the executor as
// needed. After Next returns true, Row and Scan read the current row.
func (r *Rows) Next() bool {
	if r.src != nil {
		return r.src.next(r)
	}
	if r.pos >= len(r.Data) {
		return false
	}
	r.cur = r.Data[r.pos]
	r.pos++
	return true
}

// Row returns the current row. The slice is valid indefinitely — rows
// handed out by the cursor are never reused by the engine.
func (r *Rows) Row() []Value { return r.cur }

// Err returns the error that terminated a streaming Rows, if any. It is
// nil while rows remain, after a clean end of stream, and always on an
// eager Rows (whose errors surface from Query itself). The error
// matches the same sentinels as the materializing path (ErrCanceled,
// ErrResourceExhausted, ErrInternal, ...).
func (r *Rows) Err() error {
	if r.src != nil {
		return r.src.err
	}
	return nil
}

// Close releases a streaming Rows' resources: in-flight execution is
// canceled, worker goroutines join, memory reservations and spill files
// are released, and the query's admission slot frees. Idempotent, and a
// no-op on eager Rows. If the governing context was canceled mid-stream
// the query's recorded outcome is canceled, even when the consumer
// stopped reading first.
func (r *Rows) Close() error {
	if r.src != nil {
		r.src.finish(r, nil, true)
	}
	return nil
}

// Scan copies the current row into dest, one target per column:
// *int64, *float64, *string, *bool, *time.Time, *time.Duration take the
// matching kind (NULL scans as the zero value); *Value takes the engine
// value verbatim; *any takes the natural Go value (nil for NULL).
func (r *Rows) Scan(dest ...any) error {
	row := r.cur
	if row == nil {
		return fmt.Errorf("repro: Scan called without a successful Next")
	}
	if len(dest) != len(row) {
		return fmt.Errorf("repro: Scan expects %d destinations, got %d", len(row), len(dest))
	}
	for i, d := range dest {
		if err := scanValue(row[i], d); err != nil {
			return fmt.Errorf("repro: Scan column %d (%s): %w", i, r.Columns[i], err)
		}
	}
	return nil
}

func scanValue(v Value, dest any) error {
	switch d := dest.(type) {
	case *Value:
		*d = v
		return nil
	case *any:
		*d = goValue(v)
		return nil
	case *int64:
		if v.IsNull() {
			*d = 0
			return nil
		}
		if v.Kind() != types.KindInt {
			return fmt.Errorf("cannot scan %s into *int64", v.Kind())
		}
		*d = v.Int()
		return nil
	case *float64:
		if v.IsNull() {
			*d = 0
			return nil
		}
		switch v.Kind() {
		case types.KindFloat:
			*d = v.Float()
		case types.KindInt:
			*d = float64(v.Int())
		default:
			return fmt.Errorf("cannot scan %s into *float64", v.Kind())
		}
		return nil
	case *string:
		if v.IsNull() {
			*d = ""
			return nil
		}
		if v.Kind() != types.KindString {
			return fmt.Errorf("cannot scan %s into *string", v.Kind())
		}
		*d = v.Str()
		return nil
	case *bool:
		if v.IsNull() {
			*d = false
			return nil
		}
		if v.Kind() != types.KindBool {
			return fmt.Errorf("cannot scan %s into *bool", v.Kind())
		}
		*d = v.Bool()
		return nil
	case *time.Time:
		if v.IsNull() {
			*d = time.Time{}
			return nil
		}
		if v.Kind() != types.KindTime {
			return fmt.Errorf("cannot scan %s into *time.Time", v.Kind())
		}
		*d = time.UnixMicro(v.TimeUsec()).UTC()
		return nil
	case *time.Duration:
		if v.IsNull() {
			*d = 0
			return nil
		}
		if v.Kind() != types.KindInterval {
			return fmt.Errorf("cannot scan %s into *time.Duration", v.Kind())
		}
		*d = time.Duration(v.IntervalUsec()) * time.Microsecond
		return nil
	default:
		return fmt.Errorf("unsupported destination type %T", dest)
	}
}

// goValue maps an engine value to its natural Go representation.
func goValue(v Value) any {
	switch v.Kind() {
	case types.KindNull:
		return nil
	case types.KindBool:
		return v.Bool()
	case types.KindInt:
		return v.Int()
	case types.KindFloat:
		return v.Float()
	case types.KindString:
		return v.Str()
	case types.KindTime:
		return time.UnixMicro(v.TimeUsec()).UTC()
	case types.KindInterval:
		return time.Duration(v.IntervalUsec()) * time.Microsecond
	default:
		return v.String()
	}
}
