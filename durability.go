package repro

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/schema"
	"repro/internal/types"
)

// FsyncPolicy selects when acknowledged ingests are forced to disk; see
// the persist package for the exact guarantees of each policy.
type FsyncPolicy = persist.FsyncPolicy

// Fsync policies for WithFsyncPolicy.
const (
	// FsyncAlways syncs before every ingest acknowledgment (survives
	// power loss; concurrent ingests share fsyncs via group commit).
	FsyncAlways = persist.FsyncAlways
	// FsyncInterval syncs on a background timer (survives process death
	// immediately, power loss after at most the interval).
	FsyncInterval = persist.FsyncInterval
	// FsyncOff leaves syncing to the OS (survives process death only).
	FsyncOff = persist.FsyncOff
)

// ParseFsyncPolicy reads a policy name: always, interval, or off.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) { return persist.ParseFsyncPolicy(s) }

// ErrNotDurable reports an operation that requires a WAL on a DB opened
// without one.
var ErrNotDurable = errors.New("repro: not a durable database (OpenDir with WithWAL)")

// WithWAL makes the database durable: every ingest and catalog mutation
// is written to a checksummed write-ahead log under dir before it is
// acknowledged, checkpoints bound the log, and OpenDir recovers the
// durable prefix after a crash. The option requires OpenDir (recovery can
// fail; Open has no error return) — Open panics on it.
//
// OpenDir("", WithWAL(dir)) opens a pure durable root; a non-empty
// snapshot directory seeds the root on first open only (once the WAL
// holds state, the snapshot argument is ignored in favor of recovery).
func WithWAL(dir string) Option {
	return func(c *dbConfig) { c.walDir = dir }
}

// WithFsyncPolicy selects the WAL's fsync policy (default FsyncAlways).
func WithFsyncPolicy(p FsyncPolicy) Option {
	return func(c *dbConfig) { c.fsyncPolicy = p }
}

// WithFsyncInterval sets the background sync period under FsyncInterval
// (default 100ms). Ignored under other policies.
func WithFsyncInterval(d time.Duration) Option {
	return func(c *dbConfig) { c.fsyncInterval = d }
}

// WithCheckpointEvery triggers automatic checkpoints: whenever the WAL
// grows past bytes (checked after each ingest; 0 disables the size
// trigger), and every interval of wall time when the WAL is non-empty
// (0 disables the timer). Without this option the WAL grows until
// DB.Checkpoint is called explicitly.
func WithCheckpointEvery(bytes int64, interval time.Duration) Option {
	return func(c *dbConfig) { c.checkpointBytes, c.checkpointInterval = bytes, interval }
}

// WithDurabilityFaults arms the crash-fault hooks of a FaultInjection
// (WALTornWrite, WALSyncErr, CheckpointCrash) on the DB's WAL. Query-
// level fields are ignored here — pass those per query via WithFaults.
func WithDurabilityFaults(f FaultInjection) Option {
	return func(c *dbConfig) {
		c.walFaults = &persist.CrashFaults{
			TornWrite:       f.WALTornWrite,
			SyncErr:         f.WALSyncErr,
			CheckpointCrash: f.CheckpointCrash,
		}
	}
}

// durableState is the DB-side durability bookkeeping next to the WAL.
type durableState struct {
	checkpointBytes int64
	checkpoints     atomic.Int64
	recovery        RecoveryStats

	// timer loop (WithCheckpointEvery interval trigger)
	stop chan struct{}
	done chan struct{}
}

// RecoveryStats reports what recovery did at OpenDir, for startup logs
// and ResourceStats.
type RecoveryStats struct {
	// Durable is true when the DB was opened with a WAL.
	Durable bool
	// Checkpoint is the checkpoint directory restored ("" if none).
	Checkpoint string
	// ReplayedRecords and ReplayedRows count the WAL tail applied on top
	// of the checkpoint.
	ReplayedRecords int64
	ReplayedRows    int64
	// TruncatedBytes counts WAL bytes discarded past the durable prefix.
	TruncatedBytes int64
	// Seeded is true when an empty root was populated from the snapshot
	// directory and made durable with an initial checkpoint.
	Seeded bool
}

// openDurable is OpenDir's WAL path: recover the durable root (seeding it
// from the snapshot directory when fresh), then assemble the DB around
// the recovered catalog.
func openDurable(dir string, c *dbConfig, opts []Option) (*DB, error) {
	var seed func() (*catalog.Database, *core.Registry, error)
	if dir != "" {
		seed = func() (*catalog.Database, *core.Registry, error) { return persist.Load(dir) }
	}
	recoverStart := time.Now()
	cat, reg, wal, info, err := persist.OpenDurable(c.walDir, seed, persist.DurableOpts{
		Policy:   c.fsyncPolicy,
		Interval: c.fsyncInterval,
		Faults:   c.walFaults,
	})
	if err != nil {
		return nil, err
	}
	db := newDB(cat, reg)
	applyDBOpts(db, opts)
	db.wal = wal
	db.durable = &durableState{
		checkpointBytes: c.checkpointBytes,
		recovery: RecoveryStats{
			Durable:         true,
			Checkpoint:      info.Checkpoint,
			ReplayedRecords: info.ReplayedRecords,
			ReplayedRows:    info.ReplayedRows,
			TruncatedBytes:  info.TruncatedBytes,
			Seeded:          info.Seeded,
		},
	}
	if info.Seeded {
		db.durable.checkpoints.Add(1)
	}
	db.attachWALTelemetry()
	// Startup recovery gets its own exported span, so a fleet's trace
	// store shows how long each restart spent replaying.
	db.tel.exportSpan("recovery", recoverStart, time.Since(recoverStart),
		obs.Attr{Key: "checkpoint", Val: info.Checkpoint},
		obs.Attr{Key: "replayed_records", Val: strconv.FormatInt(info.ReplayedRecords, 10)},
		obs.Attr{Key: "replayed_rows", Val: strconv.FormatInt(info.ReplayedRows, 10)},
		obs.Attr{Key: "truncated_bytes", Val: strconv.FormatInt(info.TruncatedBytes, 10)},
		obs.Attr{Key: "seeded", Val: strconv.FormatBool(info.Seeded)},
	)
	if c.checkpointInterval > 0 {
		db.durable.stop = make(chan struct{})
		db.durable.done = make(chan struct{})
		go db.checkpointLoop(c.checkpointInterval)
	}
	return db, nil
}

// attachWALTelemetry registers the WAL metric families and the recovery
// startup log line. It runs after applyDBOpts (the base registry exists
// by then) and before the DB is returned, so scrapes never race it.
func (db *DB) attachWALTelemetry() {
	rs := db.durable.recovery
	if db.tel != nil {
		r := db.tel.metrics.reg
		r.GaugeFunc("repro_wal_bytes", "Current WAL file size in bytes.", func() float64 {
			return float64(db.wal.Size())
		})
		fsync := r.Histogram("repro_wal_fsync_seconds", "WAL fsync latency.", obs.DefLatencyBuckets)
		db.wal.OnFsync = func(d time.Duration) { fsync.Observe(d.Seconds()) }
		r.CounterFunc("repro_checkpoint_total", "Checkpoints published since Open.", func() float64 {
			return float64(db.durable.checkpoints.Load())
		})
		r.GaugeFunc("repro_recovery_replayed_records", "WAL records replayed by recovery at Open.", func() float64 {
			return float64(rs.ReplayedRecords)
		})
	}
	if db.tel != nil && db.tel.slowLogger != nil {
		db.tel.slowLogger.Info("recovery",
			"wal_dir", db.wal.Dir(),
			"checkpoint", rs.Checkpoint,
			"replayed_records", rs.ReplayedRecords,
			"replayed_rows", rs.ReplayedRows,
			"truncated_bytes", rs.TruncatedBytes,
			"seeded", rs.Seeded,
			"fsync", db.wal.Policy().String(),
		)
	}
}

// checkpointLoop runs the WithCheckpointEvery timer: a checkpoint per
// interval while the WAL holds records.
func (db *DB) checkpointLoop(interval time.Duration) {
	defer close(db.durable.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if !db.wal.Empty() {
				_ = db.Checkpoint()
			}
		case <-db.durable.stop:
			return
		}
	}
}

// Ingest durably appends rows of values to a table: the batch is
// WAL-logged, applied, and acknowledged per the fsync policy (on a DB
// without a WAL it behaves exactly like Insert). The batch is atomic
// under recovery — after a crash either every row of it is restored or
// none. It is the batched, durable counterpart of Insert.
func (db *DB) Ingest(table string, rows ...[]Value) error {
	return db.IngestContext(context.Background(), table, rows...)
}

// IngestContext is Ingest governed by a context, checked before the
// append (an append that started is not interrupted — its WAL record and
// fsync complete so the acknowledgment stays truthful).
func (db *DB) IngestContext(ctx context.Context, table string, rows ...[]Value) error {
	if err := ctx.Err(); err != nil {
		return wrapCanceled(err)
	}
	var it *itel
	if db.tel != nil {
		// Like queries, an observed ingest gets a private cancellation
		// layer so DB.Kill can stop it while it waits for the write lock.
		var kill context.CancelFunc
		ctx, kill = context.WithCancel(ctx)
		defer kill()
		it = db.startIngest(table, len(rows), kill)
	}
	srows := make([]schema.Row, len(rows))
	for i, r := range rows {
		srows[i] = schema.Row(r)
	}
	if err := db.ingestLocked(ctx, table, srows, it); err != nil {
		it.finish(err)
		return err
	}
	// The fsync happens outside the catalog lock: concurrent ingests
	// group-commit on one disk flush, and queries are never blocked on it.
	it.setPhase("fsync")
	fsyncStart := time.Now()
	err := db.walCommit()
	if db.wal != nil {
		it.span("fsync", fsyncStart, time.Since(fsyncStart))
	}
	it.finish(err)
	if err != nil {
		return err
	}
	db.maybeCheckpoint()
	return nil
}

// ingestLocked WAL-logs and applies one append batch under the write
// lock. Rows are validated before logging — arity AND value kinds — so a
// record never enters the WAL unless its apply must succeed: replay
// decodes values by the column kind, so a kind-mismatched value that the
// in-memory append tolerated would otherwise become a checksum-valid WAL
// record that recovery can never apply.
func (db *DB) ingestLocked(ctx context.Context, table string, rows []schema.Row, it *itel) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	// Cancellation (a caller hang-up, or DB.Kill) is honored up to the
	// point the batch enters the WAL; past that the apply and fsync
	// complete so the acknowledgment stays truthful.
	if err := ctx.Err(); err != nil {
		return wrapCanceled(err)
	}
	t, ok := db.Catalog.Table(table)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoTable, table)
	}
	it.setPhase("validate")
	validateStart := time.Now()
	for _, r := range rows {
		if len(r) != t.Schema.Len() {
			return fmt.Errorf("repro: row arity %d does not match schema %d for table %s", len(r), t.Schema.Len(), table)
		}
		for j, v := range r {
			if k := v.Kind(); k != types.KindNull && k != t.Schema.Columns[j].Kind {
				return fmt.Errorf("repro: %s value for %s column %s of table %s",
					k, t.Schema.Columns[j].Kind, t.Schema.Columns[j].Name, table)
			}
		}
	}
	it.span("validate", validateStart, time.Since(validateStart))
	if db.wal != nil {
		it.setPhase("wal_append")
		appendStart := time.Now()
		if err := db.wal.AppendBatch(table, rows); err != nil {
			return err
		}
		it.span("wal_append", appendStart, time.Since(appendStart),
			obs.Attr{Key: "wal_bytes", Val: strconv.FormatInt(db.wal.Size(), 10)})
	}
	it.setPhase("apply")
	applyStart := time.Now()
	for _, r := range rows {
		if err := t.Append(r); err != nil {
			return err
		}
	}
	db.Catalog.BumpEpoch()
	it.span("apply", applyStart, time.Since(applyStart))
	return nil
}

// walCommit makes preceding WAL appends durable per the fsync policy.
// No-op without a WAL.
func (db *DB) walCommit() error {
	if db.wal == nil {
		return nil
	}
	return db.wal.Commit()
}

// walDDL logs a DDL record. Callers hold the write lock and have
// validated that applying the DDL cannot fail. No-op without a WAL.
func (db *DB) walDDL(d persist.DDLRecord) error {
	if db.wal == nil {
		return nil
	}
	if err := db.wal.AppendDDL(d); err != nil {
		return err
	}
	return db.wal.Commit()
}

// walRule logs a rule-create record after the registry accepted the rule.
// No-op without a WAL.
func (db *DB) walRule(src string) error {
	if db.wal == nil {
		return nil
	}
	if err := db.wal.AppendRule(src); err != nil {
		return err
	}
	return db.wal.Commit()
}

// walCheckpointLocked checkpoints under an already-held write lock; bulk
// loads use it to make their result durable in one snapshot instead of
// logging every generated row. No-op without a WAL.
func (db *DB) walCheckpointLocked() error {
	if db.wal == nil {
		return nil
	}
	start := time.Now()
	if err := db.wal.Checkpoint(db.Catalog, db.Registry); err != nil {
		return err
	}
	db.durable.checkpoints.Add(1)
	db.tel.exportSpan("checkpoint", start, time.Since(start),
		obs.Attr{Key: "wal_seq", Val: strconv.FormatUint(db.wal.Seq(), 10)},
		obs.Attr{Key: "checkpoints", Val: strconv.FormatInt(db.durable.checkpoints.Load(), 10)},
	)
	return nil
}

// Checkpoint snapshots the database into the durability root and rotates
// the WAL, bounding what a future recovery must replay. It requires a
// WAL (ErrNotDurable otherwise); WithCheckpointEvery calls it
// automatically.
func (db *DB) Checkpoint() error {
	if db.wal == nil {
		return ErrNotDurable
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.walCheckpointLocked()
}

// maybeCheckpoint fires the size-triggered checkpoint after an ingest.
// Failures are left for the next explicit Checkpoint to surface: the
// ingest that tripped the threshold is already durable in the WAL.
func (db *DB) maybeCheckpoint() {
	if db.wal == nil || db.durable.checkpointBytes <= 0 {
		return
	}
	if db.wal.Size() >= db.durable.checkpointBytes {
		_ = db.Checkpoint()
	}
}

// WALStats reports the live WAL's position, or zeros without one.
type WALStats struct {
	// Durable is true when the DB has a WAL.
	Durable bool
	// Dir is the durability root.
	Dir string
	// Seq is the current WAL file's sequence number, Bytes its size.
	Seq   uint64
	Bytes int64
	// Checkpoints counts checkpoints published since Open (including the
	// seed checkpoint of a snapshot-initialized root).
	Checkpoints int64
	// Policy is the configured fsync policy's name.
	Policy string
}

// WALStats snapshots the DB's durability state.
func (db *DB) WALStats() WALStats {
	if db.wal == nil {
		return WALStats{}
	}
	return WALStats{
		Durable:     true,
		Dir:         db.wal.Dir(),
		Seq:         db.wal.Seq(),
		Bytes:       db.wal.Size(),
		Checkpoints: db.durable.checkpoints.Load(),
		Policy:      db.wal.Policy().String(),
	}
}

// closeDurability stops the checkpoint timer and closes the WAL (with a
// final sync unless the policy is off). Part of DB.Close.
func (db *DB) closeDurability() error {
	if db.durable != nil && db.durable.stop != nil {
		close(db.durable.stop)
		<-db.durable.done
		db.durable.stop = nil
	}
	if db.wal == nil {
		return nil
	}
	return db.wal.Close()
}
