package repro_test

import (
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/storage"
)

// The quickstart flow: build a table by hand, define a rule, query with
// cleansing.
func TestQuickstartFlow(t *testing.T) {
	db := repro.Open()
	if err := db.CreateTable("reads",
		repro.ColumnDef{Name: "epc", Kind: repro.KindString},
		repro.ColumnDef{Name: "rtime", Kind: repro.KindTime},
		repro.ColumnDef{Name: "biz_loc", Kind: repro.KindString},
	); err != nil {
		t.Fatal(err)
	}
	at := func(min int64) repro.Value {
		return repro.Value(timeValue(min))
	}
	rows := [][]repro.Value{
		{stringValue("e1"), at(0), stringValue("dock")},
		{stringValue("e1"), at(2), stringValue("dock")}, // duplicate within 5 min
		{stringValue("e1"), at(90), stringValue("shelf")},
	}
	if err := db.Insert("reads", rows...); err != nil {
		t.Fatal(err)
	}
	if err := db.BuildIndex("reads", "rtime"); err != nil {
		t.Fatal(err)
	}
	if err := db.Analyze("reads"); err != nil {
		t.Fatal(err)
	}
	info, err := db.DefineRule(`DEFINE dedup ON reads
		AS (A, B) WHERE A.biz_loc = B.biz_loc AND B.rtime - A.rtime < 5 mins
		ACTION DELETE B`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(info.Template, "$input") {
		t.Errorf("template = %s", info.Template)
	}

	dirty, err := db.Query("SELECT count(*) FROM reads", repro.WithStrategy(repro.Dirty))
	if err != nil {
		t.Fatal(err)
	}
	if dirty.Data[0][0].Int() != 3 {
		t.Fatalf("dirty count = %v", dirty.Data)
	}
	clean, err := db.Query("SELECT count(*) FROM reads")
	if err != nil {
		t.Fatal(err)
	}
	if clean.Data[0][0].Int() != 2 {
		t.Fatalf("cleansed count = %v (rewrite: %s)", clean.Data, clean.Rewrite.SQL)
	}
	if clean.Rewrite.Strategy == repro.Dirty {
		t.Error("cleansing should have applied")
	}
}

func TestWorkloadAndPaperRules(t *testing.T) {
	db := repro.Open()
	if err := db.LoadRFIDWorkload(repro.WorkloadConfig{Scale: 2, AnomalyPct: 10, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	names, err := db.DefinePaperRules()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 6 {
		t.Fatalf("rules = %v", names)
	}
	// Rewrite inspection.
	ri, err := db.Rewrite("SELECT count(*) FROM caser", repro.WithStrategy(repro.JoinBack))
	if err != nil {
		t.Fatal(err)
	}
	if ri.Strategy != repro.JoinBack || !strings.Contains(ri.SQL, "__missing_r2_flag_0") {
		t.Errorf("rewrite = %+v", ri.Strategy)
	}
	// Explain output.
	plan, err := db.Explain("SELECT count(*) FROM caser", repro.WithRules("reader"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"strategy:", "Window", "rows="} {
		if !strings.Contains(plan, want) {
			t.Errorf("explain missing %q:\n%s", want, plan)
		}
	}
	// Expanded conditions (Table 1 machinery) through the facade.
	cc, err := db.ExpandedConditions("SELECT * FROM caser WHERE rtime <= TIMESTAMP '2026-01-01'")
	if err != nil {
		t.Fatal(err)
	}
	if cc["cycle"] != "{}" {
		t.Errorf("cycle condition = %q", cc["cycle"])
	}
	if !strings.Contains(cc["reader"], "readerX") {
		t.Errorf("reader condition = %q", cc["reader"])
	}
}

func TestFacadeErrors(t *testing.T) {
	db := repro.Open()
	if err := db.Insert("nosuch"); err == nil {
		t.Error("insert into missing table")
	}
	if err := db.BuildIndex("nosuch", "x"); err == nil {
		t.Error("index on missing table")
	}
	if err := db.Analyze("nosuch"); err == nil {
		t.Error("analyze missing table")
	}
	if _, err := db.DefinePaperRules(); err == nil {
		t.Error("paper rules without workload")
	}
	if _, err := db.DefineRule("DEFINE broken"); err == nil {
		t.Error("broken rule source")
	}
	if _, err := db.Query("SELECT * FROM nosuch"); err == nil {
		t.Error("query on missing table")
	}
	if err := db.CreateView("v", "not sql"); err == nil {
		t.Error("bad view sql")
	}
}

func stringValue(s string) repro.Value {
	return repro.Value(mustValue("string", s))
}

func intValue(v int64) repro.Value {
	return repro.NewInt(v)
}

func timeValue(min int64) repro.Value {
	return repro.Value(mustValue("time", min))
}

// mustValue builds values without importing internal/types in examples and
// tests of the public API; the facade re-exports the Value type itself.
func mustValue(kind string, v any) repro.Value {
	switch kind {
	case "string":
		return repro.NewString(v.(string))
	case "time":
		return repro.NewTime(time.Unix(v.(int64)*60, 0).UTC())
	}
	panic("unknown kind")
}

func TestExplainAnalyze(t *testing.T) {
	db := repro.Open()
	if err := db.LoadRFIDWorkload(repro.WorkloadConfig{Scale: 1, AnomalyPct: 10, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefinePaperRules(); err != nil {
		t.Fatal(err)
	}
	out, err := db.ExplainAnalyze("SELECT count(*) FROM caser", repro.WithRules("reader"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"actual rows=", "time=", "est rows="} {
		if !strings.Contains(out, want) {
			t.Errorf("analyze output missing %q:\n%s", want, out)
		}
	}
}

// The paper's hybrid model: cleanse shared anomalies eagerly, keep the
// application-specific ones deferred.
func TestMaterializeCleansed(t *testing.T) {
	db := repro.Open()
	if err := db.LoadRFIDWorkload(repro.WorkloadConfig{Scale: 1, AnomalyPct: 20, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefinePaperRules(); err != nil {
		t.Fatal(err)
	}
	before, _ := db.Query("SELECT count(*) FROM caser", repro.WithStrategy(repro.Dirty))
	n, err := db.MaterializeCleansed("caser", "caser_dedup", "duplicate")
	if err != nil {
		t.Fatal(err)
	}
	if int64(n) >= before.Data[0][0].Int() {
		t.Errorf("eager cleansing removed nothing: %d vs %v", n, before.Data[0][0])
	}
	after, err := db.Query("SELECT count(*) FROM caser_dedup", repro.WithStrategy(repro.Dirty))
	if err != nil {
		t.Fatal(err)
	}
	if after.Data[0][0].Int() != int64(n) {
		t.Errorf("materialized table count mismatch: %v vs %d", after.Data[0][0], n)
	}
	// Deferred duplicate-rule count over caser must equal the eager table.
	deferred, err := db.Query("SELECT count(*) FROM caser", repro.WithRules("duplicate"))
	if err != nil {
		t.Fatal(err)
	}
	if deferred.Data[0][0].Int() != int64(n) {
		t.Errorf("eager (%d) and deferred (%v) cleansing disagree", n, deferred.Data[0][0])
	}
	if _, err := db.MaterializeCleansed("nosuch", "x"); err == nil {
		t.Error("missing source must error")
	}
	if _, err := db.MaterializeCleansed("caser", "caser_dedup", "duplicate"); err == nil {
		t.Error("existing destination must error")
	}
}

func TestSaveOpenDirRoundTrip(t *testing.T) {
	db := repro.Open()
	if err := db.LoadRFIDWorkload(repro.WorkloadConfig{Scale: 1, AnomalyPct: 10, Seed: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefinePaperRules(); err != nil {
		t.Fatal(err)
	}
	want, err := db.Query("SELECT count(*) FROM caser", repro.WithRules("reader", "duplicate"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	db2, err := repro.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := db2.Query("SELECT count(*) FROM caser", repro.WithRules("reader", "duplicate"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Data[0][0].Int() != want.Data[0][0].Int() {
		t.Errorf("reloaded cleansed count = %v, want %v", got.Data[0][0], want.Data[0][0])
	}
	if _, err := repro.OpenDir(t.TempDir()); err == nil {
		t.Error("OpenDir on empty dir must fail")
	}
}

func TestPreparedQueries(t *testing.T) {
	db := repro.Open()
	if err := db.LoadRFIDWorkload(repro.WorkloadConfig{Scale: 1, AnomalyPct: 10, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefinePaperRules(); err != nil {
		t.Fatal(err)
	}
	p, err := db.Prepare("SELECT count(*) FROM caser", repro.WithRules("reader", "duplicate"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Rewrite().Strategy == repro.Dirty {
		t.Fatal("prepared query should carry a cleansing rewrite")
	}
	first, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent reruns give identical answers.
	done := make(chan int64, 4)
	for i := 0; i < 4; i++ {
		go func() {
			r, err := p.Run()
			if err != nil {
				done <- -1
				return
			}
			done <- r.Data[0][0].Int()
		}()
	}
	for i := 0; i < 4; i++ {
		if got := <-done; got != first.Data[0][0].Int() {
			t.Fatalf("concurrent run %d = %d, want %v", i, got, first.Data[0][0])
		}
	}
	if _, err := db.Prepare("select * from nosuch"); err == nil {
		t.Error("prepare of bad query must fail")
	}
}

func TestDryRunRule(t *testing.T) {
	db := repro.Open()
	if err := db.LoadRFIDWorkload(repro.WorkloadConfig{Scale: 2, AnomalyPct: 20, Seed: 6}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefinePaperRules(); err != nil {
		t.Fatal(err)
	}
	// The duplicate rule deletes injected duplicates.
	eff, err := db.DryRunRule("duplicate", 3)
	if err != nil {
		t.Fatal(err)
	}
	if eff.Deleted == 0 || eff.Deleted != eff.Input-eff.Output {
		t.Errorf("duplicate effect = %+v", eff)
	}
	if len(eff.SampleDeleted) == 0 || len(eff.SampleDeleted) > 3 {
		t.Errorf("samples = %v", eff.SampleDeleted)
	}
	if eff.Modified != 0 {
		t.Errorf("duplicate rule should not modify: %+v", eff)
	}
	// The replacing rule modifies rather than deletes.
	eff, err = db.DryRunRule("replacing", 3)
	if err != nil {
		t.Fatal(err)
	}
	if eff.Modified == 0 || eff.Deleted != 0 {
		t.Errorf("replacing effect = %+v", eff)
	}
	if len(eff.SampleModified) == 0 || !strings.Contains(eff.SampleModified[0], "→") {
		t.Errorf("modified samples = %v", eff.SampleModified)
	}
	// Dry runs never change the table.
	before, _ := db.Query("SELECT count(*) FROM caser", repro.WithStrategy(repro.Dirty))
	db.DryRunRule("reader", 1)
	after, _ := db.Query("SELECT count(*) FROM caser", repro.WithStrategy(repro.Dirty))
	if before.Data[0][0].Int() != after.Data[0][0].Int() {
		t.Error("dry run mutated the table")
	}
	if _, err := db.DryRunRule("nosuch", 1); err == nil {
		t.Error("unknown rule must error")
	}
}

// A prepared join caches its build side over a static dimension table;
// a catalog mutation (the dimension insert bumps the epoch) must evict
// that cache so later runs see the new rows.
func TestPreparedJoinSeesDimensionChanges(t *testing.T) {
	db := repro.Open()
	if err := db.CreateTable("fact",
		repro.ColumnDef{Name: "k", Kind: repro.KindInt},
	); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("dim",
		repro.ColumnDef{Name: "k", Kind: repro.KindInt},
		repro.ColumnDef{Name: "label", Kind: repro.KindString},
	); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("fact", []repro.Value{intValue(1)}, []repro.Value{intValue(2)}, []repro.Value{intValue(3)}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("dim",
		[]repro.Value{intValue(1), stringValue("one")},
		[]repro.Value{intValue(2), stringValue("two")},
	); err != nil {
		t.Fatal(err)
	}
	p, err := db.Prepare("select fact.k, dim.label from fact, dim where fact.k = dim.k order by fact.k")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 2 {
		t.Fatalf("first run rows = %d", len(rows.Data))
	}
	// Rerun without changes: same answer off the cached build.
	rows, err = p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 2 {
		t.Fatalf("rerun rows = %d", len(rows.Data))
	}
	// Grow the dimension table; the next run must include the new match.
	if err := db.Insert("dim", []repro.Value{intValue(3), stringValue("three")}); err != nil {
		t.Fatal(err)
	}
	rows, err = p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 3 {
		t.Fatalf("post-insert rows = %d, want 3", len(rows.Data))
	}
	if got := rows.Data[2][1].Str(); got != "three" {
		t.Fatalf("new dimension row label = %q", got)
	}
}

// Zone-map pruning is observable: a selective range predicate over a
// multi-segment table skips segments, and EXPLAIN ANALYZE reports the
// considered/pruned counts on the fused scan.
func TestExplainAnalyzeShowsSegmentPruning(t *testing.T) {
	// Pin the sealing threshold so the segment/pruned counts below hold
	// under any REPRO_SEGMENT_ROWS the process was started with.
	old := storage.DefaultSegmentRows
	storage.DefaultSegmentRows = 64
	t.Cleanup(func() { storage.DefaultSegmentRows = old })

	db := repro.Open()
	if err := db.CreateTable("seg", repro.ColumnDef{Name: "a", Kind: repro.KindInt}); err != nil {
		t.Fatal(err)
	}
	// Three full 64-row segments plus a 20-row tail.
	n := 3*64 + 20
	rows := make([][]repro.Value, n)
	for i := range rows {
		rows[i] = []repro.Value{intValue(int64(i))}
	}
	if err := db.Insert("seg", rows...); err != nil {
		t.Fatal(err)
	}
	out, err := db.ExplainAnalyze("select count(*) from seg where a >= 130")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Scan(seg | a >= 130") {
		t.Fatalf("predicate not fused into the scan:\n%s", out)
	}
	// Segments [0,64) and [64,128) prune; [128,192) and the tail survive.
	if !strings.Contains(out, "segments=4 pruned=2") {
		t.Fatalf("analyze output missing pruning counts:\n%s", out)
	}
	// The answer is unaffected: rows 130..211 survive.
	res, err := db.Query("select count(*) from seg where a >= 130")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Data[0][0].Int(); got != int64(n-130) {
		t.Fatalf("count = %d, want %d", got, n-130)
	}
}
