// Benchmarks regenerating every figure of the paper's evaluation (§6).
//
// Figure 7(a): q1 elapsed vs rtime selectivity (reader rule, db-10).
// Figure 7(d): q2 elapsed vs rtime selectivity (reader rule, db-10).
// Figure 8:    q2′ (predicate uncorrelated with EPCs) vs selectivity.
// Figure 9(a,b): q1/q2 vs number of rules (selectivity 10%, db-10).
// Figure 9(c,d): q1/q2 vs anomaly percentage (3 rules, selectivity 10%).
//
// Each figure's series are the paper's four variants: q (dirty baseline),
// q_e (expanded), q_j (join-back), q_n (naive). Expanded sub-benchmarks
// are skipped where the rewrite is infeasible (Table 1's {} entries).
//
// The scale factor defaults to laptop size; set REPRO_BENCH_SCALE to
// enlarge (the paper's 10M-read database corresponds to roughly 6700).
// Absolute times differ from the paper's DB2/AIX numbers; the shape —
// who wins, by what factor, where the crossovers are — is the result.
package repro_test

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"

	"repro"
	"repro/internal/bench"
	"repro/internal/exec"
)

func benchScale() int {
	if v := os.Getenv("REPRO_BENCH_SCALE"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 8
}

func loadEnv(b *testing.B, pct int) *bench.Env {
	b.Helper()
	e, err := bench.Load(benchScale(), pct)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// runVariant measures one (query, strategy, rules) cell; rewrite+planning
// happen once, execution repeats b.N times.
func runVariant(b *testing.B, e *bench.Env, query string, v bench.Variant, rules []string) {
	b.Helper()
	// One untimed warmup keeps cold-start effects out of b.N=1 runs.
	if m, err := e.Run(query, v.Strat, rules); err != nil {
		b.Fatal(err)
	} else if !m.Feasible {
		b.Skip("rewrite infeasible for this rule set (expected for expanded + cycle/missing)")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := e.Run(query, v.Strat, rules)
		if err != nil {
			b.Fatal(err)
		}
		if !m.Feasible {
			b.Skip("rewrite infeasible for this rule set (expected for expanded + cycle/missing)")
		}
	}
}

func selectivityFigure(b *testing.B, mkQuery func(e *bench.Env, sel float64) string) {
	e := loadEnv(b, 10)
	rules := e.RulePrefix(1) // reader rule only, as in §6.2
	for _, sel := range bench.SelectivityPoints {
		for _, v := range bench.Variants() {
			b.Run(fmt.Sprintf("sel=%d%%/%s", int(sel*100), v.Name), func(b *testing.B) {
				runVariant(b, e, mkQuery(e, sel), v, rules)
			})
		}
	}
}

// BenchmarkFig7aQ1Selectivity regenerates Figure 7(a).
func BenchmarkFig7aQ1Selectivity(b *testing.B) {
	selectivityFigure(b, func(e *bench.Env, sel float64) string { return e.Q1(sel) })
}

// BenchmarkFig7dQ2Selectivity regenerates Figure 7(d).
func BenchmarkFig7dQ2Selectivity(b *testing.B) {
	selectivityFigure(b, func(e *bench.Env, sel float64) string { return e.Q2(sel) })
}

// BenchmarkFig8Q2Prime regenerates Figure 8: the predicate on steps.type
// is uncorrelated with EPCs, so q2′_j loses its edge over q2′_e.
func BenchmarkFig8Q2Prime(b *testing.B) {
	selectivityFigure(b, func(e *bench.Env, sel float64) string { return e.Q2Prime(sel) })
}

func rulesFigure(b *testing.B, mkQuery func(e *bench.Env, sel float64) string) {
	e := loadEnv(b, 10)
	for n := 1; n <= 5; n++ {
		rules := e.RulePrefix(n)
		for _, v := range bench.Variants() {
			b.Run(fmt.Sprintf("rules=%d/%s", n, v.Name), func(b *testing.B) {
				runVariant(b, e, mkQuery(e, 0.10), v, rules)
			})
		}
	}
}

// BenchmarkFig9aQ1Rules regenerates Figure 9(a): q1 vs number of rules.
func BenchmarkFig9aQ1Rules(b *testing.B) {
	rulesFigure(b, func(e *bench.Env, sel float64) string { return e.Q1(sel) })
}

// BenchmarkFig9bQ2Rules regenerates Figure 9(b): q2 vs number of rules.
func BenchmarkFig9bQ2Rules(b *testing.B) {
	rulesFigure(b, func(e *bench.Env, sel float64) string { return e.Q2(sel) })
}

func dirtyFigure(b *testing.B, mkQuery func(e *bench.Env, sel float64) string) {
	for _, pct := range bench.DirtyPoints {
		e := loadEnv(b, pct)
		rules := e.RulePrefix(3) // first three rules, as in §6.3
		for _, v := range bench.Variants() {
			b.Run(fmt.Sprintf("dirty=%d%%/%s", pct, v.Name), func(b *testing.B) {
				runVariant(b, e, mkQuery(e, 0.10), v, rules)
			})
		}
	}
}

// BenchmarkFig9cQ1Dirty regenerates Figure 9(c): q1 vs anomaly percentage.
func BenchmarkFig9cQ1Dirty(b *testing.B) {
	dirtyFigure(b, func(e *bench.Env, sel float64) string { return e.Q1(sel) })
}

// BenchmarkFig9dQ2Dirty regenerates Figure 9(d): q2 vs anomaly percentage.
func BenchmarkFig9dQ2Dirty(b *testing.B) {
	dirtyFigure(b, func(e *bench.Env, sel float64) string { return e.Q2(sel) })
}

// BenchmarkCleansingPrimitives isolates the cost of the cleansing operator
// itself (one rule over the full reads table) — an ablation the paper's
// naive numbers imply but never report directly.
func BenchmarkCleansingPrimitives(b *testing.B) {
	e := loadEnv(b, 10)
	for n := 1; n <= 5; n++ {
		b.Run(fmt.Sprintf("rules=%d", n), func(b *testing.B) {
			q := "SELECT count(*) FROM caser"
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(q, repro.Naive, e.RulePrefix(n)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRewriteOverhead measures rewrite+planning alone: the paper's
// claim that the rewrite unit adds negligible latency next to execution.
func BenchmarkRewriteOverhead(b *testing.B) {
	e := loadEnv(b, 10)
	q := e.Q2(0.10)
	rules := e.RulePrefix(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.DB.Rewriter.RewriteSQL(q, rules, repro.Auto); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanCache contrasts a cold rewrite+plan (cache reset every
// iteration) against a warm hit — the amortization the serving layer's
// rewrite/plan cache buys for repeated query templates.
func BenchmarkPlanCache(b *testing.B) {
	e := loadEnv(b, 10)
	q := e.Q2(0.10)
	opts := []repro.QueryOption{repro.WithRules(e.RulePrefix(3)...)}
	b.Run("uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e.DB.ResetPlanCache()
			if _, err := e.DB.Rewrite(q, opts...); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		if _, err := e.DB.Rewrite(q, opts...); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ri, err := e.DB.Rewrite(q, opts...)
			if err != nil {
				b.Fatal(err)
			}
			if !ri.CacheHit {
				b.Fatal("expected a warm cache hit")
			}
		}
	})
	e.DB.ResetPlanCache()
}

// BenchmarkConcurrentClients drives the serving path from every core at
// once: Query calls share the read side of the serving lock and the plan
// cache, so throughput should scale with clients rather than serialize.
func BenchmarkConcurrentClients(b *testing.B) {
	e := loadEnv(b, 10)
	q := e.Q2(0.10)
	opts := []repro.QueryOption{repro.WithRules(e.RulePrefix(1)...)}
	if _, err := e.DB.Query(q, opts...); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := e.DB.Query(q, opts...); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParallelPipeline drives a full scan→filter→window→join→
// aggregate pipeline (the paper's q1 shape under the dirty baseline, so
// no rewrite machinery intrudes) over a ≥100k-row rfidgen workload, at
// Parallelism=1 vs Parallelism=NumCPU. Before timing, it asserts the
// two settings return bit-identical results — the determinism guarantee
// that makes the knob safe to flip in production.
func BenchmarkParallelPipeline(b *testing.B) {
	scale := benchScale()
	if scale < 70 {
		scale = 70 // ≈105k caser rows — comfortably above the morsel threshold
	}
	e, err := bench.Load(scale, 10)
	if err != nil {
		b.Fatal(err)
	}
	q := e.Q1(0.95)
	opts := func(par int) []repro.QueryOption {
		return []repro.QueryOption{repro.WithStrategy(repro.Dirty), repro.WithParallelism(par)}
	}
	serial, err := e.DB.Query(q, opts(1)...)
	if err != nil {
		b.Fatal(err)
	}
	parallel, err := e.DB.Query(q, opts(runtime.NumCPU())...)
	if err != nil {
		b.Fatal(err)
	}
	if len(serial.Data) != len(parallel.Data) {
		b.Fatalf("row count: serial %d vs parallel %d", len(serial.Data), len(parallel.Data))
	}
	for i := range serial.Data {
		for j := range serial.Data[i] {
			if !serial.Data[i][j].Equal(parallel.Data[i][j]) {
				b.Fatalf("row %d col %d differs between parallelism settings", i, j)
			}
		}
	}
	for _, par := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.DB.Query(q, opts(par)...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationWindowParallelism isolates the engine's intra-query
// parallelism — the in-process analogue of the DBMS parallelism the
// paper's evaluation platform provides. Series: the naive rewrite
// (window over the whole reads table) with 1 worker vs all cores.
func BenchmarkAblationWindowParallelism(b *testing.B) {
	e := loadEnv(b, 10)
	q := "SELECT count(*) FROM caser"
	rules := e.RulePrefix(3)
	for _, workers := range []int{1, 0} {
		name := "serial"
		w := 1
		if workers == 0 {
			name = "parallel"
			w = runtime.NumCPU()
		}
		b.Run(name, func(b *testing.B) {
			old := exec.Parallelism
			exec.Parallelism = w
			defer func() { exec.Parallelism = old }()
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(q, repro.Naive, rules); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSpillOverhead prices the graceful-degradation paths: the same
// sort / aggregation / join queries run fully in memory and again under a
// budget low enough that every materializing operator goes through the
// external-merge / grace-hash spill machinery. The inmem/spill ratio is
// the cost of completing a query that would otherwise fail with
// ErrResourceExhausted; results are asserted bit-identical first.
func BenchmarkSpillOverhead(b *testing.B) {
	db := repro.Open(repro.WithSpillDir(b.TempDir()))
	if err := db.CreateTable("reads",
		repro.ColumnDef{Name: "epc", Kind: repro.KindString},
		repro.ColumnDef{Name: "rtime", Kind: repro.KindTime},
		repro.ColumnDef{Name: "biz_loc", Kind: repro.KindString},
	); err != nil {
		b.Fatal(err)
	}
	const n = 100000
	rows := make([][]repro.Value, n)
	for i := range rows {
		rows[i] = []repro.Value{
			repro.NewString(fmt.Sprintf("e%05d", i%2003)),
			timeValue(int64(i)),
			repro.NewString(fmt.Sprintf("loc%03d", i%97)),
		}
	}
	if err := db.Insert("reads", rows...); err != nil {
		b.Fatal(err)
	}
	queries := []struct{ name, sql string }{
		{"sort", `SELECT epc, rtime, biz_loc FROM reads ORDER BY rtime, epc, biz_loc`},
		{"group", `SELECT epc, COUNT(*) AS c, MIN(rtime) AS first_seen FROM reads GROUP BY epc ORDER BY c DESC, epc`},
		{"join", `SELECT a.epc, a.rtime, b.biz_loc FROM reads a JOIN reads b ON a.epc = b.epc AND a.rtime = b.rtime`},
	}
	modes := []struct {
		name string
		opts []repro.QueryOption
	}{
		{"inmem", nil},
		{"spill", []repro.QueryOption{repro.WithMemoryLimit(256 << 10)}},
	}
	for _, q := range queries {
		want, err := db.Query(q.sql)
		if err != nil {
			b.Fatal(err)
		}
		got, err := db.Query(q.sql, repro.WithMemoryLimit(256<<10))
		if err != nil {
			b.Fatal(err)
		}
		if !got.Mem.Spilled() {
			b.Fatalf("%s: budget did not force a spill", q.name)
		}
		if len(got.Data) != len(want.Data) {
			b.Fatalf("%s: spilled result differs", q.name)
		}
		for _, m := range modes {
			b.Run(q.name+"/"+m.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := db.Query(q.sql, m.opts...); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTelemetryOverhead prices the observability layer: the
// parallel-pipeline query (q1's dirty baseline at Parallelism=NumCPU)
// runs against two otherwise identical databases, one with telemetry on
// (the default — every query feeds the metrics registry and the
// operator-stats collector) and one opened WithoutTelemetry. The
// acceptance bar for the layer is <5% between the two sub-benchmarks;
// traces are not requested, matching the steady-state production path.
func BenchmarkTelemetryOverhead(b *testing.B) {
	scale := benchScale()
	if scale < 70 {
		scale = 70 // match BenchmarkParallelPipeline's workload
	}
	variants := []struct {
		name string
		opts []repro.Option
	}{
		{"on", nil},
		{"off", []repro.Option{repro.WithoutTelemetry()}},
	}
	for _, v := range variants {
		e, err := bench.LoadFresh(scale, 10, v.opts...)
		if err != nil {
			b.Fatal(err)
		}
		q := e.Q1(0.95)
		opts := []repro.QueryOption{repro.WithStrategy(repro.Dirty), repro.WithParallelism(runtime.NumCPU())}
		if _, err := e.DB.Query(q, opts...); err != nil { // warm the plan cache
			b.Fatal(err)
		}
		b.Run("telemetry="+v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.DB.Query(q, opts...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
