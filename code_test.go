package repro_test

// Tests for the stable error-code surface (Code), the context-accepting
// method variants added for the serving layer, and the
// WithHistogramBuckets observability option.

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"repro"
)

func TestCodeMapsSentinelsToStableStrings(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{repro.ErrNoTable, repro.CodeNoTable},
		{repro.ErrUnknownRule, repro.CodeUnknownRule},
		{repro.ErrCanceled, repro.CodeCanceled},
		{repro.ErrOverloaded, repro.CodeOverloaded},
		{repro.ErrResourceExhausted, repro.CodeResourceExhausted},
		{repro.ErrInternal, repro.CodeInternal},
		// Bare context errors classify as canceled even without the
		// engine sentinel in the chain.
		{context.Canceled, repro.CodeCanceled},
		{context.DeadlineExceeded, repro.CodeCanceled},
		// Wrapping must not change the code: Code follows errors.Is.
		{fmt.Errorf("outer: %w", repro.ErrOverloaded), repro.CodeOverloaded},
		{fmt.Errorf("a: %w", fmt.Errorf("b: %w", repro.ErrNoTable)), repro.CodeNoTable},
		// Anything unrecognized is a caller error.
		{errors.New("parse error at line 1"), repro.CodeInvalid},
	}
	for _, tc := range cases {
		if got := repro.Code(tc.err); got != tc.want {
			t.Errorf("Code(%v) = %q, want %q", tc.err, got, tc.want)
		}
	}
}

// TestCodeMatchesLiveErrors pins the mapping against errors the engine
// actually produces, not just the sentinels.
func TestCodeMatchesLiveErrors(t *testing.T) {
	db := repro.Open()
	if _, err := db.Query("SELECT * FROM ghost"); repro.Code(err) != repro.CodeNoTable {
		t.Errorf("missing table: Code = %q (%v)", repro.Code(err), err)
	}
	if _, err := db.Query("SELECT FROM WHERE"); repro.Code(err) != repro.CodeInvalid {
		t.Errorf("parse error: Code = %q (%v)", repro.Code(err), err)
	}
}

// TestContextVariants: the ...Context forms honor an already-canceled
// context, and their non-context wrappers keep working.
func TestContextVariants(t *testing.T) {
	db := repro.Open()
	if err := db.CreateTable("reads",
		repro.ColumnDef{Name: "epc", Kind: repro.KindString},
		repro.ColumnDef{Name: "rtime", Kind: repro.KindTime},
		repro.ColumnDef{Name: "biz_loc", Kind: repro.KindString},
	); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("reads",
		[]repro.Value{repro.NewString("e1"), timeValue(0), repro.NewString("dock")},
		[]repro.Value{repro.NewString("e1"), timeValue(2), repro.NewString("dock")},
	); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineRule(`DEFINE dedup ON reads
		AS (A, B) WHERE A.biz_loc = B.biz_loc AND B.rtime - A.rtime < 5 mins
		ACTION DELETE B`); err != nil {
		t.Fatal(err)
	}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := db.RewriteContext(canceled, "SELECT count(*) FROM reads"); !errors.Is(err, repro.ErrCanceled) {
		t.Errorf("RewriteContext(canceled) = %v, want ErrCanceled", err)
	}
	if _, err := db.DryRunRuleContext(canceled, "dedup", 10); !errors.Is(err, repro.ErrCanceled) {
		t.Errorf("DryRunRuleContext(canceled) = %v, want ErrCanceled", err)
	}
	if _, err := db.MaterializeCleansedContext(canceled, "reads", "reads_clean", "dedup"); !errors.Is(err, repro.ErrCanceled) {
		t.Errorf("MaterializeCleansedContext(canceled) = %v, want ErrCanceled", err)
	}

	// The plain forms are context.Background() wrappers and still work.
	if info, err := db.Rewrite("SELECT count(*) FROM reads"); err != nil || info.SQL == "" {
		t.Errorf("Rewrite = %+v, %v", info, err)
	}
	if eff, err := db.DryRunRule("dedup", 10); err != nil || eff == nil {
		t.Errorf("DryRunRule = %+v, %v", eff, err)
	}
	// 2 source rows, dedup deletes one → 1 row in the cleansed table.
	if n, err := db.MaterializeCleansed("reads", "reads_clean", "dedup"); err != nil || n != 1 {
		t.Errorf("MaterializeCleansed = %d, %v, want 1 row", n, err)
	}
}

// TestWithHistogramBuckets swaps the latency-histogram bounds at Open
// time and checks the exposition reflects them.
func TestWithHistogramBuckets(t *testing.T) {
	db := repro.Open(repro.WithHistogramBuckets([]float64{0.002, 7.5}))
	if err := db.CreateTable("t", repro.ColumnDef{Name: "a", Kind: repro.KindInt}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("t", []repro.Value{repro.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("SELECT a FROM t"); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	db.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{`le="0.002"`, `le="7.5"`, `le="+Inf"`} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing bucket %s", want)
		}
	}
	// Default bounds must be gone from the latency families.
	if strings.Contains(body, `repro_query_duration_seconds_bucket{le="0.0001"}`) {
		t.Error("default bucket bounds still present after WithHistogramBuckets")
	}
}

func TestWithHistogramBucketsRejectsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WithHistogramBuckets(nil) did not panic")
		}
	}()
	repro.WithHistogramBuckets(nil)
}
