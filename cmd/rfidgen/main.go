// Command rfidgen generates the paper's synthetic RFID supply-chain
// workload (§6.1) and either prints a summary or dumps the tables as CSV.
//
//	rfidgen -scale 10 -pct 10
//	rfidgen -scale 10 -pct 10 -out /tmp/rfid -csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/rfidgen"
)

var (
	scale  = flag.Int("scale", 10, "scale factor s (number of pallet EPCs)")
	pct    = flag.Int("pct", 10, "anomaly percentage (0-100)")
	seed   = flag.Int64("seed", 20060912, "random seed")
	outDir = flag.String("out", "", "directory for CSV output (with -csv)")
	asCSV  = flag.Bool("csv", false, "write caseR/palletR/parent/locs/steps/epc_info/product CSVs")
)

func main() {
	flag.Parse()
	start := time.Now()
	d := rfidgen.Generate(rfidgen.Config{Scale: *scale, AnomalyPct: *pct, Seed: *seed})
	fmt.Printf("generated in %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("  caseR   %8d reads (dirty)\n", len(d.CaseR))
	fmt.Printf("  clean   %8d reads (ground truth)\n", len(d.Clean))
	fmt.Printf("  palletR %8d reads\n", len(d.PalletR))
	fmt.Printf("  parent  %8d rows\n", len(d.Parents))
	fmt.Printf("  epcinfo %8d rows\n", len(d.Infos))
	fmt.Printf("  locs    %8d rows\n", len(d.Locs))
	fmt.Printf("  steps   %8d rows, products %d\n", len(d.Steps), len(d.Products))
	fmt.Printf("injected anomalies:\n")
	total := 0
	for k := rfidgen.AnomalyReader; k <= rfidgen.AnomalyMissing; k++ {
		fmt.Printf("  %-10s %d\n", k, d.Injected[k])
		total += d.Injected[k]
	}
	fmt.Printf("  total      %d (%.1f%% of clean reads)\n", total, 100*float64(total)/float64(len(d.Clean)))

	if !*asCSV {
		return
	}
	if *outDir == "" {
		fmt.Fprintln(os.Stderr, "rfidgen: -csv requires -out")
		os.Exit(1)
	}
	if err := dump(d, *outDir); err != nil {
		fmt.Fprintf(os.Stderr, "rfidgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("CSV files written to %s\n", *outDir)
}

func dump(d *rfidgen.Dataset, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	writeReads := func(name string, reads []rfidgen.Read) error {
		return writeCSV(dir, name, []string{"epc", "rtime", "reader", "biz_loc", "biz_step"}, len(reads), func(i int) []string {
			r := reads[i]
			return []string{r.EPC, r.RTime.UTC().Format(time.RFC3339Nano), r.Reader, r.BizLoc, r.BizStep}
		})
	}
	if err := writeReads("caser.csv", d.CaseR); err != nil {
		return err
	}
	if err := writeReads("caser_clean.csv", d.Clean); err != nil {
		return err
	}
	if err := writeReads("palletr.csv", d.PalletR); err != nil {
		return err
	}
	if err := writeCSV(dir, "parent.csv", []string{"child_epc", "parent_epc"}, len(d.Parents), func(i int) []string {
		return []string{d.Parents[i].ChildEPC, d.Parents[i].ParentEPC}
	}); err != nil {
		return err
	}
	if err := writeCSV(dir, "locs.csv", []string{"gln", "site", "loc_desc"}, len(d.Locs), func(i int) []string {
		return []string{d.Locs[i].GLN, d.Locs[i].Site, d.Locs[i].LocDesc}
	}); err != nil {
		return err
	}
	if err := writeCSV(dir, "steps.csv", []string{"biz_step", "type"}, len(d.Steps), func(i int) []string {
		return []string{d.Steps[i].BizStep, d.Steps[i].Type}
	}); err != nil {
		return err
	}
	if err := writeCSV(dir, "epc_info.csv", []string{"epc", "product", "lot", "manufacture_date", "expiry_date"}, len(d.Infos), func(i int) []string {
		r := d.Infos[i]
		return []string{r.EPC, strconv.Itoa(r.Product), strconv.Itoa(r.Lot),
			r.Manufacture.UTC().Format(time.RFC3339), r.Expiry.UTC().Format(time.RFC3339)}
	}); err != nil {
		return err
	}
	return writeCSV(dir, "product.csv", []string{"product", "manufacturer", "name"}, len(d.Products), func(i int) []string {
		p := d.Products[i]
		return []string{strconv.Itoa(p.ID), strconv.Itoa(p.Manufacturer), p.Name}
	})
}

func writeCSV(dir, name string, header []string, n int, row func(int) []string) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if err := w.Write(row(i)); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
