// Command rfidserve runs the deferred-cleansing engine as an HTTP query
// service: JSON queries in, NDJSON row streams out, with per-session
// prepared statements, admission-control backpressure (429 +
// Retry-After), health/readiness endpoints, Prometheus metrics, and
// graceful drain on SIGTERM/SIGINT. docs/WIRE.md documents the protocol.
//
//	rfidserve -addr :8080 -scale 10 -max-concurrent 8
//	curl -s localhost:8080/v1/query -d '{"sql":"SELECT count(*) FROM caser"}'
//	curl -s localhost:8080/metrics
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/serve"
)

var (
	addr     = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	addrFile = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts that use port 0)")
	dir      = flag.String("dir", "", "restore a database saved with Save from this directory instead of generating a workload")
	scale    = flag.Int("scale", 4, "RFIDGen scale factor to load when -dir is unset (caseR ≈ scale*1500 rows)")
	pct      = flag.Int("anomaly-pct", 10, "RFIDGen anomaly percentage")
	rules    = flag.Bool("paper-rules", true, "register the paper's five cleansing rules after loading the workload")

	maxConc  = flag.Int("max-concurrent", 0, "admission control: max queries executing at once (0 = unlimited)")
	queue    = flag.Int("admission-queue", -1, "admission wait-queue depth (-1 = 2x max-concurrent)")
	memLimit = flag.Int64("mem-limit", 0, "default per-query memory budget in bytes (0 = unlimited)")
	spillDir = flag.String("spill-dir", "", "spill-file directory (default: system temp)")

	walDir       = flag.String("wal", "", "durability root: WAL + checkpoints live here; the server recovers from it on start and /v1/ingest appends become durable")
	fsyncPolicy  = flag.String("fsync", "always", "WAL fsync policy: always (acked ingests survive power loss), interval, or off")
	fsyncEvery   = flag.Duration("fsync-interval", 100*time.Millisecond, "background sync period under -fsync interval")
	ckptBytes    = flag.Int64("checkpoint-bytes", 64<<20, "checkpoint when the WAL passes this size (0 disables the size trigger)")
	ckptEvery    = flag.Duration("checkpoint-interval", 5*time.Minute, "checkpoint on this timer while the WAL is non-empty (0 disables the timer)")
	sessionIdle  = flag.Duration("session-idle", 5*time.Minute, "evict prepared-statement sessions idle this long")
	drainWait    = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight queries on SIGTERM")
	slowQuery    = flag.Duration("slow-query", 0, "log queries at or over this duration (0 = off)")
	queryTimeout = flag.Duration("query-timeout", 0, "server-side per-query timeout applied to every request (0 = none)")
	queryPar     = flag.Int("query-parallelism", 0, "intra-query worker-pool width per request (0 = engine default, the CPU count; set low when -max-concurrent is high — inter-query concurrency is the better use of the cores)")
	traceSample  = flag.Float64("trace-sampling", 1, "head-sample this fraction of trace-eligible queries (slow-query log candidates and explicit trace requests); 1 traces all, 0 none")
	traceExport  = flag.String("trace-export", "", "export sampled traces as OTLP/JSON: a file path (appended, one export request per line) or an http(s):// OTLP endpoint POSTed to per trace")
)

func main() {
	flag.Parse()
	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if err := run(log); err != nil {
		log.Error("rfidserve: fatal", "err", err)
		os.Exit(1)
	}
}

func run(log *slog.Logger) error {
	dbOpts := []repro.Option{
		repro.WithMaxConcurrent(*maxConc),
		repro.WithAdmissionQueue(*queue),
		repro.WithDefaultMemoryLimit(*memLimit),
		repro.WithSpillDir(*spillDir),
	}
	if *slowQuery > 0 {
		dbOpts = append(dbOpts, repro.WithSlowQueryLog(*slowQuery, log))
	}
	if *traceSample != 1 {
		dbOpts = append(dbOpts, repro.WithTraceSampling(*traceSample))
	}
	if *traceExport != "" {
		sink, closeSink, err := openTraceSink(*traceExport)
		if err != nil {
			return fmt.Errorf("trace-export: %w", err)
		}
		defer closeSink()
		dbOpts = append(dbOpts, repro.WithTraceExporter(sink))
	}

	var db *repro.DB
	var err error
	switch {
	case *walDir != "":
		// Durable mode: the WAL root is the source of truth, recovered on
		// every start; -dir only seeds a fresh root. An empty fresh root
		// gets the generated workload, made durable by its load checkpoint.
		pol, err := repro.ParseFsyncPolicy(*fsyncPolicy)
		if err != nil {
			return err
		}
		dbOpts = append(dbOpts,
			repro.WithWAL(*walDir),
			repro.WithFsyncPolicy(pol),
			repro.WithFsyncInterval(*fsyncEvery),
			repro.WithCheckpointEvery(*ckptBytes, *ckptEvery),
		)
		if db, err = repro.OpenDir(*dir, dbOpts...); err != nil {
			return fmt.Errorf("open wal %s: %w", *walDir, err)
		}
		rs := db.ResourceStats().Recovery
		log.Info("recovered", "wal", *walDir,
			"checkpoint", rs.Checkpoint,
			"replayed_records", rs.ReplayedRecords,
			"replayed_rows", rs.ReplayedRows,
			"truncated_bytes", rs.TruncatedBytes,
			"seeded", rs.Seeded)
		if rs.Checkpoint == "" && rs.ReplayedRecords == 0 && !rs.Seeded && *dir == "" && *scale > 0 {
			if err := loadWorkload(db, log); err != nil {
				return err
			}
		}
	case *dir != "":
		if db, err = repro.OpenDir(*dir, dbOpts...); err != nil {
			return fmt.Errorf("open %s: %w", *dir, err)
		}
		log.Info("restored database", "dir", *dir)
	default:
		db = repro.Open(dbOpts...)
		if err := loadWorkload(db, log); err != nil {
			return err
		}
	}
	defer db.Close()

	srv := serve.New(serve.Config{
		DB:                 db,
		Logger:             log,
		SessionIdleTimeout: *sessionIdle,
		DrainTimeout:       *drainWait,
		QueryOptions:       serverQueryOptions(),
	})
	bound, err := srv.Listen(*addr)
	if err != nil {
		return err
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound.String()), 0o644); err != nil {
			return fmt.Errorf("write addr-file: %w", err)
		}
	}
	fmt.Printf("rfidserve: listening on %s\n", bound)
	log.Info("listening", "addr", bound.String())

	// SIGTERM/SIGINT → graceful drain: /readyz flips to 503, new queries
	// get 503 draining, in-flight queries finish (up to -drain-timeout).
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	drained := make(chan error, 1)
	go func() {
		sig := <-sigs
		log.Info("draining", "signal", sig.String(), "timeout", drainWait.String())
		drained <- srv.Drain(context.Background())
	}()

	if err := srv.Serve(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if err := <-drained; err != nil {
		return fmt.Errorf("drain abandoned in-flight queries: %w", err)
	}
	log.Info("exit: drained cleanly")
	return nil
}

// loadWorkload generates and loads the RFIDGen workload with the paper's
// rules. On a durable DB the load is made durable by its checkpoint.
func loadWorkload(db *repro.DB, log *slog.Logger) error {
	start := time.Now()
	if err := db.LoadRFIDWorkload(repro.WorkloadConfig{Scale: *scale, AnomalyPct: *pct}); err != nil {
		return fmt.Errorf("load workload: %w", err)
	}
	if *rules {
		names, err := db.DefinePaperRules()
		if err != nil {
			return fmt.Errorf("define rules: %w", err)
		}
		log.Info("rules registered", "rules", names)
	}
	log.Info("workload loaded", "scale", *scale, "anomaly_pct", *pct, "elapsed", time.Since(start).Round(time.Millisecond))
	return nil
}

// openTraceSink resolves the -trace-export destination: an http(s)://
// URL becomes a sink that POSTs each OTLP/JSON export request to the
// endpoint; anything else is a file path opened for append.
func openTraceSink(dest string) (io.Writer, func(), error) {
	if strings.HasPrefix(dest, "http://") || strings.HasPrefix(dest, "https://") {
		return &httpTraceSink{url: dest, c: &http.Client{Timeout: 10 * time.Second}}, func() {}, nil
	}
	f, err := os.OpenFile(dest, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { _ = f.Close() }, nil
}

// httpTraceSink posts each export request (one Write per trace, already
// a complete OTLP/JSON document) to an OTLP HTTP endpoint. Failures
// surface as write errors, which the engine counts in
// repro_trace_export_errors_total without disturbing queries.
type httpTraceSink struct {
	url string
	c   *http.Client
}

func (s *httpTraceSink) Write(p []byte) (int, error) {
	resp, err := s.c.Post(s.url, "application/json", bytes.NewReader(p))
	if err != nil {
		return 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode >= 300 {
		return 0, fmt.Errorf("otlp endpoint returned %s", resp.Status)
	}
	return len(p), nil
}

func serverQueryOptions() []repro.QueryOption {
	var opts []repro.QueryOption
	if *queryTimeout > 0 {
		opts = append(opts, repro.WithTimeout(*queryTimeout))
	}
	if *queryPar > 0 {
		opts = append(opts, repro.WithParallelism(*queryPar))
	}
	return opts
}
