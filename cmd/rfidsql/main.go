// Command rfidsql is an interactive SQL shell over the deferred-cleansing
// engine. Statements end with ';'; '\h' lists the meta-commands.
//
//	rfidsql                       # empty database
//	rfidsql -workload 5 -pct 10   # pre-loaded RFIDGen workload + paper rules
//	rfidsql -open /path/to/saved  # restore a \save'd database
//	rfidsql -wal /path/to/wal     # durable session: recover + log every write
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/shell"
)

var (
	workload = flag.Int("workload", 0, "generate an RFIDGen workload at this scale (0 = empty db)")
	pct      = flag.Int("pct", 10, "anomaly percentage for -workload")
	openDir  = flag.String("open", "", "open a saved database directory")
	walDir   = flag.String("wal", "", "durability root: recover from it on start, log every write (see \\wal)")
	fsync    = flag.String("fsync", "always", "WAL fsync policy with -wal: always, interval, or off")
)

func main() {
	flag.Parse()
	var db *repro.DB
	switch {
	case *walDir != "":
		pol, err := repro.ParseFsyncPolicy(*fsync)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rfidsql: %v\n", err)
			os.Exit(1)
		}
		// -open seeds a fresh WAL root; thereafter the WAL is the truth.
		db, err = repro.OpenDir(*openDir, repro.WithWAL(*walDir), repro.WithFsyncPolicy(pol))
		if err != nil {
			fmt.Fprintf(os.Stderr, "rfidsql: %v\n", err)
			os.Exit(1)
		}
	case *openDir != "":
		var err error
		db, err = repro.OpenDir(*openDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rfidsql: %v\n", err)
			os.Exit(1)
		}
	default:
		db = repro.Open()
	}
	defer db.Close()
	sh := shell.New(db, os.Stdout)
	if *workload > 0 {
		if err := sh.Meta(fmt.Sprintf(`\workload %d %d`, *workload, *pct)); err != nil {
			fmt.Fprintf(os.Stderr, "rfidsql: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Println(`deferred-cleansing SQL shell — \h for help, \q to quit`)
	if err := sh.Run(os.Stdin); err != nil {
		fmt.Fprintf(os.Stderr, "rfidsql: %v\n", err)
		os.Exit(1)
	}
}
