// Command rfidclean is an end-to-end driver for the deferred-cleansing
// system: it loads a synthetic RFID workload, registers the paper's
// cleansing rules, rewrites a query under a chosen strategy, and prints
// the rewritten SQL, the physical plan, and/or the results.
//
//	rfidclean -scale 5 -rules 3 -strategy auto -q1 -sel 0.1 -show-sql -explain
//	rfidclean -scale 5 -rules 5 -sql "SELECT count(*) FROM caseR" -run
//	rfidclean -scale 5 -conditions -q1 -sel 0.1       # Table-1 style output
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"

	"repro"
	"repro/internal/bench"
)

var (
	scale    = flag.Int("scale", 5, "scale factor s")
	pct      = flag.Int("pct", 10, "anomaly percentage")
	nRules   = flag.Int("rules", 3, "how many of the paper's rules to enable (1-5)")
	strategy = flag.String("strategy", "auto", "auto|naive|expanded|join-back|dirty")
	useQ1    = flag.Bool("q1", false, "use the paper's q1 (dwell analysis)")
	useQ2    = flag.Bool("q2", false, "use the paper's q2 (site analysis)")
	sel      = flag.Float64("sel", 0.10, "rtime selectivity for -q1/-q2")
	sqlText  = flag.String("sql", "", "run this SQL instead of -q1/-q2")
	showSQL  = flag.Bool("show-sql", false, "print the rewritten SQL")
	explain  = flag.Bool("explain", false, "print the physical plan")
	analyze  = flag.Bool("analyze", false, "execute and print the plan with actual rows/times")
	runIt    = flag.Bool("run", true, "execute and print up to -limit rows")
	limit    = flag.Int("limit", 10, "max rows printed")
	conds    = flag.Bool("conditions", false, "print derived expanded conditions per rule")
)

func main() {
	flag.Parse()
	// Ctrl-C cancels the in-flight query cooperatively instead of killing
	// the process mid-print.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := realMain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "rfidclean: %v\n", err)
		os.Exit(1)
	}
}

func strat() (repro.Strategy, error) {
	switch *strategy {
	case "auto":
		return repro.Auto, nil
	case "naive":
		return repro.Naive, nil
	case "expanded":
		return repro.Expanded, nil
	case "join-back", "joinback":
		return repro.JoinBack, nil
	case "dirty":
		return repro.Dirty, nil
	}
	return 0, fmt.Errorf("unknown strategy %q", *strategy)
}

func realMain(ctx context.Context) error {
	st, err := strat()
	if err != nil {
		return err
	}
	fmt.Printf("loading workload (scale=%d, %d%% anomalies)...\n", *scale, *pct)
	env, err := bench.Load(*scale, *pct)
	if err != nil {
		return err
	}
	db := env.DB
	rules := env.RulePrefix(*nRules)
	fmt.Printf("rules enabled (creation order): %s\n", strings.Join(rules, ", "))

	query := *sqlText
	switch {
	case query != "":
	case *useQ2:
		query = env.Q2(*sel)
	default:
		query = env.Q1(*sel)
	}

	if *conds {
		cc, err := db.ExpandedConditions(query, repro.WithRules(rules...))
		if err != nil {
			return err
		}
		names := make([]string, 0, len(cc))
		for n := range cc {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Println("\nderived expanded conditions:")
		for _, n := range names {
			fmt.Printf("  %-12s %s\n", n, cc[n])
		}
	}

	opts := []repro.QueryOption{repro.WithStrategy(st), repro.WithRules(rules...)}
	if st == repro.Dirty {
		opts = []repro.QueryOption{repro.WithStrategy(st)}
	}
	ri, err := db.Rewrite(query, opts...)
	if err != nil {
		return err
	}
	fmt.Printf("\nchosen strategy: %s (est cost %.0f)\n", ri.Strategy, ri.EstCost)
	for _, c := range ri.Candidates {
		marker := " "
		if c.Chosen {
			marker = "*"
		}
		fmt.Printf("  %s candidate %-9s pushes=%d cost=%.0f\n", marker, c.Strategy, c.Pushes, c.EstCost)
	}
	if *showSQL {
		fmt.Println("\nrewritten SQL:")
		fmt.Println(ri.SQL)
	}
	if *explain {
		plan, err := db.Explain(query, opts...)
		if err != nil {
			return err
		}
		fmt.Println("\nplan:")
		fmt.Println(plan)
	}
	if *analyze {
		out, err := db.ExplainAnalyzeContext(ctx, query, opts...)
		if err != nil {
			return err
		}
		fmt.Println("\nplan with runtime statistics:")
		fmt.Println(out)
	}
	if !*runIt {
		return nil
	}
	rows, err := db.QueryContext(ctx, query, opts...)
	if err != nil {
		return err
	}
	fmt.Printf("\n%d rows (%s):\n", len(rows.Data), strings.Join(rows.Columns, " | "))
	for i, r := range rows.Data {
		if i >= *limit {
			fmt.Printf("  ... %d more\n", len(rows.Data)-*limit)
			break
		}
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.String()
		}
		fmt.Println("  " + strings.Join(parts, " | "))
	}
	return nil
}
