// Command rfidbench regenerates every table and figure of the paper's
// evaluation section (§6) against the embedded engine and prints
// paper-style series as markdown. EXPERIMENTS.md is produced from this
// tool's output.
//
//	rfidbench -scale 12 -exp all
//	rfidbench -scale 40 -exp fig7a -reps 5
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro"
	"repro/internal/bench"
)

var (
	scale = flag.Int("scale", 12, "RFIDGen scale factor s (caseR ≈ s*1500 rows)")
	exp   = flag.String("exp", "all", "experiment: all,table1,fig7a,fig7d,fig8,fig9a,fig9b,fig9c,fig9d,plans,telemetry")
	reps  = flag.Int("reps", 5, "repetitions per cell (median reported)")
)

func main() {
	flag.Parse()
	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("\n## %s\n\n", title(name))
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "rfidbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	fmt.Printf("# Deferred-cleansing evaluation (scale=%d, caseR ≈ %d reads/db)\n", *scale, *scale*1500)
	run("table1", table1)
	run("fig7a", func() error { return selectivityFig("q1", q1) })
	run("fig7d", func() error { return selectivityFig("q2", q2) })
	run("fig8", func() error { return selectivityFig("q2'", q2p) })
	run("fig9a", func() error { return rulesFig("q1", q1) })
	run("fig9b", func() error { return rulesFig("q2", q2) })
	run("fig9c", func() error { return dirtyFig("q1", q1) })
	run("fig9d", func() error { return dirtyFig("q2", q2) })
	run("plans", plans)
	run("telemetry", telemetry)
}

func title(name string) string {
	switch name {
	case "table1":
		return "Table 1 — expanded conditions for q1 and q2"
	case "fig7a":
		return "Figure 7(a) — q1 elapsed vs selectivity (reader rule, db-10)"
	case "fig7d":
		return "Figure 7(d) — q2 elapsed vs selectivity (reader rule, db-10)"
	case "fig8":
		return "Figure 8 — q2' (uncorrelated predicate) vs selectivity"
	case "fig9a":
		return "Figure 9(a) — q1 elapsed vs number of rules (sel 10%, db-10)"
	case "fig9b":
		return "Figure 9(b) — q2 elapsed vs number of rules (sel 10%, db-10)"
	case "fig9c":
		return "Figure 9(c) — q1 elapsed vs anomaly percentage (3 rules, sel 10%)"
	case "fig9d":
		return "Figure 9(d) — q2 elapsed vs anomaly percentage (3 rules, sel 10%)"
	case "plans":
		return "Figure 7(b,c,e,f,g) — access plans for q1/q1_e/q2/q2_e/q2_j"
	case "telemetry":
		return "Telemetry — q1 trace (cold and plan-cache hit) and engine metrics"
	}
	return name
}

func q1(e *bench.Env, sel float64) string  { return e.Q1(sel) }
func q2(e *bench.Env, sel float64) string  { return e.Q2(sel) }
func q2p(e *bench.Env, sel float64) string { return e.Q2Prime(sel) }

// cell measures the median elapsed time for one variant, after one
// untimed warmup run.
func cell(e *bench.Env, query string, v bench.Variant, rules []string) (string, error) {
	if m, err := e.Run(query, v.Strat, rules); err != nil {
		return "", err
	} else if !m.Feasible {
		return "n/a", nil
	}
	var times []time.Duration
	for r := 0; r < *reps; r++ {
		m, err := e.Run(query, v.Strat, rules)
		if err != nil {
			return "", err
		}
		if !m.Feasible {
			return "n/a", nil
		}
		times = append(times, m.Elapsed)
	}
	sort.Slice(times, func(a, b int) bool { return times[a] < times[b] })
	return fmt.Sprintf("%.1f", float64(times[len(times)/2].Microseconds())/1000), nil
}

func header() string {
	names := []string{}
	for _, v := range bench.Variants() {
		names = append(names, v.Name)
	}
	return "| point | " + strings.Join(names, " (ms) | ") + " (ms) |\n|---|---|---|---|---|"
}

func row(e *bench.Env, label, query string, rules []string) (string, error) {
	cells := []string{label}
	for _, v := range bench.Variants() {
		c, err := cell(e, query, v, rules)
		if err != nil {
			return "", err
		}
		cells = append(cells, c)
	}
	return "| " + strings.Join(cells, " | ") + " |", nil
}

func selectivityFig(name string, mk func(*bench.Env, float64) string) error {
	e, err := bench.Load(*scale, 10)
	if err != nil {
		return err
	}
	rules := e.RulePrefix(1)
	fmt.Println(header())
	for _, sel := range bench.SelectivityPoints {
		r, err := row(e, fmt.Sprintf("%s sel=%d%%", name, int(sel*100)), mk(e, sel), rules)
		if err != nil {
			return err
		}
		fmt.Println(r)
	}
	return nil
}

func rulesFig(name string, mk func(*bench.Env, float64) string) error {
	e, err := bench.Load(*scale, 10)
	if err != nil {
		return err
	}
	fmt.Println(header())
	for n := 1; n <= 5; n++ {
		r, err := row(e, fmt.Sprintf("%s rules=%d", name, n), mk(e, 0.10), e.RulePrefix(n))
		if err != nil {
			return err
		}
		fmt.Println(r)
	}
	return nil
}

func dirtyFig(name string, mk func(*bench.Env, float64) string) error {
	fmt.Println(header())
	for _, pct := range bench.DirtyPoints {
		e, err := bench.Load(*scale, pct)
		if err != nil {
			return err
		}
		r, err := row(e, fmt.Sprintf("%s db-%d", name, pct), mk(e, 0.10), e.RulePrefix(3))
		if err != nil {
			return err
		}
		fmt.Println(r)
	}
	return nil
}

func table1() error {
	e, err := bench.Load(*scale, 10)
	if err != nil {
		return err
	}
	fmt.Println("| rule | q1 (rtime <= T1) | q2 (rtime >= T2) |")
	fmt.Println("|---|---|---|")
	ccQ1, err := e.DB.ExpandedConditions(e.Q1(0.10))
	if err != nil {
		return err
	}
	ccQ2, err := e.DB.ExpandedConditions(e.Q2(0.10))
	if err != nil {
		return err
	}
	for _, rule := range []string{"reader", "duplicate", "replacing", "cycle", "missing_r1", "missing_r2"} {
		fmt.Printf("| %s | %s | %s |\n", rule, shorten(ccQ1[rule]), shorten(ccQ2[rule]))
	}
	_ = repro.Auto
	return nil
}

// plans prints the access plans behind Figure 7's discussion: q1 and q1_e
// (shared sort), q2 and q2_e (one extra sort), q2_j (double caseR access).
func plans() error {
	e, err := bench.Load(*scale, 10)
	if err != nil {
		return err
	}
	reader := e.RulePrefix(1)
	show := func(label, query string, strat repro.Strategy, rules []string) error {
		opts := []repro.QueryOption{repro.WithStrategy(strat)}
		if strat != repro.Dirty {
			opts = append(opts, repro.WithRules(rules...))
		}
		plan, err := e.DB.Explain(query, opts...)
		if err != nil {
			return err
		}
		fmt.Printf("### %s\n\n```\n%s```\n\n", label, plan)
		return nil
	}
	if err := show("q1 (Fig 7b)", e.Q1(0.10), repro.Dirty, nil); err != nil {
		return err
	}
	if err := show("q1_e (Fig 7c)", e.Q1(0.10), repro.Expanded, reader); err != nil {
		return err
	}
	if err := show("q2 (Fig 7e)", e.Q2(0.10), repro.Dirty, nil); err != nil {
		return err
	}
	if err := show("q2_e (Fig 7f)", e.Q2(0.10), repro.Expanded, reader); err != nil {
		return err
	}
	return show("q2_j (Fig 7g)", e.Q2(0.10), repro.JoinBack, reader)
}

// telemetry shows what the observability layer records for one
// representative expanded-rewrite query: the span tree of a cold run
// (parse/rewrite/plan phases plus every operator) and of a plan-cache
// hit, then the engine's nonzero metric samples.
func telemetry() error {
	e, err := bench.Load(*scale, 10)
	if err != nil {
		return err
	}
	query := e.Q1(0.10)
	opts := []repro.QueryOption{
		repro.WithStrategy(repro.Expanded),
		repro.WithRules(e.RulePrefix(1)...),
		repro.WithTrace(nil),
	}
	show := func(label string) error {
		rows, err := e.DB.Query(query, opts...)
		if err != nil {
			return err
		}
		fmt.Printf("### %s\n\n```\n%s```\n\n", label, rows.Trace().String())
		return nil
	}
	if err := show("q1_e cold"); err != nil {
		return err
	}
	if err := show("q1_e plan-cache hit"); err != nil {
		return err
	}
	fmt.Printf("### metrics\n\n```\n")
	for _, fam := range e.DB.Metrics().Snapshot() {
		for _, m := range fam.Metrics {
			labels := ""
			for k, v := range m.Labels {
				labels = fmt.Sprintf("{%s=%q}", k, v)
			}
			switch {
			case m.Count != nil && *m.Count > 0:
				fmt.Printf("%s%s count=%d sum=%g\n", fam.Name, labels, *m.Count, *m.Sum)
			case m.Value != nil && *m.Value != 0:
				fmt.Printf("%s%s %g\n", fam.Name, labels, *m.Value)
			}
		}
	}
	fmt.Printf("```\n")
	return nil
}

func shorten(s string) string {
	s = strings.ReplaceAll(s, "TIMESTAMP ", "")
	if len(s) > 90 {
		return s[:87] + "..."
	}
	return s
}
