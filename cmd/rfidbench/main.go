// Command rfidbench regenerates every table and figure of the paper's
// evaluation section (§6) against the embedded engine and prints
// paper-style series as markdown. EXPERIMENTS.md is produced from this
// tool's output.
//
//	rfidbench -scale 12 -exp all
//	rfidbench -scale 40 -exp fig7a -reps 5
//
// It also carries the service-level load generator: -exp loadgen drives
// a running rfidserve with open-loop arrivals at a target QPS and
// reports served-QPS and p50/p95/p99 latency (the numbers scale-out PRs
// quote), writing machine-readable JSON with -out:
//
//	rfidbench -exp loadgen -url http://127.0.0.1:8080 -qps 200 -dur 5s -out BENCH_PR6.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro"
	"repro/internal/bench"
)

var (
	scale = flag.Int("scale", 12, "RFIDGen scale factor s (caseR ≈ s*1500 rows)")
	exp   = flag.String("exp", "all", "experiment: all,table1,fig7a,fig7d,fig8,fig9a,fig9b,fig9c,fig9d,plans,telemetry,loadgen")
	reps  = flag.Int("reps", 5, "repetitions per cell (median reported)")

	// loadgen flags (only read with -exp loadgen).
	url       = flag.String("url", "http://127.0.0.1:8080", "loadgen: base URL of a running rfidserve")
	qps       = flag.Float64("qps", 100, "loadgen: open-loop target arrival rate")
	dur       = flag.Duration("dur", 5*time.Second, "loadgen: load duration")
	strat     = flag.String("strategy", "", "loadgen: rewrite strategy for every request (default auto)")
	out       = flag.String("out", "", "loadgen: write the JSON result to this file (stdout gets markdown either way)")
	failOn5xx = flag.Bool("fail-on-5xx", false, "loadgen: exit nonzero when any 5xx, transport, or stream error occurred or the metrics scrape failed")
)

func main() {
	flag.Parse()
	if *exp == "loadgen" {
		// The load generator talks to a remote server; it neither builds a
		// local database nor belongs in the "all" sweep.
		if err := loadgen(); err != nil {
			fmt.Fprintf(os.Stderr, "rfidbench: loadgen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("\n## %s\n\n", title(name))
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "rfidbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	fmt.Printf("# Deferred-cleansing evaluation (scale=%d, caseR ≈ %d reads/db)\n", *scale, *scale*1500)
	run("table1", table1)
	run("fig7a", func() error { return selectivityFig("q1", q1) })
	run("fig7d", func() error { return selectivityFig("q2", q2) })
	run("fig8", func() error { return selectivityFig("q2'", q2p) })
	run("fig9a", func() error { return rulesFig("q1", q1) })
	run("fig9b", func() error { return rulesFig("q2", q2) })
	run("fig9c", func() error { return dirtyFig("q1", q1) })
	run("fig9d", func() error { return dirtyFig("q2", q2) })
	run("plans", plans)
	run("telemetry", telemetry)
}

func title(name string) string {
	switch name {
	case "table1":
		return "Table 1 — expanded conditions for q1 and q2"
	case "fig7a":
		return "Figure 7(a) — q1 elapsed vs selectivity (reader rule, db-10)"
	case "fig7d":
		return "Figure 7(d) — q2 elapsed vs selectivity (reader rule, db-10)"
	case "fig8":
		return "Figure 8 — q2' (uncorrelated predicate) vs selectivity"
	case "fig9a":
		return "Figure 9(a) — q1 elapsed vs number of rules (sel 10%, db-10)"
	case "fig9b":
		return "Figure 9(b) — q2 elapsed vs number of rules (sel 10%, db-10)"
	case "fig9c":
		return "Figure 9(c) — q1 elapsed vs anomaly percentage (3 rules, sel 10%)"
	case "fig9d":
		return "Figure 9(d) — q2 elapsed vs anomaly percentage (3 rules, sel 10%)"
	case "plans":
		return "Figure 7(b,c,e,f,g) — access plans for q1/q1_e/q2/q2_e/q2_j"
	case "telemetry":
		return "Telemetry — q1 trace (cold and plan-cache hit) and engine metrics"
	}
	return name
}

func q1(e *bench.Env, sel float64) string  { return e.Q1(sel) }
func q2(e *bench.Env, sel float64) string  { return e.Q2(sel) }
func q2p(e *bench.Env, sel float64) string { return e.Q2Prime(sel) }

// cell measures the median elapsed time for one variant, after one
// untimed warmup run.
func cell(e *bench.Env, query string, v bench.Variant, rules []string) (string, error) {
	if m, err := e.Run(query, v.Strat, rules); err != nil {
		return "", err
	} else if !m.Feasible {
		return "n/a", nil
	}
	var times []time.Duration
	for r := 0; r < *reps; r++ {
		m, err := e.Run(query, v.Strat, rules)
		if err != nil {
			return "", err
		}
		if !m.Feasible {
			return "n/a", nil
		}
		times = append(times, m.Elapsed)
	}
	sort.Slice(times, func(a, b int) bool { return times[a] < times[b] })
	return fmt.Sprintf("%.1f", float64(times[len(times)/2].Microseconds())/1000), nil
}

func header() string {
	names := []string{}
	for _, v := range bench.Variants() {
		names = append(names, v.Name)
	}
	return "| point | " + strings.Join(names, " (ms) | ") + " (ms) |\n|---|---|---|---|---|"
}

func row(e *bench.Env, label, query string, rules []string) (string, error) {
	cells := []string{label}
	for _, v := range bench.Variants() {
		c, err := cell(e, query, v, rules)
		if err != nil {
			return "", err
		}
		cells = append(cells, c)
	}
	return "| " + strings.Join(cells, " | ") + " |", nil
}

func selectivityFig(name string, mk func(*bench.Env, float64) string) error {
	e, err := bench.Load(*scale, 10)
	if err != nil {
		return err
	}
	rules := e.RulePrefix(1)
	fmt.Println(header())
	for _, sel := range bench.SelectivityPoints {
		r, err := row(e, fmt.Sprintf("%s sel=%d%%", name, int(sel*100)), mk(e, sel), rules)
		if err != nil {
			return err
		}
		fmt.Println(r)
	}
	return nil
}

func rulesFig(name string, mk func(*bench.Env, float64) string) error {
	e, err := bench.Load(*scale, 10)
	if err != nil {
		return err
	}
	fmt.Println(header())
	for n := 1; n <= 5; n++ {
		r, err := row(e, fmt.Sprintf("%s rules=%d", name, n), mk(e, 0.10), e.RulePrefix(n))
		if err != nil {
			return err
		}
		fmt.Println(r)
	}
	return nil
}

func dirtyFig(name string, mk func(*bench.Env, float64) string) error {
	fmt.Println(header())
	for _, pct := range bench.DirtyPoints {
		e, err := bench.Load(*scale, pct)
		if err != nil {
			return err
		}
		r, err := row(e, fmt.Sprintf("%s db-%d", name, pct), mk(e, 0.10), e.RulePrefix(3))
		if err != nil {
			return err
		}
		fmt.Println(r)
	}
	return nil
}

func table1() error {
	e, err := bench.Load(*scale, 10)
	if err != nil {
		return err
	}
	fmt.Println("| rule | q1 (rtime <= T1) | q2 (rtime >= T2) |")
	fmt.Println("|---|---|---|")
	ccQ1, err := e.DB.ExpandedConditions(e.Q1(0.10))
	if err != nil {
		return err
	}
	ccQ2, err := e.DB.ExpandedConditions(e.Q2(0.10))
	if err != nil {
		return err
	}
	for _, rule := range []string{"reader", "duplicate", "replacing", "cycle", "missing_r1", "missing_r2"} {
		fmt.Printf("| %s | %s | %s |\n", rule, shorten(ccQ1[rule]), shorten(ccQ2[rule]))
	}
	_ = repro.Auto
	return nil
}

// plans prints the access plans behind Figure 7's discussion: q1 and q1_e
// (shared sort), q2 and q2_e (one extra sort), q2_j (double caseR access).
func plans() error {
	e, err := bench.Load(*scale, 10)
	if err != nil {
		return err
	}
	reader := e.RulePrefix(1)
	show := func(label, query string, strat repro.Strategy, rules []string) error {
		opts := []repro.QueryOption{repro.WithStrategy(strat)}
		if strat != repro.Dirty {
			opts = append(opts, repro.WithRules(rules...))
		}
		plan, err := e.DB.Explain(query, opts...)
		if err != nil {
			return err
		}
		fmt.Printf("### %s\n\n```\n%s```\n\n", label, plan)
		return nil
	}
	if err := show("q1 (Fig 7b)", e.Q1(0.10), repro.Dirty, nil); err != nil {
		return err
	}
	if err := show("q1_e (Fig 7c)", e.Q1(0.10), repro.Expanded, reader); err != nil {
		return err
	}
	if err := show("q2 (Fig 7e)", e.Q2(0.10), repro.Dirty, nil); err != nil {
		return err
	}
	if err := show("q2_e (Fig 7f)", e.Q2(0.10), repro.Expanded, reader); err != nil {
		return err
	}
	return show("q2_j (Fig 7g)", e.Q2(0.10), repro.JoinBack, reader)
}

// telemetry shows what the observability layer records for one
// representative expanded-rewrite query: the span tree of a cold run
// (parse/rewrite/plan phases plus every operator) and of a plan-cache
// hit, then the engine's nonzero metric samples.
func telemetry() error {
	e, err := bench.Load(*scale, 10)
	if err != nil {
		return err
	}
	query := e.Q1(0.10)
	opts := []repro.QueryOption{
		repro.WithStrategy(repro.Expanded),
		repro.WithRules(e.RulePrefix(1)...),
		repro.WithTrace(nil),
	}
	show := func(label string) error {
		rows, err := e.DB.Query(query, opts...)
		if err != nil {
			return err
		}
		fmt.Printf("### %s\n\n```\n%s```\n\n", label, rows.Trace().String())
		return nil
	}
	if err := show("q1_e cold"); err != nil {
		return err
	}
	if err := show("q1_e plan-cache hit"); err != nil {
		return err
	}
	fmt.Printf("### metrics\n\n```\n")
	for _, fam := range e.DB.Metrics().Snapshot() {
		for _, m := range fam.Metrics {
			labels := ""
			for k, v := range m.Labels {
				labels = fmt.Sprintf("{%s=%q}", k, v)
			}
			switch {
			case m.Count != nil && *m.Count > 0:
				fmt.Printf("%s%s count=%d sum=%g\n", fam.Name, labels, *m.Count, *m.Sum)
			case m.Value != nil && *m.Value != 0:
				fmt.Printf("%s%s %g\n", fam.Name, labels, *m.Value)
			}
		}
	}
	fmt.Printf("```\n")
	return nil
}

// loadgenQueries is the default query mix: an aggregate, a group-by with
// ordering, and a dirty-read baseline — small enough to sustain high QPS
// at modest scale, varied enough to exercise rewrite, the plan cache,
// and parallel execution on every arrival.
var loadgenQueries = []string{
	`SELECT COUNT(*) FROM caser`,
	`SELECT biz_loc, COUNT(*) c FROM caser GROUP BY biz_loc ORDER BY c DESC LIMIT 10`,
	`SELECT COUNT(DISTINCT epc) FROM caser`,
}

// loadgen runs the open-loop load generator against a running rfidserve
// and reports service-level numbers (served QPS, latency percentiles),
// optionally as JSON for BENCH_PR6.json.
func loadgen() error {
	st, err := bench.RunLoad(context.Background(), bench.LoadConfig{
		BaseURL:  strings.TrimRight(*url, "/"),
		Queries:  loadgenQueries,
		Strategy: *strat,
		QPS:      *qps,
		Duration: *dur,
	})
	if err != nil {
		return err
	}
	fmt.Printf("## Load generator — %s (target %.0f QPS for %s)\n\n", *url, *qps, *dur)
	fmt.Printf("| metric | value |\n|---|---|\n")
	fmt.Printf("| sent / done / dropped | %d / %d / %d |\n", st.Sent, st.Done, st.Dropped)
	for _, code := range sortedKeys(st.Status) {
		fmt.Printf("| status %s | %d |\n", code, st.Status[code])
	}
	fmt.Printf("| transport / stream errors | %d / %d |\n", st.TransportErrors, st.StreamErrors)
	fmt.Printf("| served QPS | %.1f |\n", st.ServedQPS)
	fmt.Printf("| latency p50 / p95 / p99 / max (ms) | %.2f / %.2f / %.2f / %.2f |\n",
		st.P50ms, st.P95ms, st.P99ms, st.MaxMs)
	fmt.Printf("| rows returned | %d |\n", st.RowsReturned)
	fmt.Printf("| metrics scrape | ok=%v |\n", st.MetricsScrapeOK)
	if *out != "" {
		b, err := json.MarshalIndent(st, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", *out)
	}
	if *failOn5xx {
		switch {
		case st.Status5xx > 0:
			return fmt.Errorf("%d responses were 5xx", st.Status5xx)
		case st.TransportErrors > 0:
			return fmt.Errorf("%d requests failed below HTTP", st.TransportErrors)
		case st.StreamErrors > 0:
			return fmt.Errorf("%d streams were cut before their terminal object", st.StreamErrors)
		case !st.MetricsScrapeOK:
			return fmt.Errorf("the /metrics scrape failed")
		case st.Done == 0:
			return fmt.Errorf("no requests completed")
		}
	}
	return nil
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func shorten(s string) string {
	s = strings.ReplaceAll(s, "TIMESTAMP ", "")
	if len(s) > 90 {
		return s[:87] + "..."
	}
	return s
}
