package eval

import (
	"repro/internal/colvec"
	"repro/internal/schema"
	"repro/internal/types"
)

// Input is the operand source a batch kernel reads from: either a slice
// of materialized rows (the classic morsel) or a window of columnar
// segment vectors read in place — no row materialization. Positions in
// selection vectors and output vectors are always window-relative
// [0, Len()); for columnar inputs the window starts at off inside the
// segment's vectors.
//
// Input is a small value type passed by copy; kernels recurse with the
// same Input, so child evaluation inherits the source automatically.
type Input struct {
	rows []schema.Row
	cols []*colvec.Vec
	off  int
	n    int
}

// RowInput wraps a row slice as a kernel input.
func RowInput(rows []schema.Row) Input { return Input{rows: rows, n: len(rows)} }

// ColInput wraps a window [off, off+n) of columnar vectors as a kernel
// input. All vectors must have at least off+n elements.
func ColInput(cols []*colvec.Vec, off, n int) Input {
	return Input{cols: cols, off: off, n: n}
}

// Len returns the number of addressable positions.
func (in Input) Len() int { return in.n }

// value reads column col at window position i, boxing from the columnar
// representation when needed.
func (in Input) value(i, col int) types.Value {
	if in.rows != nil {
		return in.rows[i][col]
	}
	return in.cols[col].Value(in.off + i)
}

// vec returns the column vector for col plus the window offset when the
// input is columnar, else nil — kernels use it to pick typed fast paths.
func (in Input) vec(col int) (*colvec.Vec, int) {
	if in.rows != nil {
		return nil, 0
	}
	return in.cols[col], in.off
}
