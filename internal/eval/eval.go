// Package eval compiles resolved sqlast expressions into closures that
// evaluate over flat rows with SQL three-valued-logic semantics. Column
// references are resolved to ordinals once at compile time; the executor
// then evaluates predicates and projections with no per-row name lookups.
//
// Aggregates and window functions are not handled here — the planner
// replaces them with references to computed columns before compiling.
package eval

import (
	"fmt"
	"strings"

	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/types"
)

// Func is a compiled expression.
type Func func(row schema.Row) (types.Value, error)

// Env supplies name resolution and subquery evaluation to the compiler.
type Env struct {
	// Schema resolves column references.
	Schema *schema.Schema
	// SubEval evaluates an uncorrelated subquery used in IN/EXISTS,
	// returning the first output column's values. It is called once at
	// compile time; nil forbids subqueries.
	SubEval func(sqlast.Stmt) ([]types.Value, error)
}

// Compile translates e into an executable closure.
func Compile(e sqlast.Expr, env *Env) (Func, error) {
	switch e := e.(type) {
	case nil:
		return nil, fmt.Errorf("eval: nil expression")
	case *sqlast.Const:
		v := e.V
		return func(schema.Row) (types.Value, error) { return v, nil }, nil
	case *sqlast.ColRef:
		idx, err := env.Schema.Resolve(e.Table, e.Name)
		if err != nil {
			return nil, err
		}
		return func(row schema.Row) (types.Value, error) { return row[idx], nil }, nil
	case *sqlast.Bin:
		return compileBin(e, env)
	case *sqlast.Un:
		inner, err := Compile(e.E, env)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case sqlast.OpNot:
			return func(row schema.Row) (types.Value, error) {
				v, err := inner(row)
				if err != nil {
					return types.Null, err
				}
				t, err := types.TruthOf(v)
				if err != nil {
					return types.Null, err
				}
				return types.ValueOfTristate(types.Not(t)), nil
			}, nil
		case sqlast.OpNeg:
			return func(row schema.Row) (types.Value, error) {
				v, err := inner(row)
				if err != nil {
					return types.Null, err
				}
				if v.Kind() == types.KindInterval {
					return types.NewInterval(-v.IntervalUsec()), nil
				}
				return types.Arith(types.OpSub, types.NewInt(0), v)
			}, nil
		}
		return nil, fmt.Errorf("eval: unknown unary operator")
	case *sqlast.IsNull:
		inner, err := Compile(e.E, env)
		if err != nil {
			return nil, err
		}
		neg := e.Neg
		return func(row schema.Row) (types.Value, error) {
			v, err := inner(row)
			if err != nil {
				return types.Null, err
			}
			return types.NewBool(v.IsNull() != neg), nil
		}, nil
	case *sqlast.Case:
		return compileCase(e, env)
	case *sqlast.In:
		return compileIn(e, env)
	case *sqlast.Exists:
		if env.SubEval == nil {
			return nil, fmt.Errorf("eval: subqueries are not allowed in this context")
		}
		vals, err := env.SubEval(e.Sub)
		if err != nil {
			return nil, err
		}
		result := types.NewBool((len(vals) > 0) != e.Neg)
		return func(schema.Row) (types.Value, error) { return result, nil }, nil
	case *sqlast.Like:
		return compileLike(e, env)
	case *sqlast.FuncCall:
		return compileScalarFunc(e, env)
	case *sqlast.WindowExpr:
		return nil, fmt.Errorf("eval: window function %s must be planned, not evaluated directly", e.Func)
	}
	return nil, fmt.Errorf("eval: unsupported expression %T", e)
}

func compileBin(e *sqlast.Bin, env *Env) (Func, error) {
	l, err := Compile(e.L, env)
	if err != nil {
		return nil, err
	}
	r, err := Compile(e.R, env)
	if err != nil {
		return nil, err
	}
	op := e.Op
	switch {
	case op == sqlast.OpAnd:
		return func(row schema.Row) (types.Value, error) {
			lv, err := l(row)
			if err != nil {
				return types.Null, err
			}
			lt, err := types.TruthOf(lv)
			if err != nil {
				return types.Null, err
			}
			if lt == types.False {
				return types.NewBool(false), nil
			}
			rv, err := r(row)
			if err != nil {
				return types.Null, err
			}
			rt, err := types.TruthOf(rv)
			if err != nil {
				return types.Null, err
			}
			return types.ValueOfTristate(types.And(lt, rt)), nil
		}, nil
	case op == sqlast.OpOr:
		return func(row schema.Row) (types.Value, error) {
			lv, err := l(row)
			if err != nil {
				return types.Null, err
			}
			lt, err := types.TruthOf(lv)
			if err != nil {
				return types.Null, err
			}
			if lt == types.True {
				return types.NewBool(true), nil
			}
			rv, err := r(row)
			if err != nil {
				return types.Null, err
			}
			rt, err := types.TruthOf(rv)
			if err != nil {
				return types.Null, err
			}
			return types.ValueOfTristate(types.Or(lt, rt)), nil
		}, nil
	case op.IsComparison():
		return func(row schema.Row) (types.Value, error) {
			lv, err := l(row)
			if err != nil {
				return types.Null, err
			}
			rv, err := r(row)
			if err != nil {
				return types.Null, err
			}
			if lv.IsNull() || rv.IsNull() {
				return types.Null, nil
			}
			c, err := types.Compare(lv, rv)
			if err != nil {
				return types.Null, err
			}
			return types.NewBool(cmpHolds(op, c)), nil
		}, nil
	case op.IsArith():
		var aop types.ArithOp
		switch op {
		case sqlast.OpAdd:
			aop = types.OpAdd
		case sqlast.OpSub:
			aop = types.OpSub
		case sqlast.OpMul:
			aop = types.OpMul
		case sqlast.OpDiv:
			aop = types.OpDiv
		}
		return func(row schema.Row) (types.Value, error) {
			lv, err := l(row)
			if err != nil {
				return types.Null, err
			}
			rv, err := r(row)
			if err != nil {
				return types.Null, err
			}
			return types.Arith(aop, lv, rv)
		}, nil
	}
	return nil, fmt.Errorf("eval: unsupported binary operator %v", op)
}

func cmpHolds(op sqlast.BinOp, c int) bool {
	switch op {
	case sqlast.OpEq:
		return c == 0
	case sqlast.OpNe:
		return c != 0
	case sqlast.OpLt:
		return c < 0
	case sqlast.OpLe:
		return c <= 0
	case sqlast.OpGt:
		return c > 0
	case sqlast.OpGe:
		return c >= 0
	}
	return false
}

func compileCase(e *sqlast.Case, env *Env) (Func, error) {
	type arm struct{ cond, then Func }
	arms := make([]arm, len(e.Whens))
	for i, w := range e.Whens {
		c, err := Compile(w.Cond, env)
		if err != nil {
			return nil, err
		}
		t, err := Compile(w.Then, env)
		if err != nil {
			return nil, err
		}
		arms[i] = arm{c, t}
	}
	var elseF Func
	if e.Else != nil {
		f, err := Compile(e.Else, env)
		if err != nil {
			return nil, err
		}
		elseF = f
	}
	return func(row schema.Row) (types.Value, error) {
		for _, a := range arms {
			cv, err := a.cond(row)
			if err != nil {
				return types.Null, err
			}
			t, err := types.TruthOf(cv)
			if err != nil {
				return types.Null, err
			}
			if t == types.True {
				return a.then(row)
			}
		}
		if elseF != nil {
			return elseF(row)
		}
		return types.Null, nil
	}, nil
}

func compileIn(e *sqlast.In, env *Env) (Func, error) {
	operand, err := Compile(e.E, env)
	if err != nil {
		return nil, err
	}
	var members []Func
	var setHasNull bool
	set := map[string]struct{}{}
	if e.Sub != nil {
		if env.SubEval == nil {
			return nil, fmt.Errorf("eval: subqueries are not allowed in this context")
		}
		vals, err := env.SubEval(e.Sub)
		if err != nil {
			return nil, err
		}
		for _, v := range vals {
			if v.IsNull() {
				setHasNull = true
				continue
			}
			set[v.GroupKey()] = struct{}{}
		}
	} else {
		for _, m := range e.List {
			if c, ok := m.(*sqlast.Const); ok {
				if c.V.IsNull() {
					setHasNull = true
				} else {
					set[c.V.GroupKey()] = struct{}{}
				}
				continue
			}
			f, err := Compile(m, env)
			if err != nil {
				return nil, err
			}
			members = append(members, f)
		}
	}
	neg := e.Neg
	return func(row schema.Row) (types.Value, error) {
		v, err := operand(row)
		if err != nil {
			return types.Null, err
		}
		if v.IsNull() {
			return types.Null, nil
		}
		found := false
		if _, ok := set[v.GroupKey()]; ok {
			found = true
		}
		sawNull := setHasNull
		if !found {
			for _, m := range members {
				mv, err := m(row)
				if err != nil {
					return types.Null, err
				}
				if mv.IsNull() {
					sawNull = true
					continue
				}
				c, err := types.Compare(v, mv)
				if err != nil {
					continue // mixed kinds never match
				}
				if c == 0 {
					found = true
					break
				}
			}
		}
		switch {
		case found:
			return types.NewBool(!neg), nil
		case sawNull:
			return types.Null, nil
		default:
			return types.NewBool(neg), nil
		}
	}, nil
}

// compileLike implements SQL LIKE: % matches any run (including empty),
// _ matches exactly one byte. NULL operands yield NULL.
func compileLike(e *sqlast.Like, env *Env) (Func, error) {
	operand, err := Compile(e.E, env)
	if err != nil {
		return nil, err
	}
	pattern, err := Compile(e.Pattern, env)
	if err != nil {
		return nil, err
	}
	neg := e.Neg
	return func(row schema.Row) (types.Value, error) {
		v, err := operand(row)
		if err != nil {
			return types.Null, err
		}
		pv, err := pattern(row)
		if err != nil {
			return types.Null, err
		}
		if v.IsNull() || pv.IsNull() {
			return types.Null, nil
		}
		if v.Kind() != types.KindString || pv.Kind() != types.KindString {
			return types.Null, fmt.Errorf("eval: LIKE needs string operands")
		}
		return types.NewBool(likeMatch(v.Str(), pv.Str()) != neg), nil
	}, nil
}

// likeMatch matches s against a LIKE pattern with memoized recursion over
// byte positions.
func likeMatch(s, pat string) bool {
	// Iterative greedy algorithm (the classic two-pointer wildcard match).
	si, pi := 0, 0
	star, starS := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pat) && (pat[pi] == '_' || pat[pi] == s[si]):
			si++
			pi++
		case pi < len(pat) && pat[pi] == '%':
			star, starS = pi, si
			pi++
		case star >= 0:
			starS++
			si, pi = starS, star+1
		default:
			return false
		}
	}
	for pi < len(pat) && pat[pi] == '%' {
		pi++
	}
	return pi == len(pat)
}

func compileScalarFunc(e *sqlast.FuncCall, env *Env) (Func, error) {
	name := strings.ToLower(e.Name)
	args := make([]Func, len(e.Args))
	for i, a := range e.Args {
		f, err := Compile(a, env)
		if err != nil {
			return nil, err
		}
		args[i] = f
	}
	switch name {
	case "coalesce":
		if len(args) == 0 {
			return nil, fmt.Errorf("eval: COALESCE needs at least one argument")
		}
		return func(row schema.Row) (types.Value, error) {
			for _, f := range args {
				v, err := f(row)
				if err != nil {
					return types.Null, err
				}
				if !v.IsNull() {
					return v, nil
				}
			}
			return types.Null, nil
		}, nil
	case "abs":
		if len(args) != 1 {
			return nil, fmt.Errorf("eval: ABS takes one argument")
		}
		return func(row schema.Row) (types.Value, error) {
			v, err := args[0](row)
			if err != nil || v.IsNull() {
				return v, err
			}
			switch v.Kind() {
			case types.KindInt:
				if v.Int() < 0 {
					return types.NewInt(-v.Int()), nil
				}
				return v, nil
			case types.KindFloat:
				if v.Float() < 0 {
					return types.NewFloat(-v.Float()), nil
				}
				return v, nil
			case types.KindInterval:
				if v.IntervalUsec() < 0 {
					return types.NewInterval(-v.IntervalUsec()), nil
				}
				return v, nil
			}
			return types.Null, fmt.Errorf("eval: ABS on %s", v.Kind())
		}, nil
	case "lower", "upper":
		if len(args) != 1 {
			return nil, fmt.Errorf("eval: %s takes one argument", strings.ToUpper(name))
		}
		toUpper := name == "upper"
		return func(row schema.Row) (types.Value, error) {
			v, err := args[0](row)
			if err != nil || v.IsNull() {
				return v, err
			}
			if v.Kind() != types.KindString {
				return types.Null, fmt.Errorf("eval: %s on %s", strings.ToUpper(name), v.Kind())
			}
			if toUpper {
				return types.NewString(strings.ToUpper(v.Str())), nil
			}
			return types.NewString(strings.ToLower(v.Str())), nil
		}, nil
	case "substr", "substring":
		if len(args) != 2 && len(args) != 3 {
			return nil, fmt.Errorf("eval: SUBSTR takes two or three arguments")
		}
		return func(row schema.Row) (types.Value, error) {
			v, err := args[0](row)
			if err != nil || v.IsNull() {
				return v, err
			}
			if v.Kind() != types.KindString {
				return types.Null, fmt.Errorf("eval: SUBSTR on %s", v.Kind())
			}
			sv, err := args[1](row)
			if err != nil || sv.IsNull() {
				return types.Null, err
			}
			start := sv.Int() - 1 // SQL is 1-based
			str := v.Str()
			if start < 0 {
				start = 0
			}
			if start > int64(len(str)) {
				start = int64(len(str))
			}
			end := int64(len(str))
			if len(args) == 3 {
				lv, err := args[2](row)
				if err != nil || lv.IsNull() {
					return types.Null, err
				}
				end = start + lv.Int()
				if end < start {
					end = start
				}
				if end > int64(len(str)) {
					end = int64(len(str))
				}
			}
			return types.NewString(str[start:end]), nil
		}, nil
	case "length":
		if len(args) != 1 {
			return nil, fmt.Errorf("eval: LENGTH takes one argument")
		}
		return func(row schema.Row) (types.Value, error) {
			v, err := args[0](row)
			if err != nil || v.IsNull() {
				return v, err
			}
			if v.Kind() != types.KindString {
				return types.Null, fmt.Errorf("eval: LENGTH on %s", v.Kind())
			}
			return types.NewInt(int64(len(v.Str()))), nil
		}, nil
	}
	if IsAggregateName(name) {
		return nil, fmt.Errorf("eval: aggregate %s must be planned, not evaluated directly", strings.ToUpper(name))
	}
	return nil, fmt.Errorf("eval: unknown function %s", strings.ToUpper(name))
}

// IsAggregateName reports whether name is a supported aggregate function.
func IsAggregateName(name string) bool {
	switch strings.ToLower(name) {
	case "count", "sum", "avg", "min", "max":
		return true
	}
	return false
}

// EvalPredicate applies a compiled predicate to a row and reports whether
// it holds (NULL counts as not holding, per SQL WHERE semantics).
func EvalPredicate(f Func, row schema.Row) (bool, error) {
	v, err := f(row)
	if err != nil {
		return false, err
	}
	t, err := types.TruthOf(v)
	if err != nil {
		return false, err
	}
	return t == types.True, nil
}
