// Package eval compiles resolved sqlast expressions into executable form
// with SQL three-valued-logic semantics. Column references are resolved
// to ordinals once at compile time; the executor then evaluates
// predicates and projections with no per-row name lookups.
//
// Compile returns a *Compiled carrying two evaluation paths: the
// row-at-a-time closure (Eval) and, for every supported construct, a
// vectorized kernel (EvalBatch/TryBatch, see batch.go) that processes a
// whole morsel per call. Literal-only subexpressions are folded to
// constants at compile time. The two paths are guaranteed bit-identical
// in both values and errors.
//
// Aggregates and window functions are not handled here — the planner
// replaces them with references to computed columns before compiling.
package eval

import (
	"fmt"
	"strings"

	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/types"
)

// Func is a compiled expression's row-at-a-time form.
type Func func(row schema.Row) (types.Value, error)

// Env supplies name resolution and subquery evaluation to the compiler.
type Env struct {
	// Schema resolves column references.
	Schema *schema.Schema
	// SubEval evaluates an uncorrelated subquery used in IN/EXISTS,
	// returning the first output column's values. It is called once at
	// compile time; nil forbids subqueries.
	SubEval func(sqlast.Stmt) ([]types.Value, error)
}

// Compile translates e into an executable Compiled expression.
func Compile(e sqlast.Expr, env *Env) (*Compiled, error) {
	switch e := e.(type) {
	case nil:
		return nil, fmt.Errorf("eval: nil expression")
	case *sqlast.Const:
		return constCompiled(e.V), nil
	case *sqlast.ColRef:
		idx, err := env.Schema.Resolve(e.Table, e.Name)
		if err != nil {
			return nil, err
		}
		return Column(idx), nil
	case *sqlast.Bin:
		return compileBin(e, env)
	case *sqlast.Un:
		inner, err := Compile(e.E, env)
		if err != nil {
			return nil, err
		}
		c := &Compiled{}
		switch e.Op {
		case sqlast.OpNot:
			c.row = func(row schema.Row) (types.Value, error) {
				v, err := inner.row(row)
				if err != nil {
					return types.Null, err
				}
				t, err := types.TruthOf(v)
				if err != nil {
					return types.Null, err
				}
				return types.ValueOfTristate(types.Not(t)), nil
			}
			if inner.batch != nil {
				c.bbatch = triNot(inner)
				c.batch = batchFromTri(c.bbatch)
			}
		case sqlast.OpNeg:
			c.row = func(row schema.Row) (types.Value, error) {
				v, err := inner.row(row)
				if err != nil {
					return types.Null, err
				}
				if v.Kind() == types.KindInterval {
					return types.NewInterval(-v.IntervalUsec()), nil
				}
				return types.Arith(types.OpSub, types.NewInt(0), v)
			}
			if inner.batch != nil {
				c.batch = batchNeg(inner)
			}
		default:
			return nil, fmt.Errorf("eval: unknown unary operator")
		}
		return foldIfConst(c, inner.isConst), nil
	case *sqlast.IsNull:
		inner, err := Compile(e.E, env)
		if err != nil {
			return nil, err
		}
		neg := e.Neg
		c := &Compiled{row: func(row schema.Row) (types.Value, error) {
			v, err := inner.row(row)
			if err != nil {
				return types.Null, err
			}
			return types.NewBool(v.IsNull() != neg), nil
		}}
		if inner.batch != nil {
			c.bbatch = triIsNull(inner, neg)
			c.batch = batchFromTri(c.bbatch)
		}
		return foldIfConst(c, inner.isConst), nil
	case *sqlast.Case:
		return compileCase(e, env)
	case *sqlast.In:
		return compileIn(e, env)
	case *sqlast.Exists:
		if env.SubEval == nil {
			return nil, fmt.Errorf("eval: subqueries are not allowed in this context")
		}
		vals, err := env.SubEval(e.Sub)
		if err != nil {
			return nil, err
		}
		return constCompiled(types.NewBool((len(vals) > 0) != e.Neg)), nil
	case *sqlast.Like:
		return compileLike(e, env)
	case *sqlast.FuncCall:
		return compileScalarFunc(e, env)
	case *sqlast.WindowExpr:
		return nil, fmt.Errorf("eval: window function %s must be planned, not evaluated directly", e.Func)
	}
	return nil, fmt.Errorf("eval: unsupported expression %T", e)
}

func compileBin(e *sqlast.Bin, env *Env) (*Compiled, error) {
	l, err := Compile(e.L, env)
	if err != nil {
		return nil, err
	}
	r, err := Compile(e.R, env)
	if err != nil {
		return nil, err
	}
	op := e.Op
	c := &Compiled{}
	vectorizable := allVectorized(l, r)
	switch {
	case op == sqlast.OpAnd:
		c.row = func(row schema.Row) (types.Value, error) {
			lv, err := l.row(row)
			if err != nil {
				return types.Null, err
			}
			lt, err := types.TruthOf(lv)
			if err != nil {
				return types.Null, err
			}
			if lt == types.False {
				return types.NewBool(false), nil
			}
			rv, err := r.row(row)
			if err != nil {
				return types.Null, err
			}
			rt, err := types.TruthOf(rv)
			if err != nil {
				return types.Null, err
			}
			return types.ValueOfTristate(types.And(lt, rt)), nil
		}
		if vectorizable {
			c.bbatch = triAnd(l, r)
			c.batch = batchFromTri(c.bbatch)
		}
	case op == sqlast.OpOr:
		c.row = func(row schema.Row) (types.Value, error) {
			lv, err := l.row(row)
			if err != nil {
				return types.Null, err
			}
			lt, err := types.TruthOf(lv)
			if err != nil {
				return types.Null, err
			}
			if lt == types.True {
				return types.NewBool(true), nil
			}
			rv, err := r.row(row)
			if err != nil {
				return types.Null, err
			}
			rt, err := types.TruthOf(rv)
			if err != nil {
				return types.Null, err
			}
			return types.ValueOfTristate(types.Or(lt, rt)), nil
		}
		if vectorizable {
			c.bbatch = triOr(l, r)
			c.batch = batchFromTri(c.bbatch)
		}
	case op.IsComparison():
		c.row = func(row schema.Row) (types.Value, error) {
			lv, err := l.row(row)
			if err != nil {
				return types.Null, err
			}
			rv, err := r.row(row)
			if err != nil {
				return types.Null, err
			}
			if lv.IsNull() || rv.IsNull() {
				return types.Null, nil
			}
			cc, err := types.Compare(lv, rv)
			if err != nil {
				return types.Null, err
			}
			return types.NewBool(cmpHolds(op, cc)), nil
		}
		if vectorizable {
			c.bbatch = triCompare(op, l, r)
			c.batch = batchFromTri(c.bbatch)
		}
	case op.IsArith():
		var aop types.ArithOp
		switch op {
		case sqlast.OpAdd:
			aop = types.OpAdd
		case sqlast.OpSub:
			aop = types.OpSub
		case sqlast.OpMul:
			aop = types.OpMul
		case sqlast.OpDiv:
			aop = types.OpDiv
		}
		c.row = func(row schema.Row) (types.Value, error) {
			lv, err := l.row(row)
			if err != nil {
				return types.Null, err
			}
			rv, err := r.row(row)
			if err != nil {
				return types.Null, err
			}
			return types.Arith(aop, lv, rv)
		}
		if vectorizable {
			c.batch = batchArith(aop, l, r)
		}
	default:
		return nil, fmt.Errorf("eval: unsupported binary operator %v", op)
	}
	return foldIfConst(c, allConst(l, r)), nil
}

func cmpHolds(op sqlast.BinOp, c int) bool {
	switch op {
	case sqlast.OpEq:
		return c == 0
	case sqlast.OpNe:
		return c != 0
	case sqlast.OpLt:
		return c < 0
	case sqlast.OpLe:
		return c <= 0
	case sqlast.OpGt:
		return c > 0
	case sqlast.OpGe:
		return c >= 0
	}
	return false
}

// caseArm is one compiled WHEN/THEN pair.
type caseArm struct{ cond, then *Compiled }

func compileCase(e *sqlast.Case, env *Env) (*Compiled, error) {
	arms := make([]caseArm, len(e.Whens))
	armsConst, armsVector := true, true
	for i, w := range e.Whens {
		cond, err := Compile(w.Cond, env)
		if err != nil {
			return nil, err
		}
		then, err := Compile(w.Then, env)
		if err != nil {
			return nil, err
		}
		arms[i] = caseArm{cond, then}
		armsConst = armsConst && allConst(cond, then)
		armsVector = armsVector && allVectorized(cond, then)
	}
	var elseC *Compiled
	if e.Else != nil {
		f, err := Compile(e.Else, env)
		if err != nil {
			return nil, err
		}
		elseC = f
		armsConst = armsConst && f.isConst
		armsVector = armsVector && f.batch != nil
	}
	c := &Compiled{row: func(row schema.Row) (types.Value, error) {
		for _, a := range arms {
			cv, err := a.cond.row(row)
			if err != nil {
				return types.Null, err
			}
			t, err := types.TruthOf(cv)
			if err != nil {
				return types.Null, err
			}
			if t == types.True {
				return a.then.row(row)
			}
		}
		if elseC != nil {
			return elseC.row(row)
		}
		return types.Null, nil
	}}
	if armsVector {
		c.batch = batchCase(arms, elseC)
	}
	return foldIfConst(c, armsConst), nil
}

func compileIn(e *sqlast.In, env *Env) (*Compiled, error) {
	operand, err := Compile(e.E, env)
	if err != nil {
		return nil, err
	}
	var members []*Compiled
	var setHasNull bool
	set := map[string]struct{}{}
	if e.Sub != nil {
		if env.SubEval == nil {
			return nil, fmt.Errorf("eval: subqueries are not allowed in this context")
		}
		vals, err := env.SubEval(e.Sub)
		if err != nil {
			return nil, err
		}
		for _, v := range vals {
			if v.IsNull() {
				setHasNull = true
				continue
			}
			set[v.GroupKey()] = struct{}{}
		}
	} else {
		for _, m := range e.List {
			if cst, ok := m.(*sqlast.Const); ok {
				if cst.V.IsNull() {
					setHasNull = true
				} else {
					set[cst.V.GroupKey()] = struct{}{}
				}
				continue
			}
			f, err := Compile(m, env)
			if err != nil {
				return nil, err
			}
			members = append(members, f)
		}
	}
	neg := e.Neg
	c := &Compiled{row: func(row schema.Row) (types.Value, error) {
		v, err := operand.row(row)
		if err != nil {
			return types.Null, err
		}
		if v.IsNull() {
			return types.Null, nil
		}
		found := false
		if _, ok := set[v.GroupKey()]; ok {
			found = true
		}
		sawNull := setHasNull
		if !found {
			for _, m := range members {
				mv, err := m.row(row)
				if err != nil {
					return types.Null, err
				}
				if mv.IsNull() {
					sawNull = true
					continue
				}
				cc, err := types.Compare(v, mv)
				if err != nil {
					continue // mixed kinds never match
				}
				if cc == 0 {
					found = true
					break
				}
			}
		}
		switch {
		case found:
			return types.NewBool(!neg), nil
		case sawNull:
			return types.Null, nil
		default:
			return types.NewBool(neg), nil
		}
	}}
	// Only the compile-time member set vectorizes; IN with computed list
	// members keeps the row path (Vectorized() == false).
	if len(members) == 0 && operand.batch != nil {
		c.bbatch = triIn(operand, set, setHasNull, neg)
		c.batch = batchFromTri(c.bbatch)
	}
	return foldIfConst(c, len(members) == 0 && operand.isConst), nil
}

// compileLike implements SQL LIKE: % matches any run (including empty),
// _ matches exactly one byte. NULL operands yield NULL.
func compileLike(e *sqlast.Like, env *Env) (*Compiled, error) {
	operand, err := Compile(e.E, env)
	if err != nil {
		return nil, err
	}
	pattern, err := Compile(e.Pattern, env)
	if err != nil {
		return nil, err
	}
	neg := e.Neg
	c := &Compiled{row: func(row schema.Row) (types.Value, error) {
		v, err := operand.row(row)
		if err != nil {
			return types.Null, err
		}
		pv, err := pattern.row(row)
		if err != nil {
			return types.Null, err
		}
		if v.IsNull() || pv.IsNull() {
			return types.Null, nil
		}
		if v.Kind() != types.KindString || pv.Kind() != types.KindString {
			return types.Null, fmt.Errorf("eval: LIKE needs string operands")
		}
		return types.NewBool(likeMatch(v.Str(), pv.Str()) != neg), nil
	}}
	if allVectorized(operand, pattern) {
		c.bbatch = triLike(operand, pattern, neg)
		c.batch = batchFromTri(c.bbatch)
	}
	return foldIfConst(c, allConst(operand, pattern)), nil
}

// likeMatch matches s against a LIKE pattern with the classic iterative
// greedy two-pointer wildcard algorithm.
func likeMatch(s, pat string) bool {
	si, pi := 0, 0
	star, starS := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pat) && (pat[pi] == '_' || pat[pi] == s[si]):
			si++
			pi++
		case pi < len(pat) && pat[pi] == '%':
			star, starS = pi, si
			pi++
		case star >= 0:
			starS++
			si, pi = starS, star+1
		default:
			return false
		}
	}
	for pi < len(pat) && pat[pi] == '%' {
		pi++
	}
	return pi == len(pat)
}

func compileScalarFunc(e *sqlast.FuncCall, env *Env) (*Compiled, error) {
	name := strings.ToLower(e.Name)
	args := make([]*Compiled, len(e.Args))
	for i, a := range e.Args {
		f, err := Compile(a, env)
		if err != nil {
			return nil, err
		}
		args[i] = f
	}
	argsConst := allConst(args...)
	argsVector := allVectorized(args...)
	c := &Compiled{}
	switch name {
	case "coalesce":
		if len(args) == 0 {
			return nil, fmt.Errorf("eval: COALESCE needs at least one argument")
		}
		c.row = func(row schema.Row) (types.Value, error) {
			for _, f := range args {
				v, err := f.row(row)
				if err != nil {
					return types.Null, err
				}
				if !v.IsNull() {
					return v, nil
				}
			}
			return types.Null, nil
		}
		if argsVector {
			c.batch = batchCoalesce(args)
		}
	case "abs":
		if len(args) != 1 {
			return nil, fmt.Errorf("eval: ABS takes one argument")
		}
		c.row = func(row schema.Row) (types.Value, error) {
			v, err := args[0].row(row)
			if err != nil || v.IsNull() {
				return v, err
			}
			switch v.Kind() {
			case types.KindInt:
				if v.Int() < 0 {
					return types.NewInt(-v.Int()), nil
				}
				return v, nil
			case types.KindFloat:
				if v.Float() < 0 {
					return types.NewFloat(-v.Float()), nil
				}
				return v, nil
			case types.KindInterval:
				if v.IntervalUsec() < 0 {
					return types.NewInterval(-v.IntervalUsec()), nil
				}
				return v, nil
			}
			return types.Null, fmt.Errorf("eval: ABS on %s", v.Kind())
		}
		if argsVector {
			c.batch = batchAbs(args[0])
		}
	case "lower", "upper":
		if len(args) != 1 {
			return nil, fmt.Errorf("eval: %s takes one argument", strings.ToUpper(name))
		}
		toUpper := name == "upper"
		c.row = func(row schema.Row) (types.Value, error) {
			v, err := args[0].row(row)
			if err != nil || v.IsNull() {
				return v, err
			}
			if v.Kind() != types.KindString {
				return types.Null, fmt.Errorf("eval: %s on %s", strings.ToUpper(name), v.Kind())
			}
			if toUpper {
				return types.NewString(strings.ToUpper(v.Str())), nil
			}
			return types.NewString(strings.ToLower(v.Str())), nil
		}
		if argsVector {
			c.batch = batchCaseFold(args[0], toUpper)
		}
	case "substr", "substring":
		if len(args) != 2 && len(args) != 3 {
			return nil, fmt.Errorf("eval: SUBSTR takes two or three arguments")
		}
		c.row = func(row schema.Row) (types.Value, error) {
			v, err := args[0].row(row)
			if err != nil || v.IsNull() {
				return v, err
			}
			if v.Kind() != types.KindString {
				return types.Null, fmt.Errorf("eval: SUBSTR on %s", v.Kind())
			}
			sv, err := args[1].row(row)
			if err != nil || sv.IsNull() {
				return types.Null, err
			}
			start := sv.Int() - 1 // SQL is 1-based
			str := v.Str()
			if start < 0 {
				start = 0
			}
			if start > int64(len(str)) {
				start = int64(len(str))
			}
			end := int64(len(str))
			if len(args) == 3 {
				lv, err := args[2].row(row)
				if err != nil || lv.IsNull() {
					return types.Null, err
				}
				end = start + lv.Int()
				if end < start {
					end = start
				}
				if end > int64(len(str)) {
					end = int64(len(str))
				}
			}
			return types.NewString(str[start:end]), nil
		}
		if argsVector {
			c.batch = batchSubstr(args)
		}
	case "length":
		if len(args) != 1 {
			return nil, fmt.Errorf("eval: LENGTH takes one argument")
		}
		c.row = func(row schema.Row) (types.Value, error) {
			v, err := args[0].row(row)
			if err != nil || v.IsNull() {
				return v, err
			}
			if v.Kind() != types.KindString {
				return types.Null, fmt.Errorf("eval: LENGTH on %s", v.Kind())
			}
			return types.NewInt(int64(len(v.Str()))), nil
		}
		if argsVector {
			c.batch = batchLength(args[0])
		}
	default:
		if IsAggregateName(name) {
			return nil, fmt.Errorf("eval: aggregate %s must be planned, not evaluated directly", strings.ToUpper(name))
		}
		return nil, fmt.Errorf("eval: unknown function %s", strings.ToUpper(name))
	}
	return foldIfConst(c, argsConst), nil
}

// IsAggregateName reports whether name is a supported aggregate function.
func IsAggregateName(name string) bool {
	switch strings.ToLower(name) {
	case "count", "sum", "avg", "min", "max":
		return true
	}
	return false
}

// EvalPredicate applies a compiled predicate to a row and reports whether
// it holds (NULL counts as not holding, per SQL WHERE semantics).
func EvalPredicate(c *Compiled, row schema.Row) (bool, error) {
	v, err := c.row(row)
	if err != nil {
		return false, err
	}
	t, err := types.TruthOf(v)
	if err != nil {
		return false, err
	}
	return t == types.True, nil
}
