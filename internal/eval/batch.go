// Vectorized (batch) expression evaluation. Compile produces a Compiled
// expression carrying two executable forms: the row-at-a-time closure
// (Func, unchanged from the original engine) and, for every construct
// with a vector kernel, a BatchFunc that evaluates a whole morsel per
// call through a selection vector. Kernels amortize closure dispatch
// into tight loops; lazy constructs (AND/OR, CASE, COALESCE) keep their
// short-circuit semantics by narrowing the selection vector instead of
// branching per row.
//
// Kernels read from an Input — either materialized rows or a window of
// columnar segment vectors (see input.go). Over columnar inputs the hot
// comparison shapes (column vs literal) run directly on the typed
// arrays: int64 payloads, float64s, or dictionary codes, with the null
// bitmap consulted instead of boxing each cell.
//
// The contract is strict parity: the batch path returns byte-identical
// values to the row path, and identical errors. Kernels that hit any
// error abort without a result, and the caller re-runs the row path over
// the same selection so the error that surfaces is exactly the one serial
// execution would report first. Anything without a kernel (for example IN
// with non-constant list members) simply reports Vectorized() == false
// and evaluates through the row closure.
package eval

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/colvec"
	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/types"
)

// BatchFunc evaluates an expression for every position listed in sel,
// writing the result for position i into out[i]. Positions outside sel
// are left untouched. out must have at least in.Len() slots. Kernels
// require a non-nil selection; EvalBatch and TryBatch normalize nil to
// "all rows". A non-nil error means the batch produced no usable output
// and the caller must fall back to the row path for exact error
// reporting.
type BatchFunc func(in Input, out []types.Value, sel []int) error

// BoolBatchFunc is the predicate-specialized batch form: it writes one
// three-valued truth value per selected position into a byte vector.
// Boolean operators (comparisons, AND/OR/NOT, IS NULL, IN, LIKE) compose
// through it so a predicate tree never materializes intermediate
// []types.Value vectors — a tristate costs one byte and no GC write
// barrier, where a Value costs 48 bytes with pointer fields the collector
// must track.
type BoolBatchFunc func(in Input, dst []types.Tristate, sel []int) error

// Compiled is an executable expression produced by Compile. It is
// immutable and safe for concurrent use from any number of goroutines;
// kernels draw scratch space from pools rather than the receiver.
type Compiled struct {
	row     Func
	batch   BatchFunc
	bbatch  BoolBatchFunc // native tristate kernel for boolean-valued operators
	isConst bool
	constV  types.Value
	isCol   bool // bare column reference; kernels read the column in place
	colIdx  int
}

// Eval evaluates the expression row-at-a-time.
func (c *Compiled) Eval(row schema.Row) (types.Value, error) { return c.row(row) }

// Row exposes the row-at-a-time closure.
func (c *Compiled) Row() Func { return c.row }

// Vectorized reports whether the whole expression tree has vector
// kernels; when false, EvalBatch transparently uses the row path.
func (c *Compiled) Vectorized() bool { return c.batch != nil }

// ConstValue returns the compile-time value of a literal-only expression
// (after constant folding) and whether the expression is such a constant.
func (c *Compiled) ConstValue() (types.Value, bool) { return c.constV, c.isConst }

// EvalBatch evaluates the selected rows (sel == nil means all), writing
// out[i] for each selected i. Values and errors are guaranteed identical
// to evaluating the row closure over sel in order: any vector-path error
// triggers a row-path re-run, so the first serial error is what surfaces.
func (c *Compiled) EvalBatch(rows []schema.Row, out []types.Value, sel []int) error {
	if sel == nil {
		sel = identitySel(len(rows))
	}
	if c.batch != nil && c.batch(RowInput(rows), out, sel) == nil {
		return nil
	}
	for _, i := range sel {
		v, err := c.row(rows[i])
		if err != nil {
			return err
		}
		out[i] = v
	}
	return nil
}

// TryBatch runs the vector kernel and reports whether it produced a full
// result. False — no kernel, or the kernel hit an error — means out is
// unspecified and the caller must evaluate its original row loop, which
// reproduces serial behaviour (including interleaved non-expression
// errors) exactly.
func (c *Compiled) TryBatch(rows []schema.Row, out []types.Value, sel []int) bool {
	if c.batch == nil {
		return false
	}
	if sel == nil {
		sel = identitySel(len(rows))
	}
	return c.batch(RowInput(rows), out, sel) == nil
}

// FromFunc wraps a raw row closure as a Compiled with no vector kernel;
// tests and ad-hoc executor callers use it where they used to pass a bare
// Func.
func FromFunc(f Func) *Compiled { return &Compiled{row: f} }

// Column returns a compiled reference to column idx — the vectorized
// equivalent of func(r) { return r[idx], nil }.
func Column(idx int) *Compiled {
	return &Compiled{
		row:    func(row schema.Row) (types.Value, error) { return row[idx], nil },
		batch:  batchColumn(idx),
		isCol:  true,
		colIdx: idx,
	}
}

func constCompiled(v types.Value) *Compiled {
	return &Compiled{
		row:     func(schema.Row) (types.Value, error) { return v, nil },
		batch:   batchConst(v),
		isConst: true,
		constV:  v,
	}
}

// foldIfConst replaces c with a compile-time constant when every input is
// itself constant and evaluation succeeds. Expressions whose evaluation
// errors stay unfolded so the error still surfaces at run time, exactly
// as the row path reports it.
func foldIfConst(c *Compiled, inputsConst bool) *Compiled {
	if !inputsConst || c.isConst {
		return c
	}
	if v, err := c.row(nil); err == nil {
		return constCompiled(v)
	}
	return c
}

func allConst(cs ...*Compiled) bool {
	for _, c := range cs {
		if c != nil && !c.isConst {
			return false
		}
	}
	return true
}

func allVectorized(cs ...*Compiled) bool {
	for _, c := range cs {
		if c != nil && c.batch == nil {
			return false
		}
	}
	return true
}

// EvalPredicateBatch appends to dst the positions from sel (nil = all
// rows) where the predicate evaluates to TRUE — exactly the rows
// EvalPredicate keeps, with the identical first error on failure.
func EvalPredicateBatch(c *Compiled, rows []schema.Row, sel []int, dst []int) ([]int, error) {
	if sel == nil {
		sel = identitySel(len(rows))
	}
	base := len(dst)
	if bb := triOf(c); bb != nil {
		out, ok := tryPredicate(bb, RowInput(rows), sel, dst)
		if ok {
			return out, nil
		}
	}
	for _, i := range sel {
		ok, err := EvalPredicate(c, rows[i])
		if err != nil {
			return dst[:base], err
		}
		if ok {
			dst = append(dst, i)
		}
	}
	return dst, nil
}

// TryPredicateCols runs the predicate's vector kernels over a window
// [off, off+n) of columnar segment vectors, appending the
// window-relative positions where it evaluates TRUE to dst. It reports
// false — no kernel, or any kernel error — when the caller must
// materialize rows and use the row path instead; dst is unchanged in
// that case.
func TryPredicateCols(c *Compiled, cols []*colvec.Vec, off, n int, dst []int) ([]int, bool) {
	bb := triOf(c)
	if bb == nil {
		return dst, false
	}
	return tryPredicate(bb, ColInput(cols, off, n), identitySel(n), dst)
}

// tryPredicate runs a tristate kernel over in and appends TRUE positions
// to dst; ok is false (dst unchanged) on kernel error.
func tryPredicate(bb BoolBatchFunc, in Input, sel []int, dst []int) ([]int, bool) {
	tp := getTri(in.n)
	defer putTri(tp)
	if bb(in, *tp, sel) != nil {
		return dst, false
	}
	tv := *tp
	for _, i := range sel {
		if tv[i] == types.True {
			dst = append(dst, i)
		}
	}
	return dst, true
}

// ---- scratch pools ----

// batchAlloc sizes pooled scratch for the executor's morsel width; larger
// batches still work, the pool just reallocates.
const batchAlloc = 4096

var vecPool = sync.Pool{New: func() any { s := make([]types.Value, 0, batchAlloc); return &s }}

func getVec(n int) *[]types.Value {
	p := vecPool.Get().(*[]types.Value)
	if cap(*p) < n {
		*p = make([]types.Value, n)
	}
	*p = (*p)[:n]
	return p
}

func putVec(p *[]types.Value) { vecPool.Put(p) }

var triPool = sync.Pool{New: func() any { s := make([]types.Tristate, 0, batchAlloc); return &s }}

func getTri(n int) *[]types.Tristate {
	p := triPool.Get().(*[]types.Tristate)
	if cap(*p) < n {
		*p = make([]types.Tristate, n)
	}
	*p = (*p)[:n]
	return p
}

func putTri(p *[]types.Tristate) { triPool.Put(p) }

var selPool = sync.Pool{New: func() any { s := make([]int, 0, batchAlloc); return &s }}

func getSel() *[]int {
	p := selPool.Get().(*[]int)
	*p = (*p)[:0]
	return p
}

func putSel(p *[]int) { selPool.Put(p) }

// identitySel returns the shared selection vector {0, 1, ..., n-1}. The
// backing array only ever grows and existing elements never change, so
// returned slices stay valid for concurrent readers.
var (
	identityMu  sync.Mutex
	identityBuf []int
)

func identitySel(n int) []int {
	identityMu.Lock()
	defer identityMu.Unlock()
	for len(identityBuf) < n {
		identityBuf = append(identityBuf, len(identityBuf))
	}
	return identityBuf[:n]
}

// ---- operand sources ----
//
// Kernels bind each child to a source before their element loop:
// constants and bare column references are read in place — no scratch
// vector, no per-row Value copy, no write barrier — while computed
// children run their own kernel into pooled scratch exactly once. This
// is where batching beats the row path: the common rule-expression
// leaves (column vs literal) cost an index into the input, not a closure
// call.

const (
	srcConst uint8 = iota
	srcCol
	srcVec
)

type opSrc struct {
	kind uint8
	idx  int
	v    types.Value
	vec  []types.Value
	pool *[]types.Value
}

// bindSrc resolves child c over the selected positions. On error nothing
// is retained; otherwise the caller must release() the source.
func bindSrc(c *Compiled, in Input, sel []int) (opSrc, error) {
	if c.isConst {
		return opSrc{kind: srcConst, v: c.constV}, nil
	}
	if c.isCol {
		return opSrc{kind: srcCol, idx: c.colIdx}, nil
	}
	p := getVec(in.n)
	if err := c.batch(in, *p, sel); err != nil {
		putVec(p)
		return opSrc{}, err
	}
	return opSrc{kind: srcVec, vec: *p, pool: p}, nil
}

// at reads the operand's value for position i; i must be in the selection
// the source was bound with.
func (s *opSrc) at(in Input, i int) types.Value {
	switch s.kind {
	case srcConst:
		return s.v
	case srcCol:
		return in.value(i, s.idx)
	}
	return s.vec[i]
}

func (s *opSrc) release() {
	if s.pool != nil {
		putVec(s.pool)
	}
}

// triOf returns the boolean batch form of c: its native tristate kernel
// when the top operator is boolean, a constant fill for literals, or a
// TruthOf wrapper over the value kernel. nil when c has no vector kernel.
func triOf(c *Compiled) BoolBatchFunc {
	if c.bbatch != nil {
		return c.bbatch
	}
	if c.isConst {
		cv := c.constV
		return func(in Input, dst []types.Tristate, sel []int) error {
			t, err := types.TruthOf(cv)
			if err != nil {
				return err
			}
			for _, i := range sel {
				dst[i] = t
			}
			return nil
		}
	}
	if c.batch == nil {
		return nil
	}
	return func(in Input, dst []types.Tristate, sel []int) error {
		s, err := bindSrc(c, in, sel)
		if err != nil {
			return err
		}
		defer s.release()
		for _, i := range sel {
			t, err := types.TruthOf(s.at(in, i))
			if err != nil {
				return err
			}
			dst[i] = t
		}
		return nil
	}
}

// batchFromTri adapts a tristate kernel to the value-batch interface for
// the occasional context that consumes a predicate's result as a value.
func batchFromTri(bb BoolBatchFunc) BatchFunc {
	return func(in Input, out []types.Value, sel []int) error {
		tp := getTri(in.n)
		defer putTri(tp)
		if err := bb(in, *tp, sel); err != nil {
			return err
		}
		tv := *tp
		for _, i := range sel {
			out[i] = types.ValueOfTristate(tv[i])
		}
		return nil
	}
}

// ---- kernels ----
//
// Every kernel mirrors its row closure in eval.go operation for
// operation; the loops differ only in evaluating children over the whole
// selection before combining. Eager sub-evaluation can hit an error the
// serial path would not reach first (or at all, for lazily-skipped
// operands) — returning it aborts the batch and the caller's row-path
// fallback restores exact serial error semantics.

func batchConst(v types.Value) BatchFunc {
	return func(in Input, out []types.Value, sel []int) error {
		for _, i := range sel {
			out[i] = v
		}
		return nil
	}
}

func batchColumn(idx int) BatchFunc {
	return func(in Input, out []types.Value, sel []int) error {
		for _, i := range sel {
			out[i] = in.value(i, idx)
		}
		return nil
	}
}

// triAnd evaluates the left operand everywhere and the right operand
// only where the left is not FALSE — the same work the short-circuiting
// row closure does, expressed as selection-vector narrowing.
func triAnd(l, r *Compiled) BoolBatchFunc {
	lb, rb := triOf(l), triOf(r)
	return func(in Input, dst []types.Tristate, sel []int) error {
		if err := lb(in, dst, sel); err != nil {
			return err
		}
		restp := getSel()
		defer putSel(restp)
		rest := *restp
		for _, i := range sel {
			if dst[i] != types.False {
				rest = append(rest, i)
			}
		}
		*restp = rest
		if len(rest) == 0 {
			return nil
		}
		rp := getTri(in.n)
		defer putTri(rp)
		if err := rb(in, *rp, rest); err != nil {
			return err
		}
		rv := *rp
		for _, i := range rest {
			dst[i] = types.And(dst[i], rv[i])
		}
		return nil
	}
}

func triOr(l, r *Compiled) BoolBatchFunc {
	lb, rb := triOf(l), triOf(r)
	return func(in Input, dst []types.Tristate, sel []int) error {
		if err := lb(in, dst, sel); err != nil {
			return err
		}
		restp := getSel()
		defer putSel(restp)
		rest := *restp
		for _, i := range sel {
			if dst[i] != types.True {
				rest = append(rest, i)
			}
		}
		*restp = rest
		if len(rest) == 0 {
			return nil
		}
		rp := getTri(in.n)
		defer putTri(rp)
		if err := rb(in, *rp, rest); err != nil {
			return err
		}
		rv := *rp
		for _, i := range rest {
			dst[i] = types.Or(dst[i], rv[i])
		}
		return nil
	}
}

func triCompare(op sqlast.BinOp, l, r *Compiled) BoolBatchFunc {
	if l.isCol && r.isConst {
		return triCmpColConst(op, l.colIdx, r.constV, false)
	}
	if l.isConst && r.isCol {
		return triCmpColConst(op, r.colIdx, l.constV, true)
	}
	return func(in Input, dst []types.Tristate, sel []int) error {
		ls, err := bindSrc(l, in, sel)
		if err != nil {
			return err
		}
		defer ls.release()
		rs, err := bindSrc(r, in, sel)
		if err != nil {
			return err
		}
		defer rs.release()
		for _, i := range sel {
			a, b := ls.at(in, i), rs.at(in, i)
			if a.IsNull() || b.IsNull() {
				dst[i] = types.Unknown
				continue
			}
			c, err := types.Compare(a, b)
			if err != nil {
				return err
			}
			dst[i] = types.TristateOf(cmpHolds(op, c))
		}
		return nil
	}
}

// triCmpColConst is the dominant rule-expression comparison shape —
// column versus literal — with the types.Compare switch hoisted out of
// the loop. flipped means the literal was the left operand. Over
// columnar inputs the typed encodings compare raw int64 payloads, raw
// float64s, or dictionary codes with no boxing at all.
func triCmpColConst(op sqlast.BinOp, idx int, cv types.Value, flipped bool) BoolBatchFunc {
	if cv.IsNull() {
		return func(in Input, dst []types.Tristate, sel []int) error {
			for _, i := range sel {
				dst[i] = types.Unknown
			}
			return nil
		}
	}
	isInt := cv.Kind() == types.KindInt
	var cn int64
	if isInt {
		cn = cv.Int()
	}
	return func(in Input, dst []types.Tristate, sel []int) error {
		if vec, off := in.vec(idx); vec != nil {
			if cmpVecConst(op, vec, off, cv, flipped, dst, sel) {
				return nil
			}
		}
		for _, i := range sel {
			v := in.value(i, idx)
			if isInt && v.Kind() == types.KindInt {
				a, b := v.Int(), cn
				if flipped {
					a, b = b, a
				}
				dst[i] = types.TristateOf(cmpHoldsInt(op, a, b))
				continue
			}
			if v.IsNull() {
				dst[i] = types.Unknown
				continue
			}
			a, b := v, cv
			if flipped {
				a, b = b, a
			}
			c, err := types.Compare(a, b)
			if err != nil {
				return err
			}
			dst[i] = types.TristateOf(cmpHolds(op, c))
		}
		return nil
	}
}

// cmpVecConst compares a typed column vector window against a constant
// directly on the raw arrays, reporting whether the encoding/kind pair
// was handled. Results are identical to the boxed path: the int64 loop
// is cmpHoldsInt, the float loop reproduces types.Compare's float
// semantics (NaN compares "equal" to everything, so NaN rows answer
// exactly as the row path does), and the dictionary path precomputes one
// verdict per distinct string.
func cmpVecConst(op sqlast.BinOp, vec *colvec.Vec, off int, cv types.Value, flipped bool, dst []types.Tristate, sel []int) bool {
	switch vec.Encoding() {
	case colvec.EncInt64:
		k := vec.Kind()
		if k != cv.Kind() {
			// Int column vs float literal still has a raw path: the boxed
			// comparison is float64(int) against the literal's float.
			if k == types.KindInt && cv.Kind() == types.KindFloat {
				cmpVecFloatConst(op, vec.Int64s(), nil, vec, off, cv.Float(), flipped, dst, sel)
				return true
			}
			return false
		}
		switch k {
		case types.KindInt, types.KindTime, types.KindInterval, types.KindBool:
		default:
			return false
		}
		cn := cv.Raw()
		ints := vec.Int64s()
		if !vec.HasNulls() {
			for _, i := range sel {
				a, b := ints[off+i], cn
				if flipped {
					a, b = b, a
				}
				dst[i] = types.TristateOf(cmpHoldsInt(op, a, b))
			}
			return true
		}
		for _, i := range sel {
			if vec.Null(off + i) {
				dst[i] = types.Unknown
				continue
			}
			a, b := ints[off+i], cn
			if flipped {
				a, b = b, a
			}
			dst[i] = types.TristateOf(cmpHoldsInt(op, a, b))
		}
		return true
	case colvec.EncFloat:
		switch cv.Kind() {
		case types.KindFloat, types.KindInt:
			cmpVecFloatConst(op, nil, vec.Floats(), vec, off, cv.Float(), flipped, dst, sel)
			return true
		}
		return false
	case colvec.EncDict:
		if cv.Kind() != types.KindString {
			return false
		}
		// One comparison per distinct string, then a code-indexed lookup.
		dict := vec.Dict()
		verdict := make([]types.Tristate, len(dict))
		for c, s := range dict {
			cmp := strings.Compare(s, cv.Str())
			if flipped {
				cmp = -cmp
			}
			verdict[c] = types.TristateOf(cmpHolds(op, cmp))
		}
		codes := vec.Codes()
		for _, i := range sel {
			c := codes[off+i]
			if c < 0 {
				dst[i] = types.Unknown
				continue
			}
			dst[i] = verdict[c]
		}
		return true
	}
	return false
}

// cmpVecFloatConst runs a float comparison over either a raw float array
// or a raw int64 array widened per element (exactly what the boxed
// Compare does for mixed int/float operands).
func cmpVecFloatConst(op sqlast.BinOp, ints []int64, floats []float64, vec *colvec.Vec, off int, cf float64, flipped bool, dst []types.Tristate, sel []int) {
	for _, i := range sel {
		if vec.Null(off + i) {
			dst[i] = types.Unknown
			continue
		}
		var af float64
		if floats != nil {
			af = floats[off+i]
		} else {
			af = float64(ints[off+i])
		}
		// types.Compare float semantics: only < and > decide; NaN falls
		// through to 0 ("equal") on both sides.
		cmp := 0
		switch {
		case af < cf:
			cmp = -1
		case af > cf:
			cmp = 1
		}
		if flipped {
			cmp = -cmp
		}
		dst[i] = types.TristateOf(cmpHolds(op, cmp))
	}
}

// cmpHoldsInt is cmpHolds ∘ types.Compare for the INT/INT case, inlined
// into one branch.
func cmpHoldsInt(op sqlast.BinOp, a, b int64) bool {
	switch op {
	case sqlast.OpEq:
		return a == b
	case sqlast.OpNe:
		return a != b
	case sqlast.OpLt:
		return a < b
	case sqlast.OpLe:
		return a <= b
	case sqlast.OpGt:
		return a > b
	case sqlast.OpGe:
		return a >= b
	}
	return false
}

func batchArith(aop types.ArithOp, l, r *Compiled) BatchFunc {
	// Column ⊕ literal (either order) skips operand binding entirely.
	if l.isCol && r.isConst {
		idx, cv := l.colIdx, r.constV
		return func(in Input, out []types.Value, sel []int) error {
			for _, i := range sel {
				v, err := types.Arith(aop, in.value(i, idx), cv)
				if err != nil {
					return err
				}
				out[i] = v
			}
			return nil
		}
	}
	if l.isConst && r.isCol {
		cv, idx := l.constV, r.colIdx
		return func(in Input, out []types.Value, sel []int) error {
			for _, i := range sel {
				v, err := types.Arith(aop, cv, in.value(i, idx))
				if err != nil {
					return err
				}
				out[i] = v
			}
			return nil
		}
	}
	return func(in Input, out []types.Value, sel []int) error {
		ls, err := bindSrc(l, in, sel)
		if err != nil {
			return err
		}
		defer ls.release()
		rs, err := bindSrc(r, in, sel)
		if err != nil {
			return err
		}
		defer rs.release()
		for _, i := range sel {
			v, err := types.Arith(aop, ls.at(in, i), rs.at(in, i))
			if err != nil {
				return err
			}
			out[i] = v
		}
		return nil
	}
}

func triNot(inner *Compiled) BoolBatchFunc {
	ib := triOf(inner)
	return func(in Input, dst []types.Tristate, sel []int) error {
		if err := ib(in, dst, sel); err != nil {
			return err
		}
		for _, i := range sel {
			dst[i] = types.Not(dst[i])
		}
		return nil
	}
}

func batchNeg(inner *Compiled) BatchFunc {
	return func(in Input, out []types.Value, sel []int) error {
		s, err := bindSrc(inner, in, sel)
		if err != nil {
			return err
		}
		defer s.release()
		for _, i := range sel {
			v := s.at(in, i)
			if v.Kind() == types.KindInterval {
				out[i] = types.NewInterval(-v.IntervalUsec())
				continue
			}
			nv, err := types.Arith(types.OpSub, types.NewInt(0), v)
			if err != nil {
				return err
			}
			out[i] = nv
		}
		return nil
	}
}

func triIsNull(inner *Compiled, neg bool) BoolBatchFunc {
	return func(in Input, dst []types.Tristate, sel []int) error {
		s, err := bindSrc(inner, in, sel)
		if err != nil {
			return err
		}
		defer s.release()
		for _, i := range sel {
			dst[i] = types.TristateOf(s.at(in, i).IsNull() != neg)
		}
		return nil
	}
}

// batchCase evaluates each WHEN condition only over the rows no earlier
// arm matched and each THEN only over the rows its condition matched —
// the selection-vector form of the row closure's lazy arm evaluation.
func batchCase(arms []caseArm, elseC *Compiled) BatchFunc {
	conds := make([]BoolBatchFunc, len(arms))
	for i, a := range arms {
		conds[i] = triOf(a.cond)
	}
	return func(in Input, out []types.Value, sel []int) error {
		tp := getTri(in.n)
		defer putTri(tp)
		bufA, bufB, matchp := getSel(), getSel(), getSel()
		defer putSel(bufA)
		defer putSel(bufB)
		defer putSel(matchp)
		rem := append(*bufA, sel...)
		*bufA = rem
		spare := (*bufB)[:0]
		for ai, a := range arms {
			if len(rem) == 0 {
				break
			}
			if err := conds[ai](in, *tp, rem); err != nil {
				return err
			}
			tv := *tp
			match := (*matchp)[:0]
			next := spare[:0]
			for _, i := range rem {
				if tv[i] == types.True {
					match = append(match, i)
				} else {
					next = append(next, i)
				}
			}
			if len(match) > 0 {
				if err := a.then.batch(in, out, match); err != nil {
					return err
				}
			}
			*matchp = match
			spare = rem[:0]
			rem = next
		}
		if len(rem) == 0 {
			return nil
		}
		if elseC != nil {
			return elseC.batch(in, out, rem)
		}
		for _, i := range rem {
			out[i] = types.Null
		}
		return nil
	}
}

// triIn handles IN over a compile-time member set (literals or an
// uncorrelated subquery). It improves on the row closure by probing the
// set with a reused scratch key instead of allocating a string per row.
func triIn(operand *Compiled, set map[string]struct{}, setHasNull, neg bool) BoolBatchFunc {
	return func(in Input, dst []types.Tristate, sel []int) error {
		s, err := bindSrc(operand, in, sel)
		if err != nil {
			return err
		}
		defer s.release()
		var key []byte
		for _, i := range sel {
			v := s.at(in, i)
			if v.IsNull() {
				dst[i] = types.Unknown
				continue
			}
			key = v.AppendGroupKey(key[:0])
			_, found := set[string(key)]
			switch {
			case found:
				dst[i] = types.TristateOf(!neg)
			case setHasNull:
				dst[i] = types.Unknown
			default:
				dst[i] = types.TristateOf(neg)
			}
		}
		return nil
	}
}

func triLike(operand, pattern *Compiled, neg bool) BoolBatchFunc {
	return func(in Input, dst []types.Tristate, sel []int) error {
		vs, err := bindSrc(operand, in, sel)
		if err != nil {
			return err
		}
		defer vs.release()
		ps, err := bindSrc(pattern, in, sel)
		if err != nil {
			return err
		}
		defer ps.release()
		for _, i := range sel {
			v, p := vs.at(in, i), ps.at(in, i)
			if v.IsNull() || p.IsNull() {
				dst[i] = types.Unknown
				continue
			}
			if v.Kind() != types.KindString || p.Kind() != types.KindString {
				return errors.New("eval: LIKE needs string operands")
			}
			dst[i] = types.TristateOf(likeMatch(v.Str(), p.Str()) != neg)
		}
		return nil
	}
}

// batchCoalesce evaluates each argument only over the rows still NULL
// after the previous ones, mirroring the row closure's lazy scan.
func batchCoalesce(args []*Compiled) BatchFunc {
	return func(in Input, out []types.Value, sel []int) error {
		bufA, bufB := getSel(), getSel()
		defer putSel(bufA)
		defer putSel(bufB)
		rem := append(*bufA, sel...)
		*bufA = rem
		spare := (*bufB)[:0]
		for _, a := range args {
			if len(rem) == 0 {
				break
			}
			s, err := bindSrc(a, in, rem)
			if err != nil {
				return err
			}
			next := spare[:0]
			for _, i := range rem {
				if v := s.at(in, i); v.IsNull() {
					next = append(next, i)
				} else {
					out[i] = v
				}
			}
			s.release()
			spare = rem[:0]
			rem = next
		}
		for _, i := range rem {
			out[i] = types.Null
		}
		return nil
	}
}

func batchAbs(arg *Compiled) BatchFunc {
	return func(in Input, out []types.Value, sel []int) error {
		s, err := bindSrc(arg, in, sel)
		if err != nil {
			return err
		}
		defer s.release()
		for _, i := range sel {
			v := s.at(in, i)
			if v.IsNull() {
				out[i] = v
				continue
			}
			switch v.Kind() {
			case types.KindInt:
				if v.Int() < 0 {
					v = types.NewInt(-v.Int())
				}
			case types.KindFloat:
				if v.Float() < 0 {
					v = types.NewFloat(-v.Float())
				}
			case types.KindInterval:
				if v.IntervalUsec() < 0 {
					v = types.NewInterval(-v.IntervalUsec())
				}
			default:
				return fmt.Errorf("eval: ABS on %s", v.Kind())
			}
			out[i] = v
		}
		return nil
	}
}

func batchCaseFold(arg *Compiled, toUpper bool) BatchFunc {
	return func(in Input, out []types.Value, sel []int) error {
		s, err := bindSrc(arg, in, sel)
		if err != nil {
			return err
		}
		defer s.release()
		for _, i := range sel {
			v := s.at(in, i)
			if v.IsNull() {
				out[i] = v
				continue
			}
			if v.Kind() != types.KindString {
				name := "LOWER"
				if toUpper {
					name = "UPPER"
				}
				return fmt.Errorf("eval: %s on %s", name, v.Kind())
			}
			if toUpper {
				out[i] = types.NewString(strings.ToUpper(v.Str()))
			} else {
				out[i] = types.NewString(strings.ToLower(v.Str()))
			}
		}
		return nil
	}
}

func batchLength(arg *Compiled) BatchFunc {
	return func(in Input, out []types.Value, sel []int) error {
		s, err := bindSrc(arg, in, sel)
		if err != nil {
			return err
		}
		defer s.release()
		for _, i := range sel {
			v := s.at(in, i)
			if v.IsNull() {
				out[i] = v
				continue
			}
			if v.Kind() != types.KindString {
				return fmt.Errorf("eval: LENGTH on %s", v.Kind())
			}
			out[i] = types.NewInt(int64(len(v.Str())))
		}
		return nil
	}
}

// batchSubstr keeps the row closure's laziness: the start (and length)
// arguments are only evaluated where the string operand is non-NULL.
func batchSubstr(args []*Compiled) BatchFunc {
	return func(in Input, out []types.Value, sel []int) error {
		s0, err := bindSrc(args[0], in, sel)
		if err != nil {
			return err
		}
		defer s0.release()
		livep := getSel()
		defer putSel(livep)
		live := *livep
		for _, i := range sel {
			v := s0.at(in, i)
			if v.IsNull() {
				out[i] = v
				continue
			}
			if v.Kind() != types.KindString {
				return fmt.Errorf("eval: SUBSTR on %s", v.Kind())
			}
			live = append(live, i)
		}
		*livep = live
		if len(live) == 0 {
			return nil
		}
		s1, err := bindSrc(args[1], in, live)
		if err != nil {
			return err
		}
		defer s1.release()
		var s2 opSrc
		hasLen := false
		if len(args) == 3 {
			fullp := getSel()
			defer putSel(fullp)
			full := (*fullp)[:0]
			for _, i := range live {
				if s1.at(in, i).IsNull() {
					out[i] = types.Null
				} else {
					full = append(full, i)
				}
			}
			*fullp = full
			live = full
			if len(live) == 0 {
				return nil
			}
			s2, err = bindSrc(args[2], in, live)
			if err != nil {
				return err
			}
			defer s2.release()
			hasLen = true
		}
		for _, i := range live {
			v1 := s1.at(in, i)
			if v1.IsNull() {
				out[i] = types.Null
				continue
			}
			str := s0.at(in, i).Str()
			start := v1.Int() - 1 // SQL is 1-based
			if start < 0 {
				start = 0
			}
			if start > int64(len(str)) {
				start = int64(len(str))
			}
			end := int64(len(str))
			if hasLen {
				v2 := s2.at(in, i)
				if v2.IsNull() {
					out[i] = types.Null
					continue
				}
				end = start + v2.Int()
				if end < start {
					end = start
				}
				if end > int64(len(str)) {
					end = int64(len(str))
				}
			}
			out[i] = types.NewString(str[start:end])
		}
		return nil
	}
}
