package eval

import (
	"math/rand"
	"testing"

	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/sqlparser"
	"repro/internal/types"
)

var testSchema = schema.New(
	schema.Col("t", "a", types.KindInt),
	schema.Col("t", "b", types.KindInt),
	schema.Col("t", "s", types.KindString),
	schema.Col("t", "ts", types.KindTime),
)

func evalStr(t *testing.T, src string, row schema.Row) types.Value {
	t.Helper()
	e, err := sqlparser.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	f, err := Compile(e, &Env{Schema: testSchema})
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	v, err := f.Eval(row)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func row(a, b int64, s string, ts int64) schema.Row {
	return schema.Row{types.NewInt(a), types.NewInt(b), types.NewString(s), types.NewTime(ts)}
}

func TestArithmeticAndComparison(t *testing.T) {
	r := row(6, 2, "x", 0)
	cases := map[string]types.Value{
		"a + b":          types.NewInt(8),
		"a - b":          types.NewInt(4),
		"a * b":          types.NewInt(12),
		"a / b":          types.NewInt(3),
		"a > b":          types.NewBool(true),
		"a = 6":          types.NewBool(true),
		"a <> 6":         types.NewBool(false),
		"a + b * 2":      types.NewInt(10),
		"(a + b) * 2":    types.NewInt(16),
		"s = 'x'":        types.NewBool(true),
		"s < 'y'":        types.NewBool(true),
		"-a":             types.NewInt(-6),
		"abs(b - a)":     types.NewInt(4),
		"length(s)":      types.NewInt(1),
		"coalesce(a, b)": types.NewInt(6),
	}
	for src, want := range cases {
		if got := evalStr(t, src, r); !got.Equal(want) {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestNullSemantics(t *testing.T) {
	r := schema.Row{types.Null, types.NewInt(2), types.Null, types.Null}
	for _, src := range []string{"a = 1", "a > b", "a + b", "not (a = 1)", "-a"} {
		if got := evalStr(t, src, r); !got.IsNull() {
			t.Errorf("%q with null a = %v, want NULL", src, got)
		}
	}
	if got := evalStr(t, "a is null", r); !got.Bool() {
		t.Error("a is null should be true")
	}
	if got := evalStr(t, "b is not null", r); !got.Bool() {
		t.Error("b is not null should be true")
	}
	// 3VL short circuits.
	if got := evalStr(t, "a = 1 and 1 = 2", r); got.IsNull() || got.Bool() {
		t.Errorf("null and false = %v, want false", got)
	}
	if got := evalStr(t, "a = 1 or 1 = 1", r); got.IsNull() || !got.Bool() {
		t.Errorf("null or true = %v, want true", got)
	}
	if got := evalStr(t, "a = 1 or 1 = 2", r); !got.IsNull() {
		t.Errorf("null or false = %v, want NULL", got)
	}
	if got := evalStr(t, "coalesce(a, b)", r); got.Int() != 2 {
		t.Errorf("coalesce(null, 2) = %v", got)
	}
}

func TestInListSemantics(t *testing.T) {
	r := row(6, 2, "x", 0)
	if got := evalStr(t, "a in (1, 6, 9)", r); !got.Bool() {
		t.Error("6 in (1,6,9)")
	}
	if got := evalStr(t, "a not in (1, 6, 9)", r); got.Bool() {
		t.Error("6 not in (1,6,9)")
	}
	if got := evalStr(t, "a in (1, 2)", r); got.Bool() {
		t.Error("6 in (1,2)")
	}
	// SQL's famous null trap: x NOT IN (..., NULL, ...) is NULL when no
	// member matches.
	if got := evalStr(t, "a in (1, null)", r); !got.IsNull() {
		t.Errorf("6 in (1,NULL) = %v, want NULL", got)
	}
	if got := evalStr(t, "a in (6, null)", r); !got.Bool() {
		t.Error("6 in (6,NULL) should be true")
	}
	nullRow := schema.Row{types.Null, types.NewInt(2), types.Null, types.Null}
	if got := evalStr(t, "a in (1, 2)", nullRow); !got.IsNull() {
		t.Error("NULL in (...) should be NULL")
	}
	// Non-constant member expressions.
	if got := evalStr(t, "a in (b * 3, 99)", r); !got.Bool() {
		t.Error("6 in (2*3, 99) should be true")
	}
}

func TestCaseExpression(t *testing.T) {
	r := row(2, 0, "x", 0)
	got := evalStr(t, "case when a = 1 then 'one' when a = 2 then 'two' else 'many' end", r)
	if got.Str() != "two" {
		t.Errorf("case = %v", got)
	}
	got = evalStr(t, "case when a = 9 then 1 end", r)
	if !got.IsNull() {
		t.Errorf("case without else = %v, want NULL", got)
	}
	// Null condition arms are skipped, not taken.
	nr := schema.Row{types.Null, types.NewInt(1), types.Null, types.Null}
	got = evalStr(t, "case when a = 1 then 'y' else 'n' end", nr)
	if got.Str() != "n" {
		t.Errorf("case with null cond = %v", got)
	}
}

func TestSubqueryHooks(t *testing.T) {
	e, err := sqlparser.ParseExpr("a in (select x from sub)")
	if err != nil {
		t.Fatal(err)
	}
	env := &Env{
		Schema: testSchema,
		SubEval: func(sqlast.Stmt) ([]types.Value, error) {
			return []types.Value{types.NewInt(5), types.NewInt(6)}, nil
		},
	}
	f, err := Compile(e, env)
	if err != nil {
		t.Fatal(err)
	}
	v, err := f.Eval(row(6, 0, "", 0))
	if err != nil || !v.Bool() {
		t.Errorf("in subquery = %v, %v", v, err)
	}
	// Without a hook, subqueries are rejected at compile time.
	if _, err := Compile(e, &Env{Schema: testSchema}); err == nil {
		t.Error("expected error compiling subquery without SubEval")
	}
}

func TestExistsHook(t *testing.T) {
	e, err := sqlparser.ParseExpr("exists (select 1 from sub)")
	if err != nil {
		t.Fatal(err)
	}
	env := &Env{Schema: testSchema, SubEval: func(sqlast.Stmt) ([]types.Value, error) { return nil, nil }}
	f, err := Compile(e, env)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := f.Eval(row(1, 1, "", 0))
	if v.Bool() {
		t.Error("exists over empty set should be false")
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"nosuchcol",
		"t.nosuchcol",
		"nosuchfunc(a)",
		"sum(a)", // aggregate outside planner
		"max(a) over (order by b)",
		"coalesce()",
		"abs(a, b)",
	}
	for _, src := range bad {
		e, err := sqlparser.ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Compile(e, &Env{Schema: testSchema}); err == nil {
			t.Errorf("Compile(%q): expected error", src)
		}
	}
}

func TestRuntimeErrors(t *testing.T) {
	r := row(1, 0, "x", 0)
	e, _ := sqlparser.ParseExpr("a / b")
	f, err := Compile(e, &Env{Schema: testSchema})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Eval(r); err == nil {
		t.Error("division by zero should surface as an error")
	}
	// Comparing incompatible kinds errors at runtime.
	e2, _ := sqlparser.ParseExpr("a = s")
	f2, err := Compile(e2, &Env{Schema: testSchema})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Eval(r); err == nil {
		t.Error("int = string should error")
	}
}

func TestEvalPredicate(t *testing.T) {
	e, _ := sqlparser.ParseExpr("a > 5")
	f, _ := Compile(e, &Env{Schema: testSchema})
	ok, err := EvalPredicate(f, row(6, 0, "", 0))
	if err != nil || !ok {
		t.Errorf("pred(6>5) = %v, %v", ok, err)
	}
	ok, err = EvalPredicate(f, schema.Row{types.Null, types.Null, types.Null, types.Null})
	if err != nil || ok {
		t.Errorf("pred(NULL>5) = %v, %v (NULL must not pass WHERE)", ok, err)
	}
}

func TestTimeIntervalEval(t *testing.T) {
	r := row(0, 0, "", 10*60*1_000_000) // ts = 10 minutes after epoch
	got := evalStr(t, "ts - 5 minutes", r)
	if got.Kind() != types.KindTime || got.TimeUsec() != 5*60*1_000_000 {
		t.Errorf("ts - 5 minutes = %v", got)
	}
	got = evalStr(t, "ts - timestamp '1970-01-01 00:00:00'", r)
	if got.Kind() != types.KindInterval || got.IntervalUsec() != 10*60*1_000_000 {
		t.Errorf("ts - epoch = %v", got)
	}
	if got := evalStr(t, "ts - timestamp '1970-01-01' < 11 minutes", r); !got.Bool() {
		t.Error("interval comparison failed")
	}
}

func TestLikeMatchTable(t *testing.T) {
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"", "", true},
		{"", "%", true},
		{"", "_", false},
		{"a", "_", true},
		{"abc", "abc", true},
		{"abc", "a%", true},
		{"abc", "%c", true},
		{"abc", "%b%", true},
		{"abc", "a_c", true},
		{"abc", "a_b", false},
		{"abc", "%%%", true},
		{"abc", "a%d", false},
		{"banana", "%ana", true},
		{"banana", "%ana%ana", false}, // overlapping anas don't double-count
		{"banana", "b%na", true},
		{"aaa", "a%a%a", true},
		{"ab", "a%a", false},
		{"résumé", "ré%mé", true}, // byte-wise but multi-byte safe here
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.pat); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.s, c.pat, got, c.want)
		}
	}
}

// Property: the iterative matcher agrees with a straightforward recursive
// reference implementation.
func TestLikeMatchAgainstRecursiveReference(t *testing.T) {
	var ref func(s, p string) bool
	ref = func(s, p string) bool {
		if p == "" {
			return s == ""
		}
		switch p[0] {
		case '%':
			for i := 0; i <= len(s); i++ {
				if ref(s[i:], p[1:]) {
					return true
				}
			}
			return false
		case '_':
			return s != "" && ref(s[1:], p[1:])
		default:
			return s != "" && s[0] == p[0] && ref(s[1:], p[1:])
		}
	}
	alphabet := "ab%_"
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 3000; i++ {
		s := randFrom(rng, "ab", 8)
		p := randFrom(rng, alphabet, 6)
		if got, want := likeMatch(s, p), ref(s, p); got != want {
			t.Fatalf("likeMatch(%q, %q) = %v, reference says %v", s, p, got, want)
		}
	}
}

func randFrom(rng *rand.Rand, alphabet string, maxLen int) string {
	n := rng.Intn(maxLen + 1)
	out := make([]byte, n)
	for i := range out {
		out[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(out)
}

func TestStringFunctionEdges(t *testing.T) {
	r := row(1, 2, "Hello", 0)
	cases := map[string]types.Value{
		"lower(s)":          types.NewString("hello"),
		"upper(s)":          types.NewString("HELLO"),
		"substr(s, 2)":      types.NewString("ello"),
		"substr(s, 2, 3)":   types.NewString("ell"),
		"substr(s, 99)":     types.NewString(""),
		"substr(s, 1, 99)":  types.NewString("Hello"),
		"substr(s, -5, 2)":  types.NewString("He"), // clamped start
		"substr(s, 3, -1)":  types.NewString(""),   // negative length clamps
		"s like 'He%'":      types.NewBool(true),
		"s not like 'He%'":  types.NewBool(false),
		"s like '_ello'":    types.NewBool(true),
		"s like 'he%'":      types.NewBool(false), // case sensitive
		"coalesce(null, s)": types.NewString("Hello"),
		"abs(-3 minutes)":   types.NewInterval(3 * 60 * 1_000_000),
	}
	for src, want := range cases {
		if got := evalStr(t, src, r); !got.Equal(want) {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestStringFunctionErrorsAndNulls(t *testing.T) {
	r := schema.Row{types.NewInt(1), types.NewInt(2), types.Null, types.Null}
	// NULL propagation.
	for _, src := range []string{"lower(s)", "upper(s)", "substr(s, 1)", "s like 'x'"} {
		if got := evalStr(t, src, r); !got.IsNull() {
			t.Errorf("%q on NULL = %v, want NULL", src, got)
		}
	}
	// Type errors at runtime.
	intRow := row(1, 2, "x", 0)
	for _, src := range []string{"lower(a)", "upper(a)", "substr(a, 1)", "a like 'x'", "length(a)"} {
		e, err := sqlparser.ParseExpr(src)
		if err != nil {
			t.Fatal(err)
		}
		f, err := Compile(e, &Env{Schema: testSchema})
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		if _, err := f.Eval(intRow); err == nil {
			t.Errorf("%q on INT should error", src)
		}
	}
	// Arity errors at compile time.
	for _, src := range []string{"lower()", "substr(s)", "substr(s,1,2,3)", "upper(s, s)"} {
		e, err := sqlparser.ParseExpr(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Compile(e, &Env{Schema: testSchema}); err == nil {
			t.Errorf("%q should fail to compile", src)
		}
	}
}
