package eval

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/types"
)

// exprGen emits random expression source over testSchema (a INT, b INT,
// s STRING, ts TIME), typed so that most expressions evaluate cleanly but
// runtime errors stay reachable (a/b divides by zero whenever b lands on
// 0, substr sees negative starts) — error parity is part of the contract.
type exprGen struct{ r *rand.Rand }

func (g *exprGen) intExpr(d int) string {
	if d <= 0 {
		switch g.r.Intn(5) {
		case 0:
			return "a"
		case 1:
			return "b"
		case 2:
			return "null"
		default:
			return fmt.Sprintf("%d", g.r.Intn(7)-3)
		}
	}
	switch g.r.Intn(8) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.intExpr(d-1), g.intExpr(d-1))
	case 1:
		return fmt.Sprintf("(%s - %s)", g.intExpr(d-1), g.intExpr(d-1))
	case 2:
		return fmt.Sprintf("(%s * %s)", g.intExpr(d-1), g.intExpr(d-1))
	case 3:
		return fmt.Sprintf("(%s / %s)", g.intExpr(d-1), g.intExpr(d-1))
	case 4:
		return fmt.Sprintf("(- %s)", g.intExpr(d-1))
	case 5:
		return fmt.Sprintf("abs(%s)", g.intExpr(d-1))
	case 6:
		return fmt.Sprintf("length(%s)", g.strExpr(d-1))
	default:
		return fmt.Sprintf("case when %s then %s when %s then %s else %s end",
			g.boolExpr(d-1), g.intExpr(d-1), g.boolExpr(d-1), g.intExpr(d-1), g.intExpr(d-1))
	}
}

func (g *exprGen) strExpr(d int) string {
	if d <= 0 {
		switch g.r.Intn(4) {
		case 0:
			return "s"
		case 1:
			return "null"
		default:
			return fmt.Sprintf("'%s'", []string{"", "x", "ab", "abc", "ZZ"}[g.r.Intn(5)])
		}
	}
	switch g.r.Intn(5) {
	case 0:
		return fmt.Sprintf("upper(%s)", g.strExpr(d-1))
	case 1:
		return fmt.Sprintf("lower(%s)", g.strExpr(d-1))
	case 2:
		return fmt.Sprintf("substr(%s, %s)", g.strExpr(d-1), g.intExpr(d-1))
	case 3:
		return fmt.Sprintf("substr(%s, %s, %s)", g.strExpr(d-1), g.intExpr(d-1), g.intExpr(d-1))
	default:
		return fmt.Sprintf("coalesce(%s, %s)", g.strExpr(d-1), g.strExpr(d-1))
	}
}

func (g *exprGen) boolExpr(d int) string {
	if d <= 0 {
		op := []string{"=", "<>", "<", "<=", ">", ">="}[g.r.Intn(6)]
		return fmt.Sprintf("(%s %s %s)", g.intExpr(0), op, g.intExpr(0))
	}
	switch g.r.Intn(8) {
	case 0:
		return fmt.Sprintf("(%s and %s)", g.boolExpr(d-1), g.boolExpr(d-1))
	case 1:
		return fmt.Sprintf("(%s or %s)", g.boolExpr(d-1), g.boolExpr(d-1))
	case 2:
		return fmt.Sprintf("(not %s)", g.boolExpr(d-1))
	case 3:
		return fmt.Sprintf("(%s is null)", g.intExpr(d-1))
	case 4:
		return fmt.Sprintf("(%s is not null)", g.strExpr(d-1))
	case 5:
		return fmt.Sprintf("(%s in (%s, %s, %s))", g.intExpr(d-1), g.intExpr(0), g.intExpr(0), g.intExpr(0))
	case 6:
		return fmt.Sprintf("(%s like '%s')", g.strExpr(d-1), []string{"a%", "%b", "_b%", "%", "ab"}[g.r.Intn(5)])
	default:
		op := []string{"=", "<>", "<", ">"}[g.r.Intn(4)]
		return fmt.Sprintf("(%s %s %s)", g.intExpr(d-1), op, g.intExpr(d-1))
	}
}

func (g *exprGen) randRow() schema.Row {
	iv := func() types.Value {
		if g.r.Intn(100) < 15 {
			return types.Null
		}
		return types.NewInt(int64(g.r.Intn(9) - 4))
	}
	sv := types.Null
	if g.r.Intn(100) >= 15 {
		sv = types.NewString([]string{"", "x", "ab", "abc", "aZ", "bbb"}[g.r.Intn(6)])
	}
	return schema.Row{iv(), iv(), sv, types.NewTime(int64(g.r.Intn(1000)))}
}

func sameValue(a, b types.Value) bool {
	return a.Kind() == b.Kind() && a.GroupKey() == b.GroupKey()
}

// TestBatchMatchesRowProperty cross-checks EvalBatch against the row path
// on randomly generated nested expressions (CASE, IN, LIKE, arithmetic,
// comparisons, boolean logic, scalar functions) over rows with NULLs:
// byte-identical values and identical errors, for full and partial
// selection vectors. Run with -race this also exercises the shared
// scratch pools from concurrent evaluations.
func TestBatchMatchesRowProperty(t *testing.T) {
	g := &exprGen{r: rand.New(rand.NewSource(7))}
	const exprs = 400
	const nrows = 96
	for n := 0; n < exprs; n++ {
		var src string
		if n%2 == 0 {
			src = g.intExpr(3)
		} else {
			src = g.boolExpr(3)
		}
		e, err := sqlparser.ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		c, err := Compile(e, &Env{Schema: testSchema})
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		rows := make([]schema.Row, nrows)
		for i := range rows {
			rows[i] = g.randRow()
		}
		// Full selection and a random sparse selection.
		sels := [][]int{nil}
		var sparse []int
		for i := 0; i < nrows; i++ {
			if g.r.Intn(3) == 0 {
				sparse = append(sparse, i)
			}
		}
		sels = append(sels, sparse)
		for _, sel := range sels {
			idx := sel
			if idx == nil {
				idx = make([]int, nrows)
				for i := range idx {
					idx[i] = i
				}
			}
			// Row path: first error in selection order wins.
			want := make([]types.Value, nrows)
			var wantErr error
			for _, i := range idx {
				v, err := c.Eval(rows[i])
				if err != nil {
					wantErr = err
					break
				}
				want[i] = v
			}
			out := make([]types.Value, nrows)
			gotErr := c.EvalBatch(rows, out, sel)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("%q: row err %v, batch err %v", src, wantErr, gotErr)
			}
			if wantErr != nil {
				if wantErr.Error() != gotErr.Error() {
					t.Fatalf("%q: row err %q, batch err %q", src, wantErr, gotErr)
				}
				continue
			}
			for _, i := range idx {
				if !sameValue(want[i], out[i]) {
					t.Fatalf("%q row %d (%v): row path %v, batch %v", src, i, rows[i], want[i], out[i])
				}
			}
		}
	}
}

// TestBatchKernelsExist pins vectorization coverage: the expression shapes
// the executor's hot paths rely on (rule-flag CASE payloads, IN lists,
// LIKE, arithmetic over columns) must compile to batch kernels, not fall
// back to the row closure.
func TestBatchKernelsExist(t *testing.T) {
	for _, src := range []string{
		"a",
		"a + b * 2",
		"a >= 3 and b < 2 or not (s = 'x')",
		"case when a > 0 then 1 when a < 0 then -1 else 0 end",
		"a in (1, 2, 3)",
		"s like 'ab%'",
		"upper(s)",
		"substr(s, 1, 2)",
		"coalesce(a, b, 0)",
		"abs(a - b)",
		"length(s)",
		"a is not null",
		"ts + interval '1' minute",
	} {
		e, err := sqlparser.ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		c, err := Compile(e, &Env{Schema: testSchema})
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		if !c.Vectorized() {
			t.Errorf("%q: no batch kernel", src)
		}
	}
}

// TestEvalPredicateBatchMatchesRow checks the selection-vector output of
// the batched predicate entry point against per-row EvalPredicate.
func TestEvalPredicateBatchMatchesRow(t *testing.T) {
	g := &exprGen{r: rand.New(rand.NewSource(11))}
	for n := 0; n < 200; n++ {
		src := g.boolExpr(3)
		e, err := sqlparser.ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		c, err := Compile(e, &Env{Schema: testSchema})
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		rows := make([]schema.Row, 64)
		for i := range rows {
			rows[i] = g.randRow()
		}
		var want []int
		var wantErr error
		for i, r := range rows {
			ok, err := EvalPredicate(c, r)
			if err != nil {
				wantErr = err
				break
			}
			if ok {
				want = append(want, i)
			}
		}
		got, gotErr := EvalPredicateBatch(c, rows, nil, nil)
		if (wantErr == nil) != (gotErr == nil) ||
			(wantErr != nil && wantErr.Error() != gotErr.Error()) {
			t.Fatalf("%q: row err %v, batch err %v", src, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("%q: row kept %v, batch kept %v", src, want, got)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%q: row kept %v, batch kept %v", src, want, got)
			}
		}
	}
}

// TestConstantFolding verifies literal-only subexpressions fold at compile
// time — the "1000 * 60" in every sliding-window rule used to compile to
// a per-row multiplication.
func TestConstantFolding(t *testing.T) {
	folds := map[string]types.Value{
		"1000 * 60":                              types.NewInt(60000),
		"(2 + 3) * 4":                            types.NewInt(20),
		"- (5 - 7)":                              types.NewInt(2),
		"case when 1 < 2 then 'x' else 'y' end":  types.NewString("x"),
		"'ab' like 'a%'":                         types.NewBool(true),
		"3 in (1, 2, 3)":                         types.NewBool(true),
		"upper('ab')":                            types.NewString("AB"),
		"length(substr('abcdef', 2, 3))":         types.NewInt(3),
		"coalesce(null, 42)":                     types.NewInt(42),
		"1 = 1 and 2 > 1":                        types.NewBool(true),
		"null is null":                           types.NewBool(true),
		"interval '1' minute + interval '2' second": types.NewInterval(62_000_000),
	}
	for src, want := range folds {
		e, err := sqlparser.ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		c, err := Compile(e, &Env{Schema: testSchema})
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		v, ok := c.ConstValue()
		if !ok {
			t.Errorf("%q: not folded to a constant", src)
			continue
		}
		if !sameValue(v, want) {
			t.Errorf("%q folded to %v, want %v", src, v, want)
		}
		// A folded expression still evaluates normally (nil row: no column
		// references remain by construction).
		got, err := c.Eval(nil)
		if err != nil || !sameValue(got, want) {
			t.Errorf("%q Eval = %v, %v; want %v", src, got, err, want)
		}
	}

	// Column references block folding.
	for _, src := range []string{"a + 1", "case when a > 0 then 1 else 0 end", "s like 'a%'"} {
		e, err := sqlparser.ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		c, err := Compile(e, &Env{Schema: testSchema})
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		if _, ok := c.ConstValue(); ok {
			t.Errorf("%q: folded despite column reference", src)
		}
	}

	// Erroring literal expressions stay unfolded and fail at run time with
	// the row path's message.
	e, err := sqlparser.ParseExpr("1 / 0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(e, &Env{Schema: testSchema})
	if err != nil {
		t.Fatalf("compile 1/0: %v (must defer the error to run time)", err)
	}
	if _, ok := c.ConstValue(); ok {
		t.Error("1/0 folded to a constant")
	}
	if _, err := c.Eval(nil); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("1/0 eval err = %v, want division by zero", err)
	}
}
