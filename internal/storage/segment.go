package storage

import (
	"math"
	"sync"

	"repro/internal/colvec"
	"repro/internal/schema"
	"repro/internal/types"
)

// ZoneMap summarizes one column of one sealed segment for scan pruning.
type ZoneMap struct {
	// Min and Max bound the column's non-null values in this segment
	// (NaN floats excluded); both Null when the segment has no usable
	// non-null values.
	Min, Max types.Value
	// NullCount is the number of NULLs in this segment's column.
	NullCount int
	// HasNaN disables pruning on this column: NaN breaks the ordering
	// min/max relies on (it compares as equal to everything).
	HasNaN bool
	// Mixed disables pruning when the column holds incomparable kinds.
	Mixed bool
}

// ZonePred is a pushed-down range predicate the scan operator checks
// against segment zone maps: rows can match only where the column's
// [Min, Max] intersects the bounds.
type ZonePred struct {
	Col    int
	Bounds Bounds
}

// Segment is one horizontal slice of a table: sealed segments are
// immutable columnar vectors with zone maps; the tail segment is the
// mutable row-form buffer Append writes into. Sealed segments memoize
// their row materialization on first use, so repeated full scans pay the
// boxing cost once per segment, not once per query.
type Segment struct {
	// Base is the table-wide row ID of this segment's first row.
	Base   int
	n      int
	sealed bool

	cols []*colvec.Vec // per-column vectors; sealed segments only
	zone []ZoneMap     // per-column zone maps; sealed segments only

	rows     []schema.Row // tail: live rows; sealed: memoized materialization
	rowsOnce sync.Once
}

// Len returns the segment's row count.
func (s *Segment) Len() int { return s.n }

// Sealed reports whether the segment is an immutable columnar segment
// (true) or the mutable row-form tail (false).
func (s *Segment) Sealed() bool { return s.sealed }

// Col returns the column vector for ordinal ord, or nil for the tail.
func (s *Segment) Col(ord int) *colvec.Vec {
	if !s.sealed {
		return nil
	}
	return s.cols[ord]
}

// Cols returns the segment's column vectors (nil for the tail).
func (s *Segment) Cols() []*colvec.Vec { return s.cols }

// Zone returns the column's zone map; the zero ZoneMap (never prunable)
// for the tail.
func (s *Segment) Zone(ord int) ZoneMap {
	if !s.sealed {
		return ZoneMap{Mixed: true}
	}
	return s.zone[ord]
}

// Value reads one cell without materializing the row.
func (s *Segment) Value(ord, i int) types.Value {
	if !s.sealed {
		return s.rows[i][ord]
	}
	return s.cols[ord].Value(i)
}

// Rows returns the segment as materialized rows. For the tail this is the
// live buffer; for sealed segments the rows are built from the column
// vectors once and memoized (they are immutable and shared by every
// subsequent caller).
func (s *Segment) Rows() []schema.Row {
	if !s.sealed {
		return s.rows
	}
	s.rowsOnce.Do(func() {
		ncols := len(s.cols)
		rows := make([]schema.Row, s.n)
		flat := make([]types.Value, s.n*ncols)
		for i := 0; i < s.n; i++ {
			rows[i] = flat[i*ncols : (i+1)*ncols : (i+1)*ncols]
		}
		for ord, vec := range s.cols {
			for i := 0; i < s.n; i++ {
				rows[i][ord] = vec.Value(i)
			}
		}
		s.rows = rows
	})
	return s.rows
}

// Row materializes a single row (memoizing the whole segment when sealed).
func (s *Segment) Row(i int) schema.Row { return s.Rows()[i] }

// MemBytes estimates the segment's columnar heap footprint (the memoized
// row cache is excluded — it is a derived view).
func (s *Segment) MemBytes() int64 {
	var b int64
	for _, c := range s.cols {
		b += c.MemBytes()
	}
	if !s.sealed {
		// Row-form tail: slice headers plus boxed values.
		for _, r := range s.rows {
			b += 24 + int64(len(r))*48
		}
	}
	return b
}

// CanMatch reports whether any row of this segment could satisfy the
// pushed-down range predicate. False means the whole segment is skipped;
// correctness requires only that false is never returned when a matching
// row exists, so every uncertain case (tail, NaN, mixed kinds,
// incomparable bound) answers true.
func (s *Segment) CanMatch(p ZonePred) bool {
	if !s.sealed || p.Col < 0 || p.Col >= len(s.zone) {
		return true
	}
	z := s.zone[p.Col]
	if z.HasNaN || z.Mixed {
		return true
	}
	// A column that is entirely NULL in this segment can never satisfy a
	// range predicate: comparisons with NULL are UNKNOWN, and WHERE keeps
	// only TRUE.
	if z.NullCount == s.n || z.Min.IsNull() {
		return false
	}
	b := p.Bounds
	if b.Equals != nil {
		v := *b.Equals
		b = Bounds{Lo: &v, LoIncl: true, Hi: &v, HiIncl: true}
	}
	if b.Lo != nil {
		c, err := types.Compare(z.Max, *b.Lo)
		if err != nil {
			return true
		}
		if c < 0 || (c == 0 && !b.LoIncl) {
			return false
		}
	}
	if b.Hi != nil {
		c, err := types.Compare(z.Min, *b.Hi)
		if err != nil {
			return true
		}
		if c > 0 || (c == 0 && !b.HiIncl) {
			return false
		}
	}
	return true
}

// CanMatchAll applies CanMatch over a conjunction of zone predicates.
func (s *Segment) CanMatchAll(preds []ZonePred) bool {
	for _, p := range preds {
		if !s.CanMatch(p) {
			return false
		}
	}
	return true
}

// sealSegment columnarizes rows into an immutable segment with zone maps.
func sealSegment(base int, ncols int, rows []schema.Row) *Segment {
	seg := &Segment{Base: base, n: len(rows), sealed: true}
	seg.cols = make([]*colvec.Vec, ncols)
	seg.zone = make([]ZoneMap, ncols)
	for ord := 0; ord < ncols; ord++ {
		b := colvec.NewBuilder(len(rows))
		z := ZoneMap{Min: types.Null, Max: types.Null}
		for _, r := range rows {
			v := r[ord]
			b.Append(v)
			if v.IsNull() {
				z.NullCount++
				continue
			}
			if v.Kind() == types.KindFloat && math.IsNaN(v.Float()) {
				z.HasNaN = true
				continue
			}
			if z.Min.IsNull() {
				z.Min, z.Max = v, v
				continue
			}
			if c, err := types.Compare(v, z.Min); err != nil {
				z.Mixed = true
			} else if c < 0 {
				z.Min = v
			}
			if c, err := types.Compare(v, z.Max); err != nil {
				z.Mixed = true
			} else if c > 0 {
				z.Max = v
			}
		}
		seg.cols[ord] = b.Build()
		seg.zone[ord] = z
	}
	return seg
}
