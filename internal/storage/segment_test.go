package storage

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/colvec"
	"repro/internal/schema"
	"repro/internal/types"
)

// withSegmentRows shrinks the sealing threshold for the duration of one
// test so tables split into many segments on small data.
func withSegmentRows(t *testing.T, n int) {
	t.Helper()
	old := DefaultSegmentRows
	DefaultSegmentRows = n
	t.Cleanup(func() { DefaultSegmentRows = old })
}

func iv(v int64) types.Value { return types.NewInt(v) }

func intSchema(name string) *schema.Schema {
	return schema.New(schema.Col("t", name, types.KindInt))
}

func zonePred(col int, lo, hi *types.Value, loIncl, hiIncl bool) ZonePred {
	return ZonePred{Col: col, Bounds: Bounds{Lo: lo, LoIncl: loIncl, Hi: hi, HiIncl: hiIncl}}
}

func TestSealingAndRowAccess(t *testing.T) {
	withSegmentRows(t, 4)
	tab := NewTable("t", intSchema("a"))
	for i := int64(0); i < 10; i++ {
		if err := tab.Append(schema.Row{iv(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := tab.SegmentCount(); got != 2 {
		t.Fatalf("sealed segments = %d, want 2", got)
	}
	if got := tab.RowCount(); got != 10 {
		t.Fatalf("row count = %d", got)
	}
	segs := tab.Segments()
	if len(segs) != 3 || segs[2].Sealed() {
		t.Fatalf("segments = %d (last sealed=%v), want 2 sealed + tail", len(segs), segs[len(segs)-1].Sealed())
	}
	if segs[1].Base != 4 || segs[2].Base != 8 {
		t.Fatalf("segment bases = %d,%d", segs[1].Base, segs[2].Base)
	}
	// RowAt, AllRows, and per-segment access all agree.
	all := tab.AllRows()
	for i := 0; i < 10; i++ {
		if all[i][0].Int() != int64(i) || tab.RowAt(i)[0].Int() != int64(i) {
			t.Fatalf("row %d: AllRows=%v RowAt=%v", i, all[i][0], tab.RowAt(i)[0])
		}
	}
	// Sealed segments memoize one row materialization.
	r1, r2 := segs[0].Rows(), segs[0].Rows()
	if &r1[0] != &r2[0] {
		t.Fatal("sealed segment rows not memoized")
	}
}

func TestZoneMapBounds(t *testing.T) {
	withSegmentRows(t, 4)
	tab := NewTable("t", intSchema("a"))
	for _, v := range []int64{3, 7, 5, 1} {
		tab.Append(schema.Row{iv(v)})
	}
	seg := tab.Segments()[0]
	z := seg.Zone(0)
	if z.Min.Int() != 1 || z.Max.Int() != 7 || z.NullCount != 0 {
		t.Fatalf("zone = min %v max %v nulls %d", z.Min, z.Max, z.NullCount)
	}

	lo, hi := iv(8), iv(0)
	if seg.CanMatch(zonePred(0, &lo, nil, true, false)) {
		t.Error("a >= 8 should prune a [1,7] segment")
	}
	if seg.CanMatch(zonePred(0, nil, &hi, false, true)) {
		t.Error("a <= 0 should prune a [1,7] segment")
	}
	// Boundary exclusivity: a > 7 prunes, a >= 7 does not.
	b := iv(7)
	if seg.CanMatch(zonePred(0, &b, nil, false, false)) {
		t.Error("a > 7 should prune a max=7 segment")
	}
	if !seg.CanMatch(zonePred(0, &b, nil, true, false)) {
		t.Error("a >= 7 must keep a max=7 segment")
	}
	eq := iv(4)
	if !seg.CanMatch(ZonePred{Col: 0, Bounds: Bounds{Equals: &eq}}) {
		t.Error("a = 4 must keep a [1,7] segment")
	}
	eq2 := iv(9)
	if seg.CanMatch(ZonePred{Col: 0, Bounds: Bounds{Equals: &eq2}}) {
		t.Error("a = 9 should prune a [1,7] segment")
	}
	// Out-of-range / incomparable predicates keep conservatively.
	sv := types.NewString("x")
	if !seg.CanMatch(zonePred(0, &sv, nil, true, false)) {
		t.Error("incomparable bound must keep the segment")
	}
	if !seg.CanMatch(ZonePred{Col: 99, Bounds: Bounds{Lo: &lo, LoIncl: true}}) {
		t.Error("out-of-range column ordinal must keep the segment")
	}
}

func TestZoneMapAllNullSegmentPrunes(t *testing.T) {
	withSegmentRows(t, 4)
	tab := NewTable("t", intSchema("a"))
	for i := 0; i < 4; i++ {
		tab.Append(schema.Row{types.Null})
	}
	seg := tab.Segments()[0]
	z := seg.Zone(0)
	if z.NullCount != 4 || !z.Min.IsNull() {
		t.Fatalf("all-null zone = %+v", z)
	}
	// NULL cmp anything is UNKNOWN; WHERE keeps only TRUE, so the whole
	// segment is skippable under any range predicate.
	lo := iv(0)
	if seg.CanMatch(zonePred(0, &lo, nil, true, false)) {
		t.Error("all-null segment should prune under a range predicate")
	}
}

func TestZoneMapNaNDisablesPruning(t *testing.T) {
	withSegmentRows(t, 4)
	s := &schema.Schema{Columns: []schema.Column{schema.Col("t", "f", types.KindFloat)}}
	tab := NewTable("t", s)
	for _, v := range []float64{1.5, math.NaN(), 2.5, 3.5} {
		tab.Append(schema.Row{types.NewFloat(v)})
	}
	seg := tab.Segments()[0]
	z := seg.Zone(0)
	if !z.HasNaN {
		t.Fatalf("zone missed the NaN: %+v", z)
	}
	// NaN compares as equal to everything in this engine's Compare, so
	// min/max ordering is unreliable: never prune.
	lo := types.NewFloat(100)
	if !seg.CanMatch(zonePred(0, &lo, nil, true, false)) {
		t.Error("NaN-bearing segment must never be pruned")
	}
}

func TestZoneMapMixedKindsDisablePruning(t *testing.T) {
	withSegmentRows(t, 4)
	tab := NewTable("t", intSchema("a"))
	tab.Append(
		schema.Row{iv(1)},
		schema.Row{types.NewString("x")},
		schema.Row{iv(2)},
		schema.Row{iv(3)},
	)
	seg := tab.Segments()[0]
	if !seg.Zone(0).Mixed {
		t.Fatalf("mixed-kind zone = %+v", seg.Zone(0))
	}
	lo := iv(100)
	if !seg.CanMatch(zonePred(0, &lo, nil, true, false)) {
		t.Error("mixed-kind segment must never be pruned")
	}
}

func TestTailSegmentNeverPrunes(t *testing.T) {
	withSegmentRows(t, 100)
	tab := NewTable("t", intSchema("a"))
	tab.Append(schema.Row{iv(1)}, schema.Row{iv(2)})
	seg := tab.Segments()[0]
	if seg.Sealed() {
		t.Fatal("two rows under a 100-row threshold must be the tail")
	}
	lo := iv(50)
	if !seg.CanMatch(zonePred(0, &lo, nil, true, false)) {
		t.Error("tail segment must never be pruned")
	}
}

func TestDictionaryOverflowToPlainStrings(t *testing.T) {
	withSegmentRows(t, 2048)
	s := &schema.Schema{Columns: []schema.Column{schema.Col("t", "s", types.KindString)}}
	tab := NewTable("t", s)
	// More distinct values than colvec.DictMaxCard forces the builder
	// off the dictionary encoding onto plain strings.
	n := colvec.DictMaxCard + 512
	if n > 2048 {
		t.Fatalf("test assumes DictMaxCard+512 <= segment size, got %d", n)
	}
	for i := 0; i < 2048; i++ {
		tab.Append(schema.Row{types.NewString(fmt.Sprintf("epc-%06d", i%n))})
	}
	seg := tab.Segments()[0]
	vec := seg.Col(0)
	if vec.Encoding() != colvec.EncStr {
		t.Fatalf("encoding = %v, want EncStr overflow", vec.Encoding())
	}
	// Values round-trip bit-exactly and the zone map still bounds them.
	for i := 0; i < 2048; i++ {
		want := fmt.Sprintf("epc-%06d", i%n)
		if got := seg.Value(0, i); got.Str() != want {
			t.Fatalf("value %d = %q, want %q", i, got.Str(), want)
		}
	}
	z := seg.Zone(0)
	if z.Min.Str() != "epc-000000" || z.Max.Str() != fmt.Sprintf("epc-%06d", n-1) {
		t.Fatalf("zone = [%v, %v]", z.Min, z.Max)
	}
	hi := types.NewString("epc-")
	if seg.CanMatch(zonePred(0, nil, &hi, true, true)) {
		t.Error("s <= 'epc-' should prune an overflowed string segment")
	}
}

func TestDictionaryEncodingUnderThreshold(t *testing.T) {
	withSegmentRows(t, 64)
	s := &schema.Schema{Columns: []schema.Column{schema.Col("t", "s", types.KindString)}}
	tab := NewTable("t", s)
	locs := []string{"dock", "shelf", "backroom"}
	for i := 0; i < 64; i++ {
		tab.Append(schema.Row{types.NewString(locs[i%3])})
	}
	vec := tab.Segments()[0].Col(0)
	if vec.Encoding() != colvec.EncDict {
		t.Fatalf("encoding = %v, want EncDict", vec.Encoding())
	}
	if got := len(vec.Dict()); got != 3 {
		t.Fatalf("dictionary cardinality = %d", got)
	}
}
