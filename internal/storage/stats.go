package storage

import (
	"math"

	"repro/internal/types"
)

// ColStats summarizes one column for the planner's cardinality model.
type ColStats struct {
	// NonNull is the number of non-null values.
	NonNull int
	// Distinct estimates the number of distinct non-null values.
	Distinct int
	// Min and Max bound the non-null values when the column is ordered
	// (int, float, time, interval); both are Null otherwise.
	Min, Max types.Value
}

// Analyze computes statistics for every column. The distinct estimate is
// exact (hash-based); at the scales this engine targets that is cheap and
// removes one source of noise from plan choices.
func (t *Table) Analyze() {
	segs := t.Segments()
	for ord := range t.Schema.Columns {
		st := &ColStats{Min: types.Null, Max: types.Null}
		seen := make(map[string]struct{})
		for _, seg := range segs {
			for i := 0; i < seg.Len(); i++ {
				v := seg.Value(ord, i)
				if v.IsNull() {
					continue
				}
				st.NonNull++
				seen[v.GroupKey()] = struct{}{}
				if st.Min.IsNull() {
					st.Min, st.Max = v, v
					continue
				}
				if c, err := types.Compare(v, st.Min); err == nil && c < 0 {
					st.Min = v
				}
				if c, err := types.Compare(v, st.Max); err == nil && c > 0 {
					st.Max = v
				}
			}
		}
		st.Distinct = len(seen)
		t.stats[ord] = st
	}
}

// Stats returns the statistics for a column ordinal, or nil when Analyze
// has not run.
func (t *Table) Stats(ord int) *ColStats {
	return t.stats[ord]
}

// RangeSelectivity estimates the fraction of rows selected by a range
// predicate on this column assuming a uniform distribution between Min and
// Max. It returns a default when statistics are unavailable.
func (s *ColStats) RangeSelectivity(lo, hi *types.Value) float64 {
	const fallback = 1.0 / 3
	if s == nil || s.NonNull == 0 || s.Min.IsNull() {
		return fallback
	}
	minF, ok1 := asFloat(s.Min)
	maxF, ok2 := asFloat(s.Max)
	if !ok1 || !ok2 || maxF <= minF {
		return fallback
	}
	loF, hiF := minF, maxF
	if lo != nil {
		if f, ok := asFloat(*lo); ok {
			loF = math.Max(loF, f)
		}
	}
	if hi != nil {
		if f, ok := asFloat(*hi); ok {
			hiF = math.Min(hiF, f)
		}
	}
	if hiF <= loF {
		return 0
	}
	return (hiF - loF) / (maxF - minF)
}

// EqSelectivity estimates the fraction of rows selected by an equality
// predicate on this column.
func (s *ColStats) EqSelectivity() float64 {
	if s == nil || s.Distinct == 0 {
		return 0.1
	}
	return 1.0 / float64(s.Distinct)
}

// DistinctAfter estimates the number of distinct values remaining when a
// uniform random subset of n of the column's rows is kept, using the
// standard Cardenas formula d·(1−(1−1/d)^n). This drives the join-back
// cost model: a selective predicate correlated with the cluster key keeps
// the relevant-sequence set small (§6.2 of the paper).
func (s *ColStats) DistinctAfter(n float64) float64 {
	if s == nil || s.Distinct == 0 {
		return n
	}
	d := float64(s.Distinct)
	if n <= 0 {
		return 0
	}
	return d * (1 - math.Pow(1-1/d, n))
}

func asFloat(v types.Value) (float64, bool) {
	switch v.Kind() {
	case types.KindInt, types.KindTime, types.KindInterval:
		return float64(v.Raw()), true
	case types.KindFloat:
		return v.Float(), true
	}
	return 0, false
}
