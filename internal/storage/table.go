// Package storage provides the in-memory table store: append-only row
// tables with optional sorted per-column indexes and lightweight
// statistics (row count, distinct-value estimate, min/max) consumed by the
// planner's cardinality model. It stands in for the disk/bufferpool layer
// of the DBMS the paper ran on; all rewrite strategies in the benchmarks
// run against the same store, so relative comparisons carry over.
package storage

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/schema"
	"repro/internal/types"
)

// Table is an in-memory relation with optional sorted indexes.
type Table struct {
	Name    string
	Schema  *schema.Schema
	Rows    []schema.Row
	indexes map[int]*Index // column ordinal -> index
	stats   map[int]*ColStats
}

// NewTable creates an empty table.
func NewTable(name string, s *schema.Schema) *Table {
	return &Table{
		Name:    strings.ToLower(name),
		Schema:  s,
		indexes: map[int]*Index{},
		stats:   map[int]*ColStats{},
	}
}

// Append adds rows to the table. Indexes and statistics become stale and
// must be refreshed with BuildIndex / Analyze; the loader pattern in this
// repo is bulk-load then index, matching the paper's load-then-query
// experiments.
func (t *Table) Append(rows ...schema.Row) error {
	for _, r := range rows {
		if len(r) != t.Schema.Len() {
			return fmt.Errorf("storage: row arity %d does not match schema %d for table %s", len(r), t.Schema.Len(), t.Name)
		}
	}
	t.Rows = append(t.Rows, rows...)
	return nil
}

// RowCount returns the number of rows.
func (t *Table) RowCount() int { return len(t.Rows) }

// Index is a sorted (value, rowID) list over one column. NULLs are
// excluded: SQL predicates never select them from an index range scan.
type Index struct {
	Column  int
	entries []indexEntry
}

type indexEntry struct {
	v   types.Value
	row int32
}

// BuildIndex builds (or rebuilds) a sorted index on the named column.
func (t *Table) BuildIndex(column string) error {
	ord := t.Schema.IndexOf(column)
	if ord < 0 {
		return fmt.Errorf("storage: no column %q in table %s", column, t.Name)
	}
	idx := &Index{Column: ord}
	idx.entries = make([]indexEntry, 0, len(t.Rows))
	for i, r := range t.Rows {
		if r[ord].IsNull() {
			continue
		}
		idx.entries = append(idx.entries, indexEntry{v: r[ord], row: int32(i)})
	}
	sort.SliceStable(idx.entries, func(a, b int) bool {
		c, err := types.Compare(idx.entries[a].v, idx.entries[b].v)
		if err != nil {
			// Mixed-kind columns are a schema violation; order arbitrarily.
			return false
		}
		return c < 0
	})
	t.indexes[ord] = idx
	return nil
}

// IndexOn returns the index on the named column, or nil.
func (t *Table) IndexOn(column string) *Index {
	ord := t.Schema.IndexOf(column)
	if ord < 0 {
		return nil
	}
	return t.indexes[ord]
}

// HasIndex reports whether an index exists on the column ordinal.
func (t *Table) HasIndex(ord int) bool { return t.indexes[ord] != nil }

// IndexByOrdinal returns the index on the column ordinal, or nil.
func (t *Table) IndexByOrdinal(ord int) *Index { return t.indexes[ord] }

// Bounds describe a one-sided or two-sided range on an indexed column.
// Nil pointers mean unbounded on that side.
type Bounds struct {
	Lo     *types.Value
	LoIncl bool
	Hi     *types.Value
	HiIncl bool
	Equals *types.Value // exact-match lookup; overrides Lo/Hi
}

// Scan returns the row IDs whose column value falls inside b, in index
// (value) order.
func (ix *Index) Scan(b Bounds) []int32 {
	if b.Equals != nil {
		v := *b.Equals
		b = Bounds{Lo: &v, LoIncl: true, Hi: &v, HiIncl: true}
	}
	lo := 0
	if b.Lo != nil {
		lo = sort.Search(len(ix.entries), func(i int) bool {
			c, err := types.Compare(ix.entries[i].v, *b.Lo)
			if err != nil {
				return true
			}
			if b.LoIncl {
				return c >= 0
			}
			return c > 0
		})
	}
	hi := len(ix.entries)
	if b.Hi != nil {
		hi = sort.Search(len(ix.entries), func(i int) bool {
			c, err := types.Compare(ix.entries[i].v, *b.Hi)
			if err != nil {
				return true
			}
			if b.HiIncl {
				return c > 0
			}
			return c >= 0
		})
	}
	if hi < lo {
		hi = lo
	}
	out := make([]int32, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, ix.entries[i].row)
	}
	return out
}

// Len returns the number of non-null entries in the index.
func (ix *Index) Len() int { return len(ix.entries) }
