// Package storage provides the in-memory table store: append-only tables
// held as immutable columnar segments (typed arrays + null bitmaps + zone
// maps, see segment.go) behind a mutable row-form tail, with optional
// sorted per-column indexes and lightweight statistics (row count,
// distinct-value estimate, min/max) consumed by the planner's cardinality
// model. It stands in for the disk/bufferpool layer of the DBMS the paper
// ran on; all rewrite strategies in the benchmarks run against the same
// store, so relative comparisons carry over.
package storage

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/schema"
	"repro/internal/types"
)

// DefaultSegmentRows is the sealing threshold: Append columnarizes the
// mutable tail into an immutable segment every time it reaches exactly
// this many rows, so every sealed segment holds DefaultSegmentRows rows
// and rowID→segment is a single division. Overridable at process start
// with the REPRO_SEGMENT_ROWS environment variable (min 1).
var DefaultSegmentRows = 16384

func init() {
	if s := os.Getenv("REPRO_SEGMENT_ROWS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 1 {
			DefaultSegmentRows = n
		}
	}
}

// Table is an in-memory relation: sealed columnar segments plus a
// row-form tail, with optional sorted indexes.
type Table struct {
	Name    string
	Schema  *schema.Schema
	segRows int
	sealed  []*Segment
	tail    []schema.Row
	indexes map[int]*Index // column ordinal -> index
	stats   map[int]*ColStats
}

// NewTable creates an empty table. The segment size is captured from
// DefaultSegmentRows at creation time.
func NewTable(name string, s *schema.Schema) *Table {
	segRows := DefaultSegmentRows
	if segRows < 1 {
		segRows = 1
	}
	return &Table{
		Name:    strings.ToLower(name),
		Schema:  s,
		segRows: segRows,
		indexes: map[int]*Index{},
		stats:   map[int]*ColStats{},
	}
}

// Append adds rows to the table's mutable tail, sealing exact
// segRows-sized chunks into immutable columnar segments as the tail
// fills. Indexes and statistics become stale and must be refreshed with
// BuildIndex / Analyze; the loader pattern in this repo is bulk-load then
// index, matching the paper's load-then-query experiments.
func (t *Table) Append(rows ...schema.Row) error {
	for _, r := range rows {
		if len(r) != t.Schema.Len() {
			return fmt.Errorf("storage: row arity %d does not match schema %d for table %s", len(r), t.Schema.Len(), t.Name)
		}
	}
	t.tail = append(t.tail, rows...)
	if len(t.tail) < t.segRows {
		return nil
	}
	for len(t.tail) >= t.segRows {
		base := len(t.sealed) * t.segRows
		t.sealed = append(t.sealed, sealSegment(base, t.Schema.Len(), t.tail[:t.segRows]))
		t.tail = t.tail[t.segRows:]
	}
	// Re-home the remainder so the sealed chunks' row headers are freed.
	rest := make([]schema.Row, len(t.tail), t.segRows)
	copy(rest, t.tail)
	t.tail = rest
	return nil
}

// RowCount returns the number of rows.
func (t *Table) RowCount() int { return len(t.sealed)*t.segRows + len(t.tail) }

// SegmentRows returns the table's sealing threshold (rows per sealed
// segment).
func (t *Table) SegmentRows() int { return t.segRows }

// Segments returns the table's segments in row order: every sealed
// columnar segment, then (when non-empty) the mutable tail wrapped as an
// unsealed segment. The tail wrapper aliases the live buffer; callers
// hold the catalog read lock for the duration of a scan, so Append cannot
// run concurrently.
func (t *Table) Segments() []*Segment {
	segs := make([]*Segment, 0, len(t.sealed)+1)
	segs = append(segs, t.sealed...)
	if len(t.tail) > 0 {
		segs = append(segs, &Segment{Base: len(t.sealed) * t.segRows, n: len(t.tail), rows: t.tail})
	}
	return segs
}

// RowAt materializes the row with table-wide ID id.
func (t *Table) RowAt(id int) schema.Row {
	if k := id / t.segRows; k < len(t.sealed) {
		return t.sealed[k].Row(id - k*t.segRows)
	}
	return t.tail[id-len(t.sealed)*t.segRows]
}

// AllRows materializes every row in table order. When the table fits one
// segment the underlying (memoized or live) slice is returned directly;
// otherwise the segments are concatenated into a fresh slice.
func (t *Table) AllRows() []schema.Row {
	if len(t.sealed) == 0 {
		return t.tail
	}
	if len(t.sealed) == 1 && len(t.tail) == 0 {
		return t.sealed[0].Rows()
	}
	out := make([]schema.Row, 0, t.RowCount())
	for _, seg := range t.Segments() {
		out = append(out, seg.Rows()...)
	}
	return out
}

// MemBytes estimates the table's segment storage footprint.
func (t *Table) MemBytes() int64 {
	var b int64
	for _, seg := range t.sealed {
		b += seg.MemBytes()
	}
	b += int64(len(t.tail)) * int64(t.Schema.Len()+1) * 48
	return b
}

// SegmentCount returns the number of sealed segments.
func (t *Table) SegmentCount() int { return len(t.sealed) }

// Index is a sorted (value, rowID) list over one column, held as parallel
// slices so range scans can hand out rowID sub-slices without copying.
// NULLs are excluded: SQL predicates never select them from an index
// range scan.
type Index struct {
	Column int
	vals   []types.Value
	rows   []int32
}

// BuildIndex builds (or rebuilds) a sorted index on the named column.
func (t *Table) BuildIndex(column string) error {
	ord := t.Schema.IndexOf(column)
	if ord < 0 {
		return fmt.Errorf("storage: no column %q in table %s", column, t.Name)
	}
	type entry struct {
		v   types.Value
		row int32
	}
	entries := make([]entry, 0, t.RowCount())
	for _, seg := range t.Segments() {
		for i := 0; i < seg.Len(); i++ {
			v := seg.Value(ord, i)
			if v.IsNull() {
				continue
			}
			entries = append(entries, entry{v: v, row: int32(seg.Base + i)})
		}
	}
	sort.SliceStable(entries, func(a, b int) bool {
		c, err := types.Compare(entries[a].v, entries[b].v)
		if err != nil {
			// Mixed-kind columns are a schema violation; order arbitrarily.
			return false
		}
		return c < 0
	})
	idx := &Index{
		Column: ord,
		vals:   make([]types.Value, len(entries)),
		rows:   make([]int32, len(entries)),
	}
	for i, e := range entries {
		idx.vals[i] = e.v
		idx.rows[i] = e.row
	}
	t.indexes[ord] = idx
	return nil
}

// IndexOn returns the index on the named column, or nil.
func (t *Table) IndexOn(column string) *Index {
	ord := t.Schema.IndexOf(column)
	if ord < 0 {
		return nil
	}
	return t.indexes[ord]
}

// HasIndex reports whether an index exists on the column ordinal.
func (t *Table) HasIndex(ord int) bool { return t.indexes[ord] != nil }

// IndexByOrdinal returns the index on the column ordinal, or nil.
func (t *Table) IndexByOrdinal(ord int) *Index { return t.indexes[ord] }

// Bounds describe a one-sided or two-sided range on an indexed column.
// Nil pointers mean unbounded on that side.
type Bounds struct {
	Lo     *types.Value
	LoIncl bool
	Hi     *types.Value
	HiIncl bool
	Equals *types.Value // exact-match lookup; overrides Lo/Hi
}

// Scan returns the row IDs whose column value falls inside b, in index
// (value) order. The result is a sub-slice view of the index's rowID
// array — no copy — and must be treated as read-only; it stays valid
// until the index is rebuilt.
func (ix *Index) Scan(b Bounds) []int32 {
	if b.Equals != nil {
		v := *b.Equals
		b = Bounds{Lo: &v, LoIncl: true, Hi: &v, HiIncl: true}
	}
	lo := 0
	if b.Lo != nil {
		lo = sort.Search(len(ix.vals), func(i int) bool {
			c, err := types.Compare(ix.vals[i], *b.Lo)
			if err != nil {
				return true
			}
			if b.LoIncl {
				return c >= 0
			}
			return c > 0
		})
	}
	hi := len(ix.vals)
	if b.Hi != nil {
		hi = sort.Search(len(ix.vals), func(i int) bool {
			c, err := types.Compare(ix.vals[i], *b.Hi)
			if err != nil {
				return true
			}
			if b.HiIncl {
				return c > 0
			}
			return c >= 0
		})
	}
	if hi < lo {
		hi = lo
	}
	return ix.rows[lo:hi:hi]
}

// Len returns the number of non-null entries in the index.
func (ix *Index) Len() int { return len(ix.vals) }
