package storage

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/schema"
	"repro/internal/types"
)

func testTable(t *testing.T, vals []int64) *Table {
	t.Helper()
	tab := NewTable("t", schema.New(
		schema.Col("t", "id", types.KindInt),
		schema.Col("t", "v", types.KindInt),
	))
	for i, v := range vals {
		row := schema.Row{types.NewInt(int64(i)), types.NewInt(v)}
		if err := tab.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

func TestAppendArityCheck(t *testing.T) {
	tab := testTable(t, nil)
	if err := tab.Append(schema.Row{types.NewInt(1)}); err == nil {
		t.Fatal("arity mismatch should error")
	}
	if tab.RowCount() != 0 {
		t.Fatal("failed append must not add rows")
	}
}

func TestIndexScanBounds(t *testing.T) {
	tab := testTable(t, []int64{5, 3, 9, 1, 7, 3})
	if err := tab.BuildIndex("v"); err != nil {
		t.Fatal(err)
	}
	ix := tab.IndexOn("v")
	if ix == nil {
		t.Fatal("index missing")
	}
	collect := func(b Bounds) []int64 {
		var out []int64
		for _, rid := range ix.Scan(b) {
			out = append(out, tab.RowAt(int(rid))[1].Int())
		}
		return out
	}
	v3, v7 := types.NewInt(3), types.NewInt(7)
	if got := collect(Bounds{Lo: &v3, LoIncl: true, Hi: &v7, HiIncl: false}); len(got) != 3 || got[0] != 3 || got[1] != 3 || got[2] != 5 {
		t.Errorf("range [3,7) = %v", got)
	}
	if got := collect(Bounds{Lo: &v3, LoIncl: false}); len(got) != 3 {
		t.Errorf("range (3,∞) = %v", got)
	}
	if got := collect(Bounds{Equals: &v3}); len(got) != 2 {
		t.Errorf("equals 3 = %v", got)
	}
	if got := collect(Bounds{}); len(got) != 6 {
		t.Errorf("full scan = %v", got)
	}
	hi := types.NewInt(-5)
	if got := collect(Bounds{Hi: &hi, HiIncl: true}); len(got) != 0 {
		t.Errorf("empty range = %v", got)
	}
}

func TestIndexSkipsNulls(t *testing.T) {
	tab := NewTable("t", schema.New(schema.Col("t", "v", types.KindInt)))
	tab.Append(schema.Row{types.NewInt(1)}, schema.Row{types.Null}, schema.Row{types.NewInt(2)})
	if err := tab.BuildIndex("v"); err != nil {
		t.Fatal(err)
	}
	if got := tab.IndexOn("v").Len(); got != 2 {
		t.Errorf("index len = %d, want 2 (nulls excluded)", got)
	}
}

func TestBuildIndexUnknownColumn(t *testing.T) {
	tab := testTable(t, []int64{1})
	if err := tab.BuildIndex("nope"); err == nil {
		t.Fatal("unknown column should error")
	}
	if tab.IndexOn("nope") != nil {
		t.Fatal("no index expected")
	}
}

// Property: index range scans agree with a linear filter for random data
// and random bounds.
func TestIndexScanMatchesLinearScanProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(rng.Intn(50))
		}
		tab := NewTable("t", schema.New(schema.Col("t", "v", types.KindInt)))
		for _, v := range vals {
			tab.Append(schema.Row{types.NewInt(v)})
		}
		tab.BuildIndex("v")
		lo := types.NewInt(int64(rng.Intn(50)))
		hi := types.NewInt(int64(rng.Intn(50)))
		loIncl, hiIncl := rng.Intn(2) == 0, rng.Intn(2) == 0
		got := tab.IndexOn("v").Scan(Bounds{Lo: &lo, LoIncl: loIncl, Hi: &hi, HiIncl: hiIncl})
		var want []int32
		for i, v := range vals {
			okLo := v > lo.Int() || (loIncl && v == lo.Int())
			okHi := v < hi.Int() || (hiIncl && v == hi.Int())
			if okLo && okHi {
				want = append(want, int32(i))
			}
		}
		if len(got) != len(want) {
			return false
		}
		sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAnalyzeStats(t *testing.T) {
	tab := testTable(t, []int64{5, 3, 9, 1, 7, 3})
	tab.Append(schema.Row{types.NewInt(99), types.Null})
	tab.Analyze()
	st := tab.Stats(1)
	if st == nil {
		t.Fatal("stats missing")
	}
	if st.NonNull != 6 {
		t.Errorf("NonNull = %d", st.NonNull)
	}
	if st.Distinct != 5 {
		t.Errorf("Distinct = %d", st.Distinct)
	}
	if st.Min.Int() != 1 || st.Max.Int() != 9 {
		t.Errorf("Min/Max = %v/%v", st.Min, st.Max)
	}
}

func TestRangeSelectivity(t *testing.T) {
	st := &ColStats{NonNull: 100, Distinct: 100, Min: types.NewInt(0), Max: types.NewInt(100)}
	lo, hi := types.NewInt(0), types.NewInt(10)
	if got := st.RangeSelectivity(&lo, &hi); got < 0.099 || got > 0.101 {
		t.Errorf("selectivity = %v, want ~0.1", got)
	}
	if got := st.RangeSelectivity(nil, nil); got != 1.0 {
		t.Errorf("unbounded selectivity = %v", got)
	}
	lo2 := types.NewInt(200)
	if got := st.RangeSelectivity(&lo2, nil); got != 0 {
		t.Errorf("out-of-range selectivity = %v", got)
	}
	var nilStats *ColStats
	if got := nilStats.RangeSelectivity(nil, nil); got <= 0 || got > 1 {
		t.Errorf("fallback selectivity = %v", got)
	}
}

func TestEqSelectivityAndDistinctAfter(t *testing.T) {
	st := &ColStats{NonNull: 1000, Distinct: 50}
	if got := st.EqSelectivity(); got != 0.02 {
		t.Errorf("EqSelectivity = %v", got)
	}
	// Keeping all rows should recover about all distinct values.
	if got := st.DistinctAfter(1000); got < 49 {
		t.Errorf("DistinctAfter(1000) = %v, want ≈50", got)
	}
	// Keeping very few rows keeps few distincts.
	if got := st.DistinctAfter(1); got > 1.0001 {
		t.Errorf("DistinctAfter(1) = %v", got)
	}
	if got := st.DistinctAfter(0); got != 0 {
		t.Errorf("DistinctAfter(0) = %v", got)
	}
}
