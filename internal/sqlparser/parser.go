// Package sqlparser parses the SQL subset used throughout this system:
// WITH, SELECT/FROM/WHERE/GROUP BY/HAVING/ORDER BY/LIMIT, comma joins and
// ANSI [LEFT] JOIN ... ON, UNION [ALL], IN (list|subquery), EXISTS, CASE,
// BETWEEN, scalar and aggregate functions, and SQL/OLAP window functions
// with ROWS/RANGE frames — everything the paper's queries, generated
// cleansing templates, and rewrites require.
package sqlparser

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/sqlast"
	"repro/internal/sqllex"
	"repro/internal/types"
)

// Parse parses a single statement, requiring EOF (or a trailing
// semicolon) afterwards.
func Parse(src string) (sqlast.Stmt, error) {
	p := &parser{lex: sqllex.New(src)}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if err := p.expectEOF(); err != nil {
		return nil, err
	}
	return s, nil
}

// ParseExpr parses a standalone scalar expression (used by the SQL-TS rule
// parser for conditions and by tests).
func ParseExpr(src string) (sqlast.Expr, error) {
	p := &parser{lex: sqllex.New(src)}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectEOF(); err != nil {
		return nil, err
	}
	return e, nil
}

type parser struct {
	lex *sqllex.Lexer
}

func (p *parser) expectEOF() error {
	t, err := p.lex.Next()
	if err != nil {
		return err
	}
	if t.Kind == sqllex.TokOp && t.Text == ";" {
		t, err = p.lex.Next()
		if err != nil {
			return err
		}
	}
	if t.Kind != sqllex.TokEOF {
		return p.lex.Errorf(t.Pos, "unexpected %q after statement", t.Text)
	}
	return nil
}

func (p *parser) peek() (sqllex.Token, error) { return p.lex.Peek() }

func (p *parser) next() (sqllex.Token, error) { return p.lex.Next() }

// peekKeyword reports whether the next token is the given (lower-case)
// keyword.
func (p *parser) peekKeyword(kw string) bool {
	t, err := p.lex.Peek()
	if err != nil {
		return false
	}
	return t.Kind == sqllex.TokIdent && t.Text == kw
}

// acceptKeyword consumes the next token when it matches kw.
func (p *parser) acceptKeyword(kw string) bool {
	if p.peekKeyword(kw) {
		p.lex.Next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	t, err := p.next()
	if err != nil {
		return err
	}
	if t.Kind != sqllex.TokIdent || t.Text != kw {
		return p.lex.Errorf(t.Pos, "expected %s, found %q", strings.ToUpper(kw), t.Text)
	}
	return nil
}

func (p *parser) peekOp(op string) bool {
	t, err := p.lex.Peek()
	if err != nil {
		return false
	}
	return t.Kind == sqllex.TokOp && t.Text == op
}

func (p *parser) acceptOp(op string) bool {
	if p.peekOp(op) {
		p.lex.Next()
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	t, err := p.next()
	if err != nil {
		return err
	}
	if t.Kind != sqllex.TokOp || t.Text != op {
		return p.lex.Errorf(t.Pos, "expected %q, found %q", op, t.Text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t, err := p.next()
	if err != nil {
		return "", err
	}
	if t.Kind != sqllex.TokIdent {
		return "", p.lex.Errorf(t.Pos, "expected identifier, found %q", t.Text)
	}
	return t.Text, nil
}

// ---- statements ----

func (p *parser) parseStmt() (sqlast.Stmt, error) {
	var with []sqlast.CTE
	if p.acceptKeyword("with") {
		for {
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("as"); err != nil {
				return nil, err
			}
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			q, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			with = append(with, sqlast.CTE{Name: name, Query: q})
			if !p.acceptOp(",") {
				break
			}
		}
	}
	s, err := p.parseSetExpr()
	if err != nil {
		return nil, err
	}
	if len(with) == 0 {
		return s, nil
	}
	if sel, ok := s.(*sqlast.SelectStmt); ok && len(sel.With) == 0 {
		sel.With = with
		return sel, nil
	}
	// WITH over a union: wrap so the CTE scope covers the whole body.
	return &sqlast.SelectStmt{
		With:  with,
		Items: []sqlast.SelectItem{{Star: true}},
		From:  []sqlast.TableExpr{&sqlast.SubqueryTable{Query: s, Alias: "__with_body"}},
	}, nil
}

func (p *parser) parseSetExpr() (sqlast.Stmt, error) {
	left, err := p.parseSelectCore()
	if err != nil {
		return nil, err
	}
	for {
		var op sqlast.SetOpType
		switch {
		case p.acceptKeyword("union"):
			op = sqlast.SetUnion
		case p.acceptKeyword("except"):
			op = sqlast.SetExcept
		case p.acceptKeyword("intersect"):
			op = sqlast.SetIntersect
		default:
			return left, nil
		}
		all := false
		if op == sqlast.SetUnion {
			all = p.acceptKeyword("all")
		}
		right, err := p.parseSelectCore()
		if err != nil {
			return nil, err
		}
		left = &sqlast.SetOpStmt{Op: op, All: all, L: left, R: right}
	}
}

func (p *parser) parseSelectCore() (sqlast.Stmt, error) {
	if p.peekOp("(") {
		p.next()
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return s, nil
	}
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	sel := &sqlast.SelectStmt{}
	sel.Distinct = p.acceptKeyword("distinct")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKeyword("from") {
		for {
			te, err := p.parseTableExpr()
			if err != nil {
				return nil, err
			}
			sel.From = append(sel.From, te)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.acceptKeyword("group") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("having") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	if p.acceptKeyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		items, err := p.parseOrderList()
		if err != nil {
			return nil, err
		}
		sel.OrderBy = items
	}
	if p.acceptKeyword("limit") {
		t, err := p.next()
		if err != nil {
			return nil, err
		}
		if t.Kind != sqllex.TokNumber {
			return nil, p.lex.Errorf(t.Pos, "expected LIMIT count, found %q", t.Text)
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.lex.Errorf(t.Pos, "bad LIMIT count: %v", err)
		}
		sel.Limit = &n
	}
	if p.acceptKeyword("offset") {
		t, err := p.next()
		if err != nil {
			return nil, err
		}
		if t.Kind != sqllex.TokNumber {
			return nil, p.lex.Errorf(t.Pos, "expected OFFSET count, found %q", t.Text)
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.lex.Errorf(t.Pos, "bad OFFSET count: %v", err)
		}
		sel.Offset = &n
	}
	return sel, nil
}

func (p *parser) parseOrderList() ([]sqlast.OrderItem, error) {
	var items []sqlast.OrderItem
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		it := sqlast.OrderItem{Expr: e}
		if p.acceptKeyword("desc") {
			it.Desc = true
		} else {
			p.acceptKeyword("asc")
		}
		items = append(items, it)
		if !p.acceptOp(",") {
			break
		}
	}
	return items, nil
}

func (p *parser) parseSelectItem() (sqlast.SelectItem, error) {
	if p.acceptOp("*") {
		return sqlast.SelectItem{Star: true}, nil
	}
	// Look for "ident.*".
	t, err := p.peek()
	if err != nil {
		return sqlast.SelectItem{}, err
	}
	if t.Kind == sqllex.TokIdent && !isReserved(t.Text) {
		// Tentatively detect "ident . *" with a sub-lexer? The lexer has
		// single-token lookahead, so parse the expression and recover the
		// qualified-star case before the expression parser runs: consume
		// ident, then check for ".*".
		name := t.Text
		p.next()
		if p.peekOp(".") {
			p.next()
			if p.acceptOp("*") {
				return sqlast.SelectItem{Star: true, StarTable: name}, nil
			}
			col, err := p.expectIdent()
			if err != nil {
				return sqlast.SelectItem{}, err
			}
			e, err := p.continueExpr(&sqlast.ColRef{Table: name, Name: col})
			if err != nil {
				return sqlast.SelectItem{}, err
			}
			return p.finishSelectItem(e)
		}
		e, err := p.continuePrimary(name)
		if err != nil {
			return sqlast.SelectItem{}, err
		}
		e, err = p.continueExpr(e)
		if err != nil {
			return sqlast.SelectItem{}, err
		}
		return p.finishSelectItem(e)
	}
	e, err := p.parseExpr()
	if err != nil {
		return sqlast.SelectItem{}, err
	}
	return p.finishSelectItem(e)
}

func (p *parser) finishSelectItem(e sqlast.Expr) (sqlast.SelectItem, error) {
	item := sqlast.SelectItem{Expr: e}
	if p.acceptKeyword("as") {
		a, err := p.expectIdent()
		if err != nil {
			return item, err
		}
		item.Alias = a
	} else if t, err := p.peek(); err == nil && t.Kind == sqllex.TokIdent && !isReserved(t.Text) {
		p.next()
		item.Alias = t.Text
	}
	return item, nil
}

func (p *parser) parseTableExpr() (sqlast.TableExpr, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		var jt sqlast.JoinType
		switch {
		case p.peekKeyword("join"):
			p.next()
			jt = sqlast.JoinInner
		case p.peekKeyword("inner"):
			p.next()
			if err := p.expectKeyword("join"); err != nil {
				return nil, err
			}
			jt = sqlast.JoinInner
		case p.peekKeyword("left"):
			p.next()
			p.acceptKeyword("outer")
			if err := p.expectKeyword("join"); err != nil {
				return nil, err
			}
			jt = sqlast.JoinLeft
		default:
			return left, nil
		}
		right, err := p.parseTablePrimary()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("on"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		left = &sqlast.JoinExpr{Type: jt, Left: left, Right: right, On: on}
	}
}

func (p *parser) parseTablePrimary() (sqlast.TableExpr, error) {
	if p.acceptOp("(") {
		q, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		alias := ""
		p.acceptKeyword("as")
		if t, err := p.peek(); err == nil && t.Kind == sqllex.TokIdent && !isReserved(t.Text) {
			p.next()
			alias = t.Text
		}
		return &sqlast.SubqueryTable{Query: q, Alias: alias}, nil
	}
	t, err := p.next()
	if err != nil {
		return nil, err
	}
	name := ""
	switch t.Kind {
	case sqllex.TokIdent:
		name = t.Text
	case sqllex.TokParam:
		name = "$" + t.Text
	default:
		return nil, p.lex.Errorf(t.Pos, "expected table name, found %q", t.Text)
	}
	te := &sqlast.TableName{Name: name}
	p.acceptKeyword("as")
	if nt, err := p.peek(); err == nil && nt.Kind == sqllex.TokIdent && !isReserved(nt.Text) {
		p.next()
		te.Alias = nt.Text
	}
	return te, nil
}

// isReserved lists keywords that terminate an implicit alias position.
func isReserved(kw string) bool {
	switch kw {
	case "select", "from", "where", "group", "having", "order", "limit",
		"union", "on", "join", "inner", "left", "outer", "as", "and", "or",
		"not", "in", "is", "between", "case", "when", "then", "else", "end",
		"exists", "asc", "desc", "with", "distinct", "over", "partition",
		"rows", "range", "like", "except", "intersect", "offset",
		"interval", "timestamp", "null", "true", "false":
		return true
	}
	return false
}

// ---- expressions (precedence climbing) ----

func (p *parser) parseExpr() (sqlast.Expr, error) { return p.parseOr() }

// continueExpr resumes precedence climbing after a primary has already
// been consumed (used by the select-item fast path for qualified stars).
func (p *parser) continueExpr(left sqlast.Expr) (sqlast.Expr, error) {
	e, err := p.parsePostfixFrom(left)
	if err != nil {
		return nil, err
	}
	e, err = p.parseMulFrom(e)
	if err != nil {
		return nil, err
	}
	e, err = p.parseAddFrom(e)
	if err != nil {
		return nil, err
	}
	e, err = p.parseCmpFrom(e)
	if err != nil {
		return nil, err
	}
	e, err = p.parseAndFrom(e)
	if err != nil {
		return nil, err
	}
	return p.parseOrFrom(e)
}

func (p *parser) parseOr() (sqlast.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	return p.parseOrFrom(l)
}

func (p *parser) parseOrFrom(l sqlast.Expr) (sqlast.Expr, error) {
	for p.acceptKeyword("or") || p.acceptOp("||") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &sqlast.Bin{Op: sqlast.OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (sqlast.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	return p.parseAndFrom(l)
}

func (p *parser) parseAndFrom(l sqlast.Expr) (sqlast.Expr, error) {
	for p.acceptKeyword("and") || p.acceptOp("&&") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &sqlast.Bin{Op: sqlast.OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (sqlast.Expr, error) {
	if p.acceptKeyword("not") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &sqlast.Un{Op: sqlast.OpNot, E: e}, nil
	}
	return p.parseCmp()
}

var cmpOps = map[string]sqlast.BinOp{
	"=": sqlast.OpEq, "<>": sqlast.OpNe, "!=": sqlast.OpNe,
	"<": sqlast.OpLt, "<=": sqlast.OpLe, ">": sqlast.OpGt, ">=": sqlast.OpGe,
}

func (p *parser) parseCmp() (sqlast.Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	return p.parseCmpFrom(l)
}

func (p *parser) parseCmpFrom(l sqlast.Expr) (sqlast.Expr, error) {
	t, err := p.peek()
	if err != nil {
		return nil, err
	}
	if t.Kind == sqllex.TokOp {
		if op, ok := cmpOps[t.Text]; ok {
			p.next()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &sqlast.Bin{Op: op, L: l, R: r}, nil
		}
	}
	return p.parsePostfixFrom(l)
}

// parsePostfixFrom handles IS [NOT] NULL, [NOT] IN, BETWEEN.
func (p *parser) parsePostfixFrom(l sqlast.Expr) (sqlast.Expr, error) {
	switch {
	case p.acceptKeyword("is"):
		neg := p.acceptKeyword("not")
		if err := p.expectKeyword("null"); err != nil {
			return nil, err
		}
		return &sqlast.IsNull{E: l, Neg: neg}, nil
	case p.peekKeyword("not") || p.peekKeyword("in") || p.peekKeyword("between") || p.peekKeyword("like"):
		neg := p.acceptKeyword("not")
		switch {
		case p.acceptKeyword("like"):
			pat, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &sqlast.Like{E: l, Pattern: pat, Neg: neg}, nil
		case p.acceptKeyword("in"):
			return p.parseInTail(l, neg)
		case p.acceptKeyword("between"):
			lo, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("and"); err != nil {
				return nil, err
			}
			hi, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			between := sqlast.And(
				sqlast.Cmp(sqlast.OpGe, l, lo),
				sqlast.Cmp(sqlast.OpLe, sqlast.CloneExpr(l), hi),
			)
			if neg {
				return &sqlast.Un{Op: sqlast.OpNot, E: between}, nil
			}
			return between, nil
		case neg:
			// A bare NOT after an operand is not valid ("a NOT b").
			t, _ := p.peek()
			return nil, p.lex.Errorf(t.Pos, "expected IN, BETWEEN, or LIKE after NOT")
		}
	}
	return l, nil
}

func (p *parser) parseInTail(l sqlast.Expr, neg bool) (sqlast.Expr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	if p.peekKeyword("select") || p.peekKeyword("with") {
		sub, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &sqlast.In{E: l, Sub: sub, Neg: neg}, nil
	}
	var list []sqlast.Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		list = append(list, e)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &sqlast.In{E: l, List: list, Neg: neg}, nil
}

func (p *parser) parseAdd() (sqlast.Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	return p.parseAddFrom(l)
}

func (p *parser) parseAddFrom(l sqlast.Expr) (sqlast.Expr, error) {
	for {
		switch {
		case p.acceptOp("+"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &sqlast.Bin{Op: sqlast.OpAdd, L: l, R: r}
		case p.acceptOp("-"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &sqlast.Bin{Op: sqlast.OpSub, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMul() (sqlast.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	return p.parseMulFrom(l)
}

func (p *parser) parseMulFrom(l sqlast.Expr) (sqlast.Expr, error) {
	for {
		switch {
		case p.acceptOp("*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &sqlast.Bin{Op: sqlast.OpMul, L: l, R: r}
		case p.acceptOp("/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &sqlast.Bin{Op: sqlast.OpDiv, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (sqlast.Expr, error) {
	if p.acceptOp("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold only plain numeric literals into negative constants; the
		// general folding lives in the planner, and folding here would
		// break print→parse stability for other kinds (e.g. -NULL).
		if c, ok := e.(*sqlast.Const); ok && (c.V.Kind() == types.KindInt || c.V.Kind() == types.KindFloat) {
			if v, err := types.Arith(types.OpSub, types.NewInt(0), c.V); err == nil {
				return &sqlast.Const{V: v}, nil
			}
		}
		return &sqlast.Un{Op: sqlast.OpNeg, E: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (sqlast.Expr, error) {
	t, err := p.next()
	if err != nil {
		return nil, err
	}
	switch t.Kind {
	case sqllex.TokNumber:
		return p.numberOrInterval(t)
	case sqllex.TokString:
		return sqlast.Lit(types.NewString(t.Text)), nil
	case sqllex.TokOp:
		if t.Text == "(" {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.lex.Errorf(t.Pos, "unexpected %q in expression", t.Text)
	case sqllex.TokIdent:
		switch t.Text {
		case "null":
			return sqlast.Lit(types.Null), nil
		case "true":
			return sqlast.Lit(types.NewBool(true)), nil
		case "false":
			return sqlast.Lit(types.NewBool(false)), nil
		case "case":
			return p.parseCase()
		case "exists":
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			sub, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &sqlast.Exists{Sub: sub}, nil
		case "timestamp":
			lt, err := p.next()
			if err != nil {
				return nil, err
			}
			if lt.Kind != sqllex.TokString {
				return nil, p.lex.Errorf(lt.Pos, "expected string after TIMESTAMP")
			}
			v, err := parseTimestamp(lt.Text)
			if err != nil {
				return nil, p.lex.Errorf(lt.Pos, "bad timestamp %q: %v", lt.Text, err)
			}
			return sqlast.Lit(v), nil
		case "interval":
			lt, err := p.next()
			if err != nil {
				return nil, err
			}
			if lt.Kind != sqllex.TokString && lt.Kind != sqllex.TokNumber {
				return nil, p.lex.Errorf(lt.Pos, "expected quantity after INTERVAL")
			}
			n, err := strconv.ParseInt(strings.TrimSpace(lt.Text), 10, 64)
			if err != nil {
				return nil, p.lex.Errorf(lt.Pos, "bad interval quantity %q", lt.Text)
			}
			ut, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			usec, ok := unitUsec(ut)
			if !ok {
				return nil, p.lex.Errorf(lt.Pos, "unknown interval unit %q", ut)
			}
			return sqlast.Lit(types.NewInterval(n * usec)), nil
		}
		return p.continuePrimary(t.Text)
	}
	return nil, p.lex.Errorf(t.Pos, "unexpected token in expression")
}

// continuePrimary finishes a primary that begins with an identifier that
// has already been consumed: a column reference, a qualified reference, or
// a function call (optionally windowed).
func (p *parser) continuePrimary(name string) (sqlast.Expr, error) {
	if p.acceptOp("(") {
		return p.parseCallTail(name)
	}
	if p.acceptOp(".") {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &sqlast.ColRef{Table: name, Name: col}, nil
	}
	return &sqlast.ColRef{Name: name}, nil
}

func (p *parser) parseCallTail(name string) (sqlast.Expr, error) {
	fc := &sqlast.FuncCall{Name: name}
	if p.acceptOp("*") {
		fc.Star = true
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	} else {
		if p.acceptKeyword("distinct") {
			fc.Distinct = true
		}
		if !p.acceptOp(")") {
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				fc.Args = append(fc.Args, a)
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
		}
	}
	if !p.acceptKeyword("over") {
		return fc, nil
	}
	if fc.Distinct {
		return nil, fmt.Errorf("sqlparser: DISTINCT is not supported in window functions")
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	w := &sqlast.WindowExpr{Func: name, Star: fc.Star}
	if len(fc.Args) == 1 {
		w.Arg = fc.Args[0]
	} else if len(fc.Args) > 1 {
		return nil, fmt.Errorf("sqlparser: window function %s takes at most one argument", name)
	}
	if p.acceptKeyword("partition") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			w.Partition = append(w.Partition, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		items, err := p.parseOrderList()
		if err != nil {
			return nil, err
		}
		w.Order = items
	}
	if p.peekKeyword("rows") || p.peekKeyword("range") {
		f, err := p.parseFrame()
		if err != nil {
			return nil, err
		}
		w.Frame = f
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return w, nil
}

func (p *parser) parseFrame() (*sqlast.Frame, error) {
	f := &sqlast.Frame{}
	if p.acceptKeyword("range") {
		f.Unit = sqlast.FrameRange
	} else if err := p.expectKeyword("rows"); err != nil {
		return nil, err
	}
	if p.acceptKeyword("between") {
		start, err := p.parseBound()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("and"); err != nil {
			return nil, err
		}
		end, err := p.parseBound()
		if err != nil {
			return nil, err
		}
		f.Start, f.End = start, end
		return f, nil
	}
	// Single-bound shorthand: "ROWS n PRECEDING" = BETWEEN n PRECEDING AND
	// CURRENT ROW (SQL standard).
	start, err := p.parseBound()
	if err != nil {
		return nil, err
	}
	f.Start = start
	f.End = sqlast.FrameBound{Type: sqlast.BoundCurrentRow}
	return f, nil
}

func (p *parser) parseBound() (sqlast.FrameBound, error) {
	switch {
	case p.acceptKeyword("unbounded"):
		switch {
		case p.acceptKeyword("preceding"):
			return sqlast.FrameBound{Type: sqlast.BoundUnboundedPreceding}, nil
		case p.acceptKeyword("following"):
			return sqlast.FrameBound{Type: sqlast.BoundUnboundedFollowing}, nil
		}
		t, _ := p.peek()
		return sqlast.FrameBound{}, p.lex.Errorf(t.Pos, "expected PRECEDING or FOLLOWING after UNBOUNDED")
	case p.acceptKeyword("current"):
		if err := p.expectKeyword("row"); err != nil {
			return sqlast.FrameBound{}, err
		}
		return sqlast.FrameBound{Type: sqlast.BoundCurrentRow}, nil
	}
	off, err := p.parseAdd()
	if err != nil {
		return sqlast.FrameBound{}, err
	}
	switch {
	case p.acceptKeyword("preceding"):
		return sqlast.FrameBound{Type: sqlast.BoundPreceding, Offset: off}, nil
	case p.acceptKeyword("following"):
		return sqlast.FrameBound{Type: sqlast.BoundFollowing, Offset: off}, nil
	}
	t, _ := p.peek()
	return sqlast.FrameBound{}, p.lex.Errorf(t.Pos, "expected PRECEDING or FOLLOWING in frame bound")
}

func (p *parser) parseCase() (sqlast.Expr, error) {
	c := &sqlast.Case{}
	for {
		if err := p.expectKeyword("when"); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("then"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, sqlast.When{Cond: cond, Then: then})
		if !p.peekKeyword("when") {
			break
		}
	}
	if p.acceptKeyword("else") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("end"); err != nil {
		return nil, err
	}
	return c, nil
}

// numberOrInterval turns "5" into an INT and "5 MINS" into an INTERVAL.
func (p *parser) numberOrInterval(t sqllex.Token) (sqlast.Expr, error) {
	if nt, err := p.peek(); err == nil && nt.Kind == sqllex.TokIdent {
		if usec, ok := unitUsec(nt.Text); ok {
			p.next()
			n, err := strconv.ParseInt(t.Text, 10, 64)
			if err != nil {
				return nil, p.lex.Errorf(t.Pos, "bad interval quantity %q", t.Text)
			}
			return sqlast.Lit(types.NewInterval(n * usec)), nil
		}
	}
	if strings.Contains(t.Text, ".") {
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.lex.Errorf(t.Pos, "bad number %q", t.Text)
		}
		return sqlast.Lit(types.NewFloat(f)), nil
	}
	n, err := strconv.ParseInt(t.Text, 10, 64)
	if err != nil {
		return nil, p.lex.Errorf(t.Pos, "bad number %q", t.Text)
	}
	return sqlast.Lit(types.NewInt(n)), nil
}

// unitUsec maps a time-unit keyword to microseconds. The paper's rules use
// spellings like "5 mins"; the generated OLAP templates use
// "1 MICROSECOND".
func unitUsec(u string) (int64, bool) {
	switch u {
	case "microsecond", "microseconds", "usec", "usecs":
		return 1, true
	case "second", "seconds", "sec", "secs":
		return 1_000_000, true
	case "minute", "minutes", "min", "mins":
		return 60 * 1_000_000, true
	case "hour", "hours":
		return 3600 * 1_000_000, true
	case "day", "days":
		return 24 * 3600 * 1_000_000, true
	}
	return 0, false
}

func parseTimestamp(s string) (types.Value, error) {
	for _, layout := range []string{
		"2006-01-02 15:04:05.000000",
		"2006-01-02 15:04:05",
		"2006-01-02",
	} {
		if ts, err := time.ParseInLocation(layout, s, time.UTC); err == nil {
			return types.NewTimeFrom(ts), nil
		}
	}
	return types.Null, fmt.Errorf("unrecognized timestamp format")
}
