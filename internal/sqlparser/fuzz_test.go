package sqlparser

import (
	"math/rand"
	"testing"

	"repro/internal/sqlast"
	"repro/internal/types"
)

// genExpr builds a random expression tree; depth bounds recursion.
func genExpr(rng *rand.Rand, depth int) sqlast.Expr {
	if depth <= 0 {
		switch rng.Intn(6) {
		case 0:
			return sqlast.Col("", colNames[rng.Intn(len(colNames))])
		case 1:
			return sqlast.Col("t"+string(rune('0'+rng.Intn(3))), colNames[rng.Intn(len(colNames))])
		case 2:
			return sqlast.Lit(types.NewInt(int64(rng.Intn(200) - 100)))
		case 3:
			return sqlast.Lit(types.NewString(randString(rng)))
		case 4:
			return sqlast.Lit(types.NewInterval(int64(rng.Intn(1_000_000)))) // µs
		default:
			return sqlast.Lit(types.Null)
		}
	}
	switch rng.Intn(10) {
	case 0, 1, 2:
		ops := []sqlast.BinOp{
			sqlast.OpEq, sqlast.OpNe, sqlast.OpLt, sqlast.OpLe, sqlast.OpGt, sqlast.OpGe,
			sqlast.OpAnd, sqlast.OpOr, sqlast.OpAdd, sqlast.OpSub, sqlast.OpMul, sqlast.OpDiv,
		}
		return &sqlast.Bin{Op: ops[rng.Intn(len(ops))], L: genExpr(rng, depth-1), R: genExpr(rng, depth-1)}
	case 3:
		if rng.Intn(2) == 0 {
			return &sqlast.Un{Op: sqlast.OpNot, E: genExpr(rng, depth-1)}
		}
		return &sqlast.Un{Op: sqlast.OpNeg, E: genExpr(rng, depth-1)}
	case 4:
		return &sqlast.IsNull{E: genExpr(rng, depth-1), Neg: rng.Intn(2) == 0}
	case 5:
		c := &sqlast.Case{Else: genExpr(rng, depth-1)}
		for i := 0; i <= rng.Intn(2); i++ {
			c.Whens = append(c.Whens, sqlast.When{Cond: genExpr(rng, depth-1), Then: genExpr(rng, depth-1)})
		}
		return c
	case 6:
		in := &sqlast.In{E: genExpr(rng, depth-1), Neg: rng.Intn(2) == 0}
		for i := 0; i <= rng.Intn(3); i++ {
			in.List = append(in.List, genExpr(rng, depth-1))
		}
		return in
	case 7:
		return &sqlast.Like{E: genExpr(rng, depth-1), Pattern: sqlast.Lit(types.NewString(randString(rng))), Neg: rng.Intn(2) == 0}
	case 8:
		fns := []string{"coalesce", "abs", "length", "lower", "upper"}
		fc := &sqlast.FuncCall{Name: fns[rng.Intn(len(fns))]}
		for i := 0; i <= rng.Intn(2); i++ {
			fc.Args = append(fc.Args, genExpr(rng, depth-1))
		}
		return fc
	default:
		return genExpr(rng, depth-1)
	}
}

var colNames = []string{"epc", "rtime", "biz_loc", "reader", "v", "n"}

func randString(rng *rand.Rand) string {
	alphabet := []rune("ab%_' \\xé")
	n := rng.Intn(6)
	out := make([]rune, n)
	for i := range out {
		out[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(out)
}

// genSelect builds a random (syntactically valid) SELECT.
func genSelect(rng *rand.Rand, depth int) *sqlast.SelectStmt {
	s := &sqlast.SelectStmt{Distinct: rng.Intn(4) == 0}
	nItems := 1 + rng.Intn(3)
	for i := 0; i < nItems; i++ {
		it := sqlast.SelectItem{Expr: genExpr(rng, 2)}
		if rng.Intn(2) == 0 {
			it.Alias = "a" + string(rune('0'+i))
		}
		s.Items = append(s.Items, it)
	}
	s.From = []sqlast.TableExpr{&sqlast.TableName{Name: "r", Alias: pick(rng, "", "x")}}
	if depth > 0 && rng.Intn(3) == 0 {
		s.From = append(s.From, &sqlast.SubqueryTable{Query: genSelect(rng, depth-1), Alias: "sq"})
	}
	if rng.Intn(2) == 0 {
		s.Where = genExpr(rng, 3)
	}
	if rng.Intn(4) == 0 {
		s.GroupBy = []sqlast.Expr{sqlast.Col("", "epc")}
		s.Items = []sqlast.SelectItem{{Expr: sqlast.Col("", "epc")}, {Expr: &sqlast.FuncCall{Name: "count", Star: true}}}
	}
	if rng.Intn(4) == 0 {
		s.OrderBy = []sqlast.OrderItem{{Expr: genExpr(rng, 1), Desc: rng.Intn(2) == 0}}
	}
	if rng.Intn(5) == 0 {
		l := int64(rng.Intn(20))
		s.Limit = &l
	}
	return s
}

func pick(rng *rand.Rand, opts ...string) string { return opts[rng.Intn(len(opts))] }

// Fuzz-style property: any AST we can construct prints to SQL that parses
// back to an AST printing identically. This guards every rewrite the core
// engine emits.
func TestRandomASTPrintParseRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 400; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var stmt sqlast.Stmt = genSelect(rng, 2)
		if rng.Intn(5) == 0 {
			stmt = &sqlast.SetOpStmt{
				Op:  sqlast.SetOpType(rng.Intn(3)),
				All: rng.Intn(2) == 0,
				L:   stmt, R: genSelect(rng, 1),
			}
		}
		p1 := sqlast.SQL(stmt)
		re, err := Parse(p1)
		if err != nil {
			t.Fatalf("seed %d: printed SQL does not reparse: %v\nsql: %s", seed, err, p1)
		}
		p2 := sqlast.SQL(re)
		if p1 != p2 {
			t.Fatalf("seed %d: round-trip mismatch\nfirst : %s\nsecond: %s", seed, p1, p2)
		}
	}
}

// Expressions alone, deeper trees.
func TestRandomExprPrintParseRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 800; seed++ {
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		e := genExpr(rng, 4)
		p1 := sqlast.ExprSQL(e)
		re, err := ParseExpr(p1)
		if err != nil {
			t.Fatalf("seed %d: expr does not reparse: %v\nexpr: %s", seed, err, p1)
		}
		p2 := sqlast.ExprSQL(re)
		if p1 != p2 {
			t.Fatalf("seed %d: expr round-trip mismatch\nfirst : %s\nsecond: %s", seed, p1, p2)
		}
	}
}
