package sqlparser

import (
	"strings"
	"testing"

	"repro/internal/sqlast"
	"repro/internal/types"
)

func mustParse(t *testing.T, src string) sqlast.Stmt {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return s
}

// Round-trip property: printing a parsed statement and re-parsing must
// yield identical printed text. Rewrites rely on print→parse stability.
func TestPrintParseRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT * FROM r",
		"SELECT r.* FROM r",
		"SELECT epc, rtime FROM caser WHERE rtime < TIMESTAMP '2021-03-04 05:06:07'",
		"select distinct epc from caser where biz_loc = 'loc1' and rtime >= 5 minutes",
		"select a + b * c - d / e from t",
		"select a from t where a between 1 and 10",
		"select a from t where a not in (1, 2, 3)",
		"select a from t where a in (select b from u where c = 1)",
		"select a from t where exists (select 1 from u)",
		"select count(*), count(distinct x), avg(y) from t group by z having count(*) > 2",
		"select * from a, b c, (select * from d) e where a.x = c.y",
		"select * from a join b on a.x = b.x left join c on b.y = c.y",
		"select x from t order by x desc, y limit 10",
		"with v as (select * from r), w as (select * from v) select * from w",
		"select epc from caser union all select epc from palletr",
		"select case when a = 1 then 'one' when a = 2 then 'two' else 'many' end from t",
		"select a from t where a is not null and b is null",
		"select max(biz_loc) over (partition by epc order by rtime rows between 1 preceding and 1 preceding) from r",
		"select max(x) over (partition by p order by k range between 1 microsecond following and 10 minutes following) from r",
		"select count(*) over (order by k rows between unbounded preceding and current row) from r",
		"select sum(v) over (partition by p order by k rows between current row and unbounded following) from r",
		"select not (a or b) and c from t",
		"select -x, -(a + b) from t",
		"select * from t where ts - INTERVAL '5' MINUTE > TIMESTAMP '2020-01-01'",
		"select a from t where a like 'x%' and b not like '_y'",
		"select a from t except select a from u",
		"select a from t intersect select a from u",
		"select a from t union select a from u except select a from v",
		"select a from t order by a limit 5 offset 10",
		"select a from t offset 3",
		"select upper(a), lower(b), substr(c, 2, 3) from t",
	}
	for _, q := range queries {
		s1 := mustParse(t, q)
		p1 := sqlast.SQL(s1)
		s2, err := Parse(p1)
		if err != nil {
			t.Errorf("reparse of %q failed: %v\nprinted: %s", q, err, p1)
			continue
		}
		p2 := sqlast.SQL(s2)
		if p1 != p2 {
			t.Errorf("round trip mismatch for %q:\n  first : %s\n  second: %s", q, p1, p2)
		}
	}
}

func TestIntervalSugar(t *testing.T) {
	e, err := ParseExpr("5 mins")
	if err != nil {
		t.Fatal(err)
	}
	c, ok := e.(*sqlast.Const)
	if !ok || c.V.Kind() != types.KindInterval || c.V.IntervalUsec() != 5*60*1_000_000 {
		t.Fatalf("5 mins = %#v", e)
	}
	for src, usec := range map[string]int64{
		"1 microsecond":       1,
		"2 secs":              2_000_000,
		"3 hours":             3 * 3600 * 1_000_000,
		"1 day":               24 * 3600 * 1_000_000,
		"INTERVAL '7' MINUTE": 7 * 60 * 1_000_000,
	} {
		e, err := ParseExpr(src)
		if err != nil {
			t.Errorf("%q: %v", src, err)
			continue
		}
		if c := e.(*sqlast.Const); c.V.IntervalUsec() != usec {
			t.Errorf("%q = %v usec, want %d", src, c.V.IntervalUsec(), usec)
		}
	}
}

func TestNumberFollowedByColumnIsNotInterval(t *testing.T) {
	e, err := ParseExpr("5 + x")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(*sqlast.Bin); !ok {
		t.Fatalf("5 + x = %#v", e)
	}
}

func TestBetweenDesugars(t *testing.T) {
	e, err := ParseExpr("a between 1 and 3")
	if err != nil {
		t.Fatal(err)
	}
	got := sqlast.ExprSQL(e)
	if got != "a >= 1 AND a <= 3" {
		t.Errorf("between desugar = %q", got)
	}
}

func TestRowsShorthandFrame(t *testing.T) {
	s := mustParse(t, "select max(rtime) over (partition by epc order by rtime rows 1 preceding) from r")
	sel := s.(*sqlast.SelectStmt)
	w := sel.Items[0].Expr.(*sqlast.WindowExpr)
	if w.Frame == nil || w.Frame.Start.Type != sqlast.BoundPreceding || w.Frame.End.Type != sqlast.BoundCurrentRow {
		t.Fatalf("shorthand frame = %+v", w.Frame)
	}
}

func TestOperatorPrecedence(t *testing.T) {
	e, err := ParseExpr("a or b and c = d + e * f")
	if err != nil {
		t.Fatal(err)
	}
	want := "a OR b AND c = d + e * f"
	if got := sqlast.ExprSQL(e); got != want {
		t.Errorf("precedence print = %q, want %q", got, want)
	}
	root := e.(*sqlast.Bin)
	if root.Op != sqlast.OpOr {
		t.Fatalf("root op = %v, want OR", root.Op)
	}
}

func TestLeftAssociativeSubtraction(t *testing.T) {
	e, err := ParseExpr("a - b - c")
	if err != nil {
		t.Fatal(err)
	}
	// (a-b)-c, not a-(b-c)
	root := e.(*sqlast.Bin)
	if _, ok := root.L.(*sqlast.Bin); !ok {
		t.Fatalf("subtraction must be left-associative: %s", sqlast.ExprSQL(e))
	}
}

func TestWithOverUnionWraps(t *testing.T) {
	s := mustParse(t, "with v as (select 1 a) select a from v union select a from v")
	sel, ok := s.(*sqlast.SelectStmt)
	if !ok {
		t.Fatalf("WITH over union should wrap into a SelectStmt, got %T", s)
	}
	if len(sel.With) != 1 {
		t.Fatalf("With = %v", sel.With)
	}
	if _, ok := sel.From[0].(*sqlast.SubqueryTable); !ok {
		t.Fatalf("wrapped body missing: %T", sel.From[0])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"select",
		"select * from",
		"select * from t where",
		"select * from t group",
		"select a from t limit x",
		"select f(distinct x) over (partition by p) from t",
		"select * from t extra_token 123 45",
		"select a not b from t",
		"select max(x) over (rows between 1 preceding) from t",
		"select case a then 1 end from t",
		"select interval 'x' minute from t",
		"select timestamp 'not-a-date' from t",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q): expected error", q)
		}
	}
}

func TestAliasHandling(t *testing.T) {
	s := mustParse(t, "select c.epc as id, c.rtime tm from caser c")
	sel := s.(*sqlast.SelectStmt)
	if sel.Items[0].Alias != "id" || sel.Items[1].Alias != "tm" {
		t.Errorf("aliases = %q, %q", sel.Items[0].Alias, sel.Items[1].Alias)
	}
	tn := sel.From[0].(*sqlast.TableName)
	if tn.Name != "caser" || tn.Alias != "c" || tn.Binding() != "c" {
		t.Errorf("table = %+v", tn)
	}
}

func TestCommentsIgnored(t *testing.T) {
	s := mustParse(t, "select a -- trailing comment\nfrom t /* block */ where a > 1")
	if !strings.Contains(sqlast.SQL(s), "WHERE a > 1") {
		t.Errorf("printed = %s", sqlast.SQL(s))
	}
}

func TestParamTableName(t *testing.T) {
	s := mustParse(t, "select * from $input where x = 1")
	sel := s.(*sqlast.SelectStmt)
	tn := sel.From[0].(*sqlast.TableName)
	if tn.Name != "$input" {
		t.Errorf("param table = %q", tn.Name)
	}
}
