// Package persist saves and restores a deferred-cleansing database — base
// tables, views, and the rules catalog — to a directory: a JSON manifest
// describing schemas, indexes, view definitions and rule sources (in
// creation order), plus one CSV file of typed values per table. The
// format is deliberately boring: it round-trips bit-for-bit, diffs well,
// and loads with nothing but the standard library.
package persist

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/types"
)

// manifest is the directory's table of contents.
type manifest struct {
	// Version guards future format changes.
	Version int             `json:"version"`
	Tables  []tableManifest `json:"tables"`
	Views   []viewManifest  `json:"views"`
	// Rules hold extended SQL-TS sources in creation order.
	Rules []string `json:"rules,omitempty"`
}

type tableManifest struct {
	Name    string   `json:"name"`
	Columns []colDef `json:"columns"`
	Indexes []string `json:"indexes,omitempty"`
	Rows    int      `json:"rows"`
	File    string   `json:"file"`
}

type colDef struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

type viewManifest struct {
	Name string `json:"name"`
	SQL  string `json:"sql"`
}

const formatVersion = 1

// Save writes the database (and, when reg is non-nil, its rules) to dir.
// The snapshot is written to a temporary sibling directory, fsynced, and
// renamed into place, so a crash mid-Save never destroys the previous
// good snapshot: dir either holds the old snapshot or the complete new
// one. (During the swap the old snapshot briefly lives at dir+".bak";
// Load falls back to it if a crash lands in that window.)
func Save(db *catalog.Database, reg *core.Registry, dir string) error {
	parent := filepath.Dir(filepath.Clean(dir))
	if err := os.MkdirAll(parent, 0o755); err != nil {
		return err
	}
	tmp, err := os.MkdirTemp(parent, "tmp-save-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	if err := writeSnapshot(db, reg, tmp); err != nil {
		return err
	}
	return swapDir(tmp, dir)
}

// swapDir atomically replaces dst with the fully written directory src.
// An existing dst is parked at dst+".bak" for the duration of the swap
// and removed once src is in place.
func swapDir(src, dst string) error {
	bak := dst + ".bak"
	if err := os.RemoveAll(bak); err != nil {
		return err
	}
	if _, err := os.Stat(dst); err == nil {
		if err := os.Rename(dst, bak); err != nil {
			return err
		}
	}
	if err := os.Rename(src, dst); err != nil {
		return err
	}
	if err := syncDir(filepath.Dir(filepath.Clean(dst))); err != nil {
		return err
	}
	return os.RemoveAll(bak)
}

// writeSnapshot writes the snapshot files (manifest + one CSV per table)
// into dir, which must already exist, fsyncing each file so a subsequent
// rename publishes fully durable contents. Save and Checkpoint share it.
func writeSnapshot(db *catalog.Database, reg *core.Registry, dir string) error {
	m := manifest{Version: formatVersion}
	for _, name := range db.TableNames() {
		t, _ := db.Table(name)
		tm := tableManifest{Name: name, Rows: t.RowCount(), File: name + ".csv"}
		for ord, c := range t.Schema.Columns {
			tm.Columns = append(tm.Columns, colDef{Name: c.Name, Kind: kindName(c.Kind)})
			if t.HasIndex(ord) {
				tm.Indexes = append(tm.Indexes, c.Name)
			}
		}
		if err := saveTable(t, filepath.Join(dir, tm.File)); err != nil {
			return fmt.Errorf("persist: table %s: %w", name, err)
		}
		m.Tables = append(m.Tables, tm)
	}
	for _, name := range viewNames(db) {
		v, _ := db.View(name)
		m.Views = append(m.Views, viewManifest{Name: name, SQL: sqlast.SQL(v)})
	}
	if reg != nil {
		for _, r := range reg.All() {
			m.Rules = append(m.Rules, r.Rule.String())
		}
	}
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	if err := writeFileSync(filepath.Join(dir, "manifest.json"), blob); err != nil {
		return err
	}
	return syncDir(dir)
}

// writeFileSync writes path and fsyncs it before closing.
func writeFileSync(path string, blob []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load restores a database and rules catalog from a directory written by
// Save. Indexes are rebuilt and statistics re-analyzed. If dir has no
// manifest but dir+".bak" does — the signature of a crash inside Save's
// rename window — the backup is loaded instead.
func Load(dir string) (*catalog.Database, *core.Registry, error) {
	blob, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if os.IsNotExist(err) {
		if bb, berr := os.ReadFile(filepath.Join(dir+".bak", "manifest.json")); berr == nil {
			blob, err, dir = bb, nil, dir+".bak"
		}
	}
	if err != nil {
		return nil, nil, err
	}
	var m manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, nil, fmt.Errorf("persist: bad manifest: %w", err)
	}
	if m.Version != formatVersion {
		return nil, nil, fmt.Errorf("persist: unsupported format version %d", m.Version)
	}
	db := catalog.NewDatabase()
	for _, tm := range m.Tables {
		s := &schema.Schema{}
		for _, c := range tm.Columns {
			k, err := kindOf(c.Kind)
			if err != nil {
				return nil, nil, fmt.Errorf("persist: table %s: %w", tm.Name, err)
			}
			s.Columns = append(s.Columns, schema.Col(tm.Name, c.Name, k))
		}
		t := storage.NewTable(tm.Name, s)
		if err := loadTable(t, filepath.Join(dir, tm.File)); err != nil {
			return nil, nil, fmt.Errorf("persist: table %s: %w", tm.Name, err)
		}
		if t.RowCount() != tm.Rows {
			return nil, nil, fmt.Errorf("persist: table %s has %d rows, manifest says %d", tm.Name, t.RowCount(), tm.Rows)
		}
		for _, col := range tm.Indexes {
			if err := t.BuildIndex(col); err != nil {
				return nil, nil, err
			}
		}
		t.Analyze()
		if err := db.AddTable(t); err != nil {
			return nil, nil, err
		}
	}
	for _, vm := range m.Views {
		stmt, err := sqlparser.Parse(vm.SQL)
		if err != nil {
			return nil, nil, fmt.Errorf("persist: view %s: %w", vm.Name, err)
		}
		if err := db.AddView(vm.Name, stmt); err != nil {
			return nil, nil, err
		}
	}
	reg := core.NewRegistry(db)
	for _, src := range m.Rules {
		if _, err := reg.Define(src); err != nil {
			return nil, nil, fmt.Errorf("persist: rule: %w", err)
		}
	}
	return db, reg, nil
}

func saveTable(t *storage.Table, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	rec := make([]string, t.Schema.Len())
	for _, row := range t.AllRows() {
		for i, v := range row {
			rec[i] = encodeValue(v)
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	return f.Sync()
}

func loadTable(t *storage.Table, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.FieldsPerRecord = t.Schema.Len()
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		row := make(schema.Row, len(rec))
		for i, field := range rec {
			v, err := decodeValue(field, t.Schema.Columns[i].Kind)
			if err != nil {
				return fmt.Errorf("column %s: %w", t.Schema.Columns[i].Name, err)
			}
			row[i] = v
		}
		if err := t.Append(row); err != nil {
			return err
		}
	}
}

// nullMarker encodes SQL NULL; literal strings beginning with a backslash
// are escaped by doubling it.
const nullMarker = `\N`

func encodeValue(v types.Value) string {
	switch v.Kind() {
	case types.KindNull:
		return nullMarker
	case types.KindBool:
		if v.Bool() {
			return "t"
		}
		return "f"
	case types.KindInt:
		return strconv.FormatInt(v.Int(), 10)
	case types.KindFloat:
		return strconv.FormatFloat(v.Float(), 'g', -1, 64)
	case types.KindString:
		s := v.Str()
		if strings.HasPrefix(s, `\`) {
			return `\` + s
		}
		return s
	case types.KindTime:
		return strconv.FormatInt(v.TimeUsec(), 10)
	case types.KindInterval:
		return strconv.FormatInt(v.IntervalUsec(), 10)
	}
	return nullMarker
}

func decodeValue(s string, kind types.Kind) (types.Value, error) {
	if s == nullMarker {
		return types.Null, nil
	}
	switch kind {
	case types.KindBool:
		switch s {
		case "t":
			return types.NewBool(true), nil
		case "f":
			return types.NewBool(false), nil
		}
		return types.Null, fmt.Errorf("bad bool %q", s)
	case types.KindInt:
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return types.Null, err
		}
		return types.NewInt(n), nil
	case types.KindFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return types.Null, err
		}
		return types.NewFloat(f), nil
	case types.KindString:
		if strings.HasPrefix(s, `\\`) {
			return types.NewString(s[1:]), nil
		}
		return types.NewString(s), nil
	case types.KindTime:
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return types.Null, err
		}
		return types.NewTime(n), nil
	case types.KindInterval:
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return types.Null, err
		}
		return types.NewInterval(n), nil
	}
	return types.Null, fmt.Errorf("cannot decode kind %v", kind)
}

func kindName(k types.Kind) string { return k.String() }

func kindOf(name string) (types.Kind, error) {
	for _, k := range []types.Kind{
		types.KindBool, types.KindInt, types.KindFloat,
		types.KindString, types.KindTime, types.KindInterval,
	} {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown kind %q", name)
}

// viewNames enumerates registered views; the catalog exposes lookups but
// not listing, so Save tracks names through a side channel here.
func viewNames(db *catalog.Database) []string {
	return db.ViewNames()
}
