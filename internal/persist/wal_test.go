package persist

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/colvec"
	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/types"
)

// walOp is one engine mutation in a randomized durability workload. Each
// op is applied to the live catalog and logged to the WAL, mirroring the
// facade's write path; the test then corrupts the log and checks that
// recovery reproduces exactly the ops whose records survived.
type walOp struct {
	kind   string // create, append, index, view, rule, checkpoint
	table  string
	column string
	kinds  []types.Kind // create: the table's column kinds
	rows   []schema.Row
	src    string // rule source or view SQL
	name   string // view / rule name

	// Bookkeeping stamped at log time.
	seq uint64 // wal file the op's record landed in
	end int64  // file offset just past the op's record
}

// opKinds the generator draws from, weighted toward appends.
var opKinds = []string{"append", "append", "append", "append", "create", "index", "view", "rule", "checkpoint"}

// genOps builds a random mutation script. The first op always creates a
// base table so appends have somewhere to go.
func genOps(rng *rand.Rand, n int) []walOp {
	tables := []string{}
	cols := map[string][]types.Kind{}
	allKinds := []types.Kind{
		types.KindBool, types.KindInt, types.KindFloat,
		types.KindString, types.KindTime, types.KindInterval,
	}
	newTable := func() walOp {
		name := fmt.Sprintf("t%d", len(tables))
		// epc/rtime first: rules need the cluster/sequence key columns.
		kinds := []types.Kind{types.KindString, types.KindTime}
		for i := 0; i < 1+rng.Intn(4); i++ {
			kinds = append(kinds, allKinds[rng.Intn(len(allKinds))])
		}
		tables = append(tables, name)
		cols[name] = kinds
		return walOp{kind: "create", table: name, kinds: kinds}
	}
	ops := []walOp{newTable()}
	views, rules := 0, 0
	for len(ops) < n {
		switch k := opKinds[rng.Intn(len(opKinds))]; k {
		case "create":
			ops = append(ops, newTable())
		case "append":
			tbl := tables[rng.Intn(len(tables))]
			rows := make([]schema.Row, 1+rng.Intn(8))
			for i := range rows {
				row := make(schema.Row, len(cols[tbl]))
				for j, kind := range cols[tbl] {
					row[j] = randValue(rng, kind)
				}
				rows[i] = row
			}
			ops = append(ops, walOp{kind: "append", table: tbl, rows: rows})
		case "index":
			tbl := tables[rng.Intn(len(tables))]
			ord := rng.Intn(len(cols[tbl]))
			ops = append(ops, walOp{kind: "index", table: tbl, column: colName(ord)})
		case "view":
			tbl := tables[rng.Intn(len(tables))]
			name := fmt.Sprintf("v%d", views)
			views++
			ops = append(ops, walOp{kind: "view", table: tbl, name: name,
				src: fmt.Sprintf("select epc from %s where epc is not null", tbl)})
		case "rule":
			tbl := tables[rng.Intn(len(tables))]
			name := fmt.Sprintf("r%d", rules)
			rules++
			ops = append(ops, walOp{kind: "rule", name: name,
				src: fmt.Sprintf("DEFINE %s ON %s AS (A, B) WHERE A.epc = B.epc AND B.rtime - A.rtime < 5 mins ACTION DELETE B", name, tbl)})
		case "checkpoint":
			ops = append(ops, walOp{kind: "checkpoint"})
		}
	}
	return ops
}

func randValue(rng *rand.Rand, k types.Kind) types.Value {
	if rng.Intn(8) == 0 {
		return types.Null
	}
	switch k {
	case types.KindBool:
		return types.NewBool(rng.Intn(2) == 0)
	case types.KindInt:
		return types.NewInt(rng.Int63() - rng.Int63())
	case types.KindFloat:
		return types.NewFloat(rng.NormFloat64() * 1e6)
	case types.KindString:
		switch rng.Intn(5) {
		case 0:
			return types.NewString("")
		case 1:
			return types.NewString(`\N`) // looks like the null marker
		case 2:
			return types.NewString("comma, \"quote\"\nline")
		default:
			return types.NewString(fmt.Sprintf("epc-%d", rng.Intn(1000)))
		}
	case types.KindTime:
		return types.NewTime(rng.Int63n(1 << 40))
	case types.KindInterval:
		return types.NewInterval(rng.Int63n(1 << 30))
	}
	return types.Null
}

// applyRef applies one op to a reference catalog without any WAL.
func applyRef(t *testing.T, db *catalog.Database, reg *core.Registry, op walOp, schemas map[string]*schema.Schema) {
	t.Helper()
	switch op.kind {
	case "create":
		if err := db.AddTable(storage.NewTable(op.table, schemas[op.table])); err != nil {
			t.Fatal(err)
		}
	case "append":
		tab, _ := db.Table(op.table)
		for _, r := range op.rows {
			if err := tab.Append(r); err != nil {
				t.Fatal(err)
			}
		}
	case "index":
		tab, _ := db.Table(op.table)
		if err := tab.BuildIndex(op.column); err != nil {
			t.Fatal(err)
		}
	case "view":
		stmt, err := sqlparser.Parse(op.src)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.AddView(op.name, stmt); err != nil {
			t.Fatal(err)
		}
	case "rule":
		if _, err := reg.Define(op.src); err != nil {
			t.Fatal(err)
		}
	case "checkpoint":
		// No catalog effect.
	}
}

// applyLive applies one op to the durable catalog AND logs it, mirroring
// the facade's order (log, then apply), then stamps the op with its WAL
// position.
func applyLive(t *testing.T, db *catalog.Database, reg *core.Registry, w *WAL, op *walOp, schemas map[string]*schema.Schema) {
	t.Helper()
	switch op.kind {
	case "create":
		if err := w.AppendDDL(NewTableDDL(op.table, schemas[op.table])); err != nil {
			t.Fatal(err)
		}
		if err := db.AddTable(storage.NewTable(op.table, schemas[op.table])); err != nil {
			t.Fatal(err)
		}
	case "append":
		if err := w.AppendBatch(op.table, op.rows); err != nil {
			t.Fatal(err)
		}
		tab, _ := db.Table(op.table)
		for _, r := range op.rows {
			if err := tab.Append(r); err != nil {
				t.Fatal(err)
			}
		}
	case "index":
		if err := w.AppendDDL(DDLRecord{Op: DDLBuildIndex, Table: op.table, Column: op.column}); err != nil {
			t.Fatal(err)
		}
		tab, _ := db.Table(op.table)
		if err := tab.BuildIndex(op.column); err != nil {
			t.Fatal(err)
		}
	case "view":
		if err := w.AppendDDL(DDLRecord{Op: DDLCreateView, Name: op.name, SQL: op.src}); err != nil {
			t.Fatal(err)
		}
		stmt, err := sqlparser.Parse(op.src)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.AddView(op.name, stmt); err != nil {
			t.Fatal(err)
		}
	case "rule":
		if _, err := reg.Define(op.src); err != nil {
			t.Fatal(err)
		}
		if err := w.AppendRule(op.src); err != nil {
			t.Fatal(err)
		}
	case "checkpoint":
		if err := w.Checkpoint(db, reg); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	op.seq, op.end = w.Seq(), w.Size()
}

// colName names the generator's columns: the rule-key pair then c2, c3...
func colName(j int) string {
	switch j {
	case 0:
		return "epc"
	case 1:
		return "rtime"
	}
	return fmt.Sprintf("c%d", j)
}

// buildSchemas materializes the schema each create op declared, so live
// and reference replays agree byte for byte.
func buildSchemas(ops []walOp) map[string]*schema.Schema {
	schemas := map[string]*schema.Schema{}
	for _, op := range ops {
		if op.kind != "create" {
			continue
		}
		s := &schema.Schema{}
		for j, kind := range op.kinds {
			s.Columns = append(s.Columns, schema.Col(op.table, colName(j), kind))
		}
		schemas[op.table] = s
	}
	return schemas
}

// snapshotBytes renders a catalog+registry as the deterministic snapshot
// file set, for byte-level comparison of recovered vs reference DBs.
func snapshotBytes(t *testing.T, db *catalog.Database, reg *core.Registry) map[string][]byte {
	t.Helper()
	dir := t.TempDir()
	if err := writeSnapshot(db, reg, dir); err != nil {
		t.Fatal(err)
	}
	files := map[string][]byte{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		blob, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		files[e.Name()] = blob
	}
	return files
}

func compareSnapshots(t *testing.T, got, want map[string][]byte, ctx string) {
	t.Helper()
	for name, blob := range want {
		g, ok := got[name]
		if !ok {
			t.Fatalf("%s: recovered snapshot missing %s", ctx, name)
		}
		if !bytes.Equal(g, blob) {
			t.Fatalf("%s: %s differs\nrecovered:\n%s\nreference:\n%s", ctx, name, clip(g), clip(blob))
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Fatalf("%s: recovered snapshot has extra file %s", ctx, name)
		}
	}
}

func clip(b []byte) string {
	const max = 2000
	if len(b) > max {
		return string(b[:max]) + "..."
	}
	return string(b)
}

// TestRecoveryAtEveryFaultPoint is the durability property test: a random
// mutation script is logged and applied, the process "dies" (the log is
// truncated at a random byte, or a random byte is flipped), and reopening
// the root must yield a catalog byte-identical to a reference DB that
// applied exactly the ops whose records survived in the durable prefix.
func TestRecoveryAtEveryFaultPoint(t *testing.T) {
	iters := 12
	if testing.Short() {
		iters = 4
	}
	for seed := 0; seed < iters; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(seed)*7919 + 17))
			ops := genOps(rng, 12+rng.Intn(20))
			schemas := buildSchemas(ops)

			dir := t.TempDir()
			db, reg, w, info, err := OpenDurable(dir, nil, DurableOpts{Policy: FsyncOff})
			if err != nil {
				t.Fatal(err)
			}
			if info.Checkpoint != "" || info.ReplayedRecords != 0 {
				t.Fatalf("fresh root recovered something: %+v", info)
			}
			for i := range ops {
				applyLive(t, db, reg, w, &ops[i], schemas)
			}
			if err := w.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			// Corrupt the live (highest-seq) wal file at a random point.
			maxSeq := ops[len(ops)-1].seq
			path := filepath.Join(dir, walFileName(maxSeq))
			st, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			size := st.Size()
			cut := walHeaderSize + rng.Int63n(size-walHeaderSize+1)
			mode := "truncate"
			if rng.Intn(2) == 0 && cut < size {
				mode = "bitflip"
				flipByte(t, path, cut)
			} else {
				if err := os.Truncate(path, cut); err != nil {
					t.Fatal(err)
				}
			}

			// Reference: exactly the ops whose records are inside the
			// durable prefix — earlier wal files (checkpointed) entirely,
			// and the live file up to the cut.
			refDB := catalog.NewDatabase()
			refReg := core.NewRegistry(refDB)
			survived := 0
			for _, op := range ops {
				if op.seq < maxSeq || op.end <= cut {
					applyRef(t, refDB, refReg, op, schemas)
					survived++
				}
			}

			db2, reg2, w2, info2, err := OpenDurable(dir, nil, DurableOpts{Policy: FsyncOff})
			if err != nil {
				t.Fatalf("recovery failed (%s at %d/%d): %v", mode, cut, size, err)
			}
			defer w2.Close()
			ctx := fmt.Sprintf("seed %d, %s at %d/%d, %d/%d ops survive",
				seed, mode, cut, size, survived, len(ops))
			compareSnapshots(t, snapshotBytes(t, db2, reg2), snapshotBytes(t, refDB, refReg), ctx)
			if cut < size && info2.TruncatedBytes == 0 && mode == "truncate" && cut != lastGoodEnd(ops, maxSeq, cut) {
				t.Errorf("%s: truncation not reported: %+v", ctx, info2)
			}

			// The recovered WAL must accept and persist new appends.
			if tab, ok := db2.Table("t0"); ok {
				row := make(schema.Row, tab.Schema.Len())
				for j := range row {
					row[j] = types.Null
				}
				if err := w2.AppendBatch("t0", []schema.Row{row}); err != nil {
					t.Fatal(err)
				}
				if err := tab.Append(row); err != nil {
					t.Fatal(err)
				}
				want := tab.RowCount()
				if err := w2.Close(); err != nil {
					t.Fatal(err)
				}
				db3, _, w3, _, err := OpenDurable(dir, nil, DurableOpts{Policy: FsyncOff})
				if err != nil {
					t.Fatal(err)
				}
				defer w3.Close()
				tab3, _ := db3.Table("t0")
				if tab3.RowCount() != want {
					t.Errorf("%s: append after recovery lost: %d rows, want %d", ctx, tab3.RowCount(), want)
				}
			}
		})
	}
}

// lastGoodEnd finds the largest op end at or below cut in file seq.
func lastGoodEnd(ops []walOp, seq uint64, cut int64) int64 {
	end := int64(walHeaderSize)
	for _, op := range ops {
		if op.seq == seq && op.end <= cut && op.end > end {
			end = op.end
		}
	}
	return end
}

func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b := make([]byte, 1)
	if _, err := f.ReadAt(b, off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x40
	if _, err := f.WriteAt(b, off); err != nil {
		t.Fatal(err)
	}
}

// TestTornWriteFaultRecovers injects a torn append mid-stream: the failed
// batch must not survive recovery, everything acked before it must.
func TestTornWriteFaultRecovers(t *testing.T) {
	dir := t.TempDir()
	faults := &CrashFaults{}
	db, reg, w, _, err := OpenDurable(dir, nil, DurableOpts{Policy: FsyncAlways, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	s := schema.New(schema.Col("r", "epc", types.KindString))
	if err := w.AppendDDL(NewTableDDL("r", s)); err != nil {
		t.Fatal(err)
	}
	if err := db.AddTable(storage.NewTable("r", s)); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBatch("r", []schema.Row{{types.NewString("acked")}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	faults.TornWrite = true
	err = w.AppendBatch("r", []schema.Row{{types.NewString("torn-away")}})
	if err == nil {
		t.Fatal("torn write must fail the append")
	}
	// The WAL is now unusable: later appends must refuse too.
	if err := w.AppendBatch("r", []schema.Row{{types.NewString("after")}}); err == nil {
		t.Fatal("append after torn write must fail")
	}
	if err := w.Checkpoint(db, reg); err == nil {
		t.Fatal("checkpoint after torn write must fail")
	}
	w.Close()

	db2, _, w2, info, err := OpenDurable(dir, nil, DurableOpts{Policy: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if info.TruncatedBytes == 0 {
		t.Errorf("torn tail not counted: %+v", info)
	}
	tab, _ := db2.Table("r")
	if tab.RowCount() != 1 {
		t.Fatalf("recovered %d rows, want the 1 acked row", tab.RowCount())
	}
	if got := tab.AllRows()[0][0].Str(); got != "acked" {
		t.Fatalf("recovered row = %q", got)
	}
}

// TestSyncErrFaultFailsCommit: under FsyncAlways a failing fsync must
// surface on Commit so the engine never acknowledges the batch.
func TestSyncErrFaultFailsCommit(t *testing.T) {
	dir := t.TempDir()
	faults := &CrashFaults{SyncErr: true}
	_, _, w, _, err := OpenDurable(dir, nil, DurableOpts{Policy: FsyncAlways, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.AppendRule("DEFINE x ON t AS (A, B) WHERE A.c = B.c ACTION DELETE B"); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err == nil {
		t.Fatal("commit with failing fsync must error")
	}
	faults.SyncErr = false
	if err := w.Commit(); err != nil {
		t.Fatalf("commit after fault cleared: %v", err)
	}
}

// TestCheckpointCrashRecoversFromPrevious kills a checkpoint after its
// temp dir is complete but before publication: recovery must use the
// previous checkpoint plus the full WAL, and sweep the orphaned tmp dir.
func TestCheckpointCrashRecoversFromPrevious(t *testing.T) {
	dir := t.TempDir()
	faults := &CrashFaults{}
	db, reg, w, _, err := OpenDurable(dir, nil, DurableOpts{Policy: FsyncAlways, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	s := schema.New(schema.Col("r", "n", types.KindInt))
	if err := w.AppendDDL(NewTableDDL("r", s)); err != nil {
		t.Fatal(err)
	}
	if err := db.AddTable(storage.NewTable("r", s)); err != nil {
		t.Fatal(err)
	}
	tab, _ := db.Table("r")
	append1 := func(n int64) {
		t.Helper()
		if err := w.AppendBatch("r", []schema.Row{{types.NewInt(n)}}); err != nil {
			t.Fatal(err)
		}
		if err := tab.Append(schema.Row{types.NewInt(n)}); err != nil {
			t.Fatal(err)
		}
		if err := w.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	append1(1)
	if err := w.Checkpoint(db, reg); err != nil { // good checkpoint
		t.Fatal(err)
	}
	append1(2)

	faults.CheckpointCrash = true
	if err := w.Checkpoint(db, reg); err == nil {
		t.Fatal("crashed checkpoint must error")
	}
	w.Close()

	db2, _, w2, info, err := OpenDurable(dir, nil, DurableOpts{Policy: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if info.Checkpoint == "" {
		t.Error("previous checkpoint not used")
	}
	tab2, _ := db2.Table("r")
	if tab2.RowCount() != 2 {
		t.Fatalf("recovered %d rows, want 2 (checkpoint row + replayed row)", tab2.RowCount())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			t.Errorf("orphaned %s not swept", e.Name())
		}
	}
}

// TestCheckpointOverLeftoverDir: a checkpoint-N directory left by an
// attempt that failed before publication must not wedge the next
// checkpoint on ENOTEMPTY — it is unpublished, so it is removed and
// replaced.
func TestCheckpointOverLeftoverDir(t *testing.T) {
	dir := t.TempDir()
	db, reg, w, _, err := OpenDurable(dir, nil, DurableOpts{Policy: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	s := schema.New(schema.Col("r", "n", types.KindInt))
	if err := w.AppendDDL(NewTableDDL("r", s)); err != nil {
		t.Fatal(err)
	}
	if err := db.AddTable(storage.NewTable("r", s)); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	// Plant the wreck of a failed earlier attempt: the name the next
	// checkpoint will want, already holding a stale file.
	stale := filepath.Join(dir, fmt.Sprintf(ckptNameFmt, w.Seq()+1))
	if err := os.MkdirAll(stale, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(stale, "junk"), []byte("stale"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := w.Checkpoint(db, reg); err != nil {
		t.Fatalf("checkpoint over leftover dir: %v", err)
	}
	if _, err := os.Stat(filepath.Join(stale, "junk")); !os.IsNotExist(err) {
		t.Error("stale checkpoint contents survived the republish")
	}
	if _, err := os.Stat(filepath.Join(stale, metaFile)); err != nil {
		t.Errorf("republished checkpoint has no stamp: %v", err)
	}
	db2, _, w2, info, err := OpenDurable(dir, nil, DurableOpts{Policy: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if info.Checkpoint == "" {
		t.Error("republished checkpoint not used by recovery")
	}
	tab, _ := db2.Table("r")
	if tab == nil {
		t.Fatal("table lost across the republished checkpoint")
	}
}

// TestCheckpointBoundsReplay: records before a checkpoint are not
// replayed (their files are gone), records after are.
func TestCheckpointBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	db, reg, w, _, err := OpenDurable(dir, nil, DurableOpts{Policy: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	s := schema.New(schema.Col("r", "n", types.KindInt))
	if err := w.AppendDDL(NewTableDDL("r", s)); err != nil {
		t.Fatal(err)
	}
	if err := db.AddTable(storage.NewTable("r", s)); err != nil {
		t.Fatal(err)
	}
	tab, _ := db.Table("r")
	for i := 0; i < 10; i++ {
		if err := w.AppendBatch("r", []schema.Row{{types.NewInt(int64(i))}}); err != nil {
			t.Fatal(err)
		}
		tab.Append(schema.Row{types.NewInt(int64(i))})
		if i == 4 {
			if err := w.Checkpoint(db, reg); err != nil {
				t.Fatal(err)
			}
			if w.Seq() != 2 {
				t.Fatalf("seq after checkpoint = %d, want 2", w.Seq())
			}
			if _, err := os.Stat(filepath.Join(dir, walFileName(1))); !os.IsNotExist(err) {
				t.Error("covered wal file not deleted")
			}
		}
	}
	w.Close()

	db2, _, w2, info, err := OpenDurable(dir, nil, DurableOpts{Policy: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if info.Checkpoint == "" || info.ReplayedRecords != 5 || info.ReplayedRows != 5 {
		t.Fatalf("recovery info = %+v, want checkpoint + 5 replayed records", info)
	}
	tab2, _ := db2.Table("r")
	if tab2.RowCount() != 10 {
		t.Fatalf("recovered %d rows, want 10", tab2.RowCount())
	}
}

// TestSeedCheckpointsImmediately: a fresh root with a seed callback is
// checkpointed before OpenDurable returns, so a crash right after open
// loses nothing.
func TestSeedCheckpointsImmediately(t *testing.T) {
	dir := t.TempDir()
	seed := func() (*catalog.Database, *core.Registry, error) {
		db, reg := buildSampleDB(t)
		return db, reg, nil
	}
	db, _, w, info, err := OpenDurable(dir, seed, DurableOpts{Policy: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Seeded {
		t.Error("seed not reported")
	}
	tab, _ := db.Table("reads")
	want := tab.RowCount()
	w.Close()

	// Reopen with a seed that must NOT run again.
	db2, _, w2, info2, err := OpenDurable(dir, func() (*catalog.Database, *core.Registry, error) {
		t.Fatal("seed ran on a non-empty root")
		return nil, nil, nil
	}, DurableOpts{Policy: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if info2.Seeded || info2.Checkpoint == "" {
		t.Fatalf("second open info = %+v", info2)
	}
	tab2, _ := db2.Table("reads")
	if tab2.RowCount() != want {
		t.Fatalf("seeded rows lost: %d, want %d", tab2.RowCount(), want)
	}
}

// TestAtomicSaveKeepsPreviousSnapshot: Save over an existing snapshot
// must leave either the old or the new state, and a crash that leaves
// only the .bak directory must still load.
func TestAtomicSaveKeepsPreviousSnapshot(t *testing.T) {
	db, reg := buildSampleDB(t)
	dir := filepath.Join(t.TempDir(), "snap")
	if err := Save(db, reg, dir); err != nil {
		t.Fatal(err)
	}
	// Grow and save again over the same directory.
	tab, _ := db.Table("reads")
	tab.Append(schema.Row{types.NewString("e9"), types.NewTime(9000), types.NewString("dock"),
		types.NewInt(1), types.NewFloat(1), types.NewBool(true), types.NewInterval(1)})
	if err := Save(db, reg, dir); err != nil {
		t.Fatal(err)
	}
	db2, _, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	t2, _ := db2.Table("reads")
	if t2.RowCount() != tab.RowCount() {
		t.Fatalf("second save lost rows: %d vs %d", t2.RowCount(), tab.RowCount())
	}
	if _, err := os.Stat(dir + ".bak"); !os.IsNotExist(err) {
		t.Error(".bak not cleaned up after swap")
	}

	// Crash signature: dir vanished mid-swap, .bak still holds the old
	// snapshot. Load must fall back to it.
	if err := os.Rename(dir, dir+".bak"); err != nil {
		t.Fatal(err)
	}
	db3, _, err := Load(dir)
	if err != nil {
		t.Fatalf("load from .bak fallback: %v", err)
	}
	t3, _ := db3.Table("reads")
	if t3.RowCount() != tab.RowCount() {
		t.Fatalf(".bak fallback lost rows: %d", t3.RowCount())
	}
}

// TestTinySegmentRoundTrip persists a table sealed into many tiny
// segments and replays an equivalent WAL, checking both paths reproduce
// every row at segment boundaries.
func TestTinySegmentRoundTrip(t *testing.T) {
	old := storage.DefaultSegmentRows
	storage.DefaultSegmentRows = 64
	t.Cleanup(func() { storage.DefaultSegmentRows = old })

	s := schema.New(
		schema.Col("tiny", "n", types.KindInt),
		schema.Col("tiny", "s", types.KindString),
	)
	const rows = 64*3 + 17 // three sealed segments plus a live tail
	mk := func() *storage.Table {
		tab := storage.NewTable("tiny", s)
		for i := 0; i < rows; i++ {
			tab.Append(schema.Row{types.NewInt(int64(i)), types.NewString(fmt.Sprintf("s%d", i%7))})
		}
		return tab
	}

	// Snapshot path.
	db := catalog.NewDatabase()
	db.AddTable(mk())
	dir := t.TempDir()
	if err := Save(db, nil, dir); err != nil {
		t.Fatal(err)
	}
	db2, _, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	checkTiny := func(db *catalog.Database, path string) {
		t.Helper()
		tab, _ := db.Table("tiny")
		if tab.RowCount() != rows {
			t.Fatalf("%s: %d rows, want %d", path, tab.RowCount(), rows)
		}
		for i, r := range tab.AllRows() {
			if r[0].Int() != int64(i) {
				t.Fatalf("%s: row %d = %v", path, i, r[0])
			}
		}
	}
	checkTiny(db2, "snapshot")

	// WAL replay path: log the same rows in uneven batches.
	wdir := t.TempDir()
	db3, _, w, _, err := OpenDurable(wdir, nil, DurableOpts{Policy: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendDDL(NewTableDDL("tiny", s)); err != nil {
		t.Fatal(err)
	}
	db3.AddTable(storage.NewTable("tiny", s))
	tab3, _ := db3.Table("tiny")
	for i := 0; i < rows; {
		batch := 29
		if i+batch > rows {
			batch = rows - i
		}
		var rs []schema.Row
		for j := 0; j < batch; j++ {
			row := schema.Row{types.NewInt(int64(i + j)), types.NewString(fmt.Sprintf("s%d", (i+j)%7))}
			rs = append(rs, row)
			tab3.Append(row)
		}
		if err := w.AppendBatch("tiny", rs); err != nil {
			t.Fatal(err)
		}
		i += batch
	}
	w.Close()
	db4, _, w4, _, err := OpenDurable(wdir, nil, DurableOpts{Policy: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer w4.Close()
	checkTiny(db4, "wal replay")
}

// TestDictOverflowRoundTrip persists a string column with more distinct
// values than the dictionary cap, forcing the raw (non-dict) encoding,
// and checks both the snapshot and WAL-replay paths reproduce it.
func TestDictOverflowRoundTrip(t *testing.T) {
	n := colvec.DictMaxCard + 512
	if n > storage.DefaultSegmentRows {
		t.Skipf("segment rows %d too small for dict overflow in one segment", storage.DefaultSegmentRows)
	}
	s := schema.New(schema.Col("wide", "s", types.KindString))
	db := catalog.NewDatabase()
	tab := storage.NewTable("wide", s)
	for i := 0; i < n; i++ {
		tab.Append(schema.Row{types.NewString(fmt.Sprintf("unique-value-%06d", i))})
	}
	db.AddTable(tab)

	dir := t.TempDir()
	if err := Save(db, nil, dir); err != nil {
		t.Fatal(err)
	}
	db2, _, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	tab2, _ := db2.Table("wide")
	if tab2.RowCount() != n {
		t.Fatalf("snapshot: %d rows, want %d", tab2.RowCount(), n)
	}
	for i, r := range tab2.AllRows() {
		if want := fmt.Sprintf("unique-value-%06d", i); r[0].Str() != want {
			t.Fatalf("snapshot row %d = %q, want %q", i, r[0].Str(), want)
		}
	}

	// WAL replay of the same overflowing column.
	wdir := t.TempDir()
	db3, _, w, _, err := OpenDurable(wdir, nil, DurableOpts{Policy: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendDDL(NewTableDDL("wide", s)); err != nil {
		t.Fatal(err)
	}
	db3.AddTable(storage.NewTable("wide", s))
	tab3, _ := db3.Table("wide")
	var rs []schema.Row
	for i := 0; i < n; i++ {
		row := schema.Row{types.NewString(fmt.Sprintf("unique-value-%06d", i))}
		rs = append(rs, row)
		tab3.Append(row)
	}
	if err := w.AppendBatch("wide", rs); err != nil {
		t.Fatal(err)
	}
	w.Close()
	db4, _, w4, _, err := OpenDurable(wdir, nil, DurableOpts{Policy: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer w4.Close()
	tab4, _ := db4.Table("wide")
	if tab4.RowCount() != n {
		t.Fatalf("wal replay: %d rows, want %d", tab4.RowCount(), n)
	}
	for i, r := range tab4.AllRows() {
		if want := fmt.Sprintf("unique-value-%06d", i); r[0].Str() != want {
			t.Fatalf("wal replay row %d = %q, want %q", i, r[0].Str(), want)
		}
	}
}

// TestFsyncPolicyStrings pins the flag spellings.
func TestFsyncPolicyStrings(t *testing.T) {
	for _, p := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncOff} {
		got, err := ParseFsyncPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParseFsyncPolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("bad policy must fail")
	}
}
