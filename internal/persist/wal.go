// Write-ahead log for the deferred-cleansing engine's ingest path.
//
// The paper defers cleansing to query time so ingest can accept raw RFID
// reads cheaply and continuously; this file makes that ingest durable. A
// WAL file is a 16-byte header (magic, version, sequence number) followed
// by length-prefixed records:
//
//	uint32 payload length (LE)
//	uint32 CRC32C over (type byte ‖ payload)
//	uint8  record type
//	payload
//
// Record payloads are the same deliberately boring encodings the snapshot
// format uses: append batches carry rows as encodeValue strings inside a
// small JSON envelope, DDL records carry a JSON op, and rule records carry
// the raw extended SQL-TS source. Replay decodes by the table schema in
// effect at that point of the log, exactly as the live path did.
//
// Torn writes are the expected failure: recovery reads records until the
// first short, oversized, or checksum-failing frame, truncates the file
// there, and resumes appending at the cut. A record is therefore durable
// iff it is entirely on disk with a valid checksum — there is no partial
// replay of a batch.
package persist

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/schema"
)

// FsyncPolicy selects when acknowledged WAL writes are forced to disk.
type FsyncPolicy int

const (
	// FsyncAlways syncs before every append acknowledgment: an acked batch
	// survives power loss. Concurrent committers share one fsync (group
	// commit).
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs on a timer: an acked batch survives process
	// death immediately, and power loss after at most the sync interval.
	FsyncInterval
	// FsyncOff never syncs: the OS flushes at its leisure. Acked batches
	// survive process death (the write hit the page cache) but not
	// necessarily power loss.
	FsyncOff
)

// String renders the policy the way flags and docs spell it.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncOff:
		return "off"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// ParseFsyncPolicy reads a policy name: always, interval, or off.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("persist: unknown fsync policy %q (want always, interval, or off)", s)
}

// CrashFaults injects durability failures for tests and the soak suite.
// The zero value injects nothing. The facade maps govern.Inject's WAL
// fields onto this so persist stays decoupled from the governance layer.
type CrashFaults struct {
	// TornWrite makes the next WAL append write only a prefix of its frame
	// and then fail as if the process died mid-write: the append reports
	// ErrInjectedCrash, and the WAL refuses further appends. Reopening the
	// directory must recover exactly the previously acknowledged records.
	TornWrite bool
	// SyncErr makes every fsync fail. Under FsyncAlways the append that
	// asked for the sync fails; the batch must not be acknowledged.
	SyncErr bool
	// CheckpointCrash makes Checkpoint write its complete temp directory
	// and then fail before publishing it — the crash window in which the
	// previous checkpoint plus the full WAL must still recover the DB.
	CheckpointCrash bool
}

// ErrInjectedCrash reports a failure forced by CrashFaults.
var ErrInjectedCrash = errors.New("persist: injected crash fault")

// WAL record types.
const (
	recAppend byte = 1 // appendPayload JSON
	recDDL    byte = 2 // DDLRecord JSON
	recRule   byte = 3 // raw extended SQL-TS source
)

const (
	walMagic      = "RWAL"
	walVersion    = 1
	walHeaderSize = 16
	recHeaderSize = 9
	// maxRecordBytes bounds a single record; a length prefix beyond it is
	// treated as corruption, not an allocation request.
	maxRecordBytes = 1 << 28
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendPayload is the JSON envelope of an append-batch record. Row
// values use the snapshot format's encodeValue strings; kinds come from
// the table schema at replay time.
type appendPayload struct {
	Table string     `json:"table"`
	Rows  [][]string `json:"rows"`
}

// DDLRecord is the JSON payload of a DDL record.
type DDLRecord struct {
	// Op: create_table, create_view, or build_index.
	Op    string `json:"op"`
	Name  string `json:"name,omitempty"`
	Table string `json:"table,omitempty"`
	// Columns describe create_table schemas (kind names as in manifests).
	Columns []colDef `json:"columns,omitempty"`
	// SQL is a create_view definition.
	SQL string `json:"sql,omitempty"`
	// Column is a build_index target.
	Column string `json:"column,omitempty"`
}

// DDL op names.
const (
	DDLCreateTable = "create_table"
	DDLCreateView  = "create_view"
	DDLBuildIndex  = "build_index"
)

// NewTableDDL builds a create_table record from a schema.
func NewTableDDL(name string, s *schema.Schema) DDLRecord {
	d := DDLRecord{Op: DDLCreateTable, Name: name}
	for _, c := range s.Columns {
		d.Columns = append(d.Columns, colDef{Name: c.Name, Kind: kindName(c.Kind)})
	}
	return d
}

// WAL is one open write-ahead log file inside a durability root. Appends
// are serialized by the caller (the engine holds its catalog write lock
// across every mutation); Sync coalesces concurrent committers into a
// shared fsync.
type WAL struct {
	dir      string
	policy   FsyncPolicy
	interval time.Duration
	faults   *CrashFaults
	// OnFsync, when set, observes each fsync's duration (metrics).
	OnFsync func(time.Duration)

	mu     sync.Mutex // guards f, seq, broken, rotation
	f      *os.File
	seq    uint64
	size   atomic.Int64 // end offset of the current file
	broken error        // sticky: set after a torn write or failed rotation

	syncMu sync.Mutex
	synced int64 // offset known durable in the current file

	tickStop chan struct{}
	tickDone chan struct{}
}

// walFileName renders the canonical wal file name for a sequence number.
func walFileName(seq uint64) string { return fmt.Sprintf("wal-%06d.log", seq) }

// walSeqOf parses a wal file name; ok is false for other files.
func walSeqOf(name string) (uint64, bool) {
	var seq uint64
	if n, err := fmt.Sscanf(name, "wal-%06d.log", &seq); n == 1 && err == nil {
		return seq, true
	}
	return 0, false
}

// createWALFile writes a fresh wal file (header only) and syncs it and
// its directory, so the file survives a crash immediately after rotation.
func createWALFile(dir string, seq uint64) (*os.File, error) {
	path := filepath.Join(dir, walFileName(seq))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, walHeaderSize)
	copy(hdr, walMagic)
	binary.LittleEndian.PutUint32(hdr[4:], walVersion)
	binary.LittleEndian.PutUint64(hdr[8:], seq)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// openWALAt opens an existing wal file for appending at offset end (the
// recovery-determined good end), truncating anything after it.
func openWALAt(dir string, seq uint64, end int64) (*os.File, error) {
	path := filepath.Join(dir, walFileName(seq))
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(end); err != nil {
		f.Close()
		return nil, err
	}
	// Persist the cut: a torn record must not reappear after another crash.
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// start finishes WAL construction: interval ticker, size bookkeeping.
func (w *WAL) start(end int64) {
	w.size.Store(end)
	w.synced = end
	if w.policy == FsyncInterval {
		if w.interval <= 0 {
			w.interval = 100 * time.Millisecond
		}
		w.tickStop = make(chan struct{})
		w.tickDone = make(chan struct{})
		go func() {
			defer close(w.tickDone)
			t := time.NewTicker(w.interval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := w.Sync(); err != nil && w.brokenErr() != nil {
						// A real fsync failure broke the WAL: appends and
						// commits now refuse, so keep the failure loud by
						// not retrying a sync the kernel may falsely
						// report as clean.
						return
					}
				case <-w.tickStop:
					return
				}
			}
		}()
	}
}

// Size reports the current wal file's end offset in bytes.
func (w *WAL) Size() int64 { return w.size.Load() }

// Seq reports the current wal file's sequence number.
func (w *WAL) Seq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Dir reports the durability root the WAL lives in.
func (w *WAL) Dir() string { return w.dir }

// Policy reports the WAL's fsync policy.
func (w *WAL) Policy() FsyncPolicy { return w.policy }

// Empty reports whether the current wal file holds no records.
func (w *WAL) Empty() bool { return w.size.Load() <= walHeaderSize }

// brokenErr reports the sticky failure that made the WAL unusable, nil
// while it is healthy.
func (w *WAL) brokenErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.broken
}

// frame assembles one record's on-disk bytes.
func frame(typ byte, payload []byte) []byte {
	buf := make([]byte, recHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	crc := crc32.Update(0, crcTable, []byte{typ})
	crc = crc32.Update(crc, crcTable, payload)
	binary.LittleEndian.PutUint32(buf[4:], crc)
	buf[8] = typ
	copy(buf[recHeaderSize:], payload)
	return buf
}

// append writes one record frame. The caller serializes appends (the
// engine's catalog write lock); durability is Sync's job.
func (w *WAL) append(typ byte, payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken != nil {
		return fmt.Errorf("persist: wal unusable after earlier failure: %w", w.broken)
	}
	buf := frame(typ, payload)
	if w.faults != nil && w.faults.TornWrite {
		w.faults.TornWrite = false
		// Simulate dying mid-write: half the frame reaches the file, the
		// rest never will. The record must not be acknowledged and must be
		// truncated away on recovery.
		torn := buf[:recHeaderSize+len(payload)/2]
		if _, err := w.f.Write(torn); err == nil {
			_ = w.f.Sync()
		}
		w.size.Add(int64(len(torn)))
		w.broken = ErrInjectedCrash
		return fmt.Errorf("%w: torn wal write", ErrInjectedCrash)
	}
	if _, err := w.f.Write(buf); err != nil {
		w.broken = err
		return fmt.Errorf("persist: wal append: %w", err)
	}
	w.size.Add(int64(len(buf)))
	return nil
}

// AppendBatch logs one append-batch record. Values are encoded with the
// snapshot format's value encoding; the batch is one record, so recovery
// replays it entirely or not at all.
func (w *WAL) AppendBatch(table string, rows []schema.Row) error {
	p := appendPayload{Table: table, Rows: make([][]string, len(rows))}
	for i, r := range rows {
		enc := make([]string, len(r))
		for j, v := range r {
			enc[j] = encodeValue(v)
		}
		p.Rows[i] = enc
	}
	blob, err := json.Marshal(p)
	if err != nil {
		return err
	}
	return w.append(recAppend, blob)
}

// AppendDDL logs one DDL record.
func (w *WAL) AppendDDL(d DDLRecord) error {
	blob, err := json.Marshal(d)
	if err != nil {
		return err
	}
	return w.append(recDDL, blob)
}

// AppendRule logs one rule-create record (the raw extended SQL-TS source).
func (w *WAL) AppendRule(src string) error {
	return w.append(recRule, []byte(src))
}

// Sync forces everything appended so far to disk. Concurrent callers
// coalesce: a committer whose record a neighbor's fsync already covered
// returns without touching the disk (group commit).
//
// If the target offset was already covered when Sync is entered the call
// succeeds without touching the file, even if the file has since been
// rotated away by a checkpoint: the rotation only happens after the
// checkpoint containing those records was published, so they are durable
// regardless. This is what keeps a committer's Commit truthful when a
// concurrent Checkpoint rotates the WAL between its append and its fsync.
//
// A real fsync failure is unrecoverable: the kernel may have dropped the
// dirty pages and cleared the error, so a later "successful" fsync would
// acknowledge records sitting after a hole that never reached disk. Sync
// therefore marks the WAL broken, and every subsequent append, commit,
// and sync refuses until the root is reopened (recovery truncates to the
// verified durable prefix).
func (w *WAL) Sync() error {
	target := w.size.Load()
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.synced >= target {
		return nil
	}
	w.mu.Lock()
	f, broken := w.f, w.broken
	w.mu.Unlock()
	if broken != nil {
		return fmt.Errorf("persist: wal unusable after earlier failure: %w", broken)
	}
	if f == nil {
		return errors.New("persist: wal closed")
	}
	// The injected fault is a transient fsync error (nothing claims the
	// pages were dropped), so it does not break the WAL — tests clear the
	// fault and retry the same commit.
	if w.faults != nil && w.faults.SyncErr {
		return fmt.Errorf("%w: wal fsync error", ErrInjectedCrash)
	}
	// Capture the end before syncing: the fsync covers at least this much.
	cur := w.size.Load()
	start := time.Now()
	if err := f.Sync(); err != nil {
		w.mu.Lock()
		if w.broken == nil {
			w.broken = err
		}
		w.mu.Unlock()
		return fmt.Errorf("persist: wal fsync: %w", err)
	}
	if w.OnFsync != nil {
		w.OnFsync(time.Since(start))
	}
	if cur > w.synced {
		w.synced = cur
	}
	return nil
}

// Commit makes the preceding appends as durable as the configured policy
// promises: a blocking fsync under always, nothing under interval (the
// ticker owns syncing) or off.
func (w *WAL) Commit() error {
	if w.policy == FsyncAlways {
		return w.Sync()
	}
	return nil
}

// rotate switches appends to a fresh wal file with the next sequence
// number and deletes files at or below covered (they are fully contained
// in a published checkpoint). Called by Checkpoint with the engine's
// write lock held, so no append races the switch; syncMu is held for the
// whole swap so an in-flight committer's Sync either finishes on the old
// file before it is closed or starts on the new one — never in between.
// (Lock order is syncMu before mu everywhere, matching Sync.)
func (w *WAL) rotate(covered uint64) error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	next := w.seq + 1
	nf, err := createWALFile(w.dir, next)
	if err != nil {
		w.broken = err
		return fmt.Errorf("persist: wal rotate: %w", err)
	}
	old := w.f
	w.f = nf
	w.seq = next
	w.size.Store(walHeaderSize)
	w.synced = walHeaderSize
	if old != nil {
		_ = old.Close()
	}
	names, err := os.ReadDir(w.dir)
	if err == nil {
		for _, e := range names {
			if seq, ok := walSeqOf(e.Name()); ok && seq <= covered {
				_ = os.Remove(filepath.Join(w.dir, e.Name()))
			}
		}
	}
	return nil
}

// Close stops the interval ticker, makes a best-effort final sync, and
// closes the file. The WAL is unusable afterwards.
func (w *WAL) Close() error {
	if w.tickStop != nil {
		close(w.tickStop)
		<-w.tickDone
		w.tickStop = nil
	}
	var syncErr error
	if w.policy != FsyncOff {
		syncErr = w.Sync()
	}
	// syncMu excludes any straggling committer's fsync from racing the
	// close (same order as Sync and rotate: syncMu before mu).
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return syncErr
	}
	err := w.f.Close()
	w.f = nil
	if syncErr != nil {
		return syncErr
	}
	return err
}

// Record is one decoded WAL record, handed to replay callbacks.
type Record struct {
	Type byte
	// Payload aliases the read buffer; callbacks must not retain it.
	Payload []byte
	// Start and End are the record's byte range in its file.
	Start, End int64
}

// replayFile reads records from path starting at offset from, invoking fn
// for each intact record. It returns the offset of the first byte that is
// not part of an intact record (the good end) and the number of records
// delivered. A torn or corrupt frame ends replay silently — that is the
// expected crash signature, not an error; only I/O failures and callback
// errors are returned.
func replayFile(path string, from int64, fn func(Record) error) (goodEnd int64, n int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, 0, err
	}
	size := st.Size()
	if from < walHeaderSize {
		hdr := make([]byte, walHeaderSize)
		if _, err := io.ReadFull(f, hdr); err != nil {
			// Shorter than a header: torn at creation. goodEnd 0 tells the
			// caller to recreate the file before appending.
			return 0, 0, nil
		}
		if string(hdr[:4]) != walMagic {
			return 0, 0, fmt.Errorf("persist: %s: not a wal file", path)
		}
		if v := binary.LittleEndian.Uint32(hdr[4:]); v != walVersion {
			return 0, 0, fmt.Errorf("persist: %s: unsupported wal version %d", path, v)
		}
		from = walHeaderSize
	}
	if _, err := f.Seek(from, io.SeekStart); err != nil {
		return 0, 0, err
	}
	good := from
	hdr := make([]byte, recHeaderSize)
	var payload []byte
	for {
		if size-good < recHeaderSize {
			return good, n, nil
		}
		if _, err := io.ReadFull(f, hdr); err != nil {
			return good, n, nil
		}
		plen := int64(binary.LittleEndian.Uint32(hdr))
		wantCRC := binary.LittleEndian.Uint32(hdr[4:])
		typ := hdr[8]
		if plen > maxRecordBytes || size-good-recHeaderSize < plen {
			return good, n, nil
		}
		if int64(cap(payload)) < plen {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(f, payload); err != nil {
			return good, n, nil
		}
		crc := crc32.Update(0, crcTable, []byte{typ})
		crc = crc32.Update(crc, crcTable, payload)
		if crc != wantCRC {
			return good, n, nil
		}
		rec := Record{Type: typ, Payload: payload, Start: good, End: good + recHeaderSize + plen}
		if err := fn(rec); err != nil {
			return good, n, err
		}
		good = rec.End
		n++
	}
}

// walFiles lists the root's wal files by ascending sequence number.
func walFiles(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := walSeqOf(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// syncDir fsyncs a directory so renames and file creations inside it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
