// Atomic checkpoints for the WAL-backed durability root.
//
// A checkpoint is a complete snapshot (the Save format) plus a
// CHECKPOINT.json stamp naming the WAL sequence number whose records it
// already contains. It is written to a tmp-* directory, fsynced, renamed
// to checkpoint-%06d, and published by rewriting the CURRENT pointer
// file — the same tmp-write → fsync → rename discipline at every step,
// so recovery always finds either the old checkpoint or the complete new
// one, never a partial mix.
//
// The covered-WAL bookkeeping uses whole files, not offsets: Checkpoint
// runs with the engine's catalog write lock held (no append can race
// it), so after the snapshot lands it rotates the WAL to a fresh file
// with the next sequence number and stamps the checkpoint with that
// number. Recovery replays exactly the files with seq >= the stamp.
package persist

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/catalog"
	"repro/internal/core"
)

// checkpointMeta is the CHECKPOINT.json stamp inside a checkpoint dir.
type checkpointMeta struct {
	Version int `json:"version"`
	// WALSeq is the first WAL file whose records are NOT contained in
	// this checkpoint; recovery replays files with seq >= WALSeq.
	WALSeq uint64 `json:"wal_seq"`
}

const (
	currentFile = "CURRENT"
	metaFile    = "CHECKPOINT.json"
	ckptPrefix  = "checkpoint-"
	tmpPrefix   = "tmp-"
	ckptNameFmt = "checkpoint-%06d"
)

// Checkpoint snapshots the database into the WAL's durability root and
// rotates the log, bounding recovery to the records appended afterwards.
// The caller must hold the engine's catalog write lock: the snapshot, the
// stamp, and the rotation must see one consistent state.
func (w *WAL) Checkpoint(db *catalog.Database, reg *core.Registry) error {
	w.mu.Lock()
	if w.broken != nil {
		err := w.broken
		w.mu.Unlock()
		return fmt.Errorf("persist: wal unusable after earlier failure: %w", err)
	}
	next := w.seq + 1
	w.mu.Unlock()

	tmp, err := os.MkdirTemp(w.dir, tmpPrefix)
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	if err := writeSnapshot(db, reg, tmp); err != nil {
		return fmt.Errorf("persist: checkpoint snapshot: %w", err)
	}
	blob, err := json.Marshal(checkpointMeta{Version: formatVersion, WALSeq: next})
	if err != nil {
		return err
	}
	if err := writeFileSync(filepath.Join(tmp, metaFile), blob); err != nil {
		return err
	}
	// writeFileSync made the stamp's bytes durable but not its dirent;
	// fsync the tmp dir again (writeSnapshot's syncDir predates the stamp)
	// so the rename below cannot publish a directory whose CHECKPOINT.json
	// vanishes in a crash — recovery hard-fails on a stampless checkpoint.
	if err := syncDir(tmp); err != nil {
		return err
	}
	if w.faults != nil && w.faults.CheckpointCrash {
		// Die after the complete tmp write, before publication: the
		// previous checkpoint plus the full WAL must still recover the DB,
		// and the orphaned tmp-* dir must be swept on reopen.
		w.faults.CheckpointCrash = false
		w.mu.Lock()
		w.broken = ErrInjectedCrash
		w.mu.Unlock()
		return fmt.Errorf("%w: kill during checkpoint", ErrInjectedCrash)
	}

	name := fmt.Sprintf(ckptNameFmt, next)
	dst := filepath.Join(w.dir, name)
	// A leftover checkpoint-N from an attempt that failed between its
	// rename and the seq advance is unpublished by definition — CURRENT
	// never names it while w.seq still yields the same N — so removing it
	// is safe and keeps the rename from wedging on ENOTEMPTY forever.
	// The CURRENT check is belt and braces: if it somehow names this dir,
	// refuse rather than delete the live checkpoint.
	if _, err := os.Stat(dst); err == nil {
		if cur, _ := readCurrent(w.dir); cur == name {
			return fmt.Errorf("persist: checkpoint %s already published but wal not rotated; reopen the root", name)
		}
		if err := os.RemoveAll(dst); err != nil {
			return err
		}
	}
	if err := os.Rename(tmp, dst); err != nil {
		return err
	}
	if err := syncDir(w.dir); err != nil {
		return err
	}
	if err := setCurrent(w.dir, name); err != nil {
		// Ambiguous publication: CURRENT may or may not name the new
		// checkpoint (setCurrent's rename can land without its dir fsync).
		// If it does, the stamp claims replay starts at wal seq `next`,
		// but appends still target the un-rotated old file — any further
		// acked record would be silently dropped by recovery. Refuse all
		// further WAL use; reopening resolves either CURRENT state to the
		// full acked set.
		w.mu.Lock()
		if w.broken == nil {
			w.broken = err
		}
		w.mu.Unlock()
		return err
	}
	// Published. Everything from here is cleanup: rotate appends onto
	// wal-<next> and drop files the checkpoint contains; a crash at any
	// point leaves extra files that recovery deletes.
	if err := w.rotate(next - 1); err != nil {
		return err
	}
	sweepCheckpoints(w.dir, name)
	return nil
}

// setCurrent atomically points CURRENT at a checkpoint directory name.
func setCurrent(dir, name string) error {
	tmp := filepath.Join(dir, currentFile+".tmp")
	if err := writeFileSync(tmp, []byte(name+"\n")); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, currentFile)); err != nil {
		return err
	}
	return syncDir(dir)
}

// readCurrent returns the checkpoint directory CURRENT names, or "" when
// the root has no published checkpoint yet.
func readCurrent(dir string) (string, error) {
	blob, err := os.ReadFile(filepath.Join(dir, currentFile))
	if os.IsNotExist(err) {
		return "", nil
	}
	if err != nil {
		return "", err
	}
	name := strings.TrimSpace(string(blob))
	if !strings.HasPrefix(name, ckptPrefix) {
		return "", fmt.Errorf("persist: CURRENT names %q, not a checkpoint", name)
	}
	return name, nil
}

// readCheckpointMeta loads a checkpoint dir's CHECKPOINT.json stamp.
func readCheckpointMeta(dir string) (checkpointMeta, error) {
	var m checkpointMeta
	blob, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(blob, &m); err != nil {
		return m, fmt.Errorf("persist: bad checkpoint meta: %w", err)
	}
	if m.Version != formatVersion {
		return m, fmt.Errorf("persist: unsupported checkpoint version %d", m.Version)
	}
	return m, nil
}

// sweepCheckpoints deletes checkpoint-* dirs other than keep. Best
// effort: a leftover dir wastes disk, nothing else.
func sweepCheckpoints(dir, keep string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), ckptPrefix) && e.Name() != keep {
			_ = os.RemoveAll(filepath.Join(dir, e.Name()))
		}
	}
}

// sweepTmp deletes tmp-* leftovers from checkpoints that died mid-write.
func sweepTmp(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			_ = os.RemoveAll(filepath.Join(dir, e.Name()))
		}
	}
}
