package persist

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/rfidgen"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/types"
)

func buildSampleDB(t *testing.T) (*catalog.Database, *core.Registry) {
	t.Helper()
	db := catalog.NewDatabase()
	tab := storage.NewTable("reads", schema.New(
		schema.Col("reads", "epc", types.KindString),
		schema.Col("reads", "rtime", types.KindTime),
		schema.Col("reads", "biz_loc", types.KindString),
		schema.Col("reads", "n", types.KindInt),
		schema.Col("reads", "f", types.KindFloat),
		schema.Col("reads", "b", types.KindBool),
		schema.Col("reads", "iv", types.KindInterval),
	))
	rows := []schema.Row{
		{types.NewString("e1"), types.NewTime(1000), types.NewString("dock"), types.NewInt(-7), types.NewFloat(1.5), types.NewBool(true), types.NewInterval(60)},
		{types.NewString(`\N`), types.NewTime(2000), types.NewString(`weird "loc", with commas`), types.Null, types.Null, types.Null, types.Null},
		{types.NewString(`\\escaped`), types.NewTime(3000), types.NewString(""), types.NewInt(0), types.NewFloat(0), types.NewBool(false), types.NewInterval(0)},
	}
	for _, r := range rows {
		if err := tab.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	tab.BuildIndex("rtime")
	tab.BuildIndex("epc")
	tab.Analyze()
	if err := db.AddTable(tab); err != nil {
		t.Fatal(err)
	}
	view, err := sqlparser.Parse("select epc, rtime from reads where n is not null")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddView("valid_reads", view); err != nil {
		t.Fatal(err)
	}
	reg := core.NewRegistry(db)
	if _, err := reg.Define(`DEFINE dedup ON reads
		AS (A, B) WHERE A.biz_loc = B.biz_loc AND B.rtime - A.rtime < 5 mins
		ACTION DELETE B`); err != nil {
		t.Fatal(err)
	}
	return db, reg
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db, reg := buildSampleDB(t)
	dir := t.TempDir()
	if err := Save(db, reg, dir); err != nil {
		t.Fatal(err)
	}
	db2, reg2, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	t1, _ := db.Table("reads")
	t2, ok := db2.Table("reads")
	if !ok || t2.RowCount() != t1.RowCount() {
		t.Fatalf("reloaded rows = %v", t2)
	}
	rows1, rows2 := t1.AllRows(), t2.AllRows()
	for i, row := range rows1 {
		for j, v := range row {
			if !v.Equal(rows2[i][j]) {
				t.Fatalf("row %d col %d: %v != %v", i, j, v, rows2[i][j])
			}
		}
	}
	// Indexes rebuilt.
	if t2.IndexOn("rtime") == nil || t2.IndexOn("epc") == nil {
		t.Error("indexes not rebuilt")
	}
	// Stats refreshed.
	if t2.Stats(0) == nil {
		t.Error("stats not analyzed")
	}
	// View restored and usable.
	node, err := plan.New(db2).PlanSQL("select count(*) from valid_reads")
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.Run(exec.NewCtx(), node)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 2 {
		t.Errorf("view count = %v", res.Rows[0][0])
	}
	// Rules restored in order with compiled templates.
	rules := reg2.All()
	if len(rules) != 1 || rules[0].Rule.Name != "dedup" || !strings.Contains(rules[0].TemplateSQL, "$input") {
		t.Fatalf("rules = %+v", rules)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, _, err := Load(t.TempDir()); err == nil {
		t.Error("empty dir must fail")
	}
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{not json"), 0o644)
	if _, _, err := Load(dir); err == nil {
		t.Error("bad manifest must fail")
	}
	os.WriteFile(filepath.Join(dir, "manifest.json"), []byte(`{"version": 99}`), 0o644)
	if _, _, err := Load(dir); err == nil {
		t.Error("future version must fail")
	}
	// Row count mismatch.
	db, reg := buildSampleDB(t)
	dir2 := t.TempDir()
	if err := Save(db, reg, dir2); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(dir2, "reads.csv"), []byte(""), 0o644)
	if _, _, err := Load(dir2); err == nil {
		t.Error("truncated table must fail")
	}
}

func TestValueEncodingRoundTripsEdgeCases(t *testing.T) {
	cases := []types.Value{
		types.Null,
		types.NewString(nullMarker),    // a string that *looks* like NULL
		types.NewString(`\`),           // lone backslash
		types.NewString(`\\N`),         //
		types.NewString("line\nbreak"), // csv quoting
		types.NewString("comma, quote\""),
		types.NewFloat(-0.0),
		types.NewInt(-1 << 62),
		types.NewTime(0),
		types.NewInterval(-5),
	}
	for _, v := range cases {
		kind := v.Kind()
		if kind == types.KindNull {
			kind = types.KindString
		}
		got, err := decodeValue(encodeValue(v), kind)
		if err != nil {
			t.Errorf("decode(%v): %v", v, err)
			continue
		}
		if !got.Equal(v) && !(v.IsNull() && got.IsNull()) {
			t.Errorf("round trip %v (%s) = %v", v, v.Kind(), got)
		}
	}
}

// Persisting a full generated workload round-trips and still answers
// cleansed queries identically.
func TestWorkloadPersistence(t *testing.T) {
	d := rfidgen.Generate(rfidgen.Config{Scale: 1, AnomalyPct: 20, Seed: 3})
	db := catalog.NewDatabase()
	if err := d.Load(db); err != nil {
		t.Fatal(err)
	}
	reg := core.NewRegistry(db)
	for _, src := range d.PaperRules() {
		if _, err := reg.Define(src); err != nil {
			t.Fatal(err)
		}
	}
	count := func(db *catalog.Database, reg *core.Registry) int64 {
		rw := core.NewRewriter(db, reg)
		res, err := rw.RewriteSQL("select count(*) from caser", nil, core.StrategyNaive)
		if err != nil {
			t.Fatal(err)
		}
		out, err := exec.Run(exec.NewCtx(), res.Plan)
		if err != nil {
			t.Fatal(err)
		}
		return out.Rows[0][0].Int()
	}
	want := count(db, reg)

	dir := t.TempDir()
	if err := Save(db, reg, dir); err != nil {
		t.Fatal(err)
	}
	db2, reg2, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := count(db2, reg2); got != want {
		t.Errorf("cleansed count after reload = %d, want %d", got, want)
	}
}
