// Recovery: opening a durability root after a clean exit or a crash.
//
// OpenDurable reconstructs the database as of the durable prefix — the
// last published checkpoint plus every intact WAL record after it — and
// returns a WAL positioned to append at the first byte past that prefix.
// The invariants:
//
//   - A record is replayed iff it is entirely on disk with a valid
//     checksum AND every record before it (across file rotations) is too.
//     The first torn or corrupt frame ends the durable prefix; the tail
//     is truncated away and later files deleted.
//   - A checkpoint is used iff CURRENT names it; tmp-* leftovers from
//     checkpoints that died mid-write are swept unread.
//   - Indexes and statistics are rebuilt after replay, so the recovered
//     catalog is query-ready exactly like a snapshot Load.
package persist

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/storage"
)

// DurableOpts configure the WAL returned by OpenDurable.
type DurableOpts struct {
	Policy FsyncPolicy
	// Interval is the fsync period under FsyncInterval (default 100ms).
	Interval time.Duration
	// Faults, when non-nil, arms crash-fault injection on the live WAL.
	Faults *CrashFaults
}

// RecoveryInfo reports what OpenDurable did, for operators' startup logs
// and db.ResourceStats().
type RecoveryInfo struct {
	// Checkpoint is the checkpoint directory restored, "" if none.
	Checkpoint string
	// ReplayedRecords and ReplayedRows count the WAL tail applied on top
	// of the checkpoint (rows counts append-batch rows only).
	ReplayedRecords int64
	ReplayedRows    int64
	// TruncatedBytes counts WAL bytes discarded past the durable prefix —
	// torn frames, corrupt records, and any files after them.
	TruncatedBytes int64
	// Seeded reports that the root was empty and the seed callback
	// populated it (followed by an initial checkpoint).
	Seeded bool
}

// OpenDurable opens dir as a durability root: recover the durable prefix,
// position the WAL for appending, and return the live catalog. When the
// root is empty (no checkpoint, no WAL) and seed is non-nil, seed supplies
// the initial database, which is made durable with an immediate
// checkpoint before OpenDurable returns.
func OpenDurable(dir string, seed func() (*catalog.Database, *core.Registry, error), o DurableOpts) (*catalog.Database, *core.Registry, *WAL, RecoveryInfo, error) {
	var info RecoveryInfo
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, nil, info, err
	}
	sweepTmp(dir)

	current, err := readCurrent(dir)
	if err != nil {
		return nil, nil, nil, info, err
	}
	var db *catalog.Database
	var reg *core.Registry
	fromSeq := uint64(1)
	if current != "" {
		ckdir := filepath.Join(dir, current)
		meta, err := readCheckpointMeta(ckdir)
		if err != nil {
			return nil, nil, nil, info, err
		}
		if db, reg, err = Load(ckdir); err != nil {
			return nil, nil, nil, info, fmt.Errorf("persist: checkpoint %s: %w", current, err)
		}
		fromSeq = meta.WALSeq
		info.Checkpoint = current
		sweepCheckpoints(dir, current)
	} else {
		db = catalog.NewDatabase()
		reg = core.NewRegistry(db)
	}

	// WAL files below the checkpoint's stamp are fully contained in it.
	seqs, err := walFiles(dir)
	if err != nil {
		return nil, nil, nil, info, err
	}
	var live []uint64
	for _, s := range seqs {
		if s < fromSeq {
			_ = os.Remove(filepath.Join(dir, walFileName(s)))
			continue
		}
		live = append(live, s)
	}

	if current == "" && len(live) == 0 {
		// Fresh root.
		if seed != nil {
			if db, reg, err = seed(); err != nil {
				return nil, nil, nil, info, err
			}
			info.Seeded = true
		}
		f, err := createWALFile(dir, 1)
		if err != nil {
			return nil, nil, nil, info, err
		}
		w := &WAL{dir: dir, policy: o.Policy, interval: o.Interval, faults: o.Faults, f: f, seq: 1}
		w.start(walHeaderSize)
		if info.Seeded {
			if err := w.Checkpoint(db, reg); err != nil {
				w.Close()
				return nil, nil, nil, info, fmt.Errorf("persist: seed checkpoint: %w", err)
			}
		}
		return db, reg, w, info, nil
	}

	rep := &replayer{db: db, reg: reg, info: &info}
	liveSeq, liveEnd := fromSeq, int64(walHeaderSize)
	stop := false
	for i, s := range live {
		if stop || (i > 0 && s != live[i-1]+1) {
			// Past the durable prefix (earlier truncation or a sequence
			// gap): these records must not be replayed.
			if st, err := os.Stat(filepath.Join(dir, walFileName(s))); err == nil {
				info.TruncatedBytes += st.Size()
			}
			_ = os.Remove(filepath.Join(dir, walFileName(s)))
			continue
		}
		path := filepath.Join(dir, walFileName(s))
		goodEnd, n, err := replayFile(path, 0, rep.apply)
		if err != nil {
			return nil, nil, nil, info, fmt.Errorf("persist: replay %s: %w", walFileName(s), err)
		}
		info.ReplayedRecords += n
		liveSeq, liveEnd = s, goodEnd
		if st, err := os.Stat(path); err == nil && goodEnd < st.Size() {
			info.TruncatedBytes += st.Size() - goodEnd
			stop = true
		}
	}
	if err := rep.finish(); err != nil {
		return nil, nil, nil, info, err
	}

	var f *os.File
	if liveEnd < walHeaderSize {
		// The live file is torn inside its own header: recreate it.
		if f, err = createWALFile(dir, liveSeq); err != nil {
			return nil, nil, nil, info, err
		}
		liveEnd = walHeaderSize
	} else if len(live) == 0 {
		// Checkpoint published but the crash beat the rotation: start the
		// file the checkpoint stamp expects.
		if f, err = createWALFile(dir, liveSeq); err != nil {
			return nil, nil, nil, info, err
		}
	} else {
		if f, err = openWALAt(dir, liveSeq, liveEnd); err != nil {
			return nil, nil, nil, info, err
		}
	}
	w := &WAL{dir: dir, policy: o.Policy, interval: o.Interval, faults: o.Faults, f: f, seq: liveSeq}
	w.start(liveEnd)
	return db, reg, w, info, nil
}

// replayer applies decoded WAL records to a recovering catalog.
type replayer struct {
	db   *catalog.Database
	reg  *core.Registry
	info *RecoveryInfo
	// touched tables get their indexes rebuilt and stats re-analyzed once
	// at the end — appends do not maintain indexes incrementally.
	touched map[string]bool
	// indexes defers build_index DDL to finish: building mid-replay would
	// only be torn down by the post-replay rebuild anyway.
	indexes map[string]map[string]bool
}

func (rp *replayer) apply(rec Record) error {
	switch rec.Type {
	case recAppend:
		var p appendPayload
		if err := json.Unmarshal(rec.Payload, &p); err != nil {
			return fmt.Errorf("append record: %w", err)
		}
		t, ok := rp.db.Table(p.Table)
		if !ok {
			return fmt.Errorf("append record: no table %q", p.Table)
		}
		for _, enc := range p.Rows {
			if len(enc) != t.Schema.Len() {
				return fmt.Errorf("append record: row arity %d vs schema %d for %s", len(enc), t.Schema.Len(), p.Table)
			}
			row := make(schema.Row, len(enc))
			for j, s := range enc {
				v, err := decodeValue(s, t.Schema.Columns[j].Kind)
				if err != nil {
					return fmt.Errorf("append record: table %s column %s: %w", p.Table, t.Schema.Columns[j].Name, err)
				}
				row[j] = v
			}
			if err := t.Append(row); err != nil {
				return err
			}
		}
		rp.info.ReplayedRows += int64(len(p.Rows))
		rp.touch(p.Table)
	case recDDL:
		var d DDLRecord
		if err := json.Unmarshal(rec.Payload, &d); err != nil {
			return fmt.Errorf("ddl record: %w", err)
		}
		return rp.applyDDL(d)
	case recRule:
		if _, err := rp.reg.Define(string(rec.Payload)); err != nil {
			return fmt.Errorf("rule record: %w", err)
		}
	default:
		return fmt.Errorf("unknown wal record type %d", rec.Type)
	}
	return nil
}

func (rp *replayer) applyDDL(d DDLRecord) error {
	switch d.Op {
	case DDLCreateTable:
		s := &schema.Schema{}
		for _, c := range d.Columns {
			k, err := kindOf(c.Kind)
			if err != nil {
				return fmt.Errorf("ddl record: table %s: %w", d.Name, err)
			}
			s.Columns = append(s.Columns, schema.Col(d.Name, c.Name, k))
		}
		return rp.db.AddTable(storage.NewTable(d.Name, s))
	case DDLCreateView:
		stmt, err := sqlparser.Parse(d.SQL)
		if err != nil {
			return fmt.Errorf("ddl record: view %s: %w", d.Name, err)
		}
		return rp.db.AddView(d.Name, stmt)
	case DDLBuildIndex:
		if rp.indexes == nil {
			rp.indexes = make(map[string]map[string]bool)
		}
		if rp.indexes[d.Table] == nil {
			rp.indexes[d.Table] = make(map[string]bool)
		}
		rp.indexes[d.Table][d.Column] = true
		rp.touch(d.Table)
	default:
		return fmt.Errorf("unknown ddl op %q", d.Op)
	}
	return nil
}

func (rp *replayer) touch(table string) {
	if rp.touched == nil {
		rp.touched = make(map[string]bool)
	}
	rp.touched[table] = true
}

// finish rebuilds indexes and statistics for every table replay touched.
func (rp *replayer) finish() error {
	for name, cols := range rp.indexes {
		t, ok := rp.db.Table(name)
		if !ok {
			return fmt.Errorf("persist: replay: index on unknown table %q", name)
		}
		for col := range cols {
			if err := t.BuildIndex(col); err != nil {
				return fmt.Errorf("persist: replay: %w", err)
			}
		}
	}
	for name := range rp.touched {
		t, ok := rp.db.Table(name)
		if !ok {
			continue
		}
		for ord, c := range t.Schema.Columns {
			if t.HasIndex(ord) {
				if err := t.BuildIndex(c.Name); err != nil {
					return fmt.Errorf("persist: replay: %w", err)
				}
			}
		}
		t.Analyze()
	}
	return nil
}
