package govern

import (
	"context"
	"fmt"
	"sync/atomic"
)

// Admission bounds how many queries execute at once. Up to maxConcurrent
// queries run; the next maxQueue callers wait (honoring their context's
// cancellation and deadline); everyone past that is rejected immediately
// with ErrOverloaded. Burst traffic therefore degrades to queueing, and
// then to fast rejection — never to an unbounded pile of concurrent
// working sets.
//
// A nil *Admission admits everything; the serving layer uses that for the
// default "no limit" configuration.
type Admission struct {
	sem      chan struct{}
	maxQueue int64

	waiting  atomic.Int64
	admitted atomic.Uint64
	rejected atomic.Uint64
}

// NewAdmission builds an admission controller allowing maxConcurrent
// simultaneous queries with a wait queue of maxQueue. maxConcurrent <= 0
// returns nil (unlimited). maxQueue < 0 is treated as 0 (no queueing —
// reject as soon as the limit is reached).
func NewAdmission(maxConcurrent, maxQueue int) *Admission {
	if maxConcurrent <= 0 {
		return nil
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Admission{sem: make(chan struct{}, maxConcurrent), maxQueue: int64(maxQueue)}
}

// Acquire admits one query, blocking in the wait queue when the engine is
// at its concurrency limit. It returns a release function that must be
// called exactly once when the query finishes. It fails with
// ErrOverloaded when the queue is full, or with the context's error if
// the caller's deadline expires while queued.
func (a *Admission) Acquire(ctx context.Context) (release func(), err error) {
	if a == nil {
		return func() {}, nil
	}
	// Fast path: a slot is free.
	select {
	case a.sem <- struct{}{}:
		a.admitted.Add(1)
		return a.release, nil
	default:
	}
	// Queue, bounded.
	if a.waiting.Add(1) > a.maxQueue {
		a.waiting.Add(-1)
		a.rejected.Add(1)
		return nil, fmt.Errorf("%w: %d queries running, %d queued", ErrOverloaded, cap(a.sem), a.maxQueue)
	}
	defer a.waiting.Add(-1)
	select {
	case a.sem <- struct{}{}:
		a.admitted.Add(1)
		return a.release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (a *Admission) release() { <-a.sem }

// AdmissionStats is a snapshot of the controller's counters.
type AdmissionStats struct {
	// Running is the number of queries currently admitted.
	Running int
	// Waiting is the number of callers queued right now.
	Waiting int
	// Admitted and Rejected count decisions since construction.
	Admitted, Rejected uint64
}

// Stats snapshots the controller. A nil controller reports zeros.
func (a *Admission) Stats() AdmissionStats {
	if a == nil {
		return AdmissionStats{}
	}
	return AdmissionStats{
		Running:  len(a.sem),
		Waiting:  int(a.waiting.Load()),
		Admitted: a.admitted.Load(),
		Rejected: a.rejected.Load(),
	}
}
