package govern

import (
	"context"
	"errors"
	"io"
	"os"
	"sync"
	"testing"
	"time"
)

func TestReserveEnforcesBudget(t *testing.T) {
	r := NewResources(1000, false, "", Inject{})
	if err := r.Reserve(600); err != nil {
		t.Fatalf("first reserve: %v", err)
	}
	if err := r.Reserve(600); !errors.Is(err, ErrResourceExhausted) {
		t.Fatalf("over-budget reserve: %v", err)
	}
	if !r.Exhausted() {
		t.Fatal("Exhausted not set after failed reserve")
	}
	// The failed reservation charged nothing.
	if err := r.Reserve(400); err != nil {
		t.Fatalf("reserve within remaining budget: %v", err)
	}
	r.Release(400)
	if st := r.Stats(); st.Peak != 1000 || st.Limit != 1000 {
		t.Fatalf("stats = %+v, want peak=1000 limit=1000", st)
	}
}

func TestUnlimitedReserveTracksPeak(t *testing.T) {
	r := Unbounded()
	if err := r.Reserve(1 << 30); err != nil {
		t.Fatalf("unlimited reserve: %v", err)
	}
	r.Release(1 << 30)
	if st := r.Stats(); st.Peak != 1<<30 {
		t.Fatalf("peak = %d", st.Peak)
	}
}

func TestReserveConcurrent(t *testing.T) {
	r := NewResources(0, false, "", Inject{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Charge(64)
				r.Release(64)
			}
		}()
	}
	wg.Wait()
	if st := r.Stats(); st.Peak < 64 || st.Peak > 8*64 {
		t.Fatalf("peak = %d outside [64, 512]", st.Peak)
	}
}

func TestAllocFailInjection(t *testing.T) {
	r := NewResources(0, true, "", Inject{AllocFail: true})
	if err := r.Reserve(1); !errors.Is(err, ErrResourceExhausted) {
		t.Fatalf("injected alloc failure: %v", err)
	}
}

func TestMaybePanicFiresExactlyOnce(t *testing.T) {
	r := NewResources(0, false, "", Inject{WorkerPanic: true})
	fired := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					mu.Lock()
					fired++
					mu.Unlock()
				}
			}()
			for i := 0; i < 100; i++ {
				r.MaybePanic()
			}
		}()
	}
	wg.Wait()
	if fired != 1 {
		t.Fatalf("injected panic fired %d times, want 1", fired)
	}
}

func TestInternalizeCarriesStack(t *testing.T) {
	err := func() (err error) {
		defer func() {
			if rec := recover(); rec != nil {
				err = Internalize(rec)
			}
		}()
		panic("boom")
	}()
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	if msg := err.Error(); !contains(msg, "boom") || !contains(msg, "govern_test.go") {
		t.Fatalf("internalized error missing panic value or stack: %q", msg)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestSpillFileRoundTripAndCleanup(t *testing.T) {
	dir := t.TempDir()
	r := NewResources(0, true, dir, Inject{})
	sf, err := r.NewSpillFile("sort")
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("hello spill world")
	if _, err := sf.Write(payload); err != nil {
		t.Fatal(err)
	}
	if sf.Bytes() != int64(len(payload)) {
		t.Fatalf("Bytes() = %d", sf.Bytes())
	}
	rd, err := sf.Finish()
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rd)
	if err != nil || string(got) != string(payload) {
		t.Fatalf("read back %q, %v", got, err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("spill dir not cleaned: %v", ents)
	}
}

func TestSpillErrInjection(t *testing.T) {
	r := NewResources(0, true, t.TempDir(), Inject{SpillErr: true})
	if _, err := r.NewSpillFile("sort"); err == nil {
		t.Fatal("expected injected spill error")
	}
}

func TestCloseIsIdempotentAndBlocksNewFiles(t *testing.T) {
	r := NewResources(0, true, t.TempDir(), Inject{})
	if _, err := r.NewSpillFile("x"); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.NewSpillFile("x"); err == nil {
		t.Fatal("NewSpillFile after Close should fail")
	}
}

func TestAdmissionConcurrencyLimit(t *testing.T) {
	a := NewAdmission(2, 10)
	rel1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.Running != 2 {
		t.Fatalf("running = %d", st.Running)
	}
	// Third caller queues until a slot frees.
	done := make(chan struct{})
	go func() {
		rel3, err := a.Acquire(context.Background())
		if err != nil {
			t.Error(err)
			close(done)
			return
		}
		rel3()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("third query admitted past the limit")
	case <-time.After(20 * time.Millisecond):
	}
	rel1()
	<-done
	rel2()
}

func TestAdmissionQueueOverflow(t *testing.T) {
	a := NewAdmission(1, 0)
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow err = %v", err)
	}
	if st := a.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected = %d", st.Rejected)
	}
	rel()
}

func TestAdmissionHonorsDeadlineWhileQueued(t *testing.T) {
	a := NewAdmission(1, 5)
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := a.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued deadline err = %v", err)
	}
	if st := a.Stats(); st.Waiting != 0 {
		t.Fatalf("waiting = %d after deadline", st.Waiting)
	}
}

func TestNilAdmissionAdmitsEverything(t *testing.T) {
	var a *Admission
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel()
}
