package govern

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// Resources is the governance handle for one query execution: the memory
// accountant, the spill-file registry, and the fault-injection state. One
// Resources is created per query and shared by every operator (and every
// worker goroutine) of that query; all methods are safe for concurrent
// use.
//
// Accounting is intentionally approximate — operators charge a per-row
// estimate of their materialized state (hash tables, key arrays, output
// buffers), not malloc-exact byte counts. The budget's job is to bound a
// query's footprint to the right order of magnitude and to trigger the
// spill paths deterministically, not to replace the Go allocator.
type Resources struct {
	// limit is the byte budget; 0 means unlimited.
	limit int64
	// spill enables disk fallback for operators that support it.
	spill bool
	// baseDir is where the query's temp directory is created; "" uses the
	// system temp dir.
	baseDir string

	faults *faultState

	used atomic.Int64
	peak atomic.Int64

	spillRuns  atomic.Int64
	spillBytes atomic.Int64
	exhausted  atomic.Bool

	mu     sync.Mutex
	tmpDir string // lazily created, removed by Close
	closed bool
}

// NewResources builds the governance handle for one query. limit is the
// memory budget in bytes (0 = unlimited), spill enables the disk
// fallback, dir overrides the temp-file location, and faults injects
// deterministic failures (zero Inject = none).
func NewResources(limit int64, spill bool, dir string, faults Inject) *Resources {
	r := &Resources{limit: limit, spill: spill, baseDir: dir}
	if faults != (Inject{}) {
		r.faults = newFaultState(faults)
	}
	return r
}

// Unbounded returns a fresh handle with no budget, spilling disabled, and
// no fault injection — the default for internal executions (dry runs,
// materialization) that predate governance.
func Unbounded() *Resources { return &Resources{} }

// Limit reports the configured byte budget (0 = unlimited).
func (r *Resources) Limit() int64 {
	if r == nil {
		return 0
	}
	return r.limit
}

// CanSpill reports whether operators may fall back to disk.
func (r *Resources) CanSpill() bool { return r != nil && r.spill }

// Reserve charges n bytes against the query's budget. It fails with
// ErrResourceExhausted — charging nothing — once the budget would be
// crossed (or always, under the AllocFail injection). Operators reserve
// before materializing; a failed reservation is the signal to spill.
func (r *Resources) Reserve(n int64) error {
	if r == nil {
		return nil
	}
	if r.allocFail() {
		r.exhausted.Store(true)
		return fmt.Errorf("%w: injected allocation failure (%d bytes)", ErrResourceExhausted, n)
	}
	if r.limit > 0 && r.used.Load()+n > r.limit {
		r.exhausted.Store(true)
		return fmt.Errorf("%w: need %d bytes, %d of %d in use", ErrResourceExhausted, n, r.used.Load(), r.limit)
	}
	r.Charge(n)
	return nil
}

// Charge adds n bytes unconditionally and tracks the peak. Spilling
// operators use it for their bounded per-chunk working memory, which is
// allowed to ride above the budget line briefly — that is what keeps the
// "spill enabled ⇒ the query completes" contract unconditional.
func (r *Resources) Charge(n int64) {
	if r == nil {
		return
	}
	used := r.used.Add(n)
	for {
		p := r.peak.Load()
		if used <= p || r.peak.CompareAndSwap(p, used) {
			return
		}
	}
}

// Release returns n previously charged bytes to the budget.
func (r *Resources) Release(n int64) {
	if r == nil {
		return
	}
	r.used.Add(-n)
}

// NoteSpill records one operator's spill activity (runs written and bytes
// that went through disk) for the query's stats.
func (r *Resources) NoteSpill(runs int, bytes int64) {
	if r == nil {
		return
	}
	r.spillRuns.Add(int64(runs))
	r.spillBytes.Add(bytes)
}

// MemStats is the memory/spill summary of one query (or, aggregated, of a
// whole server).
type MemStats struct {
	// Limit is the configured budget in bytes; 0 means unlimited.
	Limit int64
	// Peak is the high-water mark of charged bytes.
	Peak int64
	// SpillRuns counts runs/partitions written to temp files.
	SpillRuns int64
	// SpillBytes counts bytes written to temp files.
	SpillBytes int64
}

// Spilled reports whether any operator went to disk.
func (m MemStats) Spilled() bool { return m.SpillRuns > 0 }

// Stats snapshots the query's accounting.
func (r *Resources) Stats() MemStats {
	if r == nil {
		return MemStats{}
	}
	return MemStats{
		Limit:      r.limit,
		Peak:       r.peak.Load(),
		SpillRuns:  r.spillRuns.Load(),
		SpillBytes: r.spillBytes.Load(),
	}
}

// Used reports the bytes currently charged against the budget — it
// returns to zero when every operator has released its reservations
// (the streaming executor's early-Close tests assert exactly that).
func (r *Resources) Used() int64 {
	if r == nil {
		return 0
	}
	return r.used.Load()
}

// Exhausted reports whether any reservation failed.
func (r *Resources) Exhausted() bool { return r != nil && r.exhausted.Load() }

// SpillDir returns the query's temp directory, creating it on first use.
func (r *Resources) SpillDir() (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return "", fmt.Errorf("govern: resources already closed")
	}
	if r.tmpDir == "" {
		dir, err := os.MkdirTemp(r.baseDir, "repro-spill-*")
		if err != nil {
			return "", fmt.Errorf("govern: creating spill dir: %w", err)
		}
		r.tmpDir = dir
	}
	return r.tmpDir, nil
}

// Close ends the query's governance span: it removes the temp directory
// and every spill file in it, including files left behind by a query
// canceled mid-merge. It is safe to call more than once.
func (r *Resources) Close() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	dir := r.tmpDir
	r.tmpDir = ""
	r.closed = true
	r.mu.Unlock()
	if dir == "" {
		return nil
	}
	return os.RemoveAll(dir)
}
