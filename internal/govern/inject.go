package govern

import (
	"sync/atomic"
	"time"
)

// Inject describes deterministic faults to force during one query's
// execution. A zero Inject injects nothing. Tests (and the soak suite)
// attach one to a query's Resources to drive every degradation path
// without real memory pressure, real crashes, or real disk failures.
type Inject struct {
	// AllocFail makes every memory reservation fail as if the budget were
	// crossed, regardless of the configured limit — operators with a spill
	// path degrade to disk, the rest fail with ErrResourceExhausted.
	AllocFail bool

	// WorkerPanic makes exactly one morsel worker panic mid-query (the
	// first worker to claim a morsel after the flag is armed). The panic
	// must surface as ErrInternal on that query only.
	WorkerPanic bool

	// SlowOp delays every operator entry point by this duration, making
	// timeout and admission-queue interactions reproducible.
	SlowOp time.Duration

	// SpillErr makes spill-file creation fail, exercising the I/O-error
	// path of every spilling operator.
	SpillErr bool

	// The WAL crash faults below are DB-level, not per-query: they take
	// effect through repro.WithDurabilityFaults at Open, which maps them
	// onto the persist layer's fault hooks. They are ignored on a query's
	// WithFaults.

	// WALTornWrite makes the next WAL append write only a prefix of its
	// frame and fail as if the process died mid-write.
	WALTornWrite bool
	// WALSyncErr makes every WAL fsync fail; under an always policy the
	// ingest that asked for the sync must not be acknowledged.
	WALSyncErr bool
	// CheckpointCrash makes the next checkpoint write its complete temp
	// directory and die before publishing it.
	CheckpointCrash bool
}

// faultState is the per-query instantiation of an Inject: the one-shot
// panic needs an atomic armed flag so exactly one worker fires.
type faultState struct {
	spec        Inject
	panicArmed  atomic.Bool
	allocDenied atomic.Int64 // reservations denied by AllocFail, for tests
}

func newFaultState(spec Inject) *faultState {
	fs := &faultState{spec: spec}
	fs.panicArmed.Store(spec.WorkerPanic)
	return fs
}

// MaybePanic fires the injected worker panic exactly once per query.
// Morsel workers call it when claiming work; the surrounding recover
// converts the panic into ErrInternal.
func (r *Resources) MaybePanic() {
	if r == nil || r.faults == nil {
		return
	}
	if r.faults.panicArmed.CompareAndSwap(true, false) {
		panic("govern: injected worker panic")
	}
}

// SlowOp reports the injected per-operator delay (zero when none).
func (r *Resources) SlowOp() time.Duration {
	if r == nil || r.faults == nil {
		return 0
	}
	return r.faults.spec.SlowOp
}

func (r *Resources) allocFail() bool {
	if r == nil || r.faults == nil || !r.faults.spec.AllocFail {
		return false
	}
	r.faults.allocDenied.Add(1)
	return true
}

func (r *Resources) spillErr() bool {
	return r != nil && r.faults != nil && r.faults.spec.SpillErr
}
