package govern

import (
	"bufio"
	"fmt"
	"os"
	"sync/atomic"
)

// spillBufSize is the buffered-I/O window for spill writers and readers:
// big enough that run files are written and merged in large sequential
// transfers, small enough that a wide merge fan-in stays cheap.
const spillBufSize = 64 << 10

// spillSeq distinguishes spill files within one process for debuggability.
var spillSeq atomic.Int64

// SpillFile is one temp file being written by a spilling operator. Writes
// are buffered; Finish flushes and reopens the file for reading. The file
// lives in the query's spill directory and is removed by Resources.Close
// (or earlier, by Discard) — a canceled query never leaks it.
type SpillFile struct {
	res  *Resources
	f    *os.File
	w    *bufio.Writer
	n    int64
	name string
}

// NewSpillFile creates a temp file for one run or partition. label names
// the operator for debuggability ("sort", "group", "join"). Under the
// SpillErr injection it fails deterministically.
func (r *Resources) NewSpillFile(label string) (*SpillFile, error) {
	if r.spillErr() {
		return nil, fmt.Errorf("govern: injected spill I/O error (%s)", label)
	}
	dir, err := r.SpillDir()
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("%s/%s-%d.run", dir, label, spillSeq.Add(1))
	f, err := os.Create(name)
	if err != nil {
		return nil, fmt.Errorf("govern: creating spill file: %w", err)
	}
	return &SpillFile{res: r, f: f, w: bufio.NewWriterSize(f, spillBufSize), name: name}, nil
}

// Write implements io.Writer over the buffered spill file.
func (s *SpillFile) Write(p []byte) (int, error) {
	n, err := s.w.Write(p)
	s.n += int64(n)
	return n, err
}

// WriteByte writes a single byte (io.ByteWriter, used by varint encoding).
func (s *SpillFile) WriteByte(b byte) error {
	if err := s.w.WriteByte(b); err != nil {
		return err
	}
	s.n++
	return nil
}

// Bytes reports how many bytes have been written.
func (s *SpillFile) Bytes() int64 { return s.n }

// Finish flushes the file and returns a reader positioned at the start.
// The SpillFile must not be written after Finish.
func (s *SpillFile) Finish() (*SpillReader, error) {
	if err := s.w.Flush(); err != nil {
		s.Discard()
		return nil, fmt.Errorf("govern: flushing spill file: %w", err)
	}
	if _, err := s.f.Seek(0, 0); err != nil {
		s.Discard()
		return nil, fmt.Errorf("govern: rewinding spill file: %w", err)
	}
	return &SpillReader{f: s.f, r: bufio.NewReaderSize(s.f, spillBufSize), name: s.name}, nil
}

// Discard closes and removes the file early (before Resources.Close).
func (s *SpillFile) Discard() {
	if s.f != nil {
		s.f.Close()
		os.Remove(s.name)
		s.f = nil
	}
}

// SpillReader reads a finished spill file sequentially.
type SpillReader struct {
	f    *os.File
	r    *bufio.Reader
	name string
}

// Read implements io.Reader.
func (s *SpillReader) Read(p []byte) (int, error) { return s.r.Read(p) }

// ReadByte implements io.ByteReader (used by varint decoding).
func (s *SpillReader) ReadByte() (byte, error) { return s.r.ReadByte() }

// Discard closes and removes the underlying file.
func (s *SpillReader) Discard() {
	if s.f != nil {
		s.f.Close()
		os.Remove(s.name)
		s.f = nil
	}
}
