// Package govern is the resource-governance layer of the deferred-cleansing
// engine: per-query memory accounting with a byte budget, temp-file
// management for operators that spill when the budget is crossed, admission
// control for the serving layer (a semaphore-bounded concurrency limit with
// a bounded wait queue), and panic containment that converts a crashed
// worker goroutine into a per-query error instead of a dead process.
//
// The package is engine-agnostic: it knows nothing about plans or rows.
// Operators hold a *Resources for the duration of one query and
//
//   - Reserve working memory before materializing (Reserve fails with
//     ErrResourceExhausted once the budget is crossed),
//   - fall back to disk through NewSpillFile when a reservation fails and
//     spilling is enabled, and
//   - release the whole footprint at once when the query ends (Close, which
//     also removes every temp file the query created).
//
// Deterministic fault injection (Inject) forces each degradation path —
// allocation failure, worker panic, slow operators, spill I/O errors — so
// every path is unit-testable without real memory pressure.
package govern

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// Sentinel errors, matchable with errors.Is through every layer above.
var (
	// ErrResourceExhausted reports a query that crossed its memory budget
	// where no spill fallback exists (or spilling was disabled).
	ErrResourceExhausted = errors.New("govern: query memory budget exhausted")

	// ErrOverloaded reports a query rejected by admission control: the
	// concurrent-query limit was reached and the wait queue was full.
	ErrOverloaded = errors.New("govern: server overloaded")

	// ErrInternal reports a panic recovered inside query execution. The
	// wrapped error carries the panic value and stack; the query fails but
	// the engine keeps serving.
	ErrInternal = errors.New("govern: internal execution error")
)

// Internalize converts a recovered panic value into an ErrInternal that
// carries the panic message and the stack of the panicking goroutine.
// Worker goroutines and operator entry points call it from their recover
// handlers so one crashed morsel fails one query, not the process.
func Internalize(recovered any) error {
	return fmt.Errorf("%w: panic: %v\n%s", ErrInternal, recovered, debug.Stack())
}
