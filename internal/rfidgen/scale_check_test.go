package rfidgen

import "testing"

func TestScaleInjectionQuota(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	d := Generate(Config{Scale: 20, AnomalyPct: 40, Seed: 42})
	total := len(d.Clean) * 40 / 100
	per := total / 5
	t.Logf("clean=%d dirty=%d quota/kind=%d injected=%v", len(d.Clean), len(d.CaseR), per, d.Injected)
	for k := AnomalyKind(0); k < numAnomalyKinds; k++ {
		want := per / 2
		if k == AnomalyReplacing {
			// Replacing anomalies are whole-pallet-visit events; their
			// structural capacity is about one per three visits.
			cap := 20 * 30 / 3
			if cap < want {
				want = cap / 2
			}
		}
		if d.Injected[k] < want {
			t.Errorf("kind %v injected %d, want at least %d", k, d.Injected[k], want)
		}
	}
}
