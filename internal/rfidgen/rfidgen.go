// Package rfidgen reimplements RFIDGen, the paper's synthetic supply-chain
// workload generator (§6.1): a retailer whose goods flow through 5
// distribution centers → 25 warehouses → 1000 retail stores, each site
// with 100 reader-equipped locations (13 000 GLNs total). Shipments are
// pallets of 20–80 cases; every shipment is read 10 times per site (30
// reads total), first read placed randomly in a 5-year window and
// consecutive reads 1–36 hours apart. Cases travel with their pallet and
// are read by the same reader within the pallet/case jitter bound.
//
// Anomalies are injected by reversing the actions of the five cleansing
// rules of §4.3 (duplicate, reader, replacing, cycle, missing), evenly
// split, against disjoint base reads so each anomaly is independently
// correctable. The generator retains the clean ground truth so tests can
// verify that applying all five rules to the dirty data restores it.
package rfidgen

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Topology constants from §6.1 of the paper.
const (
	NumDCs         = 5
	NumWarehouses  = 25
	NumStores      = 1000
	LocsPerSite    = 100
	ReadsPerSite   = 10
	NumProducts    = 1000
	NumMakers      = 50
	NumSteps       = 100
	NumStepTypes   = 10
	MinCasesPerPlt = 20
	MaxCasesPerPlt = 80
	WindowYears    = 5
	MinLatency     = time.Hour
	MaxLatency     = 36 * time.Hour
	// CaseJitter bounds how far a case read trails its pallet read. The
	// paper says "within 10 minutes"; we use the missing-rule threshold
	// (5 minutes) so Example 5's r1 recognizes every co-travelling pair —
	// with 10-minute jitter the paper's own 5-minute rule would misfire.
	CaseJitter = 5 * time.Minute
)

// Rule thresholds used by the §6 experiments: t1, t2, t3 = 5, 10, 20 min.
const (
	T1Duplicate = 5 * time.Minute
	T2Reader    = 10 * time.Minute
	T3Replacing = 20 * time.Minute
)

// AnomalyKind enumerates the five injected anomaly types.
type AnomalyKind int

// Anomaly kinds, in the rule order of Table 1.
const (
	AnomalyReader AnomalyKind = iota
	AnomalyDuplicate
	AnomalyReplacing
	AnomalyCycle
	AnomalyMissing
	numAnomalyKinds
)

func (k AnomalyKind) String() string {
	switch k {
	case AnomalyReader:
		return "reader"
	case AnomalyDuplicate:
		return "duplicate"
	case AnomalyReplacing:
		return "replacing"
	case AnomalyCycle:
		return "cycle"
	case AnomalyMissing:
		return "missing"
	}
	return "?"
}

// Config parameterizes a generation run.
type Config struct {
	// Scale is the paper's scale factor s: the number of pallet EPCs.
	// caseR gets ≈ s*50*30 rows.
	Scale int
	// AnomalyPct is the dirty percentage D (0–100): anomalies injected as
	// a fraction of normal case reads, split evenly across the five kinds.
	AnomalyPct int
	// Seed fixes the random stream.
	Seed int64
	// Start is the beginning of the read window; zero means 2021-01-01.
	Start time.Time
}

// Read is one RFID read event.
type Read struct {
	EPC     string
	RTime   time.Time
	BizLoc  string // location GLN
	Reader  string
	BizStep string
}

// Location is one locs-table row.
type Location struct {
	GLN     string
	Site    string
	LocDesc string
}

// Parent associates a case EPC with its pallet EPC.
type Parent struct {
	ChildEPC  string
	ParentEPC string
}

// EPCInfo is item-level reference data for one case.
type EPCInfo struct {
	EPC         string
	Product     int
	Lot         int
	Manufacture time.Time
	Expiry      time.Time
}

// Product is product reference data.
type Product struct {
	ID           int
	Manufacturer int
	Name         string
}

// Step is one business-step row.
type Step struct {
	BizStep string
	Type    string
}

// Dataset is a full generated database, dirty case reads plus the clean
// ground truth.
type Dataset struct {
	Config Config

	CaseR    []Read // with anomalies injected
	Clean    []Read // ground truth (no anomalies)
	PalletR  []Read
	Parents  []Parent
	Infos    []EPCInfo
	Products []Product
	Locs     []Location
	Steps    []Step

	// Special identifiers the injected anomalies (and hence the cleansing
	// rules) refer to.
	ReaderX string // the forklift reader of the reader rule
	Loc1    string // replacing rule: correct location
	Loc2    string // replacing rule: cross-read location
	LocA    string // replacing rule: next location in the business flow
	// Injected counts per kind.
	Injected map[AnomalyKind]int
}

// siteInfo is one site's identity and reader locations.
type siteInfo struct {
	name string
	glns []string
}

// Generate builds a dataset.
func Generate(cfg Config) *Dataset {
	if cfg.Scale <= 0 {
		cfg.Scale = 10
	}
	if cfg.Start.IsZero() {
		cfg.Start = time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	cfg.Start = cfg.Start.Truncate(time.Microsecond)
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &Dataset{Config: cfg, Injected: map[AnomalyKind]int{}}

	// ---- reference data ----
	dcs := make([]siteInfo, NumDCs)
	whs := make([]siteInfo, NumWarehouses)
	stores := make([]siteInfo, NumStores)
	glnSeq := 0
	mkSite := func(name string) siteInfo {
		s := siteInfo{name: name}
		for i := 0; i < LocsPerSite; i++ {
			gln := fmt.Sprintf("%013d", glnSeq)
			glnSeq++
			s.glns = append(s.glns, gln)
			d.Locs = append(d.Locs, Location{GLN: gln, Site: name, LocDesc: fmt.Sprintf("%s loc %d", name, i)})
		}
		return s
	}
	for i := range dcs {
		dcs[i] = mkSite(fmt.Sprintf("distribution center %d", i))
	}
	for i := range whs {
		whs[i] = mkSite(fmt.Sprintf("warehouse %d", i))
	}
	for i := range stores {
		stores[i] = mkSite(fmt.Sprintf("store %d", i))
	}
	// Reserved identifiers for injected anomalies: never used by normal
	// reads, so injections do not collide with organic data.
	d.ReaderX = "readerX"
	d.Loc1 = "loc1-special"
	d.Loc2 = "loc2-special"
	d.LocA = "locA-special"
	for _, g := range []struct{ gln, desc string }{
		{d.Loc1, "forklift destination"}, {d.Loc2, "cross-read bay"},
		{d.LocA, "flow next hop"}, {"stray-special", "stray cross-read bay"},
	} {
		d.Locs = append(d.Locs, Location{GLN: g.gln, Site: "warehouse 0", LocDesc: g.desc})
	}

	for i := 0; i < NumSteps; i++ {
		d.Steps = append(d.Steps, Step{
			BizStep: fmt.Sprintf("step-%03d", i),
			Type:    fmt.Sprintf("type-%d", i%NumStepTypes),
		})
	}
	for i := 0; i < NumProducts; i++ {
		d.Products = append(d.Products, Product{ID: i, Manufacturer: rng.Intn(NumMakers), Name: fmt.Sprintf("product-%04d", i)})
	}

	// ---- normal reads ----
	window := time.Duration(WindowYears) * 365 * 24 * time.Hour
	caseSeq := 0
	for p := 0; p < cfg.Scale; p++ {
		palletEPC := fmt.Sprintf("urn:epc:id:sscc:0614141.1%09d", p)
		store := stores[rng.Intn(NumStores)]
		wh := whs[rng.Intn(NumWarehouses)]
		dc := dcs[rng.Intn(NumDCs)]
		path := []siteInfo{dc, wh, store}

		nCases := MinCasesPerPlt + rng.Intn(MaxCasesPerPlt-MinCasesPerPlt+1)
		caseEPCs := make([]string, nCases)
		for c := range caseEPCs {
			epc := fmt.Sprintf("urn:epc:id:sgtin:0614141.%06d.%09d", caseSeq%1000, caseSeq)
			caseSeq++
			caseEPCs[c] = epc
			d.Parents = append(d.Parents, Parent{ChildEPC: epc, ParentEPC: palletEPC})
			mfg := cfg.Start.Add(-time.Duration(rng.Intn(365*24)) * time.Hour)
			d.Infos = append(d.Infos, EPCInfo{
				EPC: epc, Product: rng.Intn(NumProducts), Lot: rng.Intn(10000),
				Manufacture: mfg, Expiry: mfg.Add(2 * 365 * 24 * time.Hour),
			})
		}

		t := cfg.Start.Add(usecDur(rng, window))
		// The location sequence is kept free of natural [X Y X] cycles and
		// natural duplicates: loc_k is distinct from the previous three
		// locations, so the only rule-triggering patterns in the data are
		// the ones the injectors place deliberately — matching the paper's
		// method of creating anomalies purely "by reversing the action of
		// the cleansing rules". Distance three (not two) keeps that
		// property even after a missing-read deletion shortens the
		// sequence by one position.
		loc1, loc2, loc3 := "", "", ""
		for _, site := range path {
			for r := 0; r < ReadsPerSite; r++ {
				gln := site.glns[rng.Intn(len(site.glns))]
				for gln == loc1 || gln == loc2 || gln == loc3 {
					gln = site.glns[rng.Intn(len(site.glns))]
				}
				loc3, loc2, loc1 = loc2, loc1, gln
				reader := "rdr-" + gln
				step := d.Steps[rng.Intn(NumSteps)].BizStep
				d.PalletR = append(d.PalletR, Read{EPC: palletEPC, RTime: t, BizLoc: gln, Reader: reader, BizStep: step})
				for _, cepc := range caseEPCs {
					ct := t.Add(usecDur(rng, CaseJitter))
					d.Clean = append(d.Clean, Read{EPC: cepc, RTime: ct, BizLoc: gln, Reader: reader, BizStep: step})
				}
				t = t.Add(MinLatency + usecDur(rng, MaxLatency-MinLatency))
			}
		}
	}

	d.injectAnomalies(rng)

	// Load order partially correlated with time (§6.1): order by day, then
	// randomly within each day.
	sortPartial := func(reads []Read, rng *rand.Rand) {
		jitter := make([]int64, len(reads))
		for i := range jitter {
			jitter[i] = rng.Int63()
		}
		idx := make([]int, len(reads))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			da := reads[idx[a]].RTime.Truncate(24 * time.Hour)
			db := reads[idx[b]].RTime.Truncate(24 * time.Hour)
			if !da.Equal(db) {
				return da.Before(db)
			}
			return jitter[idx[a]] < jitter[idx[b]]
		})
		out := make([]Read, len(reads))
		for i, id := range idx {
			out[i] = reads[id]
		}
		copy(reads, out)
	}
	sortPartial(d.CaseR, rng)
	sortPartial(d.PalletR, rng)
	return d
}

// injectAnomalies perturbs the clean reads into d.CaseR. Base reads are
// sampled without replacement so injected anomalies never interact.
func (d *Dataset) injectAnomalies(rng *rand.Rand) {
	clean := d.Clean
	dirty := make([]Read, len(clean))
	copy(dirty, clean)

	total := len(clean) * d.Config.AnomalyPct / 100
	perKind := total / int(numAnomalyKinds)

	// Index of each EPC's reads in time order, over the clean data.
	byEPC := map[string][]int{}
	for i, r := range clean {
		byEPC[r.EPC] = append(byEPC[r.EPC], i)
	}
	for _, idxs := range byEPC {
		sort.Slice(idxs, func(a, b int) bool { return clean[idxs[a]].RTime.Before(clean[idxs[b]].RTime) })
	}
	// Pallet read lookup: (epc, position) -> matching pallet read time.
	palletOf := map[string]string{}
	for _, p := range d.Parents {
		palletOf[p.ChildEPC] = p.ParentEPC
	}
	palletReads := map[string][]Read{}
	for _, r := range d.PalletR {
		palletReads[r.EPC] = append(palletReads[r.EPC], r)
	}
	for _, rs := range palletReads {
		sort.Slice(rs, func(a, b int) bool { return rs[a].RTime.Before(rs[b].RTime) })
	}

	used := map[int]bool{}    // base read indices already consumed
	locked := map[int]bool{}  // rows whose dirty side depends on their location
	deleted := map[int]bool{} // dirty rows to drop (missing anomalies)
	var extra []Read          // dirty rows to add
	var extraClean []Read     // legitimate rows added to both worlds

	// pick samples an unused base read whose EPC-sequence position
	// satisfies ok.
	pick := func(ok func(epc string, pos, seqLen int) bool) int {
		for try := 0; try < 1000; try++ {
			i := rng.Intn(len(clean))
			if used[i] {
				continue
			}
			seq := byEPC[clean[i].EPC]
			pos := 0
			for p, id := range seq {
				if id == i {
					pos = p
					break
				}
			}
			if ok(clean[i].EPC, pos, len(seq)) {
				used[i] = true
				return i
			}
		}
		return -1
	}
	anyPos := func(string, int, int) bool { return true }

	// Replacing anomalies run first: they operate at whole-pallet-visit
	// granularity (the visit truly happened at loc1), so they need rows no
	// other injector has locked yet. Their capacity is bounded by the
	// number of well-separated visits; any shortfall is redistributed to
	// the read-granular kinds below so the total anomaly volume stays at
	// the configured percentage.
	// Replacing anomalies: the whole pallet visit really happened at
	// loc1 — the pallet read and every sibling case read move there in
	// both worlds — but one case was cross-read at loc2 (dirty only). The
	// business flow guarantees that case a locA read within t3 (both
	// worlds), which is what lets the rule prove the cross-read. Moving
	// the full visit keeps pallet/case co-location intact so the missing
	// rule never falsely compensates.
	childrenOf := map[string][]string{}
	for _, p := range d.Parents {
		childrenOf[p.ParentEPC] = append(childrenOf[p.ParentEPC], p.ChildEPC)
	}
	cleanRowAt := func(epc, loc string, near time.Time) int {
		for _, id := range byEPC[epc] {
			if clean[id].BizLoc == loc && absDur(clean[id].RTime.Sub(near)) < CaseJitter {
				return id
			}
		}
		return -1
	}
	// Pallet visits already rewritten, to keep loc1 visits ≥3 apart within
	// a pallet (a case sequence with loc1 at distance ≤2 would look like a
	// cycle anomaly).
	visitTaken := map[string][]int{}
	palletIdx := map[string][]int{} // pallet epc -> indices into d.PalletR, time order
	for i := range d.PalletR {
		palletIdx[d.PalletR[i].EPC] = append(palletIdx[d.PalletR[i].EPC], i)
	}
	for _, ids := range palletIdx {
		sort.Slice(ids, func(a, b int) bool { return d.PalletR[ids[a]].RTime.Before(d.PalletR[ids[b]].RTime) })
	}
	for n := 0; n < perKind; n++ {
		committed := false
		for try := 0; try < 200 && !committed; try++ {
			i := rng.Intn(len(clean))
			if used[i] {
				continue
			}
			pepc := palletOf[clean[i].EPC]
			// Find the pallet read of this visit and its visit index.
			visit := -1
			for v, pid := range palletIdx[pepc] {
				pr := &d.PalletR[pid]
				if pr.BizLoc == clean[i].BizLoc && absDur(pr.RTime.Sub(clean[i].RTime)) < CaseJitter {
					visit = v
					break
				}
			}
			if visit < 0 {
				continue
			}
			tooClose := false
			for _, v := range visitTaken[pepc] {
				if abs(v-visit) < 3 {
					tooClose = true
				}
			}
			if tooClose {
				continue
			}
			pid := palletIdx[pepc][visit]
			oldLoc, when := d.PalletR[pid].BizLoc, d.PalletR[pid].RTime
			// All sibling rows of the visit must be untouched.
			sibRows := make([]int, 0, len(childrenOf[pepc]))
			ok := true
			for _, child := range childrenOf[pepc] {
				id := cleanRowAt(child, oldLoc, when)
				// Reserved-neighbour rows may move with the visit; rows
				// whose injected artifacts depend on their location may not.
				if id < 0 || locked[id] || deleted[id] {
					ok = false
					break
				}
				sibRows = append(sibRows, id)
			}
			if !ok {
				continue
			}
			// Commit: move the visit to loc1 in both worlds.
			d.PalletR[pid].BizLoc = d.Loc1
			d.PalletR[pid].Reader = "rdr-" + d.Loc1
			for _, id := range sibRows {
				used[id] = true
				locked[id] = true
				clean[id].BizLoc = d.Loc1
				clean[id].Reader = "rdr-" + d.Loc1
				dirty[id].BizLoc = d.Loc1
				dirty[id].Reader = "rdr-" + d.Loc1
			}
			visitTaken[pepc] = append(visitTaken[pepc], visit)
			// The chosen case was cross-read at loc2 (dirty only)…
			dirty[i].BizLoc = d.Loc2
			// …and the flow guarantees its locA read shortly after (both).
			next := clean[i]
			next.BizLoc = d.LocA
			next.RTime = clean[i].RTime.Add(offsetWithin(rng, T3Replacing))
			next.Reader = "rdr-" + d.LocA
			extraClean = append(extraClean, next)
			extra = append(extra, next)
			d.Injected[AnomalyReplacing]++
			committed = true
		}
		if !committed {
			break
		}
	}

	shortfall := perKind - d.Injected[AnomalyReplacing]
	perKind += shortfall / 4

	// Reader anomalies: re-reader a base read as readerX (both clean
	// and dirty) and add a bogus read shortly before it (dirty only).
	for n := 0; n < perKind; n++ {
		i := pick(anyPos)
		if i < 0 {
			break
		}
		locked[i] = true // the bogus read depends on this row staying readerX
		clean[i].Reader = d.ReaderX
		dirty[i].Reader = d.ReaderX
		bogus := dirty[i]
		bogus.RTime = dirty[i].RTime.Add(-offsetWithin(rng, T2Reader))
		bogus.BizLoc = "stray-special" // somewhere it never really was
		bogus.Reader = "rdr-stray"
		extra = append(extra, bogus)
		d.Injected[AnomalyReader]++
	}

	// Duplicate anomalies: re-read of the same location within t1.
	for n := 0; n < perKind; n++ {
		i := pick(anyPos)
		if i < 0 {
			break
		}
		locked[i] = true // the dup copy matches this row's location
		dup := dirty[i]
		dup.RTime = dup.RTime.Add(offsetWithin(rng, T1Duplicate))
		dup.Reader = "rdr-dup"
		extra = append(extra, dup)
		d.Injected[AnomalyDuplicate]++
	}

	// Cycle anomalies: between consecutive reads X@ti, Y@tj insert
	// Y@a, X@b (ti < a < b < tj) so the dirty location pattern is
	// [X Y X Y]; the cycle rule keeps the first X and last Y.
	for n := 0; n < perKind; n++ {
		i := pick(func(epc string, pos, seqLen int) bool {
			if pos+1 >= seqLen {
				return false
			}
			seq := byEPC[epc]
			a, b := seq[pos], seq[pos+1]
			if used[a] || used[b] || deleted[b] || clean[a].BizLoc == clean[b].BizLoc {
				return false
			}
			// Keep injected reads well clear of the duplicate threshold.
			return clean[b].RTime.Sub(clean[a].RTime) >= 40*time.Minute
		})
		if i < 0 {
			break
		}
		seq := byEPC[clean[i].EPC]
		pos := 0
		for p, id := range seq {
			if id == i {
				pos = p
			}
		}
		j := seq[pos+1]
		// The inserted rows' cleansing depends on this neighbourhood's
		// locations and presence; reserve it against later injections.
		used[j] = true
		if pos > 0 {
			used[seq[pos-1]] = true
		}
		gap := clean[j].RTime.Sub(clean[i].RTime)
		y2 := dirty[i]
		y2.BizLoc = clean[j].BizLoc
		y2.RTime = clean[i].RTime.Add(gap / 3)
		x2 := dirty[i]
		x2.RTime = clean[i].RTime.Add(2 * gap / 3)
		extra = append(extra, y2, x2)
		d.Injected[AnomalyCycle]++
	}

	// Missing anomalies: drop a case read that has a co-located pallet
	// read; align the clean row exactly with the pallet read so the
	// rule's compensation (the pallet read under the case EPC)
	// reconstructs it bit-for-bit. Never the last site visit — the rule
	// only compensates when case and pallet are seen together later.
	deletedPos := map[string][]int{} // per-epc deleted sequence positions
	for n := 0; n < perKind; n++ {
		i := pick(func(epc string, pos, seqLen int) bool {
			if pos >= seqLen-ReadsPerSite {
				return false
			}
			// Deletions shorten distances downstream; keep them at least
			// four positions from each other and three from replaced
			// (loc1) visits so no unconstrained pair ever lands at
			// cycle-pattern distance.
			for _, dp := range deletedPos[epc] {
				if abs(dp-pos) < 4 {
					return false
				}
			}
			// Deleting seq[pos] creates the new close pairs
			// (pos-1,pos+1), (pos-1,pos+2), (pos-2,pos+1). None may share
			// a location, or the cycle rule would fire on untouched reads.
			seq := byEPC[epc]
			locAt := func(p int) string {
				if p < 0 || p >= seqLen {
					return ""
				}
				return clean[seq[p]].BizLoc
			}
			a2, a1 := locAt(pos-2), locAt(pos-1)
			b1, b2 := locAt(pos+1), locAt(pos+2)
			if (a1 != "" && (a1 == b1 || a1 == b2)) || (a2 != "" && a2 == b1) {
				return false
			}
			return true
		})
		if i < 0 {
			break
		}
		pepc := palletOf[clean[i].EPC]
		var pr *Read
		for k := range palletReads[pepc] {
			r := &palletReads[pepc][k]
			if r.BizLoc == clean[i].BizLoc && absDur(r.RTime.Sub(clean[i].RTime)) < CaseJitter {
				pr = r
				break
			}
		}
		if pr == nil {
			continue
		}
		clean[i].RTime = pr.RTime
		clean[i].Reader = pr.Reader
		clean[i].BizStep = pr.BizStep
		deleted[i] = true
		seq := byEPC[clean[i].EPC]
		for p, id := range seq {
			if id == i {
				deletedPos[clean[i].EPC] = append(deletedPos[clean[i].EPC], p)
			}
		}
		d.Injected[AnomalyMissing]++
	}

	out := make([]Read, 0, len(dirty)+len(extra))
	for i, r := range dirty {
		if !deleted[i] {
			out = append(out, r)
		}
	}
	out = append(out, extra...)
	d.CaseR = out
	d.Clean = append(clean, extraClean...)
}

// usecDur draws a microsecond-aligned duration in [0, max). All generated
// timestamps stay on microsecond boundaries — the engine's TIME resolution.
func usecDur(rng *rand.Rand, max time.Duration) time.Duration {
	return time.Duration(rng.Int63n(int64(max/time.Microsecond))) * time.Microsecond
}

// offsetWithin draws a microsecond-aligned duration strictly inside
// (0, bound), matching the open interval the rules' strict "< bound"
// comparisons accept.
func offsetWithin(rng *rand.Rand, bound time.Duration) time.Duration {
	return time.Duration(1+rng.Int63n(int64(bound/time.Microsecond)-1)) * time.Microsecond
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
