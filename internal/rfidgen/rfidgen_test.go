package rfidgen

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/storage"
)

func TestSchemaCardinalities(t *testing.T) {
	// Figure 5: for scale factor s, palletR ≈ s*30, caseR ≈ s*50*30 (clean),
	// parent = epc_info ≈ s*50, locs = 13 000 (+4 reserved), steps = 100,
	// product = 1000.
	d := Generate(Config{Scale: 4, AnomalyPct: 0, Seed: 1})
	if got := len(d.PalletR); got != 4*30 {
		t.Errorf("palletR = %d, want %d", got, 4*30)
	}
	if got, lo, hi := len(d.Clean), 4*MinCasesPerPlt*30, 4*MaxCasesPerPlt*30; got < lo || got > hi {
		t.Errorf("clean caseR = %d, want in [%d,%d]", got, lo, hi)
	}
	if len(d.CaseR) != len(d.Clean) {
		t.Errorf("0%% anomalies must leave caseR == clean (%d vs %d)", len(d.CaseR), len(d.Clean))
	}
	if got := len(d.Parents); got != len(d.Infos) {
		t.Errorf("parent (%d) and epc_info (%d) must match", got, len(d.Infos))
	}
	if got := len(d.Locs); got != (NumDCs+NumWarehouses+NumStores)*LocsPerSite+4 {
		t.Errorf("locs = %d", got)
	}
	if len(d.Steps) != NumSteps || len(d.Products) != NumProducts {
		t.Errorf("steps/products = %d/%d", len(d.Steps), len(d.Products))
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a := Generate(Config{Scale: 2, AnomalyPct: 20, Seed: 7})
	b := Generate(Config{Scale: 2, AnomalyPct: 20, Seed: 7})
	if len(a.CaseR) != len(b.CaseR) {
		t.Fatalf("lengths differ: %d vs %d", len(a.CaseR), len(b.CaseR))
	}
	for i := range a.CaseR {
		if a.CaseR[i] != b.CaseR[i] {
			t.Fatalf("row %d differs", i)
		}
	}
	c := Generate(Config{Scale: 2, AnomalyPct: 20, Seed: 8})
	same := len(a.CaseR) == len(c.CaseR)
	if same {
		diff := false
		for i := range a.CaseR {
			if a.CaseR[i] != c.CaseR[i] {
				diff = true
				break
			}
		}
		same = !diff
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestAnomalyCountsAndKinds(t *testing.T) {
	d := Generate(Config{Scale: 4, AnomalyPct: 30, Seed: 3})
	want := len(d.Clean) // approximately; clean includes replacing extras
	_ = want
	total := 0
	for k := AnomalyKind(0); k < numAnomalyKinds; k++ {
		n := d.Injected[k]
		if n == 0 {
			t.Errorf("no %v anomalies injected", k)
		}
		total += n
	}
	// Evenly split, except replacing which is a whole-pallet-visit event
	// capped by visit capacity (about one per three visits per pallet).
	for k := AnomalyKind(0); k < numAnomalyKinds; k++ {
		min := total / 10
		if k == AnomalyReplacing {
			min = 4 * 30 / 6 // half the structural capacity at scale 4
		}
		if d.Injected[k] < min {
			t.Errorf("kind %v underrepresented (< %d): %v", k, min, d.Injected)
		}
	}
	// Dirty data differs from clean.
	if len(d.CaseR) == len(d.Clean) {
		t.Log("caseR and clean same length (possible but unlikely)")
	}
}

func TestReadSequencesAreWellFormed(t *testing.T) {
	d := Generate(Config{Scale: 3, AnomalyPct: 0, Seed: 5})
	byEPC := map[string][]Read{}
	for _, r := range d.Clean {
		byEPC[r.EPC] = append(byEPC[r.EPC], r)
	}
	for epc, seq := range byEPC {
		sort.Slice(seq, func(a, b int) bool { return seq[a].RTime.Before(seq[b].RTime) })
		if len(seq) != 30 {
			t.Fatalf("epc %s has %d reads, want 30", epc, len(seq))
		}
		for i := range seq {
			// No natural duplicate or cycle patterns: adjacent and
			// distance-2 locations differ.
			if i >= 1 && seq[i].BizLoc == seq[i-1].BizLoc {
				t.Fatalf("epc %s: natural duplicate at %d", epc, i)
			}
			if i >= 2 && seq[i].BizLoc == seq[i-2].BizLoc {
				t.Fatalf("epc %s: natural cycle at %d", epc, i)
			}
			if i >= 1 {
				gap := seq[i].RTime.Sub(seq[i-1].RTime)
				if gap < MinLatency-CaseJitter || gap > MaxLatency+CaseJitter {
					t.Fatalf("epc %s: gap %v out of range", epc, gap)
				}
			}
			if seq[i].RTime.Truncate(time.Microsecond) != seq[i].RTime {
				t.Fatalf("timestamp not µs aligned: %v", seq[i].RTime)
			}
		}
	}
}

func TestLoadBuildsCatalog(t *testing.T) {
	d := Generate(Config{Scale: 2, AnomalyPct: 10, Seed: 2})
	db := catalog.NewDatabase()
	if err := d.Load(db); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"caser", "palletr", "parent", "epc_info", "product", "locs", "steps"} {
		tab, ok := db.Table(name)
		if !ok || tab.RowCount() == 0 {
			t.Errorf("table %s missing or empty", name)
		}
	}
	if _, ok := db.View("case_with_pallet"); !ok {
		t.Error("case_with_pallet view missing")
	}
	caser, _ := db.Table("caser")
	if caser.IndexOn("rtime") == nil || caser.IndexOn("epc") == nil {
		t.Error("caser indexes missing")
	}
	if caser.Stats(0) == nil {
		t.Error("caser not analyzed")
	}
}

// The central ground-truth property: applying all five paper rules to the
// dirty data restores the clean data exactly.
func TestCleansingRestoresGroundTruth(t *testing.T) {
	for _, pct := range []int{10, 40} {
		d := Generate(Config{Scale: 3, AnomalyPct: pct, Seed: 11})
		db := catalog.NewDatabase()
		if err := d.Load(db); err != nil {
			t.Fatal(err)
		}
		reg := core.NewRegistry(db)
		for _, src := range d.PaperRules() {
			if _, err := reg.Define(src); err != nil {
				t.Fatalf("define: %v", err)
			}
		}
		rw := core.NewRewriter(db, reg)
		res, err := rw.RewriteSQL("select epc, rtime, reader, biz_loc, biz_step from caser", nil, core.StrategyNaive)
		if err != nil {
			t.Fatal(err)
		}
		got, err := exec.Run(exec.NewCtx(), res.Plan)
		if err != nil {
			t.Fatalf("exec: %v\nsql: %s", err, res.SQL)
		}
		cleaned := make([]string, len(got.Rows))
		for i, row := range got.Rows {
			parts := make([]string, len(row))
			for j, v := range row {
				parts[j] = v.String()
			}
			cleaned[i] = strings.Join(parts, "|")
		}
		want := make([]string, len(d.Clean))
		for i, r := range d.Clean {
			want[i] = strings.Join([]string{
				r.EPC, fmt.Sprintf("%s", r.RTime.UTC().Format("2006-01-02 15:04:05.000000")),
				r.Reader, r.BizLoc, r.BizStep,
			}, "|")
		}
		sort.Strings(cleaned)
		sort.Strings(want)
		if len(cleaned) != len(want) {
			t.Fatalf("pct %d: cleaned %d rows, clean truth %d rows", pct, len(cleaned), len(want))
		}
		for i := range want {
			if cleaned[i] != want[i] {
				t.Fatalf("pct %d: row %d differs\n got: %s\nwant: %s", pct, i, cleaned[i], want[i])
			}
		}
	}
}

func TestRuleConstantsExposed(t *testing.T) {
	d := Generate(Config{Scale: 1, AnomalyPct: 10, Seed: 1})
	rules := d.PaperRules()
	if len(rules) != 6 {
		t.Fatalf("PaperRules = %d entries, want 6 (missing rule has two sub-rules)", len(rules))
	}
	joined := strings.Join(rules, "\n")
	for _, want := range []string{d.ReaderX, d.Loc1, d.Loc2, d.LocA, "case_with_pallet"} {
		if !strings.Contains(joined, want) {
			t.Errorf("rules missing constant %q", want)
		}
	}
}

// Loading twice must fail cleanly rather than duplicate tables.
func TestLoadTwiceFails(t *testing.T) {
	d := Generate(Config{Scale: 1, AnomalyPct: 0, Seed: 1})
	db := catalog.NewDatabase()
	if err := d.Load(db); err != nil {
		t.Fatal(err)
	}
	if err := d.Load(db); err == nil {
		t.Fatal("second load should fail")
	}
}

func TestPartialTimeCorrelationOfLoadOrder(t *testing.T) {
	d := Generate(Config{Scale: 3, AnomalyPct: 0, Seed: 9})
	// Rows are sorted by day: timestamps truncated to a day must be
	// non-decreasing in load order.
	prev := time.Time{}
	for _, r := range d.CaseR {
		day := r.RTime.Truncate(24 * time.Hour)
		if day.Before(prev) {
			t.Fatal("load order not day-correlated")
		}
		prev = day
	}
}

var _ = storage.NewTable // keep import when tests shrink
