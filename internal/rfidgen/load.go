package rfidgen

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/types"
)

// ReadsSchema builds the paper's reads-table schema (Figure 2) under the
// given table name.
func ReadsSchema(name string) *schema.Schema {
	return schema.New(
		schema.Col(name, "epc", types.KindString),
		schema.Col(name, "rtime", types.KindTime),
		schema.Col(name, "reader", types.KindString),
		schema.Col(name, "biz_loc", types.KindString),
		schema.Col(name, "biz_step", types.KindString),
	)
}

func readRow(r Read) schema.Row {
	return schema.Row{
		types.NewString(r.EPC), types.NewTimeFrom(r.RTime),
		types.NewString(r.Reader), types.NewString(r.BizLoc), types.NewString(r.BizStep),
	}
}

// CaseWithPalletViewSQL is the derived input of the missing rule (§6.3 of
// the paper): actual case reads unioned with every pallet read propagated
// to each of its cases' EPCs.
const CaseWithPalletViewSQL = `
	select epc, rtime, reader, biz_loc, biz_step, 0 as is_pallet from caser
	union all
	select parent.child_epc as epc, palletr.rtime, palletr.reader, palletr.biz_loc, palletr.biz_step, 1 as is_pallet
	from palletr, parent where palletr.epc = parent.parent_epc`

// Load materializes the dataset into a database following §6.1's physical
// design: caseR and palletR indexed on every column except reader, parent
// indexed on child_epc, dimension tables on their primary keys, locs
// additionally on site and steps on type. Statistics are analyzed so the
// planner costs candidates realistically, and the missing rule's input
// view is registered.
func (d *Dataset) Load(db *catalog.Database) error {
	caseR := storage.NewTable("caser", ReadsSchema("caser"))
	for _, r := range d.CaseR {
		if err := caseR.Append(readRow(r)); err != nil {
			return err
		}
	}
	palletR := storage.NewTable("palletr", ReadsSchema("palletr"))
	for _, r := range d.PalletR {
		if err := palletR.Append(readRow(r)); err != nil {
			return err
		}
	}
	for _, col := range []string{"epc", "rtime", "biz_loc", "biz_step"} {
		if err := caseR.BuildIndex(col); err != nil {
			return err
		}
		if err := palletR.BuildIndex(col); err != nil {
			return err
		}
	}

	parent := storage.NewTable("parent", schema.New(
		schema.Col("parent", "child_epc", types.KindString),
		schema.Col("parent", "parent_epc", types.KindString),
	))
	for _, p := range d.Parents {
		parent.Append(schema.Row{types.NewString(p.ChildEPC), types.NewString(p.ParentEPC)})
	}
	parent.BuildIndex("child_epc")

	info := storage.NewTable("epc_info", schema.New(
		schema.Col("epc_info", "epc", types.KindString),
		schema.Col("epc_info", "product", types.KindInt),
		schema.Col("epc_info", "lot", types.KindInt),
		schema.Col("epc_info", "manufacture_date", types.KindTime),
		schema.Col("epc_info", "expiry_date", types.KindTime),
	))
	for _, i := range d.Infos {
		info.Append(schema.Row{
			types.NewString(i.EPC), types.NewInt(int64(i.Product)), types.NewInt(int64(i.Lot)),
			types.NewTimeFrom(i.Manufacture), types.NewTimeFrom(i.Expiry),
		})
	}
	info.BuildIndex("epc")

	product := storage.NewTable("product", schema.New(
		schema.Col("product", "product", types.KindInt),
		schema.Col("product", "manufacturer", types.KindInt),
		schema.Col("product", "name", types.KindString),
	))
	for _, p := range d.Products {
		product.Append(schema.Row{types.NewInt(int64(p.ID)), types.NewInt(int64(p.Manufacturer)), types.NewString(p.Name)})
	}
	product.BuildIndex("product")

	locs := storage.NewTable("locs", schema.New(
		schema.Col("locs", "gln", types.KindString),
		schema.Col("locs", "site", types.KindString),
		schema.Col("locs", "loc_desc", types.KindString),
	))
	for _, l := range d.Locs {
		locs.Append(schema.Row{types.NewString(l.GLN), types.NewString(l.Site), types.NewString(l.LocDesc)})
	}
	locs.BuildIndex("gln")
	locs.BuildIndex("site")

	steps := storage.NewTable("steps", schema.New(
		schema.Col("steps", "biz_step", types.KindString),
		schema.Col("steps", "type", types.KindString),
	))
	for _, s := range d.Steps {
		steps.Append(schema.Row{types.NewString(s.BizStep), types.NewString(s.Type)})
	}
	steps.BuildIndex("biz_step")
	steps.BuildIndex("type")

	for _, t := range []*storage.Table{caseR, palletR, parent, info, product, locs, steps} {
		t.Analyze()
		if err := db.AddTable(t); err != nil {
			return fmt.Errorf("rfidgen: %w", err)
		}
	}

	view, err := sqlparser.Parse(CaseWithPalletViewSQL)
	if err != nil {
		return fmt.Errorf("rfidgen: view parse: %w", err)
	}
	return db.AddView("case_with_pallet", view)
}

// PaperRules returns the five cleansing rules of §4.3 in Table 1 order
// (reader, duplicate, replacing, cycle, missing r1+r2), with thresholds
// t1, t2, t3 = 5, 10, 20 minutes and the dataset's injected identifiers.
func (d *Dataset) PaperRules() []string {
	return []string{
		fmt.Sprintf(`DEFINE reader ON caser
			AS (A, *B)
			WHERE B.reader = '%s' AND B.rtime - A.rtime < 10 mins
			ACTION DELETE A`, d.ReaderX),
		`DEFINE duplicate ON caser
			AS (A, B)
			WHERE A.biz_loc = B.biz_loc AND B.rtime - A.rtime < 5 mins
			ACTION DELETE B`,
		fmt.Sprintf(`DEFINE replacing ON caser
			AS (A, B)
			WHERE A.biz_loc = '%s' AND B.biz_loc = '%s' AND B.rtime - A.rtime < 20 mins
			ACTION MODIFY A.biz_loc = '%s'`, d.Loc2, d.LocA, d.Loc1),
		`DEFINE cycle ON caser
			AS (A, B, C)
			WHERE A.biz_loc = C.biz_loc AND A.biz_loc <> B.biz_loc
			ACTION DELETE B`,
		`DEFINE missing_r1 ON caser FROM case_with_pallet
			AS (X, A, Y)
			WHERE A.is_pallet = 1 AND ((X.is_pallet = 0 AND A.biz_loc = X.biz_loc AND A.rtime - X.rtime < 5 mins)
				OR (Y.is_pallet = 0 AND A.biz_loc = Y.biz_loc AND Y.rtime - A.rtime < 5 mins))
			ACTION MODIFY A.has_case_nearby = 1`,
		`DEFINE missing_r2 ON caser FROM case_with_pallet
			AS (A, *B)
			WHERE A.is_pallet = 0 OR (A.has_case_nearby = 0 AND B.has_case_nearby = 1)
			ACTION KEEP A`,
	}
}
