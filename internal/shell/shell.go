// Package shell implements the interactive deferred-cleansing SQL shell
// behind cmd/rfidsql: SQL statements and extended SQL-TS rule definitions
// terminated by ';', plus backslash meta-commands for catalog inspection,
// strategy control, plans, and persistence. The engine is decoupled from
// terminal I/O so the command loop is fully testable.
package shell

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro"
)

// Shell is one interactive session's state.
type Shell struct {
	DB  *repro.DB
	Out io.Writer

	strategy repro.Strategy
	rules    []string // empty = all applicable
	explain  bool
	analyze  bool
	trace    bool // print each query's span tree after its results
	limit    int
	timeout  time.Duration // 0 = unlimited
	memLimit int64         // per-query memory budget; 0 = unlimited
	lastMem  repro.MemStats
	ranQuery bool // lastMem is valid
	quit     bool
}

// New creates a shell over a database.
func New(db *repro.DB, out io.Writer) *Shell {
	return &Shell{DB: db, Out: out, strategy: repro.Auto, limit: 20}
}

// Run reads ';'-terminated statements and '\'-commands until EOF or \q.
func (s *Shell) Run(in io.Reader) error {
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, `\`) {
			if err := s.Meta(trimmed); err != nil {
				fmt.Fprintf(s.Out, "error: %v\n", err)
			}
			if s.quit {
				return nil
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if strings.HasSuffix(trimmed, ";") {
			stmt := strings.TrimSpace(buf.String())
			buf.Reset()
			if err := s.Statement(strings.TrimSuffix(stmt, ";")); err != nil {
				fmt.Fprintf(s.Out, "error: %v\n", err)
			}
		}
	}
	return scanner.Err()
}

// Statement executes one SQL query or rule definition (without the
// trailing semicolon).
func (s *Shell) Statement(stmt string) error {
	stmt = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(stmt), ";"))
	if stmt == "" {
		return nil
	}
	if strings.HasPrefix(strings.ToLower(stmt), "define ") {
		info, err := s.DB.DefineRule(stmt)
		if err != nil {
			return err
		}
		fmt.Fprintf(s.Out, "rule %s defined; template:\n  %s\n", info.Name, info.Template)
		return nil
	}
	opts := s.opts()
	if s.explain {
		plan, err := s.DB.Explain(stmt, opts...)
		if err != nil {
			return err
		}
		fmt.Fprintln(s.Out, plan)
	}
	if s.analyze {
		plan, err := s.DB.ExplainAnalyze(stmt, opts...)
		if err != nil {
			return err
		}
		fmt.Fprintln(s.Out, plan)
		return nil
	}
	rows, err := s.DB.Query(stmt, opts...)
	if err != nil {
		return err
	}
	s.lastMem, s.ranQuery = rows.Mem, true
	fmt.Fprintf(s.Out, "-- %s\n", rows.Rewrite.Strategy)
	fmt.Fprintln(s.Out, strings.Join(rows.Columns, " | "))
	for i, r := range rows.Data {
		if i >= s.limit {
			fmt.Fprintf(s.Out, "... %d more rows\n", len(rows.Data)-s.limit)
			break
		}
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.String()
		}
		fmt.Fprintln(s.Out, strings.Join(parts, " | "))
	}
	fmt.Fprintf(s.Out, "(%d rows)\n", len(rows.Data))
	if s.trace {
		if tr := rows.Trace(); tr != nil {
			fmt.Fprint(s.Out, tr.String())
		} else {
			fmt.Fprintln(s.Out, "(no trace: telemetry disabled)")
		}
	}
	return nil
}

func (s *Shell) opts() []repro.QueryOption {
	opts := []repro.QueryOption{repro.WithStrategy(s.strategy)}
	if len(s.rules) > 0 {
		opts = append(opts, repro.WithRules(s.rules...))
	}
	if s.timeout > 0 {
		opts = append(opts, repro.WithTimeout(s.timeout))
	}
	if s.memLimit > 0 {
		opts = append(opts, repro.WithMemoryLimit(s.memLimit))
	}
	if s.trace {
		opts = append(opts, repro.WithTrace(nil))
	}
	return opts
}

// Meta executes a backslash command.
func (s *Shell) Meta(cmd string) error {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case `\q`, `\quit`:
		s.quit = true
		return nil
	case `\h`, `\help`:
		fmt.Fprint(s.Out, helpText)
		return nil
	case `\d`:
		if len(fields) == 1 {
			for _, name := range s.DB.Catalog.TableNames() {
				t, _ := s.DB.Catalog.Table(name)
				fmt.Fprintf(s.Out, "%-24s %8d rows\n", name, t.RowCount())
			}
			for _, name := range s.DB.Catalog.ViewNames() {
				fmt.Fprintf(s.Out, "%-24s (view)\n", name)
			}
			return nil
		}
		t, ok := s.DB.Catalog.Table(fields[1])
		if !ok {
			return fmt.Errorf("no table %q", fields[1])
		}
		for ord, c := range t.Schema.Columns {
			idx := ""
			if t.HasIndex(ord) {
				idx = "  (indexed)"
			}
			fmt.Fprintf(s.Out, "%-20s %s%s\n", c.Name, c.Kind, idx)
		}
		return nil
	case `\rules`:
		for _, r := range s.DB.Registry.All() {
			fmt.Fprintf(s.Out, "-- #%d %s (ON %s)\n%s\n", r.Seq, r.Rule.Name, r.Rule.On, r.Rule.String())
		}
		return nil
	case `\strategy`:
		if len(fields) < 2 {
			fmt.Fprintf(s.Out, "strategy: %s\n", s.strategy)
			return nil
		}
		switch fields[1] {
		case "auto":
			s.strategy = repro.Auto
		case "naive":
			s.strategy = repro.Naive
		case "expanded":
			s.strategy = repro.Expanded
		case "join-back", "joinback":
			s.strategy = repro.JoinBack
		case "dirty":
			s.strategy = repro.Dirty
		default:
			return fmt.Errorf("unknown strategy %q", fields[1])
		}
		fmt.Fprintf(s.Out, "strategy: %s\n", s.strategy)
		return nil
	case `\use`:
		if len(fields) < 2 || fields[1] == "all" {
			s.rules = nil
			fmt.Fprintln(s.Out, "using all applicable rules")
			return nil
		}
		s.rules = strings.Split(fields[1], ",")
		sort.Strings(s.rules)
		fmt.Fprintf(s.Out, "using rules: %s\n", strings.Join(s.rules, ", "))
		return nil
	case `\explain`:
		s.explain = !s.explain
		fmt.Fprintf(s.Out, "explain: %v\n", s.explain)
		return nil
	case `\analyze`:
		s.analyze = !s.analyze
		fmt.Fprintf(s.Out, "analyze: %v\n", s.analyze)
		return nil
	case `\limit`:
		if len(fields) < 2 {
			return fmt.Errorf(`usage: \limit <n>`)
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 1 {
			return fmt.Errorf("bad limit %q", fields[1])
		}
		s.limit = n
		return nil
	case `\timeout`:
		if len(fields) < 2 {
			if s.timeout > 0 {
				fmt.Fprintf(s.Out, "timeout: %s\n", s.timeout)
			} else {
				fmt.Fprintln(s.Out, "timeout: off")
			}
			return nil
		}
		if fields[1] == "off" {
			s.timeout = 0
			fmt.Fprintln(s.Out, "timeout: off")
			return nil
		}
		d, err := time.ParseDuration(fields[1])
		if err != nil || d <= 0 {
			return fmt.Errorf("bad timeout %q (want e.g. 500ms, 30s, or off)", fields[1])
		}
		s.timeout = d
		fmt.Fprintf(s.Out, "timeout: %s\n", s.timeout)
		return nil
	case `\mem`:
		if len(fields) > 1 && fields[1] == "limit" {
			if len(fields) < 3 {
				return fmt.Errorf(`usage: \mem limit <size|off> (e.g. 64KiB, 4MiB, 1048576)`)
			}
			if fields[2] == "off" {
				s.memLimit = 0
				fmt.Fprintln(s.Out, "memory limit: off")
				return nil
			}
			n, err := parseBytes(fields[2])
			if err != nil {
				return err
			}
			s.memLimit = n
			fmt.Fprintf(s.Out, "memory limit: %s\n", repro.FormatBytes(n))
			return nil
		}
		if s.memLimit > 0 {
			fmt.Fprintf(s.Out, "memory limit: %s\n", repro.FormatBytes(s.memLimit))
		} else {
			fmt.Fprintln(s.Out, "memory limit: off")
		}
		if s.ranQuery {
			fmt.Fprintf(s.Out, "last query: peak %s", repro.FormatBytes(s.lastMem.Peak))
			if s.lastMem.Spilled() {
				fmt.Fprintf(s.Out, ", spilled %d runs (%s)", s.lastMem.SpillRuns, repro.FormatBytes(s.lastMem.SpillBytes))
			} else {
				fmt.Fprint(s.Out, ", no spill")
			}
			fmt.Fprintln(s.Out)
		}
		rs := s.DB.ResourceStats()
		fmt.Fprintf(s.Out, "engine: %d queries, %d spilled (%d runs, %s), %d exhausted, max peak %s\n",
			rs.Queries, rs.SpilledQueries, rs.SpillRuns, repro.FormatBytes(rs.SpillBytes),
			rs.Exhausted, repro.FormatBytes(rs.MaxPeak))
		if rs.Admission.Admitted > 0 || rs.Admission.Rejected > 0 {
			fmt.Fprintf(s.Out, "admission: %d running, %d waiting, %d admitted, %d rejected\n",
				rs.Admission.Running, rs.Admission.Waiting, rs.Admission.Admitted, rs.Admission.Rejected)
		}
		return nil
	case `\trace`:
		switch {
		case len(fields) < 2:
			// fall through to report
		case fields[1] == "on":
			s.trace = true
		case fields[1] == "off":
			s.trace = false
		default:
			return fmt.Errorf(`usage: \trace [on|off]`)
		}
		fmt.Fprintf(s.Out, "trace: %v\n", s.trace)
		return nil
	case `\stats`:
		reg := s.DB.Metrics()
		if reg == nil {
			fmt.Fprintln(s.Out, "telemetry disabled")
			return nil
		}
		// One line per nonzero sample, Prometheus-style names so the
		// shell view matches what a scrape returns.
		for _, fam := range reg.Snapshot() {
			for _, m := range fam.Metrics {
				labels := ""
				for k, v := range m.Labels {
					labels = fmt.Sprintf("{%s=%q}", k, v)
				}
				switch {
				case m.Count != nil && *m.Count > 0:
					avg := *m.Sum / float64(*m.Count)
					rendered := strconv.FormatFloat(avg, 'g', 4, 64)
					if strings.HasSuffix(fam.Name, "_seconds") {
						rendered = time.Duration(float64(time.Second) * avg).Round(time.Microsecond).String()
					} else if strings.HasSuffix(fam.Name, "_bytes") {
						rendered = repro.FormatBytes(int64(avg))
					}
					fmt.Fprintf(s.Out, "%-44s count=%d avg=%s\n", fam.Name+labels, *m.Count, rendered)
				case m.Value != nil && *m.Value != 0:
					fmt.Fprintf(s.Out, "%-44s %s\n", fam.Name+labels, strconv.FormatFloat(*m.Value, 'g', -1, 64))
				}
			}
		}
		return nil
	case `\cache`:
		if len(fields) > 1 && fields[1] == "reset" {
			s.DB.ResetPlanCache()
			fmt.Fprintln(s.Out, "plan cache reset")
			return nil
		}
		st := s.DB.PlanCacheStats()
		fmt.Fprintf(s.Out, "plan cache: %d entries, %d hits, %d misses\n", st.Entries, st.Hits, st.Misses)
		return nil
	case `\conditions`:
		if len(fields) < 2 {
			return fmt.Errorf(`usage: \conditions <query without semicolon>`)
		}
		q := strings.TrimSpace(strings.TrimPrefix(cmd, fields[0]))
		cc, err := s.DB.ExpandedConditions(q, s.opts()...)
		if err != nil {
			return err
		}
		names := make([]string, 0, len(cc))
		for n := range cc {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(s.Out, "%-14s %s\n", n, cc[n])
		}
		return nil
	case `\workload`:
		scale, pct := 5, 10
		var err error
		if len(fields) > 1 {
			if scale, err = strconv.Atoi(fields[1]); err != nil {
				return fmt.Errorf("bad scale %q", fields[1])
			}
		}
		if len(fields) > 2 {
			if pct, err = strconv.Atoi(fields[2]); err != nil {
				return fmt.Errorf("bad anomaly pct %q", fields[2])
			}
		}
		if err := s.DB.LoadRFIDWorkload(repro.WorkloadConfig{Scale: scale, AnomalyPct: pct, Seed: 20060912}); err != nil {
			return err
		}
		names, err := s.DB.DefinePaperRules()
		if err != nil {
			return err
		}
		caser, _ := s.DB.Catalog.Table("caser")
		fmt.Fprintf(s.Out, "workload loaded: %d case reads; rules: %s\n", caser.RowCount(), strings.Join(names, ", "))
		return nil
	case `\save`:
		if len(fields) < 2 {
			return fmt.Errorf(`usage: \save <dir>`)
		}
		if err := s.DB.Save(fields[1]); err != nil {
			return err
		}
		fmt.Fprintf(s.Out, "saved to %s\n", fields[1])
		return nil
	case `\open`:
		if len(fields) < 2 {
			return fmt.Errorf(`usage: \open <dir>`)
		}
		db, err := repro.OpenDir(fields[1])
		if err != nil {
			return err
		}
		s.DB = db
		fmt.Fprintf(s.Out, "opened %s\n", fields[1])
		return nil
	case `\wal`:
		ws := s.DB.WALStats()
		if !ws.Durable {
			fmt.Fprintln(s.Out, "wal: off (open with repro.WithWAL for durability)")
			return nil
		}
		fmt.Fprintf(s.Out, "wal: %s  file=wal-%06d.log  size=%s  fsync=%s  checkpoints=%d\n",
			ws.Dir, ws.Seq, repro.FormatBytes(ws.Bytes), ws.Policy, ws.Checkpoints)
		rs := s.DB.ResourceStats().Recovery
		switch {
		case rs.Seeded:
			fmt.Fprintln(s.Out, "recovery: seeded from snapshot (fresh root)")
		case rs.Checkpoint == "" && rs.ReplayedRecords == 0:
			fmt.Fprintln(s.Out, "recovery: fresh root (nothing to replay)")
		default:
			fmt.Fprintf(s.Out, "recovery: checkpoint=%s replayed=%d records (%d rows), truncated=%s\n",
				rs.Checkpoint, rs.ReplayedRecords, rs.ReplayedRows, repro.FormatBytes(rs.TruncatedBytes))
		}
		return nil
	case `\queries`:
		active := s.DB.ActiveQueries()
		if s.DB.Metrics() == nil {
			fmt.Fprintln(s.Out, "telemetry disabled")
			return nil
		}
		if len(active) == 0 {
			fmt.Fprintln(s.Out, "no active queries")
			return nil
		}
		for _, q := range active {
			state := q.Phase
			if q.Killed {
				state += " (killed)"
			}
			fmt.Fprintf(s.Out, "%s  %-7s %-10s %8s  %s\n",
				q.ID, q.Kind, state, q.Elapsed.Round(time.Millisecond), q.SQL)
			if q.MemBytes > 0 {
				fmt.Fprintf(s.Out, "  mem: %s\n", repro.FormatBytes(q.MemBytes))
			}
			for _, op := range q.Operators {
				fmt.Fprintf(s.Out, "  %-14s %d rows", op.Op, op.Rows)
				if op.Batches > 0 {
					fmt.Fprintf(s.Out, " (%d batches)", op.Batches)
				}
				fmt.Fprintln(s.Out)
			}
		}
		return nil
	case `\kill`:
		if len(fields) < 2 {
			return fmt.Errorf(`usage: \kill <query-id>`)
		}
		id, err := repro.ParseQueryID(fields[1])
		if err != nil {
			return fmt.Errorf("bad query id %q", fields[1])
		}
		if err := s.DB.Kill(id); err != nil {
			return err
		}
		fmt.Fprintf(s.Out, "killed %s\n", id)
		return nil
	case `\checkpoint`:
		if err := s.DB.Checkpoint(); err != nil {
			return err
		}
		ws := s.DB.WALStats()
		fmt.Fprintf(s.Out, "checkpointed: wal now at wal-%06d.log (%s), %d checkpoints total\n",
			ws.Seq, repro.FormatBytes(ws.Bytes), ws.Checkpoints)
		return nil
	}
	return fmt.Errorf("unknown command %s (try \\h)", fields[0])
}

// parseBytes reads a human byte size: a plain count or one with a K/M/G
// suffix (binary, case-insensitive; "64K", "64KiB", "4mb", "1g").
func parseBytes(s string) (int64, error) {
	t := strings.ToLower(strings.TrimSpace(s))
	mult := int64(1)
	for _, suf := range []struct {
		text string
		mult int64
	}{
		{"kib", 1 << 10}, {"kb", 1 << 10}, {"k", 1 << 10},
		{"mib", 1 << 20}, {"mb", 1 << 20}, {"m", 1 << 20},
		{"gib", 1 << 30}, {"gb", 1 << 30}, {"g", 1 << 30},
	} {
		if strings.HasSuffix(t, suf.text) {
			t, mult = strings.TrimSuffix(t, suf.text), suf.mult
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad size %q (want e.g. 64KiB, 4MiB, 1048576)", s)
	}
	return n * mult, nil
}

const helpText = `commands:
  <sql>;                 run a query under the active strategy and rules
  DEFINE ... ;           register a cleansing rule (extended SQL-TS)
  \d [table]             list tables / describe one
  \rules                 list registered rules
  \strategy [s]          show or set: auto naive expanded join-back dirty
  \use <r1,r2|all>       restrict which rules apply
  \conditions <query>    show derived expanded conditions (Table 1 style)
  \explain               toggle printing the plan before results
  \analyze               toggle EXPLAIN ANALYZE mode (plan only, with actuals)
  \limit <n>             rows printed per result
  \timeout <dur|off>     cancel queries that run longer than dur (e.g. 30s)
  \mem [limit <sz|off>]  show per-query peak/spill stats; set the memory budget
  \trace [on|off]        print each query's span tree (timings per stage/operator)
  \stats                 dump the engine's nonzero metrics (latency, cache, spill)
  \cache [reset]         show (or reset) the rewrite/plan cache counters
  \workload [scale pct]  generate + load the RFIDGen workload and paper rules
  \save <dir> / \open <dir>   persist / restore the database
  \queries               list running statements (phase, elapsed, live row counts)
  \kill <id>             cancel a running statement by its query id
  \wal                   show WAL status and the recovery outcome (durable shells)
  \checkpoint            force a checkpoint and truncate the WAL
  \q                     quit
`
