package shell

import (
	"strings"
	"testing"

	"repro"
)

func newShell(t *testing.T) (*Shell, *strings.Builder) {
	t.Helper()
	var out strings.Builder
	sh := New(repro.Open(), &out)
	return sh, &out
}

func feed(t *testing.T, sh *Shell, script string) {
	t.Helper()
	if err := sh.Run(strings.NewReader(script)); err != nil {
		t.Fatal(err)
	}
}

func TestShellEndToEnd(t *testing.T) {
	sh, out := newShell(t)
	feed(t, sh, `\workload 1 10
select count(*) from caser;
\strategy dirty
select count(*) from caser;
\q
`)
	text := out.String()
	if !strings.Contains(text, "workload loaded") {
		t.Fatalf("no workload banner:\n%s", text)
	}
	if !strings.Contains(text, "(1 rows)") {
		t.Fatalf("no result row count:\n%s", text)
	}
	if !strings.Contains(text, "strategy: dirty") {
		t.Fatalf("strategy switch missing:\n%s", text)
	}
	// Two different counts (cleansed vs dirty) should appear.
	if strings.Count(text, "(1 rows)") != 2 {
		t.Fatalf("expected two query results:\n%s", text)
	}
}

func TestShellDefineRuleAndQuery(t *testing.T) {
	sh, out := newShell(t)
	feed(t, sh, `\workload 1 10
DEFINE myrule ON caser
AS (A, B) WHERE A.biz_loc = B.biz_loc AND B.rtime - A.rtime < 2 mins
ACTION DELETE B;
\use myrule
select count(*) from caser;
`)
	text := out.String()
	if !strings.Contains(text, "rule myrule defined") {
		t.Fatalf("rule not defined:\n%s", text)
	}
	if !strings.Contains(text, "using rules: myrule") {
		t.Fatalf("\\use failed:\n%s", text)
	}
}

func TestShellMetaCommands(t *testing.T) {
	sh, out := newShell(t)
	feed(t, sh, `\workload 1 10
\d
\d caser
\rules
\conditions select * from caser where rtime >= timestamp '2020-01-01'
\limit 5
\explain
select epc from caser;
\h
`)
	text := out.String()
	for _, want := range []string{
		"caser", "locs", "epc_info", // \d
		"rtime", "(indexed)", // \d caser
		"DEFINE reader", // \rules
		"reader",        // conditions
		"explain: true",
		"strategy:", // from plan header
		"commands:", // help
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestShellAnalyzeMode(t *testing.T) {
	sh, out := newShell(t)
	feed(t, sh, `\workload 1 0
\analyze
select count(*) from caser;
`)
	if !strings.Contains(out.String(), "actual rows=") {
		t.Fatalf("analyze mode output missing:\n%s", out.String())
	}
}

func TestShellErrorsAreReportedNotFatal(t *testing.T) {
	sh, out := newShell(t)
	feed(t, sh, `select * from nosuch;
\strategy bogus
\nosuchcmd
\q
`)
	text := out.String()
	if strings.Count(text, "error:") < 3 {
		t.Fatalf("errors not reported:\n%s", text)
	}
}

func TestShellSaveOpen(t *testing.T) {
	dir := t.TempDir()
	sh, _ := newShell(t)
	feed(t, sh, "\\workload 1 10\n\\save "+dir+"\n")
	sh2, out2 := newShell(t)
	feed(t, sh2, "\\open "+dir+"\nselect count(*) from caser;\n")
	if !strings.Contains(out2.String(), "(1 rows)") {
		t.Fatalf("reopened db query failed:\n%s", out2.String())
	}
}

func TestShellMultilineStatement(t *testing.T) {
	sh, out := newShell(t)
	feed(t, sh, `\workload 1 0
select
  count(*)
from caser;
`)
	if !strings.Contains(out.String(), "(1 rows)") {
		t.Fatalf("multiline statement failed:\n%s", out.String())
	}
}

func TestShellTraceCommand(t *testing.T) {
	sh, out := newShell(t)
	feed(t, sh, `\workload 1 10
\trace on
select count(*) from caser;
\trace off
\trace bogus
`)
	text := out.String()
	if !strings.Contains(text, "trace: true") || !strings.Contains(text, "trace: false") {
		t.Fatalf("trace toggle not reported:\n%s", text)
	}
	// The span tree prints the query id, the compile phases, and the
	// executed operators under an execute span.
	for _, want := range []string{"q-", "rewrite", "execute", "Scan(caser)", "rows="} {
		if !strings.Contains(text, want) {
			t.Errorf("trace output missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(text, `usage: \trace`) {
		t.Errorf("bad argument not rejected:\n%s", text)
	}
}

func TestShellStatsCommand(t *testing.T) {
	sh, out := newShell(t)
	feed(t, sh, `\workload 1 10
select count(*) from caser;
select count(*) from caser;
\stats
`)
	text := out.String()
	for _, want := range []string{
		`repro_queries_total{outcome="ok"}`,
		"repro_query_seconds", "repro_plan_cache_hits_total",
		"repro_operator_rows_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("stats output missing %q:\n%s", want, text)
		}
	}
}

func TestShellStatsWithoutTelemetry(t *testing.T) {
	var out strings.Builder
	sh := New(repro.Open(repro.WithoutTelemetry()), &out)
	feed(t, sh, "\\stats\n")
	if !strings.Contains(out.String(), "telemetry disabled") {
		t.Fatalf("expected disabled notice:\n%s", out.String())
	}
}

func TestShellMemCommand(t *testing.T) {
	sh, out := newShell(t)
	feed(t, sh, `\workload 1 10
\mem limit 64KiB
\mem
select epc, biz_loc, rtime from caser order by rtime, epc, biz_loc;
\mem
\mem limit off
\mem limit bogus
`)
	text := out.String()
	if !strings.Contains(text, "memory limit: 64.0 KiB") {
		t.Fatalf("limit not set:\n%s", text)
	}
	if !strings.Contains(text, "last query: peak") {
		t.Fatalf("no per-query stats:\n%s", text)
	}
	if !strings.Contains(text, "spilled") {
		t.Fatalf("expected a spill under a 64KiB budget:\n%s", text)
	}
	if !strings.Contains(text, "memory limit: off") {
		t.Fatalf("limit not cleared:\n%s", text)
	}
	if !strings.Contains(text, "error:") {
		t.Fatalf("bad size not rejected:\n%s", text)
	}
	if !strings.Contains(text, "engine:") {
		t.Fatalf("no engine totals:\n%s", text)
	}
}

func TestShellQueriesAndKill(t *testing.T) {
	sh, out := newShell(t)
	// Shell statements are synchronous, so \queries sees an idle engine;
	// the command's shape and \kill's error contract are what this pins.
	feed(t, sh, `\queries
\kill
\kill not-an-id
\kill q-09999999
\q
`)
	text := out.String()
	for _, want := range []string{
		"no active queries",
		`usage: \kill <query-id>`,
		`bad query id "not-an-id"`,
		"no such query: q-09999999",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
}

func TestShellQueriesWithoutTelemetry(t *testing.T) {
	var out strings.Builder
	sh := New(repro.Open(repro.WithoutTelemetry()), &out)
	feed(t, sh, `\queries
\q
`)
	if !strings.Contains(out.String(), "telemetry disabled") {
		t.Fatalf("output = %q", out.String())
	}
}
