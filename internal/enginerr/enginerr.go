// Package enginerr holds sentinel errors shared between the engine's
// internal layers (plan, core) and the public facade. The facade
// re-exports them (repro.ErrNoTable, repro.ErrUnknownRule) so that
// errors.Is — and therefore repro.Code and the serving layer's wire
// statuses — classify failures identically whether they surface from
// catalog lookups in the facade or from name resolution deep inside the
// planner and rewriter.
package enginerr

import "errors"

var (
	// ErrNoTable reports a reference to a table the catalog doesn't hold.
	ErrNoTable = errors.New("repro: no such table")
	// ErrUnknownRule reports a reference to a cleansing rule that was
	// never defined (or was dropped).
	ErrUnknownRule = errors.New("repro: unknown rule")
)
