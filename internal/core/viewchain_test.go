package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/types"
)

// mkPalletWorld builds caser + palletsub tables and the case∪pallet view
// from random co-travelling case/pallet reads with some case reads
// dropped, mirroring Example 5's setting.
func mkPalletWorld(t testing.TB, seed int64) *catalog.Database {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	db := catalog.NewDatabase()
	newReads := func(name string) *storage.Table {
		return storage.NewTable(name, schema.New(
			schema.Col(name, "epc", types.KindString),
			schema.Col(name, "rtime", types.KindTime),
			schema.Col(name, "biz_loc", types.KindString),
			schema.Col(name, "reader", types.KindString),
			schema.Col(name, "biz_step", types.KindString),
		))
	}
	caser := newReads("caser")
	pallet := newReads("palletsub")

	nCases := 1 + rng.Intn(4)
	nVisits := 2 + rng.Intn(5)
	minute := int64(0)
	for v := 0; v < nVisits; v++ {
		minute += int64(60 + rng.Intn(600))
		loc := fmt.Sprintf("L%d", v)
		for c := 0; c < nCases; c++ {
			epc := fmt.Sprintf("c%d", c)
			// Pallet expansion row (per case, as the parent-join view
			// would produce).
			pallet.Append(schema.Row{
				types.NewString(epc), types.NewTime(minute * 60_000_000),
				types.NewString(loc), types.NewString("rdr"), types.NewString("s"),
			})
			// The case read itself, sometimes missing.
			if rng.Intn(4) != 0 {
				jitter := int64(rng.Intn(4))
				caser.Append(schema.Row{
					types.NewString(epc), types.NewTime((minute + jitter) * 60_000_000),
					types.NewString(loc), types.NewString("rdr"), types.NewString("s"),
				})
			}
		}
	}
	caser.BuildIndex("rtime")
	caser.BuildIndex("epc")
	caser.Analyze()
	pallet.Analyze()
	if err := db.AddTable(caser); err != nil {
		t.Fatal(err)
	}
	if err := db.AddTable(pallet); err != nil {
		t.Fatal(err)
	}
	view, err := sqlparser.Parse(`
		select epc, rtime, biz_loc, reader, biz_step, 0 as is_pallet from caser
		union all
		select epc, rtime, biz_loc, reader, biz_step, 1 as is_pallet from palletsub`)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddView("case_with_pallet", view); err != nil {
		t.Fatal(err)
	}
	return db
}

var missingRules = []string{
	`DEFINE missing_r1 ON caser FROM case_with_pallet AS (X, A, Y)
	 WHERE A.is_pallet = 1 AND ((X.is_pallet = 0 AND A.biz_loc = X.biz_loc AND A.rtime - X.rtime < 5 mins)
		OR (Y.is_pallet = 0 AND A.biz_loc = Y.biz_loc AND Y.rtime - A.rtime < 5 mins))
	 ACTION MODIFY A.has_case_nearby = 1`,
	`DEFINE missing_r2 ON caser FROM case_with_pallet AS (A, *B)
	 WHERE A.is_pallet = 0 OR (A.has_case_nearby = 0 AND B.has_case_nearby = 1)
	 ACTION KEEP A`,
}

// Theorem 1 over the view-input chain: naive and join-back agree for
// random pallet worlds and random query ranges; and with a prefix of
// plain rules before the missing rule, the mixed chain still agrees.
func TestTheorem1PropertyWithMissingRule(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		db := mkPalletWorld(t, seed)
		reg := NewRegistry(db)
		ruleSet := missingRules
		if seed%2 == 1 {
			ruleSet = append([]string{tDup, tReader}, missingRules...)
		}
		defineAll(t, reg, ruleSet...)

		rng := rand.New(rand.NewSource(seed * 77))
		lo := int64(rng.Intn(1000))
		hi := lo + int64(rng.Intn(3000))
		q := fmt.Sprintf("select epc, rtime, biz_loc from caser where rtime >= %s and rtime <= %s",
			minuteTS(lo), minuteTS(hi))

		want := rewriteRun(t, db, reg, q, nil, StrategyNaive)
		got := rewriteRun(t, db, reg, q, nil, StrategyJoinBack)
		if strings.Join(want, "\n") != strings.Join(got, "\n") {
			t.Errorf("seed %d: join-back disagrees with naive over view chain\nnaive: %v\njb:    %v", seed, want, got)
		}
		auto := rewriteRun(t, db, reg, q, nil, StrategyAuto)
		if strings.Join(want, "\n") != strings.Join(auto, "\n") {
			t.Errorf("seed %d: auto disagrees with naive over view chain", seed)
		}
	}
}

// The compensation invariant: every pallet row surviving the chain
// corresponds to a (epc, biz_loc) visit with no case read — never a visit
// that already has one.
func TestCompensationOnlyForMissingReads(t *testing.T) {
	db := mkPalletWorld(t, 42)
	reg := NewRegistry(db)
	defineAll(t, reg, missingRules...)

	// Collect raw case visits.
	caser, _ := db.Table("caser")
	haveCase := map[string]bool{}
	for _, r := range caser.AllRows() {
		// Visits are minute-aligned with jitter < 5 min; key by epc+loc.
		haveCase[r[0].Str()+"|"+r[2].Str()] = true
	}
	out := rewriteRun(t, db, reg, "select epc, rtime, biz_loc from caser where rtime >= "+minuteTS(0), nil, StrategyNaive)
	rowSet := map[string]bool{}
	for _, line := range out {
		rowSet[line] = true
	}
	// Every original case read must survive.
	for _, r := range caser.AllRows() {
		key := r[0].Str() + "|" + r[1].String() + "|" + r[2].Str()
		if !rowSet[key] {
			t.Errorf("case read lost: %s", key)
		}
	}
	// Surviving extra rows must be compensations for caseless visits.
	for line := range rowSet {
		parts := strings.SplitN(line, "|", 3)
		key := parts[0] + "|" + parts[2]
		origKey := line
		found := false
		for _, r := range caser.AllRows() {
			if r[0].Str()+"|"+r[1].String()+"|"+r[2].Str() == origKey {
				found = true
				break
			}
		}
		if !found && haveCase[key] {
			t.Errorf("compensation for a visit that has a case read: %s", line)
		}
	}
}
