package core

import (
	"fmt"
	"strings"

	"repro/internal/enginerr"
	"repro/internal/plan"
	"repro/internal/sqlast"
	"repro/internal/sqlts"
)

// targetRef is one reference to the rules' ON table inside a user query:
// the containing SELECT, the FROM slot holding the table, and the query
// condition split into parts (the paper's σ_s(R) ⋈ dims model of §5.2).
type targetRef struct {
	sel     *sqlast.SelectStmt
	slot    *sqlast.TableExpr // points into sel.From
	binding string
	// s: conjuncts over the target table only.
	s []sqlast.Expr
	// rest: remaining WHERE conjuncts (join conditions, dim-local
	// predicates, multi-table conditions) — left in place.
	rest []sqlast.Expr
	// dims: n:1 reference-table joins usable for semi-join pushdown.
	dims []dimJoin
}

// dimJoin is one "R.key = D.key2" join to a dimension table D with its
// local predicate.
type dimJoin struct {
	rCol    string // column of R used in the join (lower case)
	dim     string // dimension table name
	binding string
	dimCol  string
	local   []sqlast.Expr // conjuncts on the dimension only
}

// analyzeQuery locates every reference to table R in the (already cloned)
// statement and splits each containing SELECT's WHERE clause.
func (rw *Rewriter) analyzeQuery(stmt sqlast.Stmt, table string) ([]*targetRef, error) {
	table = strings.ToLower(table)
	var targets []*targetRef
	var walk func(s sqlast.Stmt) error
	walk = func(s sqlast.Stmt) error {
		switch s := s.(type) {
		case nil:
			return nil
		case *sqlast.SetOpStmt:
			if err := walk(s.L); err != nil {
				return err
			}
			return walk(s.R)
		case *sqlast.SelectStmt:
			for _, cte := range s.With {
				if err := walk(cte.Query); err != nil {
					return err
				}
			}
			for i := range s.From {
				switch te := s.From[i].(type) {
				case *sqlast.TableName:
					// CTE names shadow base tables.
					if strings.ToLower(te.Name) == table && !shadowedByCTE(s, te.Name) {
						t, err := rw.splitWhere(s, &s.From[i], te)
						if err != nil {
							return err
						}
						targets = append(targets, t)
					}
				case *sqlast.SubqueryTable:
					if err := walk(te.Query); err != nil {
						return err
					}
				case *sqlast.JoinExpr:
					if err := walkJoinForTargets(rw, s, &s.From[i], te, table, &targets); err != nil {
						return err
					}
				}
			}
			// Subqueries in WHERE also get cleansed? The paper's model
			// only rewrites relation references in FROM; IN-subqueries
			// over R are used by the rewrites themselves for sequence
			// restriction and are not user cleansing targets.
			return nil
		}
		return fmt.Errorf("core: unsupported statement %T", s)
	}
	if err := walk(stmt); err != nil {
		return nil, err
	}
	return targets, nil
}

func shadowedByCTE(s *sqlast.SelectStmt, name string) bool {
	for _, cte := range s.With {
		if strings.EqualFold(cte.Name, name) {
			return true
		}
	}
	return false
}

// walkJoinForTargets finds references to R inside an ANSI join tree. Such
// references are rewritten with only their s-conjuncts from WHERE (join ON
// conditions stay untouched).
func walkJoinForTargets(rw *Rewriter, sel *sqlast.SelectStmt, slot *sqlast.TableExpr, j *sqlast.JoinExpr, table string, out *[]*targetRef) error {
	var rec func(te *sqlast.TableExpr) error
	rec = func(te *sqlast.TableExpr) error {
		switch t := (*te).(type) {
		case *sqlast.TableName:
			if strings.ToLower(t.Name) == table && !shadowedByCTE(sel, t.Name) {
				tr, err := rw.splitWhere(sel, te, t)
				if err != nil {
					return err
				}
				tr.dims = nil // dim pushdown analysis is comma-join only
				*out = append(*out, tr)
			}
			return nil
		case *sqlast.SubqueryTable:
			return nil
		case *sqlast.JoinExpr:
			if err := rec(&t.Left); err != nil {
				return err
			}
			return rec(&t.Right)
		}
		return nil
	}
	_ = slot
	return rec(slot)
}

// splitWhere classifies sel's WHERE conjuncts relative to the target
// table reference te and discovers dimension joins.
func (rw *Rewriter) splitWhere(sel *sqlast.SelectStmt, slot *sqlast.TableExpr, te *sqlast.TableName) (*targetRef, error) {
	binding := strings.ToLower(te.Binding())
	rCols, err := rw.columnsOf(te.Name)
	if err != nil {
		return nil, err
	}

	// Build binding → column-name sets for every FROM element, so
	// unqualified references classify correctly.
	type src struct {
		binding string
		cols    map[string]bool
		name    string // base table name if plain
	}
	var srcs []src
	var collect func(t sqlast.TableExpr) error
	collect = func(t sqlast.TableExpr) error {
		switch t := t.(type) {
		case *sqlast.TableName:
			cols, err := rw.columnsOf(t.Name)
			if err != nil {
				// CTE reference: resolve through its definition.
				for _, cte := range sel.With {
					if strings.EqualFold(cte.Name, t.Name) {
						names, ok := plan.OutputNames(cte.Query, rw.DB)
						if !ok {
							return fmt.Errorf("core: cannot resolve CTE %s columns", cte.Name)
						}
						set := map[string]bool{}
						for _, n := range names {
							set[n] = true
						}
						srcs = append(srcs, src{binding: strings.ToLower(t.Binding()), cols: set})
						return nil
					}
				}
				return err
			}
			set := map[string]bool{}
			for _, c := range cols {
				set[c] = true
			}
			srcs = append(srcs, src{binding: strings.ToLower(t.Binding()), cols: set, name: strings.ToLower(t.Name)})
			return nil
		case *sqlast.SubqueryTable:
			names, ok := plan.OutputNames(t.Query, rw.DB)
			if !ok {
				return fmt.Errorf("core: cannot resolve derived table %s columns", t.Alias)
			}
			set := map[string]bool{}
			for _, n := range names {
				set[n] = true
			}
			srcs = append(srcs, src{binding: strings.ToLower(t.Alias), cols: set})
			return nil
		case *sqlast.JoinExpr:
			if err := collect(t.Left); err != nil {
				return err
			}
			return collect(t.Right)
		}
		return nil
	}
	for _, f := range sel.From {
		if err := collect(f); err != nil {
			return nil, err
		}
	}

	// bindingsIn resolves the set of bindings a conjunct touches.
	bindingsIn := func(e sqlast.Expr) (map[string]bool, error) {
		out := map[string]bool{}
		var resolveErr error
		sqlast.VisitExprs(e, func(x sqlast.Expr) {
			cr, ok := x.(*sqlast.ColRef)
			if !ok || resolveErr != nil {
				return
			}
			if cr.Table != "" {
				out[strings.ToLower(cr.Table)] = true
				return
			}
			found := ""
			for _, s := range srcs {
				if s.cols[strings.ToLower(cr.Name)] {
					if found != "" && found != s.binding {
						resolveErr = fmt.Errorf("core: ambiguous column %q", cr.Name)
						return
					}
					found = s.binding
				}
			}
			if found == "" {
				resolveErr = fmt.Errorf("core: unknown column %q", cr.Name)
				return
			}
			out[found] = true
		})
		return out, resolveErr
	}

	t := &targetRef{sel: sel, slot: slot, binding: binding}
	_ = rCols
	conjs := sqlast.Conjuncts(sel.Where)
	perBinding := map[string][]sqlast.Expr{}
	type joinEdge struct {
		conj       sqlast.Expr
		rCol       string
		dimBinding string
		dimCol     string
	}
	var edges []joinEdge
	for _, c := range conjs {
		bs, err := bindingsIn(c)
		if err != nil {
			return nil, err
		}
		switch {
		case len(bs) == 1 && bs[binding]:
			t.s = append(t.s, c)
			continue
		case len(bs) == 1:
			for b := range bs {
				perBinding[b] = append(perBinding[b], c)
			}
		case len(bs) == 2 && bs[binding]:
			// Candidate join edge R.k = D.k2.
			if bin, ok := c.(*sqlast.Bin); ok && bin.Op == sqlast.OpEq {
				lc, lok := bin.L.(*sqlast.ColRef)
				rc, rok := bin.R.(*sqlast.ColRef)
				if lok && rok {
					lb, _ := bindingsIn(lc)
					if lb[binding] {
						var db string
						for b := range bs {
							if b != binding {
								db = b
							}
						}
						edges = append(edges, joinEdge{conj: c, rCol: strings.ToLower(lc.Name), dimBinding: db, dimCol: strings.ToLower(rc.Name)})
					} else {
						var db string
						for b := range bs {
							if b != binding {
								db = b
							}
						}
						edges = append(edges, joinEdge{conj: c, rCol: strings.ToLower(rc.Name), dimBinding: db, dimCol: strings.ToLower(lc.Name)})
					}
				}
			}
		}
		t.rest = append(t.rest, c)
	}
	// Materialize dim joins for bindings that are plain base tables.
	for _, e := range edges {
		for _, s := range srcs {
			if s.binding == e.dimBinding && s.name != "" {
				t.dims = append(t.dims, dimJoin{
					rCol: e.rCol, dim: s.name, binding: e.dimBinding,
					dimCol: e.dimCol, local: perBinding[e.dimBinding],
				})
			}
		}
	}
	return t, nil
}

// columnsOf resolves a base table's or view's column names.
func (rw *Rewriter) columnsOf(name string) ([]string, error) {
	if t, ok := rw.DB.Table(name); ok {
		cols := make([]string, t.Schema.Len())
		for i, c := range t.Schema.Columns {
			cols[i] = c.Name
		}
		return cols, nil
	}
	if v, ok := rw.DB.View(name); ok {
		names, ok := plan.OutputNames(v, rw.DB)
		if !ok {
			return nil, fmt.Errorf("core: cannot resolve view %s columns", name)
		}
		return names, nil
	}
	return nil, fmt.Errorf("core: %w: %q", enginerr.ErrNoTable, name)
}

// skeyInterval extracts the closed interval (in microseconds) implied by
// the s-conjuncts on the sequence key. Returns an unbounded interval when
// s does not constrain skey.
func skeyInterval(s []sqlast.Expr, binding, skey string) interval {
	iv := interval{}
	for _, c := range s {
		bin, ok := c.(*sqlast.Bin)
		if !ok || !bin.Op.IsComparison() {
			continue
		}
		cr, lit, op := matchColConstExpr(bin)
		if cr == nil || lit == nil {
			continue
		}
		if !strings.EqualFold(cr.Name, skey) {
			continue
		}
		if cr.Table != "" && !strings.EqualFold(cr.Table, binding) {
			continue
		}
		v, ok := usecOf(lit)
		if !ok {
			continue
		}
		switch op {
		case sqlast.OpLt:
			iv.tightenHi(v - 1)
		case sqlast.OpLe:
			iv.tightenHi(v)
		case sqlast.OpGt:
			iv.tightenLo(v + 1)
		case sqlast.OpGe:
			iv.tightenLo(v)
		case sqlast.OpEq:
			iv.tightenLo(v)
			iv.tightenHi(v)
		}
	}
	return iv
}

// modifiedColumns returns the set of columns any rule in the list assigns.
func modifiedColumns(rules []*RegisteredRule) map[string]bool {
	out := map[string]bool{}
	for _, r := range rules {
		if r.Rule.Action == sqlts.ActionModify {
			for _, a := range r.Rule.Assignments {
				out[strings.ToLower(a.Column)] = true
			}
		}
	}
	return out
}

// referencesColumns reports whether expr references any of the given
// column names (by name, any qualifier).
func referencesColumns(e sqlast.Expr, cols map[string]bool) bool {
	found := false
	sqlast.VisitExprs(e, func(x sqlast.Expr) {
		if cr, ok := x.(*sqlast.ColRef); ok && cols[strings.ToLower(cr.Name)] {
			found = true
		}
	})
	return found
}
