package core

import (
	"strings"

	"repro/internal/sqlast"
	"repro/internal/sqlts"
)

// Commutes reports whether two cleansing rules provably commute — whether
// Φ_C2(Φ_C1(d)) = Φ_C1(Φ_C2(d)) for every input d — so the engine may
// evaluate them in either order. The paper poses this as an open question
// (§5.4, "in general this is a hard problem") and argues order barely
// matters for *performance*; this implements the semantic side
// conservatively: a false answer means "not provably commutative", not
// "provably non-commutative".
//
// The sufficient condition implemented: both rules are MODIFY rules, and
// neither rule writes a column the other rule reads (in its condition or
// assignment values) or writes. MODIFY rules never change row membership
// or sequence positions, so when their read/write column sets do not
// interfere, each rule's pattern matching sees identical rows in either
// order — a Bernstein-style independence condition.
//
// DELETE/KEEP rules are never reported commutative with anything except a
// provably independent partner, because removing a row can change the
// sequence adjacency and window contents the other rule's pattern
// inspects (the paper's own [X Y X] example: cycle∘duplicate ≠
// duplicate∘cycle).
func Commutes(a, b *sqlts.Rule) bool {
	if a.Action != sqlts.ActionModify || b.Action != sqlts.ActionModify {
		return false
	}
	if a.ClusterBy != b.ClusterBy || a.SequenceBy != b.SequenceBy {
		return false
	}
	aw, ar := ruleWrites(a), ruleReads(a)
	bw, br := ruleWrites(b), ruleReads(b)
	// No write/read, read/write, or write/write interference.
	if intersects(aw, br) || intersects(bw, ar) || intersects(aw, bw) {
		return false
	}
	return true
}

// ruleWrites is the set of columns a rule assigns (lower case).
func ruleWrites(r *sqlts.Rule) map[string]bool {
	out := map[string]bool{}
	for _, asg := range r.Assignments {
		out[strings.ToLower(asg.Column)] = true
	}
	return out
}

// ruleReads is the set of columns referenced by a rule's condition and
// assignment values, plus the cluster/sequence keys (pattern matching
// always reads them).
func ruleReads(r *sqlts.Rule) map[string]bool {
	out := map[string]bool{
		strings.ToLower(r.ClusterBy):  true,
		strings.ToLower(r.SequenceBy): true,
	}
	add := func(e sqlast.Expr) {
		sqlast.VisitExprs(e, func(x sqlast.Expr) {
			if cr, ok := x.(*sqlast.ColRef); ok {
				out[strings.ToLower(cr.Name)] = true
			}
		})
	}
	add(r.Cond)
	for _, asg := range r.Assignments {
		add(asg.Value)
	}
	return out
}

func intersects(a, b map[string]bool) bool {
	for k := range a {
		if b[k] {
			return true
		}
	}
	return false
}

// CommutingGroups partitions a rule list (kept in creation order) into
// maximal runs whose members pairwise commute. Within such a run the
// evaluation order is provably irrelevant — useful both as optimizer
// freedom and as documentation for rule authors.
func CommutingGroups(rules []*RegisteredRule) [][]*RegisteredRule {
	var groups [][]*RegisteredRule
	for _, r := range rules {
		placed := false
		if len(groups) > 0 {
			last := groups[len(groups)-1]
			all := true
			for _, member := range last {
				if !Commutes(member.Rule, r.Rule) {
					all = false
					break
				}
			}
			if all {
				groups[len(groups)-1] = append(last, r)
				placed = true
			}
		}
		if !placed {
			groups = append(groups, []*RegisteredRule{r})
		}
	}
	return groups
}
