package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/sqlts"
)

func parseRule(t *testing.T, src string) *sqlts.Rule {
	t.Helper()
	r, err := sqlts.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCommutesIndependentModifies(t *testing.T) {
	// Two MODIFY rules writing disjoint columns that neither reads.
	a := parseRule(t, `DEFINE flag_a ON caser AS (A, B)
		WHERE A.biz_loc = B.biz_loc ACTION MODIFY B.qa = 1`)
	b := parseRule(t, `DEFINE flag_b ON caser AS (A, B)
		WHERE A.reader = B.reader ACTION MODIFY B.qb = 1`)
	if !Commutes(a, b) || !Commutes(b, a) {
		t.Error("independent MODIFY rules should commute")
	}
}

func TestCommutesRejectsInterference(t *testing.T) {
	base := `DEFINE w ON caser AS (A, B) WHERE A.biz_loc = B.biz_loc ACTION MODIFY B.flag = 1`
	w := parseRule(t, base)
	// Reads what w writes.
	readsFlag := parseRule(t, `DEFINE r ON caser AS (A, B)
		WHERE A.flag = 1 ACTION MODIFY B.other = 1`)
	if Commutes(w, readsFlag) {
		t.Error("write/read interference must not commute")
	}
	// Writes what w writes.
	alsoWrites := parseRule(t, `DEFINE ww ON caser AS (A, B)
		WHERE A.reader = B.reader ACTION MODIFY B.flag = 2`)
	if Commutes(w, alsoWrites) {
		t.Error("write/write interference must not commute")
	}
	// DELETE rules are never provably commutative.
	del := parseRule(t, `DEFINE d ON caser AS (A, B)
		WHERE A.rtime < B.rtime ACTION DELETE B`)
	if Commutes(w, del) || Commutes(del, del) {
		t.Error("DELETE must not be reported commutative")
	}
}

// The paper's §4.4 example is the canonical non-commuting pair — and our
// conservative check indeed refuses it.
func TestCycleDuplicateDoNotCommute(t *testing.T) {
	cyc := parseRule(t, tCycle)
	dup := parseRule(t, tDup)
	if Commutes(cyc, dup) {
		t.Error("cycle/duplicate must not be reported commutative")
	}
}

// Soundness property: whenever Commutes says yes, applying the two rules
// in either order over random data produces identical results.
func TestCommutesSoundnessProperty(t *testing.T) {
	ruleA := `DEFINE flag_a ON caser AS (A, B)
		WHERE A.biz_loc = B.biz_loc AND B.rtime - A.rtime < 30 mins ACTION MODIFY B.qa = 1`
	ruleB := `DEFINE flag_b ON caser AS (A, *B)
		WHERE B.reader = 'readerX' AND B.rtime - A.rtime < 30 mins ACTION MODIFY A.qb = 1`
	pa, pb := parseRule(t, ruleA), parseRule(t, ruleB)
	if !Commutes(pa, pb) {
		t.Fatal("setup: rules should commute")
	}
	locs := []string{"locA", "locB"}
	readers := []string{"readerX", "readerY"}
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var rows [][5]string
		minute := int64(0)
		for i := 0; i < 20; i++ {
			minute += int64(1 + rng.Intn(40))
			rows = append(rows, [5]string{
				fmt.Sprintf("e%d", rng.Intn(3)), fmt.Sprintf("%d", minute),
				locs[rng.Intn(2)], readers[rng.Intn(2)], "s",
			})
		}
		q := "select epc, rtime, qa, qb from caser where rtime >= " + minuteTS(0)

		db1 := mkReads(t, rows)
		reg1 := NewRegistry(db1)
		defineAll(t, reg1, ruleA, ruleB)
		ab := rewriteRun(t, db1, reg1, q, nil, StrategyNaive)

		db2 := mkReads(t, rows)
		reg2 := NewRegistry(db2)
		defineAll(t, reg2, ruleB, ruleA)
		ba := rewriteRun(t, db2, reg2, q, nil, StrategyNaive)

		if strings.Join(ab, "\n") != strings.Join(ba, "\n") {
			t.Fatalf("seed %d: commuting rules gave different results\nAB: %v\nBA: %v", seed, ab, ba)
		}
	}
}

func TestCommutingGroups(t *testing.T) {
	db := mkReads(t, [][5]string{{"e1", "0", "locA", "r", "s"}})
	reg := NewRegistry(db)
	defineAll(t, reg,
		`DEFINE m1 ON caser AS (A, B) WHERE A.biz_loc = B.biz_loc ACTION MODIFY B.q1 = 1`,
		`DEFINE m2 ON caser AS (A, B) WHERE A.reader = B.reader ACTION MODIFY B.q2 = 1`,
		tDup, // DELETE: breaks the run
		`DEFINE m3 ON caser AS (A, B) WHERE A.reader = B.reader ACTION MODIFY B.q3 = 1`,
	)
	groups := CommutingGroups(reg.All())
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3 ({m1,m2},{dup},{m3})", len(groups))
	}
	if len(groups[0]) != 2 || len(groups[1]) != 1 || len(groups[2]) != 1 {
		t.Fatalf("group sizes = %d/%d/%d", len(groups[0]), len(groups[1]), len(groups[2]))
	}
}
