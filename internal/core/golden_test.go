package core

import (
	"strings"
	"testing"

	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/types"
)

// The exact SQL text the rewrites emit for the canonical reader-rule/q1
// shape. This is a regression net: any change here is a semantic change
// to the rewrite engine and must be reviewed, not absorbed.
func TestGoldenRewriteSQL(t *testing.T) {
	db := mkReads(t, [][5]string{{"e1", "0", "locA", "r", "s"}})
	reg := NewRegistry(db)
	defineAll(t, reg, tReader)
	rw := NewRewriter(db, reg)
	q := "select * from caser where rtime <= " + minuteTS(60)

	exp, err := rw.RewriteSQL(q, nil, StrategyExpanded)
	if err != nil {
		t.Fatal(err)
	}
	wantExpanded := "SELECT * FROM (" +
		"SELECT epc, rtime, biz_loc, reader, biz_step FROM (" +
		"SELECT *, MAX(CASE WHEN reader = 'readerX' THEN 1 ELSE 0 END) OVER (" +
		"PARTITION BY epc ORDER BY rtime RANGE BETWEEN INTERVAL '1' MICROSECOND FOLLOWING AND INTERVAL '599999999' MICROSECOND FOLLOWING" +
		") AS __reader_flag_0 FROM (" +
		"SELECT * FROM caser WHERE rtime <= TIMESTAMP '1970-01-01 01:09:59.999999'" +
		") __in_0) __w_reader WHERE CASE WHEN __reader_flag_0 = 1 THEN 0 ELSE 1 END = 1" +
		") caser WHERE rtime <= TIMESTAMP '1970-01-01 01:00:00.000000'"
	if exp.SQL != wantExpanded {
		t.Errorf("expanded rewrite drifted:\n got: %s\nwant: %s", exp.SQL, wantExpanded)
	}

	jb, err := rw.RewriteSQL(q, nil, StrategyJoinBack)
	if err != nil {
		t.Fatal(err)
	}
	wantJoinBack := "SELECT * FROM (" +
		"SELECT epc, rtime, biz_loc, reader, biz_step FROM (" +
		"SELECT *, MAX(CASE WHEN reader = 'readerX' THEN 1 ELSE 0 END) OVER (" +
		"PARTITION BY epc ORDER BY rtime RANGE BETWEEN INTERVAL '1' MICROSECOND FOLLOWING AND INTERVAL '599999999' MICROSECOND FOLLOWING" +
		") AS __reader_flag_0 FROM (" +
		"SELECT * FROM caser WHERE rtime <= TIMESTAMP '1970-01-01 01:09:59.999999' AND " +
		"epc IN (SELECT DISTINCT epc FROM caser WHERE rtime <= TIMESTAMP '1970-01-01 01:00:00.000000')" +
		") __in_0) __w_reader WHERE CASE WHEN __reader_flag_0 = 1 THEN 0 ELSE 1 END = 1" +
		") caser WHERE rtime <= TIMESTAMP '1970-01-01 01:00:00.000000'"
	if jb.SQL != wantJoinBack {
		t.Errorf("join-back rewrite drifted:\n got: %s\nwant: %s", jb.SQL, wantJoinBack)
	}
}

// A join on the cluster key (q2's epc_info join) is derivable onto context
// references, so the expanded candidate set must include pushed variants.
func TestExpandedCkeyDimPush(t *testing.T) {
	db := mkReads(t, [][5]string{
		{"e1", "10", "locA", "readerY", "s"},
		{"e2", "20", "locB", "readerY", "s"},
	})
	info := storage.NewTable("epc_info", schema.New(
		schema.Col("epc_info", "epc", types.KindString),
		schema.Col("epc_info", "product", types.KindInt),
	))
	info.Append(
		schema.Row{types.NewString("e1"), types.NewInt(1)},
		schema.Row{types.NewString("e2"), types.NewInt(2)},
	)
	info.Analyze()
	if err := db.AddTable(info); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(db)
	defineAll(t, reg, tReader)
	rw := NewRewriter(db, reg)
	q := `select c.epc from caser c, epc_info i
	      where c.epc = i.epc and i.product = 1 and c.rtime <= ` + minuteTS(60)

	res, err := rw.RewriteSQL(q, nil, StrategyExpanded)
	if err != nil {
		t.Fatal(err)
	}
	sawPush := false
	for _, cand := range res.Candidates {
		if cand.Strategy == StrategyExpanded && cand.Pushes > 0 {
			sawPush = true
		}
	}
	if !sawPush {
		t.Fatalf("no pushed expanded candidate; candidates = %+v", res.Candidates)
	}
	// The pushed variant embeds the dim semi-join inside the cleansing
	// input (visible in at least one candidate's SQL when forced).
	pushed, err := rw.buildCandidate(mustParseStmt(t, q), reg.All(), StrategyExpanded, 1)
	if err != nil {
		t.Fatal(err)
	}
	text := sqlastSQL(pushed)
	if !strings.Contains(text, "epc IN (SELECT epc FROM epc_info WHERE product = 1)") {
		t.Errorf("pushed expanded SQL lacks the ckey dim semi-join:\n%s", text)
	}
	// And it still answers correctly.
	want := rewriteRun(t, db, reg, q, nil, StrategyNaive)
	got := rewriteRun(t, db, reg, q, nil, StrategyExpanded)
	if strings.Join(want, ";") != strings.Join(got, ";") {
		t.Errorf("pushed expanded disagrees: %v vs %v", got, want)
	}
}

func mustParseStmt(t *testing.T, q string) sqlast.Stmt {
	t.Helper()
	s, err := sqlparser.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func sqlastSQL(s sqlast.Stmt) string { return sqlast.SQL(s) }
