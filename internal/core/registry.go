// Package core implements the paper's primary contribution: the deferred
// cleansing engine. It keeps the rules catalog (compiled SQL/OLAP
// templates, ordered by creation time — §4.4), performs the
// correlation-condition and transitivity analysis over cleansing rules and
// user queries (§5.2), and generates the expanded and join-back rewrites
// (§5.2–5.4), choosing among candidates by planner cost estimate exactly
// as the paper compiles candidates on the DBMS and keeps the cheapest.
package core

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/plan"
	"repro/internal/rulegen"
	"repro/internal/sqlts"
)

// RegisteredRule is one entry of the rules table: the parsed rule, its
// compiled SQL/OLAP template, the rendered template text that a DBMS-side
// rules table would persist, and a creation sequence number that fixes
// evaluation order.
type RegisteredRule struct {
	Rule     *sqlts.Rule
	Template *rulegen.Template
	// TemplateSQL is the persisted SQL/OLAP text over the $input
	// placeholder.
	TemplateSQL string
	// Seq is the creation order; rules apply in ascending Seq.
	Seq int
}

// Registry is the rules catalog. Rules are grouped by the table they are
// defined ON and kept in creation order.
type Registry struct {
	db      *catalog.Database
	rules   []*RegisteredRule
	byName  map[string]*RegisteredRule
	nextSeq int
}

// NewRegistry creates an empty rules catalog bound to a database (needed
// to resolve rule input schemas when rendering templates).
func NewRegistry(db *catalog.Database) *Registry {
	return &Registry{db: db, byName: map[string]*RegisteredRule{}}
}

// Define parses, validates, compiles, and registers a rule given in
// extended SQL-TS. It corresponds to steps 1–2 of the paper's architecture
// diagram: the rule engine generates the SQL/OLAP template and persists it
// in the rules table.
func (r *Registry) Define(src string) (*RegisteredRule, error) {
	rule, err := sqlts.Parse(src)
	if err != nil {
		return nil, err
	}
	return r.DefineRule(rule)
}

// DefineRule registers an already-parsed rule.
func (r *Registry) DefineRule(rule *sqlts.Rule) (*RegisteredRule, error) {
	if _, dup := r.byName[rule.Name]; dup {
		return nil, fmt.Errorf("core: rule %q already defined", rule.Name)
	}
	if _, ok := r.db.Table(rule.On); !ok {
		return nil, fmt.Errorf("core: rule %s: table %q does not exist", rule.Name, rule.On)
	}
	inCols, err := r.InputColumns(rule)
	if err != nil {
		return nil, err
	}
	tmpl, err := rulegen.Compile(rule)
	if err != nil {
		return nil, err
	}
	text, err := tmpl.SQL(inCols)
	if err != nil {
		return nil, err
	}
	reg := &RegisteredRule{Rule: rule, Template: tmpl, TemplateSQL: text, Seq: r.nextSeq}
	r.nextSeq++
	r.rules = append(r.rules, reg)
	r.byName[rule.Name] = reg
	// Registering a rule changes what any query over its table rewrites
	// to, so cached rewrites must not survive it.
	r.db.BumpEpoch()
	return reg, nil
}

// InputColumns resolves the column list of a rule's FROM input (the base
// table, or a registered view such as the pallet-read union of Example 5).
func (r *Registry) InputColumns(rule *sqlts.Rule) ([]string, error) {
	if t, ok := r.db.Table(rule.From); ok {
		cols := make([]string, t.Schema.Len())
		for i, c := range t.Schema.Columns {
			cols[i] = c.Name
		}
		return cols, nil
	}
	if v, ok := r.db.View(rule.From); ok {
		names, ok := plan.OutputNames(v, r.db)
		if !ok {
			return nil, fmt.Errorf("core: rule %s: cannot determine columns of input %q", rule.Name, rule.From)
		}
		return names, nil
	}
	return nil, fmt.Errorf("core: rule %s: input %q is neither a table nor a view", rule.Name, rule.From)
}

// Rule looks a rule up by name.
func (r *Registry) Rule(name string) (*RegisteredRule, bool) {
	reg, ok := r.byName[strings.ToLower(name)]
	return reg, ok
}

// RulesFor returns all rules defined ON the given table, in creation
// order. An optional name filter restricts and re-checks membership.
func (r *Registry) RulesFor(table string, names ...string) ([]*RegisteredRule, error) {
	table = strings.ToLower(table)
	var out []*RegisteredRule
	if len(names) == 0 {
		for _, reg := range r.rules {
			if reg.Rule.On == table {
				out = append(out, reg)
			}
		}
		return out, nil
	}
	want := map[string]bool{}
	for _, n := range names {
		want[strings.ToLower(n)] = true
	}
	for _, reg := range r.rules {
		if reg.Rule.On == table && want[reg.Rule.Name] {
			out = append(out, reg)
			delete(want, reg.Rule.Name)
		}
	}
	if len(want) > 0 {
		for n := range want {
			return nil, fmt.Errorf("core: no rule %q on table %q", n, table)
		}
	}
	return out, nil
}

// All returns every registered rule in creation order.
func (r *Registry) All() []*RegisteredRule {
	return append([]*RegisteredRule{}, r.rules...)
}
