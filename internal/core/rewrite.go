package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/enginerr"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sqlast"
	"repro/internal/sqlparser"
)

// Strategy selects a rewrite family.
type Strategy uint8

// Strategies. StrategyAuto generates expanded and join-back candidates and
// submits the one with the lowest planner cost estimate, mirroring the
// paper's compile-all-candidates-and-pick-cheapest loop. StrategyDirty
// runs the query without cleansing (the q baseline in §6, generally
// incorrect).
const (
	StrategyAuto Strategy = iota
	StrategyNaive
	StrategyExpanded
	StrategyJoinBack
	StrategyDirty
)

func (s Strategy) String() string {
	switch s {
	case StrategyAuto:
		return "auto"
	case StrategyNaive:
		return "naive"
	case StrategyExpanded:
		return "expanded"
	case StrategyJoinBack:
		return "join-back"
	case StrategyDirty:
		return "dirty"
	}
	return "?"
}

// Rewriter is the query-rewrite engine (steps 3–5 of the paper's
// architecture): it intercepts user SQL, applies the relevant cleansing
// rules from the registry, and produces a rewritten statement.
type Rewriter struct {
	DB       *catalog.Database
	Registry *Registry
	Planner  *plan.Planner
}

// NewRewriter builds a rewriter over a database and its rules catalog.
func NewRewriter(db *catalog.Database, reg *Registry) *Rewriter {
	return &Rewriter{DB: db, Registry: reg, Planner: plan.New(db)}
}

// Result is a finished rewrite.
type Result struct {
	Stmt     sqlast.Stmt
	SQL      string
	Strategy Strategy
	// EstCost is the planner estimate of the chosen statement.
	EstCost float64
	// Plan is the physical plan of the chosen statement, ready to run.
	Plan exec.Node
	// Candidates records every evaluated alternative for diagnostics.
	Candidates []CandidateInfo
	// Phases records how long each compilation stage took when this
	// result was produced; the serving layer turns them into trace spans
	// and latency metrics. A cached Result keeps its original phase
	// timings.
	Phases Phases
}

// OpenStream opens the rewritten plan as a pull-based batch iterator
// under ctx: execution starts lazily at the first Next, and the first
// batches leave the engine while upstream morsels are still being
// claimed. Results, errors, and resource accounting are identical to
// materializing the plan with exec.Run; a Result may be executed many
// times, but one exec.Ctx serves one execution.
func (r *Result) OpenStream(ctx *exec.Ctx) exec.Stream {
	return exec.Open(ctx, r.Plan)
}

// Phases is the compilation-time breakdown of one rewrite: parsing the
// SQL, generating and costing rewrite candidates, and physical planning
// (the Planner.Plan calls, which candidate costing interleaves with
// rewriting).
type Phases struct {
	Parse   time.Duration
	Rewrite time.Duration
	Plan    time.Duration
}

// CandidateInfo describes one evaluated rewrite candidate.
type CandidateInfo struct {
	Strategy Strategy
	// Pushes is the number of dimension predicates pushed before
	// cleansing (the m+1 / n+1 enumeration of §5.2–5.3).
	Pushes  int
	EstCost float64
	Chosen  bool
}

// RewriteSQL parses a query, rewrites it under the named rules (all rules
// ON the relevant table when names is empty), and returns the chosen
// statement.
func (rw *Rewriter) RewriteSQL(query string, ruleNames []string, strat Strategy) (*Result, error) {
	parseStart := time.Now()
	stmt, err := sqlparser.Parse(query)
	if err != nil {
		return nil, err
	}
	parse := time.Since(parseStart)
	rules, err := rw.resolveRules(stmt, ruleNames)
	if err != nil {
		return nil, err
	}
	res, err := rw.Rewrite(stmt, rules, strat)
	if err != nil {
		return nil, err
	}
	res.Phases.Parse = parse
	return res, nil
}

// resolveRules picks the rule list: explicitly named, or every registered
// rule whose ON table the query references.
func (rw *Rewriter) resolveRules(stmt sqlast.Stmt, ruleNames []string) ([]*RegisteredRule, error) {
	if len(ruleNames) > 0 {
		var table string
		for _, n := range ruleNames {
			reg, ok := rw.Registry.Rule(n)
			if !ok {
				return nil, fmt.Errorf("core: %w: %q", enginerr.ErrUnknownRule, n)
			}
			table = reg.Rule.On
		}
		return rw.Registry.RulesFor(table, ruleNames...)
	}
	tables := map[string]bool{}
	sqlast.VisitTables(stmt, func(te sqlast.TableExpr) {
		if tn, ok := te.(*sqlast.TableName); ok {
			tables[strings.ToLower(tn.Name)] = true
		}
	})
	var out []*RegisteredRule
	for _, reg := range rw.Registry.All() {
		if tables[reg.Rule.On] {
			out = append(out, reg)
		}
	}
	return out, nil
}

// Rewrite generates the rewritten statement for stmt under the ordered
// rule list.
func (rw *Rewriter) Rewrite(stmt sqlast.Stmt, rules []*RegisteredRule, strat Strategy) (*Result, error) {
	rewriteStart := time.Now()
	var planTime time.Duration
	if strat == StrategyDirty || len(rules) == 0 {
		planStart := time.Now()
		node, err := rw.Planner.Plan(stmt)
		if err != nil {
			return nil, err
		}
		planTime = time.Since(planStart)
		return &Result{
			Stmt: stmt, SQL: sqlast.SQL(stmt), Strategy: StrategyDirty,
			EstCost: node.EstCost(), Plan: node,
			Phases: Phases{Rewrite: time.Since(rewriteStart) - planTime, Plan: planTime},
		}, nil
	}
	if err := validateRuleSet(rules); err != nil {
		return nil, err
	}
	if err := rw.checkKeysUnmodified(rules); err != nil {
		return nil, err
	}

	type candidate struct {
		strat  Strategy
		pushes int
	}
	var cands []candidate
	switch strat {
	case StrategyNaive:
		cands = []candidate{{StrategyNaive, 0}}
	case StrategyExpanded:
		for m := 0; m <= maxDims; m++ {
			cands = append(cands, candidate{StrategyExpanded, m})
		}
	case StrategyJoinBack:
		for m := 0; m <= maxDims; m++ {
			cands = append(cands, candidate{StrategyJoinBack, m})
		}
	default: // Auto
		for m := 0; m <= maxDims; m++ {
			cands = append(cands, candidate{StrategyExpanded, m})
			cands = append(cands, candidate{StrategyJoinBack, m})
		}
		cands = append(cands, candidate{StrategyNaive, 0})
	}

	res := &Result{}
	var best *Result
	seen := map[string]bool{}
	for _, c := range cands {
		out, err := rw.buildCandidate(stmt, rules, c.strat, c.pushes)
		if err != nil {
			if err == errInfeasible || err == errNoMorePushes {
				continue
			}
			return nil, err
		}
		text := sqlast.SQL(out)
		if seen[text] {
			continue
		}
		seen[text] = true
		planStart := time.Now()
		node, err := rw.Planner.Plan(out)
		if err != nil {
			return nil, fmt.Errorf("core: planning %s candidate: %w", c.strat, err)
		}
		planTime += time.Since(planStart)
		info := CandidateInfo{Strategy: c.strat, Pushes: c.pushes, EstCost: node.EstCost()}
		res.Candidates = append(res.Candidates, info)
		if best == nil || node.EstCost() < best.EstCost ||
			// Prefer non-naive at equal cost: tighter data touched.
			(node.EstCost() == best.EstCost && best.Strategy == StrategyNaive && c.strat != StrategyNaive) {
			best = &Result{Stmt: out, SQL: text, Strategy: c.strat, EstCost: node.EstCost(), Plan: node}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("core: no feasible %s rewrite for this query", strat)
	}
	best.Candidates = res.Candidates
	for i := range best.Candidates {
		ci := &best.Candidates[i]
		ci.Chosen = ci.Strategy == best.Strategy && ci.EstCost == best.EstCost
	}
	best.Phases = Phases{Rewrite: time.Since(rewriteStart) - planTime, Plan: planTime}
	return best, nil
}

// maxDims bounds the candidate enumeration (m+1 statements in §5.2).
const maxDims = 4

var (
	errInfeasible   = fmt.Errorf("core: expanded rewrite infeasible")
	errNoMorePushes = fmt.Errorf("core: no more dimension pushes available")
)

// checkKeysUnmodified rejects rule sets that MODIFY the cluster or
// sequence key: both rewrites reason about sequences via those keys, so
// modifying them would invalidate the transitivity analysis. (The paper
// implicitly assumes this; we enforce it.)
func (rw *Rewriter) checkKeysUnmodified(rules []*RegisteredRule) error {
	mod := modifiedColumns(rules)
	ckey, skey := rules[0].Rule.ClusterBy, rules[0].Rule.SequenceBy
	if mod[ckey] || mod[skey] {
		return fmt.Errorf("core: rules modify the cluster/sequence key (%s/%s); only naive cleansing would be sound, refusing rewrite", ckey, skey)
	}
	return nil
}

// buildCandidate clones the user statement and rewrites every reference
// to the rules' ON table according to the strategy.
func (rw *Rewriter) buildCandidate(stmt sqlast.Stmt, rules []*RegisteredRule, strat Strategy, pushes int) (sqlast.Stmt, error) {
	out := sqlast.CloneStmt(stmt)
	table := rules[0].Rule.On
	targets, err := rw.analyzeQuery(out, table)
	if err != nil {
		return nil, err
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("core: query does not reference table %q", table)
	}
	for _, t := range targets {
		if err := rw.rewriteTarget(t, rules, strat, pushes); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// rewriteTarget rewrites one reference to R inside its SELECT.
func (rw *Rewriter) rewriteTarget(t *targetRef, rules []*RegisteredRule, strat Strategy, pushes int) error {
	ckey := rules[0].Rule.ClusterBy
	skey := rules[0].Rule.SequenceBy
	mod := modifiedColumns(rules)

	queryIv := skeyInterval(t.s, t.binding, skey)
	analyses := make([]*contextAnalysis, len(rules))
	ecIv := queryIv
	expandedOK := true
	for i, r := range rules {
		analyses[i] = analyzeRule(r, queryIv)
		if !analyses[i].Feasible {
			expandedOK = false
		}
		ecIv = ecIv.union(analyses[i].Interval)
	}

	// Dimension pushdown candidates, most selective first. For the
	// expanded rewrite only cluster-key joins propagate to context
	// references (the context shares the target's ckey; other equalities
	// are not position-preserving). Join-back may semi-join any dim.
	dims := append([]dimJoin{}, t.dims...)
	sort.Slice(dims, func(i, j int) bool {
		return rw.dimSelectivity(dims[i]) < rw.dimSelectivity(dims[j])
	})

	var baseFilter sqlast.Expr
	var seqIn sqlast.Expr
	switch strat {
	case StrategyNaive:
		// No reduction at all.
	case StrategyExpanded:
		if !expandedOK {
			return errInfeasible
		}
		baseFilter = intervalExpr(ecIv, skey)
		var derivable []dimJoin
		for _, d := range dims {
			if d.rCol == ckey {
				derivable = append(derivable, d)
			}
		}
		if pushes > len(derivable) {
			return errNoMorePushes
		}
		for _, d := range derivable[:pushes] {
			baseFilter = sqlast.And(baseFilter, dimInExpr(d))
		}
		if baseFilter == nil && pushes == 0 {
			// Unbounded ec: the expanded rewrite degenerates to naive.
			// Still a valid candidate; leave baseFilter nil.
			baseFilter = nil
		}
	case StrategyJoinBack:
		if pushes > len(dims) {
			return errNoMorePushes
		}
		// Sequence restriction: distinct cluster keys of rows the query
		// cares about, optionally semi-joined with the most selective
		// dims. Conjuncts over columns a rule modifies are dropped from
		// the sequence probe — cleansing could make rows satisfy them.
		var seqConjs []sqlast.Expr
		for _, c := range t.s {
			if !referencesColumns(c, mod) {
				seqConjs = append(seqConjs, stripQualifier(c))
			}
		}
		seqFrom := rw.chainBaseName(rules)
		seqSel := &sqlast.SelectStmt{
			Distinct: true,
			Items:    []sqlast.SelectItem{{Expr: sqlast.Col("", ckey)}},
			From:     []sqlast.TableExpr{&sqlast.TableName{Name: seqFrom}},
			Where:    sqlast.And(seqConjs...),
		}
		for _, d := range dims[:pushes] {
			seqSel.Where = sqlast.And(seqSel.Where, dimInExpr(d))
		}
		seqIn = &sqlast.In{E: sqlast.Col("", ckey), Sub: seqSel}
		// Improved join-back: also restrict rows inside each sequence by
		// the expanded condition when one exists.
		if expandedOK {
			baseFilter = intervalExpr(ecIv, skey)
		}
	}

	chainStmt, _, err := rw.buildChain(rules, baseFilter, seqIn)
	if err != nil {
		return err
	}
	*t.slot = &sqlast.SubqueryTable{Query: chainStmt, Alias: t.binding}

	// Reassemble WHERE: drop s-conjuncts that the pushed filter already
	// enforces exactly (the s' simplification of Fig. 4, line 12) — only
	// sound when the pushed interval equals the query interval and no rule
	// modifies the sequence key (guaranteed by checkKeysUnmodified).
	var kept []sqlast.Expr
	dropSkey := strat == StrategyExpanded && expandedOK && ecIv.equal(queryIv)
	for _, c := range t.s {
		if dropSkey && isSkeyConjunct(c, t.binding, skey) {
			continue
		}
		kept = append(kept, c)
	}
	kept = append(kept, t.rest...)
	t.sel.Where = sqlast.And(kept...)
	return nil
}

func isSkeyConjunct(e sqlast.Expr, binding, skey string) bool {
	bin, ok := e.(*sqlast.Bin)
	if !ok || !bin.Op.IsComparison() {
		return false
	}
	cr, lit, _ := matchColConstExpr(bin)
	if cr == nil || lit == nil {
		return false
	}
	if cr.Table != "" && !strings.EqualFold(cr.Table, binding) {
		return false
	}
	return strings.EqualFold(cr.Name, skey)
}

// dimInExpr renders "rCol IN (SELECT dimCol FROM dim WHERE local)".
func dimInExpr(d dimJoin) sqlast.Expr {
	sel := &sqlast.SelectStmt{
		Items: []sqlast.SelectItem{{Expr: sqlast.Col("", d.dimCol)}},
		From:  []sqlast.TableExpr{&sqlast.TableName{Name: d.dim}},
	}
	var local []sqlast.Expr
	for _, c := range d.local {
		local = append(local, stripQualifier(c))
	}
	sel.Where = sqlast.And(local...)
	return &sqlast.In{E: sqlast.Col("", d.rCol), Sub: sel}
}

// dimSelectivity estimates a dimension's local-predicate selectivity via
// the planner (estimated rows out / table size), the §5.2 ordering
// heuristic.
func (rw *Rewriter) dimSelectivity(d dimJoin) float64 {
	t, ok := rw.DB.Table(d.dim)
	if !ok || t.RowCount() == 0 {
		return 1
	}
	node, err := rw.Planner.Plan(&sqlast.SelectStmt{
		Items: []sqlast.SelectItem{{Expr: sqlast.Col("", d.dimCol)}},
		From:  []sqlast.TableExpr{&sqlast.TableName{Name: d.dim}},
		Where: sqlast.And(stripQualifiers(d.local)...),
	})
	if err != nil {
		return 1
	}
	return node.EstRows() / float64(t.RowCount())
}

func stripQualifiers(es []sqlast.Expr) []sqlast.Expr {
	out := make([]sqlast.Expr, len(es))
	for i, e := range es {
		out[i] = stripQualifier(e)
	}
	return out
}

// chainBaseName is the relation the join-back sequence probe scans: the
// rules' shared input view when one exists (its output covers the rows
// that can reach the query), otherwise the ON table itself.
func (rw *Rewriter) chainBaseName(rules []*RegisteredRule) string {
	for _, r := range rules {
		if r.Rule.From != r.Rule.On {
			return r.Rule.From
		}
	}
	return rules[0].Rule.On
}

// buildChain composes the Φ_Cn(...Φ_C1(input)) cleansing pipeline as
// nested derived tables. baseFilter (the expanded condition) and seqIn
// (the join-back sequence restriction) are applied to the first stage's
// input and to the fresh branches of any later view inputs (Example 5's
// pallet union), never to already-cleansed rows' key columns — rules that
// modify the keys are rejected before this point.
func (rw *Rewriter) buildChain(rules []*RegisteredRule, baseFilter, seqIn sqlast.Expr) (sqlast.Stmt, []string, error) {
	onTable := rules[0].Rule.On
	filter := sqlast.And(cloneOrNil(baseFilter), cloneOrNil(seqIn))

	wrap := func(te sqlast.TableExpr, idx int) sqlast.TableExpr {
		if filter == nil {
			return te
		}
		return &sqlast.SubqueryTable{
			Query: &sqlast.SelectStmt{
				Items: []sqlast.SelectItem{{Star: true}},
				From:  []sqlast.TableExpr{te},
				Where: sqlast.CloneExpr(filter),
			},
			Alias: fmt.Sprintf("__in_%d", idx),
		}
	}

	var cur sqlast.TableExpr
	var cols []string
	curInput := onTable // name of the relation cur rows flow from
	for i, r := range rules {
		var input sqlast.TableExpr
		if r.Rule.From == onTable || (cur != nil && r.Rule.From == curInput) {
			// Pipelining: consecutive stages over the same input feed each
			// other directly (the paper's r1 → r2 pipeline), preserving
			// MODIFY-created columns.
			if cur == nil {
				input = wrap(&sqlast.TableName{Name: onTable}, i)
				c, err := rw.columnsOf(onTable)
				if err != nil {
					return nil, nil, err
				}
				cols = c
			} else {
				input = cur
			}
		} else {
			view, ok := rw.DB.View(r.Rule.From)
			if !ok {
				if _, isTable := rw.DB.Table(r.Rule.From); !isTable {
					return nil, nil, fmt.Errorf("core: rule %s: unknown input %q", r.Rule.Name, r.Rule.From)
				}
				// Plain table input different from ON: treat like a view
				// reference with no substitution.
				view = &sqlast.SelectStmt{Items: []sqlast.SelectItem{{Star: true}},
					From: []sqlast.TableExpr{&sqlast.TableName{Name: r.Rule.From}}}
			}
			body := sqlast.CloneStmt(view)
			if cur != nil {
				substituteTable(body, onTable, cur)
			}
			input = wrap(&sqlast.SubqueryTable{Query: body, Alias: "__v_" + r.Rule.Name}, i)
			c, err := rw.Registry.InputColumns(r.Rule)
			if err != nil {
				return nil, nil, err
			}
			cols = c
			curInput = r.Rule.From
		}
		stageStmt, outCols, err := r.Template.Build(input, cols)
		if err != nil {
			return nil, nil, err
		}
		cur = &sqlast.SubqueryTable{Query: stageStmt, Alias: "__d_" + r.Rule.Name}
		cols = outCols
	}
	sub := cur.(*sqlast.SubqueryTable)
	return sub.Query, cols, nil
}

func cloneOrNil(e sqlast.Expr) sqlast.Expr {
	if e == nil {
		return nil
	}
	return sqlast.CloneExpr(e)
}

// substituteTable replaces every FROM reference to the named table inside
// stmt with the given table expression (cloned per use), preserving the
// original binding name.
func substituteTable(stmt sqlast.Stmt, table string, repl sqlast.TableExpr) {
	switch s := stmt.(type) {
	case nil:
	case *sqlast.SelectStmt:
		for _, cte := range s.With {
			if !strings.EqualFold(cte.Name, table) {
				substituteTable(cte.Query, table, repl)
			}
		}
		for i := range s.From {
			s.From[i] = substituteInTableExpr(s.From[i], table, repl)
		}
	case *sqlast.SetOpStmt:
		substituteTable(s.L, table, repl)
		substituteTable(s.R, table, repl)
	}
}

func substituteInTableExpr(te sqlast.TableExpr, table string, repl sqlast.TableExpr) sqlast.TableExpr {
	switch t := te.(type) {
	case *sqlast.TableName:
		if strings.EqualFold(t.Name, table) {
			cloned := sqlast.CloneTableExpr(repl)
			if sub, ok := cloned.(*sqlast.SubqueryTable); ok {
				sub.Alias = t.Binding()
			}
			return cloned
		}
		return te
	case *sqlast.SubqueryTable:
		substituteTable(t.Query, table, repl)
		return te
	case *sqlast.JoinExpr:
		t.Left = substituteInTableExpr(t.Left, table, repl)
		t.Right = substituteInTableExpr(t.Right, table, repl)
		return te
	}
	return te
}

// ExpandedConditions reports, per rule, the derived expanded condition for
// a query in Table-1 style. Infeasible rules map to "{}".
func (rw *Rewriter) ExpandedConditions(query string, ruleNames []string) (map[string]string, error) {
	stmt, err := sqlparser.Parse(query)
	if err != nil {
		return nil, err
	}
	rules, err := rw.resolveRules(stmt, ruleNames)
	if err != nil {
		return nil, err
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("core: no rules apply to this query")
	}
	targets, err := rw.analyzeQuery(sqlast.CloneStmt(stmt), rules[0].Rule.On)
	if err != nil {
		return nil, err
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("core: query does not reference table %q", rules[0].Rule.On)
	}
	t := targets[0]
	skey := rules[0].Rule.SequenceBy
	queryIv := skeyInterval(t.s, t.binding, skey)
	out := map[string]string{}
	for _, r := range rules {
		out[r.Rule.Name] = analyzeRule(r, queryIv).describe(skey)
	}
	return out, nil
}
