package core

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/rulegen"
	"repro/internal/sqlast"
	"repro/internal/sqlts"
	"repro/internal/types"
)

// interval is a closed interval over the sequence key in microseconds;
// nil bounds are unbounded.
type interval struct {
	lo, hi *int64
}

func (iv *interval) tightenLo(v int64) {
	if iv.lo == nil || v > *iv.lo {
		iv.lo = &v
	}
}

func (iv *interval) tightenHi(v int64) {
	if iv.hi == nil || v < *iv.hi {
		iv.hi = &v
	}
}

func (iv interval) unbounded() bool { return iv.lo == nil && iv.hi == nil }

// shift returns the interval of X.skey = T.skey + d with T.skey ∈ iv and
// d ∈ [dLo, dHi].
func (iv interval) shift(dLo, dHi *int64) interval {
	out := interval{}
	if iv.lo != nil && dLo != nil {
		v := satAdd(*iv.lo, *dLo)
		out.lo = &v
	}
	if iv.hi != nil && dHi != nil {
		v := satAdd(*iv.hi, *dHi)
		out.hi = &v
	}
	return out
}

// union widens to cover both intervals.
func (iv interval) union(o interval) interval {
	out := interval{}
	if iv.lo != nil && o.lo != nil {
		v := min64(*iv.lo, *o.lo)
		out.lo = &v
	}
	if iv.hi != nil && o.hi != nil {
		v := max64(*iv.hi, *o.hi)
		out.hi = &v
	}
	return out
}

// contains reports iv ⊇ o.
func (iv interval) contains(o interval) bool {
	if iv.lo != nil && (o.lo == nil || *o.lo < *iv.lo) {
		return false
	}
	if iv.hi != nil && (o.hi == nil || *o.hi > *iv.hi) {
		return false
	}
	return true
}

func (iv interval) equal(o interval) bool { return iv.contains(o) && o.contains(iv) }

func satAdd(a, b int64) int64 {
	if b > 0 && a > math.MaxInt64-b {
		return math.MaxInt64
	}
	if b < 0 && a < math.MinInt64-b {
		return math.MinInt64
	}
	return a + b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// contextAnalysis is the result of the paper's Figure-4 analysis for one
// rule against one query: per context reference, the derived context
// condition; plus the rule-level sequence-key interval that feeds the
// expanded condition.
type contextAnalysis struct {
	Rule *RegisteredRule
	// Feasible is Fig. 4's test: every context reference derived a
	// non-empty context condition.
	Feasible bool
	// Interval is the union of the query interval and every context's
	// derived interval — the data range the expanded rewrite must fetch
	// for this rule.
	Interval interval
	// Contexts carries the per-reference detail (for Table-1 style
	// reporting).
	Contexts []contextCond
}

// contextCond is the derived context condition for one context reference.
type contextCond struct {
	Ref sqlts.Ref
	// Interval on the context's sequence key (from transitivity).
	Interval interval
	// Extra are context-only conjuncts taken directly from the rule
	// condition (set references only — Observation 1 excludes them for
	// position-based references). Rewritten to bare input columns.
	Extra []sqlast.Expr
	// Empty mirrors Fig. 4 line 9: no conjunct could be derived.
	Empty bool
}

// analyzeRule runs transitivity between the query condition (already
// reduced to a sequence-key interval) and one rule's correlation
// conditions, per context reference.
func analyzeRule(reg *RegisteredRule, queryIv interval) *contextAnalysis {
	rule := reg.Rule
	out := &contextAnalysis{Rule: reg, Feasible: true, Interval: queryIv}
	tIdx := rule.TargetIndex()
	conjs := sqlast.Conjuncts(rule.Cond)
	for i, ref := range rule.Pattern {
		if ref.Name == rule.Target {
			continue
		}
		cc := contextCond{Ref: ref}
		// Implied sequence-position conjunct: before ⇒ d ≤ 0, after ⇒
		// d ≥ 0 (ties in the sequence key are allowed either side, which
		// is the safe direction for data selection).
		var dLo, dHi *int64
		zero := int64(0)
		if i < tIdx {
			dHi = &zero
		} else {
			dLo = &zero
		}
		// Explicit sequence-key constraints between this ref and the
		// target tighten the distance bounds. They are position-preserving
		// (Observation 1a), so they apply to singletons and sets alike.
		for _, c := range conjs {
			name, cLo, cHi, ok := rulegen.SignedSkeyBounds(rule, c)
			if !ok || name != ref.Name {
				continue
			}
			if cLo != nil && (dLo == nil || *cLo > *dLo) {
				dLo = cLo
			}
			if cHi != nil && (dHi == nil || *cHi < *dHi) {
				dHi = cHi
			}
		}
		cc.Interval = queryIv.shift(dLo, dHi)
		// Context-only conjuncts join the context condition for set
		// references; for position-based (singleton) references they are
		// not position-preserving and must be excluded (Observation 1b).
		if ref.Set {
			for _, c := range conjs {
				if _, _, _, isSkey := rulegen.SignedSkeyBounds(rule, c); isSkey {
					continue
				}
				if onlyRef(c, ref.Name) {
					cc.Extra = append(cc.Extra, stripQualifier(c))
				}
			}
		}
		cc.Empty = cc.Interval.unbounded() && len(cc.Extra) == 0
		if cc.Empty {
			out.Feasible = false
		}
		out.Interval = out.Interval.union(cc.Interval)
		out.Contexts = append(out.Contexts, cc)
	}
	if !out.Feasible {
		out.Interval = interval{}
	}
	return out
}

func onlyRef(e sqlast.Expr, ref string) bool {
	only := true
	sqlast.VisitExprs(e, func(x sqlast.Expr) {
		if cr, ok := x.(*sqlast.ColRef); ok {
			if !strings.EqualFold(cr.Table, ref) {
				only = false
			}
		}
	})
	return only
}

func stripQualifier(e sqlast.Expr) sqlast.Expr {
	return sqlast.MapColRefs(sqlast.CloneExpr(e), func(cr *sqlast.ColRef) sqlast.Expr {
		return &sqlast.ColRef{Name: cr.Name}
	})
}

// intervalExpr renders an interval as conjuncts over the sequence key
// column; nil when unbounded.
func intervalExpr(iv interval, skey string) sqlast.Expr {
	var conjs []sqlast.Expr
	if iv.lo != nil {
		conjs = append(conjs, sqlast.Cmp(sqlast.OpGe, sqlast.Col("", skey), sqlast.Lit(types.NewTime(*iv.lo))))
	}
	if iv.hi != nil {
		conjs = append(conjs, sqlast.Cmp(sqlast.OpLe, sqlast.Col("", skey), sqlast.Lit(types.NewTime(*iv.hi))))
	}
	return sqlast.And(conjs...)
}

// describe renders a context analysis in Table-1 style ("rtime <= T1+5min
// AND reader = 'readerX'", or "{}" when infeasible).
func (ca *contextAnalysis) describe(skey string) string {
	if !ca.Feasible {
		return "{}"
	}
	var parts []string
	for _, cc := range ca.Contexts {
		var sub []string
		if e := intervalExpr(cc.Interval, skey); e != nil {
			sub = append(sub, sqlast.ExprSQL(e))
		}
		for _, x := range cc.Extra {
			sub = append(sub, sqlast.ExprSQL(x))
		}
		if len(sub) > 0 {
			parts = append(parts, strings.Join(sub, " AND "))
		}
	}
	if len(parts) == 0 {
		return "(entire table)"
	}
	if len(parts) == 1 {
		return parts[0]
	}
	return "(" + strings.Join(parts, ") OR (") + ")"
}

// matchColConstExpr extracts (colref, const, op-with-col-left) from a
// comparison after constant folding.
func matchColConstExpr(bin *sqlast.Bin) (*sqlast.ColRef, *sqlast.Const, sqlast.BinOp) {
	l, r := foldConstExpr(bin.L), foldConstExpr(bin.R)
	if cr, ok := l.(*sqlast.ColRef); ok {
		if c, ok := r.(*sqlast.Const); ok {
			return cr, c, bin.Op
		}
	}
	if cr, ok := r.(*sqlast.ColRef); ok {
		if c, ok := l.(*sqlast.Const); ok {
			return cr, c, bin.Op.Flip()
		}
	}
	return nil, nil, bin.Op
}

// foldConstExpr folds constant arithmetic (T1 + 5 minutes → literal).
func foldConstExpr(e sqlast.Expr) sqlast.Expr {
	bin, ok := e.(*sqlast.Bin)
	if !ok || !bin.Op.IsArith() {
		return e
	}
	l, lok := foldConstExpr(bin.L).(*sqlast.Const)
	r, rok := foldConstExpr(bin.R).(*sqlast.Const)
	if !lok || !rok {
		return e
	}
	var op types.ArithOp
	switch bin.Op {
	case sqlast.OpAdd:
		op = types.OpAdd
	case sqlast.OpSub:
		op = types.OpSub
	case sqlast.OpMul:
		op = types.OpMul
	case sqlast.OpDiv:
		op = types.OpDiv
	}
	v, err := types.Arith(op, l.V, r.V)
	if err != nil {
		return e
	}
	return sqlast.Lit(v)
}

func usecOf(c *sqlast.Const) (int64, bool) {
	switch c.V.Kind() {
	case types.KindTime:
		return c.V.TimeUsec(), true
	case types.KindInt:
		return c.V.Int(), true
	case types.KindInterval:
		return c.V.IntervalUsec(), true
	}
	return 0, false
}

// validateRuleSet checks the §5.4 requirements: all rules ON the same
// table with identical cluster/sequence keys.
func validateRuleSet(rules []*RegisteredRule) error {
	if len(rules) == 0 {
		return fmt.Errorf("core: no rules to apply")
	}
	first := rules[0].Rule
	for _, r := range rules[1:] {
		if r.Rule.On != first.On {
			return fmt.Errorf("core: rules %s and %s are defined on different tables", first.Name, r.Rule.Name)
		}
		if r.Rule.ClusterBy != first.ClusterBy || r.Rule.SequenceBy != first.SequenceBy {
			return fmt.Errorf("core: rules %s and %s use different cluster/sequence keys", first.Name, r.Rule.Name)
		}
	}
	return nil
}
