package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/types"
)

// mkReads builds a reads table named caser with the paper's schema.
func mkReads(t testing.TB, rows [][5]string) *catalog.Database {
	t.Helper()
	db := catalog.NewDatabase()
	tab := storage.NewTable("caser", schema.New(
		schema.Col("caser", "epc", types.KindString),
		schema.Col("caser", "rtime", types.KindTime),
		schema.Col("caser", "biz_loc", types.KindString),
		schema.Col("caser", "reader", types.KindString),
		schema.Col("caser", "biz_step", types.KindString),
	))
	for _, r := range rows {
		var minute int64
		fmt.Sscanf(r[1], "%d", &minute)
		tab.Append(schema.Row{
			types.NewString(r[0]), types.NewTime(minute * 60_000_000),
			types.NewString(r[2]), types.NewString(r[3]), types.NewString(r[4]),
		})
	}
	tab.BuildIndex("rtime")
	tab.BuildIndex("epc")
	tab.Analyze()
	if err := db.AddTable(tab); err != nil {
		t.Fatal(err)
	}
	return db
}

func minuteTS(m int64) string {
	return "TIMESTAMP '" + time.Unix(m*60, 0).UTC().Format("2006-01-02 15:04:05") + "'"
}

func runStmt(t testing.TB, db *catalog.Database, r *Result) []string {
	t.Helper()
	res, err := exec.Run(exec.NewCtx(), r.Plan)
	if err != nil {
		t.Fatalf("exec (%s): %v\nsql: %s", r.Strategy, err, r.SQL)
	}
	out := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

func rewriteRun(t testing.TB, db *catalog.Database, reg *Registry, query string, rules []string, strat Strategy) []string {
	t.Helper()
	rw := NewRewriter(db, reg)
	r, err := rw.RewriteSQL(query, rules, strat)
	if err != nil {
		t.Fatalf("rewrite (%v): %v", strat, err)
	}
	return runStmt(t, db, r)
}

// §5.1, Figure 3(a): pushing Q1's predicate into R1 before cleansing
// returns a wrong answer; the expanded rewrite returns the right one.
func TestMotivatingExampleReaderRule(t *testing.T) {
	// r1 at t1-2min by readerY, r2 at t1+2min by readerX; t1 = 60 min.
	db := mkReads(t, [][5]string{
		{"e1", "58", "locA", "readerY", "s"},
		{"e1", "62", "locB", "readerX", "s"},
	})
	reg := NewRegistry(db)
	if _, err := reg.Define(`DEFINE c1 ON caser AS (A, *B)
		WHERE B.reader = 'readerX' AND B.rtime - A.rtime < 5 mins
		ACTION DELETE A`); err != nil {
		t.Fatal(err)
	}
	q1 := "select * from caser where rtime < " + minuteTS(60)

	dirty := rewriteRun(t, db, reg, q1, nil, StrategyDirty)
	if len(dirty) != 1 {
		t.Fatalf("dirty baseline should return the anomalous row, got %v", dirty)
	}
	for _, strat := range []Strategy{StrategyNaive, StrategyExpanded, StrategyJoinBack, StrategyAuto} {
		got := rewriteRun(t, db, reg, q1, nil, strat)
		if len(got) != 0 {
			t.Errorf("%v: Q1[C1] = %v, want empty", strat, got)
		}
	}
}

// §5.1, Figure 3(b): the duplicate rule without a time bound has no
// expanded rewrite; join-back still answers correctly.
func TestMotivatingExampleDuplicateNoTimeBound(t *testing.T) {
	// r3 at t2-2min, r4 at t2+2min, same location; t2 = 60 min.
	db := mkReads(t, [][5]string{
		{"e2", "58", "locZ", "r", "s"},
		{"e2", "62", "locZ", "r", "s"},
	})
	reg := NewRegistry(db)
	if _, err := reg.Define(`DEFINE c2 ON caser AS (E, F)
		WHERE E.biz_loc = F.biz_loc
		ACTION DELETE F`); err != nil {
		t.Fatal(err)
	}
	q2 := "select * from caser where rtime > " + minuteTS(60)

	rw := NewRewriter(db, reg)
	if _, err := rw.RewriteSQL(q2, nil, StrategyExpanded); err == nil {
		t.Error("expanded rewrite should be infeasible for Q2[C2]")
	}
	dirty := rewriteRun(t, db, reg, q2, nil, StrategyDirty)
	if len(dirty) != 1 {
		t.Fatalf("dirty baseline = %v", dirty)
	}
	for _, strat := range []Strategy{StrategyNaive, StrategyJoinBack, StrategyAuto} {
		got := rewriteRun(t, db, reg, q2, nil, strat)
		if len(got) != 0 {
			t.Errorf("%v: Q2[C2] = %v, want empty", strat, got)
		}
	}
}

const (
	tDup = `DEFINE duplicate ON caser AS (A, B)
		WHERE A.biz_loc = B.biz_loc AND B.rtime - A.rtime < 5 mins ACTION DELETE B`
	tReader = `DEFINE reader ON caser AS (A, *B)
		WHERE B.reader = 'readerX' AND B.rtime - A.rtime < 10 mins ACTION DELETE A`
	tReplacing = `DEFINE replacing ON caser AS (A, B)
		WHERE A.biz_loc = 'loc2' AND B.biz_loc = 'locA' AND B.rtime - A.rtime < 20 mins
		ACTION MODIFY A.biz_loc = 'loc1'`
	tCycle = `DEFINE cycle ON caser AS (A, B, C)
		WHERE A.biz_loc = C.biz_loc AND A.biz_loc <> B.biz_loc ACTION DELETE B`
)

func defineAll(t testing.TB, reg *Registry, srcs ...string) {
	t.Helper()
	for _, s := range srcs {
		if _, err := reg.Define(s); err != nil {
			t.Fatal(err)
		}
	}
}

// Table 1 reproduction: expanded conditions derived for q1/q2-style
// predicates against each rule.
func TestExpandedConditionsDerivation(t *testing.T) {
	db := mkReads(t, [][5]string{{"e1", "0", "locA", "r", "s"}})
	reg := NewRegistry(db)
	defineAll(t, reg, tDup, tReader, tReplacing, tCycle)
	rw := NewRewriter(db, reg)

	// q1-style: rtime <= T1 (T1 = 60 min).
	cc, err := rw.ExpandedConditions("select * from caser where rtime <= "+minuteTS(60), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Reader rule (t2 = 10 min): context extends T1 by 10 minutes (the
	// strict "< 10 mins" yields an inclusive bound one microsecond short).
	if want := "rtime <= TIMESTAMP '1970-01-01 01:09:59.999999'"; !strings.HasPrefix(cc["reader"], want) {
		t.Errorf("reader cc = %q, want prefix %q", cc["reader"], want)
	}
	if !strings.Contains(cc["reader"], "reader = 'readerX'") {
		t.Errorf("reader cc should carry the X-only conjunct: %q", cc["reader"])
	}
	// Duplicate rule: context precedes the target, upper bound stays T1.
	if want := "rtime <= TIMESTAMP '1970-01-01 01:00:00"; !strings.HasPrefix(cc["duplicate"], want) {
		t.Errorf("duplicate cc = %q, want prefix %q", cc["duplicate"], want)
	}
	// Replacing rule (t3 = 20 min): extends T1 by 20 minutes.
	if want := "rtime <= TIMESTAMP '1970-01-01 01:19:59.999999'"; !strings.HasPrefix(cc["replacing"], want) {
		t.Errorf("replacing cc = %q, want prefix %q", cc["replacing"], want)
	}
	// Cycle rule: unbounded context after the target ⇒ infeasible.
	if cc["cycle"] != "{}" {
		t.Errorf("cycle cc = %q, want {}", cc["cycle"])
	}

	// q2-style: rtime >= T2. The duplicate rule's context precedes the
	// target, so the bound relaxes downward by t1=5min (the paper's
	// Table 1 prints T2+10min here; Fig. 4's own algorithm — and ours —
	// derives T2−t1; see EXPERIMENTS.md).
	cc2, err := rw.ExpandedConditions("select * from caser where rtime >= "+minuteTS(60), nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := "rtime >= TIMESTAMP '1970-01-01 00:55:00.000001'"; !strings.HasPrefix(cc2["duplicate"], want) {
		t.Errorf("duplicate cc(q2) = %q, want prefix %q", cc2["duplicate"], want)
	}
	if want := "rtime >= TIMESTAMP '1970-01-01 01:00:00"; !strings.HasPrefix(cc2["reader"], want) {
		t.Errorf("reader cc(q2) = %q, want prefix %q", cc2["reader"], want)
	}
	if cc2["cycle"] != "{}" {
		t.Errorf("cycle cc(q2) = %q, want {}", cc2["cycle"])
	}
}

// Rewritten SQL shape checks: expanded pushes a widened interval, the
// join-back adds a distinct-sequence semi-join, and the final condition is
// reapplied.
func TestRewriteShapes(t *testing.T) {
	db := mkReads(t, [][5]string{{"e1", "0", "locA", "r", "s"}})
	reg := NewRegistry(db)
	defineAll(t, reg, tReader)
	rw := NewRewriter(db, reg)
	q := "select * from caser where rtime <= " + minuteTS(60)

	exp, err := rw.RewriteSQL(q, nil, StrategyExpanded)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(exp.SQL, "rtime <= TIMESTAMP '1970-01-01 01:09:59.999999'") {
		t.Errorf("expanded SQL lacks widened bound:\n%s", exp.SQL)
	}
	if !strings.Contains(exp.SQL, "WHERE rtime <= TIMESTAMP '1970-01-01 01:00:00") {
		t.Errorf("expanded SQL must reapply the original predicate:\n%s", exp.SQL)
	}
	// Re-parse: the rewrite must be valid SQL text.
	if _, err := sqlparser.Parse(exp.SQL); err != nil {
		t.Errorf("expanded SQL does not reparse: %v", err)
	}

	jb, err := rw.RewriteSQL(q, nil, StrategyJoinBack)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jb.SQL, "epc IN (SELECT DISTINCT epc FROM caser") {
		t.Errorf("join-back SQL lacks sequence semi-join:\n%s", jb.SQL)
	}
	if _, err := sqlparser.Parse(jb.SQL); err != nil {
		t.Errorf("join-back SQL does not reparse: %v", err)
	}
}

// Theorem 1 (and its §5.4 multi-rule extension): expanded, join-back, and
// naive rewrites agree on random data, random query ranges, and random
// rule subsets.
func TestTheorem1Property(t *testing.T) {
	ruleSets := [][]string{
		{tDup},
		{tReader},
		{tReplacing},
		{tCycle},
		{tDup, tReader},
		{tReader, tReplacing},
		{tDup, tReader, tReplacing},
		{tDup, tReader, tReplacing, tCycle},
	}
	locs := []string{"locA", "loc1", "loc2", "locB"}
	readers := []string{"readerX", "readerY", "readerZ"}
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var rows [][5]string
		nEpc := 1 + rng.Intn(4)
		for e := 0; e < nEpc; e++ {
			minute := int64(0)
			n := 1 + rng.Intn(12)
			for i := 0; i < n; i++ {
				minute += int64(rng.Intn(15))
				rows = append(rows, [5]string{
					fmt.Sprintf("e%d", e), fmt.Sprintf("%d", minute),
					locs[rng.Intn(len(locs))], readers[rng.Intn(len(readers))], "s",
				})
			}
		}
		rules := ruleSets[rng.Intn(len(ruleSets))]
		lo := int64(rng.Intn(60))
		hi := lo + int64(rng.Intn(90))
		// Alternate plain interval queries with ones that also constrain a
		// MODIFY-affected column (stressing the join-back safety rule).
		q := fmt.Sprintf("select * from caser where rtime >= %s and rtime <= %s", minuteTS(lo), minuteTS(hi))
		if seed%3 == 2 {
			q += " and biz_loc = 'loc1'"
		}

		db := mkReads(t, rows)
		reg := NewRegistry(db)
		defineAll(t, reg, rules...)
		rw := NewRewriter(db, reg)

		want := rewriteRun(t, db, reg, q, nil, StrategyNaive)
		for _, strat := range []Strategy{StrategyExpanded, StrategyJoinBack, StrategyAuto} {
			r, err := rw.RewriteSQL(q, nil, strat)
			if err != nil {
				if strat == StrategyExpanded {
					continue // infeasible is legitimate
				}
				t.Fatalf("seed %d %v: %v", seed, strat, err)
			}
			got := runStmt(t, db, r)
			if strings.Join(got, "\n") != strings.Join(want, "\n") {
				t.Errorf("seed %d rules %d %v mismatch\nquery: %s\ngot:  %v\nwant: %v\nsql: %s",
					seed, len(rules), strat, q, got, want, r.SQL)
			}
		}
	}
}

// Rules must be applied in creation order (§4.4) by every strategy.
func TestMultiRuleOrderThroughRewrite(t *testing.T) {
	rows := [][5]string{
		{"e1", "0", "X", "r", "s"}, {"e1", "30", "Y", "r", "s"}, {"e1", "60", "X", "r", "s"},
	}
	dupNoTime := `DEFINE dup ON caser AS (A, B) WHERE A.biz_loc = B.biz_loc ACTION DELETE B`
	cycle := `DEFINE cyc ON caser AS (A, B, C) WHERE A.biz_loc = C.biz_loc AND A.biz_loc <> B.biz_loc ACTION DELETE B`
	q := "select * from caser where rtime >= " + minuteTS(0)

	db := mkReads(t, rows)
	reg := NewRegistry(db)
	defineAll(t, reg, cycle, dupNoTime) // cycle first → [X]
	got := rewriteRun(t, db, reg, q, nil, StrategyAuto)
	if len(got) != 1 {
		t.Fatalf("cycle-then-dup = %v, want 1 row", got)
	}

	db2 := mkReads(t, rows)
	reg2 := NewRegistry(db2)
	defineAll(t, reg2, dupNoTime, cycle) // dup first (adjacent only) → [X X]
	got2 := rewriteRun(t, db2, reg2, q, nil, StrategyAuto)
	if len(got2) != 2 {
		t.Fatalf("dup-then-cycle = %v, want 2 rows", got2)
	}
}

func TestRegistryBasics(t *testing.T) {
	db := mkReads(t, [][5]string{{"e1", "0", "locA", "r", "s"}})
	reg := NewRegistry(db)
	r1, err := reg.Define(tDup)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Seq != 0 || !strings.Contains(r1.TemplateSQL, "$input") {
		t.Errorf("registered rule = %+v", r1)
	}
	if _, err := reg.Define(tDup); err == nil {
		t.Error("duplicate rule name must fail")
	}
	if _, err := reg.Define(strings.Replace(tReader, "ON caser", "ON nosuch", 1)); err == nil {
		t.Error("unknown table must fail")
	}
	if _, ok := reg.Rule("duplicate"); !ok {
		t.Error("lookup failed")
	}
	rules, err := reg.RulesFor("caser")
	if err != nil || len(rules) != 1 {
		t.Errorf("RulesFor = %v, %v", rules, err)
	}
	if _, err := reg.RulesFor("caser", "nosuch"); err == nil {
		t.Error("unknown rule filter must fail")
	}
}

func TestModifyingKeysIsRejected(t *testing.T) {
	db := mkReads(t, [][5]string{{"e1", "0", "locA", "r", "s"}})
	reg := NewRegistry(db)
	defineAll(t, reg, `DEFINE bad ON caser AS (A, B) WHERE A.biz_loc = B.biz_loc ACTION MODIFY B.rtime = A.rtime`)
	rw := NewRewriter(db, reg)
	if _, err := rw.RewriteSQL("select * from caser where rtime >= "+minuteTS(0), nil, StrategyAuto); err == nil {
		t.Fatal("modifying the sequence key must be rejected")
	}
}

func TestQueryWithoutTargetTable(t *testing.T) {
	db := mkReads(t, [][5]string{{"e1", "0", "locA", "r", "s"}})
	other := storage.NewTable("other", schema.New(schema.Col("other", "x", types.KindInt)))
	other.Append(schema.Row{types.NewInt(1)})
	if err := db.AddTable(other); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(db)
	defineAll(t, reg, tDup)
	rw := NewRewriter(db, reg)
	// Rule resolution by query table: no caser reference → no rules → runs dirty.
	r, err := rw.RewriteSQL("select * from other", nil, StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	if r.Strategy != StrategyDirty {
		t.Errorf("strategy = %v", r.Strategy)
	}
	// Explicit rules + query not referencing the table → error.
	if _, err := rw.RewriteSQL("select * from other", []string{"duplicate"}, StrategyAuto); err == nil {
		t.Error("expected error for rules on unreferenced table")
	}
}

// A query whose R reference lives inside a CTE (the q1 shape).
func TestRewriteInsideCTE(t *testing.T) {
	db := mkReads(t, [][5]string{
		{"e1", "10", "locA", "readerY", "s"},
		{"e1", "12", "locB", "readerX", "s"},
		{"e1", "40", "locC", "readerY", "s"},
	})
	reg := NewRegistry(db)
	defineAll(t, reg, tReader)
	q := `with v1 as (select epc, biz_loc from caser where rtime <= ` + minuteTS(30) + `)
	      select count(*) from v1`
	dirty := rewriteRun(t, db, reg, q, nil, StrategyDirty)
	if dirty[0] != "2" {
		t.Fatalf("dirty count = %v", dirty)
	}
	for _, strat := range []Strategy{StrategyNaive, StrategyExpanded, StrategyJoinBack} {
		got := rewriteRun(t, db, reg, q, nil, strat)
		if got[0] != "1" {
			t.Errorf("%v count = %v, want 1 (locA read cleansed)", strat, got)
		}
	}
}

// Join queries: dims participate via semi-join pushdown and results stay
// correct across push counts.
func TestJoinQueryWithDims(t *testing.T) {
	db := mkReads(t, [][5]string{
		{"e1", "10", "locA", "readerY", "s1"},
		{"e1", "12", "locB", "readerX", "s1"},
		{"e2", "10", "locA", "readerY", "s2"},
	})
	locs := storage.NewTable("locs", schema.New(
		schema.Col("locs", "gln", types.KindString),
		schema.Col("locs", "site", types.KindString),
	))
	locs.Append(
		schema.Row{types.NewString("locA"), types.NewString("dc1")},
		schema.Row{types.NewString("locB"), types.NewString("dc2")},
	)
	locs.Analyze()
	if err := db.AddTable(locs); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(db)
	defineAll(t, reg, tReader)
	q := `select c.epc, l.site from caser c, locs l
	      where c.biz_loc = l.gln and l.site = 'dc1' and c.rtime <= ` + minuteTS(60)

	want := rewriteRun(t, db, reg, q, nil, StrategyNaive)
	// e1's locA read is deleted by the reader rule; only e2 remains.
	if len(want) != 1 || !strings.HasPrefix(want[0], "e2") {
		t.Fatalf("naive = %v", want)
	}
	for _, strat := range []Strategy{StrategyExpanded, StrategyJoinBack, StrategyAuto} {
		got := rewriteRun(t, db, reg, q, nil, strat)
		if strings.Join(got, ";") != strings.Join(want, ";") {
			t.Errorf("%v = %v, want %v", strat, got, want)
		}
	}
	// Candidate diagnostics: the join-back family must have explored a
	// semi-join push (pushes >= 1 in some candidate).
	rw := NewRewriter(db, reg)
	r, err := rw.RewriteSQL(q, nil, StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	sawPush := false
	for _, c := range r.Candidates {
		if c.Strategy == StrategyJoinBack && c.Pushes > 0 {
			sawPush = true
		}
	}
	if !sawPush {
		t.Errorf("no pushed join-back candidate evaluated: %+v", r.Candidates)
	}
}

// The missing rule's union-view input: the chain substitutes the cleansed
// stage into the view and filters both branches.
func TestViewInputChain(t *testing.T) {
	db := mkReads(t, [][5]string{
		{"c1", "100", "L2", "r", "s"}, // real case read at L2
	})
	pallet := storage.NewTable("palletsub", schema.New(
		schema.Col("palletsub", "epc", types.KindString),
		schema.Col("palletsub", "rtime", types.KindTime),
		schema.Col("palletsub", "biz_loc", types.KindString),
		schema.Col("palletsub", "reader", types.KindString),
		schema.Col("palletsub", "biz_step", types.KindString),
	))
	pallet.Append(
		schema.Row{types.NewString("c1"), types.NewTime(0), types.NewString("L1"), types.NewString("r"), types.NewString("s")},
		schema.Row{types.NewString("c1"), types.NewTime(101 * 60_000_000), types.NewString("L2"), types.NewString("r"), types.NewString("s")},
	)
	pallet.Analyze()
	if err := db.AddTable(pallet); err != nil {
		t.Fatal(err)
	}
	view, err := sqlparser.Parse(`select epc, rtime, biz_loc, reader, biz_step, 0 as is_pallet from caser
		union all select epc, rtime, biz_loc, reader, biz_step, 1 as is_pallet from palletsub`)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddView("case_with_pallet", view); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(db)
	defineAll(t, reg,
		`DEFINE missing_r1 ON caser FROM case_with_pallet AS (X, A, Y)
		 WHERE A.is_pallet = 1 AND ((X.is_pallet = 0 AND A.biz_loc = X.biz_loc AND A.rtime - X.rtime < 5 mins)
			OR (Y.is_pallet = 0 AND A.biz_loc = Y.biz_loc AND Y.rtime - A.rtime < 5 mins))
		 ACTION MODIFY A.has_case_nearby = 1`,
		`DEFINE missing_r2 ON caser FROM case_with_pallet AS (A, *B)
		 WHERE A.is_pallet = 0 OR (A.has_case_nearby = 0 AND B.has_case_nearby = 1)
		 ACTION KEEP A`)
	q := "select epc, biz_loc from caser where rtime >= " + minuteTS(0)

	for _, strat := range []Strategy{StrategyNaive, StrategyJoinBack, StrategyAuto} {
		got := rewriteRun(t, db, reg, q, nil, strat)
		// Compensated L1 read + real L2 read.
		if len(got) != 2 {
			t.Errorf("%v = %v, want compensated L1 + real L2", strat, got)
		}
	}
}

// A self-join of the reads table: both references get cleansed
// independently and results stay correct.
func TestSelfJoinBothReferencesCleansed(t *testing.T) {
	db := mkReads(t, [][5]string{
		{"e1", "0", "locA", "readerY", "s"},
		{"e1", "5", "locB", "readerX", "s"}, // deletes the locA read
		{"e2", "0", "locC", "readerY", "s"},
	})
	reg := NewRegistry(db)
	defineAll(t, reg, tReader)
	q := `select a.epc, b.epc from caser a, caser b
	      where a.biz_loc = b.biz_loc and a.rtime >= ` + minuteTS(0) + ` and b.rtime >= ` + minuteTS(0)

	dirty := rewriteRun(t, db, reg, q, nil, StrategyDirty)
	if len(dirty) != 3 { // each surviving read self-pairs
		t.Fatalf("dirty self-join = %v", dirty)
	}
	want := rewriteRun(t, db, reg, q, nil, StrategyNaive)
	if len(want) != 2 {
		t.Fatalf("cleansed self-join = %v (locA read should be gone)", want)
	}
	for _, strat := range []Strategy{StrategyJoinBack, StrategyAuto} {
		got := rewriteRun(t, db, reg, q, nil, strat)
		if strings.Join(got, ";") != strings.Join(want, ";") {
			t.Errorf("%v self-join = %v, want %v", strat, got, want)
		}
	}
}

// Rewriting must also reach references inside ANSI JOIN trees.
func TestRewriteInsideAnsiJoin(t *testing.T) {
	db := mkReads(t, [][5]string{
		{"e1", "0", "locA", "readerY", "s"},
		{"e1", "5", "locB", "readerX", "s"},
	})
	reg := NewRegistry(db)
	defineAll(t, reg, tReader)
	q := `select c.epc from caser c join caser d on c.epc = d.epc where c.rtime >= ` + minuteTS(0)

	dirty := rewriteRun(t, db, reg, q, nil, StrategyDirty)
	want := rewriteRun(t, db, reg, q, nil, StrategyNaive)
	if len(dirty) != 4 || len(want) != 1 {
		t.Fatalf("dirty=%d cleansed=%d, want 4/1", len(dirty), len(want))
	}
}

// Query-shape coverage: DISTINCT, ORDER BY ... LIMIT, and aggregates over
// the cleansed table all rewrite correctly under every strategy.
func TestRewriteQueryShapes(t *testing.T) {
	rows := [][5]string{
		{"e1", "0", "locA", "readerY", "s"},
		{"e1", "5", "locB", "readerX", "s"}, // deletes the locA read
		{"e1", "70", "locA", "readerY", "s"},
		{"e2", "0", "locC", "readerY", "s"},
	}
	queries := []string{
		"select distinct biz_loc from caser where rtime >= " + minuteTS(0),
		"select epc, biz_loc from caser where rtime >= " + minuteTS(0) + " order by rtime desc limit 2",
		"select biz_loc, count(*) from caser where rtime >= " + minuteTS(0) + " group by biz_loc",
		"select min(rtime), max(rtime) from caser where rtime >= " + minuteTS(0),
		"select epc from caser where rtime >= " + minuteTS(0) + " and biz_loc like 'loc%'",
	}
	for _, q := range queries {
		db := mkReads(t, rows)
		reg := NewRegistry(db)
		defineAll(t, reg, tReader)
		want := rewriteRun(t, db, reg, q, nil, StrategyNaive)
		for _, strat := range []Strategy{StrategyExpanded, StrategyJoinBack, StrategyAuto} {
			got := rewriteRun(t, db, reg, q, nil, strat)
			if strings.Join(got, "\n") != strings.Join(want, "\n") {
				t.Errorf("%v mismatch for %q\ngot:  %v\nwant: %v", strat, q, got, want)
			}
		}
	}
}

// Rewriting with zero registered rules on the referenced table degrades to
// the dirty plan without error.
func TestRewriteNoApplicableRules(t *testing.T) {
	db := mkReads(t, [][5]string{{"e1", "0", "locA", "r", "s"}})
	reg := NewRegistry(db)
	rw := NewRewriter(db, reg)
	res, err := rw.RewriteSQL("select count(*) from caser", nil, StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != StrategyDirty {
		t.Errorf("strategy = %v, want dirty passthrough", res.Strategy)
	}
}

// Observation 1(b) of the paper: correlation conditions on columns other
// than the cluster/sequence key are not position-preserving, so a query
// predicate on such a column must never produce an expanded rewrite for a
// position-based rule — selecting only matching rows would change row
// adjacency and mis-fire the rule. Join-back (whole sequences) stays
// correct.
func TestObservation1bNonKeyPredicates(t *testing.T) {
	// Sequence: [locA@0, locB@1, locA@2] — adjacent locA rows do NOT
	// exist, so the no-time-bound duplicate rule fires nowhere. A naive
	// "push biz_loc='locA' then cleanse" would see [locA, locA] adjacent
	// and wrongly delete the second.
	db := mkReads(t, [][5]string{
		{"e1", "0", "locA", "r", "s"},
		{"e1", "1", "locB", "r", "s"},
		{"e1", "2", "locA", "r", "s"},
	})
	reg := NewRegistry(db)
	defineAll(t, reg, `DEFINE dupnt ON caser AS (A, B)
		WHERE A.biz_loc = B.biz_loc ACTION DELETE B`)
	rw := NewRewriter(db, reg)
	q := "select * from caser where biz_loc = 'locA'"

	if _, err := rw.RewriteSQL(q, nil, StrategyExpanded); err == nil {
		t.Fatal("expanded must be infeasible: nothing position-preserving can be derived")
	}
	for _, strat := range []Strategy{StrategyNaive, StrategyJoinBack, StrategyAuto} {
		got := rewriteRun(t, db, reg, q, nil, strat)
		if len(got) != 2 {
			t.Errorf("%v = %v, want both locA reads (nothing is a duplicate)", strat, got)
		}
	}
}
