// Package colvec provides immutable typed column vectors — the in-memory
// format of sealed storage segments. A Vec stores one column of one
// segment as a homogeneous typed array (int64 payloads for INT/TIME/
// INTERVAL/BOOL, float64 for FLOAT, dictionary-encoded or plain strings)
// plus a null bitmap, falling back to boxed values only when a column
// mixes kinds. Vector kernels read the typed arrays in place, so a scan
// touches 8 bytes per value instead of a 48-byte tagged union, and
// Value(i) reconstructs the exact boxed value bit-for-bit when a row must
// be materialized.
package colvec

import "repro/internal/types"

// Enc enumerates a Vec's physical encoding.
type Enc uint8

// Physical encodings. EncAny is the escape hatch for columns whose values
// mix kinds at runtime (the schema declares kinds but the store never
// enforced them); everything else is a typed array.
const (
	EncAny   Enc = iota // boxed values, mixed kinds
	EncInt64            // INT / TIME / INTERVAL / BOOL payloads
	EncFloat            // FLOAT payloads
	EncDict             // strings via a per-vector dictionary
	EncStr              // plain strings (dictionary overflowed)
)

// DictMaxCard is the dictionary cardinality ceiling: a string column whose
// segment holds more distinct values than this is stored as plain strings
// instead. Beyond this point the dictionary stops paying for itself (codes
// plus a large dict cost more than the string headers they replace).
const DictMaxCard = 1024

// Vec is one immutable column vector. The zero Vec is empty. Vecs are
// built once (Builder) and never mutated, so they are safe for concurrent
// readers with no synchronization.
type Vec struct {
	enc  Enc
	kind types.Kind // element kind for typed encodings; KindNull for EncAny
	n    int

	nulls []uint64 // null bitmap, 1 = NULL; nil when the column has no nulls

	ints   []int64
	floats []float64
	codes  []int32
	dict   []string
	strs   []string
	vals   []types.Value
}

// Len returns the number of elements.
func (v *Vec) Len() int { return v.n }

// Encoding reports the physical encoding.
func (v *Vec) Encoding() Enc { return v.enc }

// Kind reports the element kind for typed encodings (KindNull for EncAny).
func (v *Vec) Kind() types.Kind { return v.kind }

// Null reports whether element i is SQL NULL.
func (v *Vec) Null(i int) bool {
	return v.nulls != nil && v.nulls[i>>6]&(1<<(uint(i)&63)) != 0
}

// HasNulls reports whether any element is NULL.
func (v *Vec) HasNulls() bool { return v.nulls != nil }

// Int64s returns the raw int64 payload array (valid for EncInt64; null
// positions hold 0). Tight kernel loops index it directly after checking
// Encoding and the null bitmap.
func (v *Vec) Int64s() []int64 { return v.ints }

// Floats returns the raw float64 payload array (valid for EncFloat; null
// positions hold 0).
func (v *Vec) Floats() []float64 { return v.floats }

// Codes returns the dictionary codes (valid for EncDict; null positions
// hold -1).
func (v *Vec) Codes() []int32 { return v.codes }

// Dict returns the dictionary (valid for EncDict), indexed by code.
func (v *Vec) Dict() []string { return v.dict }

// DictCode returns the dictionary code for s, or -1 when s does not occur
// in this vector — which lets an equality kernel compare int32 codes
// instead of strings.
func (v *Vec) DictCode(s string) int32 {
	for c, d := range v.dict {
		if d == s {
			return int32(c)
		}
	}
	return -1
}

// Value reconstructs element i as a boxed value, bit-identical to the
// value that was appended.
func (v *Vec) Value(i int) types.Value {
	if v.Null(i) {
		return types.Null
	}
	switch v.enc {
	case EncInt64:
		switch v.kind {
		case types.KindInt:
			return types.NewInt(v.ints[i])
		case types.KindTime:
			return types.NewTime(v.ints[i])
		case types.KindInterval:
			return types.NewInterval(v.ints[i])
		default: // KindBool
			return types.NewBool(v.ints[i] != 0)
		}
	case EncFloat:
		return types.NewFloat(v.floats[i])
	case EncDict:
		return types.NewString(v.dict[v.codes[i]])
	case EncStr:
		return types.NewString(v.strs[i])
	}
	return v.vals[i]
}

// MemBytes estimates the vector's heap footprint, for storage accounting.
func (v *Vec) MemBytes() int64 {
	b := int64(len(v.nulls)) * 8
	b += int64(len(v.ints)) * 8
	b += int64(len(v.floats)) * 8
	b += int64(len(v.codes)) * 4
	for _, s := range v.dict {
		b += int64(len(s)) + 16
	}
	for _, s := range v.strs {
		b += int64(len(s)) + 16
	}
	b += int64(len(v.vals)) * 48
	return b
}

// Builder accumulates one column's values and produces an immutable Vec.
// The encoding is decided from what was actually appended: a homogeneous
// ordered/string kind gets its typed array, anything mixed degrades to
// boxed values, and string dictionaries overflow to plain strings past
// DictMaxCard distinct values.
type Builder struct {
	vals []types.Value
}

// NewBuilder returns a builder with capacity for n values.
func NewBuilder(n int) *Builder {
	return &Builder{vals: make([]types.Value, 0, n)}
}

// Append adds one value.
func (b *Builder) Append(v types.Value) { b.vals = append(b.vals, v) }

// Build finalizes the vector. The builder must not be reused after.
func (b *Builder) Build() *Vec {
	vals := b.vals
	n := len(vals)
	v := &Vec{n: n}

	// One pass to find the element kind: homogeneous non-null kind, or
	// KindNull meaning all-null / mixed.
	kind := types.KindNull
	mixed := false
	hasNull := false
	for _, x := range vals {
		if x.IsNull() {
			hasNull = true
			continue
		}
		if kind == types.KindNull {
			kind = x.Kind()
		} else if x.Kind() != kind {
			mixed = true
			break
		}
	}
	if hasNull || kind == types.KindNull {
		v.nulls = make([]uint64, (n+63)/64)
		for i, x := range vals {
			if x.IsNull() {
				v.nulls[i>>6] |= 1 << (uint(i) & 63)
			}
		}
	}
	if mixed {
		v.enc, v.vals = EncAny, vals
		return v
	}
	switch kind {
	case types.KindInt, types.KindTime, types.KindInterval, types.KindBool:
		v.enc, v.kind = EncInt64, kind
		v.ints = make([]int64, n)
		for i, x := range vals {
			if !x.IsNull() {
				v.ints[i] = x.Raw()
			}
		}
	case types.KindFloat:
		v.enc, v.kind = EncFloat, kind
		v.floats = make([]float64, n)
		for i, x := range vals {
			if !x.IsNull() {
				v.floats[i] = x.Float()
			}
		}
	case types.KindString:
		b.buildString(v, kind)
	default:
		// All-null column: a null bitmap is the whole story.
		v.enc, v.kind = EncInt64, types.KindInt
		v.ints = make([]int64, n)
	}
	return v
}

func (b *Builder) buildString(v *Vec, kind types.Kind) {
	vals := b.vals
	n := len(vals)
	index := make(map[string]int32, 64)
	codes := make([]int32, n)
	var dict []string
	for i, x := range vals {
		if x.IsNull() {
			codes[i] = -1
			continue
		}
		s := x.Str()
		c, ok := index[s]
		if !ok {
			if len(dict) >= DictMaxCard {
				// Overflow: too many distinct strings for a dictionary.
				v.enc, v.kind = EncStr, kind
				v.strs = make([]string, n)
				for j, y := range vals {
					if !y.IsNull() {
						v.strs[j] = y.Str()
					}
				}
				return
			}
			c = int32(len(dict))
			dict = append(dict, s)
			index[s] = c
		}
		codes[i] = c
	}
	v.enc, v.kind = EncDict, kind
	v.codes, v.dict = codes, dict
}
