package types

import (
	"testing"
	"testing/quick"
	"time"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null.IsNull() || Null.Kind() != KindNull {
		t.Fatal("zero Value must be NULL")
	}
	if v := NewBool(true); !v.Bool() || v.Kind() != KindBool {
		t.Errorf("NewBool(true) = %v", v)
	}
	if v := NewInt(-42); v.Int() != -42 {
		t.Errorf("NewInt = %v", v)
	}
	if v := NewFloat(2.5); v.Float() != 2.5 {
		t.Errorf("NewFloat = %v", v)
	}
	if v := NewString("abc"); v.Str() != "abc" {
		t.Errorf("NewString = %v", v)
	}
	ts := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	if v := NewTimeFrom(ts); v.TimeUsec() != ts.UnixMicro() {
		t.Errorf("NewTimeFrom = %v", v)
	}
	if v := NewIntervalFrom(5 * time.Minute); v.IntervalUsec() != 5*60*1_000_000 {
		t.Errorf("NewIntervalFrom = %v", v)
	}
}

func TestIntWidensToFloat(t *testing.T) {
	if got := NewInt(3).Float(); got != 3.0 {
		t.Errorf("Int.Float() = %v", got)
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(1), NewFloat(1.5), -1},
		{NewFloat(2.5), NewInt(2), 1},
		{NewFloat(2.0), NewInt(2), 0},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{NewTime(10), NewTime(20), -1},
		{NewInterval(100), NewInterval(100), 0},
		{NewBool(false), NewBool(true), -1},
	}
	for _, c := range cases {
		got, err := Compare(c.a, c.b)
		if err != nil {
			t.Errorf("Compare(%v,%v): %v", c.a, c.b, err)
			continue
		}
		if got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareErrors(t *testing.T) {
	bad := [][2]Value{
		{Null, NewInt(1)},
		{NewInt(1), Null},
		{NewString("x"), NewInt(1)},
		{NewTime(1), NewInterval(1)},
		{NewBool(true), NewInt(1)},
	}
	for _, p := range bad {
		if _, err := Compare(p[0], p[1]); err == nil {
			t.Errorf("Compare(%v,%v) should error", p[0], p[1])
		}
	}
}

func TestArithIntFloat(t *testing.T) {
	mustInt := func(v Value, err error) int64 {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return v.Int()
	}
	if got := mustInt(Arith(OpAdd, NewInt(2), NewInt(3))); got != 5 {
		t.Errorf("2+3 = %d", got)
	}
	if got := mustInt(Arith(OpSub, NewInt(2), NewInt(3))); got != -1 {
		t.Errorf("2-3 = %d", got)
	}
	if got := mustInt(Arith(OpMul, NewInt(2), NewInt(3))); got != 6 {
		t.Errorf("2*3 = %d", got)
	}
	if got := mustInt(Arith(OpDiv, NewInt(7), NewInt(2))); got != 3 {
		t.Errorf("7/2 = %d", got)
	}
	v, err := Arith(OpDiv, NewFloat(1), NewInt(4))
	if err != nil || v.Float() != 0.25 {
		t.Errorf("1.0/4 = %v, %v", v, err)
	}
	if _, err := Arith(OpDiv, NewInt(1), NewInt(0)); err == nil {
		t.Error("integer division by zero should error")
	}
	if _, err := Arith(OpDiv, NewFloat(1), NewFloat(0)); err == nil {
		t.Error("float division by zero should error")
	}
}

func TestArithTimeInterval(t *testing.T) {
	t0 := NewTime(1_000_000)
	t1 := NewTime(4_000_000)
	iv := NewInterval(3_000_000)

	if v, err := Arith(OpSub, t1, t0); err != nil || v.Kind() != KindInterval || v.IntervalUsec() != 3_000_000 {
		t.Errorf("time-time = %v, %v", v, err)
	}
	if v, err := Arith(OpAdd, t0, iv); err != nil || v.Kind() != KindTime || v.TimeUsec() != 4_000_000 {
		t.Errorf("time+interval = %v, %v", v, err)
	}
	if v, err := Arith(OpSub, t1, iv); err != nil || v.TimeUsec() != 1_000_000 {
		t.Errorf("time-interval = %v, %v", v, err)
	}
	if v, err := Arith(OpAdd, iv, t0); err != nil || v.Kind() != KindTime {
		t.Errorf("interval+time = %v, %v", v, err)
	}
	if v, err := Arith(OpAdd, iv, iv); err != nil || v.IntervalUsec() != 6_000_000 {
		t.Errorf("interval+interval = %v, %v", v, err)
	}
	if v, err := Arith(OpMul, iv, NewInt(2)); err != nil || v.IntervalUsec() != 6_000_000 {
		t.Errorf("interval*int = %v, %v", v, err)
	}
	if v, err := Arith(OpMul, NewInt(2), iv); err != nil || v.IntervalUsec() != 6_000_000 {
		t.Errorf("int*interval = %v, %v", v, err)
	}
	if v, err := Arith(OpDiv, iv, NewInt(3)); err != nil || v.IntervalUsec() != 1_000_000 {
		t.Errorf("interval/int = %v, %v", v, err)
	}
	if _, err := Arith(OpAdd, t0, t1); err == nil {
		t.Error("time+time should error")
	}
	if _, err := Arith(OpMul, t0, iv); err == nil {
		t.Error("time*interval should error")
	}
}

func TestArithNullPropagation(t *testing.T) {
	for _, op := range []ArithOp{OpAdd, OpSub, OpMul, OpDiv} {
		if v, err := Arith(op, Null, NewInt(1)); err != nil || !v.IsNull() {
			t.Errorf("NULL %s 1 = %v, %v", op, v, err)
		}
		if v, err := Arith(op, NewInt(1), Null); err != nil || !v.IsNull() {
			t.Errorf("1 %s NULL = %v, %v", op, v, err)
		}
	}
}

func TestTristateTables(t *testing.T) {
	vals := []Tristate{False, True, Unknown}
	andWant := [3][3]Tristate{
		{False, False, False},
		{False, True, Unknown},
		{False, Unknown, Unknown},
	}
	orWant := [3][3]Tristate{
		{False, True, Unknown},
		{True, True, True},
		{Unknown, True, Unknown},
	}
	notWant := [3]Tristate{True, False, Unknown}
	for i, a := range vals {
		for j, b := range vals {
			if got := And(a, b); got != andWant[i][j] {
				t.Errorf("And(%v,%v) = %v, want %v", a, b, got, andWant[i][j])
			}
			if got := Or(a, b); got != orWant[i][j] {
				t.Errorf("Or(%v,%v) = %v, want %v", a, b, got, orWant[i][j])
			}
		}
		if got := Not(a); got != notWant[i] {
			t.Errorf("Not(%v) = %v, want %v", a, got, notWant[i])
		}
	}
}

func TestTruthOfAndBack(t *testing.T) {
	if tr, err := TruthOf(Null); err != nil || tr != Unknown {
		t.Errorf("TruthOf(NULL) = %v, %v", tr, err)
	}
	if tr, err := TruthOf(NewBool(true)); err != nil || tr != True {
		t.Errorf("TruthOf(true) = %v, %v", tr, err)
	}
	if _, err := TruthOf(NewInt(1)); err == nil {
		t.Error("TruthOf(INT) should error")
	}
	if v := ValueOfTristate(Unknown); !v.IsNull() {
		t.Errorf("ValueOfTristate(Unknown) = %v", v)
	}
	if v := ValueOfTristate(False); v.Bool() {
		t.Errorf("ValueOfTristate(False) = %v", v)
	}
}

func TestGroupKeyDistinguishesKindsAndValues(t *testing.T) {
	vals := []Value{
		Null, NewBool(false), NewBool(true), NewInt(0), NewInt(1),
		NewFloat(0), NewFloat(1.5), NewString(""), NewString("0"),
		NewTime(0), NewTime(1), NewInterval(0), NewInterval(1),
	}
	seen := map[string]Value{}
	for _, v := range vals {
		k := v.GroupKey()
		if prev, dup := seen[k]; dup {
			t.Errorf("GroupKey collision between %v (%s) and %v (%s)", prev, prev.Kind(), v, v.Kind())
		}
		seen[k] = v
	}
	if NewInt(7).GroupKey() != NewInt(7).GroupKey() {
		t.Error("GroupKey must be deterministic")
	}
}

func TestGroupKeyMatchesEqualProperty(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := NewInt(a), NewInt(b)
		return (va.GroupKey() == vb.GroupKey()) == va.Equal(vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b string) bool {
		va, vb := NewString(a), NewString(b)
		return (va.GroupKey() == vb.GroupKey()) == va.Equal(vb)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		x, _ := Compare(NewTime(a), NewTime(b))
		y, _ := Compare(NewTime(b), NewTime(a))
		return x == -y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSQLLiteralRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewBool(true), "TRUE"},
		{NewBool(false), "FALSE"},
		{NewInt(7), "7"},
		{NewString("o'neil"), "'o''neil'"},
		{NewInterval(1_000_000), "INTERVAL '1000000' MICROSECOND"},
	}
	for _, c := range cases {
		if got := c.v.SQL(); got != c.want {
			t.Errorf("SQL(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestStringRendering(t *testing.T) {
	if got := NewInterval(90_000_000).String(); got != "1m30s" {
		t.Errorf("interval String = %q", got)
	}
	if got := Null.String(); got != "NULL" {
		t.Errorf("null String = %q", got)
	}
	if got := NewBool(false).String(); got != "false" {
		t.Errorf("bool String = %q", got)
	}
}

func TestAccessorPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	v := NewString("x")
	expectPanic("Bool on string", func() { v.Bool() })
	expectPanic("Int on string", func() { v.Int() })
	expectPanic("Float on string", func() { v.Float() })
	expectPanic("TimeUsec on string", func() { v.TimeUsec() })
	expectPanic("IntervalUsec on string", func() { v.IntervalUsec() })
	expectPanic("Str on int", func() { NewInt(1).Str() })
}

func TestKindStringNames(t *testing.T) {
	want := map[Kind]string{
		KindNull: "NULL", KindBool: "BOOL", KindInt: "INT", KindFloat: "FLOAT",
		KindString: "STRING", KindTime: "TIME", KindInterval: "INTERVAL",
	}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), name)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should render something")
	}
}

func TestTimestampSQLRendering(t *testing.T) {
	v := NewTime(90_061_000_001) // 1970-01-01 01:01:30.000001 - wait: 90061s = 25h1m1s
	got := v.SQL()
	if got != "TIMESTAMP '1970-01-02 01:01:01.000001'" {
		t.Errorf("time SQL = %q", got)
	}
}
