// Package types defines the scalar value model shared by the storage,
// expression, and execution layers: a compact tagged union with SQL
// three-valued logic, plus comparison and arithmetic rules for the type
// combinations the RFID workload needs (notably TIME ± INTERVAL and
// TIME − TIME → INTERVAL).
package types

import (
	"fmt"
	"strconv"
	"time"
)

// Kind enumerates the runtime type of a Value.
type Kind uint8

// Value kinds. Time values are absolute instants stored as microseconds
// since the Unix epoch; Interval values are durations stored as
// microseconds. The paper's rules use windows such as "RANGE BETWEEN 1
// MICROSECOND FOLLOWING AND 10 MINUTE FOLLOWING", so microsecond
// resolution is load-bearing.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindTime
	KindInterval
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	case KindTime:
		return "TIME"
	case KindInterval:
		return "INTERVAL"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is a scalar SQL value. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64 // Bool (0/1), Int, Time (µs since epoch), Interval (µs)
	f    float64
	s    string
}

// Null is the SQL NULL value.
var Null = Value{}

// NewBool returns a BOOL value.
func NewBool(b bool) Value {
	var i int64
	if b {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// NewInt returns an INT value.
func NewInt(i int64) Value { return Value{kind: KindInt, i: i} }

// NewFloat returns a FLOAT value.
func NewFloat(f float64) Value { return Value{kind: KindFloat, f: f} }

// NewString returns a STRING value.
func NewString(s string) Value { return Value{kind: KindString, s: s} }

// NewTime returns a TIME value from microseconds since the Unix epoch.
func NewTime(usec int64) Value { return Value{kind: KindTime, i: usec} }

// NewTimeFrom returns a TIME value from a time.Time.
func NewTimeFrom(t time.Time) Value { return NewTime(t.UnixMicro()) }

// NewInterval returns an INTERVAL value from a duration in microseconds.
func NewInterval(usec int64) Value { return Value{kind: KindInterval, i: usec} }

// NewIntervalFrom returns an INTERVAL value from a time.Duration.
func NewIntervalFrom(d time.Duration) Value { return NewInterval(d.Microseconds()) }

// Kind reports the runtime kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Bool returns the boolean payload. It panics unless v is a BOOL.
func (v Value) Bool() bool {
	if v.kind != KindBool {
		panic("types: Bool() on " + v.kind.String())
	}
	return v.i != 0
}

// Int returns the integer payload. It panics unless v is an INT.
func (v Value) Int() int64 {
	if v.kind != KindInt {
		panic("types: Int() on " + v.kind.String())
	}
	return v.i
}

// Float returns the float payload, widening INT. It panics otherwise.
func (v Value) Float() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	}
	panic("types: Float() on " + v.kind.String())
}

// Str returns the string payload. It panics unless v is a STRING.
func (v Value) Str() string {
	if v.kind != KindString {
		panic("types: Str() on " + v.kind.String())
	}
	return v.s
}

// TimeUsec returns the TIME payload in microseconds since the epoch.
func (v Value) TimeUsec() int64 {
	if v.kind != KindTime {
		panic("types: TimeUsec() on " + v.kind.String())
	}
	return v.i
}

// IntervalUsec returns the INTERVAL payload in microseconds.
func (v Value) IntervalUsec() int64 {
	if v.kind != KindInterval {
		panic("types: IntervalUsec() on " + v.kind.String())
	}
	return v.i
}

// Raw returns the integer payload for ordered kinds (BOOL, INT, TIME,
// INTERVAL) without checking which one; used by tight executor loops that
// have already validated kinds against the schema.
func (v Value) Raw() int64 { return v.i }

// String renders v for diagnostics and result printing.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindTime:
		return time.UnixMicro(v.i).UTC().Format("2006-01-02 15:04:05.000000")
	case KindInterval:
		return (time.Duration(v.i) * time.Microsecond).String()
	}
	return "?"
}

// SQL renders v as a SQL literal accepted by the parser.
func (v Value) SQL() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.i != 0 {
			return "TRUE"
		}
		return "FALSE"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return quoteSQLString(v.s)
	case KindTime:
		return "TIMESTAMP '" + time.UnixMicro(v.i).UTC().Format("2006-01-02 15:04:05.000000") + "'"
	case KindInterval:
		return "INTERVAL '" + strconv.FormatInt(v.i, 10) + "' MICROSECOND"
	}
	return "NULL"
}

func quoteSQLString(s string) string {
	out := make([]byte, 0, len(s)+2)
	out = append(out, '\'')
	for i := 0; i < len(s); i++ {
		if s[i] == '\'' {
			out = append(out, '\'', '\'')
		} else {
			out = append(out, s[i])
		}
	}
	return string(append(out, '\''))
}

// AppendGroupKey appends v's group key (the same encoding GroupKey
// returns) to b and returns the extended slice. Operator hot loops use it
// with a reused scratch buffer so composite keys cost zero allocations
// per row; GroupKey remains for callers that want a map-ready string.
func (v Value) AppendGroupKey(b []byte) []byte {
	switch v.kind {
	case KindNull:
		return append(b, 0x00, 'n')
	case KindBool:
		if v.i != 0 {
			return append(b, 0x00, 't')
		}
		return append(b, 0x00, 'f')
	case KindInt:
		return strconv.AppendInt(append(b, 0x00, 'i'), v.i, 10)
	case KindFloat:
		return strconv.AppendFloat(append(b, 0x00, 'd'), v.f, 'x', -1, 64)
	case KindString:
		return append(append(b, 0x00, 's'), v.s...)
	case KindTime:
		return strconv.AppendInt(append(b, 0x00, 'T'), v.i, 10)
	case KindInterval:
		return strconv.AppendInt(append(b, 0x00, 'I'), v.i, 10)
	}
	return append(b, 0x00, '?')
}

// Equal reports strict equality of kind and payload. NULLs are equal to
// each other here (Go-level identity, not SQL semantics); use Compare for
// SQL comparison semantics.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindFloat:
		return v.f == o.f
	case KindString:
		return v.s == o.s
	default:
		return v.i == o.i
	}
}

// GroupKey returns a string usable as a hash-map key such that two values
// have the same key iff they are Equal. NULL has its own key distinct from
// every non-null value.
func (v Value) GroupKey() string {
	switch v.kind {
	case KindNull:
		return "\x00n"
	case KindBool:
		if v.i != 0 {
			return "\x00t"
		}
		return "\x00f"
	case KindInt:
		return "\x00i" + strconv.FormatInt(v.i, 10)
	case KindFloat:
		return "\x00d" + strconv.FormatFloat(v.f, 'x', -1, 64)
	case KindString:
		return "\x00s" + v.s
	case KindTime:
		return "\x00T" + strconv.FormatInt(v.i, 10)
	case KindInterval:
		return "\x00I" + strconv.FormatInt(v.i, 10)
	}
	return "\x00?"
}
