package types

import "fmt"

// Compare orders two non-null values of comparable kinds. It returns
// -1, 0, or +1, and an error when the kinds are not mutually comparable.
// INT and FLOAT compare numerically against each other; TIME compares with
// TIME; INTERVAL with INTERVAL; STRING with STRING (byte order, which is
// what the workload's fixed-width GLNs and EPC identifiers need); BOOL with
// BOOL (false < true). Callers must handle NULL before calling.
func Compare(a, b Value) (int, error) {
	if a.kind == KindNull || b.kind == KindNull {
		return 0, fmt.Errorf("types: Compare on NULL")
	}
	switch {
	case a.kind == KindInt && b.kind == KindInt:
		return cmpInt(a.i, b.i), nil
	case (a.kind == KindInt || a.kind == KindFloat) && (b.kind == KindInt || b.kind == KindFloat):
		af, bf := a.Float(), b.Float()
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		}
		return 0, nil
	case a.kind == b.kind:
		switch a.kind {
		case KindString:
			switch {
			case a.s < b.s:
				return -1, nil
			case a.s > b.s:
				return 1, nil
			}
			return 0, nil
		case KindTime, KindInterval, KindBool:
			return cmpInt(a.i, b.i), nil
		}
	}
	return 0, fmt.Errorf("types: cannot compare %s with %s", a.kind, b.kind)
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// ArithOp identifies a binary arithmetic operator.
type ArithOp uint8

// Arithmetic operators.
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
)

func (op ArithOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	}
	return "?"
}

// Arith applies op to a and b with SQL NULL propagation: if either operand
// is NULL the result is NULL. Supported kind combinations:
//
//	INT∘INT → INT (DIV is integer division; /0 is an error)
//	numeric∘numeric with a FLOAT operand → FLOAT
//	TIME − TIME → INTERVAL
//	TIME ± INTERVAL → TIME
//	INTERVAL ± INTERVAL → INTERVAL
//	INTERVAL * INT, INT * INTERVAL → INTERVAL
//	INTERVAL / INT → INTERVAL
func Arith(op ArithOp, a, b Value) (Value, error) {
	if a.kind == KindNull || b.kind == KindNull {
		return Null, nil
	}
	switch {
	case a.kind == KindInt && b.kind == KindInt:
		switch op {
		case OpAdd:
			return NewInt(a.i + b.i), nil
		case OpSub:
			return NewInt(a.i - b.i), nil
		case OpMul:
			return NewInt(a.i * b.i), nil
		case OpDiv:
			if b.i == 0 {
				return Null, fmt.Errorf("types: division by zero")
			}
			return NewInt(a.i / b.i), nil
		}
	case (a.kind == KindInt || a.kind == KindFloat) && (b.kind == KindInt || b.kind == KindFloat):
		af, bf := a.Float(), b.Float()
		switch op {
		case OpAdd:
			return NewFloat(af + bf), nil
		case OpSub:
			return NewFloat(af - bf), nil
		case OpMul:
			return NewFloat(af * bf), nil
		case OpDiv:
			if bf == 0 {
				return Null, fmt.Errorf("types: division by zero")
			}
			return NewFloat(af / bf), nil
		}
	case a.kind == KindTime && b.kind == KindTime && op == OpSub:
		return NewInterval(a.i - b.i), nil
	case a.kind == KindTime && b.kind == KindInterval:
		switch op {
		case OpAdd:
			return NewTime(a.i + b.i), nil
		case OpSub:
			return NewTime(a.i - b.i), nil
		}
	case a.kind == KindInterval && b.kind == KindTime && op == OpAdd:
		return NewTime(a.i + b.i), nil
	case a.kind == KindInterval && b.kind == KindInterval:
		switch op {
		case OpAdd:
			return NewInterval(a.i + b.i), nil
		case OpSub:
			return NewInterval(a.i - b.i), nil
		}
	case a.kind == KindInterval && b.kind == KindInt:
		switch op {
		case OpMul:
			return NewInterval(a.i * b.i), nil
		case OpDiv:
			if b.i == 0 {
				return Null, fmt.Errorf("types: division by zero")
			}
			return NewInterval(a.i / b.i), nil
		}
	case a.kind == KindInt && b.kind == KindInterval && op == OpMul:
		return NewInterval(a.i * b.i), nil
	}
	return Null, fmt.Errorf("types: unsupported arithmetic %s %s %s", a.kind, op, b.kind)
}

// Tristate is a SQL three-valued truth value.
type Tristate uint8

// Three-valued logic constants.
const (
	False Tristate = iota
	True
	Unknown
)

func (t Tristate) String() string {
	switch t {
	case False:
		return "false"
	case True:
		return "true"
	}
	return "unknown"
}

// TristateOf lifts a Go bool into a Tristate.
func TristateOf(b bool) Tristate {
	if b {
		return True
	}
	return False
}

// And is 3VL conjunction.
func And(a, b Tristate) Tristate {
	switch {
	case a == False || b == False:
		return False
	case a == True && b == True:
		return True
	}
	return Unknown
}

// Or is 3VL disjunction.
func Or(a, b Tristate) Tristate {
	switch {
	case a == True || b == True:
		return True
	case a == False && b == False:
		return False
	}
	return Unknown
}

// Not is 3VL negation.
func Not(a Tristate) Tristate {
	switch a {
	case True:
		return False
	case False:
		return True
	}
	return Unknown
}

// TruthOf converts a BOOL or NULL value to a Tristate; any other kind is an
// error.
func TruthOf(v Value) (Tristate, error) {
	switch v.kind {
	case KindNull:
		return Unknown, nil
	case KindBool:
		return TristateOf(v.i != 0), nil
	}
	return Unknown, fmt.Errorf("types: %s is not a truth value", v.kind)
}

// ValueOfTristate converts a Tristate back to a SQL value (Unknown → NULL).
func ValueOfTristate(t Tristate) Value {
	switch t {
	case True:
		return NewBool(true)
	case False:
		return NewBool(false)
	}
	return Null
}
