// Package rulegen compiles extended SQL-TS cleansing rules into SQL/OLAP
// templates (§4.2 of the paper): each pattern reference becomes scalar
// window aggregates over the (CLUSTER BY, SEQUENCE BY) sequence order —
// singleton references as ROWS-frame aggregates at their fixed relative
// position, set references as an existential CASE flag over a RANGE/ROWS
// frame derived from the rule's sequence-key constraints — and the ACTION
// becomes a filter (DELETE/KEEP, with SQL NULL handled so an undecidable
// condition never deletes) or CASE projections (MODIFY).
//
// A compiled template builds real SQL AST over any input relation, so the
// rewrite engine can chain cleansing stages and splice them into user
// queries as ordinary SQL text.
package rulegen

import (
	"fmt"
	"strings"

	"repro/internal/sqlast"
	"repro/internal/sqlts"
	"repro/internal/types"
)

// microsecond is the smallest sequence-key distance; the paper uses a
// "1 microsecond following" bound to exclude the current row from RANGE
// frames.
const microsecond = int64(1)

// Template is a compiled cleansing rule ready to instantiate over inputs.
type Template struct {
	Rule *sqlts.Rule

	winItems []sqlast.SelectItem // window aggregate select items
	cond     sqlast.Expr         // condition over input cols + window cols
	// assignments with transformed values (MODIFY only).
	assigns []sqlts.Assignment
}

// Compile analyzes the rule pattern and condition and prepares the
// SQL/OLAP pieces.
func Compile(rule *sqlts.Rule) (*Template, error) {
	if err := rule.Validate(); err != nil {
		return nil, err
	}
	c := &compiler{rule: rule, t: &Template{Rule: rule}}
	if err := c.run(); err != nil {
		return nil, err
	}
	return c.t, nil
}

type compiler struct {
	rule *sqlts.Rule
	t    *Template

	flagCount int
	// window column name per (ref, col) for singletons.
	singletonCols map[string]string
}

func (c *compiler) run() error {
	r := c.rule
	c.singletonCols = map[string]string{}
	tIdx := r.TargetIndex()

	// Split the condition: top-level sequence-key constraints on set
	// references define their frames; everything else survives into the
	// rewritten condition.
	frames := map[string]*setFrame{}
	for _, ref := range r.Pattern {
		if ref.Set {
			idx := c.refIndex(ref.Name)
			frames[ref.Name] = &setFrame{after: idx > tIdx}
		}
	}
	var residual []sqlast.Expr
	for _, conj := range sqlast.Conjuncts(r.Cond) {
		if name, lo, hi, ok := c.skeyConstraint(conj); ok {
			if f, isSet := frames[name]; isSet {
				f.tighten(lo, hi)
				continue
			}
			// Sequence-key constraints on singletons stay in the
			// condition (their position already fixes the frame).
		}
		residual = append(residual, conj)
	}

	// Transform the residual condition: singleton refs → window columns,
	// set-ref subexpressions → existential flags.
	cond, err := c.transform(sqlast.And(residual...), frames)
	if err != nil {
		return err
	}
	if cond == nil {
		cond = sqlast.Lit(types.NewBool(true))
	}
	c.t.cond = cond

	// Transform MODIFY values.
	for _, a := range r.Assignments {
		v, err := c.transform(a.Value, frames)
		if err != nil {
			return err
		}
		c.t.assigns = append(c.t.assigns, sqlts.Assignment{Column: strings.ToLower(a.Column), Value: v})
	}
	return nil
}

func (c *compiler) refIndex(name string) int {
	for i, ref := range c.rule.Pattern {
		if ref.Name == name {
			return i
		}
	}
	return -1
}

// setFrame accumulates sequence-key distance bounds for a set reference,
// in sequence-key units relative to the target row. after=true means the
// set follows the target.
type setFrame struct {
	after bool
	// loOff/hiOff: inclusive distance bounds (positive numbers); nil =
	// unbounded / not constrained.
	loOff, hiOff *int64
	// flags built over this frame.
	flags []flagDef
}

type flagDef struct {
	name string
	pred sqlast.Expr // over the set row's columns (bare names)
}

func (f *setFrame) tighten(lo, hi *int64) {
	// lo/hi are distance bounds |S.skey - T.skey| ∈ [lo, hi] expressed as
	// offsets in the frame's direction.
	if lo != nil && (f.loOff == nil || *lo > *f.loOff) {
		v := *lo
		f.loOff = &v
	}
	if hi != nil && (f.hiOff == nil || *hi < *f.hiOff) {
		v := *hi
		f.hiOff = &v
	}
}

// SignedSkeyBounds recognizes a conjunct of the form "X.skey ⊙ T.skey ± c"
// (in any algebraic arrangement) between one pattern reference X and the
// rule's target T, and normalizes it to inclusive bounds on the signed
// sequence-key distance d = X.skey − T.skey (in microseconds). The rewrite
// engine's transitivity analysis (§5.2 of the paper) and the template
// compiler's frame construction both build on this.
func SignedSkeyBounds(rule *sqlts.Rule, e sqlast.Expr) (ref string, dLo, dHi *int64, ok bool) {
	bin, isBin := e.(*sqlast.Bin)
	if !isBin || !bin.Op.IsComparison() || bin.Op == sqlast.OpEq || bin.Op == sqlast.OpNe {
		return "", nil, nil, false
	}
	skey := rule.SequenceBy
	target := rule.Target
	lhs, ok1 := linearForm(bin.L, skey)
	rhs, ok2 := linearForm(bin.R, skey)
	if !ok1 || !ok2 {
		return "", nil, nil, false
	}
	// diff = lhs - rhs; comparison becomes diff ⊙ 0.
	diff := lhs.sub(rhs)
	// Expect coefficients {X:+1, T:-1} or {X:-1, T:+1}.
	var xName string
	var xCoef int64
	for name, coef := range diff.coef {
		if coef == 0 {
			continue
		}
		if name == target {
			continue
		}
		if xName != "" {
			return "", nil, nil, false
		}
		xName, xCoef = name, coef
	}
	if xName == "" || diff.coef[target] != -xCoef || abs64(xCoef) != 1 {
		return "", nil, nil, false
	}
	if _, exists := rule.RefByName(xName); !exists {
		return "", nil, nil, false
	}
	// Normalize to: X.skey - T.skey ⊙' k.
	op := bin.Op
	k := -diff.k
	if xCoef == -1 {
		op = op.Flip()
		k = -k
	}
	switch op {
	case sqlast.OpLt:
		v := k - microsecond
		dHi = &v
	case sqlast.OpLe:
		v := k
		dHi = &v
	case sqlast.OpGt:
		v := k + microsecond
		dLo = &v
	case sqlast.OpGe:
		v := k
		dLo = &v
	}
	return xName, dLo, dHi, true
}

// skeyConstraint adapts SignedSkeyBounds to pattern-direction distance
// bounds for window-frame construction: for a following reference the
// frame offset is d itself; for a preceding reference it is −d.
func (c *compiler) skeyConstraint(e sqlast.Expr) (string, *int64, *int64, bool) {
	xName, dLo, dHi, ok := SignedSkeyBounds(c.rule, e)
	if !ok {
		return "", nil, nil, false
	}
	idx := c.refIndex(xName)
	if idx < 0 {
		return "", nil, nil, false
	}
	if idx > c.rule.TargetIndex() {
		return xName, dLo, dHi, true
	}
	// preceding: distance = -d, so bounds swap and negate.
	var lo, hi *int64
	if dHi != nil {
		v := -*dHi
		lo = &v
	}
	if dLo != nil {
		v := -*dLo
		hi = &v
	}
	return xName, lo, hi, true
}

// linear is a linear combination of per-reference sequence keys plus a
// constant (microseconds).
type linear struct {
	coef map[string]int64
	k    int64
}

func (l linear) sub(o linear) linear {
	out := linear{coef: map[string]int64{}, k: l.k - o.k}
	for n, v := range l.coef {
		out.coef[n] = v
	}
	for n, v := range o.coef {
		out.coef[n] -= v
	}
	return out
}

// linearForm parses an expression as ±ref.skey terms plus interval/int
// constants.
func linearForm(e sqlast.Expr, skey string) (linear, bool) {
	out := linear{coef: map[string]int64{}}
	ok := linAccum(e, skey, 1, &out)
	return out, ok
}

func linAccum(e sqlast.Expr, skey string, sign int64, out *linear) bool {
	switch e := e.(type) {
	case *sqlast.ColRef:
		if !strings.EqualFold(e.Name, skey) || e.Table == "" {
			return false
		}
		out.coef[strings.ToLower(e.Table)] += sign
		return true
	case *sqlast.Const:
		switch e.V.Kind() {
		case types.KindInterval:
			out.k += sign * e.V.IntervalUsec()
		case types.KindInt:
			out.k += sign * e.V.Int()
		case types.KindTime:
			out.k += sign * e.V.TimeUsec()
		default:
			return false
		}
		return true
	case *sqlast.Bin:
		switch e.Op {
		case sqlast.OpAdd:
			return linAccum(e.L, skey, sign, out) && linAccum(e.R, skey, sign, out)
		case sqlast.OpSub:
			return linAccum(e.L, skey, sign, out) && linAccum(e.R, skey, -sign, out)
		}
		return false
	case *sqlast.Un:
		if e.Op == sqlast.OpNeg {
			return linAccum(e.E, skey, -sign, out)
		}
		return false
	}
	return false
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// transform rewrites an expression so it evaluates over the windowed input
// row: target columns become bare references, singleton-reference columns
// become their window columns, and set-reference subexpressions become
// existential flag tests.
func (c *compiler) transform(e sqlast.Expr, frames map[string]*setFrame) (sqlast.Expr, error) {
	if e == nil {
		return nil, nil
	}
	refs := c.refsIn(e)
	var setRef string
	others := 0
	for name := range refs {
		if ref, ok := c.rule.RefByName(name); ok && ref.Set {
			if setRef != "" && setRef != name {
				return nil, fmt.Errorf("rulegen: rule %s: expression mixes two set references: %s", c.rule.Name, sqlast.ExprSQL(e))
			}
			setRef = name
		} else {
			others++
		}
	}
	if setRef == "" {
		return c.substSingletons(e)
	}
	// COUNT(<pred over the set ref>) — the paper's §4.3 extension: SQL/OLAP
	// is richer than SQL-TS, and swapping the existential max() for count()
	// lets a rule demand how many set rows must match. The count call
	// compiles to a SUM over the frame and participates in ordinary
	// comparisons ("COUNT(B.reader = 'readerX') >= 2").
	if fc, ok := e.(*sqlast.FuncCall); ok && strings.EqualFold(fc.Name, "count") && len(fc.Args) == 1 {
		if others == 0 {
			return c.makeCountFlag(setRef, fc.Args[0], frames[setRef])
		}
		return nil, fmt.Errorf("rulegen: rule %s: COUNT over a set reference may not mix in other references: %s",
			c.rule.Name, sqlast.ExprSQL(e))
	}
	if others == 0 && !containsSetCount(e, setRef, c.rule) {
		// Whole subexpression is about the set reference: one existential
		// flag with the subexpression as the per-row predicate.
		return c.makeFlag(setRef, e, frames[setRef])
	}
	// An expression *containing* a COUNT-over-set call (e.g. the
	// comparison around it) decomposes structurally so the call itself
	// becomes the window column.
	if bin, ok := e.(*sqlast.Bin); ok && containsSetCount(e, setRef, c.rule) {
		l, err := c.transform(bin.L, frames)
		if err != nil {
			return nil, err
		}
		r, err := c.transform(bin.R, frames)
		if err != nil {
			return nil, err
		}
		return &sqlast.Bin{Op: bin.Op, L: l, R: r}, nil
	}
	// Mixed: only decomposable boolean structure can be split.
	if bin, ok := e.(*sqlast.Bin); ok && (bin.Op == sqlast.OpAnd || bin.Op == sqlast.OpOr) {
		l, err := c.transform(bin.L, frames)
		if err != nil {
			return nil, err
		}
		r, err := c.transform(bin.R, frames)
		if err != nil {
			return nil, err
		}
		return &sqlast.Bin{Op: bin.Op, L: l, R: r}, nil
	}
	if un, ok := e.(*sqlast.Un); ok && un.Op == sqlast.OpNot {
		inner, err := c.transform(un.E, frames)
		if err != nil {
			return nil, err
		}
		return &sqlast.Un{Op: sqlast.OpNot, E: inner}, nil
	}
	return nil, fmt.Errorf(
		"rulegen: rule %s: condition %s mixes set reference %s with other references in one comparison; only sequence-key distance constraints may relate a set reference to the target",
		c.rule.Name, sqlast.ExprSQL(e), setRef)
}

func (c *compiler) refsIn(e sqlast.Expr) map[string]bool {
	out := map[string]bool{}
	sqlast.VisitExprs(e, func(x sqlast.Expr) {
		if cr, ok := x.(*sqlast.ColRef); ok && cr.Table != "" {
			out[strings.ToLower(cr.Table)] = true
		}
	})
	return out
}

// substSingletons replaces target refs with bare columns and non-target
// singleton refs with their window columns.
func (c *compiler) substSingletons(e sqlast.Expr) (sqlast.Expr, error) {
	var badRef error
	out := sqlast.MapColRefs(sqlast.CloneExpr(e), func(cr *sqlast.ColRef) sqlast.Expr {
		refName := strings.ToLower(cr.Table)
		if refName == c.rule.Target {
			return &sqlast.ColRef{Name: strings.ToLower(cr.Name)}
		}
		ref, ok := c.rule.RefByName(refName)
		if !ok || ref.Set {
			badRef = fmt.Errorf("rulegen: rule %s: unexpected reference %s", c.rule.Name, cr.Table)
			return cr
		}
		return &sqlast.ColRef{Name: c.singletonCol(refName, strings.ToLower(cr.Name))}
	})
	if badRef != nil {
		return nil, badRef
	}
	return out, nil
}

// singletonCol returns (allocating on first use) the window-aggregate
// column carrying ref's column at its fixed offset from the target.
func (c *compiler) singletonCol(refName, col string) string {
	key := refName + "." + col
	if name, ok := c.singletonCols[key]; ok {
		return name
	}
	name := fmt.Sprintf("__%s_%s_%s", c.rule.Name, refName, col)
	c.singletonCols[key] = name

	d := c.refIndex(refName) - c.rule.TargetIndex()
	frame := &sqlast.Frame{Unit: sqlast.FrameRows}
	off := sqlast.Lit(types.NewInt(int64(abs64(int64(d)))))
	if d < 0 {
		frame.Start = sqlast.FrameBound{Type: sqlast.BoundPreceding, Offset: off}
		frame.End = sqlast.FrameBound{Type: sqlast.BoundPreceding, Offset: off}
	} else {
		frame.Start = sqlast.FrameBound{Type: sqlast.BoundFollowing, Offset: off}
		frame.End = sqlast.FrameBound{Type: sqlast.BoundFollowing, Offset: off}
	}
	c.t.winItems = append(c.t.winItems, sqlast.SelectItem{
		Expr: &sqlast.WindowExpr{
			Func:      "max",
			Arg:       &sqlast.ColRef{Name: col},
			Partition: []sqlast.Expr{&sqlast.ColRef{Name: c.rule.ClusterBy}},
			Order:     []sqlast.OrderItem{{Expr: &sqlast.ColRef{Name: c.rule.SequenceBy}}},
			Frame:     frame,
		},
		Alias: name,
	})
	return name
}

// containsSetCount reports whether e contains a COUNT(pred) call whose
// predicate references only the given set reference.
func containsSetCount(e sqlast.Expr, setRef string, rule *sqlts.Rule) bool {
	found := false
	sqlast.VisitExprs(e, func(x sqlast.Expr) {
		fc, ok := x.(*sqlast.FuncCall)
		if !ok || !strings.EqualFold(fc.Name, "count") || len(fc.Args) != 1 {
			return
		}
		refs := map[string]bool{}
		sqlast.VisitExprs(fc.Args[0], func(y sqlast.Expr) {
			if cr, ok := y.(*sqlast.ColRef); ok && cr.Table != "" {
				refs[strings.ToLower(cr.Table)] = true
			}
		})
		if len(refs) == 1 && refs[setRef] {
			found = true
		}
	})
	_ = rule
	return found
}

// makeCountFlag builds a counting window column for a set-reference
// predicate: SUM(CASE WHEN pred THEN 1 ELSE 0 END) over the set's frame.
// COALESCE pins empty frames to 0 so comparisons behave.
func (c *compiler) makeCountFlag(setRef string, pred sqlast.Expr, f *setFrame) (sqlast.Expr, error) {
	var badRef error
	rowPred := sqlast.MapColRefs(sqlast.CloneExpr(pred), func(cr *sqlast.ColRef) sqlast.Expr {
		if !strings.EqualFold(cr.Table, setRef) {
			badRef = fmt.Errorf("rulegen: rule %s: non-set reference inside COUNT predicate: %s", c.rule.Name, cr.Table)
			return cr
		}
		return &sqlast.ColRef{Name: strings.ToLower(cr.Name)}
	})
	if badRef != nil {
		return nil, badRef
	}
	name := fmt.Sprintf("__%s_cnt_%d", c.rule.Name, c.flagCount)
	c.flagCount++
	c.t.winItems = append(c.t.winItems, sqlast.SelectItem{
		Expr: &sqlast.WindowExpr{
			Func: "sum",
			Arg: &sqlast.Case{
				Whens: []sqlast.When{{Cond: rowPred, Then: sqlast.Lit(types.NewInt(1))}},
				Else:  sqlast.Lit(types.NewInt(0)),
			},
			Partition: []sqlast.Expr{&sqlast.ColRef{Name: c.rule.ClusterBy}},
			Order:     []sqlast.OrderItem{{Expr: &sqlast.ColRef{Name: c.rule.SequenceBy}}},
			Frame:     c.frameFor(f),
		},
		Alias: name,
	})
	return &sqlast.FuncCall{Name: "coalesce", Args: []sqlast.Expr{
		&sqlast.ColRef{Name: name}, sqlast.Lit(types.NewInt(0)),
	}}, nil
}

// makeFlag builds the existential flag for a set-reference predicate:
// max(CASE WHEN pred THEN 1 ELSE 0 END) over the set's frame, compared to 1.
func (c *compiler) makeFlag(setRef string, pred sqlast.Expr, f *setFrame) (sqlast.Expr, error) {
	// The per-row predicate sees the set row itself: bare column names.
	var badRef error
	rowPred := sqlast.MapColRefs(sqlast.CloneExpr(pred), func(cr *sqlast.ColRef) sqlast.Expr {
		if !strings.EqualFold(cr.Table, setRef) {
			badRef = fmt.Errorf("rulegen: rule %s: non-set reference inside set predicate: %s", c.rule.Name, cr.Table)
			return cr
		}
		return &sqlast.ColRef{Name: strings.ToLower(cr.Name)}
	})
	if badRef != nil {
		return nil, badRef
	}
	name := fmt.Sprintf("__%s_flag_%d", c.rule.Name, c.flagCount)
	c.flagCount++
	f.flags = append(f.flags, flagDef{name: name, pred: rowPred})

	frame := c.frameFor(f)
	c.t.winItems = append(c.t.winItems, sqlast.SelectItem{
		Expr: &sqlast.WindowExpr{
			Func: "max",
			Arg: &sqlast.Case{
				Whens: []sqlast.When{{Cond: rowPred, Then: sqlast.Lit(types.NewInt(1))}},
				Else:  sqlast.Lit(types.NewInt(0)),
			},
			Partition: []sqlast.Expr{&sqlast.ColRef{Name: c.rule.ClusterBy}},
			Order:     []sqlast.OrderItem{{Expr: &sqlast.ColRef{Name: c.rule.SequenceBy}}},
			Frame:     frame,
		},
		Alias: name,
	})
	return sqlast.Cmp(sqlast.OpEq, &sqlast.ColRef{Name: name}, sqlast.Lit(types.NewInt(1))), nil
}

// frameFor translates accumulated distance bounds into a window frame.
// With sequence-key constraints the frame is a RANGE over the key
// (excluding the current row via a 1-microsecond offset, as in the
// paper's has_readerX_after example); without any, it is a ROWS frame to
// the partition edge, which is strictly positional.
func (c *compiler) frameFor(f *setFrame) *sqlast.Frame {
	if f.loOff == nil && f.hiOff == nil {
		fr := &sqlast.Frame{Unit: sqlast.FrameRows}
		one := sqlast.Lit(types.NewInt(1))
		if f.after {
			fr.Start = sqlast.FrameBound{Type: sqlast.BoundFollowing, Offset: one}
			fr.End = sqlast.FrameBound{Type: sqlast.BoundUnboundedFollowing}
		} else {
			fr.Start = sqlast.FrameBound{Type: sqlast.BoundUnboundedPreceding}
			fr.End = sqlast.FrameBound{Type: sqlast.BoundPreceding, Offset: one}
		}
		return fr
	}
	lo := microsecond // strictly before/after the current row
	if f.loOff != nil && *f.loOff > lo {
		lo = *f.loOff
	}
	fr := &sqlast.Frame{Unit: sqlast.FrameRange}
	loLit := sqlast.Lit(types.NewInterval(lo))
	if f.after {
		fr.Start = sqlast.FrameBound{Type: sqlast.BoundFollowing, Offset: loLit}
		if f.hiOff != nil {
			fr.End = sqlast.FrameBound{Type: sqlast.BoundFollowing, Offset: sqlast.Lit(types.NewInterval(*f.hiOff))}
		} else {
			fr.End = sqlast.FrameBound{Type: sqlast.BoundUnboundedFollowing}
		}
	} else {
		if f.hiOff != nil {
			fr.Start = sqlast.FrameBound{Type: sqlast.BoundPreceding, Offset: sqlast.Lit(types.NewInterval(*f.hiOff))}
		} else {
			fr.Start = sqlast.FrameBound{Type: sqlast.BoundUnboundedPreceding}
		}
		fr.End = sqlast.FrameBound{Type: sqlast.BoundPreceding, Offset: loLit}
	}
	return fr
}
