package rulegen

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/sqlts"
	"repro/internal/storage"
	"repro/internal/types"
)

// read is one RFID read for building test sequences.
type read struct {
	epc    string
	minute int64 // rtime in minutes from epoch
	loc    string
	reader string
}

func readsTable(t *testing.T, name string, reads []read) *storage.Table {
	t.Helper()
	tab := storage.NewTable(name, schema.New(
		schema.Col(name, "epc", types.KindString),
		schema.Col(name, "rtime", types.KindTime),
		schema.Col(name, "biz_loc", types.KindString),
		schema.Col(name, "reader", types.KindString),
	))
	for _, r := range reads {
		tab.Append(schema.Row{
			types.NewString(r.epc), types.NewTime(r.minute * 60_000_000),
			types.NewString(r.loc), types.NewString(r.reader),
		})
	}
	tab.Analyze()
	return tab
}

// applyRules compiles and chains the rules over the named table and
// returns the surviving (epc, minute, loc) triples in sequence order.
func applyRules(t *testing.T, db *catalog.Database, tableName string, ruleSrcs ...string) []read {
	t.Helper()
	tab, ok := db.Table(tableName)
	if !ok {
		t.Fatalf("no table %s", tableName)
	}
	cols := make([]string, 0, tab.Schema.Len())
	for _, c := range tab.Schema.Columns {
		cols = append(cols, c.Name)
	}
	var input sqlast.TableExpr = &sqlast.TableName{Name: tableName}
	for _, src := range ruleSrcs {
		rule, err := sqlts.Parse(src)
		if err != nil {
			t.Fatalf("parse rule: %v", err)
		}
		tmpl, err := Compile(rule)
		if err != nil {
			t.Fatalf("compile rule %s: %v", rule.Name, err)
		}
		stmt, outCols, err := tmpl.Build(input, cols)
		if err != nil {
			t.Fatalf("build rule %s: %v", rule.Name, err)
		}
		input = &sqlast.SubqueryTable{Query: stmt, Alias: "__d_" + rule.Name}
		cols = outCols
	}
	final := &sqlast.SelectStmt{
		Items: []sqlast.SelectItem{
			{Expr: sqlast.Col("", "epc")}, {Expr: sqlast.Col("", "rtime")}, {Expr: sqlast.Col("", "biz_loc")},
		},
		From:    []sqlast.TableExpr{input},
		OrderBy: []sqlast.OrderItem{{Expr: sqlast.Col("", "epc")}, {Expr: sqlast.Col("", "rtime")}},
	}
	node, err := plan.New(db).Plan(final)
	if err != nil {
		t.Fatalf("plan: %v\nsql: %s", err, sqlast.SQL(final))
	}
	res, err := exec.Run(exec.NewCtx(), node)
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	out := make([]read, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = read{epc: r[0].Str(), minute: r[1].TimeUsec() / 60_000_000, loc: r[2].Str()}
	}
	return out
}

func wantReads(t *testing.T, got []read, want []read) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d reads, want %d\ngot:  %+v\nwant: %+v", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("read %d = %+v, want %+v\nall: %+v", i, got[i], want[i], got)
		}
	}
}

const (
	dupRule = `DEFINE duplicate ON reads
		AS (A, B) WHERE A.biz_loc = B.biz_loc AND B.rtime - A.rtime < 5 mins
		ACTION DELETE B`
	readerRule = `DEFINE reader ON reads
		AS (A, *B) WHERE B.reader = 'readerX' AND B.rtime - A.rtime < 10 mins
		ACTION DELETE A`
	replacingRule = `DEFINE replacing ON reads
		AS (A, B) WHERE A.biz_loc = 'loc2' AND B.biz_loc = 'locA' AND B.rtime - A.rtime < 20 mins
		ACTION MODIFY A.biz_loc = 'loc1'`
	cycleRule = `DEFINE cycle ON reads
		AS (A, B, C) WHERE A.biz_loc = C.biz_loc AND A.biz_loc <> B.biz_loc
		ACTION DELETE B`
)

func dbWith(t *testing.T, tables ...*storage.Table) *catalog.Database {
	t.Helper()
	db := catalog.NewDatabase()
	for _, tab := range tables {
		if err := db.AddTable(tab); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// Example 1 of §4.3: duplicates within t1 minutes are removed, keeping the
// first read.
func TestDuplicateRuleSemantics(t *testing.T) {
	db := dbWith(t, readsTable(t, "reads", []read{
		{"e1", 0, "locA", "r1"},
		{"e1", 2, "locA", "r1"},  // duplicate of previous (2 < 5 min): deleted
		{"e1", 10, "locB", "r1"}, // location change: kept
		{"e1", 30, "locB", "r1"}, // same loc but 20 min apart: kept
		{"e2", 1, "locA", "r1"},  // different sequence: kept
	}))
	got := applyRules(t, db, "reads", dupRule)
	wantReads(t, got, []read{
		{"e1", 0, "locA", ""}, {"e1", 10, "locB", ""}, {"e1", 30, "locB", ""},
		{"e2", 1, "locA", ""},
	})
}

// Example 2 of §4.3: reads trailed by a readerX read within t2 minutes are
// transportation artifacts and get deleted.
func TestReaderRuleSemantics(t *testing.T) {
	db := dbWith(t, readsTable(t, "reads", []read{
		{"e1", 0, "dock", "rDock"}, // 8 min before readerX read: deleted
		{"e1", 8, "shelf", "readerX"},
		{"e1", 30, "floor", "r2"},  // no readerX read after: kept
		{"e2", 0, "dock", "rDock"}, // readerX read 40 min later: kept
		{"e2", 40, "shelf", "readerX"},
	}))
	got := applyRules(t, db, "reads", readerRule)
	wantReads(t, got, []read{
		{"e1", 8, "shelf", ""}, {"e1", 30, "floor", ""},
		{"e2", 0, "dock", ""}, {"e2", 40, "shelf", ""},
	})
}

// Example 3 of §4.3: a cross-read at loc2 right before a locA read is
// corrected to loc1.
func TestReplacingRuleSemantics(t *testing.T) {
	db := dbWith(t, readsTable(t, "reads", []read{
		{"e1", 0, "loc2", "r"}, // followed by locA within 20 min: becomes loc1
		{"e1", 10, "locA", "r"},
		{"e2", 0, "loc2", "r"}, // next read too late: stays loc2
		{"e2", 50, "locA", "r"},
		{"e3", 0, "loc2", "r"}, // next read is not locA: stays loc2
		{"e3", 10, "locB", "r"},
	}))
	got := applyRules(t, db, "reads", replacingRule)
	wantReads(t, got, []read{
		{"e1", 0, "loc1", ""}, {"e1", 10, "locA", ""},
		{"e2", 0, "loc2", ""}, {"e2", 50, "locA", ""},
		{"e3", 0, "loc2", ""}, {"e3", 10, "locB", ""},
	})
}

// Example 4 of §4.3: [X Y X Y X Y] collapses to [X Y].
func TestCycleRuleSemantics(t *testing.T) {
	db := dbWith(t, readsTable(t, "reads", []read{
		{"e1", 0, "X", "r"}, {"e1", 10, "Y", "r"}, {"e1", 20, "X", "r"},
		{"e1", 30, "Y", "r"}, {"e1", 40, "X", "r"}, {"e1", 50, "Y", "r"},
	}))
	got := applyRules(t, db, "reads", cycleRule)
	wantReads(t, got, []read{{"e1", 0, "X", ""}, {"e1", 50, "Y", ""}})
}

// §4.4: rule order matters. [X Y X] under cycle-then-duplicate gives [X];
// duplicate(no time limit)-then-cycle gives [X X] — wait, the paper's
// order discussion: cycle first leaves [X X] which duplicate collapses to
// [X]; duplicate first (adjacent only, X Y X has no adjacent duplicates)
// leaves [X Y X], which cycle reduces to [X X].
func TestRuleOrderingMatters(t *testing.T) {
	data := []read{{"e1", 0, "X", "r"}, {"e1", 100, "Y", "r"}, {"e1", 200, "X", "r"}}
	dupNoTime := `DEFINE duplicate ON reads AS (A, B) WHERE A.biz_loc = B.biz_loc ACTION DELETE B`

	db := dbWith(t, readsTable(t, "reads", data))
	cycleFirst := applyRules(t, db, "reads", cycleRule, dupNoTime)
	wantReads(t, cycleFirst, []read{{"e1", 0, "X", ""}})

	db2 := dbWith(t, readsTable(t, "reads", data))
	dupFirst := applyRules(t, db2, "reads", dupNoTime, cycleRule)
	wantReads(t, dupFirst, []read{{"e1", 0, "X", ""}, {"e1", 200, "X", ""}})
}

// Example 5 of §4.3: the two-stage missing-read rule over the derived
// case∪pallet input. The pallet read at L1 survives to compensate for the
// missing case read.
func TestMissingRuleSemantics(t *testing.T) {
	tab := storage.NewTable("case_with_pallet", schema.New(
		schema.Col("case_with_pallet", "epc", types.KindString),
		schema.Col("case_with_pallet", "rtime", types.KindTime),
		schema.Col("case_with_pallet", "biz_loc", types.KindString),
		schema.Col("case_with_pallet", "reader", types.KindString),
		schema.Col("case_with_pallet", "is_pallet", types.KindInt),
	))
	add := func(epc string, minute int64, loc string, isPallet int64) {
		tab.Append(schema.Row{
			types.NewString(epc), types.NewTime(minute * 60_000_000),
			types.NewString(loc), types.NewString("r"), types.NewInt(isPallet),
		})
	}
	// Case c1 misses its L1 read; the pallet (propagated under c1's epc)
	// was read at L1 and later travels with the case at L2.
	add("c1", 0, "L1", 1)   // pallet at L1 — compensates missing case read
	add("c1", 100, "L2", 0) // actual case read at L2
	add("c1", 101, "L2", 1) // pallet at L2, 1 min after the case read
	// Case c2 was read everywhere; pallet reads must all be dropped.
	add("c2", 0, "L1", 0)
	add("c2", 1, "L1", 1)
	add("c2", 100, "L2", 0)
	add("c2", 101, "L2", 1)
	tab.Analyze()
	db := dbWith(t, tab)

	r1 := `DEFINE missing_r1 ON case_with_pallet
		AS (X, A, Y)
		WHERE A.is_pallet = 1 AND ((X.is_pallet = 0 AND A.biz_loc = X.biz_loc AND A.rtime - X.rtime < 5 mins)
			OR (Y.is_pallet = 0 AND A.biz_loc = Y.biz_loc AND Y.rtime - A.rtime < 5 mins))
		ACTION MODIFY A.has_case_nearby = 1`
	r2 := `DEFINE missing_r2 ON case_with_pallet
		AS (A, *B)
		WHERE A.is_pallet = 0 OR (A.has_case_nearby = 0 AND B.has_case_nearby = 1)
		ACTION KEEP A`
	got := applyRules(t, db, "case_with_pallet", r1, r2)
	wantReads(t, got, []read{
		{"c1", 0, "L1", ""},   // compensating pallet read survives
		{"c1", 100, "L2", ""}, // real case read
		{"c2", 0, "L1", ""},
		{"c2", 100, "L2", ""},
	})
}

// DELETE with a NULL condition must keep the row (border rows of a
// sequence); KEEP with a NULL condition must drop it.
func TestNullConditionSemantics(t *testing.T) {
	db := dbWith(t, readsTable(t, "reads", []read{{"e1", 0, "locA", "r"}}))
	// A single-row sequence: A (the previous row) binds nothing, so the
	// condition is NULL for the only row. DELETE B keeps it.
	got := applyRules(t, db, "reads", dupRule)
	wantReads(t, got, []read{{"e1", 0, "locA", ""}})

	// KEEP with an always-NULL condition drops everything.
	keepRule := `DEFINE k ON reads AS (A, B) WHERE A.biz_loc = B.biz_loc ACTION KEEP B`
	db2 := dbWith(t, readsTable(t, "reads", []read{{"e1", 0, "locA", "r"}}))
	got2 := applyRules(t, db2, "reads", keepRule)
	if len(got2) != 0 {
		t.Fatalf("KEEP with NULL condition kept rows: %+v", got2)
	}
}

func TestTemplateSQLRendering(t *testing.T) {
	rule, err := sqlts.Parse(dupRule)
	if err != nil {
		t.Fatal(err)
	}
	tmpl, err := Compile(rule)
	if err != nil {
		t.Fatal(err)
	}
	text, err := tmpl.SQL([]string{"epc", "rtime", "biz_loc", "reader"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"$input",
		"OVER (PARTITION BY epc ORDER BY rtime ROWS BETWEEN 1 PRECEDING AND 1 PRECEDING)",
		"CASE WHEN",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("template SQL missing %q:\n%s", want, text)
		}
	}
}

func TestReaderRuleFrameFromSkeyConstraint(t *testing.T) {
	rule, err := sqlts.Parse(readerRule)
	if err != nil {
		t.Fatal(err)
	}
	tmpl, err := Compile(rule)
	if err != nil {
		t.Fatal(err)
	}
	text, err := tmpl.SQL([]string{"epc", "rtime", "biz_loc", "reader"})
	if err != nil {
		t.Fatal(err)
	}
	// B.rtime - A.rtime < 10 mins with B after A becomes a RANGE frame
	// from 1 microsecond to just under 10 minutes following.
	if !strings.Contains(text, "RANGE BETWEEN INTERVAL '1' MICROSECOND FOLLOWING AND INTERVAL '599999999' MICROSECOND FOLLOWING") {
		t.Errorf("reader frame wrong:\n%s", text)
	}
	if len(tmpl.WindowColumns()) != 1 {
		t.Errorf("window cols = %v", tmpl.WindowColumns())
	}
}

func TestCompileRejectsMixedSetComparison(t *testing.T) {
	src := `DEFINE bad ON reads AS (A, *B) WHERE B.biz_loc = A.biz_loc ACTION DELETE A`
	rule, err := sqlts.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(rule); err == nil {
		t.Fatal("expected error for set/target column comparison")
	}
}

func TestBuildValidatesInput(t *testing.T) {
	rule, _ := sqlts.Parse(dupRule)
	tmpl, _ := Compile(rule)
	if _, _, err := tmpl.Build(&sqlast.TableName{Name: "r"}, []string{"epc"}); err == nil {
		t.Fatal("missing sequence key must error")
	}
	if _, _, err := tmpl.Build(&sqlast.TableName{Name: "r"}, []string{"epc", "rtime", "__duplicate_a_biz_loc"}); err == nil {
		t.Fatal("colliding column name must error")
	}
}

// Set reference preceding the target: symmetric frame logic.
func TestSetReferenceBeforeTarget(t *testing.T) {
	rule := `DEFINE pre ON reads
		AS (*B, A) WHERE B.reader = 'readerX' AND A.rtime - B.rtime < 10 mins
		ACTION DELETE A`
	db := dbWith(t, readsTable(t, "reads", []read{
		{"e1", 0, "dock", "readerX"},
		{"e1", 5, "shelf", "r2"},  // within 10 min after readerX: deleted
		{"e1", 30, "floor", "r2"}, // too late: kept
	}))
	got := applyRules(t, db, "reads", rule)
	wantReads(t, got, []read{{"e1", 0, "dock", ""}, {"e1", 30, "floor", ""}})
}

// Property-ish check: chaining the same idempotent rule twice changes
// nothing beyond the first application.
func TestDuplicateRuleIdempotent(t *testing.T) {
	var reads []read
	for i := 0; i < 20; i++ {
		reads = append(reads, read{"e1", int64(i), fmt.Sprintf("loc%d", (i/3)%2), "r"})
	}
	db := dbWith(t, readsTable(t, "reads", reads))
	once := applyRules(t, db, "reads", dupRule)
	db2 := dbWith(t, readsTable(t, "reads", reads))
	twice := applyRules(t, db2, "reads", dupRule, `DEFINE duplicate2 ON reads
		AS (A, B) WHERE A.biz_loc = B.biz_loc AND B.rtime - A.rtime < 5 mins
		ACTION DELETE B`)
	wantReads(t, twice, once)
}

// §4.3's closing remark, implemented: COUNT over a set reference controls
// how many matching context rows an action needs.
func TestCountExistentialExtension(t *testing.T) {
	rule := `DEFINE twostrikes ON reads
		AS (A, *B)
		WHERE COUNT(B.reader = 'readerX') >= 2 AND B.rtime - A.rtime < 30 mins
		ACTION DELETE A`
	db := dbWith(t, readsTable(t, "reads", []read{
		{"e1", 0, "locA", "r0"}, // two readerX reads follow within 30 min: deleted
		{"e1", 10, "locB", "readerX"},
		{"e1", 20, "locC", "readerX"},
		{"e2", 0, "locA", "r0"}, // only one follows: kept
		{"e2", 10, "locB", "readerX"},
		{"e2", 50, "locC", "readerX"}, // too late to count
	}))
	got := applyRules(t, db, "reads", rule)
	wantReads(t, got, []read{
		{"e1", 10, "locB", ""}, {"e1", 20, "locC", ""},
		{"e2", 0, "locA", ""}, {"e2", 10, "locB", ""}, {"e2", 50, "locC", ""},
	})
}

func TestCountExtensionTemplateUsesSum(t *testing.T) {
	rule, err := sqlts.Parse(`DEFINE c ON reads AS (A, *B)
		WHERE COUNT(B.reader = 'x') >= 2 AND B.rtime - A.rtime < 5 mins
		ACTION DELETE A`)
	if err != nil {
		t.Fatal(err)
	}
	tmpl, err := Compile(rule)
	if err != nil {
		t.Fatal(err)
	}
	text, err := tmpl.SQL([]string{"epc", "rtime", "reader", "biz_loc"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "SUM(CASE WHEN reader = 'x'") {
		t.Errorf("count extension should compile to SUM:\n%s", text)
	}
	if !strings.Contains(text, "COALESCE(") {
		t.Errorf("empty frames must coalesce to 0:\n%s", text)
	}
}

func TestCountMixingReferencesRejected(t *testing.T) {
	rule, err := sqlts.Parse(`DEFINE bad ON reads AS (A, *B)
		WHERE COUNT(B.biz_loc = A.biz_loc) >= 1
		ACTION DELETE A`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(rule); err == nil {
		t.Fatal("COUNT mixing set and target refs must be rejected")
	}
}

// Sequence-key constraints may appear in any linear arrangement; the
// compiler must derive identical frames from all of them.
func TestSkeyConstraintArrangements(t *testing.T) {
	forms := []string{
		`B.rtime - A.rtime < 10 mins`,
		`B.rtime < A.rtime + 10 mins`,
		`A.rtime > B.rtime - 10 mins`,
		`A.rtime + 10 mins > B.rtime`,
		`-(A.rtime) + B.rtime < 10 mins`,
	}
	var want string
	for i, f := range forms {
		src := fmt.Sprintf(`DEFINE arr%d ON reads AS (A, *B)
			WHERE B.reader = 'readerX' AND %s ACTION DELETE A`, i, f)
		rule, err := sqlts.Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		tmpl, err := Compile(rule)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		text, err := tmpl.SQL([]string{"epc", "rtime", "reader", "biz_loc"})
		if err != nil {
			t.Fatal(err)
		}
		// Normalize away the rule name.
		text = strings.ReplaceAll(text, fmt.Sprintf("arr%d", i), "arrN")
		if i == 0 {
			want = text
			if !strings.Contains(want, "INTERVAL '599999999' MICROSECOND FOLLOWING") {
				t.Fatalf("baseline frame wrong:\n%s", want)
			}
			continue
		}
		if text != want {
			t.Errorf("form %q compiled differently:\n got: %s\nwant: %s", f, text, want)
		}
	}
}

// Singleton references may appear on either side of the target and at
// distance > 1.
func TestSingletonAtDistanceTwo(t *testing.T) {
	rule := `DEFINE far ON reads AS (A, B, C)
		WHERE A.biz_loc = C.biz_loc AND C.rtime - A.rtime < 2 hours
		ACTION DELETE A`
	db := dbWith(t, readsTable(t, "reads", []read{
		{"e1", 0, "X", "r"}, // C (two ahead) at X within 2h: deleted
		{"e1", 30, "Y", "r"},
		{"e1", 60, "X", "r"},
		{"e2", 0, "X", "r"}, // C at X but 3h later: kept
		{"e2", 90, "Y", "r"},
		{"e2", 180, "X", "r"},
	}))
	got := applyRules(t, db, "reads", rule)
	wantReads(t, got, []read{
		{"e1", 30, "Y", ""}, {"e1", 60, "X", ""},
		{"e2", 0, "X", ""}, {"e2", 90, "Y", ""}, {"e2", 180, "X", ""},
	})
}

// MODIFY values may reference other pattern references' columns.
func TestModifyFromOtherReference(t *testing.T) {
	rule := `DEFINE smear ON reads AS (A, B)
		WHERE A.biz_loc <> B.biz_loc AND B.rtime - A.rtime < 10 mins
		ACTION MODIFY B.biz_loc = A.biz_loc`
	db := dbWith(t, readsTable(t, "reads", []read{
		{"e1", 0, "X", "r"},
		{"e1", 5, "Y", "r"}, // within 10 min of X: location smeared to X
		{"e1", 60, "Z", "r"},
	}))
	got := applyRules(t, db, "reads", rule)
	wantReads(t, got, []read{
		{"e1", 0, "X", ""}, {"e1", 5, "X", ""}, {"e1", 60, "Z", ""},
	})
}
