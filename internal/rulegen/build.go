package rulegen

import (
	"fmt"
	"strings"

	"repro/internal/sqlast"
	"repro/internal/sqlts"
	"repro/internal/types"
)

// Build instantiates the template over an input relation with the given
// column names (in order), returning the cleansing stage as a SELECT
// statement plus its output column list. Chaining rules is just feeding
// one stage's statement and output columns into the next.
//
// The generated shape is:
//
//	SELECT <passthrough/modified columns>
//	FROM (SELECT *, <window aggregates> FROM <input>) __w_<rule>
//	[WHERE CASE WHEN <condition> THEN .. ELSE .. END = 1]
func (t *Template) Build(input sqlast.TableExpr, inCols []string) (*sqlast.SelectStmt, []string, error) {
	cols := make(map[string]bool, len(inCols))
	for _, c := range inCols {
		cols[strings.ToLower(c)] = true
	}
	for _, it := range t.winItems {
		if cols[it.Alias] {
			return nil, nil, fmt.Errorf("rulegen: rule %s: input already has a column named %s", t.Rule.Name, it.Alias)
		}
	}
	if !cols[t.Rule.ClusterBy] || !cols[t.Rule.SequenceBy] {
		return nil, nil, fmt.Errorf("rulegen: rule %s: input lacks cluster/sequence key (%s, %s)", t.Rule.Name, t.Rule.ClusterBy, t.Rule.SequenceBy)
	}

	inner := &sqlast.SelectStmt{From: []sqlast.TableExpr{input}}
	inner.Items = append(inner.Items, sqlast.SelectItem{Star: true})
	for _, it := range t.winItems {
		inner.Items = append(inner.Items, sqlast.SelectItem{Expr: sqlast.CloneExpr(it.Expr), Alias: it.Alias})
	}

	outer := &sqlast.SelectStmt{From: []sqlast.TableExpr{
		&sqlast.SubqueryTable{Query: inner, Alias: "__w_" + t.Rule.Name},
	}}

	assigned := map[string]sqlast.Expr{}
	var newCols []string
	for _, a := range t.assigns {
		if cols[a.Column] {
			assigned[a.Column] = a.Value
		} else {
			assigned[a.Column] = a.Value
			newCols = append(newCols, a.Column)
		}
	}

	outCols := append([]string{}, inCols...)
	for _, col := range inCols {
		col = strings.ToLower(col)
		if val, ok := assigned[col]; ok && t.Rule.Action == sqlts.ActionModify {
			outer.Items = append(outer.Items, sqlast.SelectItem{
				Expr: &sqlast.Case{
					Whens: []sqlast.When{{Cond: sqlast.CloneExpr(t.cond), Then: sqlast.CloneExpr(val)}},
					Else:  &sqlast.ColRef{Name: col},
				},
				Alias: col,
			})
			continue
		}
		outer.Items = append(outer.Items, sqlast.SelectItem{Expr: &sqlast.ColRef{Name: col}})
	}
	if t.Rule.Action == sqlts.ActionModify {
		for _, col := range newCols {
			val := assigned[col]
			outer.Items = append(outer.Items, sqlast.SelectItem{
				Expr: &sqlast.Case{
					Whens: []sqlast.When{{Cond: sqlast.CloneExpr(t.cond), Then: sqlast.CloneExpr(val)}},
					Else:  sqlast.Lit(defaultFor(val)),
				},
				Alias: col,
			})
			outCols = append(outCols, col)
		}
	}

	switch t.Rule.Action {
	case sqlts.ActionDelete:
		outer.Where = actionFilter(t.cond, false)
	case sqlts.ActionKeep:
		outer.Where = actionFilter(t.cond, true)
	}
	return outer, outCols, nil
}

// actionFilter wraps the rule condition so NULL evaluations behave per the
// paper's semantics: DELETE removes a row only when the condition is
// definitely TRUE (an unknown match must not destroy data); KEEP retains a
// row only when it is definitely TRUE.
func actionFilter(cond sqlast.Expr, keep bool) sqlast.Expr {
	then, els := int64(0), int64(1)
	if keep {
		then, els = 1, 0
	}
	return sqlast.Cmp(sqlast.OpEq,
		&sqlast.Case{
			Whens: []sqlast.When{{Cond: sqlast.CloneExpr(cond), Then: sqlast.Lit(types.NewInt(then))}},
			Else:  sqlast.Lit(types.NewInt(els)),
		},
		sqlast.Lit(types.NewInt(1)))
}

// defaultFor picks the fill value of a MODIFY-created column for rows the
// rule does not touch: the zero of the assigned expression's kind. The
// paper's has_case_nearby flag relies on untouched rows reading as 0.
func defaultFor(val sqlast.Expr) types.Value {
	switch k := constKind(val); k {
	case types.KindString:
		return types.NewString("")
	case types.KindFloat:
		return types.NewFloat(0)
	case types.KindBool:
		return types.NewBool(false)
	case types.KindInterval:
		return types.NewInterval(0)
	default:
		return types.NewInt(0)
	}
}

func constKind(e sqlast.Expr) types.Kind {
	if c, ok := e.(*sqlast.Const); ok {
		return c.V.Kind()
	}
	if b, ok := e.(*sqlast.Bin); ok {
		if k := constKind(b.L); k != types.KindNull {
			return k
		}
		return constKind(b.R)
	}
	return types.KindNull
}

// SQL renders the persistable template text over a $input placeholder,
// which is what the rules catalog stores and shows (step 2 of the paper's
// architecture diagram).
func (t *Template) SQL(inCols []string) (string, error) {
	stmt, _, err := t.Build(&sqlast.TableName{Name: "$input"}, inCols)
	if err != nil {
		return "", err
	}
	return sqlast.SQL(stmt), nil
}

// WindowColumns returns the names of the scalar-aggregate columns the
// template computes; used by tests and EXPLAIN tooling.
func (t *Template) WindowColumns() []string {
	out := make([]string, len(t.winItems))
	for i, it := range t.winItems {
		out[i] = it.Alias
	}
	return out
}

// Condition returns the transformed rule condition (over window columns).
func (t *Template) Condition() sqlast.Expr { return t.cond }
