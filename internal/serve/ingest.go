// POST /v1/ingest: the durable append path on the wire. A 200 response
// means the batch is durable per the DB's configured fsync policy — on a
// WAL-backed server under `always`, the rows survive power loss before
// the client sees the status line; without a WAL the endpoint still
// works but "durable":"none" tells the client what it got.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro"
	"repro/internal/obs"
)

// ingestColumn declares one column of a create_if_missing schema. Kind
// names are the engine's: BOOL, INT, FLOAT, STRING, TIME, INTERVAL.
type ingestColumn struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

// ingestRequest is the body of /v1/ingest. Row values are JSON-typed per
// the column kind: bool for BOOL, number for INT/FLOAT, string for
// STRING, RFC3339 string or microsecond number for TIME, Go duration
// string or microsecond number for INTERVAL, null for NULL.
type ingestRequest struct {
	Table string  `json:"table"`
	Rows  [][]any `json:"rows"`
	// CreateIfMissing declares the table's schema; when the table does
	// not exist it is created (durably, on a WAL-backed server) first.
	CreateIfMissing []ingestColumn `json:"create_if_missing,omitempty"`
}

// ingestResponse is the body of a successful /v1/ingest.
type ingestResponse struct {
	Status string `json:"status"`
	Table  string `json:"table"`
	Rows   int    `json:"rows"`
	// Durable is the fsync policy the 200 promises: always, interval,
	// off, or none (no WAL configured).
	Durable string `json:"durable"`
	// Created reports that create_if_missing made the table.
	Created bool `json:"created,omitempty"`
}

// handleIngest appends one batch durably.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req ingestRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	dec.UseNumber() // keep INT values exact; float64 round-trips lose precision past 2^53
	if err := dec.Decode(&req); err != nil {
		s.writeCode(w, http.StatusBadRequest, CodeBadRequest, "invalid request body: "+err.Error(), 0)
		return
	}
	if req.Table == "" {
		s.writeCode(w, http.StatusBadRequest, CodeBadRequest, "table is required", 0)
		return
	}
	cols, err := s.cfg.DB.TableColumns(req.Table)
	created := false
	if err != nil && len(req.CreateIfMissing) > 0 {
		if cols, err = s.createForIngest(&req); err != nil {
			s.writeCode(w, http.StatusBadRequest, CodeBadRequest, err.Error(), 0)
			return
		}
		created = true
	}
	if err != nil {
		s.writeErr(w, obs.NextQueryID(), err)
		return
	}
	rows := make([][]repro.Value, len(req.Rows))
	for i, raw := range req.Rows {
		if len(raw) != len(cols) {
			s.writeCode(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Sprintf("row %d has %d values, table %s has %d columns", i, len(raw), req.Table, len(cols)), 0)
			return
		}
		row := make([]repro.Value, len(raw))
		for j, v := range raw {
			val, err := decodeJSONValue(v, cols[j].Kind)
			if err != nil {
				s.writeCode(w, http.StatusBadRequest, CodeBadRequest,
					fmt.Sprintf("row %d column %s: %v", i, cols[j].Name, err), 0)
				return
			}
			row[j] = val
		}
		rows[i] = row
	}
	if err := s.cfg.DB.IngestContext(r.Context(), req.Table, rows...); err != nil {
		s.writeErr(w, obs.NextQueryID(), err)
		return
	}
	durable := "none"
	if ws := s.cfg.DB.WALStats(); ws.Durable {
		durable = ws.Policy
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(ingestResponse{
		Status: "ok", Table: req.Table, Rows: len(rows), Durable: durable, Created: created,
	})
}

// createForIngest makes the batch's table from its create_if_missing
// schema and returns the resulting columns. A racing creator is fine:
// losing the race falls back to the winner's schema.
func (s *Server) createForIngest(req *ingestRequest) ([]repro.ColumnDef, error) {
	defs := make([]repro.ColumnDef, len(req.CreateIfMissing))
	for i, c := range req.CreateIfMissing {
		k, err := repro.ParseKind(c.Kind)
		if err != nil {
			return nil, fmt.Errorf("create_if_missing column %s: %v", c.Name, err)
		}
		defs[i] = repro.ColumnDef{Name: c.Name, Kind: k}
	}
	if err := s.cfg.DB.CreateTable(req.Table, defs...); err != nil {
		if cols, lookupErr := s.cfg.DB.TableColumns(req.Table); lookupErr == nil {
			return cols, nil
		}
		return nil, err
	}
	return s.cfg.DB.TableColumns(req.Table)
}

// decodeJSONValue converts one JSON value into an engine value of the
// column's kind.
func decodeJSONValue(v any, k repro.Kind) (repro.Value, error) {
	if v == nil {
		return repro.Null, nil
	}
	switch k {
	case repro.KindBool:
		if b, ok := v.(bool); ok {
			return repro.NewBool(b), nil
		}
	case repro.KindInt:
		if n, ok := v.(json.Number); ok {
			i, err := n.Int64()
			if err != nil {
				return repro.Null, fmt.Errorf("not an integer: %v", n)
			}
			return repro.NewInt(i), nil
		}
	case repro.KindFloat:
		if n, ok := v.(json.Number); ok {
			f, err := n.Float64()
			if err != nil {
				return repro.Null, fmt.Errorf("not a number: %v", n)
			}
			return repro.NewFloat(f), nil
		}
	case repro.KindString:
		if s, ok := v.(string); ok {
			return repro.NewString(s), nil
		}
	case repro.KindTime:
		switch t := v.(type) {
		case string:
			ts, err := time.Parse(time.RFC3339Nano, t)
			if err != nil {
				return repro.Null, fmt.Errorf("not an RFC3339 time: %q", t)
			}
			return repro.NewTime(ts), nil
		case json.Number:
			usec, err := t.Int64()
			if err != nil {
				return repro.Null, fmt.Errorf("not a microsecond timestamp: %v", t)
			}
			return repro.NewTime(time.UnixMicro(usec).UTC()), nil
		}
	case repro.KindInterval:
		switch d := v.(type) {
		case string:
			dur, err := time.ParseDuration(d)
			if err != nil {
				return repro.Null, fmt.Errorf("not a duration: %q", d)
			}
			return repro.NewInterval(dur), nil
		case json.Number:
			usec, err := d.Int64()
			if err != nil {
				return repro.Null, fmt.Errorf("not a microsecond duration: %v", d)
			}
			return repro.NewInterval(time.Duration(usec) * time.Microsecond), nil
		}
	}
	return repro.Null, fmt.Errorf("cannot decode %T as %s", v, k)
}
