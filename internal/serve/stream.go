package serve

import (
	"encoding/json"
	"net/http"
	"time"

	"repro"
	"repro/internal/obs"
	"repro/internal/types"
)

// The streaming result format is newline-delimited JSON (NDJSON,
// Content-Type application/x-ndjson) over chunked transfer encoding:
//
//	{"query_id":"q-00000007","columns":["site","c"]}
//	{"rows":[["dc-3",120],["dc-1",98]]}
//	{"rows":[["dc-0",41]]}
//	{"status":"ok","row_count":3,"strategy":"expanded","cache_hit":true,"elapsed_ms":4.21}
//
// The writer flushes after the header and after every row chunk, so a
// client sees the first rows while later chunks are still being encoded
// and a large result never occupies one contiguous response buffer on
// the server. The terminal object always carries "status"; a client that
// never sees one knows the stream was cut. docs/WIRE.md specifies the
// format in full.

// streamHeader is the first NDJSON object of a result stream.
type streamHeader struct {
	QueryID string   `json:"query_id"`
	Columns []string `json:"columns"`
}

// streamChunk carries one batch of rows.
type streamChunk struct {
	Rows [][]any `json:"rows"`
}

// streamFooter terminates a successful stream.
type streamFooter struct {
	Status    string  `json:"status"` // always "ok"
	RowCount  int     `json:"row_count"`
	Strategy  string  `json:"strategy"`
	CacheHit  bool    `json:"cache_hit"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// errorBody is the JSON body of every error response — and, when the
// failure happens after the stream header was written, the terminal
// NDJSON object of the stream.
type errorBody struct {
	Status  string `json:"status"` // always "error"
	Code    string `json:"code"`
	Error   string `json:"error"`
	QueryID string `json:"query_id,omitempty"`
}

// encodeValue maps one engine value onto its JSON representation:
// NULL→null, BOOL→bool, INT→number, FLOAT→number, STRING→string,
// TIME→RFC3339Nano string (UTC), INTERVAL→microseconds as a number.
func encodeValue(v repro.Value) any {
	switch v.Kind() {
	case types.KindNull:
		return nil
	case types.KindBool:
		return v.Bool()
	case types.KindInt:
		return v.Int()
	case types.KindFloat:
		return v.Float()
	case types.KindString:
		return v.Str()
	case types.KindTime:
		return time.UnixMicro(v.TimeUsec()).UTC().Format(time.RFC3339Nano)
	case types.KindInterval:
		return v.IntervalUsec()
	default:
		return v.String()
	}
}

// writeNDJSON encodes one object followed by a newline and flushes when
// the writer supports it.
func writeNDJSON(w http.ResponseWriter, obj any) error {
	b, err := json.Marshal(obj)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		return err
	}
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
	return nil
}

// streamLive pulls rows from a streaming result and writes them as an
// NDJSON stream, chunkRows rows per chunk, while the engine is still
// producing: each chunk is flushed as soon as it fills, so a client
// reads the first rows before the scan finishes. The HTTP status and
// stream header are deferred until the first row (or a clean empty
// result), so an engine error that strikes before any row — a crossed
// memory budget at a sort's reservation, a bad plan — still maps to its
// real HTTP status. Past the header the status is committed; a failure
// then terminates the stream with an errorBody object instead of the
// footer. Write errors mean the client hung up: the stream is abandoned
// after a bounded wait for the request context to cancel, so the
// query's recorded outcome is "canceled", not "ok".
func (s *Server) streamLive(w http.ResponseWriter, r *http.Request, qid obs.QueryID, rows *repro.Rows, start time.Time) {
	defer rows.Close()
	headerSent := false
	sendHeader := func() bool {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-Query-Id", qid.String())
		if err := writeNDJSON(w, streamHeader{QueryID: qid.String(), Columns: rows.Columns}); err != nil {
			awaitDisconnect(r)
			return false
		}
		headerSent = true
		return true
	}
	count := 0
	chunk := streamChunk{Rows: make([][]any, 0, s.cfg.ChunkRows)}
	flushChunk := func() bool {
		if len(chunk.Rows) == 0 {
			return true
		}
		if err := writeNDJSON(w, chunk); err != nil {
			awaitDisconnect(r)
			return false
		}
		chunk.Rows = chunk.Rows[:0]
		return true
	}
	for rows.Next() {
		if !headerSent && !sendHeader() {
			return
		}
		row := rows.Row()
		enc := make([]any, len(row))
		for i, v := range row {
			enc[i] = encodeValue(v)
		}
		chunk.Rows = append(chunk.Rows, enc)
		count++
		if len(chunk.Rows) >= s.cfg.ChunkRows && !flushChunk() {
			return
		}
	}
	if err := rows.Err(); err != nil {
		if !headerSent {
			s.writeErr(w, qid, err)
			return
		}
		code := repro.Code(err)
		if statusOf(code, err) >= 500 {
			s.cfg.Logger.Error("query failed mid-stream", "query_id", qid, "code", code, "err", err)
		}
		_ = writeNDJSON(w, errorBody{Status: "error", Code: code, Error: err.Error(), QueryID: qid.String()})
		return
	}
	if !headerSent && !sendHeader() {
		return
	}
	if !flushChunk() {
		return
	}
	s.cfg.Logger.Debug("query", "query_id", qid, "rows", count, "elapsed", time.Since(start))
	_ = writeNDJSON(w, streamFooter{
		Status:    "ok",
		RowCount:  count,
		Strategy:  rows.Rewrite.Strategy.String(),
		CacheHit:  rows.Rewrite.CacheHit,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
	})
}

// awaitDisconnect blocks, bounded, until net/http observes the dropped
// connection and cancels the request context. A write error races the
// context cancellation; waiting for it here lets the engine see the
// cancel before the stream closes, so the query's telemetry outcome
// reflects the disconnect.
func awaitDisconnect(r *http.Request) {
	select {
	case <-r.Context().Done():
	case <-time.After(2 * time.Second):
	}
}
