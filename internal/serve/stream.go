package serve

import (
	"encoding/json"
	"net/http"
	"time"

	"repro"
	"repro/internal/obs"
	"repro/internal/types"
)

// The streaming result format is newline-delimited JSON (NDJSON,
// Content-Type application/x-ndjson) over chunked transfer encoding:
//
//	{"query_id":"q-00000007","columns":["site","c"]}
//	{"rows":[["dc-3",120],["dc-1",98]]}
//	{"rows":[["dc-0",41]]}
//	{"status":"ok","row_count":3,"strategy":"expanded","cache_hit":true,"elapsed_ms":4.21}
//
// The writer flushes after the header and after every row chunk, so a
// client sees the first rows while later chunks are still being encoded
// and a large result never occupies one contiguous response buffer on
// the server. The terminal object always carries "status"; a client that
// never sees one knows the stream was cut. docs/WIRE.md specifies the
// format in full.

// streamHeader is the first NDJSON object of a result stream.
type streamHeader struct {
	QueryID string   `json:"query_id"`
	Columns []string `json:"columns"`
}

// streamChunk carries one batch of rows.
type streamChunk struct {
	Rows [][]any `json:"rows"`
}

// streamFooter terminates a successful stream.
type streamFooter struct {
	Status    string  `json:"status"` // always "ok"
	RowCount  int     `json:"row_count"`
	Strategy  string  `json:"strategy"`
	CacheHit  bool    `json:"cache_hit"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// errorBody is the JSON body of every error response — and, when the
// failure happens after the stream header was written, the terminal
// NDJSON object of the stream.
type errorBody struct {
	Status  string `json:"status"` // always "error"
	Code    string `json:"code"`
	Error   string `json:"error"`
	QueryID string `json:"query_id,omitempty"`
}

// encodeValue maps one engine value onto its JSON representation:
// NULL→null, BOOL→bool, INT→number, FLOAT→number, STRING→string,
// TIME→RFC3339Nano string (UTC), INTERVAL→microseconds as a number.
func encodeValue(v repro.Value) any {
	switch v.Kind() {
	case types.KindNull:
		return nil
	case types.KindBool:
		return v.Bool()
	case types.KindInt:
		return v.Int()
	case types.KindFloat:
		return v.Float()
	case types.KindString:
		return v.Str()
	case types.KindTime:
		return time.UnixMicro(v.TimeUsec()).UTC().Format(time.RFC3339Nano)
	case types.KindInterval:
		return v.IntervalUsec()
	default:
		return v.String()
	}
}

// writeNDJSON encodes one object followed by a newline and flushes when
// the writer supports it.
func writeNDJSON(w http.ResponseWriter, obj any) error {
	b, err := json.Marshal(obj)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		return err
	}
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
	return nil
}

// streamRows writes a materialized result as an NDJSON stream, chunkRows
// rows per chunk. Write errors (the client hung up mid-stream) abort the
// stream silently — there is no one left to tell.
func streamRows(w http.ResponseWriter, qid obs.QueryID, rows *repro.Rows, chunkRows int, elapsed time.Duration) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Query-Id", qid.String())
	if err := writeNDJSON(w, streamHeader{QueryID: qid.String(), Columns: rows.Columns}); err != nil {
		return
	}
	for off := 0; off < len(rows.Data); off += chunkRows {
		end := min(off+chunkRows, len(rows.Data))
		chunk := streamChunk{Rows: make([][]any, 0, end-off)}
		for _, r := range rows.Data[off:end] {
			enc := make([]any, len(r))
			for i, v := range r {
				enc[i] = encodeValue(v)
			}
			chunk.Rows = append(chunk.Rows, enc)
		}
		if err := writeNDJSON(w, chunk); err != nil {
			return
		}
	}
	_ = writeNDJSON(w, streamFooter{
		Status:    "ok",
		RowCount:  len(rows.Data),
		Strategy:  rows.Rewrite.Strategy.String(),
		CacheHit:  rows.Rewrite.CacheHit,
		ElapsedMS: float64(elapsed.Microseconds()) / 1000,
	})
}
