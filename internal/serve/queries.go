package serve

import (
	"encoding/json"
	"errors"
	"net/http"

	"repro"
)

// CodeNoQuery: the query id names no currently running statement — it
// finished, was already killed and unwound, or never existed.
const CodeNoQuery = "query_not_found"

// activeQueryJSON is one entry of GET /v1/queries.
type activeQueryJSON struct {
	QueryID   string           `json:"query_id"`
	Kind      string           `json:"kind"`
	SQL       string           `json:"sql"`
	Phase     string           `json:"phase"`
	ElapsedMS int64            `json:"elapsed_ms"`
	MemBytes  int64            `json:"mem_bytes,omitempty"`
	Killed    bool             `json:"killed,omitempty"`
	Operators []activeOpJSON   `json:"operators,omitempty"`
}

type activeOpJSON struct {
	Op      string `json:"op"`
	Rows    int    `json:"rows"`
	Batches int    `json:"batches,omitempty"`
}

// handleQueries renders the DB's active-statement registry: everything
// running right now, with live per-operator row counts. The route is
// counted but not drain-gated — an operator diagnosing a stuck drain
// needs to see what is still in flight.
func (s *Server) handleQueries(w http.ResponseWriter, r *http.Request) {
	active := s.cfg.DB.ActiveQueries()
	out := struct {
		Queries []activeQueryJSON `json:"queries"`
	}{Queries: make([]activeQueryJSON, 0, len(active))}
	for _, q := range active {
		j := activeQueryJSON{
			QueryID:   q.ID.String(),
			Kind:      q.Kind,
			SQL:       q.SQL,
			Phase:     q.Phase,
			ElapsedMS: q.Elapsed.Milliseconds(),
			MemBytes:  q.MemBytes,
			Killed:    q.Killed,
		}
		for _, op := range q.Operators {
			j.Operators = append(j.Operators, activeOpJSON{Op: op.Op, Rows: op.Rows, Batches: op.Batches})
		}
		out.Queries = append(out.Queries, j)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

// handleKill cancels one running statement. Like /v1/queries it bypasses
// the drain gate: killing a wedged query is exactly what un-sticks a
// drain.
func (s *Server) handleKill(w http.ResponseWriter, r *http.Request) {
	raw := r.PathValue("id")
	id, err := repro.ParseQueryID(raw)
	if err != nil {
		s.writeCode(w, http.StatusBadRequest, CodeBadRequest, "invalid query id: "+raw, 0)
		return
	}
	if err := s.cfg.DB.Kill(id); err != nil {
		if errors.Is(err, repro.ErrNoQuery) {
			s.writeCode(w, http.StatusNotFound, CodeNoQuery, "no such query: "+id.String(), 0)
			return
		}
		s.writeCode(w, http.StatusInternalServerError, repro.CodeInternal, err.Error(), id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Status  string `json:"status"`
		QueryID string `json:"query_id"`
	}{Status: "killed", QueryID: id.String()})
}
