package serve

// Wire-semantics tests: the engine's governance surfaced as HTTP
// behavior. Run with -race — the disconnect and drain tests exist to
// prove no goroutine outlives its query.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro"
)

// newTestDB builds a DB with one small table t(a INT, s STRING).
func newTestDB(t *testing.T, rows int, opts ...repro.Option) *repro.DB {
	t.Helper()
	db := repro.Open(opts...)
	if err := db.CreateTable("t",
		repro.ColumnDef{Name: "a", Kind: repro.KindInt},
		repro.ColumnDef{Name: "s", Kind: repro.KindString},
	); err != nil {
		t.Fatal(err)
	}
	data := make([][]repro.Value, 0, rows)
	for i := 0; i < rows; i++ {
		data = append(data, []repro.Value{
			repro.NewInt(int64(i)),
			repro.NewString(fmt.Sprintf("row-%03d", i)),
		})
	}
	if err := db.Insert("t", data...); err != nil {
		t.Fatal(err)
	}
	return db
}

// newTestServer stands a Server up behind httptest.
func newTestServer(t *testing.T, db *repro.DB, mod func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{DB: db, DrainTimeout: 10 * time.Second}
	if mod != nil {
		mod(&cfg)
	}
	s := New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	t.Cleanup(func() { s.sessions.close() })
	return s, hs
}

// post sends one JSON request and returns the response with its body.
func post(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	payload, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, payload
}

// ndjson splits a streamed body into decoded objects.
func ndjson(t *testing.T, payload []byte) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range bytes.Split(bytes.TrimSpace(payload), []byte("\n")) {
		var obj map[string]any
		if err := json.Unmarshal(line, &obj); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		out = append(out, obj)
	}
	return out
}

// errCode decodes an error body's code.
func errCode(t *testing.T, payload []byte) string {
	t.Helper()
	var e errorBody
	if err := json.Unmarshal(payload, &e); err != nil {
		t.Fatalf("bad error body %q: %v", payload, err)
	}
	return e.Code
}

func TestQueryStreamsChunkedNDJSON(t *testing.T) {
	db := newTestDB(t, 5)
	_, hs := newTestServer(t, db, func(c *Config) { c.ChunkRows = 2 })
	resp, payload := post(t, hs.URL+"/v1/query", map[string]any{"sql": "SELECT a, s FROM t ORDER BY a"})
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, body %s", resp.StatusCode, payload)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content-type = %q", ct)
	}
	if resp.Header.Get("X-Query-Id") == "" {
		t.Fatal("missing X-Query-Id header")
	}
	objs := ndjson(t, payload)
	// header + ceil(5/2)=3 chunks + footer = 5 objects.
	if len(objs) != 5 {
		t.Fatalf("stream has %d objects, want 5 (chunking broken): %v", len(objs), objs)
	}
	head := objs[0]
	if cols := head["columns"].([]any); len(cols) != 2 || cols[0] != "a" || cols[1] != "s" {
		t.Fatalf("header columns = %v", head["columns"])
	}
	var rows [][]any
	for _, chunk := range objs[1 : len(objs)-1] {
		for _, r := range chunk["rows"].([]any) {
			rows = append(rows, r.([]any))
		}
	}
	if len(rows) != 5 {
		t.Fatalf("streamed %d rows, want 5", len(rows))
	}
	if rows[3][0].(float64) != 3 || rows[3][1].(string) != "row-003" {
		t.Fatalf("row 3 = %v", rows[3])
	}
	foot := objs[len(objs)-1]
	if foot["status"] != "ok" || foot["row_count"].(float64) != 5 {
		t.Fatalf("footer = %v", foot)
	}
	if foot["strategy"] == "" || foot["elapsed_ms"] == nil {
		t.Fatalf("footer missing strategy/elapsed: %v", foot)
	}
}

func TestErrorCodesOnTheWire(t *testing.T) {
	db := newTestDB(t, 3)
	_, hs := newTestServer(t, db, nil)
	cases := []struct {
		name   string
		body   string
		status int
		code   string
	}{
		{"parse error", `{"sql":"SELECT FROM WHERE"}`, 400, repro.CodeInvalid},
		{"no such table", `{"sql":"SELECT * FROM nope"}`, 400, repro.CodeNoTable},
		{"unknown rule", `{"sql":"SELECT a FROM t","rules":["ghost"]}`, 400, repro.CodeUnknownRule},
		{"bad strategy", `{"sql":"SELECT a FROM t","strategy":"psychic"}`, 400, CodeBadRequest},
		{"bad json", `{"sql":`, 400, CodeBadRequest},
		{"unknown field", `{"sql":"SELECT a FROM t","bogus":1}`, 400, CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(hs.URL+"/v1/query", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			payload, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, tc.status, payload)
			}
			if got := errCode(t, payload); got != tc.code {
				t.Fatalf("code = %q, want %q", got, tc.code)
			}
		})
	}
}

// TestOverloadedBackpressure saturates admission (limit 1, queue 0) with
// a slow direct query and asserts the wire translation: 429, Retry-After,
// code "overloaded".
func TestOverloadedBackpressure(t *testing.T) {
	db := newTestDB(t, 64, repro.WithMaxConcurrent(1), repro.WithAdmissionQueue(0))
	_, hs := newTestServer(t, db, nil)

	release := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		// Hold the only admission slot: every operator entry sleeps, and
		// the release channel below keeps the hold deterministic.
		_, err := db.Query("SELECT a FROM t ORDER BY a",
			repro.WithFaults(repro.FaultInjection{SlowOp: 50 * time.Millisecond}))
		errc <- err
		<-release
	}()
	waitFor(t, time.Second, func() bool { return db.ResourceStats().Admission.Running == 1 })

	resp, payload := post(t, hs.URL+"/v1/query", map[string]any{"sql": "SELECT a FROM t"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", resp.StatusCode, payload)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", ra)
	}
	if got := errCode(t, payload); got != repro.CodeOverloaded {
		t.Fatalf("code = %q, want overloaded", got)
	}
	close(release)
	if err := <-errc; err != nil {
		t.Fatalf("holder query failed: %v", err)
	}
}

// TestResourceExhausted413 sends a query whose 1-byte budget cannot hold
// its sort with spilling disabled.
func TestResourceExhausted413(t *testing.T) {
	db := newTestDB(t, 256)
	_, hs := newTestServer(t, db, nil)
	resp, payload := post(t, hs.URL+"/v1/query", map[string]any{
		"sql": "SELECT a, s FROM t ORDER BY s", "memory_limit_bytes": 1, "no_spill": true,
	})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 (body %s)", resp.StatusCode, payload)
	}
	if got := errCode(t, payload); got != repro.CodeResourceExhausted {
		t.Fatalf("code = %q, want resource_exhausted", got)
	}
	var e errorBody
	_ = json.Unmarshal(payload, &e)
	if e.QueryID == "" {
		t.Fatal("413 body missing query_id")
	}
}

// TestClientDisconnectCancelsQuery drops the client mid-query and
// asserts the request context cancels it through the engine's
// cooperative-cancel paths, leaving no goroutine behind (-race).
func TestClientDisconnectCancelsQuery(t *testing.T) {
	db := newTestDB(t, 64)
	_, hs := newTestServer(t, db, func(c *Config) {
		c.QueryOptions = []repro.QueryOption{
			repro.WithFaults(repro.FaultInjection{SlowOp: 100 * time.Millisecond}),
		}
	})
	before := runtime.NumGoroutine()

	canceled, ok := counter(db, "canceled")
	if !ok {
		t.Fatal("repro_queries_total{canceled} not registered")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	body := strings.NewReader(`{"sql":"SELECT a, s FROM t ORDER BY a"}`)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, hs.URL+"/v1/query", body)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatal("request succeeded; want client-side cancellation")
	}
	// The engine must observe the cancellation (outcome counter moves)…
	waitFor(t, 5*time.Second, func() bool {
		now, _ := counter(db, "canceled")
		return now > canceled
	})
	// …and every worker goroutine must unwind.
	http.DefaultClient.CloseIdleConnections()
	waitFor(t, 5*time.Second, func() bool { return runtime.NumGoroutine() <= before+2 })
}

// counter reads repro_queries_total for one outcome label.
func counter(db *repro.DB, outcome string) (float64, bool) {
	return db.Metrics().CounterValue("repro_queries_total", outcome)
}

// TestStreamHeaderBeforeCompletion proves the wire is live, not
// store-and-forward: the client holds the stream header and first chunk
// in hand while the query is still running. A large scan with one-row
// chunks fills the TCP buffers long before the result is done, so the
// handler blocks on write mid-query; at that point the client has the
// first rows, the admission slot is still held, and no outcome has been
// recorded. Draining the rest then yields the full footer.
func TestStreamHeaderBeforeCompletion(t *testing.T) {
	const total = 60000
	db := newTestDB(t, total, repro.WithMaxConcurrent(8))
	_, hs := newTestServer(t, db, func(c *Config) { c.ChunkRows = 1 })

	okBefore, _ := counter(db, "ok")
	resp, err := http.Post(hs.URL+"/v1/query", "application/json",
		strings.NewReader(`{"sql":"SELECT a, s FROM t"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	br := bufio.NewReader(resp.Body)
	head, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(head, `"columns"`) {
		t.Fatalf("first line is not the stream header: %q", head)
	}
	first, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(first, `"rows"`) {
		t.Fatalf("second line is not a row chunk: %q", first)
	}
	// Header and first rows are client-side; the query must still be in
	// flight: slot held, no recorded outcome.
	if running := db.ResourceStats().Admission.Running; running != 1 {
		t.Fatalf("admission running = %d after first chunk, want 1 (query already finished?)", running)
	}
	if okNow, _ := counter(db, "ok"); okNow != okBefore {
		t.Fatal("query outcome recorded before the stream was consumed")
	}
	// Drain the rest; the footer closes the books.
	rest, err := io.ReadAll(br)
	if err != nil {
		t.Fatal(err)
	}
	objs := ndjson(t, rest)
	foot := objs[len(objs)-1]
	if foot["status"] != "ok" || foot["row_count"].(float64) != total {
		t.Fatalf("footer = %v", foot)
	}
	waitFor(t, 5*time.Second, func() bool { return db.ResourceStats().Admission.Running == 0 })
}

// TestStreamClientDisconnectMidStream hangs up after the first chunk of
// a long live stream and asserts the cooperative-cancel chain: the
// request context cancels the engine mid-pull, the query's outcome is
// recorded as canceled, the admission slot frees, and no worker
// goroutine is left behind (-race).
func TestStreamClientDisconnectMidStream(t *testing.T) {
	db := newTestDB(t, 60000, repro.WithMaxConcurrent(8))
	_, hs := newTestServer(t, db, func(c *Config) { c.ChunkRows = 1 })
	before := runtime.NumGoroutine()

	canceledBefore, _ := counter(db, "canceled")
	resp, err := http.Post(hs.URL+"/v1/query", "application/json",
		strings.NewReader(`{"sql":"SELECT a, s FROM t"}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		resp.Body.Close()
		t.Fatalf("status = %d", resp.StatusCode)
	}
	br := bufio.NewReader(resp.Body)
	for i := 0; i < 2; i++ { // header + first chunk
		if _, err := br.ReadString('\n'); err != nil {
			t.Fatal(err)
		}
	}
	resp.Body.Close() // hang up mid-stream

	// The engine observes the disconnect as a cancellation…
	waitFor(t, 5*time.Second, func() bool {
		now, _ := counter(db, "canceled")
		return now > canceledBefore
	})
	// …releases the admission slot…
	waitFor(t, 5*time.Second, func() bool { return db.ResourceStats().Admission.Running == 0 })
	// …and unwinds every goroutine it started.
	http.DefaultClient.CloseIdleConnections()
	waitFor(t, 5*time.Second, func() bool { return runtime.NumGoroutine() <= before+2 })
}

// TestGracefulDrain: an in-flight query survives Drain, readiness flips,
// and new queries bounce with 503 draining.
func TestGracefulDrain(t *testing.T) {
	// Admission control on, so Admission.Running tracks the in-flight query.
	db := newTestDB(t, 64, repro.WithMaxConcurrent(8))
	s, hs := newTestServer(t, db, func(c *Config) {
		c.QueryOptions = []repro.QueryOption{
			repro.WithFaults(repro.FaultInjection{SlowOp: 100 * time.Millisecond}),
		}
	})

	if resp, err := http.Get(hs.URL + "/readyz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("readyz before drain: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}

	type result struct {
		status int
		body   []byte
		err    error
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.Post(hs.URL+"/v1/query", "application/json",
			strings.NewReader(`{"sql":"SELECT a, s FROM t ORDER BY a"}`))
		if err != nil {
			inflight <- result{err: err}
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		inflight <- result{status: resp.StatusCode, body: body}
	}()
	waitFor(t, 5*time.Second, func() bool { return db.ResourceStats().Admission.Running == 1 })

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	waitFor(t, 5*time.Second, s.Draining)

	// Readiness flips while the query is still in flight.
	resp, err := http.Get(hs.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain = %d, want 503", resp.StatusCode)
	}
	// New queries bounce.
	resp2, payload := post(t, hs.URL+"/v1/query", map[string]any{"sql": "SELECT a FROM t"})
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query during drain = %d, want 503 (body %s)", resp2.StatusCode, payload)
	}
	if got := errCode(t, payload); got != CodeDraining {
		t.Fatalf("code = %q, want draining", got)
	}
	// The in-flight query completes, stream intact.
	r := <-inflight
	if r.err != nil || r.status != 200 {
		t.Fatalf("in-flight query during drain: status=%d err=%v", r.status, r.err)
	}
	objs := ndjson(t, r.body)
	foot := objs[len(objs)-1]
	if foot["status"] != "ok" || foot["row_count"].(float64) != 64 {
		t.Fatalf("in-flight footer = %v", foot)
	}
	if err := <-drained; err != nil {
		t.Fatalf("Drain = %v, want nil (in-flight finished)", err)
	}
}

func TestSessionLifecycle(t *testing.T) {
	db := newTestDB(t, 8)
	s, hs := newTestServer(t, db, nil)

	resp, payload := post(t, hs.URL+"/v1/prepare", map[string]any{"sql": "SELECT a FROM t ORDER BY a"})
	if resp.StatusCode != 200 {
		t.Fatalf("prepare = %d (body %s)", resp.StatusCode, payload)
	}
	var prep prepareResponse
	if err := json.Unmarshal(payload, &prep); err != nil {
		t.Fatal(err)
	}
	if prep.Session == "" || prep.Statement == "" {
		t.Fatalf("prepare response = %+v", prep)
	}

	runURL := fmt.Sprintf("%s/v1/sessions/%s/run/%s", hs.URL, prep.Session, prep.Statement)
	resp, payload = post(t, runURL, map[string]any{})
	if resp.StatusCode != 200 {
		t.Fatalf("run = %d (body %s)", resp.StatusCode, payload)
	}
	objs := ndjson(t, payload)
	if foot := objs[len(objs)-1]; foot["status"] != "ok" || foot["row_count"].(float64) != 8 {
		t.Fatalf("run footer = %v", foot)
	}

	// A second statement lands in the same session.
	resp, payload = post(t, hs.URL+"/v1/prepare", map[string]any{
		"sql": "SELECT COUNT(*) FROM t", "session": prep.Session,
	})
	var prep2 prepareResponse
	_ = json.Unmarshal(payload, &prep2)
	if resp.StatusCode != 200 || prep2.Session != prep.Session || prep2.Statement == prep.Statement {
		t.Fatalf("second prepare = %d %+v", resp.StatusCode, prep2)
	}

	// Introspection lists both.
	resp, payload = func() (*http.Response, []byte) {
		r, err := http.Get(hs.URL + "/v1/sessions/" + prep.Session)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(r.Body)
		r.Body.Close()
		return r, b
	}()
	var info sessionInfo
	_ = json.Unmarshal(payload, &info)
	if resp.StatusCode != 200 || len(info.Statements) != 2 {
		t.Fatalf("session info = %d %+v", resp.StatusCode, info)
	}

	// Unknown statement → 404 statement_not_found.
	resp, payload = post(t, fmt.Sprintf("%s/v1/sessions/%s/run/st-99", hs.URL, prep.Session), map[string]any{})
	if resp.StatusCode != 404 || errCode(t, payload) != CodeNoStatement {
		t.Fatalf("bad stmt = %d %s", resp.StatusCode, payload)
	}

	// DELETE drops the session; later runs 404 session_not_found.
	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/sessions/"+prep.Session, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil || dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete = %v %v", dresp, err)
	}
	dresp.Body.Close()
	resp, payload = post(t, runURL, map[string]any{})
	if resp.StatusCode != 404 || errCode(t, payload) != CodeNoSession {
		t.Fatalf("run after delete = %d %s", resp.StatusCode, payload)
	}
	if n := s.sessions.count(); n != 0 {
		t.Fatalf("sessions remaining = %d", n)
	}
}

// TestSessionIdleEviction proves the janitor evicts an idle session and
// the wire reports it as 404 session_not_found.
func TestSessionIdleEviction(t *testing.T) {
	db := newTestDB(t, 4)
	s, hs := newTestServer(t, db, func(c *Config) { c.SessionIdleTimeout = 30 * time.Millisecond })

	_, payload := post(t, hs.URL+"/v1/prepare", map[string]any{"sql": "SELECT a FROM t"})
	var prep prepareResponse
	if err := json.Unmarshal(payload, &prep); err != nil {
		t.Fatal(err)
	}
	if prep.IdleTimeoutMS != 30 {
		t.Fatalf("idle_timeout_ms = %d", prep.IdleTimeoutMS)
	}
	waitFor(t, 5*time.Second, func() bool { return s.sessions.count() == 0 })
	resp, payload := post(t, fmt.Sprintf("%s/v1/sessions/%s/run/%s", hs.URL, prep.Session, prep.Statement), map[string]any{})
	if resp.StatusCode != 404 || errCode(t, payload) != CodeNoSession {
		t.Fatalf("run after eviction = %d %s", resp.StatusCode, payload)
	}
}

func TestHealthAndMetricsEndpoints(t *testing.T) {
	db := newTestDB(t, 4)
	_, hs := newTestServer(t, db, nil)

	// A query first, so the scrape shows moved counters.
	if resp, payload := post(t, hs.URL+"/v1/query", map[string]any{"sql": "SELECT COUNT(*) FROM t"}); resp.StatusCode != 200 {
		t.Fatalf("query = %d %s", resp.StatusCode, payload)
	}
	for path, want := range map[string]string{
		"/healthz": "ok",
		"/metrics": "repro_queries_total",
	} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || !strings.Contains(string(body), want) {
			t.Fatalf("%s = %d, missing %q in %q", path, resp.StatusCode, want, firstLine(body))
		}
	}
	resp, err := http.Get(hs.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !json.Valid(body) {
		t.Fatalf("metrics json = %d, valid=%v", resp.StatusCode, json.Valid(body))
	}
}

func firstLine(b []byte) string {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		return string(b[:i])
	}
	return string(b)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func TestHTTPRequestMetrics(t *testing.T) {
	db := newTestDB(t, 5)
	_, hs := newTestServer(t, db, nil)

	if resp, _ := post(t, hs.URL+"/v1/query", queryRequest{SQL: "select a from t"}); resp.StatusCode != 200 {
		t.Fatalf("query = %d", resp.StatusCode)
	}
	if resp, _ := post(t, hs.URL+"/v1/query", queryRequest{SQL: "select a from t", Strategy: "bogus"}); resp.StatusCode != 400 {
		t.Fatalf("bad strategy = %d", resp.StatusCode)
	}
	if resp, err := http.Get(hs.URL + "/healthz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz = %v %v", resp, err)
	} else {
		resp.Body.Close()
	}

	// The counter family lives on the DB's registry, so it shows up on
	// /metrics with the engine's families.
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"# TYPE repro_http_requests_total counter",
		`repro_http_requests_total{route="/v1/query",status="200"} 1`,
		`repro_http_requests_total{route="/v1/query",status="400"} 1`,
		`repro_http_requests_total{route="/healthz",status="200"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if v, ok := db.Metrics().CounterValue2("repro_http_requests_total", "/v1/query", "200"); !ok || v != 1 {
		t.Fatalf("registry read = %v,%v", v, ok)
	}
}

func TestHTTPRequestMetricsOffWithoutTelemetry(t *testing.T) {
	db := newTestDB(t, 2, repro.WithoutTelemetry())
	_, hs := newTestServer(t, db, nil)
	if resp, _ := post(t, hs.URL+"/v1/query", queryRequest{SQL: "select a from t"}); resp.StatusCode != 200 {
		t.Fatalf("query without telemetry = %d", resp.StatusCode)
	}
}
