package serve

import (
	"fmt"
	"sync"
	"time"

	"repro"
)

// A session is a named bag of prepared statements with an idle deadline.
// Sessions exist so a client can pay parse+rewrite+plan once and run the
// statement many times over the wire without re-sending SQL — the
// HTTP-shaped equivalent of repro.Prepare. A session that goes unused
// for the table's idle timeout is evicted by the janitor, statements and
// all; the client gets 404 session_not_found and re-prepares.
type session struct {
	id string

	mu       sync.Mutex
	stmts    map[string]*repro.Prepared
	stmtSQL  map[string]string
	lastUsed time.Time
	nextStmt int
}

// touch refreshes the idle deadline.
func (s *session) touch() {
	s.mu.Lock()
	s.lastUsed = time.Now()
	s.mu.Unlock()
}

// addStmt registers a prepared statement under a fresh id ("st-1", …).
func (s *session) addStmt(p *repro.Prepared, sql string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextStmt++
	id := fmt.Sprintf("st-%d", s.nextStmt)
	s.stmts[id] = p
	s.stmtSQL[id] = sql
	s.lastUsed = time.Now()
	return id
}

// stmt looks one statement up, refreshing the idle deadline on a hit.
func (s *session) stmt(id string) (*repro.Prepared, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.stmts[id]
	if ok {
		s.lastUsed = time.Now()
	}
	return p, ok
}

// statements lists the session's statement ids and SQL.
func (s *session) statements() map[string]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]string, len(s.stmtSQL))
	for id, sql := range s.stmtSQL {
		out[id] = sql
	}
	return out
}

// sessionTable owns every live session and runs the eviction janitor.
type sessionTable struct {
	idle time.Duration

	mu     sync.Mutex
	m      map[string]*session
	nextID int

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// newSessionTable starts a table whose janitor evicts sessions idle
// longer than idle, checking at idle/4 (floored at 10ms so tests can use
// tiny timeouts without a busy loop).
func newSessionTable(idle time.Duration) *sessionTable {
	t := &sessionTable{
		idle: idle,
		m:    map[string]*session{},
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go t.janitor()
	return t
}

// create registers a fresh session ("s-1", …).
func (t *sessionTable) create() *session {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	s := &session{
		id:       fmt.Sprintf("s-%d", t.nextID),
		stmts:    map[string]*repro.Prepared{},
		stmtSQL:  map[string]string{},
		lastUsed: time.Now(),
	}
	t.m[s.id] = s
	return s
}

// get looks a session up without touching its idle deadline (statement
// lookups do that, so a miss on the statement still refreshes the
// session the client clearly believes in).
func (t *sessionTable) get(id string) (*session, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.m[id]
	return s, ok
}

// drop removes a session; it reports whether one existed.
func (t *sessionTable) drop(id string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.m[id]
	delete(t.m, id)
	return ok
}

// count reports live sessions.
func (t *sessionTable) count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

// close stops the janitor. Live sessions stay readable (drain keeps
// serving in-flight runs) but nothing evicts them anymore; the table is
// dropped with the server.
func (t *sessionTable) close() {
	t.stopOnce.Do(func() { close(t.stop) })
	<-t.done
}

func (t *sessionTable) janitor() {
	defer close(t.done)
	tick := max(t.idle/4, 10*time.Millisecond)
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-ticker.C:
			t.evictIdle(time.Now())
		}
	}
}

// evictIdle removes every session whose last use is older than the idle
// timeout, returning how many went.
func (t *sessionTable) evictIdle(now time.Time) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for id, s := range t.m {
		s.mu.Lock()
		idle := now.Sub(s.lastUsed)
		s.mu.Unlock()
		if idle > t.idle {
			delete(t.m, id)
			n++
		}
	}
	return n
}
