package serve

// /v1/ingest wire semantics: typed row decoding, create_if_missing,
// durability reporting, and the readiness gate.

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"repro"
)

func postIngest(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	return post(t, url+"/v1/ingest", body)
}

func queryCount(t *testing.T, url, sql string) float64 {
	t.Helper()
	resp, payload := post(t, url+"/v1/query", map[string]any{"sql": sql, "strategy": "dirty"})
	if resp.StatusCode != 200 {
		t.Fatalf("query status = %d, body %s", resp.StatusCode, payload)
	}
	objs := ndjson(t, payload)
	for _, o := range objs {
		if rows, ok := o["rows"].([]any); ok && len(rows) > 0 {
			return rows[0].([]any)[0].(float64)
		}
	}
	t.Fatalf("no rows in %s", payload)
	return 0
}

func TestIngestAppendsRows(t *testing.T) {
	db := newTestDB(t, 3)
	_, hs := newTestServer(t, db, nil)
	resp, payload := postIngest(t, hs.URL, map[string]any{
		"table": "t",
		"rows":  [][]any{{10, "ten"}, {11, nil}},
	})
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, body %s", resp.StatusCode, payload)
	}
	var out ingestResponse
	if err := json.Unmarshal(payload, &out); err != nil {
		t.Fatal(err)
	}
	if out.Status != "ok" || out.Rows != 2 || out.Durable != "none" || out.Created {
		t.Fatalf("response = %+v", out)
	}
	if got := queryCount(t, hs.URL, "SELECT count(*) FROM t"); got != 5 {
		t.Fatalf("count = %v, want 5", got)
	}
}

func TestIngestCreateIfMissing(t *testing.T) {
	db := newTestDB(t, 0)
	_, hs := newTestServer(t, db, nil)
	body := map[string]any{
		"table": "events",
		"create_if_missing": []map[string]string{
			{"name": "epc", "kind": "STRING"},
			{"name": "rtime", "kind": "TIME"},
			{"name": "dwell", "kind": "INTERVAL"},
			{"name": "ok", "kind": "BOOL"},
			{"name": "temp", "kind": "FLOAT"},
		},
		"rows": [][]any{
			{"e1", "2026-08-08T12:00:00Z", "90s", true, 21.5},
			{"e2", 1786190400000000, 90000000, false, nil},
		},
	}
	resp, payload := postIngest(t, hs.URL, body)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, body %s", resp.StatusCode, payload)
	}
	var out ingestResponse
	json.Unmarshal(payload, &out)
	if !out.Created || out.Rows != 2 {
		t.Fatalf("response = %+v", out)
	}
	// Second batch: the table now exists, created must be false.
	resp, payload = postIngest(t, hs.URL, body)
	if resp.StatusCode != 200 {
		t.Fatalf("second status = %d, body %s", resp.StatusCode, payload)
	}
	var out2 ingestResponse
	json.Unmarshal(payload, &out2)
	if out2.Created {
		t.Fatalf("second response claims created: %+v", out2)
	}
	if got := queryCount(t, hs.URL, "SELECT count(*) FROM events"); got != 4 {
		t.Fatalf("count = %v, want 4", got)
	}
	// Both TIME spellings decode to the same microsecond instant.
	if got := queryCount(t, hs.URL, "SELECT count(*) FROM events WHERE rtime = TIMESTAMP '2026-08-08 12:00:00'"); got != 4 {
		t.Fatalf("time decode mismatch: %v rows at the instant, want 4", got)
	}
}

func TestIngestRejectsBadBatches(t *testing.T) {
	db := newTestDB(t, 1)
	_, hs := newTestServer(t, db, nil)
	cases := []struct {
		name string
		body any
	}{
		{"missing table", map[string]any{"rows": [][]any{{1, "x"}}}},
		{"unknown field", map[string]any{"table": "t", "rowz": [][]any{}}},
		{"arity", map[string]any{"table": "t", "rows": [][]any{{1}}}},
		{"type mismatch", map[string]any{"table": "t", "rows": [][]any{{"not-an-int", "s"}}}},
		{"float into int", map[string]any{"table": "t", "rows": [][]any{{1.5, "s"}}}},
		{"bad kind", map[string]any{"table": "u", "create_if_missing": []map[string]string{{"name": "c", "kind": "BLOB"}}, "rows": [][]any{}}},
	}
	for _, tc := range cases {
		resp, payload := postIngest(t, hs.URL, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (body %s)", tc.name, resp.StatusCode, payload)
		}
		if code := errCode(t, payload); code != CodeBadRequest {
			t.Errorf("%s: code = %s", tc.name, code)
		}
	}
	// No partial batch may have landed.
	if got := queryCount(t, hs.URL, "SELECT count(*) FROM t"); got != 1 {
		t.Fatalf("count = %v, want 1 (bad batches must be atomic)", got)
	}
	// Unknown table without create_if_missing is an engine error, not 400.
	resp, _ := postIngest(t, hs.URL, map[string]any{"table": "nosuch", "rows": [][]any{}})
	if resp.StatusCode == 200 {
		t.Error("ingest into missing table succeeded")
	}
}

func TestIngestReportsDurability(t *testing.T) {
	wal := t.TempDir()
	db, err := repro.OpenDir("", repro.WithWAL(wal))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	_, hs := newTestServer(t, db, nil)
	resp, payload := postIngest(t, hs.URL, map[string]any{
		"table":             "reads",
		"create_if_missing": []map[string]string{{"name": "epc", "kind": "STRING"}},
		"rows":              [][]any{{"e1"}, {"e2"}},
	})
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, body %s", resp.StatusCode, payload)
	}
	var out ingestResponse
	json.Unmarshal(payload, &out)
	if out.Durable != "always" || !out.Created {
		t.Fatalf("response = %+v", out)
	}

	// The acked batch survives a restart.
	db.Close()
	db2, err := repro.OpenDir("", repro.WithWAL(wal))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res, err := db2.Query("SELECT count(*) FROM reads", repro.WithStrategy(repro.Dirty))
	if err != nil {
		t.Fatal(err)
	}
	if res.Data[0][0].Int() != 2 {
		t.Fatalf("recovered %v rows, want 2", res.Data[0][0])
	}
}

func TestReadyGateBouncesUntilRecovered(t *testing.T) {
	db := newTestDB(t, 1)
	var ready atomic.Bool
	_, hs := newTestServer(t, db, func(c *Config) {
		c.Ready = ready.Load
	})

	resp, err := http.Get(hs.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz before ready = %d, want 503", resp.StatusCode)
	}
	for _, path := range []string{"/v1/query", "/v1/ingest"} {
		resp, payload := post(t, hs.URL+path, map[string]any{"table": "t", "sql": "SELECT 1", "rows": [][]any{}})
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s before ready = %d, want 503 (body %s)", path, resp.StatusCode, payload)
		}
		if code := errCode(t, payload); code != CodeStarting {
			t.Fatalf("%s code = %s, want %s", path, code, CodeStarting)
		}
	}
	// Liveness is not readiness: healthz stays 200 during recovery.
	resp, err = http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz before ready = %d, want 200", resp.StatusCode)
	}

	ready.Store(true)
	deadline := time.Now().Add(time.Second)
	for {
		resp, err := http.Get(hs.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == 200 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("readyz stuck at %d after ready", resp.StatusCode)
		}
	}
	if resp, payload := postIngest(t, hs.URL, map[string]any{"table": "t", "rows": [][]any{{7, "x"}}}); resp.StatusCode != 200 {
		t.Fatalf("ingest after ready = %d (body %s)", resp.StatusCode, payload)
	}
}
