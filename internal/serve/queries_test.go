package serve

// Live-operations console tests: a running query is visible in GET
// /v1/queries with live operator counts, DELETE /v1/queries/{id} kills
// it cooperatively, and the kill releases every resource the query held
// (admission slot, memory reservation, spill files). Run with -race.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"repro"
)

// queriesSnapshot decodes GET /v1/queries.
type queriesSnapshot struct {
	Queries []struct {
		QueryID   string `json:"query_id"`
		Kind      string `json:"kind"`
		SQL       string `json:"sql"`
		Phase     string `json:"phase"`
		ElapsedMS int64  `json:"elapsed_ms"`
		MemBytes  int64  `json:"mem_bytes"`
		Killed    bool   `json:"killed"`
		Operators []struct {
			Op      string `json:"op"`
			Rows    int    `json:"rows"`
			Batches int    `json:"batches"`
		} `json:"operators"`
	} `json:"queries"`
}

func getQueries(t *testing.T, base string) queriesSnapshot {
	t.Helper()
	resp, err := http.Get(base + "/v1/queries")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /v1/queries = %d", resp.StatusCode)
	}
	var snap queriesSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// newWideTestDB builds a table whose rows are wide enough that a
// streamed result overwhelms socket buffers — a client that stops
// reading wedges the query mid-stream, holding it open for the test to
// observe and kill.
func newWideTestDB(t *testing.T, rows int, opts ...repro.Option) *repro.DB {
	t.Helper()
	db := repro.Open(opts...)
	if err := db.CreateTable("t",
		repro.ColumnDef{Name: "a", Kind: repro.KindInt},
		repro.ColumnDef{Name: "s", Kind: repro.KindString},
	); err != nil {
		t.Fatal(err)
	}
	pad := strings.Repeat("x", 256)
	data := make([][]repro.Value, 0, rows)
	for i := 0; i < rows; i++ {
		data = append(data, []repro.Value{
			repro.NewInt(int64(i)),
			repro.NewString(fmt.Sprintf("row-%06d-%s", i, pad)),
		})
	}
	if err := db.Insert("t", data...); err != nil {
		t.Fatal(err)
	}
	return db
}

// counterValue reads one (family, label) counter from the DB's metrics
// snapshot, 0 when absent.
func counterValue(db *repro.DB, family, labelVal string) float64 {
	for _, fam := range db.Metrics().Snapshot() {
		if fam.Name != family {
			continue
		}
		for _, m := range fam.Metrics {
			if labelVal == "" || hasLabelValue(m.Labels, labelVal) {
				if m.Value != nil {
					return *m.Value
				}
			}
		}
	}
	return 0
}

func hasLabelValue(labels map[string]string, want string) bool {
	for _, v := range labels {
		if v == want {
			return true
		}
	}
	return false
}

// TestKillReleasesEverything is the acceptance test for the live
// operations console: start a spilling streamed query, see it in
// /v1/queries with live operator row counts, kill it over the wire, and
// prove the admission slot, memory reservation, and spill files are all
// released.
func TestKillReleasesEverything(t *testing.T) {
	spillDir, err := os.MkdirTemp("", "kill-spill-*")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(spillDir) })

	db := newWideTestDB(t, 20000,
		repro.WithMaxConcurrent(2),
		repro.WithSpillDir(spillDir),
	)
	_, hs := newTestServer(t, db, func(c *Config) { c.ChunkRows = 16 })

	// A sort under a tiny budget spills; the wide rows mean the streamed
	// result cannot fit in socket buffers, so a paused client keeps the
	// query alive indefinitely.
	body := strings.NewReader(`{"sql":"SELECT a, s FROM t ORDER BY s",` +
		`"memory_limit_bytes":65536}`)
	req, err := http.NewRequest("POST", hs.URL+"/v1/query", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("query status = %d", resp.StatusCode)
	}
	// Read the stream header, then stop reading: the query wedges on
	// socket backpressure mid-stream.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("read stream header: %v", err)
	}

	// The query must be visible with live per-operator row counts.
	var qid string
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("query never appeared in /v1/queries with operator rows")
		}
		snap := getQueries(t, hs.URL)
		for _, q := range snap.Queries {
			if q.Kind != "query" || len(q.Operators) == 0 {
				continue
			}
			rows := 0
			for _, op := range q.Operators {
				rows += op.Rows
			}
			if rows > 0 && q.Phase != "" {
				qid = q.QueryID
			}
		}
		if qid != "" {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Kill it over the wire.
	req, err = http.NewRequest("DELETE", hs.URL+"/v1/queries/"+qid, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var killBody struct {
		Status  string `json:"status"`
		QueryID string `json:"query_id"`
	}
	if err := json.NewDecoder(dresp.Body).Decode(&killBody); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != 200 || killBody.Status != "killed" || killBody.QueryID != qid {
		t.Fatalf("kill response = %d %+v", dresp.StatusCode, killBody)
	}

	// Drain the rest of the stream so the handler can unwind; the stream
	// must not end in a clean footer.
	clean := false
	for {
		line, err := br.ReadString('\n')
		if strings.Contains(line, `"status":"ok"`) {
			clean = true
		}
		if err != nil {
			break
		}
	}
	if clean {
		t.Fatal("killed query still streamed a clean ok footer")
	}

	// Everything the query held must be released.
	deadline = time.Now().Add(10 * time.Second)
	for {
		active := db.ActiveQueries()
		rs := db.ResourceStats()
		ents, _ := os.ReadDir(spillDir)
		if len(active) == 0 && rs.Admission.Running == 0 && len(ents) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("kill leaked: active=%d running=%d spill files=%d",
				len(active), rs.Admission.Running, len(ents))
		}
		time.Sleep(10 * time.Millisecond)
	}

	// And the outcome is recorded as killed, not a generic cancel.
	deadline = time.Now().Add(5 * time.Second)
	for counterValue(db, "repro_queries_total", "killed") < 1 {
		if time.Now().After(deadline) {
			t.Fatal(`repro_queries_total{outcome="killed"} never incremented`)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The kill must not have poisoned the engine: a fresh query works.
	resp2, payload := post(t, hs.URL+"/v1/query", map[string]any{"sql": "SELECT count(*) FROM t"})
	if resp2.StatusCode != 200 {
		t.Fatalf("post-kill query status = %d, body %s", resp2.StatusCode, payload)
	}
}

// TestKillUnknownAndMalformedIDs pins the error contract of the kill
// endpoint.
func TestKillUnknownAndMalformedIDs(t *testing.T) {
	db := newTestDB(t, 5)
	_, hs := newTestServer(t, db, nil)

	for _, tc := range []struct {
		id     string
		status int
		code   string
	}{
		{"q-09999999", http.StatusNotFound, CodeNoQuery},
		{"not-an-id", http.StatusBadRequest, CodeBadRequest},
		{"q-0", http.StatusBadRequest, CodeBadRequest},
	} {
		req, err := http.NewRequest("DELETE", hs.URL+"/v1/queries/"+tc.id, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var e errorBody
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("kill %q: bad body: %v", tc.id, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status || e.Code != tc.code {
			t.Fatalf("kill %q = %d %q, want %d %q", tc.id, resp.StatusCode, e.Code, tc.status, tc.code)
		}
	}
}

// TestQueriesEmptyWhenIdle pins the idle shape: an empty list, not null.
func TestQueriesEmptyWhenIdle(t *testing.T) {
	db := newTestDB(t, 5)
	_, hs := newTestServer(t, db, nil)
	resp, err := http.Get(hs.URL + "/v1/queries")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if string(raw["queries"]) != "[]" {
		t.Fatalf("idle /v1/queries = %s, want []", raw["queries"])
	}
}
