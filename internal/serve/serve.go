// Package serve is the HTTP front end of the deferred-cleansing engine:
// it puts the repro facade on a wire so the cleansing service can be a
// long-running process serving many remote clients, not an in-process
// library.
//
// Endpoints (docs/WIRE.md has the full protocol):
//
//	POST   /v1/query                      one-shot query, NDJSON row stream
//	POST   /v1/ingest                     durable batch append (200 = durable per fsync policy)
//	POST   /v1/prepare                    prepare a statement in a session
//	POST   /v1/sessions/{id}/run/{stmt}   run a prepared statement
//	GET    /v1/sessions/{id}              session introspection
//	DELETE /v1/sessions/{id}              drop a session
//	GET    /v1/queries                    active statements with live operator counts
//	DELETE /v1/queries/{id}               kill a running statement
//	GET    /healthz                       liveness (200 while the process runs)
//	GET    /readyz                        readiness (503 once draining)
//	GET    /metrics                       the DB's metrics registry
//
// The engine's governance becomes wire semantics: admission-control
// rejection (repro.ErrOverloaded) maps to 429 with Retry-After, a memory
// budget crossed with spilling off (ErrResourceExhausted) to 413, a
// contained worker panic (ErrInternal) to 500 carrying the query ID, and
// a dropped client connection cancels the query through the engine's
// cooperative-cancellation paths via the request context. Graceful drain
// (Server.Drain, wired to SIGTERM in cmd/rfidserve) stops admitting new
// queries, flips /readyz to 503 so load balancers steer away, and waits
// for in-flight queries up to a deadline.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/obs"
)

// Server-level error codes, in the same namespace as repro.Code's engine
// codes. They classify failures that never reach the engine.
const (
	// CodeBadRequest: the request body is not valid JSON, is too large,
	// or names an unknown strategy.
	CodeBadRequest = "bad_request"
	// CodeDraining: the server is shutting down and admits no new queries.
	CodeDraining = "draining"
	// CodeNoSession: the session id is unknown — never created, explicitly
	// dropped, or evicted after idling past the session timeout.
	CodeNoSession = "session_not_found"
	// CodeNoStatement: the session exists but the statement id doesn't.
	CodeNoStatement = "statement_not_found"
	// CodeStarting: the server is up but its DB is still recovering
	// (Config.Ready reports false); retry shortly.
	CodeStarting = "starting"
)

// StatusClientClosedRequest is the non-standard 499 status (popularized
// by nginx) reported when a query died because its client hung up. The
// client is usually gone by the time it is written; it exists for access
// logs and middleboxes.
const StatusClientClosedRequest = 499

// Config assembles a Server.
type Config struct {
	// DB is the engine to serve. Required.
	DB *repro.DB

	// Logger receives request-level logs. nil discards them.
	Logger *slog.Logger

	// SessionIdleTimeout evicts sessions unused for this long
	// (default 5m).
	SessionIdleTimeout time.Duration

	// DrainTimeout bounds how long Drain waits for in-flight queries
	// before giving up (default 30s). Drain's own context can only
	// shorten it.
	DrainTimeout time.Duration

	// RetryAfter is the hint sent with every 429 (default 1s; rendered in
	// whole seconds, floored at 1).
	RetryAfter time.Duration

	// MaxBodyBytes caps request bodies (default 1MiB).
	MaxBodyBytes int64

	// ChunkRows is the number of result rows per streamed NDJSON chunk
	// (default 256).
	ChunkRows int

	// QueryOptions are applied to every query and prepare before the
	// request's own options — engine-wide defaults such as a server-side
	// timeout, or fault injection in tests.
	QueryOptions []repro.QueryOption

	// Ready gates readiness on startup work: while it returns false,
	// /readyz answers 503 and query/ingest requests get 503 "starting",
	// so load balancers hold traffic until WAL replay (or any other
	// warm-up the embedder runs) finishes. nil means ready immediately.
	// OpenDir recovers synchronously, so rfidserve itself is ready by the
	// time it listens; the gate exists for embedders that construct the
	// Server before (or while) opening the DB.
	Ready func() bool
}

// Server is one HTTP front end over one DB.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	sessions *sessionTable
	httpReqs *obs.CounterVec2 // repro_http_requests_total{route,status}; nil without telemetry

	httpSrv *http.Server
	lis     net.Listener

	draining  atomic.Bool
	inflight  sync.WaitGroup
	drainOnce sync.Once
	drainErr  error
}

// New builds a Server (not yet listening; use Handler for a caller-owned
// listener/mux, or Listen+Serve).
func New(cfg Config) *Server {
	if cfg.DB == nil {
		panic("serve: Config.DB is required")
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if cfg.SessionIdleTimeout <= 0 {
		cfg.SessionIdleTimeout = 5 * time.Minute
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.ChunkRows <= 0 {
		cfg.ChunkRows = 256
	}
	s := &Server{cfg: cfg, sessions: newSessionTable(cfg.SessionIdleTimeout), httpReqs: requestCounter(cfg.DB)}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.counted("/v1/query", s.governed(s.handleQuery)))
	mux.HandleFunc("POST /v1/ingest", s.counted("/v1/ingest", s.governed(s.handleIngest)))
	mux.HandleFunc("POST /v1/prepare", s.counted("/v1/prepare", s.governed(s.handlePrepare)))
	mux.HandleFunc("POST /v1/sessions/{id}/run/{stmt}", s.counted("/v1/sessions/{id}/run/{stmt}", s.governed(s.handleRun)))
	mux.HandleFunc("GET /v1/queries", s.counted("/v1/queries", s.handleQueries))
	mux.HandleFunc("DELETE /v1/queries/{id}", s.counted("/v1/queries/{id}", s.handleKill))
	mux.HandleFunc("GET /v1/sessions/{id}", s.counted("/v1/sessions/{id}", s.handleSessionInfo))
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.counted("/v1/sessions/{id}", s.handleSessionDrop))
	mux.HandleFunc("GET /healthz", s.counted("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	}))
	mux.HandleFunc("GET /readyz", s.counted("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		if !s.ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "starting")
			return
		}
		fmt.Fprintln(w, "ready")
	}))
	mux.Handle("GET /metrics", http.HandlerFunc(s.counted("/metrics", cfg.DB.MetricsHandler().ServeHTTP)))
	s.mux = mux
	return s
}

// requestCounter registers the server's route/status request-counter
// family on the DB's metrics registry, so it shows up on /metrics next to
// the engine's families. nil (counting off) when the DB was opened
// WithoutTelemetry. A second Server over the same DB would re-register
// the family — the registry treats duplicate names as bugs — so that
// server serves uncounted instead of panicking.
func requestCounter(db *repro.DB) (v *obs.CounterVec2) {
	reg := db.Metrics()
	if reg == nil {
		return nil
	}
	defer func() { _ = recover() }()
	return reg.CounterVec2("repro_http_requests_total",
		"HTTP requests served, by route pattern and response status code.",
		"route", "status")
}

// counted wraps a handler to record one repro_http_requests_total sample
// per request, labeled by the route pattern and the final status code.
// The wrapper keeps the response writer's Flusher behavior, which the
// NDJSON streamer depends on.
func (s *Server) counted(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.httpReqs == nil {
			h(w, r)
			return
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		s.httpReqs.With(route, strconv.Itoa(sw.status)).Inc()
	}
}

// statusWriter captures the status code a handler commits to. Implicit
// 200s (a body written without WriteHeader) keep the initial value.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so streamed responses keep
// their per-chunk delivery.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Handler returns the server's routing tree for mounting on a
// caller-owned listener (tests use it with httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Listen binds addr (e.g. ":8080", "127.0.0.1:0") without serving yet,
// so callers can learn the bound address before traffic starts.
func (s *Server) Listen(addr string) (net.Addr, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.lis = lis
	s.httpSrv = &http.Server{Handler: s.mux}
	return lis.Addr(), nil
}

// Serve accepts connections on the Listen-bound listener until Drain or
// Close. Like http.Server.Serve it returns http.ErrServerClosed on a
// clean shutdown.
func (s *Server) Serve() error {
	if s.httpSrv == nil {
		return errors.New("serve: Serve before Listen")
	}
	return s.httpSrv.Serve(s.lis)
}

// Addr reports the bound address, or "" before Listen.
func (s *Server) Addr() string {
	if s.lis == nil {
		return ""
	}
	return s.lis.Addr().String()
}

// Draining reports whether Drain has started.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain shuts the server down gracefully: it stops admitting new
// queries (409-free — they get 503 draining), flips /readyz to 503 so
// load balancers steer away, waits for in-flight queries up to the
// sooner of ctx's deadline and Config.DrainTimeout, then closes the
// listener. It returns nil when every in-flight query finished, or the
// deadline's error when some were abandoned. Repeat calls return the
// first call's result.
func (s *Server) Drain(ctx context.Context) error {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		s.sessions.close()
		ctx, cancel := context.WithTimeout(ctx, s.cfg.DrainTimeout)
		defer cancel()
		done := make(chan struct{})
		go func() {
			s.inflight.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			s.drainErr = ctx.Err()
		}
		if s.httpSrv != nil {
			// In-flight queries are done (or abandoned); Shutdown closes the
			// listener and waits for response bodies still being written.
			if err := s.httpSrv.Shutdown(ctx); err != nil && s.drainErr == nil {
				s.drainErr = err
			}
		}
		s.cfg.Logger.Info("rfidserve: drained", "err", s.drainErr)
	})
	return s.drainErr
}

// Close shuts down immediately: no waiting for in-flight queries. Tests
// and error paths use it; production exits through Drain.
func (s *Server) Close() error {
	s.draining.Store(true)
	s.sessions.close()
	if s.httpSrv != nil {
		return s.httpSrv.Close()
	}
	return nil
}

// governed wraps a query-serving handler with the drain gate and
// in-flight tracking. Add-then-check closes the race against Drain: a
// request that slipped past the flag is either counted (so Drain waits
// for it) or bounced.
func (s *Server) governed(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.inflight.Add(1)
		defer s.inflight.Done()
		if s.draining.Load() {
			s.writeCode(w, http.StatusServiceUnavailable, CodeDraining, "server is draining", 0)
			return
		}
		if !s.ready() {
			s.writeCode(w, http.StatusServiceUnavailable, CodeStarting, "server is starting (recovery in progress)", 0)
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		h(w, r)
	}
}

// ready reports the Config.Ready gate (true when none is configured).
func (s *Server) ready() bool { return s.cfg.Ready == nil || s.cfg.Ready() }

// queryRequest is the body of /v1/query and /v1/prepare.
type queryRequest struct {
	SQL string `json:"sql"`
	// Strategy: auto (default), naive, expanded, join-back, dirty.
	Strategy string `json:"strategy,omitempty"`
	// Rules restricts cleansing to the named rules.
	Rules []string `json:"rules,omitempty"`
	// TimeoutMS bounds rewrite+execution; composes with the server-side
	// default (the shorter wins).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Parallelism caps this query's worker-pool width.
	Parallelism int `json:"parallelism,omitempty"`
	// MemoryLimitBytes overrides the engine's default per-query budget.
	MemoryLimitBytes int64 `json:"memory_limit_bytes,omitempty"`
	// NoSpill fails fast with 413 instead of degrading to disk.
	NoSpill bool `json:"no_spill,omitempty"`
	// Session targets an existing session on /v1/prepare; empty creates
	// one. Ignored on /v1/query.
	Session string `json:"session,omitempty"`
}

// options translates the request into engine query options, appended
// after the server-wide defaults so the request wins where they overlap.
func (q *queryRequest) options(base []repro.QueryOption) ([]repro.QueryOption, error) {
	opts := append([]repro.QueryOption{}, base...)
	switch q.Strategy {
	case "", "auto":
	case "naive":
		opts = append(opts, repro.WithStrategy(repro.Naive))
	case "expanded":
		opts = append(opts, repro.WithStrategy(repro.Expanded))
	case "join-back", "join_back", "joinback":
		opts = append(opts, repro.WithStrategy(repro.JoinBack))
	case "dirty":
		opts = append(opts, repro.WithStrategy(repro.Dirty))
	default:
		return nil, fmt.Errorf("unknown strategy %q", q.Strategy)
	}
	if len(q.Rules) > 0 {
		opts = append(opts, repro.WithRules(q.Rules...))
	}
	if q.TimeoutMS > 0 {
		opts = append(opts, repro.WithTimeout(time.Duration(q.TimeoutMS)*time.Millisecond))
	}
	if q.Parallelism > 0 {
		opts = append(opts, repro.WithParallelism(q.Parallelism))
	}
	if q.MemoryLimitBytes > 0 {
		opts = append(opts, repro.WithMemoryLimit(q.MemoryLimitBytes))
	}
	if q.NoSpill {
		opts = append(opts, repro.WithoutSpill())
	}
	return opts, nil
}

// decode parses a JSON request body.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		s.writeCode(w, http.StatusBadRequest, CodeBadRequest, "invalid request body: "+err.Error(), 0)
		return false
	}
	return true
}

// handleQuery runs one query under the request's context — a client that
// disconnects mid-query cancels it through the engine's cooperative
// cancellation — and streams the result.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !s.decode(w, r, &req) {
		return
	}
	opts, err := req.options(s.cfg.QueryOptions)
	if err != nil {
		s.writeCode(w, http.StatusBadRequest, CodeBadRequest, err.Error(), 0)
		return
	}
	qid := obs.NextQueryID()
	start := time.Now()
	rows, err := s.cfg.DB.QueryStreamContext(r.Context(), req.SQL, opts...)
	if err != nil {
		s.writeErr(w, qid, err)
		return
	}
	s.streamLive(w, r, qid, rows, start)
}

// prepareResponse is the body of a successful /v1/prepare.
type prepareResponse struct {
	Session       string `json:"session"`
	Statement     string `json:"statement"`
	Strategy      string `json:"strategy"`
	CacheHit      bool   `json:"cache_hit"`
	IdleTimeoutMS int64  `json:"idle_timeout_ms"`
}

// handlePrepare compiles a statement into a session (creating the
// session unless the request names an existing one).
func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !s.decode(w, r, &req) {
		return
	}
	opts, err := req.options(s.cfg.QueryOptions)
	if err != nil {
		s.writeCode(w, http.StatusBadRequest, CodeBadRequest, err.Error(), 0)
		return
	}
	var sess *session
	if req.Session != "" {
		var ok bool
		if sess, ok = s.sessions.get(req.Session); !ok {
			s.writeCode(w, http.StatusNotFound, CodeNoSession, "no such session: "+req.Session, 0)
			return
		}
		sess.touch()
	}
	p, err := s.cfg.DB.PrepareContext(r.Context(), req.SQL, opts...)
	if err != nil {
		s.writeErr(w, obs.NextQueryID(), err)
		return
	}
	if sess == nil {
		sess = s.sessions.create()
	}
	stmtID := sess.addStmt(p, req.SQL)
	inf := p.Rewrite()
	s.cfg.Logger.Debug("prepare", "session", sess.id, "statement", stmtID, "strategy", inf.Strategy)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(prepareResponse{
		Session:       sess.id,
		Statement:     stmtID,
		Strategy:      inf.Strategy.String(),
		CacheHit:      inf.CacheHit,
		IdleTimeoutMS: s.cfg.SessionIdleTimeout.Milliseconds(),
	})
}

// handleRun executes a prepared statement, streaming like /v1/query.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		s.writeCode(w, http.StatusNotFound, CodeNoSession, "no such session: "+r.PathValue("id"), 0)
		return
	}
	p, ok := sess.stmt(r.PathValue("stmt"))
	if !ok {
		s.writeCode(w, http.StatusNotFound, CodeNoStatement, "no such statement: "+r.PathValue("stmt"), 0)
		return
	}
	qid := obs.NextQueryID()
	start := time.Now()
	rows, err := p.StreamContext(r.Context())
	if err != nil {
		s.writeErr(w, qid, err)
		return
	}
	s.streamLive(w, r, qid, rows, start)
}

// sessionInfo is the body of GET /v1/sessions/{id}.
type sessionInfo struct {
	Session       string            `json:"session"`
	Statements    map[string]string `json:"statements"`
	IdleTimeoutMS int64             `json:"idle_timeout_ms"`
}

func (s *Server) handleSessionInfo(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		s.writeCode(w, http.StatusNotFound, CodeNoSession, "no such session: "+r.PathValue("id"), 0)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(sessionInfo{
		Session:       sess.id,
		Statements:    sess.statements(),
		IdleTimeoutMS: s.cfg.SessionIdleTimeout.Milliseconds(),
	})
}

func (s *Server) handleSessionDrop(w http.ResponseWriter, r *http.Request) {
	if !s.sessions.drop(r.PathValue("id")) {
		s.writeCode(w, http.StatusNotFound, CodeNoSession, "no such session: "+r.PathValue("id"), 0)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// statusOf maps a repro.Code onto an HTTP status. Cancellation splits on
// cause: a deadline (server- or request-set timeout) is a 504 the client
// will actually read; a canceled context means the client hung up, so
// the 499 is for the access log.
func statusOf(code string, err error) int {
	switch code {
	case repro.CodeOverloaded:
		return http.StatusTooManyRequests
	case repro.CodeResourceExhausted:
		return http.StatusRequestEntityTooLarge
	case repro.CodeCanceled:
		if errors.Is(err, context.DeadlineExceeded) {
			return http.StatusGatewayTimeout
		}
		return StatusClientClosedRequest
	case repro.CodeInternal:
		return http.StatusInternalServerError
	case repro.CodeNoTable, repro.CodeUnknownRule, repro.CodeInvalid:
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// writeErr renders an engine error: stable code, matching HTTP status,
// Retry-After on 429, and the query ID (load-bearing on 500 — it is the
// handle support uses to find the panic stack in the logs).
func (s *Server) writeErr(w http.ResponseWriter, qid obs.QueryID, err error) {
	code := repro.Code(err)
	status := statusOf(code, err)
	if status == http.StatusTooManyRequests {
		secs := max(int64(s.cfg.RetryAfter/time.Second), 1)
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	if status >= 500 {
		s.cfg.Logger.Error("query failed", "query_id", qid, "code", code, "err", err)
	}
	s.writeCode(w, status, code, err.Error(), qid)
}

// writeCode renders one JSON error body. qid 0 omits the query_id field
// (server-level failures never reached the engine).
func (s *Server) writeCode(w http.ResponseWriter, status int, code, msg string, qid obs.QueryID) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body := errorBody{Status: "error", Code: code, Error: msg}
	if qid != 0 {
		body.QueryID = qid.String()
	}
	_ = json.NewEncoder(w).Encode(body)
}
