// Batch (vectorized) expression evaluation support for the operators.
// Operators that evaluate compiled expressions — filter predicates,
// projections, sort keys, join keys and residuals, group keys and
// aggregate arguments, window keys and arguments — feed their morsels
// through eval's vector kernels in MorselSize-row chunks instead of one
// closure call per row per expression. The row path is kept intact in
// every operator: it runs when vectorization is off (Ctx.SetVectorize,
// the repro.WithRowEval option), when an expression has no vector kernel,
// and as the per-chunk fallback whenever a kernel reports an error, which
// is what guarantees the batch path's errors are exactly the serial row
// path's.
package exec

import (
	"repro/internal/eval"
	"repro/internal/schema"
	"repro/internal/types"
)

// Vectorize is the package-wide default for batch expression evaluation.
// Individual executions override it with Ctx.SetVectorize. Results are
// bit-identical either way; the knob exists for debugging and for the
// row-baseline side of benchmarks.
var Vectorize = true

// VectorizeEnabled reports whether this execution runs batch kernels —
// external operators (e.g. the planner's lazy subquery filter) consult it
// to pick between their own batch and row loops.
func (c *Ctx) VectorizeEnabled() bool { return c.vec }

// NoteEval is the exported noteEval for operators defined outside this
// package; under EXPLAIN ANALYZE it records the operator's eval mode.
func (c *Ctx) NoteEval(n Node, vectorized bool, rows int) { c.noteEval(n, vectorized, rows) }

// useVector reports whether this execution evaluates the given compiled
// expressions through their batch kernels: vectorization is on and every
// non-nil expression has a full vector kernel.
func (c *Ctx) useVector(exprs ...*eval.Compiled) bool {
	if !c.vec {
		return false
	}
	for _, e := range exprs {
		if e != nil && !e.Vectorized() {
			return false
		}
	}
	return true
}

// forBatches runs fn over MorselSize-row chunks of [lo, hi) in order,
// polling cancellation between chunks — the batch path's equivalent of
// Tick in the row loops (one poll per MorselSize rows).
func (c *Ctx) forBatches(lo, hi int, fn func(b, e int) error) error {
	for b := lo; b < hi; b += MorselSize {
		if err := c.Canceled(); err != nil {
			return err
		}
		e := b + MorselSize
		if e > hi {
			e = hi
		}
		if err := fn(b, e); err != nil {
			return err
		}
	}
	return nil
}

// batchCount reports how many vector-kernel chunks cover n rows —
// EXPLAIN ANALYZE's batches figure.
func batchCount(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + MorselSize - 1) / MorselSize
}

// evalScratch allocates per-expression column vectors of one chunk's
// width, sliced out of a single backing array.
func evalScratch(nexprs, width int) [][]types.Value {
	cols := make([][]types.Value, nexprs)
	backing := make([]types.Value, nexprs*width)
	for j := range cols {
		cols[j] = backing[j*width : (j+1)*width : (j+1)*width]
	}
	return cols
}

// tryBatchAll evaluates every expression over rows into its column
// vector. False means a kernel failed and the caller must run its serial
// row loop over the same rows so the error that surfaces is exactly the
// serial one.
func tryBatchAll(exprs []*eval.Compiled, rows []schema.Row, cols [][]types.Value) bool {
	for j, ex := range exprs {
		if !ex.TryBatch(rows, cols[j], nil) {
			return false
		}
	}
	return true
}
