package exec

import (
	"testing"

	"repro/internal/eval"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/types"
)

// pruneTable builds t(a) = 0..n-1 in segments of segRows rows.
func pruneTable(t *testing.T, n, segRows int) *storage.Table {
	t.Helper()
	old := storage.DefaultSegmentRows
	storage.DefaultSegmentRows = segRows
	t.Cleanup(func() { storage.DefaultSegmentRows = old })
	tab := storage.NewTable("t", intSchema("a"))
	for i := int64(0); i < int64(n); i++ {
		if err := tab.Append(schema.Row{types.NewInt(i)}); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

// fusedScan builds a ScanNode with src fused as predicate and the given
// zone preds.
func fusedScan(t *testing.T, tab *storage.Table, src string, zone []storage.ZonePred) *ScanNode {
	t.Helper()
	e, err := sqlparser.ParseExpr(src)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScanNode(tab, "t")
	pred, err := eval.Compile(e, &eval.Env{Schema: s.Schema()})
	if err != nil {
		t.Fatal(err)
	}
	s.Pred = pred
	s.PredDesc = src
	s.Zone = zone
	return s
}

func runScan(t *testing.T, s *ScanNode, vec bool) (*Result, *NodeStats) {
	t.Helper()
	ctx := NewCtx().SetVectorize(vec).EnableStats()
	res, err := Run(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	return res, ctx.Stats(s)
}

func TestZoneMapPruningSkipsSegments(t *testing.T) {
	tab := pruneTable(t, 64, 8) // 8 sealed segments, no tail
	lo := types.NewInt(48)
	zone := []storage.ZonePred{{Col: 0, Bounds: storage.Bounds{Lo: &lo, LoIncl: true}}}
	scan := fusedScan(t, tab, "a >= 48", zone)

	res, st := runScan(t, scan, true)
	if len(res.Rows) != 16 {
		t.Fatalf("rows = %d, want 16", len(res.Rows))
	}
	if st.Segments != 8 || st.Pruned != 6 {
		t.Fatalf("segments=%d pruned=%d, want 8/6", st.Segments, st.Pruned)
	}
	for i, r := range res.Rows {
		if r[0].Int() != int64(48+i) {
			t.Fatalf("row %d = %v", i, r[0])
		}
	}
}

func TestZoneMapPruningDisabledUnderRowEval(t *testing.T) {
	tab := pruneTable(t, 64, 8)
	lo := types.NewInt(48)
	zone := []storage.ZonePred{{Col: 0, Bounds: storage.Bounds{Lo: &lo, LoIncl: true}}}

	vecRes, vecSt := runScan(t, fusedScan(t, tab, "a >= 48", zone), true)
	rowRes, rowSt := runScan(t, fusedScan(t, tab, "a >= 48", zone), false)
	// Row mode is the pruning correctness baseline: it reads every
	// segment and must produce the identical answer.
	if rowSt.Pruned != 0 {
		t.Fatalf("row-eval pruned %d segments, want 0", rowSt.Pruned)
	}
	if vecSt.Pruned == 0 {
		t.Fatal("vector eval pruned nothing")
	}
	if len(vecRes.Rows) != len(rowRes.Rows) {
		t.Fatalf("vector %d rows vs row %d rows", len(vecRes.Rows), len(rowRes.Rows))
	}
	for i := range vecRes.Rows {
		if vecRes.Rows[i][0] != rowRes.Rows[i][0] {
			t.Fatalf("row %d differs: %v vs %v", i, vecRes.Rows[i][0], rowRes.Rows[i][0])
		}
	}
}

func TestZoneMapPredicateStraddlesSegments(t *testing.T) {
	tab := pruneTable(t, 40, 8) // segments [0,8) [8,16) [16,24) [24,32) [32,40)
	lo, hi := types.NewInt(14), types.NewInt(17)
	zone := []storage.ZonePred{{Col: 0, Bounds: storage.Bounds{Lo: &lo, LoIncl: true, Hi: &hi, HiIncl: true}}}
	scan := fusedScan(t, tab, "a >= 14 and a <= 17", zone)

	res, st := runScan(t, scan, true)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (14..17 across a segment boundary)", len(res.Rows))
	}
	for i, r := range res.Rows {
		if r[0].Int() != int64(14+i) {
			t.Fatalf("row %d = %v", i, r[0])
		}
	}
	// The two segments covering [8,16) and [16,24) survive; the other
	// three are pruned.
	if st.Segments != 5 || st.Pruned != 3 {
		t.Fatalf("segments=%d pruned=%d, want 5/3", st.Segments, st.Pruned)
	}
}

func TestZoneMapTailAndPartialSegments(t *testing.T) {
	tab := pruneTable(t, 20, 8) // 2 sealed + 4-row tail (16..19)
	lo := types.NewInt(18)
	zone := []storage.ZonePred{{Col: 0, Bounds: storage.Bounds{Lo: &lo, LoIncl: true}}}
	scan := fusedScan(t, tab, "a >= 18", zone)

	res, st := runScan(t, scan, true)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	// Both sealed segments are prunable; the tail never is.
	if st.Segments != 3 || st.Pruned != 2 {
		t.Fatalf("segments=%d pruned=%d, want 3/2", st.Segments, st.Pruned)
	}
}
