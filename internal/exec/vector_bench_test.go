package exec

import (
	"testing"

	"repro/internal/eval"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/types"
)

// The vectorization microbenchmarks measure the executor's hottest
// expression shape: the CASE payload a compiled cleansing rule plants on
// every row (rule flags fold reader/duplicate conditions into CASE WHEN
// ... THEN 0 ELSE 1 END). Sub-benchmarks pin row-at-a-time vs batch
// evaluation on identical plans at Parallelism=1, so ns/op compares the
// evaluation strategies and nothing else.

const benchRows = 1 << 16

func benchSchema() *schema.Schema {
	s := &schema.Schema{}
	s.Columns = append(s.Columns,
		schema.Col("t", "flag", types.KindInt),
		schema.Col("t", "val", types.KindInt),
		schema.Col("t", "loc", types.KindString),
	)
	return s
}

func benchRowsData(n int) []schema.Row {
	rows := make([]schema.Row, n)
	for i := 0; i < n; i++ {
		flag := types.NewInt(int64(i % 3 % 2)) // 0,1,0,0,1,0,...
		val := types.NewInt(int64(i % 1000))
		loc := types.NewString([]string{"urn:loc:dc1", "urn:loc:dc2", "urn:loc:store9"}[i%3])
		if i%509 == 0 {
			flag = types.Null
		}
		rows[i] = schema.Row{flag, val, loc}
	}
	return rows
}

func benchCompile(b *testing.B, src string) *eval.Compiled {
	b.Helper()
	e, err := sqlparser.ParseExpr(src)
	if err != nil {
		b.Fatal(err)
	}
	c, err := eval.Compile(e, &eval.Env{Schema: benchSchema()})
	if err != nil {
		b.Fatal(err)
	}
	if !c.Vectorized() {
		b.Fatalf("%q compiled without a batch kernel", src)
	}
	return c
}

func benchModes(b *testing.B, build func() Node) {
	for _, mode := range []struct {
		name string
		vec  bool
	}{{"row", false}, {"vector", true}} {
		b.Run(mode.name, func(b *testing.B) {
			n := build()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// A fresh Ctx per iteration: Run memoizes results per
				// context, and per-query knobs live on the context.
				ctx := NewCtx().SetParallelism(1).SetVectorize(mode.vec)
				if _, err := Run(ctx, n); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(benchRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkVectorizedFilter pushes the rule-flag CASE predicate through
// FilterNode row-at-a-time vs batched.
func BenchmarkVectorizedFilter(b *testing.B) {
	pred := benchCompile(b,
		"case when flag = 1 and val < 900 then 0 else 1 end = 1 and val >= 5")
	benchModes(b, func() Node {
		in := NewValuesNode(benchSchema(), benchRowsData(benchRows))
		return NewFilterNode(in, pred, "rule flag")
	})
}

// BenchmarkVectorizedProject evaluates rule-flag CASE payload columns
// through ProjectNode row-at-a-time vs batched.
func BenchmarkVectorizedProject(b *testing.B) {
	flagCol := benchCompile(b,
		"case when flag = 1 and loc like 'urn:loc:dc%' then val * 2 else val + 1 end")
	passthrough := eval.Column(1)
	benchModes(b, func() Node {
		in := NewValuesNode(benchSchema(), benchRowsData(benchRows))
		out := &schema.Schema{}
		out.Columns = append(out.Columns,
			schema.Col("", "rf", types.KindInt),
			schema.Col("", "val", types.KindInt))
		return NewProjectNode(in, out, []*eval.Compiled{flagCol, passthrough})
	})
}
