// Spill-to-disk execution paths. When an operator's memory reservation
// fails under a per-query budget (govern.Resources) and spilling is
// enabled, the three materialization-heavy operators degrade gracefully
// instead of failing the query:
//
//   - SortNode runs an external merge sort: contiguous input chunks are
//     key-evaluated and stable-sorted within a bounded memory window, each
//     run is written to a temp file as (row index, key values) records, and
//     a k-way merge re-reads the runs picking the smallest head with ties
//     toward the earliest run. Chunks are contiguous input ranges, so
//     earliest-run tie-breaking is exactly the stability rule and the merge
//     yields the same permutation as the serial stable sort.
//
//   - GroupNode runs a grace-hash aggregation: row indexes are partitioned
//     by group-key hash into temp files, then each partition is folded with
//     its own hash table, re-reading rows in ascending global index order —
//     the same fold order as the serial path, so floating-point
//     accumulation associates identically. Groups are sequenced by first
//     appearance across all partitions, restoring the serial output order.
//     Keyless (global) aggregation skips files entirely and folds
//     streaming in O(1) working memory.
//
//   - HashJoinNode runs a grace-hash join: both sides' row indexes are
//     partitioned by key hash, each partition builds and probes serially in
//     ascending index order, and the per-partition outputs (tagged with
//     their probe-row index) are stably re-ordered by that index — each
//     probe row belongs to exactly one partition, so the result is the
//     serial probe order exactly.
//
// Only row indexes and evaluated key values go to disk; the input rows
// themselves are already materialized by the child (the engine is
// batch-at-a-time), so spilling bounds each operator's own working state —
// sort-key arrays, hash tables — which is what a budget below the working
// set actually constrains.
package exec

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/eval"
	"repro/internal/govern"
	"repro/internal/schema"
	"repro/internal/types"
)

// Per-row accounting estimates. The accountant is deliberately
// order-of-magnitude: a types.Value is a 40-byte tagged union plus
// allocator overhead, a schema.Row costs a slice header plus its backing
// array, and hash-table entries carry encoded keys. These constants keep
// every operator's charge on the same scale so one budget knob governs
// them all.
const (
	// ValueBytes estimates one materialized types.Value. Exported so the
	// planner's memory estimates (EXPLAIN's mem=) stay on the executor's
	// accounting scale.
	ValueBytes = 48
	// RowHdrBytes estimates one schema.Row slice header / row reference.
	RowHdrBytes = 24
	// KeyRefBytes estimates one encoded composite key plus its hash and
	// table entry.
	KeyRefBytes = 48

	valueBytes  = ValueBytes
	rowHdrBytes = RowHdrBytes
	keyRefBytes = KeyRefBytes

	// spillFileOverhead is the buffered-I/O window per open spill file
	// (matches govern's internal buffer size).
	spillFileOverhead = 64 << 10
)

// reserveOrCharge is the accounting call for operators that cannot shrink
// their footprint by spilling (filters, projections, windows — their
// output must be materialized in memory either way in a batch engine).
// When the query cannot degrade to disk the budget is enforced: the
// reservation fails with ErrResourceExhausted. When spilling is enabled
// the bytes are charged without failing, preserving the contract that a
// spill-enabled query always completes — the budget pressure it creates
// instead pushes the spillable operators (sort, group, join) to disk.
func (c *Ctx) reserveOrCharge(n int64) error {
	if c.res.CanSpill() {
		c.res.Charge(n)
		return nil
	}
	return c.res.Reserve(n)
}

// ---- Spill record codec ----

// writeUvarint writes an unsigned varint (row indexes, string lengths).
func writeUvarint(w *govern.SpillFile, x uint64) error {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(b[:], x)
	_, err := w.Write(b[:n])
	return err
}

// writeValue serializes one types.Value: a kind byte, then a payload
// matching the kind (varint integer for the int64-backed kinds, fixed
// 8-byte IEEE bits for FLOAT — round-trips NaN and -0 exactly — and
// length-prefixed bytes for STRING; NULL is the kind byte alone).
func writeValue(w *govern.SpillFile, v types.Value) error {
	if err := w.WriteByte(byte(v.Kind())); err != nil {
		return err
	}
	switch v.Kind() {
	case types.KindNull:
		return nil
	case types.KindFloat:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.Float()))
		_, err := w.Write(b[:])
		return err
	case types.KindString:
		s := v.Str()
		if err := writeUvarint(w, uint64(len(s))); err != nil {
			return err
		}
		_, err := w.Write([]byte(s))
		return err
	default: // Bool, Int, Time, Interval: int64 payload
		var b [binary.MaxVarintLen64]byte
		n := binary.PutVarint(b[:], v.Raw())
		_, err := w.Write(b[:n])
		return err
	}
}

// readValue decodes one value written by writeValue.
func readValue(r *govern.SpillReader) (types.Value, error) {
	kb, err := r.ReadByte()
	if err != nil {
		return types.Null, err
	}
	switch types.Kind(kb) {
	case types.KindNull:
		return types.Null, nil
	case types.KindBool:
		i, err := binary.ReadVarint(r)
		return types.NewBool(i != 0), err
	case types.KindInt:
		i, err := binary.ReadVarint(r)
		return types.NewInt(i), err
	case types.KindTime:
		i, err := binary.ReadVarint(r)
		return types.NewTime(i), err
	case types.KindInterval:
		i, err := binary.ReadVarint(r)
		return types.NewInterval(i), err
	case types.KindFloat:
		var b [8]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return types.Null, err
		}
		return types.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(b[:]))), nil
	case types.KindString:
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return types.Null, err
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return types.Null, err
		}
		return types.NewString(string(buf)), nil
	}
	return types.Null, fmt.Errorf("exec: corrupt spill record: kind %d", kb)
}

// spillChunkRows sizes an external-sort run so its in-memory working set
// (keys plus bookkeeping) stays well under the budget. With no limit set
// (spill forced by fault injection) a generous default applies.
func spillChunkRows(limit, perRow int64) int {
	const (
		minRows = 256
		defRows = 64 << 10
	)
	if limit <= 0 || perRow <= 0 {
		return defRows
	}
	rows := limit / (4 * perRow)
	if rows < minRows {
		rows = minRows
	}
	if rows > defRows {
		rows = defRows
	}
	return int(rows)
}

// gracePartitions picks the partition fan-out for grace hashing: enough
// partitions that one partition's working state fits the budget, bounded
// to keep the open-file count and buffer memory sane.
func gracePartitions(work, limit int64) int {
	const (
		minParts = 2
		maxParts = 64
	)
	if limit <= 0 || work <= 0 {
		return 8
	}
	p := int(work/limit) + 1
	if p < minParts {
		p = minParts
	}
	if p > maxParts {
		p = maxParts
	}
	return p
}

// ---- External merge sort ----

// sortRun is one run's merge cursor: the current head record plus its
// reader.
type sortRun struct {
	rd     *govern.SpillReader
	rowIdx int
	key    []types.Value
	ok     bool
}

func (n *SortNode) advanceRun(r *sortRun, nk int) error {
	idx, err := binary.ReadUvarint(r.rd)
	if err == io.EOF {
		r.ok = false
		return nil
	}
	if err != nil {
		return fmt.Errorf("exec: reading sort run: %w", err)
	}
	r.rowIdx = int(idx)
	for j := 0; j < nk; j++ {
		v, err := readValue(r.rd)
		if err != nil {
			return fmt.Errorf("exec: reading sort run: %w", err)
		}
		r.key[j] = v
	}
	r.ok = true
	return nil
}

// externalSort is SortNode's disk path: sorted runs over contiguous input
// chunks, then a k-way merge. See the package comment for why the merged
// permutation is bit-identical to the serial stable sort.
func (n *SortNode) externalSort(ctx *Ctx, in *Result) (*Result, error) {
	nrows := len(in.Rows)
	if nrows == 0 {
		return &Result{Schema: n.schema, Rows: []schema.Row{}}, nil
	}
	nk := len(n.Keys)
	perRow := int64(nk)*valueBytes + rowHdrBytes + 16
	runRows := spillChunkRows(ctx.res.Limit(), perRow)

	var runs []*sortRun
	defer func() {
		for _, r := range runs {
			r.rd.Discard()
		}
	}()

	var spillBytes int64
	keys := make([][]types.Value, runRows)
	idx := make([]int, runRows)
	for lo := 0; lo < nrows; lo += runRows {
		hi := lo + runRows
		if hi > nrows {
			hi = nrows
		}
		chunkBytes := int64(hi-lo)*perRow + spillFileOverhead
		ctx.res.Charge(chunkBytes)
		cn := hi - lo
		for i := 0; i < cn; i++ {
			if err := ctx.Tick(i); err != nil {
				ctx.res.Release(chunkBytes)
				return nil, err
			}
			ks := keys[i]
			if ks == nil {
				ks = make([]types.Value, nk)
				keys[i] = ks
			}
			for j, f := range n.Keys {
				v, err := f.Eval(in.Rows[lo+i])
				if err != nil {
					ctx.res.Release(chunkBytes)
					return nil, err
				}
				ks[j] = v
			}
			idx[i] = i
		}
		loc := idx[:cn]
		sort.SliceStable(loc, func(a, b int) bool {
			return n.cmpKeys(keys[loc[a]], keys[loc[b]]) < 0
		})

		sf, err := ctx.res.NewSpillFile("sort")
		if err != nil {
			ctx.res.Release(chunkBytes)
			return nil, err
		}
		for _, li := range loc {
			if err := writeUvarint(sf, uint64(lo+li)); err != nil {
				sf.Discard()
				ctx.res.Release(chunkBytes)
				return nil, fmt.Errorf("exec: writing sort run: %w", err)
			}
			for _, v := range keys[li] {
				if err := writeValue(sf, v); err != nil {
					sf.Discard()
					ctx.res.Release(chunkBytes)
					return nil, fmt.Errorf("exec: writing sort run: %w", err)
				}
			}
		}
		spillBytes += sf.Bytes()
		rd, err := sf.Finish()
		ctx.res.Release(chunkBytes)
		if err != nil {
			return nil, err
		}
		runs = append(runs, &sortRun{rd: rd, key: make([]types.Value, nk)})
	}
	ctx.noteSpill(n, len(runs), spillBytes)

	// Merge cursors plus the output row references are the steady-state
	// working set; charge it (non-failing — spill mode completes).
	mergeBytes := int64(len(runs))*(spillFileOverhead+int64(nk)*valueBytes) + int64(nrows)*rowHdrBytes
	ctx.res.Charge(mergeBytes)
	defer ctx.res.Release(int64(len(runs)) * (spillFileOverhead + int64(nk)*valueBytes))

	for _, r := range runs {
		if err := n.advanceRun(r, nk); err != nil {
			return nil, err
		}
	}
	out := make([]schema.Row, 0, nrows)
	for len(out) < nrows {
		if err := ctx.Tick(len(out)); err != nil {
			return nil, err
		}
		best := -1
		for c, r := range runs {
			if !r.ok {
				continue
			}
			if best < 0 || n.cmpKeys(r.key, runs[best].key) < 0 {
				best = c
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("exec: sort runs exhausted at %d of %d rows", len(out), nrows)
		}
		out = append(out, in.Rows[runs[best].rowIdx])
		if err := n.advanceRun(runs[best], nk); err != nil {
			return nil, err
		}
	}
	return &Result{Schema: n.schema, Rows: out}, nil
}

// ---- Grace-hash aggregation ----

// writeIdxPartitions routes each row index to hash(key)%P, writing it as
// a uvarint record into that partition's file. Rows whose skip callback
// reports true are not written. Files are created lazily; empty
// partitions stay nil.
func writeIdxPartitions(ctx *Ctx, label string, nrows, parts int,
	route func(i int) (part uint64, skip bool, err error)) ([]*govern.SpillFile, error) {
	files := make([]*govern.SpillFile, parts)
	fail := func(err error) ([]*govern.SpillFile, error) {
		for _, f := range files {
			if f != nil {
				f.Discard()
			}
		}
		return nil, err
	}
	for i := 0; i < nrows; i++ {
		if err := ctx.Tick(i); err != nil {
			return fail(err)
		}
		p, skip, err := route(i)
		if err != nil {
			return fail(err)
		}
		if skip {
			continue
		}
		f := files[p]
		if f == nil {
			f, err = ctx.res.NewSpillFile(label)
			if err != nil {
				return fail(err)
			}
			files[p] = f
		}
		if err := writeUvarint(f, uint64(i)); err != nil {
			return fail(fmt.Errorf("exec: writing %s partition: %w", label, err))
		}
	}
	return files, nil
}

// readIdxPartition loads one partition's row indexes. They come back in
// ascending global order because the partitioning pass scanned rows in
// order.
func readIdxPartition(rd *govern.SpillReader) ([]int, error) {
	var idx []int
	for {
		v, err := binary.ReadUvarint(rd)
		if err == io.EOF {
			return idx, nil
		}
		if err != nil {
			return nil, fmt.Errorf("exec: reading partition: %w", err)
		}
		idx = append(idx, int(v))
	}
}

// graceExecute is GroupNode's disk path. Keyless aggregation folds
// streaming; keyed aggregation partitions row indexes by key hash and
// folds each partition with its own table, in ascending global order.
func (n *GroupNode) graceExecute(ctx *Ctx, in *Result) (*Result, error) {
	nrows := len(in.Rows)

	if len(n.Keys) == 0 {
		// Global aggregation: one group, O(1) working state, no files.
		g := &groupState{accs: make([]*accumulator, len(n.Aggs))}
		for ai := range n.Aggs {
			g.accs[ai] = newAccumulator(&n.Aggs[ai])
		}
		for i := 0; i < nrows; i++ {
			if err := ctx.Tick(i); err != nil {
				return nil, err
			}
			for ai := range n.Aggs {
				if arg := n.Aggs[ai].Arg; arg != nil {
					v, err := arg.Eval(in.Rows[i])
					if err != nil {
						return nil, err
					}
					if err := g.accs[ai].add(v); err != nil {
						return nil, err
					}
				} else {
					g.accs[ai].addRowCount()
				}
			}
		}
		return n.emitGroups(ctx, []*groupState{g})
	}

	work := groupWorkBytes(nrows, len(n.Aggs))
	parts := gracePartitions(work, ctx.res.Limit())
	partBuf := int64(parts) * spillFileOverhead
	ctx.res.Charge(partBuf)
	defer ctx.res.Release(partBuf)

	var enc keyEnc
	np := uint64(parts)
	files, err := writeIdxPartitions(ctx, "group", nrows, parts, func(i int) (uint64, bool, error) {
		key, _, err := enc.funcs(n.Keys, in.Rows[i])
		if err != nil {
			return 0, false, err
		}
		return hashKey(key) % np, false, nil
	})
	if err != nil {
		return nil, err
	}

	var all []*groupState
	runs := 0
	var spillBytes int64
	for p := range files {
		if files[p] == nil {
			continue
		}
		runs++
		spillBytes += files[p].Bytes()
		rd, err := files[p].Finish()
		files[p] = nil
		if err != nil {
			return nil, err
		}
		idx, err := readIdxPartition(rd)
		rd.Discard()
		if err != nil {
			return nil, err
		}
		// One partition's fold state rides above the budget line briefly.
		partBytes := int64(len(idx)) * (8 + keyRefBytes + int64(len(n.Aggs))*valueBytes)
		ctx.res.Charge(partBytes)
		t := newKeyTable[*groupState](len(idx)/2 + 1)
		for k, i := range idx {
			if err := ctx.Tick(k); err != nil {
				ctx.res.Release(partBytes)
				return nil, err
			}
			r := in.Rows[i]
			key, _, err := enc.funcs(n.Keys, r)
			if err != nil {
				ctx.res.Release(partBytes)
				return nil, err
			}
			h := hashKey(key)
			var g *groupState
			if gp := t.lookup(h, key); gp != nil {
				g = *gp
			} else {
				keyVals := make(schema.Row, len(n.Keys))
				for ki, f := range n.Keys {
					v, err := f.Eval(r)
					if err != nil {
						ctx.res.Release(partBytes)
						return nil, err
					}
					keyVals[ki] = v
				}
				g = &groupState{keyVals: keyVals, accs: make([]*accumulator, len(n.Aggs)), first: i}
				for ai := range n.Aggs {
					g.accs[ai] = newAccumulator(&n.Aggs[ai])
				}
				// The key aliases the encoder's scratch buffer here, unlike
				// the in-memory path's per-morsel arenas — copy it.
				t.insertCopy(h, key, g)
			}
			for ai := range n.Aggs {
				if arg := n.Aggs[ai].Arg; arg != nil {
					v, err := arg.Eval(r)
					if err != nil {
						ctx.res.Release(partBytes)
						return nil, err
					}
					if err := g.accs[ai].add(v); err != nil {
						ctx.res.Release(partBytes)
						return nil, err
					}
				} else {
					g.accs[ai].addRowCount()
				}
			}
		}
		for _, b := range t.buckets {
			for i := range b {
				all = append(all, b[i].val)
			}
		}
		ctx.res.Release(partBytes)
	}
	ctx.noteSpill(n, runs, spillBytes)

	sort.Slice(all, func(i, j int) bool { return all[i].first < all[j].first })
	return n.emitGroups(ctx, all)
}

// ---- Grace-hash join ----

// joinRec is one emitted probe match tagged with its probe-row index, so
// per-partition outputs can be restored to the global probe order.
type joinRec struct {
	leftIdx int
	row     schema.Row
}

// graceExecute is HashJoinNode's disk path: grace partitioning of both
// sides by key hash, serial build+probe per partition, then a stable
// re-order of the tagged outputs by probe-row index.
func (n *HashJoinNode) graceExecute(ctx *Ctx, l, r *Result) (*Result, error) {
	work := joinWorkBytes(len(l.Rows), len(r.Rows))
	parts := gracePartitions(work, ctx.res.Limit())
	partBuf := int64(parts) * spillFileOverhead
	ctx.res.Charge(partBuf)
	defer ctx.res.Release(partBuf)

	np := uint64(parts)
	var enc keyEnc
	// Build side: null keys never join; skip them entirely.
	rightFiles, err := writeIdxPartitions(ctx, "join-build", len(r.Rows), parts, func(i int) (uint64, bool, error) {
		key, null, err := enc.funcs(n.RightKeys, r.Rows[i])
		if err != nil {
			return 0, false, err
		}
		return hashKey(key) % np, null, nil
	})
	if err != nil {
		return nil, err
	}
	discardAll := func(files []*govern.SpillFile) {
		for _, f := range files {
			if f != nil {
				f.Discard()
			}
		}
	}
	// Probe side: every row is routed (null keys too — their encoded form
	// hashes deterministically), so each probe row belongs to exactly one
	// partition and left-join padding happens in the partition that owns it.
	leftFiles, err := writeIdxPartitions(ctx, "join-probe", len(l.Rows), parts, func(i int) (uint64, bool, error) {
		key, _, err := enc.funcs(n.LeftKeys, l.Rows[i])
		if err != nil {
			return 0, false, err
		}
		return hashKey(key) % np, false, nil
	})
	if err != nil {
		discardAll(rightFiles)
		return nil, err
	}

	runs := 0
	var spillBytes int64
	rightWidth := r.Schema.Len()
	var recs []joinRec
	fail := func(err error) (*Result, error) {
		discardAll(rightFiles)
		discardAll(leftFiles)
		return nil, err
	}
	loadPartition := func(files []*govern.SpillFile, p int) ([]int, error) {
		if files[p] == nil {
			return nil, nil
		}
		runs++
		spillBytes += files[p].Bytes()
		rd, err := files[p].Finish()
		files[p] = nil
		if err != nil {
			return nil, err
		}
		idx, err := readIdxPartition(rd)
		rd.Discard()
		return idx, err
	}
	for p := 0; p < parts; p++ {
		rIdx, err := loadPartition(rightFiles, p)
		if err != nil {
			return fail(err)
		}
		lIdx, err := loadPartition(leftFiles, p)
		if err != nil {
			return fail(err)
		}
		if len(lIdx) == 0 {
			continue
		}
		partBytes := int64(len(rIdx))*(8+keyRefBytes+rowHdrBytes) + int64(len(lIdx))*8
		ctx.res.Charge(partBytes)
		// Build in ascending right order — per-key row lists match the
		// serial build exactly.
		t := newKeyTable[[]schema.Row](len(rIdx)/2 + 1)
		for k, i := range rIdx {
			if err := ctx.Tick(k); err != nil {
				ctx.res.Release(partBytes)
				return fail(err)
			}
			key, null, err := enc.funcs(n.RightKeys, r.Rows[i])
			if err != nil {
				ctx.res.Release(partBytes)
				return fail(err)
			}
			if null {
				continue
			}
			h := hashKey(key)
			if rp := t.lookup(h, key); rp != nil {
				*rp = append(*rp, r.Rows[i])
			} else {
				t.insertCopy(h, key, []schema.Row{r.Rows[i]})
			}
		}
		// Probe in ascending left order.
		for k, i := range lIdx {
			if err := ctx.Tick(k); err != nil {
				ctx.res.Release(partBytes)
				return fail(err)
			}
			lrow := l.Rows[i]
			key, null, err := enc.funcs(n.LeftKeys, lrow)
			if err != nil {
				ctx.res.Release(partBytes)
				return fail(err)
			}
			matched := false
			if !null {
				h := hashKey(key)
				var rows []schema.Row
				if rp := t.lookup(h, key); rp != nil {
					rows = *rp
				}
				for _, rrow := range rows {
					joined := concatRows(lrow, rrow)
					if n.Residual != nil {
						ok, err := eval.EvalPredicate(n.Residual, joined)
						if err != nil {
							ctx.res.Release(partBytes)
							return fail(err)
						}
						if !ok {
							continue
						}
					}
					matched = true
					recs = append(recs, joinRec{leftIdx: i, row: joined})
				}
			}
			if !matched && n.JoinType == JoinKindLeft {
				recs = append(recs, joinRec{leftIdx: i, row: concatRows(lrow, nullRow(rightWidth))})
			}
		}
		ctx.res.Release(partBytes)
	}
	ctx.noteSpill(n, runs, spillBytes)

	// Each leftIdx lives in exactly one partition and within a partition
	// matches were emitted in serial probe order, so a stable sort on
	// leftIdx restores the exact serial output.
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].leftIdx < recs[j].leftIdx })
	out := make([]schema.Row, len(recs))
	width := int64(n.schema.Len())
	for i := range recs {
		out[i] = recs[i].row
	}
	ctx.res.Charge(int64(len(out)) * (rowHdrBytes + width*valueBytes))
	return &Result{Schema: n.schema, Rows: out}, nil
}

// ---- Work-size estimates shared by the in-memory reserve and the
// grace fan-out choice ----

// sortWorkBytes estimates SortNode's in-memory working state: one key
// tuple per row plus index/merge bookkeeping.
func sortWorkBytes(nrows, nk int) int64 {
	return int64(nrows) * (int64(nk)*valueBytes + rowHdrBytes + 16)
}

// groupWorkBytes estimates GroupNode's in-memory working state: encoded
// key, hash, and evaluated aggregate arguments per row.
func groupWorkBytes(nrows, naggs int) int64 {
	return int64(nrows) * (keyRefBytes + 8 + int64(naggs)*valueBytes)
}

// joinWorkBytes estimates HashJoinNode's working state: the build table
// (keys plus row-list entries) and the probe side's encoded keys.
func joinWorkBytes(nprobe, nbuild int) int64 {
	return int64(nbuild)*(keyRefBytes+rowHdrBytes) + int64(nprobe)*keyRefBytes
}
