package exec

import (
	"fmt"
	"strings"
	"time"
)

// Explain renders the plan tree with the planner's cardinality and cost
// estimates, in the style of a DBMS access plan printout.
func Explain(n Node) string {
	var b strings.Builder
	explainNode(&b, n, 0)
	return b.String()
}

func explainNode(b *strings.Builder, n Node, depth int) {
	fmt.Fprintf(b, "%s%s  [rows=%.0f cost=%.0f", strings.Repeat("  ", depth), n.Label(), n.EstRows(), n.EstCost())
	if m := EstMem(n); m > 0 {
		fmt.Fprintf(b, " mem=%s", fmtBytes(m))
	}
	b.WriteString("]")
	if Parallelism > 1 && parallelCapable(n) && n.EstRows() >= float64(ParallelThreshold) {
		b.WriteString("  [parallel]")
	}
	b.WriteString("\n")
	for _, c := range n.Children() {
		explainNode(b, c, depth+1)
	}
}

// parallelCapable reports whether the operator fans out morsel workers
// when its input is large enough; Explain marks such nodes so plans show
// where intra-query parallelism will apply.
func parallelCapable(n Node) bool {
	switch n.(type) {
	case *ScanNode, *FilterNode, *ProjectNode, *SortNode, *DistinctNode,
		*HashJoinNode, *GroupNode, *WindowNode:
		return true
	}
	return false
}

// ExplainAnalyze renders the plan with both the planner's estimates and
// the actual rows and elapsed time recorded in an analyze context, the
// moral equivalent of EXPLAIN ANALYZE. Elapsed times are cumulative
// (children included); "(cached)" marks shared subtrees served from the
// statement cache after their first execution.
func ExplainAnalyze(n Node, ctx *Ctx) string {
	var b strings.Builder
	explainAnalyzeNode(&b, n, ctx, 0)
	return b.String()
}

func explainAnalyzeNode(b *strings.Builder, n Node, ctx *Ctx, depth int) {
	fmt.Fprintf(b, "%s%s  [est rows=%.0f cost=%.0f]", strings.Repeat("  ", depth), n.Label(), n.EstRows(), n.EstCost())
	if st := ctx.Stats(n); st != nil {
		fmt.Fprintf(b, "  [actual rows=%d time=%s", st.Rows, st.Elapsed.Round(10*time.Microsecond))
		if st.Workers > 1 {
			fmt.Fprintf(b, " workers=%d", st.Workers)
		}
		if st.EvalMode != "" {
			fmt.Fprintf(b, " eval=%s", st.EvalMode)
			if st.EvalMode == "vector" {
				fmt.Fprintf(b, " batches=%d", st.Batches)
			}
		}
		if st.Segments > 0 {
			fmt.Fprintf(b, " segments=%d pruned=%d", st.Segments, st.Pruned)
		}
		if st.SpillRuns > 0 {
			fmt.Fprintf(b, " spilled=%d runs (%s)", st.SpillRuns, fmtBytes(float64(st.SpillBytes)))
		}
		if st.Hits > 0 {
			fmt.Fprintf(b, " cached×%d", st.Hits)
		}
		b.WriteString("]")
	} else {
		b.WriteString("  [never executed]")
	}
	b.WriteString("\n")
	for _, c := range n.Children() {
		explainAnalyzeNode(b, c, ctx, depth+1)
	}
}

// fmtBytes renders a byte count with a binary-unit suffix for plan output.
func fmtBytes(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.1fGiB", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.1fMiB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKiB", v/(1<<10))
	}
	return fmt.Sprintf("%.0fB", v)
}

// Kind names an operator's family — its Label stripped of per-instance
// detail — for use as a metrics label ("rows per operator kind"). The
// set of kinds is closed over the engine's physical operators.
func Kind(n Node) string {
	switch v := n.(type) {
	case *ScanNode:
		if v.IndexOrd >= 0 {
			return "IndexScan"
		}
		return "Scan"
	case *FilterNode:
		return "Filter"
	case *ProjectNode:
		return "Project"
	case *SortNode:
		return "Sort"
	case *LimitNode:
		return "Limit"
	case *DistinctNode:
		return "Distinct"
	case *SetOpNode:
		return "SetOp"
	case *UnionNode:
		return "Union"
	case *HashJoinNode:
		return "HashJoin"
	case *NestedLoopJoinNode:
		return "NLJoin"
	case *GroupNode:
		return "Group"
	case *WindowNode:
		return "Window"
	case *ValuesNode:
		return "Values"
	case *RequalifyNode:
		return "Requalify"
	}
	// Unknown operator: fall back to the label up to its detail.
	label := n.Label()
	if i := strings.IndexByte(label, '('); i > 0 {
		return label[:i]
	}
	return label
}

// CountNodes returns the number of operators in the plan with the given
// label prefix; tests use it to assert plan shapes (e.g. number of sorts).
func CountNodes(n Node, labelPrefix string) int {
	count := 0
	if strings.HasPrefix(n.Label(), labelPrefix) {
		count++
	}
	for _, c := range n.Children() {
		count += CountNodes(c, labelPrefix)
	}
	return count
}
