package exec

import (
	"strings"
	"testing"

	"repro/internal/eval"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/types"
)

func colFn(i int) *eval.Compiled { return eval.Column(i) }

func intRows(vals ...[]int64) []schema.Row {
	out := make([]schema.Row, len(vals))
	for i, rv := range vals {
		row := make(schema.Row, len(rv))
		for j, v := range rv {
			row[j] = types.NewInt(v)
		}
		out[i] = row
	}
	return out
}

func intSchema(names ...string) *schema.Schema {
	s := &schema.Schema{}
	for _, n := range names {
		s.Columns = append(s.Columns, schema.Col("t", n, types.KindInt))
	}
	return s
}

func mustExec(t *testing.T, n Node) *Result {
	t.Helper()
	r, err := Run(NewCtx(), n)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestScanNodeSequentialAndIndex(t *testing.T) {
	tab := storage.NewTable("t", intSchema("a"))
	for _, v := range []int64{5, 1, 3, 2, 4} {
		tab.Append(schema.Row{types.NewInt(v)})
	}
	tab.BuildIndex("a")

	seq := NewScanNode(tab, "t")
	if got := mustExec(t, seq); len(got.Rows) != 5 {
		t.Fatalf("seq scan rows = %d", len(got.Rows))
	}

	lo := types.NewInt(2)
	ix := NewScanNode(tab, "t")
	ix.IndexOrd = 0
	ix.Bounds = storage.Bounds{Lo: &lo, LoIncl: true}
	got := mustExec(t, ix)
	if len(got.Rows) != 4 {
		t.Fatalf("index scan rows = %d", len(got.Rows))
	}
	// Index scans return rows in key order.
	for i := 1; i < len(got.Rows); i++ {
		if got.Rows[i][0].Int() < got.Rows[i-1][0].Int() {
			t.Fatal("index scan output not ordered")
		}
	}
}

func TestFilterProjectLimit(t *testing.T) {
	in := NewValuesNode(intSchema("a", "b"), intRows([]int64{1, 10}, []int64{2, 20}, []int64{3, 30}))
	pred := eval.FromFunc(func(r schema.Row) (types.Value, error) {
		return types.NewBool(r[0].Int() >= 2), nil
	})
	f := NewFilterNode(in, pred, "a >= 2")
	proj := NewProjectNode(f, intSchema("b2"), []*eval.Compiled{eval.FromFunc(func(r schema.Row) (types.Value, error) {
		return types.NewInt(r[1].Int() * 2), nil
	})})
	lim := NewLimitNode(proj, 1)
	got := mustExec(t, lim)
	if len(got.Rows) != 1 || got.Rows[0][0].Int() != 40 {
		t.Fatalf("pipeline result = %+v", got.Rows)
	}
}

func TestSortNodeNullsFirstAndStability(t *testing.T) {
	in := NewValuesNode(intSchema("a", "b"), []schema.Row{
		{types.NewInt(2), types.NewInt(1)},
		{types.Null, types.NewInt(2)},
		{types.NewInt(1), types.NewInt(3)},
		{types.NewInt(2), types.NewInt(4)},
	})
	s := NewSortNode(in, []*eval.Compiled{colFn(0)}, []bool{false})
	got := mustExec(t, s)
	if !got.Rows[0][0].IsNull() {
		t.Fatal("nulls must sort first")
	}
	if got.Rows[1][0].Int() != 1 || got.Rows[2][1].Int() != 1 || got.Rows[3][1].Int() != 4 {
		t.Fatalf("sort not stable: %v", got.Rows)
	}
	sd := NewSortNode(in, []*eval.Compiled{colFn(0)}, []bool{true})
	gd := mustExec(t, sd)
	if gd.Rows[0][0].Int() != 2 {
		t.Fatalf("desc sort: %v", gd.Rows)
	}
}

func TestHashJoinInnerAndLeft(t *testing.T) {
	l := NewValuesNode(intSchema("id"), intRows([]int64{1}, []int64{2}, []int64{3}))
	r := NewValuesNode(intSchema("fk", "v"), intRows([]int64{1, 100}, []int64{1, 101}, []int64{3, 300}))

	inner := NewHashJoinNode(l, r, []*eval.Compiled{colFn(0)}, []*eval.Compiled{colFn(0)}, JoinKindInner, nil, "id=fk")
	got := mustExec(t, inner)
	if len(got.Rows) != 3 {
		t.Fatalf("inner join rows = %d", len(got.Rows))
	}

	left := NewHashJoinNode(l, r, []*eval.Compiled{colFn(0)}, []*eval.Compiled{colFn(0)}, JoinKindLeft, nil, "id=fk")
	got = mustExec(t, left)
	if len(got.Rows) != 4 {
		t.Fatalf("left join rows = %d", len(got.Rows))
	}
	var sawNull bool
	for _, row := range got.Rows {
		if row[0].Int() == 2 {
			sawNull = row[1].IsNull() && row[2].IsNull()
		}
	}
	if !sawNull {
		t.Fatal("unmatched left row must be null-padded")
	}
}

func TestHashJoinNullKeysNeverMatch(t *testing.T) {
	l := NewValuesNode(intSchema("id"), []schema.Row{{types.Null}, {types.NewInt(1)}})
	r := NewValuesNode(intSchema("fk"), []schema.Row{{types.Null}, {types.NewInt(1)}})
	j := NewHashJoinNode(l, r, []*eval.Compiled{colFn(0)}, []*eval.Compiled{colFn(0)}, JoinKindInner, nil, "")
	got := mustExec(t, j)
	if len(got.Rows) != 1 {
		t.Fatalf("null keys joined: %v", got.Rows)
	}
}

func TestHashJoinResidual(t *testing.T) {
	l := NewValuesNode(intSchema("id", "x"), intRows([]int64{1, 5}, []int64{1, 50}))
	r := NewValuesNode(intSchema("fk", "y"), intRows([]int64{1, 10}))
	residual := eval.FromFunc(func(row schema.Row) (types.Value, error) {
		return types.NewBool(row[1].Int() < row[3].Int()), nil
	})
	j := NewHashJoinNode(l, r, []*eval.Compiled{colFn(0)}, []*eval.Compiled{colFn(0)}, JoinKindInner, residual, "x<y")
	got := mustExec(t, j)
	if len(got.Rows) != 1 || got.Rows[0][1].Int() != 5 {
		t.Fatalf("residual join = %v", got.Rows)
	}
}

func TestNestedLoopJoin(t *testing.T) {
	l := NewValuesNode(intSchema("a"), intRows([]int64{1}, []int64{2}))
	r := NewValuesNode(intSchema("b"), intRows([]int64{1}, []int64{2}))
	pred := eval.FromFunc(func(row schema.Row) (types.Value, error) {
		return types.NewBool(row[0].Int() < row[1].Int()), nil
	})
	j := NewNestedLoopJoinNode(l, r, pred, "a<b")
	got := mustExec(t, j)
	if len(got.Rows) != 1 || got.Rows[0][0].Int() != 1 || got.Rows[0][1].Int() != 2 {
		t.Fatalf("nl join = %v", got.Rows)
	}
	cross := NewNestedLoopJoinNode(l, r, nil, "cross")
	if got := mustExec(t, cross); len(got.Rows) != 4 {
		t.Fatalf("cross join rows = %d", len(got.Rows))
	}
}

func TestGroupNode(t *testing.T) {
	in := NewValuesNode(intSchema("k", "v"), intRows(
		[]int64{1, 10}, []int64{2, 20}, []int64{1, 30}, []int64{2, 2}, []int64{1, 10},
	))
	out := intSchema("k", "cnt", "sum", "mx", "cntd")
	out.Columns[1].Kind = types.KindInt
	g := NewGroupNode(in, out, []*eval.Compiled{colFn(0)}, []AggSpec{
		{Func: "count", OutName: "cnt"},              // COUNT(*)
		{Func: "sum", Arg: colFn(1), OutName: "sum"}, // SUM(v)
		{Func: "max", Arg: colFn(1), OutName: "mx"},
		{Func: "count", Arg: colFn(1), Distinct: true, OutName: "cntd"},
	})
	got := mustExec(t, g)
	if len(got.Rows) != 2 {
		t.Fatalf("groups = %d", len(got.Rows))
	}
	byKey := map[int64]schema.Row{}
	for _, r := range got.Rows {
		byKey[r[0].Int()] = r
	}
	g1 := byKey[1]
	if g1[1].Int() != 3 || g1[2].Int() != 50 || g1[3].Int() != 30 || g1[4].Int() != 2 {
		t.Fatalf("group 1 = %v", g1)
	}
	// Groups come out in first-appearance order.
	if got.Rows[0][0].Int() != 1 || got.Rows[1][0].Int() != 2 {
		t.Fatalf("group order = %v", got.Rows)
	}
}

func TestGroupNodeGlobalEmptyInput(t *testing.T) {
	in := NewValuesNode(intSchema("v"), nil)
	out := intSchema("cnt", "mx")
	g := NewGroupNode(in, out, nil, []AggSpec{
		{Func: "count", OutName: "cnt"},
		{Func: "max", Arg: colFn(0), OutName: "mx"},
	})
	got := mustExec(t, g)
	if len(got.Rows) != 1 || got.Rows[0][0].Int() != 0 || !got.Rows[0][1].IsNull() {
		t.Fatalf("global agg over empty = %v", got.Rows)
	}
}

func TestAggNullHandling(t *testing.T) {
	in := NewValuesNode(intSchema("v"), []schema.Row{
		{types.NewInt(1)}, {types.Null}, {types.NewInt(3)},
	})
	out := intSchema("cnt_star", "cnt_v", "avg")
	g := NewGroupNode(in, out, nil, []AggSpec{
		{Func: "count", OutName: "cnt_star"},
		{Func: "count", Arg: colFn(0), OutName: "cnt_v"},
		{Func: "avg", Arg: colFn(0), OutName: "avg"},
	})
	got := mustExec(t, g)
	r := got.Rows[0]
	if r[0].Int() != 3 || r[1].Int() != 2 || r[2].Float() != 2.0 {
		t.Fatalf("null agg = %v", r)
	}
}

func TestAvgOverIntervals(t *testing.T) {
	in := NewValuesNode(
		schema.New(schema.Col("t", "iv", types.KindInterval)),
		[]schema.Row{{types.NewInterval(10)}, {types.NewInterval(30)}},
	)
	out := schema.New(schema.Col("", "a", types.KindInterval))
	g := NewGroupNode(in, out, nil, []AggSpec{{Func: "avg", Arg: colFn(0), OutName: "a"}})
	got := mustExec(t, g)
	if v := got.Rows[0][0]; v.Kind() != types.KindInterval || v.IntervalUsec() != 20 {
		t.Fatalf("avg interval = %v", v)
	}
}

func TestDistinctAndUnion(t *testing.T) {
	a := NewValuesNode(intSchema("v"), intRows([]int64{1}, []int64{2}, []int64{1}))
	b := NewValuesNode(intSchema("v"), intRows([]int64{2}, []int64{3}))
	d := NewDistinctNode(a)
	if got := mustExec(t, d); len(got.Rows) != 2 {
		t.Fatalf("distinct rows = %d", len(got.Rows))
	}
	uAll, err := NewUnionNode(a, b, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustExec(t, uAll); len(got.Rows) != 5 {
		t.Fatalf("union all rows = %d", len(got.Rows))
	}
	u, err := NewUnionNode(a, b, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustExec(t, u); len(got.Rows) != 3 {
		t.Fatalf("union rows = %d", len(got.Rows))
	}
	if _, err := NewUnionNode(a, NewValuesNode(intSchema("x", "y"), nil), false); err == nil {
		t.Fatal("arity mismatch must error")
	}
}

func TestCtxCachesSharedSubtrees(t *testing.T) {
	in := NewValuesNode(intSchema("v"), intRows([]int64{1}))
	counter := 0
	pred := eval.FromFunc(func(r schema.Row) (types.Value, error) {
		counter++
		return types.NewBool(true), nil
	})
	shared := NewFilterNode(in, pred, "count calls")
	u, _ := NewUnionNode(shared, shared, false)
	got := mustExec(t, u)
	if len(got.Rows) != 2 {
		t.Fatalf("rows = %d", len(got.Rows))
	}
	if counter != 1 {
		t.Fatalf("shared subtree executed %d times, want 1", counter)
	}
}

func TestExplainOutput(t *testing.T) {
	in := NewValuesNode(intSchema("v"), intRows([]int64{1}))
	f := NewFilterNode(in, eval.FromFunc(func(schema.Row) (types.Value, error) { return types.NewBool(true), nil }), "p")
	SetEstimates(f, 42, 100)
	out := Explain(f)
	if want := "Filter(p)  [rows=42 cost=100]\n  Values(1)  [rows=0 cost=0]\n"; out != want {
		t.Fatalf("explain = %q", out)
	}
	if CountNodes(f, "Filter") != 1 || CountNodes(f, "Values") != 1 || CountNodes(f, "Sort") != 0 {
		t.Fatal("CountNodes mismatch")
	}
}

func TestSetOpNode(t *testing.T) {
	a := NewValuesNode(intSchema("v"), intRows([]int64{1}, []int64{2}, []int64{2}, []int64{3}))
	b := NewValuesNode(intSchema("v"), intRows([]int64{2}, []int64{4}))
	ex, err := NewSetOpNode(a, b, SetOpExcept)
	if err != nil {
		t.Fatal(err)
	}
	got := mustExec(t, ex)
	if len(got.Rows) != 2 || got.Rows[0][0].Int() != 1 || got.Rows[1][0].Int() != 3 {
		t.Fatalf("except = %v", got.Rows)
	}
	in, err := NewSetOpNode(a, b, SetOpIntersect)
	if err != nil {
		t.Fatal(err)
	}
	got = mustExec(t, in)
	if len(got.Rows) != 1 || got.Rows[0][0].Int() != 2 {
		t.Fatalf("intersect = %v", got.Rows)
	}
	if _, err := NewSetOpNode(a, NewValuesNode(intSchema("x", "y"), nil), SetOpExcept); err == nil {
		t.Fatal("arity mismatch must error")
	}
}

func TestLimitOffsetNode(t *testing.T) {
	in := NewValuesNode(intSchema("v"), intRows([]int64{1}, []int64{2}, []int64{3}))
	n := NewLimitNode(in, 1)
	n.Offset = 1
	got := mustExec(t, n)
	if len(got.Rows) != 1 || got.Rows[0][0].Int() != 2 {
		t.Fatalf("limit/offset = %v", got.Rows)
	}
	// Offset past the end.
	n2 := NewLimitNode(in, -1)
	n2.Offset = 10
	if got := mustExec(t, n2); len(got.Rows) != 0 {
		t.Fatalf("past-end = %v", got.Rows)
	}
}

func TestExplainAnalyzeRecordsStats(t *testing.T) {
	in := NewValuesNode(intSchema("v"), intRows([]int64{1}, []int64{2}))
	f := NewFilterNode(in, eval.FromFunc(func(r schema.Row) (types.Value, error) {
		return types.NewBool(r[0].Int() > 1), nil
	}), "v>1")
	ctx := NewAnalyzeCtx()
	if _, err := Run(ctx, f); err != nil {
		t.Fatal(err)
	}
	st := ctx.Stats(f)
	if st == nil || st.Rows != 1 {
		t.Fatalf("stats = %+v", st)
	}
	out := ExplainAnalyze(f, ctx)
	if !strings.Contains(out, "actual rows=1") || !strings.Contains(out, "actual rows=2") {
		t.Fatalf("analyze output = %s", out)
	}
	// Cache hits show up.
	if _, err := Run(ctx, f); err != nil {
		t.Fatal(err)
	}
	if ctx.Stats(f).Hits != 1 {
		t.Fatalf("hits = %d", ctx.Stats(f).Hits)
	}
	if !strings.Contains(ExplainAnalyze(f, ctx), "cached×1") {
		t.Fatal("cache hits not rendered")
	}
}

func TestExplainAnalyzeNeverExecuted(t *testing.T) {
	in := NewValuesNode(intSchema("v"), nil)
	out := ExplainAnalyze(in, NewAnalyzeCtx())
	if !strings.Contains(out, "never executed") {
		t.Fatalf("analyze output = %s", out)
	}
}

func TestHashJoinBuildCacheReuseAndEpochEviction(t *testing.T) {
	fact := storage.NewTable("fact", intSchema("k"))
	for _, v := range []int64{1, 2, 3, 2, 1} {
		fact.Append(schema.Row{types.NewInt(v)})
	}
	dim := storage.NewTable("dim", intSchema("k", "v"))
	for _, rv := range [][2]int64{{1, 10}, {2, 20}, {3, 30}} {
		dim.Append(schema.Row{types.NewInt(rv[0]), types.NewInt(rv[1])})
	}

	join := NewHashJoinNode(NewScanNode(fact, "fact"), NewScanNode(dim, "dim"),
		[]*eval.Compiled{colFn(0)}, []*eval.Compiled{colFn(0)},
		JoinKindInner, nil, "fact.k = dim.k")
	join.CacheBuild = true

	run := func(epoch uint64, reuse bool) *Result {
		t.Helper()
		ctx := NewCtx()
		if reuse {
			ctx.EnableBuildReuse(epoch)
		}
		r, err := Run(ctx, join)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	first := run(1, true)
	if len(first.Rows) != 5 {
		t.Fatalf("join rows = %d", len(first.Rows))
	}
	if got := join.BuildCount(); got != 1 {
		t.Fatalf("builds after first run = %d", got)
	}

	// Same epoch: the build side is reused, not rebuilt, and the output
	// is identical.
	second := run(1, true)
	if got := join.BuildCount(); got != 1 {
		t.Fatalf("builds after same-epoch rerun = %d (cache not reused)", got)
	}
	if len(second.Rows) != len(first.Rows) {
		t.Fatalf("cached run rows = %d, want %d", len(second.Rows), len(first.Rows))
	}
	for i := range first.Rows {
		for j := range first.Rows[i] {
			if first.Rows[i][j] != second.Rows[i][j] {
				t.Fatalf("cached run differs at row %d col %d", i, j)
			}
		}
	}

	// A catalog mutation bumps the epoch; the stale build is evicted and
	// the new dimension row joins.
	dim.Append(schema.Row{types.NewInt(4), types.NewInt(40)})
	fact.Append(schema.Row{types.NewInt(4)})
	third := run(2, true)
	if got := join.BuildCount(); got != 2 {
		t.Fatalf("builds after epoch bump = %d (stale cache survived)", got)
	}
	if len(third.Rows) != 6 {
		t.Fatalf("post-append join rows = %d, want 6", len(third.Rows))
	}

	// A context that never opted in (a one-shot query) rebuilds.
	run(2, false)
	if got := join.BuildCount(); got != 3 {
		t.Fatalf("builds after non-reuse run = %d", got)
	}
}
