package exec

import (
	"fmt"
	"testing"

	"repro/internal/eval"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/types"
)

// BenchmarkColumnarScan measures the columnar fused-scan path against the
// row-era shape it replaced: a FilterNode sitting above a plain Scan that
// materializes every row first. All variants run the same predicate over
// the same sealed table at Parallelism=1 and produce bit-identical
// outputs (asserted once before timing).
//
//	filter-above-scan/row     the PR-2-era baseline: materialize, then
//	                          row-at-a-time predicate
//	filter-above-scan/vector  materialize, then batch kernels
//	fused/vector              predicate over segment column vectors,
//	                          matches materialized lazily
//	fused/vector-pruned       same, with a selective range predicate
//	                          whose zone maps skip 3 of 4 segments
func BenchmarkColumnarScan(b *testing.B) {
	tab := columnarBenchTable(b)

	wide := "case when flag = 1 and val < 900 then 0 else 1 end = 1 and val >= 5"
	selective := fmt.Sprintf("id >= %d and val >= 5", benchRows-benchRows/8)
	lo := types.NewInt(int64(benchRows - benchRows/8))
	selZone := []storage.ZonePred{{Col: 0, Bounds: storage.Bounds{Lo: &lo, LoIncl: true}}}

	mkFiltered := func(src string) Node {
		return NewFilterNode(NewScanNode(tab, "t"), benchCompileOn(b, src, tab), src)
	}
	mkFused := func(src string, zone []storage.ZonePred) Node {
		s := NewScanNode(tab, "t")
		s.Pred = benchCompileOn(b, src, tab)
		s.PredDesc = src
		s.Zone = zone
		return s
	}

	// Parity gate: every variant must produce the same rows.
	baseline := mustRows(b, mkFiltered(wide), false)
	for _, v := range []struct {
		name string
		node Node
		vec  bool
	}{
		{"filter-above-scan/vector", mkFiltered(wide), true},
		{"fused/vector", mkFused(wide, nil), true},
	} {
		got := mustRows(b, v.node, v.vec)
		assertSameRows(b, v.name, baseline, got)
	}
	prunedBase := mustRows(b, mkFiltered(selective), false)
	assertSameRows(b, "fused/vector-pruned", prunedBase, mustRows(b, mkFused(selective, selZone), true))

	run := func(name string, build func() Node, vec bool, rows int) {
		b.Run(name, func(b *testing.B) {
			n := build()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctx := NewCtx().SetParallelism(1).SetVectorize(vec)
				if _, err := Run(ctx, n); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
	run("filter-above-scan/row", func() Node { return mkFiltered(wide) }, false, benchRows)
	run("filter-above-scan/vector", func() Node { return mkFiltered(wide) }, true, benchRows)
	run("fused/vector", func() Node { return mkFused(wide, nil) }, true, benchRows)
	run("fused/vector-pruned", func() Node { return mkFused(selective, selZone) }, true, benchRows)
}

// columnarBenchTable seals benchRows rows into default-size segments:
// id ascending (zone-prunable), plus the flag/val/loc mix the
// vectorization benchmarks use.
func columnarBenchTable(b *testing.B) *storage.Table {
	b.Helper()
	s := &schema.Schema{}
	s.Columns = append(s.Columns,
		schema.Col("t", "id", types.KindInt),
		schema.Col("t", "flag", types.KindInt),
		schema.Col("t", "val", types.KindInt),
		schema.Col("t", "loc", types.KindString),
	)
	tab := storage.NewTable("t", s)
	data := benchRowsData(benchRows)
	for i, r := range data {
		row := schema.Row{types.NewInt(int64(i)), r[0], r[1], r[2]}
		if err := tab.Append(row); err != nil {
			b.Fatal(err)
		}
	}
	if tab.SegmentCount() < 2 {
		b.Fatalf("bench table sealed %d segments; raise benchRows", tab.SegmentCount())
	}
	return tab
}

func benchCompileOn(b *testing.B, src string, tab *storage.Table) *eval.Compiled {
	b.Helper()
	e, err := sqlparser.ParseExpr(src)
	if err != nil {
		b.Fatal(err)
	}
	c, err := eval.Compile(e, &eval.Env{Schema: tab.Schema.WithQualifier("t")})
	if err != nil {
		b.Fatal(err)
	}
	if !c.Vectorized() {
		b.Fatalf("%q compiled without a batch kernel", src)
	}
	return c
}

func mustRows(b *testing.B, n Node, vec bool) []schema.Row {
	b.Helper()
	res, err := Run(NewCtx().SetParallelism(1).SetVectorize(vec), n)
	if err != nil {
		b.Fatal(err)
	}
	return res.Rows
}

func assertSameRows(b *testing.B, name string, want, got []schema.Row) {
	b.Helper()
	if len(want) != len(got) {
		b.Fatalf("%s: %d rows, baseline %d", name, len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if want[i][j] != got[i][j] {
				b.Fatalf("%s: row %d col %d = %v, baseline %v", name, i, j, got[i][j], want[i][j])
			}
		}
	}
}
