package exec

import (
	"fmt"
	"strings"

	"repro/internal/eval"
	"repro/internal/schema"
	"repro/internal/types"
)

// AggSpec describes one aggregate computed by GroupNode.
type AggSpec struct {
	Func     string    // count, sum, avg, min, max (lower case)
	Arg      eval.Func // nil for COUNT(*)
	Distinct bool
	OutName  string
}

// accumulator folds values for one aggregate in one group following SQL
// semantics: NULL inputs are skipped; an empty input yields NULL (COUNT
// yields 0); AVG over INTERVAL yields INTERVAL, over numerics FLOAT.
type accumulator struct {
	fn       string
	distinct bool
	seen     map[string]struct{}

	count    int64
	sumInt   int64
	sumFloat float64
	isFloat  bool
	isIv     bool
	extreme  types.Value // running min/max
}

func newAccumulator(spec *AggSpec) *accumulator {
	a := &accumulator{fn: spec.Func, distinct: spec.Distinct, extreme: types.Null}
	if a.distinct {
		a.seen = map[string]struct{}{}
	}
	return a
}

func (a *accumulator) addRowCount() { a.count++ } // COUNT(*)

func (a *accumulator) add(v types.Value) error {
	if v.IsNull() {
		return nil
	}
	if a.distinct {
		k := v.GroupKey()
		if _, dup := a.seen[k]; dup {
			return nil
		}
		a.seen[k] = struct{}{}
	}
	a.count++
	switch a.fn {
	case "count":
		// nothing else
	case "sum", "avg":
		switch v.Kind() {
		case types.KindInt:
			a.sumInt += v.Int()
			a.sumFloat += float64(v.Int())
		case types.KindFloat:
			a.isFloat = true
			a.sumFloat += v.Float()
		case types.KindInterval:
			a.isIv = true
			a.sumInt += v.IntervalUsec()
		default:
			return fmt.Errorf("exec: %s over %s", strings.ToUpper(a.fn), v.Kind())
		}
	case "min", "max":
		if a.extreme.IsNull() {
			a.extreme = v
			return nil
		}
		c, err := types.Compare(v, a.extreme)
		if err != nil {
			return err
		}
		if (a.fn == "min" && c < 0) || (a.fn == "max" && c > 0) {
			a.extreme = v
		}
	default:
		return fmt.Errorf("exec: unknown aggregate %q", a.fn)
	}
	return nil
}

func (a *accumulator) result() types.Value {
	switch a.fn {
	case "count":
		return types.NewInt(a.count)
	case "sum":
		if a.count == 0 {
			return types.Null
		}
		switch {
		case a.isIv:
			return types.NewInterval(a.sumInt)
		case a.isFloat:
			return types.NewFloat(a.sumFloat)
		default:
			return types.NewInt(a.sumInt)
		}
	case "avg":
		if a.count == 0 {
			return types.Null
		}
		if a.isIv {
			return types.NewInterval(a.sumInt / a.count)
		}
		return types.NewFloat(a.sumFloat / float64(a.count))
	case "min", "max":
		return a.extreme
	}
	return types.Null
}

// GroupNode implements hash aggregation. With no keys it produces exactly
// one output row (global aggregation over a possibly empty input).
type GroupNode struct {
	base
	Input Node
	Keys  []eval.Func
	Aggs  []AggSpec
}

// NewGroupNode builds hash aggregation; out must list key columns first,
// then one column per aggregate.
func NewGroupNode(child Node, out *schema.Schema, keys []eval.Func, aggs []AggSpec) *GroupNode {
	n := &GroupNode{Input: child, Keys: keys, Aggs: aggs}
	n.schema = out
	return n
}

// Label implements Node.
func (n *GroupNode) Label() string {
	return fmt.Sprintf("HashGroup(%d keys, %d aggs)", len(n.Keys), len(n.Aggs))
}

// Children implements Node.
func (n *GroupNode) Children() []Node { return []Node{n.Input} }

type groupState struct {
	keyVals schema.Row
	accs    []*accumulator
	order   int
}

// Execute implements Node.
func (n *GroupNode) Execute(ctx *Ctx) (*Result, error) {
	in, err := Run(ctx, n.Input)
	if err != nil {
		return nil, err
	}
	groups := map[string]*groupState{}
	var sequence []*groupState
	for ri, r := range in.Rows {
		if err := ctx.Tick(ri); err != nil {
			return nil, err
		}
		keyVals := make(schema.Row, len(n.Keys))
		kb := make([]byte, 0, 16*len(n.Keys))
		for i, f := range n.Keys {
			v, err := f(r)
			if err != nil {
				return nil, err
			}
			keyVals[i] = v
			kb = append(kb, v.GroupKey()...)
			kb = append(kb, 0x1f)
		}
		k := string(kb)
		g, ok := groups[k]
		if !ok {
			g = &groupState{keyVals: keyVals, accs: make([]*accumulator, len(n.Aggs)), order: len(sequence)}
			for i := range n.Aggs {
				g.accs[i] = newAccumulator(&n.Aggs[i])
			}
			groups[k] = g
			sequence = append(sequence, g)
		}
		for i := range n.Aggs {
			spec := &n.Aggs[i]
			if spec.Arg == nil {
				g.accs[i].addRowCount()
				continue
			}
			v, err := spec.Arg(r)
			if err != nil {
				return nil, err
			}
			if err := g.accs[i].add(v); err != nil {
				return nil, err
			}
		}
	}
	if len(n.Keys) == 0 && len(sequence) == 0 {
		// Global aggregate over empty input: one row of empty-group results.
		g := &groupState{accs: make([]*accumulator, len(n.Aggs))}
		for i := range n.Aggs {
			g.accs[i] = newAccumulator(&n.Aggs[i])
		}
		sequence = append(sequence, g)
	}
	out := make([]schema.Row, len(sequence))
	for i, g := range sequence {
		row := make(schema.Row, 0, len(n.Keys)+len(n.Aggs))
		row = append(row, g.keyVals...)
		for _, acc := range g.accs {
			row = append(row, acc.result())
		}
		out[i] = row
	}
	return &Result{Schema: n.schema, Rows: out}, nil
}
