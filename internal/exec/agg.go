package exec

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/eval"
	"repro/internal/govern"
	"repro/internal/schema"
	"repro/internal/types"
)

// AggSpec describes one aggregate computed by GroupNode.
type AggSpec struct {
	Func     string         // count, sum, avg, min, max (lower case)
	Arg      *eval.Compiled // nil for COUNT(*)
	Distinct bool
	OutName  string
}

// accumulator folds values for one aggregate in one group following SQL
// semantics: NULL inputs are skipped; an empty input yields NULL (COUNT
// yields 0); AVG over INTERVAL yields INTERVAL, over numerics FLOAT.
type accumulator struct {
	fn       string
	distinct bool
	seen     map[string]struct{}

	count    int64
	sumInt   int64
	sumFloat float64
	isFloat  bool
	isIv     bool
	extreme  types.Value // running min/max
}

func newAccumulator(spec *AggSpec) *accumulator {
	a := &accumulator{fn: spec.Func, distinct: spec.Distinct, extreme: types.Null}
	if a.distinct {
		a.seen = map[string]struct{}{}
	}
	return a
}

func (a *accumulator) addRowCount() { a.count++ } // COUNT(*)

func (a *accumulator) add(v types.Value) error {
	if v.IsNull() {
		return nil
	}
	if a.distinct {
		k := v.GroupKey()
		if _, dup := a.seen[k]; dup {
			return nil
		}
		a.seen[k] = struct{}{}
	}
	a.count++
	switch a.fn {
	case "count":
		// nothing else
	case "sum", "avg":
		switch v.Kind() {
		case types.KindInt:
			a.sumInt += v.Int()
			a.sumFloat += float64(v.Int())
		case types.KindFloat:
			a.isFloat = true
			a.sumFloat += v.Float()
		case types.KindInterval:
			a.isIv = true
			a.sumInt += v.IntervalUsec()
		default:
			return fmt.Errorf("exec: %s over %s", strings.ToUpper(a.fn), v.Kind())
		}
	case "min", "max":
		if a.extreme.IsNull() {
			a.extreme = v
			return nil
		}
		c, err := types.Compare(v, a.extreme)
		if err != nil {
			return err
		}
		if (a.fn == "min" && c < 0) || (a.fn == "max" && c > 0) {
			a.extreme = v
		}
	default:
		return fmt.Errorf("exec: unknown aggregate %q", a.fn)
	}
	return nil
}

func (a *accumulator) result() types.Value {
	switch a.fn {
	case "count":
		return types.NewInt(a.count)
	case "sum":
		if a.count == 0 {
			return types.Null
		}
		switch {
		case a.isIv:
			return types.NewInterval(a.sumInt)
		case a.isFloat:
			return types.NewFloat(a.sumFloat)
		default:
			return types.NewInt(a.sumInt)
		}
	case "avg":
		if a.count == 0 {
			return types.Null
		}
		if a.isIv {
			return types.NewInterval(a.sumInt / a.count)
		}
		return types.NewFloat(a.sumFloat / float64(a.count))
	case "min", "max":
		return a.extreme
	}
	return types.Null
}

// GroupNode implements hash aggregation. With no keys it produces exactly
// one output row (global aggregation over a possibly empty input).
type GroupNode struct {
	base
	Input Node
	Keys  []*eval.Compiled
	Aggs  []AggSpec
}

// NewGroupNode builds hash aggregation; out must list key columns first,
// then one column per aggregate.
func NewGroupNode(child Node, out *schema.Schema, keys []*eval.Compiled, aggs []AggSpec) *GroupNode {
	n := &GroupNode{Input: child, Keys: keys, Aggs: aggs}
	n.schema = out
	return n
}

// Label implements Node.
func (n *GroupNode) Label() string {
	return fmt.Sprintf("HashGroup(%d keys, %d aggs)", len(n.Keys), len(n.Aggs))
}

// Children implements Node.
func (n *GroupNode) Children() []Node { return []Node{n.Input} }

type groupState struct {
	keyVals schema.Row
	accs    []*accumulator
	first   int // global index of the group's first input row
}

// Execute implements Node. Aggregation runs in two phases: first every
// row's group key is encoded (and every aggregate argument evaluated)
// morsel-parallel, then the groups are partitioned by key hash and one
// worker per partition folds its groups' rows in global input order.
// Each group is wholly owned by a single worker, so floating-point
// accumulation keeps the serial association order and the output is
// bit-identical at any parallelism — unlike merge-combined partial
// aggregates, which would reassociate sums.
func (n *GroupNode) Execute(ctx *Ctx) (*Result, error) {
	in, err := Run(ctx, n.Input)
	if err != nil {
		return nil, err
	}
	nrows := len(in.Rows)
	// Reserve the hash-aggregation working set (encoded keys, hashes,
	// evaluated aggregate arguments). A refused reservation degrades to
	// the grace-hash path when spilling is enabled.
	work := groupWorkBytes(nrows, len(n.Aggs))
	if err := ctx.res.Reserve(work); err != nil {
		if !ctx.res.CanSpill() {
			return nil, err
		}
		return n.graceExecute(ctx, in)
	}
	defer ctx.res.Release(work)
	workers := ctx.workersFor(nrows)
	ctx.noteWorkers(n, workers)
	vec := ctx.useVector(n.Keys...)
	for ai := range n.Aggs {
		vec = vec && ctx.useVector(n.Aggs[ai].Arg)
	}
	ctx.noteEval(n, vec, nrows)

	// Phase 1: encode group keys into per-morsel arenas and evaluate
	// aggregate arguments. NULL keys form regular groups — the encoding
	// distinguishes NULL from every concrete value. The vector path
	// batch-evaluates keys into column vectors (feeding the encoder from
	// those) and aggregate arguments straight into their argVals slices.
	keyBytes := make([][]byte, nrows)
	hashes := make([]uint64, nrows)
	argVals := make([][]types.Value, len(n.Aggs))
	for ai := range n.Aggs {
		if n.Aggs[ai].Arg != nil {
			argVals[ai] = make([]types.Value, nrows)
		}
	}
	encs := make([]keyEnc, workers)
	err = ctx.parallelFor(nrows, workers, func(w, _, lo, hi int) error {
		enc := &encs[w]
		var arena []byte
		phase1Serial := func(b, e int) error {
			for i := b; i < e; i++ {
				if err := ctx.Tick(i - b); err != nil {
					return err
				}
				r := in.Rows[i]
				key, _, err := enc.funcs(n.Keys, r)
				if err != nil {
					return err
				}
				start := len(arena)
				arena = append(arena, key...)
				kb := arena[start:len(arena):len(arena)]
				keyBytes[i] = kb
				hashes[i] = hashKey(kb)
				for ai := range n.Aggs {
					if vals := argVals[ai]; vals != nil {
						v, err := n.Aggs[ai].Arg.Eval(r)
						if err != nil {
							return err
						}
						vals[i] = v
					}
				}
			}
			return nil
		}
		if !vec {
			return phase1Serial(lo, hi)
		}
		cols := evalScratch(len(n.Keys), MorselSize)
		return ctx.forBatches(lo, hi, func(b, e int) error {
			chunk := in.Rows[b:e]
			ok := tryBatchAll(n.Keys, chunk, cols)
			for ai := range n.Aggs {
				if !ok {
					break
				}
				if vals := argVals[ai]; vals != nil {
					ok = n.Aggs[ai].Arg.TryBatch(chunk, vals[b:e], nil)
				}
			}
			if !ok {
				return phase1Serial(b, e)
			}
			for i := range chunk {
				key, _ := enc.cols(cols, i)
				start := len(arena)
				arena = append(arena, key...)
				kb := arena[start:len(arena):len(arena)]
				keyBytes[b+i] = kb
				hashes[b+i] = hashKey(kb)
			}
			return nil
		})
	})
	if err != nil {
		return nil, err
	}

	// Phase 2: partitioned fold. Each worker scans the rows in order and
	// folds the ones whose key hash lands in its partition.
	parts := make([]*keyTable[*groupState], workers)
	foldPartition := func(p int) error {
		t := newKeyTable[*groupState](nrows/(workers*4) + 1)
		parts[p] = t
		np := uint64(workers)
		touched := 0
		for i := 0; i < nrows; i++ {
			if hashes[i]%np != uint64(p) {
				continue
			}
			if err := ctx.Tick(touched); err != nil {
				return err
			}
			touched++
			var g *groupState
			if gp := t.lookup(hashes[i], keyBytes[i]); gp != nil {
				g = *gp
			} else {
				r := in.Rows[i]
				keyVals := make(schema.Row, len(n.Keys))
				for ki, f := range n.Keys {
					v, err := f.Eval(r)
					if err != nil {
						return err
					}
					keyVals[ki] = v
				}
				g = &groupState{keyVals: keyVals, accs: make([]*accumulator, len(n.Aggs)), first: i}
				for ai := range n.Aggs {
					g.accs[ai] = newAccumulator(&n.Aggs[ai])
				}
				t.insert(hashes[i], keyBytes[i], g)
			}
			for ai := range n.Aggs {
				if vals := argVals[ai]; vals != nil {
					if err := g.accs[ai].add(vals[i]); err != nil {
						return err
					}
				} else {
					g.accs[ai].addRowCount()
				}
			}
		}
		return nil
	}
	if workers == 1 {
		if err := foldPartition(0); err != nil {
			return nil, err
		}
	} else {
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for p := 0; p < workers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				defer func() {
					if rec := recover(); rec != nil {
						errs[p] = govern.Internalize(rec)
					}
				}()
				errs[p] = foldPartition(p)
			}(p)
		}
		wg.Wait()
		if err := firstError(errs); err != nil {
			return nil, err
		}
	}

	// Sequence groups by first appearance — the serial output order.
	var sequence []*groupState
	for _, t := range parts {
		for _, b := range t.buckets {
			for i := range b {
				sequence = append(sequence, b[i].val)
			}
		}
	}
	sort.Slice(sequence, func(i, j int) bool { return sequence[i].first < sequence[j].first })
	return n.emitGroups(ctx, sequence)
}

// emitGroups materializes the output rows from groups already sequenced
// in first-appearance order; the in-memory and grace-hash paths share it.
func (n *GroupNode) emitGroups(ctx *Ctx, sequence []*groupState) (*Result, error) {
	if len(n.Keys) == 0 && len(sequence) == 0 {
		// Global aggregate over empty input: one row of empty-group results.
		g := &groupState{accs: make([]*accumulator, len(n.Aggs))}
		for i := range n.Aggs {
			g.accs[i] = newAccumulator(&n.Aggs[i])
		}
		sequence = append(sequence, g)
	}
	ctx.res.Charge(int64(len(sequence)) * (rowHdrBytes + int64(n.schema.Len())*valueBytes))
	out := make([]schema.Row, len(sequence))
	for i, g := range sequence {
		row := make(schema.Row, 0, len(n.Keys)+len(n.Aggs))
		row = append(row, g.keyVals...)
		for _, acc := range g.accs {
			row = append(row, acc.result())
		}
		out[i] = row
	}
	return &Result{Schema: n.schema, Rows: out}, nil
}
