package exec

import (
	"fmt"

	"repro/internal/eval"
	"repro/internal/schema"
	"repro/internal/types"
)

// HashJoinNode joins Left (probe, streamed — its ordering survives) with
// Right (build) on equality keys, with an optional residual predicate over
// the concatenated row.
type HashJoinNode struct {
	base
	Left, Right Node
	LeftKeys    []eval.Func
	RightKeys   []eval.Func
	JoinType    JoinKind
	Residual    eval.Func // over concat(left, right); may be nil
	Desc        string
}

// JoinKind enumerates join semantics.
type JoinKind uint8

// Join kinds.
const (
	JoinKindInner JoinKind = iota
	JoinKindLeft
)

func (k JoinKind) String() string {
	if k == JoinKindLeft {
		return "Left"
	}
	return "Inner"
}

// NewHashJoinNode builds a hash join; the output schema is the
// concatenation left ++ right.
func NewHashJoinNode(l, r Node, lk, rk []eval.Func, kind JoinKind, residual eval.Func, desc string) *HashJoinNode {
	n := &HashJoinNode{Left: l, Right: r, LeftKeys: lk, RightKeys: rk, JoinType: kind, Residual: residual, Desc: desc}
	n.schema = schema.Concat(l.Schema(), r.Schema())
	return n
}

// Label implements Node.
func (n *HashJoinNode) Label() string {
	return fmt.Sprintf("HashJoin[%s](%s)", n.JoinType, n.Desc)
}

// Children implements Node.
func (n *HashJoinNode) Children() []Node { return []Node{n.Left, n.Right} }

// Execute implements Node.
func (n *HashJoinNode) Execute(ctx *Ctx) (*Result, error) {
	l, err := Run(ctx, n.Left)
	if err != nil {
		return nil, err
	}
	r, err := Run(ctx, n.Right)
	if err != nil {
		return nil, err
	}
	// Build phase over the right input.
	build := make(map[string][]schema.Row, len(r.Rows))
	for i, row := range r.Rows {
		if err := ctx.Tick(i); err != nil {
			return nil, err
		}
		key, null, err := joinKey(n.RightKeys, row)
		if err != nil {
			return nil, err
		}
		if null {
			continue // NULL keys never join
		}
		build[key] = append(build[key], row)
	}
	rightWidth := r.Schema.Len()
	out := make([]schema.Row, 0, len(l.Rows))
	for i, lrow := range l.Rows {
		if err := ctx.Tick(i); err != nil {
			return nil, err
		}
		key, null, err := joinKey(n.LeftKeys, lrow)
		if err != nil {
			return nil, err
		}
		matched := false
		if !null {
			for _, rrow := range build[key] {
				joined := concatRows(lrow, rrow)
				if n.Residual != nil {
					ok, err := eval.EvalPredicate(n.Residual, joined)
					if err != nil {
						return nil, err
					}
					if !ok {
						continue
					}
				}
				matched = true
				out = append(out, joined)
			}
		}
		if !matched && n.JoinType == JoinKindLeft {
			out = append(out, concatRows(lrow, nullRow(rightWidth)))
		}
	}
	return &Result{Schema: n.schema, Rows: out}, nil
}

func joinKey(keys []eval.Func, row schema.Row) (string, bool, error) {
	b := make([]byte, 0, 16*len(keys))
	for _, f := range keys {
		v, err := f(row)
		if err != nil {
			return "", false, err
		}
		if v.IsNull() {
			return "", true, nil
		}
		b = append(b, v.GroupKey()...)
		b = append(b, 0x1f)
	}
	return string(b), false, nil
}

func concatRows(l, r schema.Row) schema.Row {
	out := make(schema.Row, 0, len(l)+len(r))
	out = append(out, l...)
	return append(out, r...)
}

func nullRow(width int) schema.Row {
	out := make(schema.Row, width)
	for i := range out {
		out[i] = types.Null
	}
	return out
}

// NestedLoopJoinNode joins two inputs with an arbitrary predicate; used
// when no equality keys exist. Inner joins only.
type NestedLoopJoinNode struct {
	base
	Left, Right Node
	Pred        eval.Func // may be nil (cross join)
	Desc        string
}

// NewNestedLoopJoinNode builds a nested-loop inner join.
func NewNestedLoopJoinNode(l, r Node, pred eval.Func, desc string) *NestedLoopJoinNode {
	n := &NestedLoopJoinNode{Left: l, Right: r, Pred: pred, Desc: desc}
	n.schema = schema.Concat(l.Schema(), r.Schema())
	return n
}

// Label implements Node.
func (n *NestedLoopJoinNode) Label() string { return "NLJoin(" + n.Desc + ")" }

// Children implements Node.
func (n *NestedLoopJoinNode) Children() []Node { return []Node{n.Left, n.Right} }

// Execute implements Node.
func (n *NestedLoopJoinNode) Execute(ctx *Ctx) (*Result, error) {
	l, err := Run(ctx, n.Left)
	if err != nil {
		return nil, err
	}
	r, err := Run(ctx, n.Right)
	if err != nil {
		return nil, err
	}
	var out []schema.Row
	pairs := 0
	for _, lrow := range l.Rows {
		for _, rrow := range r.Rows {
			if err := ctx.Tick(pairs); err != nil {
				return nil, err
			}
			pairs++
			joined := concatRows(lrow, rrow)
			if n.Pred != nil {
				ok, err := eval.EvalPredicate(n.Pred, joined)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			out = append(out, joined)
		}
	}
	return &Result{Schema: n.schema, Rows: out}, nil
}
