package exec

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/eval"
	"repro/internal/govern"
	"repro/internal/schema"
	"repro/internal/types"
)

// HashJoinNode joins Left (probe, streamed — its ordering survives) with
// Right (build) on equality keys, with an optional residual predicate over
// the concatenated row.
//
// Both phases are morsel-parallel: build keys are evaluated in parallel,
// then the hash table is partitioned by key hash into per-worker
// sub-tables each built by one goroutine (rows land in input order, as in
// the serial build); probe morsels write per-morsel output slices that
// concatenate in morsel order, so the output is bit-identical to serial
// execution. The two inputs themselves execute concurrently.
type HashJoinNode struct {
	base
	Left, Right Node
	LeftKeys    []*eval.Compiled
	RightKeys   []*eval.Compiled
	JoinType    JoinKind
	Residual    *eval.Compiled // over concat(left, right); may be nil
	Desc        string

	// CacheBuild marks the build side as reusable across executions of
	// this plan node: the planner sets it only when Right is a pure
	// base-table scan (no index bounds, no fused predicate), whose
	// contents change only through catalog mutations — which bump the
	// epoch and so invalidate the cache. Reuse additionally requires the
	// executing context to opt in (Ctx.EnableBuildReuse); one-shot
	// queries never reuse, prepared statements over static dimension
	// tables do.
	CacheBuild bool

	buildMu     sync.Mutex
	cachedBuild *joinTable
	cachedRows  int    // build-side row count the cached table was built from
	cachedEpoch uint64 // catalog epoch the cached table was built under
	builds      atomic.Int64
}

// BuildCount reports how many times this node ran its build phase; the
// build-reuse tests assert on it.
func (n *HashJoinNode) BuildCount() int64 { return n.builds.Load() }

// cachedTable returns the cached build table when reuse is on and the
// table was built under the context's epoch; (nil, 0) otherwise.
func (n *HashJoinNode) cachedTable(ctx *Ctx) (*joinTable, int) {
	if !n.CacheBuild || !ctx.buildReuse {
		return nil, 0
	}
	n.buildMu.Lock()
	defer n.buildMu.Unlock()
	if n.cachedBuild == nil || n.cachedEpoch != ctx.buildEpoch {
		return nil, 0
	}
	return n.cachedBuild, n.cachedRows
}

// storeTable caches a freshly built in-memory table under the context's
// epoch. Concurrent runs may race to store equivalent tables; last wins.
func (n *HashJoinNode) storeTable(ctx *Ctx, jt *joinTable, rows int) {
	if !n.CacheBuild || !ctx.buildReuse {
		return
	}
	n.buildMu.Lock()
	n.cachedBuild, n.cachedRows, n.cachedEpoch = jt, rows, ctx.buildEpoch
	n.buildMu.Unlock()
}

// JoinKind enumerates join semantics.
type JoinKind uint8

// Join kinds.
const (
	JoinKindInner JoinKind = iota
	JoinKindLeft
)

func (k JoinKind) String() string {
	if k == JoinKindLeft {
		return "Left"
	}
	return "Inner"
}

// NewHashJoinNode builds a hash join; the output schema is the
// concatenation left ++ right.
func NewHashJoinNode(l, r Node, lk, rk []*eval.Compiled, kind JoinKind, residual *eval.Compiled, desc string) *HashJoinNode {
	n := &HashJoinNode{Left: l, Right: r, LeftKeys: lk, RightKeys: rk, JoinType: kind, Residual: residual, Desc: desc}
	n.schema = schema.Concat(l.Schema(), r.Schema())
	return n
}

// Label implements Node.
func (n *HashJoinNode) Label() string {
	return fmt.Sprintf("HashJoin[%s](%s)", n.JoinType, n.Desc)
}

// Children implements Node.
func (n *HashJoinNode) Children() []Node { return []Node{n.Left, n.Right} }

// joinTable is the build side of a hash join, partitioned by key hash so
// that independent workers could build (and later probe) disjoint
// sub-tables without synchronization.
type joinTable struct {
	parts []*keyTable[[]schema.Row]
}

func (jt *joinTable) lookupRows(h uint64, key []byte) []schema.Row {
	p := jt.parts[h%uint64(len(jt.parts))]
	if rows := p.lookup(h, key); rows != nil {
		return *rows
	}
	return nil
}

// buildJoinTable evaluates the build-side keys morsel-parallel, then has
// one goroutine per hash partition insert its share of the rows. Each
// partition is filled by a single worker scanning rows in input order, so
// the per-key row lists match the serial build exactly.
func buildJoinTable(ctx *Ctx, rows []schema.Row, keys []*eval.Compiled, workers int) (*joinTable, error) {
	n := len(rows)
	if w := ctx.workersFor(n); workers > w {
		workers = w
	}
	if workers < 1 {
		workers = 1
	}
	vec := ctx.useVector(keys...)

	// Phase 1: encode every row's key into per-morsel arenas (NULL keys
	// never join; they keep a nil slot). The vector path batch-evaluates
	// the key expressions into column vectors and feeds the encoder from
	// those.
	keyBytes := make([][]byte, n)
	hashes := make([]uint64, n)
	encs := make([]keyEnc, workers)
	err := ctx.parallelFor(n, workers, func(w, _, lo, hi int) error {
		enc := &encs[w]
		var arena []byte
		encodeSerial := func(b, e int) error {
			for i := b; i < e; i++ {
				if err := ctx.Tick(i - b); err != nil {
					return err
				}
				key, null, err := enc.funcs(keys, rows[i])
				if err != nil {
					return err
				}
				if null {
					continue
				}
				start := len(arena)
				arena = append(arena, key...)
				kb := arena[start:len(arena):len(arena)]
				keyBytes[i] = kb
				hashes[i] = hashKey(kb)
			}
			return nil
		}
		if !vec {
			return encodeSerial(lo, hi)
		}
		cols := evalScratch(len(keys), MorselSize)
		return ctx.forBatches(lo, hi, func(b, e int) error {
			chunk := rows[b:e]
			if !tryBatchAll(keys, chunk, cols) {
				return encodeSerial(b, e)
			}
			for i := range chunk {
				key, null := enc.cols(cols, i)
				if null {
					continue
				}
				start := len(arena)
				arena = append(arena, key...)
				kb := arena[start:len(arena):len(arena)]
				keyBytes[b+i] = kb
				hashes[b+i] = hashKey(kb)
			}
			return nil
		})
	})
	if err != nil {
		return nil, err
	}

	// Phase 2: partitioned insert.
	jt := &joinTable{parts: make([]*keyTable[[]schema.Row], workers)}
	insertPartition := func(p int) error {
		t := newKeyTable[[]schema.Row](n/workers + 1)
		jt.parts[p] = t
		np := uint64(workers)
		touched := 0
		for i := 0; i < n; i++ {
			kb := keyBytes[i]
			if kb == nil || hashes[i]%np != uint64(p) {
				continue
			}
			if err := ctx.Tick(touched); err != nil {
				return err
			}
			touched++
			if rp := t.lookup(hashes[i], kb); rp != nil {
				*rp = append(*rp, rows[i])
			} else {
				// Arena-backed keys are stable; no copy needed.
				t.insert(hashes[i], kb, []schema.Row{rows[i]})
			}
		}
		return nil
	}
	if workers == 1 {
		if err := insertPartition(0); err != nil {
			return nil, err
		}
		return jt, nil
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for p := 0; p < workers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					errs[p] = govern.Internalize(rec)
				}
			}()
			errs[p] = insertPartition(p)
		}(p)
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		return nil, err
	}
	return jt, nil
}

// Execute implements Node.
func (n *HashJoinNode) Execute(ctx *Ctx) (*Result, error) {
	build, buildRows := n.cachedTable(ctx)
	var l, r *Result
	var err error
	if build != nil {
		// Cache hit: the build input isn't run at all — the whole point
		// for a prepared statement probing a static dimension table.
		l, err = Run(ctx, n.Left)
	} else {
		l, r, err = runPair(ctx, n.Left, n.Right)
		if err == nil {
			buildRows = len(r.Rows)
		}
	}
	if err != nil {
		return nil, err
	}
	// Reserve the build table and probe-key working set; a refused
	// reservation degrades to the grace-hash path when spilling is
	// enabled (running the build input first if the cache had skipped
	// it, exactly as a cold run would).
	work := joinWorkBytes(len(l.Rows), buildRows)
	if err := ctx.res.Reserve(work); err != nil {
		if !ctx.res.CanSpill() {
			return nil, err
		}
		if r == nil {
			if r, err = Run(ctx, n.Right); err != nil {
				return nil, err
			}
		}
		return n.graceExecute(ctx, l, r)
	}
	defer ctx.res.Release(work)
	workers := ctx.workersFor(max(len(l.Rows), buildRows))
	ctx.noteWorkers(n, workers)
	vecProbe := ctx.useVector(n.LeftKeys...) && ctx.useVector(n.Residual)
	ctx.noteEval(n, ctx.useVector(n.RightKeys...) && vecProbe, len(l.Rows)+buildRows)

	if build == nil {
		build, err = buildJoinTable(ctx, r.Rows, n.RightKeys, workers)
		if err != nil {
			return nil, err
		}
		n.builds.Add(1)
		// Only a complete in-memory build is cached — the grace path
		// returned above, and errors never reach here.
		n.storeTable(ctx, build, buildRows)
	}

	probeWorkers := workers
	if w := ctx.workersFor(len(l.Rows)); probeWorkers > w {
		probeWorkers = w
	}
	outs := make([][]schema.Row, morselCount(len(l.Rows), probeWorkers))
	pss := make([]*probeState, probeWorkers)
	for w := range pss {
		pss[w] = newProbeState(n, build, vecProbe)
	}
	err = ctx.parallelFor(len(l.Rows), probeWorkers, func(w, m, lo, hi int) error {
		out, err := pss[w].probeRange(ctx, l.Rows, lo, hi, make([]schema.Row, 0, hi-lo))
		if err != nil {
			return err
		}
		outs[m] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := concatMorsels(outs)
	ctx.res.Charge(int64(len(rows)) * (rowHdrBytes + int64(n.schema.Len())*valueBytes))
	return &Result{Schema: n.schema, Rows: rows}, nil
}

// probeState is the reusable per-worker state of a hash-join probe: the
// key encoder and, in vector mode, the evaluation scratch. One instance
// serves one goroutine at a time — the materializing Execute keeps one
// per pool worker, the streaming joinSource keeps one for its consumer.
type probeState struct {
	n          *HashJoinNode
	build      *joinTable
	vec        bool
	rightWidth int
	enc        keyEnc
	cols       [][]types.Value
	cand       []schema.Row
	candStart  []int
	sel        []int
}

func newProbeState(n *HashJoinNode, build *joinTable, vec bool) *probeState {
	ps := &probeState{n: n, build: build, vec: vec, rightWidth: n.Right.Schema().Len()}
	if vec {
		ps.cols = evalScratch(len(n.LeftKeys), MorselSize)
		ps.candStart = make([]int, 0, MorselSize+1)
	}
	return ps
}

// probeRange probes rows[lo:hi] against the build table, appending the
// joined output to out in the serial probe order and returning it.
func (ps *probeState) probeRange(ctx *Ctx, rows []schema.Row, lo, hi int, out []schema.Row) ([]schema.Row, error) {
	n := ps.n
	probeSerial := func(b, e int) error {
		for i := b; i < e; i++ {
			if err := ctx.Tick(i - b); err != nil {
				return err
			}
			lrow := rows[i]
			key, null, err := ps.enc.funcs(n.LeftKeys, lrow)
			if err != nil {
				return err
			}
			matched := false
			if !null {
				for _, rrow := range ps.build.lookupRows(hashKey(key), key) {
					joined := concatRows(lrow, rrow)
					if n.Residual != nil {
						ok, err := eval.EvalPredicate(n.Residual, joined)
						if err != nil {
							return err
						}
						if !ok {
							continue
						}
					}
					matched = true
					out = append(out, joined)
				}
			}
			if !matched && n.JoinType == JoinKindLeft {
				out = append(out, concatRows(lrow, nullRow(ps.rightWidth)))
			}
		}
		return nil
	}
	if !ps.vec {
		err := probeSerial(lo, hi)
		return out, err
	}
	// Vector probe: batch-evaluate the probe keys, gather every
	// candidate joined row of the chunk with per-left-row ranges, run
	// the residual once over all candidates, then emit survivors (and
	// left-join padding) in the serial order.
	err := ctx.forBatches(lo, hi, func(b, e int) error {
		chunk := rows[b:e]
		if !tryBatchAll(n.LeftKeys, chunk, ps.cols) {
			return probeSerial(b, e)
		}
		ps.cand = ps.cand[:0]
		ps.candStart = ps.candStart[:0]
		for i := range chunk {
			ps.candStart = append(ps.candStart, len(ps.cand))
			key, null := ps.enc.cols(ps.cols, i)
			if null {
				continue
			}
			for _, rrow := range ps.build.lookupRows(hashKey(key), key) {
				ps.cand = append(ps.cand, concatRows(chunk[i], rrow))
			}
		}
		ps.candStart = append(ps.candStart, len(ps.cand))
		if n.Residual != nil {
			var perr error
			ps.sel, perr = eval.EvalPredicateBatch(n.Residual, ps.cand, nil, ps.sel[:0])
			if perr != nil {
				return perr
			}
		}
		si := 0
		for i := range chunk {
			s0, s1 := ps.candStart[i], ps.candStart[i+1]
			matched := s1 > s0
			if n.Residual == nil {
				out = append(out, ps.cand[s0:s1]...)
			} else {
				matched = false
				for si < len(ps.sel) && ps.sel[si] < s1 {
					out = append(out, ps.cand[ps.sel[si]])
					matched = true
					si++
				}
			}
			if !matched && n.JoinType == JoinKindLeft {
				out = append(out, concatRows(chunk[i], nullRow(ps.rightWidth)))
			}
		}
		return nil
	})
	return out, err
}

func concatRows(l, r schema.Row) schema.Row {
	out := make(schema.Row, 0, len(l)+len(r))
	out = append(out, l...)
	return append(out, r...)
}

func nullRow(width int) schema.Row {
	out := make(schema.Row, width)
	for i := range out {
		out[i] = types.Null
	}
	return out
}

// NestedLoopJoinNode joins two inputs with an arbitrary predicate; used
// when no equality keys exist. Inner joins only. The pair loop stays
// serial (nested-loop inputs are small by construction — the planner only
// picks it without equality keys), but the two inputs run concurrently.
type NestedLoopJoinNode struct {
	base
	Left, Right Node
	Pred        *eval.Compiled // may be nil (cross join)
	Desc        string
}

// NewNestedLoopJoinNode builds a nested-loop inner join.
func NewNestedLoopJoinNode(l, r Node, pred *eval.Compiled, desc string) *NestedLoopJoinNode {
	n := &NestedLoopJoinNode{Left: l, Right: r, Pred: pred, Desc: desc}
	n.schema = schema.Concat(l.Schema(), r.Schema())
	return n
}

// Label implements Node.
func (n *NestedLoopJoinNode) Label() string { return "NLJoin(" + n.Desc + ")" }

// Children implements Node.
func (n *NestedLoopJoinNode) Children() []Node { return []Node{n.Left, n.Right} }

// Execute implements Node.
func (n *NestedLoopJoinNode) Execute(ctx *Ctx) (*Result, error) {
	l, r, err := runPair(ctx, n.Left, n.Right)
	if err != nil {
		return nil, err
	}
	// Nested-loop inputs are small by construction; account the pair
	// cross-product's worst-case output references.
	if err := ctx.reserveOrCharge(int64(len(l.Rows)) * int64(len(r.Rows)) * rowHdrBytes); err != nil {
		return nil, err
	}
	var out []schema.Row
	pairs := 0
	for _, lrow := range l.Rows {
		for _, rrow := range r.Rows {
			if err := ctx.Tick(pairs); err != nil {
				return nil, err
			}
			pairs++
			joined := concatRows(lrow, rrow)
			if n.Pred != nil {
				ok, err := eval.EvalPredicate(n.Pred, joined)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			out = append(out, joined)
		}
	}
	return &Result{Schema: n.schema, Rows: out}, nil
}
