package exec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/eval"
	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/types"
)

// windowInput builds rows (part, key, val) already sorted by (part, key),
// as the planner guarantees for WindowNode.
func windowInput(parts, keys, vals []int64) *ValuesNode {
	rows := make([]schema.Row, len(parts))
	for i := range parts {
		rows[i] = schema.Row{types.NewInt(parts[i]), types.NewInt(keys[i]), types.NewInt(vals[i])}
	}
	return NewValuesNode(intSchema("p", "k", "v"), rows)
}

func runWindow(t *testing.T, in Node, agg WindowAgg) []types.Value {
	t.Helper()
	out := in.Schema().Clone()
	out.Columns = append(out.Columns, schema.Col("", agg.OutName, agg.Kind))
	w := NewWindowNode(in, out, []*eval.Compiled{colFn(0)}, []*eval.Compiled{colFn(1)}, []bool{false}, []WindowAgg{agg})
	res := mustExec(t, w)
	vals := make([]types.Value, len(res.Rows))
	for i, r := range res.Rows {
		vals[i] = r[len(r)-1]
	}
	return vals
}

func TestWindowRowsOneBeforeOne(t *testing.T) {
	// The duplicate-detection pattern from §4.1 of the paper:
	// max(v) OVER (... ROWS BETWEEN 1 PRECEDING AND 1 PRECEDING).
	in := windowInput(
		[]int64{1, 1, 1, 2, 2},
		[]int64{1, 2, 3, 1, 2},
		[]int64{10, 20, 30, 40, 50},
	)
	got := runWindow(t, in, WindowAgg{
		Func: "max", Arg: colFn(2), OutName: "prev",
		Frame: FrameSpec{Mode: FrameRowsMode, StartType: sqlast.BoundPreceding, StartOff: 1, EndType: sqlast.BoundPreceding, EndOff: 1},
	})
	want := []any{nil, int64(10), int64(20), nil, int64(40)}
	for i, w := range want {
		if w == nil {
			if !got[i].IsNull() {
				t.Errorf("row %d = %v, want NULL (partition border)", i, got[i])
			}
		} else if got[i].IsNull() || got[i].Int() != w.(int64) {
			t.Errorf("row %d = %v, want %v", i, got[i], w)
		}
	}
}

func TestWindowRangeFollowingExcludesCurrentRow(t *testing.T) {
	// The reader-rule window: RANGE BETWEEN 1 MICROSECOND FOLLOWING AND t2
	// FOLLOWING — strictly after the current row, bounded by key distance.
	in := windowInput(
		[]int64{1, 1, 1, 1},
		[]int64{0, 100, 150, 400},
		[]int64{1, 2, 3, 4},
	)
	got := runWindow(t, in, WindowAgg{
		Func: "max", Arg: colFn(2), OutName: "after",
		Frame: FrameSpec{Mode: FrameRangeMode, StartType: sqlast.BoundFollowing, StartOff: 1, EndType: sqlast.BoundFollowing, EndOff: 200},
	})
	// Row 0 (k=0): frame keys in [1,200] -> rows k=100,150 -> max 3.
	// Row 1 (k=100): [101,300] -> k=150 -> 3.
	// Row 2 (k=150): [151,350] -> none -> NULL.
	// Row 3 (k=400): none -> NULL.
	if got[0].Int() != 3 || got[1].Int() != 3 || !got[2].IsNull() || !got[3].IsNull() {
		t.Fatalf("range following = %v", got)
	}
}

func TestWindowCountEmptyFrameIsZero(t *testing.T) {
	in := windowInput([]int64{1, 1}, []int64{0, 1000}, []int64{1, 2})
	got := runWindow(t, in, WindowAgg{
		Func: "count", Arg: colFn(2), OutName: "c",
		Frame: FrameSpec{Mode: FrameRangeMode, StartType: sqlast.BoundFollowing, StartOff: 1, EndType: sqlast.BoundFollowing, EndOff: 10},
	})
	if got[0].Int() != 0 || got[1].Int() != 0 {
		t.Fatalf("count over empty frame = %v", got)
	}
}

func TestWindowPeersDefaultFrame(t *testing.T) {
	// Default frame with ORDER BY: running aggregate including peers.
	in := windowInput([]int64{1, 1, 1, 1}, []int64{1, 2, 2, 3}, []int64{10, 20, 30, 40})
	got := runWindow(t, in, WindowAgg{
		Func: "sum", Arg: colFn(2), OutName: "s",
		Frame: FrameSpec{Mode: FramePeers},
	})
	want := []int64{10, 60, 60, 100} // peers at k=2 share the result
	for i, w := range want {
		if got[i].Int() != w {
			t.Fatalf("peers frame = %v, want %v", got, want)
		}
	}
}

func TestWindowWholePartition(t *testing.T) {
	in := windowInput([]int64{1, 1, 2}, []int64{1, 2, 1}, []int64{10, 20, 40})
	got := runWindow(t, in, WindowAgg{
		Func: "min", Arg: colFn(2), OutName: "m",
		Frame: FrameSpec{Mode: FramePartition},
	})
	if got[0].Int() != 10 || got[1].Int() != 10 || got[2].Int() != 40 {
		t.Fatalf("partition frame = %v", got)
	}
}

func TestWindowRowNumber(t *testing.T) {
	in := windowInput([]int64{1, 1, 2, 2, 2}, []int64{1, 2, 1, 2, 3}, []int64{0, 0, 0, 0, 0})
	got := runWindow(t, in, WindowAgg{Func: "row_number", OutName: "rn"})
	want := []int64{1, 2, 1, 2, 3}
	for i, w := range want {
		if got[i].Int() != w {
			t.Fatalf("row_number = %v", got)
		}
	}
}

func TestWindowSuffixRunning(t *testing.T) {
	// ROWS BETWEEN 1 FOLLOWING AND UNBOUNDED FOLLOWING: the "exists a
	// later row with flag" pattern used by the missing rule's r2.
	in := windowInput([]int64{1, 1, 1}, []int64{1, 2, 3}, []int64{0, 1, 0})
	got := runWindow(t, in, WindowAgg{
		Func: "max", Arg: colFn(2), OutName: "later",
		Frame: FrameSpec{Mode: FrameRowsMode, StartType: sqlast.BoundFollowing, StartOff: 1, EndType: sqlast.BoundUnboundedFollowing},
	})
	if got[0].Int() != 1 || got[1].Int() != 0 || !got[2].IsNull() {
		t.Fatalf("suffix running = %v", got)
	}
}

// bruteWindow recomputes one aggregate over explicit frame scanning; the
// property test below checks the optimized operator against it.
func bruteWindow(parts, keys, vals []int64, fn string, spec FrameSpec) []types.Value {
	n := len(parts)
	out := make([]types.Value, n)
	for i := 0; i < n; i++ {
		var acc []int64
		for j := 0; j < n; j++ {
			if parts[j] != parts[i] {
				continue
			}
			in := false
			switch spec.Mode {
			case FramePartition:
				in = true
			case FramePeers:
				in = keys[j] <= keys[i]
			case FrameRowsMode:
				// Row distance within the partition.
				d := 0
				lo, hi := j, i
				sign := 1
				if j > i {
					lo, hi = i, j
					sign = -1
				}
				for k := lo; k < hi; k++ {
					if parts[k] == parts[i] {
						d++
					}
				}
				d *= sign // positive: j precedes i
				lowOK := false
				switch spec.StartType {
				case sqlast.BoundUnboundedPreceding:
					lowOK = true
				case sqlast.BoundPreceding:
					lowOK = d <= int(spec.StartOff)
				case sqlast.BoundCurrentRow:
					lowOK = d <= 0
				case sqlast.BoundFollowing:
					lowOK = -d >= int(spec.StartOff)
				}
				highOK := false
				switch spec.EndType {
				case sqlast.BoundUnboundedFollowing:
					highOK = true
				case sqlast.BoundFollowing:
					highOK = -d <= int(spec.EndOff)
				case sqlast.BoundCurrentRow:
					highOK = d >= 0
				case sqlast.BoundPreceding:
					highOK = d >= int(spec.EndOff)
				}
				in = lowOK && highOK
			case FrameRangeMode:
				lo, hi := int64(-1<<62), int64(1<<62)
				switch spec.StartType {
				case sqlast.BoundPreceding:
					lo = keys[i] - spec.StartOff
				case sqlast.BoundCurrentRow:
					lo = keys[i]
				case sqlast.BoundFollowing:
					lo = keys[i] + spec.StartOff
				}
				switch spec.EndType {
				case sqlast.BoundFollowing:
					hi = keys[i] + spec.EndOff
				case sqlast.BoundCurrentRow:
					hi = keys[i]
				case sqlast.BoundPreceding:
					hi = keys[i] - spec.EndOff
				}
				in = keys[j] >= lo && keys[j] <= hi
			}
			if in {
				acc = append(acc, vals[j])
			}
		}
		switch fn {
		case "count":
			out[i] = types.NewInt(int64(len(acc)))
		case "sum", "max", "min":
			if len(acc) == 0 {
				out[i] = types.Null
				continue
			}
			r := acc[0]
			for _, v := range acc[1:] {
				switch fn {
				case "sum":
					r += v
				case "max":
					if v > r {
						r = v
					}
				case "min":
					if v < r {
						r = v
					}
				}
			}
			out[i] = types.NewInt(r)
		}
	}
	return out
}

// Property: the window operator agrees with brute force over random
// sorted inputs, random frames, and all aggregate functions.
func TestWindowMatchesBruteForceProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		parts := make([]int64, n)
		keys := make([]int64, n)
		vals := make([]int64, n)
		p, k := int64(0), int64(0)
		for i := 0; i < n; i++ {
			if rng.Intn(5) == 0 {
				p++
				k = 0
			}
			k += int64(rng.Intn(4)) // allow duplicate keys (peers)
			parts[i], keys[i], vals[i] = p, k, int64(rng.Intn(100))
		}
		fns := []string{"count", "sum", "max", "min"}
		fn := fns[rng.Intn(len(fns))]
		var spec FrameSpec
		switch rng.Intn(4) {
		case 0:
			spec = FrameSpec{Mode: FramePartition}
		case 1:
			spec = FrameSpec{Mode: FramePeers}
		case 2, 3:
			mode := FrameRowsMode
			if rng.Intn(2) == 0 {
				mode = FrameRangeMode
			}
			boundTypes := []sqlast.BoundType{
				sqlast.BoundUnboundedPreceding, sqlast.BoundPreceding,
				sqlast.BoundCurrentRow, sqlast.BoundFollowing, sqlast.BoundUnboundedFollowing,
			}
			var st, et sqlast.BoundType
			for {
				st = boundTypes[rng.Intn(4)]   // not unbounded following
				et = boundTypes[1+rng.Intn(4)] // not unbounded preceding
				if st <= et {
					break
				}
			}
			spec = FrameSpec{
				Mode: mode, StartType: st, EndType: et,
				StartOff: int64(rng.Intn(5)), EndOff: int64(rng.Intn(5)),
			}
		}
		in := windowInput(parts, keys, vals)
		out := in.Schema().Clone()
		out.Columns = append(out.Columns, schema.Col("", "w", types.KindInt))
		w := NewWindowNode(in, out, []*eval.Compiled{colFn(0)}, []*eval.Compiled{colFn(1)}, []bool{false},
			[]WindowAgg{{Func: fn, Arg: colFn(2), OutName: "w", Frame: spec}})
		res, err := Run(NewCtx(), w)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		want := bruteWindow(parts, keys, vals, fn, spec)
		for i := range want {
			got := res.Rows[i][3]
			if got.IsNull() != want[i].IsNull() {
				t.Logf("seed %d fn %s spec %+v row %d: got %v want %v", seed, fn, spec, i, got, want[i])
				return false
			}
			if !got.IsNull() && got.Int() != want[i].Int() {
				t.Logf("seed %d fn %s spec %+v row %d: got %v want %v", seed, fn, spec, i, got, want[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWindowRangeRequiresSingleAscKey(t *testing.T) {
	in := windowInput([]int64{1}, []int64{1}, []int64{1})
	out := in.Schema().Clone()
	out.Columns = append(out.Columns, schema.Col("", "w", types.KindInt))
	w := NewWindowNode(in, out, []*eval.Compiled{colFn(0)}, []*eval.Compiled{colFn(1)}, []bool{true},
		[]WindowAgg{{Func: "max", Arg: colFn(2), OutName: "w",
			Frame: FrameSpec{Mode: FrameRangeMode, StartType: sqlast.BoundPreceding, EndType: sqlast.BoundCurrentRow}}})
	if _, err := Run(NewCtx(), w); err == nil {
		t.Fatal("descending RANGE order must error")
	}
}

func TestWindowMultipleAggsOnePass(t *testing.T) {
	in := windowInput([]int64{1, 1, 1}, []int64{1, 2, 3}, []int64{5, 7, 3})
	out := in.Schema().Clone()
	out.Columns = append(out.Columns,
		schema.Col("", "prev", types.KindInt),
		schema.Col("", "total", types.KindInt),
	)
	w := NewWindowNode(in, out, []*eval.Compiled{colFn(0)}, []*eval.Compiled{colFn(1)}, []bool{false}, []WindowAgg{
		{Func: "max", Arg: colFn(2), OutName: "prev",
			Frame: FrameSpec{Mode: FrameRowsMode, StartType: sqlast.BoundPreceding, StartOff: 1, EndType: sqlast.BoundPreceding, EndOff: 1}},
		{Func: "sum", Arg: colFn(2), OutName: "total", Frame: FrameSpec{Mode: FramePartition}},
	})
	res := mustExec(t, w)
	if !res.Rows[0][3].IsNull() || res.Rows[1][3].Int() != 5 || res.Rows[2][3].Int() != 7 {
		t.Fatalf("prev col = %v", res.Rows)
	}
	for _, r := range res.Rows {
		if r[4].Int() != 15 {
			t.Fatalf("total col = %v", res.Rows)
		}
	}
}

// Parallel partition evaluation must agree with serial evaluation on a
// large multi-partition input (and pass the race detector).
func TestWindowParallelMatchesSerial(t *testing.T) {
	const n = 10000
	parts := make([]int64, n)
	keys := make([]int64, n)
	vals := make([]int64, n)
	for i := range parts {
		parts[i] = int64(i / 37)
		keys[i] = int64(i % 37)
		vals[i] = int64((i * 7919) % 101)
	}
	build := func() *WindowNode {
		in := windowInput(parts, keys, vals)
		out := in.Schema().Clone()
		out.Columns = append(out.Columns, schema.Col("", "w", types.KindInt))
		return NewWindowNode(in, out, []*eval.Compiled{colFn(0)}, []*eval.Compiled{colFn(1)}, []bool{false},
			[]WindowAgg{{Func: "sum", Arg: colFn(2), OutName: "w",
				Frame: FrameSpec{Mode: FrameRowsMode, StartType: sqlast.BoundPreceding, StartOff: 3, EndType: sqlast.BoundFollowing, EndOff: 2}}})
	}
	old := Parallelism
	defer func() { Parallelism = old }()

	Parallelism = 1
	serial := mustExec(t, build())
	Parallelism = 8
	parallel := mustExec(t, build())
	if len(serial.Rows) != len(parallel.Rows) {
		t.Fatal("row count mismatch")
	}
	for i := range serial.Rows {
		a, b := serial.Rows[i][3], parallel.Rows[i][3]
		if !a.Equal(b) {
			t.Fatalf("row %d: serial %v vs parallel %v", i, a, b)
		}
	}
}
