package exec

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/eval"
	"repro/internal/govern"
	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/types"
)

// FrameMode classifies how a window frame selects rows.
type FrameMode uint8

// Frame modes.
const (
	// FramePartition covers the whole partition (no ORDER BY, no frame).
	FramePartition FrameMode = iota
	// FramePeers is the SQL default with ORDER BY: RANGE UNBOUNDED
	// PRECEDING .. CURRENT ROW, current row's peers included.
	FramePeers
	// FrameRowsMode counts physical rows.
	FrameRowsMode
	// FrameRangeMode offsets the (single, ascending, numeric) order key.
	FrameRangeMode
)

// FrameSpec is a window frame resolved to constants at plan time. Offsets
// are row counts for ROWS frames and order-key units (microseconds for
// TIME keys) for RANGE frames.
type FrameSpec struct {
	Mode               FrameMode
	StartType, EndType sqlast.BoundType
	StartOff, EndOff   int64
}

// WindowAgg is one scalar aggregate computed over a window.
type WindowAgg struct {
	Func    string         // max, min, sum, count, avg, row_number (lower case)
	Arg     *eval.Compiled // nil for COUNT(*) and ROW_NUMBER
	OutName string
	Kind    types.Kind // declared output kind for the schema
	Frame   FrameSpec
}

// WindowNode appends one column per WindowAgg to its input. All aggregates
// in a node share the same PARTITION BY / ORDER BY; the planner groups
// window expressions by that signature and requires the input to arrive
// sorted on (partition keys, order keys) — it inserts an explicit sort
// when the input's ordering property does not already satisfy it, which is
// exactly the "order sharing" effect the paper observes between cleansing
// rules and q1's own OLAP functions.
type WindowNode struct {
	base
	Input     Node
	PartKeys  []*eval.Compiled
	OrderKeys []*eval.Compiled
	OrderDesc []bool
	Aggs      []WindowAgg
}

// NewWindowNode builds a window operator; out is input ++ agg columns.
func NewWindowNode(child Node, out *schema.Schema, part, order []*eval.Compiled, desc []bool, aggs []WindowAgg) *WindowNode {
	n := &WindowNode{Input: child, PartKeys: part, OrderKeys: order, OrderDesc: desc, Aggs: aggs}
	n.schema = out
	n.estRows = child.EstRows()
	n.ordering = child.Ordering()
	return n
}

// Label implements Node.
func (n *WindowNode) Label() string {
	return fmt.Sprintf("Window(%d aggs)", len(n.Aggs))
}

// Children implements Node.
func (n *WindowNode) Children() []Node { return []Node{n.Input} }

// Execute implements Node. Every per-row stage — partition-key
// encoding, order-key extraction, aggregate-argument evaluation, and
// the final column concatenation — is morsel-parallel with disjoint
// position writes; partition spans then evaluate concurrently, each
// span owned by one worker so running aggregates fold in input order.
func (n *WindowNode) Execute(ctx *Ctx) (*Result, error) {
	in, err := Run(ctx, n.Input)
	if err != nil {
		return nil, err
	}
	rows := in.Rows
	nrows := len(rows)
	// The window operator has no disk fallback, so its working set
	// (partition keys, order keys, argument and output columns, widened
	// output rows) is enforced when the query cannot spill and accounted
	// otherwise.
	perRow := int64(keyRefBytes+8) + int64(len(n.Aggs))*2*valueBytes +
		rowHdrBytes + int64(n.schema.Len())*valueBytes
	if err := ctx.reserveOrCharge(int64(nrows) * perRow); err != nil {
		return nil, err
	}
	workers := ctx.workersFor(nrows)
	ctx.noteWorkers(n, workers)

	// Order keys are only needed for RANGE and peer frames.
	needKeys := false
	for _, a := range n.Aggs {
		if a.Frame.Mode == FrameRangeMode || a.Frame.Mode == FramePeers {
			needKeys = true
		}
	}
	vec := ctx.useVector(n.PartKeys...)
	for ai := range n.Aggs {
		vec = vec && ctx.useVector(n.Aggs[ai].Arg)
	}
	if needKeys {
		vec = vec && ctx.useVector(n.OrderKeys...)
	}
	ctx.noteEval(n, vec, nrows)

	// Partition keys over the (sorted) input, encoded into per-morsel
	// arenas; the vector path feeds the encoder from batch-evaluated
	// column vectors.
	partKey := make([][]byte, nrows)
	encs := make([]keyEnc, workers)
	err = ctx.parallelFor(nrows, workers, func(w, _, lo, hi int) error {
		enc := &encs[w]
		var arena []byte
		partSerial := func(b, e int) error {
			for i := b; i < e; i++ {
				if err := ctx.Tick(i - b); err != nil {
					return err
				}
				key, _, err := enc.funcs(n.PartKeys, rows[i])
				if err != nil {
					return err
				}
				start := len(arena)
				arena = append(arena, key...)
				partKey[i] = arena[start:len(arena):len(arena)]
			}
			return nil
		}
		if !ctx.useVector(n.PartKeys...) {
			return partSerial(lo, hi)
		}
		cols := evalScratch(len(n.PartKeys), MorselSize)
		return ctx.forBatches(lo, hi, func(b, e int) error {
			chunk := rows[b:e]
			if !tryBatchAll(n.PartKeys, chunk, cols) {
				return partSerial(b, e)
			}
			for i := range chunk {
				key, _ := enc.cols(cols, i)
				start := len(arena)
				arena = append(arena, key...)
				partKey[b+i] = arena[start:len(arena):len(arena)]
			}
			return nil
		})
	})
	if err != nil {
		return nil, err
	}

	var orderRaw []int64
	if needKeys {
		if len(n.OrderKeys) != 1 || n.OrderDesc[0] {
			return nil, fmt.Errorf("exec: RANGE frames require a single ascending ORDER BY key")
		}
		orderRaw = make([]int64, nrows)
		// validate checks one evaluated key and stores its raw value; both
		// the serial loop and the vector path apply it in row order, so NULL
		// and kind errors surface for the same row either way.
		validate := func(i int, v types.Value) error {
			if v.IsNull() {
				return fmt.Errorf("exec: NULL order key in RANGE frame")
			}
			switch v.Kind() {
			case types.KindInt, types.KindTime, types.KindInterval:
				orderRaw[i] = v.Raw()
			default:
				return fmt.Errorf("exec: RANGE frame order key must be numeric or time, got %s", v.Kind())
			}
			return nil
		}
		err = ctx.parallelFor(nrows, workers, func(_, _, lo, hi int) error {
			orderSerial := func(b, e int) error {
				for i := b; i < e; i++ {
					if err := ctx.Tick(i - b); err != nil {
						return err
					}
					v, err := n.OrderKeys[0].Eval(rows[i])
					if err != nil {
						return err
					}
					if err := validate(i, v); err != nil {
						return err
					}
				}
				return nil
			}
			if !ctx.useVector(n.OrderKeys...) {
				return orderSerial(lo, hi)
			}
			vp := evalScratch(1, MorselSize)[0]
			return ctx.forBatches(lo, hi, func(b, e int) error {
				chunk := rows[b:e]
				if !n.OrderKeys[0].TryBatch(chunk, vp, nil) {
					return orderSerial(b, e)
				}
				for i := range chunk {
					if err := validate(b+i, vp[i]); err != nil {
						return err
					}
				}
				return nil
			})
		})
		if err != nil {
			return nil, err
		}
	}

	// Pre-evaluate aggregate arguments once per row, morsel-parallel —
	// the CASE payloads of rule flags are the per-row hot path.
	argVals := make([][]types.Value, len(n.Aggs))
	for ai := range n.Aggs {
		if n.Aggs[ai].Arg != nil {
			argVals[ai] = make([]types.Value, nrows)
		}
	}
	err = ctx.parallelFor(nrows, workers, func(_, _, lo, hi int) error {
		for ai := range n.Aggs {
			arg := n.Aggs[ai].Arg
			if arg == nil {
				continue
			}
			vals := argVals[ai]
			if ctx.useVector(arg) {
				// EvalBatch falls back to an in-order row rerun on kernel
				// errors, so this matches the serial loop exactly — the
				// serial loop is agg-major too.
				if err := ctx.forBatches(lo, hi, func(b, e int) error {
					return arg.EvalBatch(rows[b:e], vals[b:e], nil)
				}); err != nil {
					return err
				}
				continue
			}
			for i := lo; i < hi; i++ {
				if err := ctx.Tick(i - lo); err != nil {
					return err
				}
				v, err := arg.Eval(rows[i])
				if err != nil {
					return err
				}
				vals[i] = v
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	outCols := make([][]types.Value, len(n.Aggs))
	for ai := range outCols {
		outCols[ai] = make([]types.Value, nrows)
	}

	// Partition boundaries.
	type span struct{ start, end int }
	var spans []span
	for start := 0; start < nrows; {
		end := start + 1
		for end < nrows && bytes.Equal(partKey[end], partKey[start]) {
			end++
		}
		spans = append(spans, span{start, end})
		start = end
	}

	// Partitions are independent, so they evaluate in parallel — the
	// in-engine analogue of the intra-query parallelism the paper's DBMS
	// provides. Each worker writes disjoint slices of the output columns.
	spanWorkers := workers
	if spanWorkers > len(spans) {
		spanWorkers = len(spans)
	}
	if spanWorkers <= 1 {
		for si, sp := range spans {
			if err := ctx.Tick(si); err != nil {
				return nil, err
			}
			for ai := range n.Aggs {
				if err := n.computePartition(ctx, ai, rows, argVals[ai], orderRaw, sp.start, sp.end, outCols[ai]); err != nil {
					return nil, err
				}
			}
		}
	} else {
		var wg sync.WaitGroup
		next := int64(-1)
		errs := make([]error, spanWorkers)
		for w := 0; w < spanWorkers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				defer func() {
					if rec := recover(); rec != nil {
						errs[w] = govern.Internalize(rec)
					}
				}()
				for {
					if err := ctx.Canceled(); err != nil {
						errs[w] = err
						return
					}
					i := int(atomic.AddInt64(&next, 1))
					if i >= len(spans) {
						return
					}
					ctx.res.MaybePanic()
					sp := spans[i]
					for ai := range n.Aggs {
						if err := n.computePartition(ctx, ai, rows, argVals[ai], orderRaw, sp.start, sp.end, outCols[ai]); err != nil {
							errs[w] = err
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		if err := firstError(errs); err != nil {
			return nil, err
		}
	}

	out := make([]schema.Row, nrows)
	err = ctx.parallelFor(nrows, workers, func(_, _, lo, hi int) error {
		for i := lo; i < hi; i++ {
			if err := ctx.Tick(i - lo); err != nil {
				return err
			}
			row := make(schema.Row, 0, len(rows[i])+len(n.Aggs))
			row = append(row, rows[i]...)
			for ai := range n.Aggs {
				row = append(row, outCols[ai][i])
			}
			out[i] = row
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{Schema: n.schema, Rows: out}, nil
}

// computePartition fills results[start:end] for one aggregate. It polls
// ctx between rows so canceling a query stops partitions mid-frame.
func (n *WindowNode) computePartition(ctx *Ctx, ai int, rows []schema.Row, args []types.Value, keys []int64, start, end int, results []types.Value) error {
	agg := &n.Aggs[ai]
	if agg.Func == "row_number" {
		for i := start; i < end; i++ {
			results[i] = types.NewInt(int64(i - start + 1))
		}
		return nil
	}
	spec := agg.Frame
	switch spec.Mode {
	case FramePartition:
		v, err := n.foldRange(ctx, agg, args, start, end)
		if err != nil {
			return err
		}
		for i := start; i < end; i++ {
			results[i] = v
		}
		return nil
	case FramePeers:
		// Running aggregate over peer groups (equal order keys share the
		// same result).
		acc := newAccumulator(&AggSpec{Func: agg.Func})
		i := start
		for i < end {
			if err := ctx.Tick(i - start); err != nil {
				return err
			}
			j := i
			for j < end && keys[j] == keys[i] {
				j++
			}
			for k := i; k < j; k++ {
				if err := accAdd(acc, agg, args, k); err != nil {
					return err
				}
			}
			v := acc.result()
			for k := i; k < j; k++ {
				results[k] = v
			}
			i = j
		}
		return nil
	case FrameRowsMode:
		return n.rowsFrame(ctx, agg, args, start, end, results)
	case FrameRangeMode:
		return n.rangeFrame(ctx, agg, args, keys, start, end, results)
	}
	return fmt.Errorf("exec: unknown frame mode")
}

func accAdd(acc *accumulator, agg *WindowAgg, args []types.Value, i int) error {
	if agg.Arg == nil {
		acc.addRowCount()
		return nil
	}
	return acc.add(args[i])
}

// foldRange folds rows [lo,hi) with a fresh accumulator.
func (n *WindowNode) foldRange(ctx *Ctx, agg *WindowAgg, args []types.Value, lo, hi int) (types.Value, error) {
	acc := newAccumulator(&AggSpec{Func: agg.Func})
	for i := lo; i < hi; i++ {
		if err := ctx.Tick(i - lo); err != nil {
			return types.Null, err
		}
		if err := accAdd(acc, agg, args, i); err != nil {
			return types.Null, err
		}
	}
	return acc.result(), nil
}

// rowsFrame evaluates a ROWS frame. Prefix frames (start unbounded) and
// suffix frames (end unbounded) run incrementally; constant-offset frames
// loop directly — rule-generated frames are a handful of rows wide.
func (n *WindowNode) rowsFrame(ctx *Ctx, agg *WindowAgg, args []types.Value, start, end int, results []types.Value) error {
	lo := func(i int) int { return rowsBoundLow(specStart(agg.Frame), i, start) }
	hi := func(i int) int { return rowsBoundHigh(specEnd(agg.Frame), i, end) }
	switch {
	case agg.Frame.StartType == sqlast.BoundUnboundedPreceding:
		acc := newAccumulator(&AggSpec{Func: agg.Func})
		done := start // rows [start,done) already folded
		for i := start; i < end; i++ {
			if err := ctx.Tick(i - start); err != nil {
				return err
			}
			h := hi(i)
			for done < h {
				if err := accAdd(acc, agg, args, done); err != nil {
					return err
				}
				done++
			}
			results[i] = acc.result()
		}
		return nil
	case agg.Frame.EndType == sqlast.BoundUnboundedFollowing:
		acc := newAccumulator(&AggSpec{Func: agg.Func})
		done := end // rows [done,end) already folded
		for i := end - 1; i >= start; i-- {
			if err := ctx.Tick(end - 1 - i); err != nil {
				return err
			}
			l := lo(i)
			for done > l {
				done--
				if err := accAdd(acc, agg, args, done); err != nil {
					return err
				}
			}
			results[i] = acc.result()
		}
		return nil
	default:
		// Constant-offset frames re-fold per row, so each iteration already
		// costs a frame's worth of work — poll the context every row.
		for i := start; i < end; i++ {
			if err := ctx.Canceled(); err != nil {
				return err
			}
			l, h := lo(i), hi(i)
			if l >= h {
				results[i] = emptyFrameResult(agg)
				continue
			}
			v, err := n.foldRange(ctx, agg, args, l, h)
			if err != nil {
				return err
			}
			results[i] = v
		}
		return nil
	}
}

type boundSpec struct {
	typ sqlast.BoundType
	off int64
}

func specStart(f FrameSpec) boundSpec { return boundSpec{f.StartType, f.StartOff} }
func specEnd(f FrameSpec) boundSpec   { return boundSpec{f.EndType, f.EndOff} }

// rowsBoundLow returns the inclusive low index of a ROWS frame start.
func rowsBoundLow(b boundSpec, i, partStart int) int {
	var lo int
	switch b.typ {
	case sqlast.BoundUnboundedPreceding:
		lo = partStart
	case sqlast.BoundPreceding:
		lo = i - int(b.off)
	case sqlast.BoundCurrentRow:
		lo = i
	case sqlast.BoundFollowing:
		lo = i + int(b.off)
	default:
		lo = partStart
	}
	if lo < partStart {
		lo = partStart
	}
	return lo
}

// rowsBoundHigh returns the exclusive high index of a ROWS frame end.
func rowsBoundHigh(b boundSpec, i, partEnd int) int {
	var hi int
	switch b.typ {
	case sqlast.BoundUnboundedFollowing:
		hi = partEnd
	case sqlast.BoundFollowing:
		hi = i + int(b.off) + 1
	case sqlast.BoundCurrentRow:
		hi = i + 1
	case sqlast.BoundPreceding:
		hi = i - int(b.off) + 1
	default:
		hi = partEnd
	}
	if hi > partEnd {
		hi = partEnd
	}
	return hi
}

// rangeFrame evaluates a RANGE frame over the sorted numeric order key.
func (n *WindowNode) rangeFrame(ctx *Ctx, agg *WindowAgg, args []types.Value, keys []int64, start, end int, results []types.Value) error {
	// Index of the first row in [start,end) with key >= target.
	lowerBound := func(target int64) int {
		lo, hi := start, end
		for lo < hi {
			mid := (lo + hi) / 2
			if keys[mid] < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	// Index one past the last row with key <= target.
	upperBound := func(target int64) int {
		lo, hi := start, end
		for lo < hi {
			mid := (lo + hi) / 2
			if keys[mid] <= target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	loIdx := func(i int) int {
		switch agg.Frame.StartType {
		case sqlast.BoundUnboundedPreceding:
			return start
		case sqlast.BoundPreceding:
			return lowerBound(satSub(keys[i], agg.Frame.StartOff))
		case sqlast.BoundCurrentRow:
			return lowerBound(keys[i])
		case sqlast.BoundFollowing:
			return lowerBound(satAdd(keys[i], agg.Frame.StartOff))
		}
		return start
	}
	hiIdx := func(i int) int {
		switch agg.Frame.EndType {
		case sqlast.BoundUnboundedFollowing:
			return end
		case sqlast.BoundFollowing:
			return upperBound(satAdd(keys[i], agg.Frame.EndOff))
		case sqlast.BoundCurrentRow:
			return upperBound(keys[i])
		case sqlast.BoundPreceding:
			return upperBound(satSub(keys[i], agg.Frame.EndOff))
		}
		return end
	}
	switch {
	case agg.Frame.StartType == sqlast.BoundUnboundedPreceding:
		acc := newAccumulator(&AggSpec{Func: agg.Func})
		done := start
		for i := start; i < end; i++ {
			if err := ctx.Tick(i - start); err != nil {
				return err
			}
			h := hiIdx(i)
			for done < h {
				if err := accAdd(acc, agg, args, done); err != nil {
					return err
				}
				done++
			}
			results[i] = acc.result()
		}
		return nil
	case agg.Frame.EndType == sqlast.BoundUnboundedFollowing:
		acc := newAccumulator(&AggSpec{Func: agg.Func})
		done := end
		for i := end - 1; i >= start; i-- {
			if err := ctx.Tick(end - 1 - i); err != nil {
				return err
			}
			l := loIdx(i)
			for done > l {
				done--
				if err := accAdd(acc, agg, args, done); err != nil {
					return err
				}
			}
			results[i] = acc.result()
		}
		return nil
	default:
		// As in rowsFrame: per-row polling is amortized by the frame fold.
		for i := start; i < end; i++ {
			if err := ctx.Canceled(); err != nil {
				return err
			}
			l, h := loIdx(i), hiIdx(i)
			if l >= h {
				results[i] = emptyFrameResult(agg)
				continue
			}
			v, err := n.foldRange(ctx, agg, args, l, h)
			if err != nil {
				return err
			}
			results[i] = v
		}
		return nil
	}
}

func emptyFrameResult(agg *WindowAgg) types.Value {
	if agg.Func == "count" {
		return types.NewInt(0)
	}
	return types.Null
}

func satAdd(a, b int64) int64 {
	if b > 0 && a > math.MaxInt64-b {
		return math.MaxInt64
	}
	if b < 0 && a < math.MinInt64-b {
		return math.MinInt64
	}
	return a + b
}

func satSub(a, b int64) int64 { return satAdd(a, -b) }
