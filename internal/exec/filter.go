package exec

import (
	"fmt"
	"sort"

	"repro/internal/eval"
	"repro/internal/schema"
	"repro/internal/types"
)

// FilterNode keeps rows whose predicate evaluates to TRUE.
type FilterNode struct {
	base
	Input Node
	Pred  eval.Func
	// Desc describes the predicate for EXPLAIN.
	Desc string
}

// NewFilterNode wraps child with a compiled predicate.
func NewFilterNode(child Node, pred eval.Func, desc string) *FilterNode {
	n := &FilterNode{Input: child, Pred: pred, Desc: desc}
	n.schema = child.Schema()
	n.ordering = child.Ordering()
	return n
}

// Label implements Node.
func (n *FilterNode) Label() string { return "Filter(" + n.Desc + ")" }

// Children implements Node.
func (n *FilterNode) Children() []Node { return []Node{n.Input} }

// Execute implements Node.
func (n *FilterNode) Execute(ctx *Ctx) (*Result, error) {
	in, err := Run(ctx, n.Input)
	if err != nil {
		return nil, err
	}
	out := make([]schema.Row, 0, len(in.Rows)/4+1)
	for i, r := range in.Rows {
		if err := ctx.Tick(i); err != nil {
			return nil, err
		}
		ok, err := eval.EvalPredicate(n.Pred, r)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, r)
		}
	}
	return &Result{Schema: n.schema, Rows: out}, nil
}

// ProjectNode computes output columns from input rows.
type ProjectNode struct {
	base
	Input Node
	Exprs []eval.Func
}

// NewProjectNode builds a projection with a prepared output schema.
func NewProjectNode(child Node, out *schema.Schema, exprs []eval.Func) *ProjectNode {
	n := &ProjectNode{Input: child, Exprs: exprs}
	n.schema = out
	n.estRows = child.EstRows()
	return n
}

// Label implements Node.
func (n *ProjectNode) Label() string { return fmt.Sprintf("Project(%d cols)", n.schema.Len()) }

// Children implements Node.
func (n *ProjectNode) Children() []Node { return []Node{n.Input} }

// Execute implements Node.
func (n *ProjectNode) Execute(ctx *Ctx) (*Result, error) {
	in, err := Run(ctx, n.Input)
	if err != nil {
		return nil, err
	}
	out := make([]schema.Row, len(in.Rows))
	for i, r := range in.Rows {
		if err := ctx.Tick(i); err != nil {
			return nil, err
		}
		row := make(schema.Row, len(n.Exprs))
		for j, f := range n.Exprs {
			v, err := f(r)
			if err != nil {
				return nil, err
			}
			row[j] = v
		}
		out[i] = row
	}
	return &Result{Schema: n.schema, Rows: out}, nil
}

// SortNode orders rows by compiled key expressions.
type SortNode struct {
	base
	Input Node
	Keys  []eval.Func
	Desc  []bool
}

// NewSortNode builds a sort over child.
func NewSortNode(child Node, keys []eval.Func, desc []bool) *SortNode {
	n := &SortNode{Input: child, Keys: keys, Desc: desc}
	n.schema = child.Schema()
	n.estRows = child.EstRows()
	return n
}

// Label implements Node.
func (n *SortNode) Label() string { return fmt.Sprintf("Sort(%d keys)", len(n.Keys)) }

// Children implements Node.
func (n *SortNode) Children() []Node { return []Node{n.Input} }

// Execute implements Node.
func (n *SortNode) Execute(ctx *Ctx) (*Result, error) {
	in, err := Run(ctx, n.Input)
	if err != nil {
		return nil, err
	}
	keys := make([][]types.Value, len(in.Rows))
	for i, r := range in.Rows {
		if err := ctx.Tick(i); err != nil {
			return nil, err
		}
		ks := make([]types.Value, len(n.Keys))
		for j, f := range n.Keys {
			v, err := f(r)
			if err != nil {
				return nil, err
			}
			ks[j] = v
		}
		keys[i] = ks
	}
	idx := make([]int, len(in.Rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := keys[idx[a]], keys[idx[b]]
		for j := range n.Keys {
			c := compareForSort(ka[j], kb[j])
			if c == 0 {
				continue
			}
			if n.Desc[j] {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	out := make([]schema.Row, len(in.Rows))
	for i, id := range idx {
		out[i] = in.Rows[id]
	}
	return &Result{Schema: n.schema, Rows: out}, nil
}

// compareForSort orders values with NULLS FIRST and falls back to kind
// order for incomparable kinds so the sort stays total.
func compareForSort(a, b types.Value) int {
	an, bn := a.IsNull(), b.IsNull()
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	}
	if c, err := types.Compare(a, b); err == nil {
		return c
	}
	switch {
	case a.Kind() < b.Kind():
		return -1
	case a.Kind() > b.Kind():
		return 1
	}
	return 0
}

// LimitNode skips Offset rows then truncates to N (N < 0 means no limit,
// offset only).
type LimitNode struct {
	base
	Input  Node
	N      int64
	Offset int64
}

// NewLimitNode wraps child with LIMIT n (pass n < 0 for OFFSET-only).
func NewLimitNode(child Node, limit int64) *LimitNode {
	n := &LimitNode{Input: child, N: limit}
	n.schema = child.Schema()
	n.ordering = child.Ordering()
	return n
}

// Label implements Node.
func (n *LimitNode) Label() string {
	if n.Offset > 0 {
		return fmt.Sprintf("Limit(%d offset %d)", n.N, n.Offset)
	}
	return fmt.Sprintf("Limit(%d)", n.N)
}

// Children implements Node.
func (n *LimitNode) Children() []Node { return []Node{n.Input} }

// Execute implements Node.
func (n *LimitNode) Execute(ctx *Ctx) (*Result, error) {
	in, err := Run(ctx, n.Input)
	if err != nil {
		return nil, err
	}
	rows := in.Rows
	if n.Offset > 0 {
		if int64(len(rows)) <= n.Offset {
			rows = nil
		} else {
			rows = rows[n.Offset:]
		}
	}
	if n.N >= 0 && int64(len(rows)) > n.N {
		rows = rows[:n.N]
	}
	return &Result{Schema: n.schema, Rows: rows}, nil
}

// DistinctNode removes duplicate rows (all columns), keeping first
// occurrences in input order.
type DistinctNode struct {
	base
	Input Node
}

// NewDistinctNode wraps child with duplicate elimination.
func NewDistinctNode(child Node) *DistinctNode {
	n := &DistinctNode{Input: child}
	n.schema = child.Schema()
	n.ordering = child.Ordering()
	return n
}

// Label implements Node.
func (n *DistinctNode) Label() string { return "Distinct" }

// Children implements Node.
func (n *DistinctNode) Children() []Node { return []Node{n.Input} }

// Execute implements Node.
func (n *DistinctNode) Execute(ctx *Ctx) (*Result, error) {
	in, err := Run(ctx, n.Input)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]struct{}, len(in.Rows))
	out := make([]schema.Row, 0, len(in.Rows))
	for i, r := range in.Rows {
		if err := ctx.Tick(i); err != nil {
			return nil, err
		}
		k := rowKey(r)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, r)
	}
	return &Result{Schema: n.schema, Rows: out}, nil
}

func rowKey(r schema.Row) string {
	n := 0
	for _, v := range r {
		n += len(v.GroupKey()) + 1
	}
	b := make([]byte, 0, n)
	for _, v := range r {
		b = append(b, v.GroupKey()...)
		b = append(b, 0x1f)
	}
	return string(b)
}

// SetOpKind distinguishes EXCEPT from INTERSECT in SetOpNode.
type SetOpKind uint8

// Set-operation kinds.
const (
	SetOpExcept SetOpKind = iota
	SetOpIntersect
)

// SetOpNode implements EXCEPT and INTERSECT with SQL set semantics
// (duplicates eliminated, left input order preserved).
type SetOpNode struct {
	base
	Left, Right Node
	Kind        SetOpKind
}

// NewSetOpNode builds EXCEPT/INTERSECT over two inputs of equal arity.
func NewSetOpNode(l, r Node, kind SetOpKind) (*SetOpNode, error) {
	if l.Schema().Len() != r.Schema().Len() {
		return nil, fmt.Errorf("exec: set operation arity mismatch: %d vs %d", l.Schema().Len(), r.Schema().Len())
	}
	n := &SetOpNode{Left: l, Right: r, Kind: kind}
	n.schema = l.Schema()
	return n, nil
}

// Label implements Node.
func (n *SetOpNode) Label() string {
	if n.Kind == SetOpIntersect {
		return "Intersect"
	}
	return "Except"
}

// Children implements Node.
func (n *SetOpNode) Children() []Node { return []Node{n.Left, n.Right} }

// Execute implements Node.
func (n *SetOpNode) Execute(ctx *Ctx) (*Result, error) {
	l, err := Run(ctx, n.Left)
	if err != nil {
		return nil, err
	}
	r, err := Run(ctx, n.Right)
	if err != nil {
		return nil, err
	}
	right := make(map[string]struct{}, len(r.Rows))
	for i, row := range r.Rows {
		if err := ctx.Tick(i); err != nil {
			return nil, err
		}
		right[rowKey(row)] = struct{}{}
	}
	seen := map[string]struct{}{}
	var out []schema.Row
	for i, row := range l.Rows {
		if err := ctx.Tick(i); err != nil {
			return nil, err
		}
		k := rowKey(row)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		_, inRight := right[k]
		if (n.Kind == SetOpExcept) != inRight {
			out = append(out, row)
		}
	}
	return &Result{Schema: n.schema, Rows: out}, nil
}

// UnionNode concatenates two inputs; Distinct applies set semantics.
type UnionNode struct {
	base
	Left, Right Node
	Distinct    bool
}

// NewUnionNode combines two inputs with UNION [ALL] semantics.
func NewUnionNode(l, r Node, distinct bool) (*UnionNode, error) {
	if l.Schema().Len() != r.Schema().Len() {
		return nil, fmt.Errorf("exec: UNION arity mismatch: %d vs %d", l.Schema().Len(), r.Schema().Len())
	}
	n := &UnionNode{Left: l, Right: r, Distinct: distinct}
	n.schema = l.Schema()
	return n, nil
}

// Label implements Node.
func (n *UnionNode) Label() string {
	if n.Distinct {
		return "Union"
	}
	return "UnionAll"
}

// Children implements Node.
func (n *UnionNode) Children() []Node { return []Node{n.Left, n.Right} }

// Execute implements Node.
func (n *UnionNode) Execute(ctx *Ctx) (*Result, error) {
	l, err := Run(ctx, n.Left)
	if err != nil {
		return nil, err
	}
	r, err := Run(ctx, n.Right)
	if err != nil {
		return nil, err
	}
	rows := make([]schema.Row, 0, len(l.Rows)+len(r.Rows))
	rows = append(rows, l.Rows...)
	rows = append(rows, r.Rows...)
	if !n.Distinct {
		return &Result{Schema: n.schema, Rows: rows}, nil
	}
	seen := make(map[string]struct{}, len(rows))
	out := rows[:0:0]
	for i, row := range rows {
		if err := ctx.Tick(i); err != nil {
			return nil, err
		}
		k := rowKey(row)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, row)
	}
	return &Result{Schema: n.schema, Rows: out}, nil
}
